// Flash crowd: many peers request the same object at once. The hybrid
// design shines here — early arrivals are served by the edge, and every
// completed download immediately becomes upload capacity for the rest,
// while the per-download edge connection guarantees nobody stalls even if
// they pick slow or unreliable peers (§3.3).
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"netsession"
)

const (
	crowdSize = 12
	objSize   = 2_000_000
)

func main() {
	log.SetFlags(0)

	cluster, err := netsession.StartCluster(netsession.DefaultClusterConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	obj, err := netsession.NewObject(1002, "studio/episode-01.bin", 1, objSize, 64<<10, true)
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Publish(obj); err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	spawn := func() *netsession.Peer {
		ip, err := cluster.AllocateIdentity("JP")
		if err != nil {
			log.Fatal(err)
		}
		p, err := netsession.NewPeer(netsession.PeerConfig{
			DeclaredIP:     ip,
			ControlAddrs:   cluster.ControlAddrs(),
			EdgeURL:        cluster.EdgeURL(),
			UploadsEnabled: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		return p
	}

	// One early adopter seeds the swarm.
	seed := spawn()
	defer seed.Close()
	if dl, err := seed.Download(obj.ID); err != nil {
		log.Fatal(err)
	} else if res, _ := dl.Wait(ctx); res.BytesInfra == 0 {
		log.Fatal("seed download served no infrastructure bytes?")
	}
	time.Sleep(300 * time.Millisecond)
	fmt.Printf("seeded %s; releasing a crowd of %d...\n\n", obj.URL, crowdSize)

	type outcome struct {
		ix  int
		res *netsession.DownloadResult
	}
	var wg sync.WaitGroup
	outcomes := make([]outcome, crowdSize)
	for i := 0; i < crowdSize; i++ {
		p := spawn()
		defer p.Close()
		wg.Add(1)
		go func(ix int, p *netsession.Peer) {
			defer wg.Done()
			dl, err := p.Download(obj.ID)
			if err != nil {
				log.Printf("crowd %d: %v", ix, err)
				return
			}
			res, _ := dl.Wait(ctx)
			outcomes[ix] = outcome{ix, res}
		}(i, p)
	}
	wg.Wait()

	var infra, peers int64
	completed := 0
	var durations []time.Duration
	for _, o := range outcomes {
		if o.res == nil {
			continue
		}
		completed++
		infra += o.res.BytesInfra
		peers += o.res.BytesPeers
		durations = append(durations, o.res.Duration)
	}
	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })

	fmt.Printf("crowd results: %d/%d completed\n", completed, crowdSize)
	fmt.Printf("bytes: %.1f MB from the edge, %.1f MB peer-to-peer (%.0f%% offloaded)\n",
		float64(infra)/1e6, float64(peers)/1e6, 100*float64(peers)/float64(infra+peers))
	if len(durations) > 0 {
		fmt.Printf("download times: fastest %v, median %v, slowest %v\n",
			durations[0].Round(time.Millisecond),
			durations[len(durations)/2].Round(time.Millisecond),
			durations[len(durations)-1].Round(time.Millisecond))
	}
	fmt.Printf("\nwithout the swarm, the edge would have carried %.1f MB for this crowd.\n",
		float64(int64(crowdSize)*objSize)/1e6)
}
