// ISP impact report: reproduces the Section 6.1 analysis — does the hybrid
// CDN "tilt the traffic balance of ISPs"? It simulates a short deployment
// twice, once with the production locality-aware peer selection and once
// with a random baseline, then prints the AS-level traffic comparison
// (intra-AS share, heavy-uploader concentration, and per-AS balance).
package main

import (
	"fmt"
	"log"
	"time"

	"netsession"
	"netsession/internal/analysis"
	"netsession/internal/geo"
)

func main() {
	log.SetFlags(0)

	base := netsession.SmallScenario()
	base.NumPeers = 3000
	base.TotalDownloads = 9000
	// Constrain the swarm fan-out so the ORDER peers are selected in —
	// locality-aware vs random — is what shows up in the traffic matrix.
	base.MaxServersPerDownload = 5

	run := func(name string, mutate func(*netsession.Scenario)) *analysis.ASTraffic {
		cfg := base
		if mutate != nil {
			mutate(&cfg)
		}
		start := time.Now()
		res, err := netsession.RunScenario(cfg)
		if err != nil {
			log.Fatal(err)
		}
		in := &analysis.Input{
			Log: res.Log, Pop: res.Pop, Catalog: res.Catalog,
			Atlas: res.Atlas, Scape: res.Scape, ControlPlaneServers: geo.NumRegions,
		}
		t := analysis.ComputeASTraffic(in)
		fmt.Printf("== %s (simulated in %s)\n", name, time.Since(start).Round(time.Millisecond))
		fmt.Printf("   p2p volume: %.2f GB across %d ASes\n",
			float64(t.TotalP2PBytes)/1e9, t.ASesWithPeers)
		fmt.Printf("   intra-AS share: %.1f%% (paper: 18%%)\n", 100*t.IntraASFraction())
		f9b := t.ComputeFigure9b()
		fmt.Printf("   heavy uploaders: %d ASes carry %.0f%% of inter-AS bytes\n",
			f9b.HeavyASes, 100-f9b.LightSharePct)
		f10 := t.ComputeFigure10()
		fmt.Printf("   heavy uploaders' median up/down ratio: %.2f (1.0 = settlement-free balance)\n",
			f10.HeavyMedianRatio)
		f11 := t.ComputeFigure11(res.Atlas)
		fmt.Printf("   heavy AS pairs: %d, %.0f%% of their bytes on direct links\n\n",
			len(f11.Pairs), f11.PctDirectBytes)
		return t
	}

	local := run("locality-aware selection (production policy)", nil)
	random := run("random selection (baseline)", func(c *netsession.Scenario) {
		c.Policy.LocalityAware = false
	})

	li, ri := 100*local.IntraASFraction(), 100*random.IntraASFraction()
	fmt.Printf("conclusion: locality-aware selection keeps %.1f%% of p2p bytes inside\n", li)
	fmt.Printf("the subscriber's AS versus %.1f%% under random selection, and heavy\n", ri)
	fmt.Printf("uploaders send roughly as much as they receive — the paper's finding\n")
	fmt.Printf("that NetSession does not tilt ISPs' traffic balance (§6.1).\n")
}
