// Software update rollout: NetSession's flagship workload is distributing
// large installers and updates (§3.3). This example rolls an update out to
// successive waves of peers and shows how the peer swarm takes load off the
// infrastructure as copies spread — the offload dynamic behind Figure 5.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"netsession"
)

const (
	waves        = 4
	peersPerWave = 4
	updateSize   = 3_000_000 // 3 MB keeps the demo quick; scale at will
)

func main() {
	log.SetFlags(0)

	cluster, err := netsession.StartCluster(netsession.DefaultClusterConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	obj, err := netsession.NewObject(1001, "acme/update-7.4.bin", 1, updateSize, 64<<10, true)
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Publish(obj); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rolling out %s (%.1f MB) to %d waves of %d peers\n\n",
		obj.URL, float64(obj.Size)/1e6, waves, peersPerWave)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	var keep []*netsession.Peer
	defer func() {
		for _, p := range keep {
			p.Close()
		}
	}()

	for wave := 1; wave <= waves; wave++ {
		var wg sync.WaitGroup
		results := make([]*netsession.DownloadResult, peersPerWave)
		for i := 0; i < peersPerWave; i++ {
			ip, err := cluster.AllocateIdentity("JP")
			if err != nil {
				log.Fatal(err)
			}
			p, err := netsession.NewPeer(netsession.PeerConfig{
				DeclaredIP:     ip,
				ControlAddrs:   cluster.ControlAddrs(),
				EdgeURL:        cluster.EdgeURL(),
				UploadsEnabled: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			keep = append(keep, p) // stay resident: completed peers serve later waves
			wg.Add(1)
			go func(ix int, p *netsession.Peer) {
				defer wg.Done()
				dl, err := p.Download(obj.ID)
				if err != nil {
					log.Printf("peer %d: %v", ix, err)
					return
				}
				results[ix], _ = dl.Wait(ctx)
			}(i, p)
		}
		wg.Wait()

		var infra, peers int64
		for _, r := range results {
			if r == nil {
				continue
			}
			infra += r.BytesInfra
			peers += r.BytesPeers
		}
		offload := 0.0
		if infra+peers > 0 {
			offload = 100 * float64(peers) / float64(infra+peers)
		}
		fmt.Printf("wave %d: %2d copies already in the swarm -> %5.1f%% of bytes served by peers\n",
			wave, (wave-1)*peersPerWave, offload)
		time.Sleep(300 * time.Millisecond) // let registrations land
	}

	fmt.Printf("\nthe infrastructure served every byte of wave 1; by the last wave the\n" +
		"peer swarm carries most of the rollout, exactly the offload the paper\n" +
		"reports for popular content (70-80%%, §5.1).\n")
}
