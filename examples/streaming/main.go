// Streaming delivery: NetSession "also supports video streaming" (§3.4).
// A sequential download keeps the verified prefix contiguous, so playback
// can begin while the tail is still arriving; this example plays a video
// object as it downloads and reports startup delay and rebuffering.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"netsession"
	"netsession/internal/peer"
)

const (
	videoSize   = 6_000_000 // 6 MB "episode"
	pieceSize   = 64 << 10
	playbackBps = 4_000_000 // 4 Mbps playback rate
)

func main() {
	log.SetFlags(0)

	cluster, err := netsession.StartCluster(netsession.DefaultClusterConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	obj, err := netsession.NewObject(1002, "studio/episode-07.vid", 1, videoSize, pieceSize, true)
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Publish(obj); err != nil {
		log.Fatal(err)
	}

	ip, err := cluster.AllocateIdentity("JP")
	if err != nil {
		log.Fatal(err)
	}
	viewer, err := netsession.NewPeer(netsession.PeerConfig{
		DeclaredIP:   ip,
		ControlAddrs: cluster.ControlAddrs(),
		EdgeURL:      cluster.EdgeURL(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer viewer.Close()

	start := time.Now()
	dl, err := viewer.DownloadWith(obj.ID, peer.DownloadOpts{Sequential: true})
	if err != nil {
		log.Fatal(err)
	}

	// Simulated player: consumes pieces in order at the playback rate,
	// waiting (rebuffering) whenever the next piece has not arrived.
	piecesTotal := obj.NumPieces()
	pieceDur := time.Duration(float64(pieceSize*8) / playbackBps * float64(time.Second))
	var startupDelay, rebuffer time.Duration
	played := 0
	for played < piecesTotal {
		waitStart := time.Now()
		for {
			bf := viewer.Store().Have(obj.ID)
			if bf != nil && bf.Has(played) {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		waited := time.Since(waitStart)
		if played == 0 {
			startupDelay = time.Since(start)
		} else if waited > 3*time.Millisecond {
			rebuffer += waited
		}
		time.Sleep(pieceDur / 50) // compress playback 50x for the demo
		played++
		if played%20 == 0 || played == piecesTotal {
			have, total := dl.Progress()
			fmt.Printf("played %3d/%d pieces | downloaded %3d/%d\n", played, piecesTotal, have, total)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := dl.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstartup delay: %v, rebuffering: %v\n",
		startupDelay.Round(time.Millisecond), rebuffer.Round(time.Millisecond))
	fmt.Printf("delivery: %d bytes edge, %d bytes peers, outcome %v\n",
		res.BytesInfra, res.BytesPeers, res.Outcome)
	fmt.Printf("\nsequential piece selection keeps the verified prefix contiguous,\n" +
		"so playback starts immediately and never outruns the download.\n")
}
