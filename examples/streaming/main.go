// Streaming delivery: NetSession "also supports video streaming" (§3.4).
// The client's deadline-driven scheduler requests pieces inside the urgent
// playback window earliest-deadline-first and diversifies (rarest-first)
// beyond it, while the built-in playback session tracks startup delay,
// rebuffers and deadline misses. This example streams a video object and
// prints those metrics — the same numbers the client reports to the control
// plane's accounting pipeline.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"netsession"
	"netsession/internal/peer"
	"netsession/internal/streaming"
)

const (
	videoSize = 6_000_000 // 6 MB "episode"
	pieceSize = 64 << 10
	// A demo-compressed playback rate: fast enough that the whole episode
	// plays out in about a second, slow enough that the loopback edge
	// comfortably outruns it (zero rebuffers on a healthy cluster).
	playbackBps = 40_000_000
)

func main() {
	log.SetFlags(0)

	cluster, err := netsession.StartCluster(netsession.DefaultClusterConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	obj, err := netsession.NewObject(1002, "studio/episode-07.vid", 1, videoSize, pieceSize, true)
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Publish(obj); err != nil {
		log.Fatal(err)
	}

	ip, err := cluster.AllocateIdentity("JP")
	if err != nil {
		log.Fatal(err)
	}
	viewer, err := netsession.NewPeer(netsession.PeerConfig{
		DeclaredIP:   ip,
		ControlAddrs: cluster.ControlAddrs(),
		EdgeURL:      cluster.EdgeURL(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer viewer.Close()

	// The playback session lives inside the download: the scheduler reads
	// its sliding window, the watchdogs leave its clock running, and the
	// final Result carries its metrics.
	dl, err := viewer.DownloadWith(obj.ID, peer.DownloadOpts{
		Streaming: &streaming.Config{BitrateBps: playbackBps},
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := dl.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// The download usually finishes well before the player drains the
	// buffer; keep watching the playback session until the episode ends.
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	deadline := time.Now().Add(time.Minute)
	var st *streaming.Metrics
	for range ticker.C {
		st = dl.StreamMetrics()
		if st == nil {
			log.Fatal("no streaming metrics on the download")
		}
		have, total := dl.Progress()
		fmt.Printf("played %3d/%d pieces | downloaded %3d/%d | rebuffers %d\n",
			st.PiecesPlayed, st.PiecesTotal, have, total, st.RebufferCount)
		if st.Done || time.Now().After(deadline) {
			break
		}
	}

	fmt.Printf("\nstartup delay: %dms, rebuffers: %d (%dms paused)\n",
		st.StartupDelayMs, st.RebufferCount, st.RebufferMs)
	fmt.Printf("deadline misses: %.2f%% of %d played pieces; %d urgent bytes edge-rescued\n",
		100*st.DeadlineMissRatio(), st.PiecesPlayed, st.EdgeRescueBytes)
	fmt.Printf("delivery: %d bytes edge, %d bytes peers, outcome %v\n",
		res.BytesInfra, res.BytesPeers, res.Outcome)
	fmt.Printf("\nthe playback-window scheduler fetches urgent pieces earliest-deadline-\n" +
		"first and rarest-first beyond the window, so playback starts quickly\n" +
		"while the swarm still diversifies the pieces it can trade.\n")
}
