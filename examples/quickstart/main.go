// Quickstart: start an in-process NetSession deployment (edge + control
// plane), publish an object, seed it on one peer, and watch a second peer
// download it with peer assistance — the edge covering whatever the peer
// does not deliver, exactly as the Download Manager of §3.3 works.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"netsession"
)

func main() {
	log.SetFlags(0)

	cluster, err := netsession.StartCluster(netsession.DefaultClusterConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Printf("edge tier:     %s\n", cluster.EdgeURL())
	fmt.Printf("control plane: %v\n", cluster.ControlAddrs())

	// A content provider (CP code 1001) publishes a 4 MB installer with
	// peer-assisted delivery enabled.
	obj, err := netsession.NewObject(1001, "acme/installer-2.0.bin", 1, 4_000_000, 64<<10, true)
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Publish(obj); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published:     %s (%s)\n", obj.ID, obj.URL)

	newPeer := func(name string) *netsession.Peer {
		ip, err := cluster.AllocateIdentity("JP")
		if err != nil {
			log.Fatal(err)
		}
		p, err := netsession.NewPeer(netsession.PeerConfig{
			DeclaredIP:     ip,
			ControlAddrs:   cluster.ControlAddrs(),
			EdgeURL:        cluster.EdgeURL(),
			UploadsEnabled: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:          GUID %s at %s\n", name, p.GUID().Short(), ip)
		return p
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// The first peer has no peers to draw from: the edge serves everything.
	alice := newPeer("alice")
	defer alice.Close()
	dl, err := alice.Download(obj.ID)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dl.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nalice: %v in %v — %d bytes from edge, %d from peers\n",
		res.Outcome, res.Duration.Round(time.Millisecond), res.BytesInfra, res.BytesPeers)

	// Alice's completed copy registers with the control plane; Bob's
	// download swarms with her while the edge backstops.
	time.Sleep(300 * time.Millisecond)
	bob := newPeer("bob")
	defer bob.Close()
	dl2, err := bob.Download(obj.ID)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := dl2.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob:   %v in %v — %d bytes from edge, %d from peers (peer efficiency %.0f%%)\n",
		res2.Outcome, res2.Duration.Round(time.Millisecond),
		res2.BytesInfra, res2.BytesPeers, 100*res2.PeerEfficiency())

	time.Sleep(300 * time.Millisecond) // let the final usage report land
	acct := cluster.AccountingLog()
	fmt.Printf("\naccounting: %d verified download records, %d rejected\n",
		len(acct.Downloads), cluster.RejectedReports())
}
