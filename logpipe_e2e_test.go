package netsession

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"netsession/internal/analysis"
	"netsession/internal/faults"
	"netsession/internal/geo"
	"netsession/internal/logpipe"
	"netsession/internal/protocol"
	"netsession/internal/sim"
)

const logSpoolSubdir = "logspool"

// copyDir snapshots a flat directory (the spool layout has no subdirs).
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func replaceDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.RemoveAll(dst); err != nil {
		t.Fatal(err)
	}
	copyDir(t, src, dst)
}

// spawnLogpipePeer starts a peer whose usage reports go through the durable
// log spool and batched uploader (never the in-band stats path), with the
// background loop disabled so tests control every drain.
func spawnLogpipePeer(t *testing.T, c *Cluster, stateDir string) *Peer {
	return spawnLogpipePeerURL(t, c, stateDir, c.ControlPlaneURL())
}

// spawnLogpipePeerURL is spawnLogpipePeer with an explicit upload target, so
// cross-node tests can pin the uploader to one control-plane node.
func spawnLogpipePeerURL(t *testing.T, c *Cluster, stateDir, uploadURL string) *Peer {
	t.Helper()
	ip, err := c.AllocateIdentity("JP")
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPeer(PeerConfig{
		DeclaredIP:        ip,
		ControlAddrs:      c.ControlAddrs(),
		EdgeURL:           c.EdgeURL(),
		UploadsEnabled:    true,
		StateDir:          stateDir,
		LogUploadURL:      uploadURL,
		LogUploadInterval: -1,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// TestCrashLogpipeExactlyOnce kills a peer at the two dangerous points of the
// log pipeline — after the report reached the spool but before any upload,
// and after the control plane's ack but before the cursor write — and
// verifies the control plane accounts the download exactly once: nothing
// lost, nothing double-counted.
func TestCrashLogpipeExactlyOnce(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.LogDir = t.TempDir()
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obj, err := NewObject(3001, "logpipe/payload.bin", 1, 600_000, 16<<10, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(obj); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	stateDir := t.TempDir()
	victim := spawnLogpipePeer(t, c, stateDir)
	guid := victim.GUID()
	res, err := chaosStart(t, victim, obj.ID).Wait(ctx)
	if err != nil || res.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("download: res=%+v err=%v", res, err)
	}
	if !chaosEventually(10*time.Second, func() bool { return victim.LogsPending() > 0 }) {
		t.Fatal("completed download never reached the log spool")
	}
	if got := len(c.AccountingLog().Downloads); got != 0 {
		t.Fatalf("CP holds %d downloads before any upload, want 0 (report must be out-of-band)", got)
	}

	// Crash #1: the report is spooled but never uploaded.
	victim.Kill()

	// Snapshot the spool now — this is also exactly what the disk holds if a
	// later crash lands after the CP's ack but before the cursor write.
	spoolDir := filepath.Join(stateDir, logSpoolSubdir)
	snapDir := t.TempDir()
	copyDir(t, spoolDir, snapDir)

	// Restart from the same state directory: the spool must still hold the
	// report, and one explicit drain delivers it. Zero reports lost.
	reborn := spawnLogpipePeer(t, c, stateDir)
	if reborn.GUID() != guid {
		t.Fatalf("restarted peer has GUID %v, want persisted %v", reborn.GUID(), guid)
	}
	if reborn.LogsPending() == 0 {
		t.Fatal("kill lost the spooled report")
	}
	if err := reborn.FlushLogs(ctx); err != nil {
		t.Fatal(err)
	}
	log := c.AccountingLog()
	if len(log.Downloads) != 1 {
		t.Fatalf("CP holds %d downloads after the post-crash drain, want exactly 1", len(log.Downloads))
	}
	rec := log.Downloads[0]
	if rec.GUID != guid || rec.Object != obj.ID {
		t.Fatalf("accounted record %+v does not match the download (guid %v, object %v)",
			rec, guid, obj.ID)
	}
	if rec.BytesInfra+rec.BytesPeers != obj.Size {
		t.Fatalf("accounted bytes %d+%d, want the object size %d",
			rec.BytesInfra, rec.BytesPeers, obj.Size)
	}
	if reborn.LogsPending() != 0 {
		t.Fatalf("%d spool segments left after a successful drain", reborn.LogsPending())
	}

	// Crash #2: the ack-before-cursor window. Restore the pre-upload spool
	// (cursor write "lost") and drain again from a fresh process: the resend
	// carries the same idempotent batch ID, so the CP must dedup it.
	reborn.Kill()
	replaceDir(t, snapDir, spoolDir)
	third := spawnLogpipePeer(t, c, stateDir)
	if third.LogsPending() == 0 {
		t.Fatal("restored spool shows nothing pending; the resend scenario never ran")
	}
	if err := third.FlushLogs(ctx); err != nil {
		t.Fatal(err)
	}
	if got := len(c.AccountingLog().Downloads); got != 1 {
		t.Fatalf("CP holds %d downloads after the resend, want still exactly 1 (no double count)", got)
	}
	cpSnap := c.nodes[0].cp.Metrics().Snapshot()
	if got := cpSnap.Counters["logpipe_ingest_deduped_total"]; got < 1 {
		t.Errorf("logpipe_ingest_deduped_total = %d, want the resend counted as a dedup", got)
	}
	if got := cpSnap.Counters["logpipe_ingest_records_total"]; got != 1 {
		t.Errorf("logpipe_ingest_records_total = %d, want 1", got)
	}
	if got := cpSnap.Counters[`accounting_records_total{kind="download"}`]; got != 1 {
		t.Errorf(`accounting_records_total{kind="download"} = %d, want 1`, got)
	}

	// The durable store holds the single accepted record, geo-annotated.
	if err := c.LogStore().Flush(); err != nil {
		t.Fatal(err)
	}
	stored, err := logpipe.ReadDownloads(cfg.LogDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != 1 {
		t.Fatalf("segment store holds %d records, want 1", len(stored))
	}
	if stored[0].GUID != guid.String() || stored[0].Country != "JP" {
		t.Fatalf("stored record %+v, want the JP peer's download", stored[0])
	}
}

// TestCrashLogpipeCrossCPDedup replays the ack-before-cursor crash across
// control-plane nodes: a batch acked by node A is resent — after a peer
// crash restores the pre-upload spool — to node B. Each node keeps its own
// durable ack store in its own state directory; the probe interval is set to
// an hour so anti-entropy can never replicate the ack before the resend
// lands. The record must still be accounted exactly once cluster-wide: node
// B's only way to know is the synchronous cross-node seen check.
func TestCrashLogpipeCrossCPDedup(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.CPNodes = 2
	cfg.LogDir = t.TempDir()
	cfg.CPProbeInterval = time.Hour
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The ack tables are genuinely per-node and durable: each node owns an
	// ack journal under its own state directory, not a shared pointer.
	for _, node := range []string{"cp-0", "cp-1"} {
		p := filepath.Join(cfg.LogDir, node, "acks", "acks.json")
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("node %s has no durable ack checkpoint: %v", node, err)
		}
	}

	obj, err := NewObject(3001, "logpipe/crosscp.bin", 1, 500_000, 16<<10, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(obj); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	urls := c.ControlPlaneURLs()
	stateDir := t.TempDir()
	victim := spawnLogpipePeerURL(t, c, stateDir, urls[0])
	res, err := chaosStart(t, victim, obj.ID).Wait(ctx)
	if err != nil || res.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("download: res=%+v err=%v", res, err)
	}
	if !chaosEventually(10*time.Second, func() bool { return victim.LogsPending() > 0 }) {
		t.Fatal("completed download never reached the log spool")
	}

	// Snapshot the spool before the drain — the disk image of a crash that
	// lands after node A's ack but before the cursor write.
	spoolDir := filepath.Join(stateDir, logSpoolSubdir)
	snapDir := t.TempDir()
	copyDir(t, spoolDir, snapDir)

	// Node A accepts the batch.
	if err := victim.FlushLogs(ctx); err != nil {
		t.Fatal(err)
	}
	if got := len(c.AccountingLog().Downloads); got != 1 {
		t.Fatalf("cluster holds %d downloads after node A's drain, want 1", got)
	}

	// Crash, restore the pre-upload spool, and come back pointed at node B
	// only — the failover case where the original ingest node is gone.
	victim.Kill()
	replaceDir(t, snapDir, spoolDir)
	reborn := spawnLogpipePeerURL(t, c, stateDir, urls[1])
	if reborn.LogsPending() == 0 {
		t.Fatal("restored spool shows nothing pending; the resend scenario never ran")
	}
	if err := reborn.FlushLogs(ctx); err != nil {
		t.Fatal(err)
	}
	if got := len(c.AccountingLog().Downloads); got != 1 {
		t.Fatalf("cluster holds %d downloads after the cross-node resend, want still 1", got)
	}
	bSnap := c.ControlPlaneNode(1).Metrics().Snapshot()
	if got := bSnap.Counters["logpipe_ingest_deduped_total"]; got < 1 {
		t.Errorf("node B logpipe_ingest_deduped_total = %d, want >= 1", got)
	}
	if got := bSnap.Counters["logpipe_ingest_records_total"]; got != 0 {
		t.Errorf("node B accepted %d records from a batch node A already acked", got)
	}
	// Anti-entropy never ran (hour-long probe interval): the dedup can only
	// have come through the synchronous peer-seen check against node A.
	if got := bSnap.Counters["logpipe_ack_sync_pulls_total"]; got != 0 {
		t.Errorf("node B pulled %d times; the replay was supposed to beat anti-entropy", got)
	}
}

// TestCrashLogpipeAckAntiEntropyFailover is the same resend-after-crash but
// with anti-entropy given time to run and the original ingest node killed
// before the resend: node B must have pulled node A's ack into its own store
// while A was alive, so it dedups the replayed batch locally — no remote
// check possible, A is gone.
func TestCrashLogpipeAckAntiEntropyFailover(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.CPNodes = 2
	cfg.CPProbeInterval = 50 * time.Millisecond
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obj, err := NewObject(3001, "logpipe/antientropy.bin", 1, 500_000, 16<<10, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(obj); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	urls := c.ControlPlaneURLs()
	stateDir := t.TempDir()
	victim := spawnLogpipePeerURL(t, c, stateDir, urls[0])
	res, err := chaosStart(t, victim, obj.ID).Wait(ctx)
	if err != nil || res.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("download: res=%+v err=%v", res, err)
	}
	if !chaosEventually(10*time.Second, func() bool { return victim.LogsPending() > 0 }) {
		t.Fatal("completed download never reached the log spool")
	}

	spoolDir := filepath.Join(stateDir, logSpoolSubdir)
	snapDir := t.TempDir()
	copyDir(t, spoolDir, snapDir)

	// Node A acks the batch; its advertised ack sequence advances, and node
	// B's next probe of A pulls the new ack into B's own store.
	if err := victim.FlushLogs(ctx); err != nil {
		t.Fatal(err)
	}
	nodeB := c.nodes[1]
	if !chaosEventually(10*time.Second, func() bool { return nodeB.acks.Seq() >= 1 }) {
		t.Fatal("node B never pulled node A's ack by anti-entropy")
	}
	if got := nodeB.cp.Metrics().Snapshot().Counters["logpipe_ack_sync_pulls_total"]; got < 1 {
		t.Fatalf("node B logpipe_ack_sync_pulls_total = %d, want >= 1", got)
	}

	// Kill node A — the replicated ack is now the only copy that matters.
	// Wait for node B to demote it so logins stop redirecting at a corpse.
	victim.Kill()
	c.KillCPNode(0)
	if !chaosEventually(10*time.Second, func() bool { return nodeB.member.AliveCount() == 1 }) {
		t.Fatal("node B never noticed node A's death")
	}
	replaceDir(t, snapDir, spoolDir)
	reborn := spawnLogpipePeerURL(t, c, stateDir, urls[1])
	if reborn.LogsPending() == 0 {
		t.Fatal("restored spool shows nothing pending; the resend scenario never ran")
	}
	if err := reborn.FlushLogs(ctx); err != nil {
		t.Fatal(err)
	}
	bSnap := nodeB.cp.Metrics().Snapshot()
	if got := bSnap.Counters["logpipe_ingest_deduped_total"]; got < 1 {
		t.Errorf("node B logpipe_ingest_deduped_total = %d, want >= 1", got)
	}
	if got := bSnap.Counters["logpipe_ingest_records_total"]; got != 0 {
		t.Errorf("node B accepted %d records from a batch the dead node already acked", got)
	}
}

// TestChaosLogpipeIngestStorm drives a hard 503 storm on the live ingest
// endpoint: the uploader must trip its breaker rather than hammer the CP, the
// spooled report must survive the storm, and clearing the faults must let the
// drain complete with exactly-once accounting.
func TestChaosLogpipeIngestStorm(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.LogDir = t.TempDir()
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obj, err := NewObject(3001, "logpipe/storm.bin", 1, 400_000, 16<<10, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(obj); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	p := spawnLogpipePeer(t, c, t.TempDir())
	res, err := chaosStart(t, p, obj.ID).Wait(ctx)
	if err != nil || res.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("download: res=%+v err=%v", res, err)
	}
	if !chaosEventually(10*time.Second, func() bool { return p.LogsPending() > 0 }) {
		t.Fatal("completed download never reached the log spool")
	}

	// Storm: every POST /v1/logs/batch answers an injected 503.
	c.LogIngest().SetFaults(faults.New(faults.Config{Seed: 11, ErrorRate: 1}, nil))
	stormCtx, cancelStorm := context.WithTimeout(context.Background(), 2*time.Second)
	err = p.FlushLogs(stormCtx)
	cancelStorm()
	if err == nil {
		t.Fatal("drain succeeded against a 100% 503 storm")
	}
	if p.LogsPending() == 0 {
		t.Fatal("storm lost the spooled report")
	}
	peerSnap := p.Metrics().Snapshot()
	if got := peerSnap.Counters["logpipe_upload_errors_total"]; got == 0 {
		t.Error("logpipe_upload_errors_total = 0 after the storm")
	}
	if got := peerSnap.Counters["logpipe_upload_breaker_trips_total"]; got == 0 {
		t.Error("breaker never tripped during the storm; uploader kept hammering the CP")
	}
	if got := len(c.AccountingLog().Downloads); got != 0 {
		t.Fatalf("CP accounted %d downloads during the storm, want 0", got)
	}

	// Clear the faults: the next drain waits out the breaker cooldown,
	// half-opens, and delivers the report exactly once.
	c.LogIngest().SetFaults(nil)
	if err := p.FlushLogs(ctx); err != nil {
		t.Fatal(err)
	}
	if p.LogsPending() != 0 {
		t.Fatalf("%d spool segments left after the storm cleared", p.LogsPending())
	}
	if got := len(c.AccountingLog().Downloads); got != 1 {
		t.Fatalf("CP holds %d downloads after recovery, want exactly 1", got)
	}
	if got := c.nodes[0].cp.Metrics().Snapshot().Counters["logpipe_ingest_records_total"]; got != 1 {
		t.Errorf("logpipe_ingest_records_total = %d, want 1", got)
	}
}

// TestLogpipeLiveSimParity runs the same download log through both producers
// — a live cluster spilling accepted reports to its segment store, and the
// simulator exporting segments — and consumes both through the identical
// reader (the netsession-analyze path). Totals must agree with the control
// plane's /metrics, and the satellite accounting series must be present on
// the exposition page even at zero.
func TestLogpipeLiveSimParity(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.LogDir = t.TempDir()
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obj, err := NewObject(3001, "logpipe/parity.bin", 1, 300_000, 16<<10, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(obj); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	const livePeers = 3
	for i := 0; i < livePeers; i++ {
		p := spawnLogpipePeer(t, c, t.TempDir())
		res, err := chaosStart(t, p, obj.ID).Wait(ctx)
		if err != nil || res.Outcome != protocol.OutcomeCompleted {
			t.Fatalf("peer %d download: res=%+v err=%v", i, res, err)
		}
		if err := p.FlushLogs(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.LogStore().Flush(); err != nil {
		t.Fatal(err)
	}

	// Live segments through the analyzer's reader.
	live, err := logpipe.ReadDownloads(cfg.LogDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != livePeers {
		t.Fatalf("live segment store holds %d records, want %d", len(live), livePeers)
	}
	for i, d := range live {
		if d.Country != "JP" || d.ASN == 0 {
			t.Fatalf("live record %d lacks geo annotation: %+v", i, d)
		}
		if d.Region != "AS-NEA" {
			t.Fatalf("live record %d region %q, want AS-NEA (JP)", i, d.Region)
		}
		if d.Outcome != "completed" {
			t.Fatalf("live record %d outcome %q", i, d.Outcome)
		}
	}

	// Totals agree with the CP's own metrics.
	cpSnap := c.nodes[0].cp.Metrics().Snapshot()
	for _, key := range []string{
		"logpipe_ingest_records_total",
		"logpipe_store_records_total",
		`accounting_records_total{kind="download"}`,
	} {
		if got := cpSnap.Counters[key]; got != int64(livePeers) {
			t.Errorf("%s = %d, want %d (must match the segment store)", key, got, livePeers)
		}
	}

	// The satellite series are on the actual /metrics page, rejects at zero.
	resp, err := http.Get(c.ControlPlaneURL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	page := string(body)
	for _, want := range []string{
		`accounting_records_total{kind="download"} 3`,
		`accounting_rejected_total{reason="unauthorized"} 0`,
		`accounting_rejected_total{reason="overclaim"} 0`,
		`accounting_rejected_total{reason="other"} 0`,
		"logpipe_ingest_records_total 3",
		"logpipe_ingest_deduped_total 0",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/metrics page missing %q", want)
		}
	}

	// Simulated segments: export a small scenario through the same store
	// format (what `netsession-sim -format segments` does) and read it back
	// through the same code path.
	simCfg := sim.SmallScenario()
	simCfg.NumPeers = 1200
	simCfg.TotalDownloads = 2500
	simCfg.Days = 3
	simRes, err := RunScenario(simCfg)
	if err != nil {
		t.Fatal(err)
	}
	simDir := t.TempDir()
	st, err := logpipe.OpenStore(logpipe.StoreConfig{Dir: simDir})
	if err != nil {
		t.Fatal(err)
	}
	lookup := func(ip netip.Addr) analysis.GeoTag {
		if rec, ok := simRes.Scape.Lookup(ip); ok {
			return analysis.GeoTag{
				Country: string(rec.Country),
				ASN:     uint32(rec.ASN),
				Region:  geo.RegionOf(rec).String(),
			}
		}
		return analysis.GeoTag{}
	}
	for i := range simRes.Log.Downloads {
		if err := st.Append(analysis.OfflineFromRecord(&simRes.Log.Downloads[i], lookup)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	fromSim, err := logpipe.ReadDownloads(simDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromSim) != len(simRes.Log.Downloads) {
		t.Fatalf("sim segments hold %d records, want %d", len(fromSim), len(simRes.Log.Downloads))
	}

	// Both sources summarize through the identical offline analysis; the
	// summaries must see every record and a populated geo dimension.
	liveSum := analysis.SummarizeOffline(live)
	simSum := analysis.SummarizeOffline(fromSim)
	if liveSum.Downloads != livePeers || simSum.Downloads != len(simRes.Log.Downloads) {
		t.Fatalf("summaries dropped records: live %d/%d, sim %d/%d",
			liveSum.Downloads, livePeers, simSum.Downloads, len(simRes.Log.Downloads))
	}
	if simSum.Countries < 2 || simSum.ASes < 2 {
		t.Fatalf("sim summary lost the geo annotation: %+v", simSum)
	}

	// Streaming equivalence over both segment stores: a tailer feeding the
	// streaming summarizer must reproduce the offline summary — exactly for
	// count- and byte-derived metrics, within the sketch budget for the
	// distinct-GUID population.
	requireStreamingParity(t, "live", cfg.LogDir, liveSum)
	requireStreamingParity(t, "sim", simDir, simSum)

	// The control plane serves the same live analytics on GET /v1/analytics.
	aresp, err := http.Get(c.ControlPlaneURL() + "/v1/analytics")
	if err != nil {
		t.Fatal(err)
	}
	defer aresp.Body.Close()
	var cpSum analysis.StreamingSummary
	if err := json.NewDecoder(aresp.Body).Decode(&cpSum); err != nil {
		t.Fatal(err)
	}
	if cpSum.Downloads != int64(livePeers) {
		t.Fatalf("CP analytics shows %d downloads, want %d", cpSum.Downloads, livePeers)
	}
	if cpSum.BytesInfra+cpSum.BytesPeers == 0 {
		t.Fatal("CP analytics shows zero bytes for completed downloads")
	}
	foundNEA := false
	for _, r := range cpSum.Regions {
		if r.Region == "AS-NEA" && r.Downloads == int64(livePeers) {
			foundNEA = true
		}
	}
	if !foundNEA {
		t.Fatalf("CP analytics regions missing the JP peers' AS-NEA bucket: %+v", cpSum.Regions)
	}

	// The monitor scrapes that document into its fleet view.
	c.Monitor().ScrapeOnce()
	fleet, ok := c.Monitor().FleetAnalytics()
	if !ok {
		t.Fatal("monitor scraped no analytics from the control plane")
	}
	if fleet.Downloads != int64(livePeers) {
		t.Fatalf("fleet analytics shows %d downloads, want %d", fleet.Downloads, livePeers)
	}
}

// requireStreamingParity tails a segment store into a StreamingSummarizer and
// checks the equivalence contract against the offline summary of the same
// store.
func requireStreamingParity(t *testing.T, name, dir string, off analysis.OfflineSummary) {
	t.Helper()
	tl, err := logpipe.OpenTailer(logpipe.TailerConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s := analysis.NewStreamingSummarizer(4)
	recs, err := tl.Poll()
	if err != nil {
		t.Fatalf("%s: tail: %v", name, err)
	}
	for i := range recs {
		s.Observe(&recs[i])
	}
	st := s.Snapshot()
	if int64(off.Downloads) != st.Downloads {
		t.Fatalf("%s: streaming saw %d downloads, offline %d", name, st.Downloads, off.Downloads)
	}
	if off.Countries != st.Countries || off.ASes != st.ASes {
		t.Errorf("%s: geo dims streaming (%d, %d) != offline (%d, %d)",
			name, st.Countries, st.ASes, off.Countries, off.ASes)
	}
	// Streaming-delivery tallies are integer sums in both pipelines, so they
	// must agree exactly — this is the sim/live indistinguishability half of
	// the streaming parity contract.
	for _, m := range []struct {
		label    string
		off, str int64
	}{
		{"StreamDownloads", int64(off.StreamingDownloads), st.StreamDownloads},
		{"StreamRebufferEvents", off.StreamRebufferEvents, st.StreamRebufferEvents},
		{"StreamRebufferMs", off.StreamRebufferMs, st.StreamRebufferMs},
		{"StreamEdgeRescueBytes", off.StreamEdgeRescueBytes, st.StreamEdgeRescueBytes},
	} {
		if m.off != m.str {
			t.Errorf("%s: %s streaming %d != offline %d", name, m.label, m.str, m.off)
		}
	}
	for _, m := range []struct {
		label    string
		off, str float64
	}{
		{"PctBytesP2PFiles", off.PctBytesP2PFiles, st.PctBytesP2PFiles},
		{"AggregatePeerEfficiencyPct", off.AggregatePeerEfficiencyPct, st.AggregatePeerEfficiencyPct},
		{"IntraASPct", off.IntraASPct, st.IntraASPct},
		{"CompletionP2PPct", off.CompletionP2PPct, st.CompletionP2PPct},
		{"StreamStartupMeanMs", off.StreamStartupMeanMs, st.StreamStartupMeanMs},
		{"StreamDeadlineMissPct", off.StreamDeadlineMissPct, st.StreamDeadlineMissPct},
	} {
		if diff := math.Abs(m.off - m.str); diff > 1e-9*math.Max(1, math.Abs(m.off)) {
			t.Errorf("%s: %s streaming %v != offline %v", name, m.label, m.str, m.off)
		}
	}
	if n := float64(off.DistinctGUIDs); n > 0 && math.Abs(st.ActiveGUIDs-n)/n > 0.02 {
		t.Errorf("%s: ActiveGUIDs estimate %.1f, offline exact %d (>2%%)", name, st.ActiveGUIDs, off.DistinctGUIDs)
	}
}
