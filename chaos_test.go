package netsession

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/netip"
	"strings"
	"testing"
	"time"

	"netsession/internal/content"
	"netsession/internal/geo"
	"netsession/internal/id"
	"netsession/internal/protocol"
)

// chaosEventually polls cond until it holds or the timeout elapses.
func chaosEventually(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return cond()
}

// chaosUploader is a raw swarm server that misbehaves: in lying mode it
// answers every request with garbage (the §3.5 threat), in stalling mode it
// completes the handshake, claims every piece, and then never sends one —
// the slow/dead peer the stall watchdog exists for.
type chaosUploader struct {
	ln    net.Listener
	guid  id.GUID
	n     int
	lying bool
}

func startChaosUploader(t *testing.T, numPieces int, lying bool) *chaosUploader {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	u := &chaosUploader{ln: ln, guid: id.NewGUID(), n: numPieces, lying: lying}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go u.handle(conn)
		}
	}()
	return u
}

func (u *chaosUploader) handle(conn net.Conn) {
	defer conn.Close()
	if _, err := protocol.ReadMessage(conn); err != nil {
		return
	}
	protocol.WriteMessage(conn, &protocol.HandshakeAck{OK: true, NumPieces: uint32(u.n)})
	full := content.NewBitfield(u.n)
	for i := 0; i < u.n; i++ {
		full.Set(i)
	}
	protocol.WriteMessage(conn, &protocol.BitfieldMsg{Bits: full.MarshalBinary()})
	for {
		msg, err := protocol.ReadMessage(conn)
		if err != nil {
			return
		}
		req, ok := msg.(*protocol.Request)
		if !ok || !u.lying {
			continue // stalling mode: swallow requests forever
		}
		junk := make([]byte, 16<<10)
		for i := range junk {
			junk[i] = 0x5a
		}
		if protocol.WriteMessage(conn, &protocol.Piece{Index: req.Index, Data: junk}) != nil {
			return
		}
	}
}

// registerChaosPeer logs a fake peer into the control plane and registers it
// as a complete holder of the object, then waits for the directory entry.
func registerChaosPeer(t *testing.T, c *Cluster, g id.GUID, swarmAddr string, oid ObjectID, wantCopies int) {
	t.Helper()
	ip, err := c.AllocateIdentity("JP")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", c.ControlAddrs()[0])
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := protocol.WriteMessage(conn, &protocol.Login{
		GUID: g, UploadsEnabled: true, SwarmAddr: swarmAddr,
		NAT: protocol.NATNone, DeclaredIP: ip,
	}); err != nil {
		t.Fatal(err)
	}
	if err := protocol.WriteMessage(conn, &protocol.Register{
		Object: oid, NumPieces: 1, HaveCount: 1, Complete: true,
	}); err != nil {
		t.Fatal(err)
	}
	go func() { // keep the session alive: drain ConnectTo etc.
		for {
			if _, err := protocol.ReadMessage(conn); err != nil {
				return
			}
		}
	}()
	rec, ok := c.scape.Lookup(netip.MustParseAddr(ip))
	if !ok {
		t.Fatalf("allocated identity %s does not resolve", ip)
	}
	region := geo.RegionOf(rec)
	if !chaosEventually(5*time.Second, func() bool {
		return c.nodes[0].cp.DN(region).Copies(oid) >= wantCopies
	}) {
		t.Fatalf("directory never reached %d copies of %v", wantCopies, oid)
	}
}

// chaosStart starts a download, retrying while the edge is in a fault
// window (flapped down or injecting 503s, authorization fails then).
func chaosStart(t *testing.T, p *Peer, oid ObjectID) *Download {
	t.Helper()
	var dl *Download
	if !chaosEventually(30*time.Second, func() bool {
		var err error
		dl, err = p.Download(oid)
		return err == nil
	}) {
		t.Fatal("download never started through the edge faults")
	}
	return dl
}

// TestChaosDownloadsSurvive is the fault-injection end-to-end: a live
// cluster whose edge tier flaps and injects errors, a CN that dies
// mid-run, and a swarm seeded with a lying peer and a stalled peer. Every
// download must complete hash-verified; the poisoned one must degrade to
// edge-only rather than fail; and the retries, breaker trips, degradations
// and injected faults must all be visible in telemetry and /metrics.
func TestChaosDownloadsSurvive(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.NumCNs = 2
	cfg.EdgeFaults = FaultProfile{
		Seed:        42,
		ErrorRate:   0.15,
		LatencyMin:  time.Millisecond,
		LatencyMax:  5 * time.Millisecond,
		FlapPeriod:  2 * time.Second,
		FlapDownFor: 400 * time.Millisecond,
	}
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obj, err := NewObject(3001, "chaos/payload.bin", 1, 2_000_000, 16<<10, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(obj); err != nil {
		t.Fatal(err)
	}
	// A second object whose only "holders" will be liars and stallers: the
	// poisoned-swarm phase needs a download with no honest peer source.
	poisoned, err := NewObject(3001, "chaos/poisoned.bin", 1, 2_000_000, 16<<10, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(poisoned); err != nil {
		t.Fatal(err)
	}

	spawn := func(mutate func(*PeerConfig)) *Peer {
		ip, err := c.AllocateIdentity("JP")
		if err != nil {
			t.Fatal(err)
		}
		pc := PeerConfig{
			DeclaredIP:     ip,
			ControlAddrs:   c.ControlAddrs(),
			EdgeURL:        c.EdgeURL(),
			UploadsEnabled: true,
			Logf:           t.Logf,
		}
		if mutate != nil {
			mutate(&pc)
		}
		p, err := NewPeer(pc)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		return p
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Phase 1: an edge-only download rides out the flapping, erroring edge.
	seed := spawn(nil)
	res, err := chaosStart(t, seed, obj.ID).Wait(ctx)
	if err != nil || res.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("seed download under edge faults: res=%+v err=%v", res, err)
	}
	if !seed.Store().Complete(obj.ID) {
		t.Fatal("seed store incomplete after completed download")
	}

	// Phase 2: poison the swarm — the poisoned object's only registered
	// holders are a lying uploader and a stalled uploader. (The honest seed
	// must not hold it: its ConnectTo dial-back would otherwise serve the
	// whole object before the leech ever dials the liars.)
	evil := startChaosUploader(t, poisoned.NumPieces(), true)
	registerChaosPeer(t, c, evil.guid, evil.ln.Addr().String(), poisoned.ID, 1)
	stalled := startChaosUploader(t, poisoned.NumPieces(), false)
	registerChaosPeer(t, c, stalled.guid, stalled.ln.Addr().String(), poisoned.ID, 2)

	// A tight corruption budget forces the degradation decision quickly —
	// the second corrupt piece crosses the download-level threshold before
	// the per-connection drop (3 corrupt pieces) silently contains the liar.
	// The stall watchdog is the backup rung on the same ladder.
	leech := spawn(func(pc *PeerConfig) {
		pc.CorruptPieceLimit = 1
		pc.StallWindow = 4 * time.Second
	})
	dl := chaosStart(t, leech, poisoned.ID)
	if !chaosEventually(30*time.Second, dl.Degraded) {
		t.Fatalf("poisoned swarm never degraded the download to edge-only; leech counters: %+v",
			leech.Metrics().Snapshot().Counters)
	}

	// Phase 3: kill a CN mid-download; every client reconnects to the
	// surviving one (§3.8) while the transfer keeps going.
	c.nodes[0].cns[0].Close()
	res2, err := dl.Wait(ctx)
	if err != nil || res2.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("degraded download must still complete: res=%+v err=%v", res2, err)
	}
	if !leech.Store().Complete(poisoned.ID) {
		t.Fatal("leech store incomplete after completed download")
	}
	if got := res2.FromPeers[evil.guid]; got != 0 {
		t.Errorf("lying peer credited with %d bytes", got)
	}
	if !chaosEventually(15*time.Second, func() bool {
		a := seed.Metrics().Snapshot().Counters[`peer_retries_total{op="control_reconnect"}`]
		b := leech.Metrics().Snapshot().Counters[`peer_retries_total{op="control_reconnect"}`]
		return a+b > 0 && c.ControlPlane().SessionCount() >= 2
	}) {
		t.Error("CN kill produced no control reconnects")
	}

	// Telemetry: retries, degradations, and injected faults all counted.
	snap := leech.Metrics().Snapshot()
	snap.Merge(seed.Metrics().Snapshot())
	if snap.Counters[`peer_retries_total{op="edge_fetch"}`] == 0 {
		t.Error("edge error injection produced no edge retries")
	}
	degr := snap.Counters[`peer_p2p_degradations_total{reason="corruption"}`] +
		snap.Counters[`peer_p2p_degradations_total{reason="stall"}`]
	if degr == 0 {
		t.Error("no p2p degradation counted")
	}
	edgeSnap := c.edgeSrv.Metrics().Snapshot()
	var injected int64
	for k, v := range edgeSnap.Counters {
		if strings.HasPrefix(k, "faults_injected_total") {
			injected += v
		}
	}
	if injected == 0 {
		t.Error("edge fault injector reports zero injected faults")
	}

	// The injected-fault series are on the edge's public /metrics page
	// (which is itself exempt from injection).
	resp, err := http.Get(c.EdgeURL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		`faults_injected_total{kind="error"}`,
		`faults_injected_total{kind="flap"}`,
		`faults_injected_total{kind="latency"}`,
	} {
		if !strings.Contains(string(body), series) {
			t.Errorf("edge /metrics missing %q", series)
		}
	}

	// Phase 4: a hard edge outage trips the per-server circuit breaker.
	c.edgeSrv.Close()
	for i := 0; i < 5; i++ {
		seed.Download(obj.ID) // authorize fails; each attempt feeds the breaker
	}
	if got := seed.Metrics().Snapshot().Counters[`peer_breaker_trips_total{target="edge"}`]; got == 0 {
		t.Error("hard edge outage did not trip the breaker")
	}
}
