package netsession

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/netip"
	"path/filepath"
	"sync"
	"time"

	"netsession/internal/accounting"
	"netsession/internal/cluster"
	"netsession/internal/controlplane"
	"netsession/internal/edge"
	"netsession/internal/faults"
	"netsession/internal/geo"
	"netsession/internal/logpipe"
	"netsession/internal/nat"
	"netsession/internal/telemetry"
)

// ClusterConfig configures an in-process NetSession deployment: the edge
// tier, the control plane, and a synthetic world atlas that gives peers
// geographic identities.
type ClusterConfig struct {
	// Key is the HMAC key shared between the edge tier and the control
	// plane for authorization tokens; empty selects a fixed demo key.
	Key []byte
	// NumCNs is how many connection nodes to start per control-plane node
	// (default 1).
	NumCNs int
	// CPNodes is how many control-plane nodes to run (default 1). With more
	// than one, a cluster membership layer consistent-hashes each geographic
	// region to one node: logins for a region another node owns are
	// redirected, DNs are region-partitioned, and log ingest dedups batches
	// across nodes so uploader failover stays exactly-once (§3.8).
	CPNodes int
	// CPProbeInterval is how often control-plane nodes probe each other's
	// status endpoints for liveness; zero selects 1s. Only used when
	// CPNodes > 1.
	CPProbeInterval time.Duration
	// CPFailAfter is how many consecutive probe failures mark a node dead
	// (triggering region handoff); zero selects 3.
	CPFailAfter int
	// Atlas controls synthetic world generation.
	Atlas geo.AtlasConfig
	// ClientConfig is pushed to peers on login.
	ClientConfig edge.ClientConfig
	// Policy is the peer-selection policy (default: locality-aware).
	Policy SelectionPolicy
	// VerifyAccounting enables edge-ledger verification of client usage
	// reports (on by default via DefaultClusterConfig).
	VerifyAccounting bool
	// MaxSessionsPerCN sheds logins beyond this; zero means unlimited.
	MaxSessionsPerCN int
	// DNRebuildWindow is how long a failed DN answers queries edge-only
	// while peers RE-ADD their holdings; zero selects the control plane's
	// 2s default, negative disables the window.
	DNRebuildWindow time.Duration
	// EdgeFaults injects faults into the edge HTTP tier (latency, errors,
	// severed connections, availability flapping) — the chaos knob that
	// exercises the client's edge failover and retry paths (§3.3). The zero
	// value injects nothing.
	EdgeFaults faults.Config
	// CNFaults wraps every accepted CN control connection with the fault
	// model, exercising the client's reconnect-with-backoff path (§3.8).
	// The zero value injects nothing.
	CNFaults faults.Config
	// LogDir, when set, opens a durable segment store there: every accepted
	// download record is spilled to rotated gzip NDJSON segments that
	// netsession-analyze reads (the month of logs of §4.1). With CPNodes > 1
	// each node writes under its own LogDir/<node-id> subdirectory.
	LogDir string
	// MaxLogRecords bounds the collector's in-memory log per record kind;
	// zero selects the accounting defaults, negative is unbounded.
	MaxLogRecords int
	// IngestFaults injects faults (503s, stalls, 429 storms) into the log
	// ingest endpoint. The zero value injects nothing; chaos tests can also
	// swap injectors at runtime via LogIngest().SetFaults.
	IngestFaults faults.Config
}

// DefaultClusterConfig returns a single-CN deployment with accounting
// verification enabled.
func DefaultClusterConfig() ClusterConfig {
	atlas := geo.DefaultAtlasConfig()
	atlas.TailCountries = 10
	return ClusterConfig{
		NumCNs:           1,
		Atlas:            atlas,
		ClientConfig:     edge.DefaultClientConfig(),
		Policy:           DefaultSelectionPolicy(),
		VerifyAccounting: true,
	}
}

// cpNode is one control-plane node of the deployment: its own collector,
// CNs, operator HTTP surface, membership observer, durable ack store, and
// janitor. Nodes share the edge tier, the token key, and the world atlas —
// nothing else; cross-node exactly-once rides the anti-entropy ack sync.
type cpNode struct {
	id      string
	cp      *controlplane.ControlPlane
	status  *controlplane.StatusServer
	cns     []*controlplane.CN
	member  *cluster.Membership
	acks    *logpipe.AckStore
	syncer  *logpipe.AckSyncer
	stopJan func()
	killed  bool
	drained bool
}

// Cluster is a running in-process deployment.
type Cluster struct {
	cfg   ClusterConfig
	atlas *geo.Atlas
	scape *geo.EdgeScape

	minter    *edge.TokenMinter
	verifier  accounting.Verifier
	rebuildMs int64

	edgeSrv    *edge.Server
	monitor    *controlplane.Monitor
	stun       *nat.Server
	nodes      []*cpNode
	stopScrape func()

	mu  sync.Mutex // guards nodes (AddCPNode appends), per-node flags, rng
	rng *rand.Rand
}

// StartCluster launches the edge server, the monitoring node and the
// control plane (one or more nodes) on loopback addresses.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if len(cfg.Key) == 0 {
		cfg.Key = []byte("netsession-demo-key")
	}
	if cfg.NumCNs <= 0 {
		cfg.NumCNs = 1
	}
	if cfg.CPNodes <= 0 {
		cfg.CPNodes = 1
	}
	if cfg.Policy.MaxPeers == 0 {
		cfg.Policy = DefaultSelectionPolicy()
	}
	if cfg.ClientConfig.MaxUploadConns == 0 {
		cfg.ClientConfig = edge.DefaultClientConfig()
	}
	atlas := geo.GenerateAtlas(cfg.Atlas)
	scape := geo.NewEdgeScape(atlas)
	minter := edge.NewTokenMinter(cfg.Key)
	ledger := edge.NewLedger()

	es := edge.NewServer(edge.NewCatalog(), minter, ledger, cfg.ClientConfig)
	// Fault middleware must be installed before the listener starts; a nil
	// injector (the zero config) is a no-op.
	es.UseFaults(faults.New(cfg.EdgeFaults, es.Metrics()))
	if err := es.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	mon := controlplane.NewMonitor(0)
	if err := mon.Start("127.0.0.1:0"); err != nil {
		es.Close()
		return nil, err
	}
	stun, err := nat.NewServer("127.0.0.1:0")
	if err != nil {
		es.Close()
		mon.Close()
		return nil, err
	}
	var verifier accounting.Verifier
	if cfg.VerifyAccounting {
		// The ledger verifier only reads the shared edge ledger, so one
		// instance serves every node's collector.
		verifier = &accounting.LedgerVerifier{Edge: ledger}
	}
	rebuildMs := cfg.DNRebuildWindow.Milliseconds()
	if cfg.DNRebuildWindow < 0 {
		rebuildMs = -1 // sub-millisecond negatives still mean "disabled"
	}
	c := &Cluster{
		cfg: cfg, atlas: atlas, scape: scape, edgeSrv: es, monitor: mon, stun: stun,
		minter: minter, verifier: verifier, rebuildMs: rebuildMs,
		rng: rand.New(rand.NewSource(99)),
	}
	for i := 0; i < cfg.CPNodes; i++ {
		node, err := c.startNode(fmt.Sprintf("cp-%d", i), false)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, node)
	}
	// With several nodes, wire the membership layer: every node probes every
	// other node's status endpoint and applies its own ring view. All CN and
	// status addresses are known by now, so the seed list is complete and
	// the very first view (fired synchronously by Start) partitions the
	// regions before any peer connects.
	if cfg.CPNodes > 1 {
		descs := make([]cluster.Node, len(c.nodes))
		for i, n := range c.nodes {
			descs[i] = n.desc()
		}
		for i, n := range c.nodes {
			seeds := make([]cluster.Node, 0, len(descs)-1)
			for j, d := range descs {
				if j != i {
					seeds = append(seeds, d)
				}
			}
			c.wireMembership(n, descs[i], seeds, false)
		}
	}
	// The monitor aggregates the fleet's telemetry: "download and upload
	// performance is constantly monitored" (§3.8). Every node is a scrape
	// target; a dead node shows up in /v1/health instead of vanishing.
	targets := map[string]string{"edge": c.EdgeURL()}
	if cfg.CPNodes == 1 {
		targets["cp"] = c.ControlPlaneURL()
	} else {
		for _, n := range c.nodes {
			targets[n.id] = "http://" + n.status.Addr()
		}
	}
	mon.SetScrapeTargets(targets)
	c.stopScrape = mon.StartScraping(5 * time.Second)
	return c, nil
}

// startNode builds one control-plane node: registry, fault injector,
// durable stores, CNs, status server, janitor. Membership is wired
// separately once the seed list is known. joining marks a node added to a
// running cluster (AddCPNode): it gets multi-node treatment regardless of
// the boot-time CPNodes and applies its first ring view as a real takeover.
func (c *Cluster) startNode(nodeID string, joining bool) (*cpNode, error) {
	cfg := c.cfg
	multi := cfg.CPNodes > 1 || joining
	// Each node has its own registry (metric series would collide) and
	// its own fault injector, segment store, ack store, and collector.
	cpReg := telemetry.NewRegistry()
	cnInj := faults.New(cfg.CNFaults, cpReg)
	var logStore *logpipe.Store
	var err error
	if cfg.LogDir != "" {
		dir := cfg.LogDir
		if multi {
			dir = filepath.Join(cfg.LogDir, nodeID)
		}
		logStore, err = logpipe.OpenStore(logpipe.StoreConfig{
			Dir: dir, Telemetry: cpReg,
		})
		if err != nil {
			return nil, err
		}
	}
	node := &cpNode{id: nodeID}
	if multi {
		// The node's durable acknowledgement table. With a LogDir it
		// survives the process (real crash recovery); without one it is
		// memory-only but still per-node — never a shared pointer.
		ackDir := ""
		if cfg.LogDir != "" {
			ackDir = filepath.Join(cfg.LogDir, nodeID, "acks")
		}
		node.acks, err = logpipe.OpenAckStore(logpipe.AckConfig{Dir: ackDir})
		if err != nil {
			return nil, err
		}
		node.syncer = logpipe.NewAckSyncer(logpipe.AckSyncerConfig{
			Store: node.acks, Telemetry: cpReg,
		})
	}
	cp, err := controlplane.New(controlplane.Config{
		NodeID:            nodeID,
		Scape:             c.scape,
		Minter:            c.minter,
		Collector:         accounting.NewCollector(c.verifier),
		Policy:            cfg.Policy,
		ClientConfig:      cfg.ClientConfig,
		MaxSessionsPerCN:  cfg.MaxSessionsPerCN,
		DNRebuildWindowMs: c.rebuildMs,
		Telemetry:         cpReg,
		ConnWrap:          cnInj.WrapConn,
		LogStore:          logStore,
		MaxLogRecords:     cfg.MaxLogRecords,
		IngestFaults:      faults.New(cfg.IngestFaults, cpReg),
		LogAcks:           node.acks,
		JoinExisting:      joining,
	})
	if err != nil {
		return nil, err
	}
	node.cp = cp
	for j := 0; j < cfg.NumCNs; j++ {
		cn, err := cp.StartCN("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		node.cns = append(node.cns, cn)
	}
	node.status, err = cp.StartStatusServer("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	node.stopJan = cp.StartJanitor(time.Minute, int64(cfg.Policy.SoftStateTTLMs))
	return node, nil
}

// desc returns the node's cluster descriptor (status URL + CN addresses).
func (n *cpNode) desc() cluster.Node {
	d := cluster.Node{ID: n.id, StatusURL: "http://" + n.status.Addr()}
	for _, cn := range n.cns {
		d.CNAddrs = append(d.CNAddrs, cn.Addr())
	}
	return d
}

// wireMembership attaches a membership instance to a node: ring views feed
// the control plane and the ack syncer's peer set, advertised ack sequences
// trigger anti-entropy pulls, and the ingest endpoint gains the synchronous
// cross-node seen check for replays that beat replication.
func (c *Cluster) wireMembership(n *cpNode, self cluster.Node, seeds []cluster.Node, joinMode bool) {
	cp, syncer, selfID := n.cp, n.syncer, self.ID
	n.member = cluster.New(cluster.Config{
		Self:          self,
		Seeds:         seeds,
		ProbeInterval: c.cfg.CPProbeInterval,
		FailAfter:     c.cfg.CPFailAfter,
		JoinMode:      joinMode,
		Telemetry:     cp.Metrics(),
		OnChange: func(v cluster.View) {
			if syncer != nil {
				peers := make(map[string]string, len(v.Nodes))
				for _, m := range v.Nodes {
					if m.ID != selfID {
						peers[m.ID] = m.StatusURL
					}
				}
				syncer.SetPeers(peers)
			}
			cp.ApplyRingView(v)
		},
		OnAckSeq: func(m cluster.Node, seq uint64) {
			if syncer != nil {
				syncer.ObserveAckSeq(m.ID, m.StatusURL, seq)
			}
		},
	})
	cp.SetMembership(n.member)
	if syncer != nil {
		cp.LogIngest().SetPeerSeen(syncer.SeenAnywhere)
	}
	n.member.Start()
}

// AddCPNode starts a new control-plane node that knows nothing about the
// cluster but one live status URL — the config-free join. Seed exchange
// discovers the rest: the new node probes the seed, learns the alive view
// from its status document, is itself learned cluster-wide through its
// probe identity headers, and applies its first ring view as a real
// takeover once discovery has run. Returns the new node's index.
func (c *Cluster) AddCPNode(seedStatusURL string) (int, error) {
	c.mu.Lock()
	nodeID := fmt.Sprintf("cp-%d", len(c.nodes))
	c.mu.Unlock()
	node, err := c.startNode(nodeID, true)
	if err != nil {
		return 0, err
	}
	c.wireMembership(node, node.desc(),
		[]cluster.Node{{StatusURL: seedStatusURL}}, true)
	c.mu.Lock()
	c.nodes = append(c.nodes, node)
	idx := len(c.nodes) - 1
	c.mu.Unlock()
	return idx, nil
}

// DrainCPNode gracefully removes node i: POST /v1/drain hands its regions'
// directory snapshots to the new owners (no rebuild window on takeover),
// flushes its ack window to survivors, and announces the departure; then
// the node's local machinery stops. Returns the drain summary.
func (c *Cluster) DrainCPNode(i int) (controlplane.DrainSummary, error) {
	c.mu.Lock()
	n := c.nodes[i]
	already := n.killed || n.drained
	if !already {
		n.drained = true
	}
	c.mu.Unlock()
	var sum controlplane.DrainSummary
	if already {
		return sum, fmt.Errorf("netsession: node %d already gone", i)
	}
	resp, err := http.Post("http://"+n.status.Addr()+controlplane.DrainPath, "application/json", nil)
	if err != nil {
		return sum, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		return sum, err
	}
	if n.member != nil {
		n.member.Stop()
	}
	if n.stopJan != nil {
		n.stopJan()
	}
	n.status.Close()
	if n.acks != nil {
		n.acks.Close()
	}
	return sum, nil
}

// Close shuts everything down.
func (c *Cluster) Close() {
	if c.stopScrape != nil {
		c.stopScrape()
	}
	c.mu.Lock()
	nodes := append([]*cpNode(nil), c.nodes...)
	c.mu.Unlock()
	for _, n := range nodes {
		if n.member != nil {
			n.member.Stop()
		}
		if n.stopJan != nil {
			n.stopJan()
		}
		if n.status != nil {
			n.status.Close()
		}
		if n.cp != nil {
			n.cp.Close()
		}
		if n.acks != nil {
			n.acks.Close()
		}
	}
	if c.edgeSrv != nil {
		c.edgeSrv.Close()
	}
	if c.monitor != nil {
		c.monitor.Close()
	}
	if c.stun != nil {
		c.stun.Close()
	}
}

// KillCPNode abruptly stops node i — the in-process analogue of kill -9 on a
// control-plane node. Its listeners and every live control session close
// immediately; nothing is flushed, handed off, or drained. The node stays in
// the seed lists so survivors detect the death by probe failure, exactly as
// they would a real crash. In-memory accounting on the killed node is lost
// (the durable segment store under LogDir is not).
func (c *Cluster) KillCPNode(i int) {
	c.mu.Lock()
	n := c.nodes[i]
	if n.killed || n.drained {
		c.mu.Unlock()
		return
	}
	n.killed = true
	c.mu.Unlock()
	if n.member != nil {
		n.member.Stop()
	}
	if n.stopJan != nil {
		n.stopJan()
	}
	n.status.Kill()
	n.cp.Close()
}

// liveNodes returns the nodes not yet killed or drained.
func (c *Cluster) liveNodes() []*cpNode {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*cpNode
	for _, n := range c.nodes {
		if !n.killed && !n.drained {
			out = append(out, n)
		}
	}
	return out
}

// EdgeURL returns the edge tier's base URL for PeerConfig.EdgeURL.
func (c *Cluster) EdgeURL() string { return "http://" + c.edgeSrv.Addr() }

// ControlAddrs returns every node's CN addresses for
// PeerConfig.ControlAddrs. Killed nodes' addresses are included — peers are
// expected to rotate past dead CNs, not to be handed a curated list.
func (c *Cluster) ControlAddrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, n := range c.nodes {
		for _, cn := range n.cns {
			out = append(out, cn.Addr())
		}
	}
	return out
}

// MonitorAddr returns the monitoring node's HTTP address.
func (c *Cluster) MonitorAddr() string { return c.monitor.Addr() }

// ControlPlaneURL returns the first node's operator HTTP surface
// (GET /v1/status, /metrics, /v1/telemetry).
func (c *Cluster) ControlPlaneURL() string { return "http://" + c.nodes[0].status.Addr() }

// ControlPlaneURLs returns every node's operator HTTP surface, killed nodes
// included (log uploaders rotate past dead ones).
func (c *Cluster) ControlPlaneURLs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = "http://" + n.status.Addr()
	}
	return out
}

// ControlPlane exposes the first control-plane node (metrics, status, DN
// failover).
func (c *Cluster) ControlPlane() *controlplane.ControlPlane { return c.nodes[0].cp }

// ControlPlaneNode exposes node i of the control plane.
func (c *Cluster) ControlPlaneNode(i int) *controlplane.ControlPlane {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[i].cp
}

// NumCPNodes returns how many control-plane nodes were started.
func (c *Cluster) NumCPNodes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// MonitorURL returns the base URL for PeerConfig.MonitorURL.
func (c *Cluster) MonitorURL() string { return "http://" + c.monitor.Addr() }

// STUNAddr returns the STUN server address for PeerConfig.STUNAddr.
func (c *Cluster) STUNAddr() string { return c.stun.Addr() }

// Monitor exposes the monitoring node (report counters, recent ring).
func (c *Cluster) Monitor() *controlplane.Monitor { return c.monitor }

// Publish makes an object available from the edge tier; its body is the
// deterministic synthetic stream for its content ID.
func (c *Cluster) Publish(obj *Object) error {
	return c.edgeSrv.Catalog().PublishSynthetic(obj)
}

// AllocateIdentity assigns a synthetic public IP in the given country (ISO
// code such as "US" or "DE"), giving a live peer a geographic identity the
// control plane can use for locality-aware selection.
func (c *Cluster) AllocateIdentity(country string) (string, error) {
	cc, ok := c.atlas.Country(geo.CountryCode(country))
	if !ok {
		return "", fmt.Errorf("netsession: unknown country %q", country)
	}
	c.mu.Lock()
	as := c.atlas.SampleAS(c.rng, cc.Code)
	loc := cc.Locations[c.rng.Intn(len(cc.Locations))]
	c.mu.Unlock()
	ip, err := c.scape.AllocateIP(as.Number, loc)
	if err != nil {
		return "", err
	}
	return ip.String(), nil
}

// AccountingLog returns a snapshot of the collected usage records, merged
// across every live node. Killed nodes are excluded: their in-memory window
// died with the process, the same way a real crash loses unflushed state.
func (c *Cluster) AccountingLog() *Log {
	out := &accounting.Log{}
	for _, n := range c.liveNodes() {
		s := n.cp.Collector().Snapshot()
		out.Downloads = append(out.Downloads, s.Downloads...)
		out.Logins = append(out.Logins, s.Logins...)
		out.Registrations = append(out.Registrations, s.Registrations...)
	}
	return out
}

// LogStore returns the first node's durable log segment store, or nil when
// LogDir was not configured.
func (c *Cluster) LogStore() *logpipe.Store { return c.nodes[0].cp.LogStore() }

// LogIngest returns the first node's log ingest endpoint; chaos tests use
// it to flip fault injection on the live POST /v1/logs/batch handler.
func (c *Cluster) LogIngest() *logpipe.Ingest { return c.nodes[0].cp.LogIngest() }

// RejectedReports returns how many client usage reports failed edge
// verification (suspected accounting attacks), summed across live nodes.
func (c *Cluster) RejectedReports() int {
	total := 0
	for _, n := range c.liveNodes() {
		total += n.cp.Collector().Rejected()
	}
	return total
}

// Lookup resolves a synthetic identity IP (from AllocateIdentity).
func (c *Cluster) Lookup(ipStr string) (country string, asn uint32, ok bool) {
	ip, err := netip.ParseAddr(ipStr)
	if err != nil {
		return "", 0, false
	}
	rec, ok := c.scape.Lookup(ip)
	if !ok {
		return "", 0, false
	}
	return string(rec.Country), uint32(rec.ASN), true
}
