package netsession

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"netsession/internal/accounting"
	"netsession/internal/controlplane"
	"netsession/internal/edge"
	"netsession/internal/faults"
	"netsession/internal/geo"
	"netsession/internal/logpipe"
	"netsession/internal/nat"
	"netsession/internal/telemetry"
)

// ClusterConfig configures an in-process NetSession deployment: the edge
// tier, the control plane, and a synthetic world atlas that gives peers
// geographic identities.
type ClusterConfig struct {
	// Key is the HMAC key shared between the edge tier and the control
	// plane for authorization tokens; empty selects a fixed demo key.
	Key []byte
	// NumCNs is how many connection nodes to start (default 1).
	NumCNs int
	// Atlas controls synthetic world generation.
	Atlas geo.AtlasConfig
	// ClientConfig is pushed to peers on login.
	ClientConfig edge.ClientConfig
	// Policy is the peer-selection policy (default: locality-aware).
	Policy SelectionPolicy
	// VerifyAccounting enables edge-ledger verification of client usage
	// reports (on by default via DefaultClusterConfig).
	VerifyAccounting bool
	// MaxSessionsPerCN sheds logins beyond this; zero means unlimited.
	MaxSessionsPerCN int
	// DNRebuildWindow is how long a failed DN answers queries edge-only
	// while peers RE-ADD their holdings; zero selects the control plane's
	// 2s default, negative disables the window.
	DNRebuildWindow time.Duration
	// EdgeFaults injects faults into the edge HTTP tier (latency, errors,
	// severed connections, availability flapping) — the chaos knob that
	// exercises the client's edge failover and retry paths (§3.3). The zero
	// value injects nothing.
	EdgeFaults faults.Config
	// CNFaults wraps every accepted CN control connection with the fault
	// model, exercising the client's reconnect-with-backoff path (§3.8).
	// The zero value injects nothing.
	CNFaults faults.Config
	// LogDir, when set, opens a durable segment store there: every accepted
	// download record is spilled to rotated gzip NDJSON segments that
	// netsession-analyze reads (the month of logs of §4.1).
	LogDir string
	// MaxLogRecords bounds the collector's in-memory log per record kind;
	// zero selects the accounting defaults, negative is unbounded.
	MaxLogRecords int
	// IngestFaults injects faults (503s, stalls, 429 storms) into the log
	// ingest endpoint. The zero value injects nothing; chaos tests can also
	// swap injectors at runtime via LogIngest().SetFaults.
	IngestFaults faults.Config
}

// DefaultClusterConfig returns a single-CN deployment with accounting
// verification enabled.
func DefaultClusterConfig() ClusterConfig {
	atlas := geo.DefaultAtlasConfig()
	atlas.TailCountries = 10
	return ClusterConfig{
		NumCNs:           1,
		Atlas:            atlas,
		ClientConfig:     edge.DefaultClientConfig(),
		Policy:           DefaultSelectionPolicy(),
		VerifyAccounting: true,
	}
}

// Cluster is a running in-process deployment.
type Cluster struct {
	atlas *geo.Atlas
	scape *geo.EdgeScape

	edgeSrv    *edge.Server
	monitor    *controlplane.Monitor
	stun       *nat.Server
	cp         *controlplane.ControlPlane
	cpStatus   *controlplane.StatusServer
	cns        []*controlplane.CN
	stopJan    func()
	stopScrape func()
	rng        *rand.Rand
}

// StartCluster launches the edge server, the monitoring node and the
// control plane on loopback addresses.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if len(cfg.Key) == 0 {
		cfg.Key = []byte("netsession-demo-key")
	}
	if cfg.NumCNs <= 0 {
		cfg.NumCNs = 1
	}
	if cfg.Policy.MaxPeers == 0 {
		cfg.Policy = DefaultSelectionPolicy()
	}
	if cfg.ClientConfig.MaxUploadConns == 0 {
		cfg.ClientConfig = edge.DefaultClientConfig()
	}
	atlas := geo.GenerateAtlas(cfg.Atlas)
	scape := geo.NewEdgeScape(atlas)
	minter := edge.NewTokenMinter(cfg.Key)
	ledger := edge.NewLedger()

	es := edge.NewServer(edge.NewCatalog(), minter, ledger, cfg.ClientConfig)
	// Fault middleware must be installed before the listener starts; a nil
	// injector (the zero config) is a no-op.
	es.UseFaults(faults.New(cfg.EdgeFaults, es.Metrics()))
	if err := es.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	mon := controlplane.NewMonitor(0)
	if err := mon.Start("127.0.0.1:0"); err != nil {
		es.Close()
		return nil, err
	}
	stun, err := nat.NewServer("127.0.0.1:0")
	if err != nil {
		es.Close()
		mon.Close()
		return nil, err
	}
	var verifier accounting.Verifier
	if cfg.VerifyAccounting {
		verifier = &accounting.LedgerVerifier{Edge: ledger}
	}
	// The CN fault injector shares the control plane's registry so its
	// faults_injected_total counters surface on the same /metrics page.
	cpReg := telemetry.NewRegistry()
	cnInj := faults.New(cfg.CNFaults, cpReg)
	rebuildMs := cfg.DNRebuildWindow.Milliseconds()
	if cfg.DNRebuildWindow < 0 {
		rebuildMs = -1 // sub-millisecond negatives still mean "disabled"
	}
	var logStore *logpipe.Store
	if cfg.LogDir != "" {
		logStore, err = logpipe.OpenStore(logpipe.StoreConfig{
			Dir: cfg.LogDir, Telemetry: cpReg,
		})
		if err != nil {
			es.Close()
			mon.Close()
			stun.Close()
			return nil, err
		}
	}
	cp, err := controlplane.New(controlplane.Config{
		Scape:             scape,
		Minter:            minter,
		Collector:         accounting.NewCollector(verifier),
		Policy:            cfg.Policy,
		ClientConfig:      cfg.ClientConfig,
		MaxSessionsPerCN:  cfg.MaxSessionsPerCN,
		DNRebuildWindowMs: rebuildMs,
		Telemetry:         cpReg,
		ConnWrap:          cnInj.WrapConn,
		LogStore:          logStore,
		MaxLogRecords:     cfg.MaxLogRecords,
		IngestFaults:      faults.New(cfg.IngestFaults, cpReg),
	})
	if err != nil {
		es.Close()
		mon.Close()
		stun.Close()
		return nil, err
	}
	c := &Cluster{
		atlas: atlas, scape: scape, edgeSrv: es, monitor: mon, stun: stun, cp: cp,
		rng: rand.New(rand.NewSource(99)),
	}
	for i := 0; i < cfg.NumCNs; i++ {
		cn, err := cp.StartCN("127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, err
		}
		c.cns = append(c.cns, cn)
	}
	c.cpStatus, err = cp.StartStatusServer("127.0.0.1:0")
	if err != nil {
		c.Close()
		return nil, err
	}
	// The monitor aggregates the fleet's telemetry: "download and upload
	// performance is constantly monitored" (§3.8).
	mon.SetScrapeTargets(map[string]string{
		"edge": c.EdgeURL(),
		"cp":   c.ControlPlaneURL(),
	})
	c.stopScrape = mon.StartScraping(5 * time.Second)
	c.stopJan = cp.StartJanitor(time.Minute, int64(cfg.Policy.SoftStateTTLMs))
	return c, nil
}

// Close shuts everything down.
func (c *Cluster) Close() {
	if c.stopJan != nil {
		c.stopJan()
	}
	if c.stopScrape != nil {
		c.stopScrape()
	}
	if c.cpStatus != nil {
		c.cpStatus.Close()
	}
	if c.cp != nil {
		c.cp.Close()
	}
	if c.edgeSrv != nil {
		c.edgeSrv.Close()
	}
	if c.monitor != nil {
		c.monitor.Close()
	}
	if c.stun != nil {
		c.stun.Close()
	}
}

// EdgeURL returns the edge tier's base URL for PeerConfig.EdgeURL.
func (c *Cluster) EdgeURL() string { return "http://" + c.edgeSrv.Addr() }

// ControlAddrs returns the CN addresses for PeerConfig.ControlAddrs.
func (c *Cluster) ControlAddrs() []string {
	out := make([]string, len(c.cns))
	for i, cn := range c.cns {
		out[i] = cn.Addr()
	}
	return out
}

// MonitorAddr returns the monitoring node's HTTP address.
func (c *Cluster) MonitorAddr() string { return c.monitor.Addr() }

// ControlPlaneURL returns the control plane's operator HTTP surface
// (GET /v1/status, /metrics, /v1/telemetry).
func (c *Cluster) ControlPlaneURL() string { return "http://" + c.cpStatus.Addr() }

// ControlPlane exposes the control plane (metrics, status, DN failover).
func (c *Cluster) ControlPlane() *controlplane.ControlPlane { return c.cp }

// MonitorURL returns the base URL for PeerConfig.MonitorURL.
func (c *Cluster) MonitorURL() string { return "http://" + c.monitor.Addr() }

// STUNAddr returns the STUN server address for PeerConfig.STUNAddr.
func (c *Cluster) STUNAddr() string { return c.stun.Addr() }

// Monitor exposes the monitoring node (report counters, recent ring).
func (c *Cluster) Monitor() *controlplane.Monitor { return c.monitor }

// Publish makes an object available from the edge tier; its body is the
// deterministic synthetic stream for its content ID.
func (c *Cluster) Publish(obj *Object) error {
	return c.edgeSrv.Catalog().PublishSynthetic(obj)
}

// AllocateIdentity assigns a synthetic public IP in the given country (ISO
// code such as "US" or "DE"), giving a live peer a geographic identity the
// control plane can use for locality-aware selection.
func (c *Cluster) AllocateIdentity(country string) (string, error) {
	cc, ok := c.atlas.Country(geo.CountryCode(country))
	if !ok {
		return "", fmt.Errorf("netsession: unknown country %q", country)
	}
	as := c.atlas.SampleAS(c.rng, cc.Code)
	loc := cc.Locations[c.rng.Intn(len(cc.Locations))]
	ip, err := c.scape.AllocateIP(as.Number, loc)
	if err != nil {
		return "", err
	}
	return ip.String(), nil
}

// AccountingLog returns a snapshot of the collected usage records.
func (c *Cluster) AccountingLog() *Log { return c.cp.Collector().Snapshot() }

// LogStore returns the durable log segment store, or nil when LogDir was not
// configured.
func (c *Cluster) LogStore() *logpipe.Store { return c.cp.LogStore() }

// LogIngest returns the control plane's log ingest endpoint; chaos tests use
// it to flip fault injection on the live POST /v1/logs/batch handler.
func (c *Cluster) LogIngest() *logpipe.Ingest { return c.cp.LogIngest() }

// RejectedReports returns how many client usage reports failed edge
// verification (suspected accounting attacks).
func (c *Cluster) RejectedReports() int { return c.cp.Collector().Rejected() }

// Lookup resolves a synthetic identity IP (from AllocateIdentity).
func (c *Cluster) Lookup(ipStr string) (country string, asn uint32, ok bool) {
	ip, err := netip.ParseAddr(ipStr)
	if err != nil {
		return "", 0, false
	}
	rec, ok := c.scape.Lookup(ip)
	if !ok {
		return "", 0, false
	}
	return string(rec.Country), uint32(rec.ASN), true
}
