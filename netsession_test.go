package netsession

import (
	"context"
	"testing"
	"time"

	"netsession/internal/protocol"
)

// TestClusterEndToEnd drives the public API exactly as the quickstart
// example does: start a cluster, publish an object, seed it, and download
// it peer-assisted on a second peer.
func TestClusterEndToEnd(t *testing.T) {
	c, err := StartCluster(DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obj, err := NewObject(1001, "game/patch-1.2.bin", 1, 400_000, 16<<10, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(obj); err != nil {
		t.Fatal(err)
	}

	spawn := func(country string, uploads bool) *Peer {
		ip, err := c.AllocateIdentity(country)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPeer(PeerConfig{
			DeclaredIP:     ip,
			ControlAddrs:   c.ControlAddrs(),
			EdgeURL:        c.EdgeURL(),
			UploadsEnabled: uploads,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		return p
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	seed := spawn("JP", true) // Japan maps to one control-plane region regardless of city
	dl, err := seed.Download(obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dl.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("seed outcome %v", res.Outcome)
	}

	// Give the registration a moment to land, then download on a second
	// peer in the same country.
	time.Sleep(200 * time.Millisecond)
	leech := spawn("JP", true)
	dl2, err := leech.Download(obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := dl2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("leech outcome %v", res2.Outcome)
	}
	if res2.BytesPeers == 0 {
		t.Error("second download got no peer bytes")
	}
	if !leech.Store().Complete(obj.ID) {
		t.Error("leech store incomplete")
	}

	// Accounting flowed through verification.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(c.AccountingLog().Downloads) >= 2 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	log := c.AccountingLog()
	if len(log.Downloads) < 2 {
		t.Fatalf("accounting has %d records, want 2", len(log.Downloads))
	}
	if c.RejectedReports() != 0 {
		t.Errorf("%d legitimate reports rejected", c.RejectedReports())
	}
	// Identities resolve.
	if country, asn, ok := c.Lookup(log.Downloads[0].IP.String()); !ok || country != "JP" || asn == 0 {
		t.Errorf("identity lookup failed: %v %v %v", country, asn, ok)
	}
}

func TestRunExperimentTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	cfg := SmallScenario()
	cfg.NumPeers = 1500
	cfg.TotalDownloads = 3000
	cfg.Days = 5
	exp, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := exp.Headlines()
	if h.CompletionInfraPct < 80 {
		t.Errorf("completion %.1f%% too low", h.CompletionInfraPct)
	}
	if rep := exp.Report(); len(rep) < 1000 {
		t.Errorf("report too short: %d bytes", len(rep))
	}
	if exp.Result().Events == 0 || exp.Input() == nil {
		t.Error("experiment accessors broken")
	}
}

func TestAllocateIdentityUnknownCountry(t *testing.T) {
	c, err := StartCluster(DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.AllocateIdentity("ZZ"); err == nil {
		t.Error("unknown country accepted")
	}
	if _, _, ok := c.Lookup("not-an-ip"); ok {
		t.Error("garbage IP resolved")
	}
}
