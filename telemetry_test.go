package netsession

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"netsession/internal/protocol"
	"netsession/internal/telemetry"
)

// TestClusterTelemetry drives a peer-assisted download and verifies the
// observability surface end to end: every HTTP-serving component exposes
// Prometheus metrics, the download trace covers the full lifecycle, and the
// monitor's scrape loop aggregates the fleet.
func TestClusterTelemetry(t *testing.T) {
	c, err := StartCluster(DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obj, err := NewObject(1001, "game/telemetry.bin", 1, 400_000, 16<<10, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(obj); err != nil {
		t.Fatal(err)
	}

	spawn := func(stateDir string) *Peer {
		ip, err := c.AllocateIdentity("JP")
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPeer(PeerConfig{
			DeclaredIP:     ip,
			ControlAddrs:   c.ControlAddrs(),
			EdgeURL:        c.EdgeURL(),
			MonitorURL:     c.MonitorURL(),
			UploadsEnabled: true,
			StateDir:       stateDir,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		return p
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	seed := spawn("")
	dl, err := seed.Download(obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := dl.Wait(ctx); err != nil || res.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("seed download: res=%+v err=%v", res, err)
	}

	time.Sleep(200 * time.Millisecond)
	// The leech runs disk-backed so the crash-recovery series (resume,
	// recovered pieces, store recovery scan) appear on its exposition too.
	leech := spawn(t.TempDir())
	dl2, err := leech.Download(obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := dl2.Wait(ctx)
	if err != nil || res2.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("leech download: res=%+v err=%v", res2, err)
	}
	if res2.BytesPeers == 0 {
		t.Fatal("leech got no peer bytes; trace assertions below would be vacuous")
	}

	// The peer-assisted download's trace covers the full lifecycle with
	// real (non-zero) durations.
	tr := dl2.Trace()
	for _, stage := range []string{
		telemetry.StageAuthorize,
		telemetry.StageManifest,
		telemetry.StageEdgeFetch,
		telemetry.StagePeerLookup,
		telemetry.StageSwarmConnect,
		telemetry.StagePieceTransfer,
		telemetry.StageComplete,
	} {
		st, ok := tr.Stage(stage)
		if !ok {
			t.Errorf("trace missing stage %q", stage)
			continue
		}
		if st.Count <= 0 || st.Total <= 0 {
			t.Errorf("stage %q: count=%d total=%v, want both positive", stage, st.Count, st.Total)
		}
	}
	if tr.Duration() <= 0 {
		t.Error("trace duration not positive")
	}
	if got := leech.Traces(); len(got) == 0 || got[len(got)-1] != tr {
		t.Errorf("client trace log does not end with the download's trace (%d entries)", len(got))
	}

	// Every HTTP-serving component exposes Prometheus text metrics.
	for name, base := range map[string]struct{ url, want string }{
		"edge":    {c.EdgeURL(), `edge_requests_total{endpoint="data"}`},
		"cp":      {c.ControlPlaneURL(), "cp_logins_total"},
		"monitor": {c.MonitorURL(), "monitor_scrapes_total"},
	} {
		body, ctype := get(t, base.url+"/metrics")
		if !strings.HasPrefix(ctype, "text/plain") {
			t.Errorf("%s /metrics content-type %q", name, ctype)
		}
		if !strings.Contains(body, base.want) {
			t.Errorf("%s /metrics missing %q:\n%s", name, base.want, body)
		}
		if jsonBody, jctype := get(t, base.url+"/v1/telemetry"); !strings.HasPrefix(jctype, "application/json") || len(jsonBody) == 0 {
			t.Errorf("%s /v1/telemetry content-type %q len %d", name, jctype, len(jsonBody))
		}
	}

	// Component counters moved: the edge served bytes, the CP logged peers
	// in and answered queries, the clients moved pieces both ways.
	edgeSnap := c.edgeSrv.Metrics().Snapshot()
	if edgeSnap.Counters["edge_bytes_served_total"] == 0 {
		t.Error("edge served no bytes according to telemetry")
	}
	cpSnap := c.ControlPlane().Metrics().Snapshot()
	if cpSnap.Counters["cp_logins_total"] < 2 || cpSnap.Counters["cp_queries_total"] == 0 {
		t.Errorf("cp counters: %+v", cpSnap.Counters)
	}
	leechSnap := leech.Metrics().Snapshot()
	if leechSnap.Counters[`peer_pieces_total{source="peer"}`] == 0 {
		t.Errorf("leech counters show no peer pieces: %+v", leechSnap.Counters)
	}
	seedSnap := seed.Metrics().Snapshot()
	if seedSnap.Counters["peer_bytes_up_total"] == 0 {
		t.Errorf("seed counters show no uploaded bytes: %+v", seedSnap.Counters)
	}

	// The resilience series are registered eagerly, so a healthy run still
	// exposes them (at zero) — dashboards can alert on them without waiting
	// for a first fault.
	var expo strings.Builder
	if err := leech.Metrics().WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		`peer_retries_total{op="control_reconnect"}`,
		`peer_retries_total{op="edge_fetch"}`,
		`peer_breaker_trips_total{target="edge"}`,
		`peer_swarm_blacklist_total`,
		`peer_p2p_degradations_total{reason="corruption"}`,
		`peer_p2p_degradations_total{reason="stall"}`,
		`peer_resume_total`,
		`peer_pieces_recovered_total`,
		`peer_cp_failovers_total`,
		`store_recovery_corrupt_total`,
	} {
		if !strings.Contains(expo.String(), series) {
			t.Errorf("peer exposition missing resilience series %q", series)
		}
	}

	// The control plane's DN-recovery series are eager too: every region's
	// rebuild counter and flag exist at zero before any DN has ever failed.
	cpBody, _ := get(t, c.ControlPlaneURL()+"/metrics")
	for _, series := range []string{
		`dn_rebuild_announces_total{region="AS-NEA"}`,
		`dn_rebuild_announces_total{region="EU-West"}`,
		`dn_rebuilding{region="AS-NEA"}`,
		"dn_rebuild_ms",
	} {
		if !strings.Contains(cpBody, series) {
			t.Errorf("cp /metrics missing DN recovery series %q", series)
		}
	}

	// The live-analytics series are eager too: every region's offload gauge
	// and both AS-locality counters exist before (and regardless of) traffic.
	// Regions this cluster never touches must expose an exact zero.
	for _, series := range []string{
		`cp_offload_fraction{region="EU-West"}`,
		`cp_offload_fraction{region="AS-NEA"}`,
		`cp_offload_fraction{region="AF"} 0`,
		`cp_offload_fraction{region="OC"} 0`,
		"cp_intra_as_bytes_total",
		"cp_inter_as_bytes_total",
		"cp_active_guids_estimate",
	} {
		if !strings.Contains(cpBody, series) {
			t.Errorf("cp /metrics missing analytics series %q", series)
		}
	}

	// The cluster series are eager as well: a single-node deployment reports
	// a one-node ring and zero handoffs for every region, so multi-node
	// dashboards work unchanged against one node.
	for _, series := range []string{
		"cp_ring_nodes 1",
		`cp_region_handoffs_total{region="AS-NEA"} 0`,
		`cp_region_handoffs_total{region="AF"} 0`,
		"cp_logins_redirected_total 0",
	} {
		if !strings.Contains(cpBody, series) {
			t.Errorf("cp /metrics missing analytics series %q", series)
		}
	}
	monBody, _ := get(t, c.MonitorURL()+"/metrics")
	if !strings.Contains(monBody, "monitor_scrape_evictions_total 0") {
		t.Error(`monitor /metrics missing eager series "monitor_scrape_evictions_total 0"`)
	}

	// The monitor aggregates the fleet: after one scrape pass its fleet
	// view contains both the edge's and the control plane's series.
	c.Monitor().ScrapeOnce()
	agg := c.Monitor().Aggregate()
	if agg.Counters["edge_bytes_served_total"] == 0 || agg.Counters["cp_logins_total"] == 0 {
		t.Errorf("monitor aggregate incomplete: %+v", agg.Counters)
	}
}

func get(t *testing.T, url string) (body, contentType string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp.Header.Get("Content-Type")
}
