package netsession

import (
	"context"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"netsession/internal/geo"
	"netsession/internal/protocol"
)

// countPieceFiles counts the durable verified pieces a state directory holds
// for one object — the crash tests' ground truth for "what survived the
// kill".
func countPieceFiles(stateDir string, oid ObjectID) int {
	dir := filepath.Join(stateDir, "content", "objects", hex.EncodeToString(oid[:]))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".piece") {
			n++
		}
	}
	return n
}

func checkpointFile(stateDir string, oid ObjectID) string {
	return filepath.Join(stateDir, "downloads", hex.EncodeToString(oid[:])+".json")
}

// TestCrashPeerKillAndResume kills a peer mid-swarm (the in-process
// equivalent of a SIGKILL: no goodbye, no stats report, no checkpoint
// cleanup) and restarts it from the same state directory. The restarted peer
// must resume from its persisted bitfield — fetching exactly the missing
// pieces, never refetching a verified one — and complete hash-verified.
func TestCrashPeerKillAndResume(t *testing.T) {
	cfg := DefaultClusterConfig()
	// Injected edge latency widens the window between first piece and
	// completion so the kill reliably lands mid-download.
	cfg.EdgeFaults = FaultProfile{
		Seed:       17,
		LatencyMin: 2 * time.Millisecond,
		LatencyMax: 6 * time.Millisecond,
	}
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obj, err := NewObject(3001, "crash/payload.bin", 1, 4_000_000, 16<<10, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(obj); err != nil {
		t.Fatal(err)
	}

	spawn := func(stateDir string) *Peer {
		ip, err := c.AllocateIdentity("JP")
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPeer(PeerConfig{
			DeclaredIP:     ip,
			ControlAddrs:   c.ControlAddrs(),
			EdgeURL:        c.EdgeURL(),
			UploadsEnabled: true,
			StateDir:       stateDir,
			Logf:           t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		return p
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// A complete holder so the victim downloads mid-swarm, not edge-only.
	seed := spawn("")
	if res, err := chaosStart(t, seed, obj.ID).Wait(ctx); err != nil ||
		res.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("seed download: res=%+v err=%v", res, err)
	}

	stateDir := t.TempDir()
	victim := spawn(stateDir)
	dl := chaosStart(t, victim, obj.ID)
	if !chaosEventually(30*time.Second, func() bool {
		have, _ := dl.Progress()
		return have >= 8
	}) {
		t.Fatal("download made no progress before the kill")
	}
	victim.Kill()

	onDisk := countPieceFiles(stateDir, obj.ID)
	if onDisk == 0 {
		t.Fatal("kill left no durable pieces")
	}
	if onDisk >= obj.NumPieces() {
		t.Fatalf("download completed (%d pieces) before the kill landed", onDisk)
	}
	if _, err := os.Stat(checkpointFile(stateDir, obj.ID)); err != nil {
		t.Fatalf("kill left no checkpoint: %v", err)
	}

	// Restart from the same state directory: the client recovers the store,
	// loads the checkpoint, and resumes on its own.
	reborn := spawn(stateDir)
	if !chaosEventually(60*time.Second, func() bool {
		return reborn.Store().Complete(obj.ID)
	}) {
		t.Fatalf("resumed download never completed; counters: %+v",
			reborn.Metrics().Snapshot().Counters)
	}

	snap := reborn.Metrics().Snapshot()
	if got := snap.Counters["peer_resume_total"]; got != 1 {
		t.Errorf("peer_resume_total = %d, want 1", got)
	}
	recovered := snap.Counters["peer_pieces_recovered_total"]
	if recovered < int64(onDisk) {
		t.Errorf("peer_pieces_recovered_total = %d, want >= %d pieces found on disk",
			recovered, onDisk)
	}
	// Zero re-downloads of verified pieces: everything fetched after the
	// restart is exactly the complement of what was recovered.
	fetched := snap.Counters[`peer_pieces_total{source="edge"}`] +
		snap.Counters[`peer_pieces_total{source="peer"}`]
	if fetched != int64(obj.NumPieces())-recovered {
		t.Errorf("resumed peer fetched %d pieces, want %d (total %d - recovered %d)",
			fetched, int64(obj.NumPieces())-recovered, obj.NumPieces(), recovered)
	}
	// The recovery-scan series is present (and zero: the kill was clean
	// thanks to the atomic write discipline).
	if got, ok := snap.Counters["store_recovery_corrupt_total"]; !ok {
		t.Error("store_recovery_corrupt_total missing from a disk-backed peer's registry")
	} else if got != 0 {
		t.Errorf("store_recovery_corrupt_total = %d after a clean kill, want 0", got)
	}

	// Completion retires the checkpoint and the content is hash-verified on
	// read (DiskStore.Get re-verifies; a corrupt piece would come back !ok).
	if !chaosEventually(10*time.Second, func() bool {
		_, err := os.Stat(checkpointFile(stateDir, obj.ID))
		return os.IsNotExist(err)
	}) {
		t.Error("checkpoint not retired after completion")
	}
	for i := 0; i < obj.NumPieces(); i++ {
		if _, ok := reborn.Store().Get(obj.ID, i); !ok {
			t.Fatalf("piece %d unreadable/corrupt after resumed completion", i)
		}
	}
}

// TestCrashDNRebuildConverges kills a region's DN under live peers: the
// directory must converge back to the pre-kill candidate count purely from
// peer re-announcements (no control-plane restart), the rebuild must be
// visible in telemetry, and Select must serve peers again once the window
// closes.
func TestCrashDNRebuildConverges(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.DNRebuildWindow = 500 * time.Millisecond
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obj, err := NewObject(3001, "crash/dnpayload.bin", 1, 400_000, 16<<10, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(obj); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	var region geo.NetworkRegion
	spawn := func() *Peer {
		ip, err := c.AllocateIdentity("JP")
		if err != nil {
			t.Fatal(err)
		}
		country, _, ok := c.Lookup(ip)
		if !ok || country != "JP" {
			t.Fatalf("identity %s did not resolve to JP", ip)
		}
		region = geo.NetworkRegion(9) // AS-NEA; all JP identities land here
		p, err := NewPeer(PeerConfig{
			DeclaredIP:     ip,
			ControlAddrs:   c.ControlAddrs(),
			EdgeURL:        c.EdgeURL(),
			UploadsEnabled: true,
			Logf:           t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		return p
	}

	const holders = 3
	for i := 0; i < holders; i++ {
		p := spawn()
		if res, err := chaosStart(t, p, obj.ID).Wait(ctx); err != nil ||
			res.Outcome != protocol.OutcomeCompleted {
			t.Fatalf("holder %d download: res=%+v err=%v", i, res, err)
		}
	}
	if !chaosEventually(10*time.Second, func() bool {
		return c.nodes[0].cp.DN(region).Copies(obj.ID) == holders
	}) {
		t.Fatalf("directory holds %d copies, want %d", c.nodes[0].cp.DN(region).Copies(obj.ID), holders)
	}

	// Kill the DN. Its database empties; the rebuild window opens; every
	// connected peer in the region is asked to RE-ADD.
	c.nodes[0].cp.FailDN(region)
	if !chaosEventually(10*time.Second, func() bool {
		return c.nodes[0].cp.DN(region).Copies(obj.ID) == holders
	}) {
		t.Fatalf("directory converged to %d copies after DN kill, want pre-kill %d",
			c.nodes[0].cp.DN(region).Copies(obj.ID), holders)
	}

	annKey := `dn_rebuild_announces_total{region="` + region.String() + `"}`
	snap := c.nodes[0].cp.Metrics().Snapshot()
	if snap.Counters[annKey] == 0 {
		t.Errorf("%s = 0, want rebuild announcements counted", annKey)
	}
	if !chaosEventually(10*time.Second, func() bool {
		s := c.nodes[0].cp.Metrics().Snapshot()
		return s.Histograms["dn_rebuild_ms"].Count > 0 &&
			s.Gauges[`dn_rebuilding{region="`+region.String()+`"}`] == 0
	}) {
		t.Error("rebuild window never closed in telemetry (dn_rebuild_ms / dn_rebuilding)")
	}

	// Select serves the rebuilt directory without any control-plane restart:
	// a fresh leech's first query returns candidates and the download
	// completes.
	leech := spawn()
	res, err := chaosStart(t, leech, obj.ID).Wait(ctx)
	if err != nil || res.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("post-rebuild download: res=%+v err=%v", res, err)
	}
	if res.PeersReturned == 0 {
		t.Error("post-rebuild query returned no candidates; Select still edge-only")
	}
}
