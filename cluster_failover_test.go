package netsession

import (
	"context"
	"net/netip"
	"strings"
	"testing"
	"time"

	"netsession/internal/geo"
	"netsession/internal/protocol"
)

// failoverOutcome is what a scenario run accounts: every completed download
// that reached a live control-plane node, and the bytes those records claim.
type failoverOutcome struct {
	downloads int
	bytes     int64
}

// runFailoverScenario drives the same workload against a cluster of cpNodes
// control-plane nodes: three seeds (one per country), a wave of leeches, an
// optional SIGKILL of the node owning the US seed's region, and a second
// wave spawned after the kill. Usage reports ride the durable log spool and
// are drained only at the end — after the kill — so every record lands on a
// live node and the accounting totals are comparable across runs.
func runFailoverScenario(t *testing.T, cpNodes int, kill bool) failoverOutcome {
	t.Helper()
	cfg := DefaultClusterConfig()
	cfg.CPNodes = cpNodes
	cfg.CPProbeInterval = 100 * time.Millisecond
	cfg.CPFailAfter = 3
	// A generous rebuild window keeps the takeover observable: peers logging
	// into the new owner while it rebuilds are asked to RE-ADD.
	cfg.DNRebuildWindow = 2 * time.Second
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obj, err := NewObject(7001, "failover/payload.bin", 1, 200_000, 16<<10, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(obj); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
	defer cancel()

	countries := []string{"US", "DE", "JP"}
	var peers []*Peer

	spawn := func(country string) (*Peer, string) {
		ip, err := c.AllocateIdentity(country)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPeer(PeerConfig{
			DeclaredIP:     ip,
			ControlAddrs:   c.ControlAddrs(),
			EdgeURL:        c.EdgeURL(),
			UploadsEnabled: true,
			StateDir:       t.TempDir(),
			// Comma-separated: the uploader rotates across every node's
			// ingest endpoint, so a dead node cannot strand the spool.
			LogUploadURL:      strings.Join(c.ControlPlaneURLs(), ","),
			LogUploadInterval: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		peers = append(peers, p)
		return p, ip
	}
	waitDone := func(dl *Download, who string) {
		res, err := dl.Wait(ctx)
		if err != nil {
			t.Fatalf("%s: %v", who, err)
		}
		if res.Outcome != protocol.OutcomeCompleted {
			t.Fatalf("%s outcome %v", who, res.Outcome)
		}
		if res.BytesInfra+res.BytesPeers != obj.Size {
			t.Fatalf("%s bytes %d+%d, want %d",
				who, res.BytesInfra, res.BytesPeers, obj.Size)
		}
	}
	download := func(p *Peer, who string) *Download {
		dl, err := p.Download(obj.ID)
		if err != nil {
			t.Fatalf("%s: %v", who, err)
		}
		return dl
	}
	regionOf := func(ipStr string) geo.NetworkRegion {
		ip, err := netip.ParseAddr(ipStr)
		if err != nil {
			t.Fatal(err)
		}
		rec, ok := c.scape.Lookup(ip)
		if !ok {
			t.Fatalf("identity %s not in the scape", ipStr)
		}
		return geo.RegionOf(rec)
	}
	victim := -1
	ownerOf := func(r geo.NetworkRegion) int {
		for i, n := range c.nodes {
			if i == victim {
				continue
			}
			if n.cp.OwnsRegion(r) {
				return i
			}
		}
		t.Fatalf("no live node owns region %v", r)
		return -1
	}

	// Seeds: one completed download per country so every region has a
	// holder registered with its directory's owner.
	var usIP string
	var seedIPs []string
	for _, country := range countries {
		p, ip := spawn(country)
		if country == "US" {
			usIP = ip
		}
		seedIPs = append(seedIPs, ip)
		waitDone(download(p, "seed "+country), "seed "+country)
	}
	for _, ip := range seedIPs {
		r := regionOf(ip)
		owner := ownerOf(r)
		if !chaosEventually(10*time.Second, func() bool {
			return c.nodes[owner].cp.DN(r).Copies(obj.ID) >= 1
		}) {
			t.Fatalf("seed registration for region %v never reached node %d", r, owner)
		}
	}

	wave := func(tag string) {
		var dls []*Download
		var names []string
		for _, country := range countries {
			for i := 0; i < 2; i++ {
				p, _ := spawn(country)
				who := tag + " " + country
				dls = append(dls, download(p, who))
				names = append(names, who)
			}
		}
		for i, dl := range dls {
			waitDone(dl, names[i])
		}
	}
	wave("wave1")

	if kill {
		usRegion := regionOf(usIP)
		victim = ownerOf(usRegion)
		t.Logf("killing node %d (owner of US region %v)", victim, usRegion)
		c.KillCPNode(victim)
		// Survivors must converge on a ring without the dead node...
		if !chaosEventually(15*time.Second, func() bool {
			for i, n := range c.nodes {
				if i == victim {
					continue
				}
				if n.cp.Metrics().Snapshot().Gauges["cp_ring_nodes"] != float64(cpNodes-1) {
					return false
				}
			}
			return true
		}) {
			t.Fatal("surviving nodes never converged on the post-kill ring")
		}
		// ...and exactly one survivor must have taken the US region over.
		newOwner := ownerOf(usRegion)
		if newOwner == victim {
			t.Fatalf("region %v still owned by the killed node", usRegion)
		}
		t.Logf("node %d took over region %v", newOwner, usRegion)
	}

	// Wave 2 starts after the kill: fresh peers must log in, be routed to
	// the region's live owner, and complete hash-verified — nobody strands.
	wave("wave2")

	// Drain every spool now that the fleet's state is final; with a node
	// dead, the uploaders fail over to any live ingest and the shared batch
	// dedup keeps cross-node retries exactly-once.
	for i, p := range peers {
		if err := p.FlushLogs(ctx); err != nil {
			t.Fatalf("peer %d flush: %v", i, err)
		}
	}
	log := c.AccountingLog()
	var total int64
	for _, d := range log.Downloads {
		if d.BytesInfra+d.BytesPeers != obj.Size {
			t.Fatalf("accounted record claims %d+%d bytes, want %d",
				d.BytesInfra, d.BytesPeers, obj.Size)
		}
		total += d.BytesInfra + d.BytesPeers
	}
	if c.RejectedReports() != 0 {
		t.Fatalf("%d legitimate reports rejected", c.RejectedReports())
	}

	if kill {
		// The handoff must be visible in the survivors' telemetry: a region
		// takeover happened, and the rebuild collected RE-ADDs.
		var readds, handoffs int64
		for i, n := range c.nodes {
			if i == victim {
				continue
			}
			snap := n.cp.Metrics().Snapshot()
			readds += snap.Counters["cp_readds_total"]
			for key, v := range snap.Counters {
				if strings.HasPrefix(key, "cp_region_handoffs_total{") {
					handoffs += v
				}
			}
		}
		if handoffs == 0 {
			t.Error("no survivor counted a region handoff after the kill")
		}
		if readds == 0 {
			t.Error("cp_readds_total = 0 on the survivors; the takeover never rebuilt from RE-ADDs")
		}
		var failovers int64
		for _, p := range peers {
			failovers += p.Metrics().Snapshot().Counters["peer_cp_failovers_total"]
		}
		if failovers == 0 {
			t.Error("peer_cp_failovers_total = 0 across the fleet; nobody re-homed to a new CP node")
		}
	}
	return failoverOutcome{downloads: len(log.Downloads), bytes: total}
}

// TestClusterFailoverZeroLoss is the headline robustness test: the same
// workload is run against a single-node control plane (the baseline) and a
// three-node cluster that loses the node owning the busiest region mid-run.
// Every download must complete hash-verified, the ring must converge, the
// handoff must show up in telemetry, and the summed accounting bytes must
// equal the no-kill run exactly — node loss costs availability of nothing.
func TestClusterFailoverZeroLoss(t *testing.T) {
	baseline := runFailoverScenario(t, 1, false)
	failover := runFailoverScenario(t, 3, true)
	if failover.downloads != baseline.downloads {
		t.Errorf("failover run accounted %d downloads, baseline %d",
			failover.downloads, baseline.downloads)
	}
	if failover.bytes != baseline.bytes {
		t.Errorf("failover run accounted %d bytes, baseline %d (zero-loss broken)",
			failover.bytes, baseline.bytes)
	}
}
