# Developer entry points. `make check` is the full pre-commit gate.

GO ?= go

.PHONY: check build test vet fmt race bench

check: fmt vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...
