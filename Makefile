# Developer entry points. `make check` is the full pre-commit gate.

GO ?= go

.PHONY: check build test vet fmt race bench bench-smoke chaos

check: fmt vet build race chaos bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Quick allocation/throughput canary on the two hot paths (engine event loop,
# whole-sim small scale, DN selection); part of `make check` so a hot-path
# regression fails the pre-commit gate, not just the nightly bench.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineEvents$$|BenchmarkSimSmall$$|BenchmarkSelect40$$' \
		-benchtime 2x -benchmem ./internal/sim ./internal/selection

# Fault-injection end-to-end: a live cluster with a flapping edge, a dying
# CN and a poisoned swarm; every download must still complete verified.
chaos:
	$(GO) test -race -run 'Chaos|Faults' -v . ./internal/sim

