# Developer entry points. `make check` is the full pre-commit gate.

GO ?= go

.PHONY: check build test vet fmt race bench bench-smoke bench-analytics bench-streaming chaos crash failover drain streaming clean-state

check: fmt vet build race chaos crash failover drain streaming bench-smoke bench-analytics bench-streaming

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Quick allocation/throughput canary on the two hot paths (engine event loop,
# whole-sim small scale, DN selection); part of `make check` so a hot-path
# regression fails the pre-commit gate, not just the nightly bench. Besides
# the human-readable text, the run is converted to machine-readable timing
# JSON ($(BENCH_SMOKE_JSON)) so CI can archive it as a workflow artifact and
# trend the numbers across commits.
BENCH_SMOKE_JSON ?= bench-smoke.json

bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineEvents$$|BenchmarkSimSmall$$|BenchmarkSelect40$$' \
		-benchtime 2x -benchmem ./internal/sim ./internal/selection > bench-smoke.txt \
		|| { cat bench-smoke.txt; exit 1; }
	@cat bench-smoke.txt
	$(GO) run ./tools/benchjson -in bench-smoke.txt -out $(BENCH_SMOKE_JSON)

# Streaming-analytics canary: a full streaming pass over a sealed 128k-record
# segment store must hold bounded live heap (records must not be retained)
# and keep its decode throughput. Numbers are recorded in
# BENCH_analytics.json; a regression fails the pre-commit gate.
bench-analytics:
	$(GO) test -run 'TestStreamingBoundedMemory$$' -bench 'BenchmarkStreamingSummarize$$' \
		-benchtime 3x -benchmem -v ./internal/logpipe

# Fault-injection end-to-end: a live cluster with a flapping edge, a dying
# CN and a poisoned swarm; every download must still complete verified.
chaos:
	$(GO) test -race -run 'Chaos|Faults' -v . ./internal/sim

# Crash-recovery end-to-end: peers killed mid-download (in-process and by
# real SIGKILL of a re-exec'd child) must resume from their state dir
# without refetching verified pieces; a killed DN must rebuild its
# directory from peer RE-ADDs.
crash:
	$(GO) test -race -run 'Crash' -v .

# Control-plane failover end-to-end: a three-node CP cluster loses the node
# owning the busiest region mid-run; every download must complete verified,
# the ring must converge, and the summed accounting must byte-equal a
# no-kill baseline run.
failover:
	$(GO) test -race -run 'Failover' -v .

# Planned-drain end-to-end: a fourth node joins a running cluster knowing
# one status URL (seed exchange), then the busiest node drains gracefully —
# regions hand off with zero RE-ADD rebuilds and accounting byte-equals an
# undisturbed baseline. Includes the kill-vs-drain stampede contrast.
drain:
	$(GO) test -race -run 'Drain' -v .

# Streaming-delivery end-to-end: a live cluster streams objects at a
# feasible bitrate (zero deadline misses, metrics flow through logpipe with
# offline/streaming-summarizer parity) and at an infeasible bitrate under
# injected edge/CN faults (nonzero rebuffers, urgent-window edge rescues,
# download still completes verified).
streaming:
	$(GO) test -race -run 'StreamingE2E' -v .

# Deadline-scheduler canary: the playback-window piece picker on a 1000-piece
# window must stay allocation-lean; numbers land in BENCH_streaming.json.
BENCH_STREAMING_JSON ?= BENCH_streaming.json

bench-streaming:
	$(GO) test -run '^$$' -bench 'BenchmarkWindowScheduler$$' \
		-benchtime 100x -benchmem ./internal/streaming > bench-streaming.txt \
		|| { cat bench-streaming.txt; exit 1; }
	@cat bench-streaming.txt
	$(GO) run ./tools/benchjson -in bench-streaming.txt -out $(BENCH_STREAMING_JSON)

# Remove state directories left behind by interrupted live runs (the README
# examples put netsession-peer -state-dir under ./state/).
clean-state:
	rm -rf ./state

