module netsession

go 1.22
