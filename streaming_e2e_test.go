package netsession

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"netsession/internal/analysis"
	"netsession/internal/logpipe"
	"netsession/internal/peer"
	"netsession/internal/protocol"
	"netsession/internal/streaming"
)

// streamStart starts a deadline-driven download, retrying while the edge is
// in a fault window (authorization fails while it is flapped down).
func streamStart(t *testing.T, p *Peer, oid ObjectID, cfg streaming.Config) *Download {
	t.Helper()
	var dl *Download
	if !chaosEventually(30*time.Second, func() bool {
		var err error
		dl, err = p.DownloadWith(oid, peer.DownloadOpts{Streaming: &cfg})
		return err == nil
	}) {
		t.Fatal("streaming download never started")
	}
	return dl
}

// TestStreamingE2EDelivery is the live streaming gate: a cluster streams
// several objects at a bitrate the loopback edge can trivially sustain, so
// every session must start playback and miss zero deadlines; the playback
// metrics must then flow intact through the log pipeline into the offline
// summary, the streaming summarizer (parity), and the control plane's live
// analytics and /metrics surfaces.
func TestStreamingE2EDelivery(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.LogDir = t.TempDir()
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	const streams = 3
	scfg := streaming.Config{BitrateBps: 1_000_000}
	for i := 0; i < streams; i++ {
		obj, err := NewObject(4001, "studio/episode-"+string(rune('a'+i))+".vid", 1,
			int64(300_000+50_000*i), 16<<10, true)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Publish(obj); err != nil {
			t.Fatal(err)
		}
		p := spawnLogpipePeer(t, c, t.TempDir())
		dl := streamStart(t, p, obj.ID, scfg)
		if sm := dl.StreamMetrics(); sm == nil {
			t.Fatal("live streaming download exposes no playback metrics")
		}
		res, err := dl.Wait(ctx)
		if err != nil || res.Outcome != protocol.OutcomeCompleted {
			t.Fatalf("stream %d: res=%+v err=%v", i, res, err)
		}
		st := res.Stream
		if st == nil {
			t.Fatalf("stream %d: result carries no streaming metrics", i)
		}
		if st.BitrateBps != scfg.BitrateBps {
			t.Fatalf("stream %d: bitrate %d, want %d", i, st.BitrateBps, scfg.BitrateBps)
		}
		// The loopback edge outruns a 1 Mbps playback clock by orders of
		// magnitude: a feasible bitrate must never miss a deadline.
		if st.DeadlineMisses != 0 || st.RebufferCount != 0 {
			t.Fatalf("stream %d: %d deadline misses, %d rebuffers at a feasible bitrate",
				i, st.DeadlineMisses, st.RebufferCount)
		}
		snap := p.Metrics().Snapshot()
		if got := snap.Counters["peer_stream_sessions_total"]; got != 1 {
			t.Fatalf("stream %d: peer_stream_sessions_total = %d, want 1", i, got)
		}
		if got := snap.Counters["peer_stream_deadline_misses_total"]; got != 0 {
			t.Fatalf("stream %d: peer_stream_deadline_misses_total = %d, want 0", i, got)
		}
		if err := p.FlushLogs(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.LogStore().Flush(); err != nil {
		t.Fatal(err)
	}

	// Offline summary sees the streams; the streaming summarizer must agree
	// on every stream aggregate (the parity contract).
	recs, err := logpipe.ReadDownloads(cfg.LogDir)
	if err != nil {
		t.Fatal(err)
	}
	sum := analysis.SummarizeOffline(recs)
	if sum.StreamingDownloads != streams {
		t.Fatalf("offline summary shows %d streaming downloads, want %d", sum.StreamingDownloads, streams)
	}
	if sum.StreamRebufferEvents != 0 || sum.StreamDeadlineMissPct != 0 {
		t.Fatalf("offline summary shows stalls at a feasible bitrate: %+v", sum)
	}
	requireStreamingParity(t, "streaming", cfg.LogDir, sum)

	// Control plane surfaces: live analytics document and /metrics series.
	aresp, err := http.Get(c.ControlPlaneURL() + "/v1/analytics")
	if err != nil {
		t.Fatal(err)
	}
	var cpSum analysis.StreamingSummary
	err = json.NewDecoder(aresp.Body).Decode(&cpSum)
	aresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if cpSum.StreamDownloads != streams {
		t.Fatalf("CP analytics shows %d stream downloads, want %d", cpSum.StreamDownloads, streams)
	}
	mresp, err := http.Get(c.ControlPlaneURL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<20)
	n, _ := mresp.Body.Read(body)
	mresp.Body.Close()
	page := string(body[:n])
	if !strings.Contains(page, "cp_stream_sessions_total 3") {
		t.Errorf("/metrics page missing cp_stream_sessions_total 3")
	}
}

// TestStreamingE2ERebufferInjection streams at an infeasible bitrate while
// the edge and CN tiers inject latency and errors: playback must stall —
// and be reported as rebuffers with urgent-window edge rescues — while the
// download itself still completes hash-verified.
func TestStreamingE2ERebufferInjection(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.LogDir = t.TempDir()
	cfg.EdgeFaults = FaultProfile{
		Seed:       42,
		ErrorRate:  0.1,
		LatencyMin: 5 * time.Millisecond,
		LatencyMax: 20 * time.Millisecond,
	}
	cfg.CNFaults = FaultProfile{
		Seed:       43,
		LatencyMin: time.Millisecond,
		LatencyMax: 10 * time.Millisecond,
	}
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obj, err := NewObject(4002, "studio/live-keynote.vid", 1, 2_000_000, 16<<10, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(obj); err != nil {
		t.Fatal(err)
	}

	p := spawnLogpipePeer(t, c, t.TempDir())
	// 500 Mbps playback: every piece's deadline is sub-millisecond, far
	// inside the injected edge latency, so stalls are guaranteed.
	dl := streamStart(t, p, obj.ID, streaming.Config{BitrateBps: 500_000_000})

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, err := dl.Wait(ctx)
	if err != nil || res.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("faulted stream: res=%+v err=%v", res, err)
	}
	st := res.Stream
	if st == nil {
		t.Fatal("faulted stream carries no streaming metrics")
	}
	if st.RebufferCount == 0 || st.RebufferMs == 0 {
		t.Fatalf("infeasible bitrate under injected faults reported no rebuffering: %+v", st)
	}
	if st.DeadlineMisses == 0 {
		t.Fatalf("infeasible bitrate reported no deadline misses: %+v", st)
	}
	if st.EdgeRescueBytes == 0 {
		t.Fatalf("urgent-window pieces were edge-fetched but no rescue bytes recorded: %+v", st)
	}
	snap := p.Metrics().Snapshot()
	if got := snap.Counters["peer_stream_rebuffer_events_total"]; got == 0 {
		t.Error("peer_stream_rebuffer_events_total stayed zero")
	}
	if got := snap.Counters["peer_stream_edge_rescue_bytes_total"]; got == 0 {
		t.Error("peer_stream_edge_rescue_bytes_total stayed zero")
	}
}
