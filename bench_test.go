package netsession

// The benchmark harness regenerates every table and figure of the paper's
// evaluation. Each Benchmark* runs one analysis over a shared simulated
// month (so `go test -bench=.` both times the analyses and prints the
// series the paper reports), and the Ablation benches run counterfactual
// scenarios for the design choices DESIGN.md calls out.
//
// Scale note: the shared scenario is the fast test scale. The
// `netsession-report` command runs the larger DefaultScenario and writes
// the full paper-vs-measured comparison into EXPERIMENTS.md.

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"netsession/internal/analysis"
	"netsession/internal/geo"
	"netsession/internal/protocol"
	"netsession/internal/sim"
)

var (
	benchOnce sync.Once
	benchIn   *analysis.Input
	benchDays int
	benchErr  error
)

func benchInput(b *testing.B) *analysis.Input {
	b.Helper()
	benchOnce.Do(func() {
		cfg := sim.SmallScenario()
		res, err := sim.Run(cfg)
		if err != nil {
			benchErr = err
			return
		}
		benchDays = cfg.Days
		benchIn = &analysis.Input{
			Log: res.Log, Pop: res.Pop, Catalog: res.Catalog,
			Atlas: res.Atlas, Scape: res.Scape,
			ControlPlaneServers: geo.NumRegions,
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchIn
}

var printMu sync.Mutex
var printed = map[string]bool{}

// printOnce emits a block of series output exactly once per bench name.
func printOnce(name, text string) {
	printMu.Lock()
	defer printMu.Unlock()
	if printed[name] {
		return
	}
	printed[name] = true
	fmt.Printf("\n--- %s ---\n%s", name, text)
}

func BenchmarkTable1_OverallStats(b *testing.B) {
	in := benchInput(b)
	var t1 analysis.Table1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t1 = analysis.ComputeTable1(in)
	}
	b.StopTimer()
	printOnce("Table 1", fmt.Sprintf(
		"log entries %d | GUIDs %d | URLs %d | IPs %d | downloads %d | locations %d | ASes %d | countries %d\n",
		t1.LogEntries, t1.GUIDs, t1.DistinctURLs, t1.DistinctIPs,
		t1.DownloadsInitiated, t1.DistinctLocations, t1.DistinctASes, t1.DistinctCountries))
}

func BenchmarkTable2_CustomerRegions(b *testing.B) {
	in := benchInput(b)
	var rows []analysis.Table2Row
	for i := 0; i < b.N; i++ {
		rows = analysis.ComputeTable2(in)
	}
	b.StopTimer()
	var out string
	for _, r := range rows {
		out += fmt.Sprintf("%-14s EU %.0f%% USe %.0f%% USw %.0f%% AsO %.0f%%\n",
			r.Customer, r.Share[geo.RegionEurope], r.Share[geo.RegionUSEast],
			r.Share[geo.RegionUSWest], r.Share[geo.RegionAsiaOther])
	}
	printOnce("Table 2", out)
}

func BenchmarkTable3_SettingChanges(b *testing.B) {
	in := benchInput(b)
	var t3 analysis.Table3
	for i := 0; i < b.N; i++ {
		t3 = analysis.ComputeTable3(in)
	}
	b.StopTimer()
	d, e := t3.Rows[false], t3.Rows[true]
	printOnce("Table 3", fmt.Sprintf(
		"disabled: n=%d keep %.2f%% (paper 99.96) | enabled: n=%d keep %.2f%% (paper 98.11)\n",
		d.Nodes, d.PctZero, e.Nodes, e.PctZero))
}

func BenchmarkTable4_UploadEnabled(b *testing.B) {
	in := benchInput(b)
	var rows []analysis.Table4Row
	for i := 0; i < b.N; i++ {
		rows = analysis.ComputeTable4(in)
	}
	b.StopTimer()
	var out string
	for _, r := range rows {
		out += fmt.Sprintf("%-12s %.1f%%\n", r.Customer, r.PctEnabled)
	}
	printOnce("Table 4", out)
}

func BenchmarkFigure2_PeerLocations(b *testing.B) {
	in := benchInput(b)
	var bubbles []analysis.Figure2Bubble
	for i := 0; i < b.N; i++ {
		bubbles = analysis.ComputeFigure2(in)
	}
	b.StopTimer()
	out := fmt.Sprintf("%d locations; top:", len(bubbles))
	for i := 0; i < 5 && i < len(bubbles); i++ {
		out += fmt.Sprintf(" %s=%d", bubbles[i].City, bubbles[i].Peers)
	}
	printOnce("Figure 2", out+"\n")
}

func BenchmarkFigure3a_SizeCDF(b *testing.B) {
	in := benchInput(b)
	var f analysis.Figure3a
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure3a(in)
	}
	b.StopTimer()
	b.ReportMetric(f.PctPeerAssistedOver500MB, "%p2p>500MB")
	var out string
	for i := 0; i < len(f.All); i += 4 {
		out += fmt.Sprintf("%.2fGB: infra %.0f%% all %.0f%% p2p %.0f%%\n",
			f.All[i].X, f.InfraOnly[i].Y, f.All[i].Y, f.PeerAssisted[i].Y)
	}
	printOnce("Figure 3a", out)
}

func BenchmarkFigure3b_Popularity(b *testing.B) {
	in := benchInput(b)
	var f analysis.Figure3b
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure3b(in)
	}
	b.StopTimer()
	b.ReportMetric(f.PowerLawSlope(), "zipf-exponent")
	out := ""
	for _, rank := range []int{1, 10, 100, 1000} {
		if rank <= len(f.Counts) {
			out += fmt.Sprintf("rank %4d: %d downloads\n", rank, f.Counts[rank-1])
		}
	}
	printOnce("Figure 3b", out)
}

func BenchmarkFigure3c_Diurnal(b *testing.B) {
	in := benchInput(b)
	var f analysis.Figure3c
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure3c(in, benchDays)
	}
	b.StopTimer()
	peak, trough := 0.0, -1.0
	for _, v := range f.LocalHourOfDay {
		if v > peak {
			peak = v
		}
		if trough < 0 || v < trough {
			trough = v
		}
	}
	if trough > 0 {
		b.ReportMetric(peak/trough, "diurnal-peak/trough")
	}
	printOnce("Figure 3c", fmt.Sprintf("local-time peak/trough %.2f over %d hours\n",
		peak/trough, len(f.GMT)))
}

func BenchmarkFigure4_SpeedCDF(b *testing.B) {
	in := benchInput(b)
	var f analysis.Figure4
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure4(in)
	}
	b.StopTimer()
	printOnce("Figure 4", fmt.Sprintf(
		"AS X (AS%d): edge median %.2f Mbps, >50%%p2p median %.2f Mbps\nAS Y (AS%d): edge median %.2f Mbps, >50%%p2p median %.2f Mbps\n",
		f.ASX.ASN, f.ASX.MedianEdgeMbps, f.ASX.MedianP2PMbps,
		f.ASY.ASN, f.ASY.MedianEdgeMbps, f.ASY.MedianP2PMbps))
}

func BenchmarkFigure5_CopiesVsEfficiency(b *testing.B) {
	in := benchInput(b)
	var f analysis.Figure5
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure5(in)
	}
	b.StopTimer()
	var out string
	for _, bkt := range f.Buckets {
		out += fmt.Sprintf("copies ~%5.0f (n=%3d): eff %.1f%% [%.1f-%.1f]\n",
			bkt.X, bkt.N, bkt.Mean, bkt.P20, bkt.P80)
	}
	printOnce("Figure 5", out)
}

func BenchmarkFigure6_PeersVsEfficiency(b *testing.B) {
	in := benchInput(b)
	var f analysis.Figure6
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure6(in)
	}
	b.StopTimer()
	var out string
	for _, bkt := range f.ByPeers {
		if int(bkt.X)%4 == 0 {
			out += fmt.Sprintf("peers %2.0f (n=%4d): eff %.1f%%\n", bkt.X, bkt.N, bkt.Mean)
		}
	}
	printOnce("Figure 6", out)
}

func BenchmarkFigure7_PauseRates(b *testing.B) {
	in := benchInput(b)
	var f analysis.Figure7
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure7(in)
	}
	b.StopTimer()
	var out string
	for sc := analysis.SizeUnder10MB; sc <= analysis.SizeOver1GB; sc++ {
		out += fmt.Sprintf("%-10s infra %.1f%% p2p %.1f%% all %.1f%%\n",
			sc, f.PauseRatePct[sc][0], f.PauseRatePct[sc][1], f.PauseRatePct[sc][2])
	}
	printOnce("Figure 7", out)
}

func BenchmarkFigure8_CountryContribution(b *testing.B) {
	in := benchInput(b)
	var f analysis.Figure8
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure8(in, 104)
	}
	b.StopTimer()
	printOnce("Figure 8", fmt.Sprintf(
		"Customer D: infra-dominant %d | infra 50-100%% of peers %d | infra <50%% %d countries\n",
		f.ClassN[analysis.InfraDominant], f.ClassN[analysis.PeersModerate],
		f.ClassN[analysis.PeersDominant]))
}

func benchAST(b *testing.B) *analysis.ASTraffic {
	b.Helper()
	return analysis.ComputeASTraffic(benchInput(b))
}

func BenchmarkFigure9a_InterASUploadCDF(b *testing.B) {
	in := benchInput(b)
	var f analysis.Figure9a
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeASTraffic(in).ComputeFigure9a()
	}
	b.StopTimer()
	printOnce("Figure 9a", fmt.Sprintf("%d ASes with p2p peers; CDF points %d\n", f.ASes, len(f.Points)))
}

func BenchmarkFigure9b_UploadConcentration(b *testing.B) {
	var f analysis.Figure9b
	for i := 0; i < b.N; i++ {
		f = benchAST(b).ComputeFigure9b()
	}
	b.StopTimer()
	b.ReportMetric(f.LightSharePct, "%bytes-from-light-ASes")
	printOnce("Figure 9b", fmt.Sprintf(
		"heavy uploaders: %d ASes carry %.0f%% of inter-AS bytes (paper: 2%% of ASes carry 90%%)\n",
		f.HeavyASes, 100-f.LightSharePct))
}

func BenchmarkFigure9c_IPsPerAS(b *testing.B) {
	var f analysis.Figure9c
	for i := 0; i < b.N; i++ {
		f = benchAST(b).ComputeFigure9c()
	}
	b.StopTimer()
	printOnce("Figure 9c", fmt.Sprintf("median IPs/AS: light %.0f, heavy %.0f\n",
		f.MedianLightIPs, f.MedianHeavyIPs))
}

func BenchmarkFigure10_ASBalance(b *testing.B) {
	var f analysis.Figure10
	for i := 0; i < b.N; i++ {
		f = benchAST(b).ComputeFigure10()
	}
	b.StopTimer()
	b.ReportMetric(f.HeavyMedianRatio, "heavy-up/down-ratio")
	printOnce("Figure 10", fmt.Sprintf(
		"%d ASes; heavy uploaders' median up/down ratio %.2f (paper: ≈balanced)\n",
		len(f.Points), f.HeavyMedianRatio))
}

func BenchmarkFigure11_PairwiseBalance(b *testing.B) {
	in := benchInput(b)
	var f analysis.Figure11
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeASTraffic(in).ComputeFigure11(in.Atlas)
	}
	b.StopTimer()
	printOnce("Figure 11", fmt.Sprintf(
		"%d heavy pairs; median pairwise imbalance %.2f; %.0f%% of bytes on direct links (paper: 35%%)\n",
		len(f.Pairs), f.MedianRatio, f.PctDirectBytes))
}

func BenchmarkFigure12_GuidGraphs(b *testing.B) {
	in := benchInput(b)
	var f analysis.Figure12
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure12(in)
	}
	b.StopTimer()
	b.ReportMetric(f.PctNonLinear, "%non-linear")
	printOnce("Figure 12", fmt.Sprintf(
		"%d graphs; non-linear %.2f%% (paper 0.6%%); short-branch %.0f%% two-long %.0f%% many %.0f%% irregular %.0f%%\n",
		f.Graphs, f.PctNonLinear,
		f.PctOfNonLinear[analysis.GraphShortBranch],
		f.PctOfNonLinear[analysis.GraphTwoLong],
		f.PctOfNonLinear[analysis.GraphManyBranches],
		f.PctOfNonLinear[analysis.GraphIrregular]))
}

func BenchmarkHeadline_PeerEfficiency(b *testing.B) {
	in := benchInput(b)
	var h analysis.Headlines
	for i := 0; i < b.N; i++ {
		h = analysis.ComputeHeadlines(in, benchDays)
	}
	b.StopTimer()
	b.ReportMetric(h.MeanPeerEfficiencyPct, "%mean-peer-eff")
	b.ReportMetric(h.PctBytesP2PFiles, "%bytes-p2p-files")
	printOnce("Headline §5.1", fmt.Sprintf(
		"p2p files %.1f%% of catalog carry %.1f%% of bytes (paper 1.7/57.4); peer efficiency mean %.1f%% agg %.1f%% (paper 71.4)\n",
		h.PctFilesP2PEnabled, h.PctBytesP2PFiles, h.MeanPeerEfficiencyPct, h.AggregatePeerEfficiencyPct))
}

func BenchmarkHeadline_Reliability(b *testing.B) {
	in := benchInput(b)
	var h analysis.Headlines
	for i := 0; i < b.N; i++ {
		h = analysis.ComputeHeadlines(in, benchDays)
	}
	b.StopTimer()
	printOnce("Headline §5.2", fmt.Sprintf(
		"completion %.1f%%/%.1f%% (paper 94/92); system failures %.2f%%/%.2f%% (0.1/0.2); aborts %.1f%%/%.1f%% (3/8)\n",
		h.CompletionInfraPct, h.CompletionP2PPct,
		h.FailSystemInfraPct, h.FailSystemP2PPct,
		h.AbortInfraPct, h.AbortP2PPct))
}

func BenchmarkHeadline_ISPTraffic(b *testing.B) {
	var intra float64
	for i := 0; i < b.N; i++ {
		intra = 100 * benchAST(b).IntraASFraction()
	}
	b.StopTimer()
	b.ReportMetric(intra, "%intra-AS")
	printOnce("Headline §6.1", fmt.Sprintf("intra-AS p2p traffic %.1f%% (paper 18%%)\n", intra))
}

func BenchmarkHeadline_Mobility(b *testing.B) {
	in := benchInput(b)
	var m analysis.Mobility
	for i := 0; i < b.N; i++ {
		m = analysis.ComputeMobility(in)
	}
	b.StopTimer()
	printOnce("Headline §6.2", fmt.Sprintf(
		"GUIDs in 1/2/>2 ASes: %.1f/%.1f/%.1f%% (paper 80.6/13.4/6.0); within 10km %.1f%% (paper 77%%)\n",
		m.Pct1AS, m.Pct2AS, m.PctMoreAS, m.PctWithin10Km))
}

// ---- Ablations: the design choices DESIGN.md calls out. Each variant is
// simulated once and the per-iteration work is the comparison analysis.

type ablationKey string

var (
	ablMu    sync.Mutex
	ablCache = map[ablationKey]*analysis.Input{}
)

func ablationInput(b *testing.B, key ablationKey, mutate func(*sim.ScenarioConfig)) *analysis.Input {
	b.Helper()
	ablMu.Lock()
	defer ablMu.Unlock()
	if in, ok := ablCache[key]; ok {
		return in
	}
	cfg := sim.SmallScenario()
	cfg.NumPeers = 2500
	cfg.TotalDownloads = 8000
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := sim.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	in := &analysis.Input{
		Log: res.Log, Pop: res.Pop, Catalog: res.Catalog,
		Atlas: res.Atlas, Scape: res.Scape, ControlPlaneServers: geo.NumRegions,
	}
	ablCache[key] = in
	return in
}

// p2pCompletionRate measures completion among p2p-enabled downloads only —
// the class both architectures can serve.
func p2pCompletionRate(in *analysis.Input) float64 {
	done, total := 0, 0
	for i := range in.Log.Downloads {
		d := &in.Log.Downloads[i]
		if !d.P2PEnabled {
			continue
		}
		total++
		if d.Outcome == protocol.OutcomeCompleted {
			done++
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(done) / float64(total)
}

// topUploaderShare returns the byte share of the busiest 1% of uploading
// peers — the workload-concentration measure the per-object upload cap is
// meant to tame (§3.9).
func topUploaderShare(in *analysis.Input) float64 {
	per := make(map[string]int64)
	var total int64
	for i := range in.Log.Downloads {
		for _, pc := range in.Log.Downloads[i].FromPeers {
			per[pc.GUID.String()] += pc.Bytes
			total += pc.Bytes
		}
	}
	if total == 0 {
		return 0
	}
	var vals []float64
	for _, b := range per {
		vals = append(vals, float64(b))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	top := len(vals) / 100
	if top < 1 {
		top = 1
	}
	var sum float64
	for i := 0; i < top; i++ {
		sum += vals[i]
	}
	return 100 * sum / float64(total)
}

func BenchmarkAblation_SelectionPolicy(b *testing.B) {
	local := ablationInput(b, "sel-local", func(c *sim.ScenarioConfig) {
		c.MaxServersPerDownload = 5
	})
	random := ablationInput(b, "sel-random", func(c *sim.ScenarioConfig) {
		c.MaxServersPerDownload = 5
		c.Policy.LocalityAware = false
	})
	var li, ri float64
	for i := 0; i < b.N; i++ {
		li = 100 * analysis.ComputeASTraffic(local).IntraASFraction()
		ri = 100 * analysis.ComputeASTraffic(random).IntraASFraction()
	}
	b.StopTimer()
	b.ReportMetric(li, "%intra-AS-locality")
	b.ReportMetric(ri, "%intra-AS-random")
	printOnce("Ablation: selection policy", fmt.Sprintf(
		"intra-AS p2p share: locality-aware %.1f%% vs random %.1f%%\n", li, ri))
}

func BenchmarkAblation_Backstop(b *testing.B) {
	with := ablationInput(b, "backstop-on", nil)
	// The pure-p2p comparison needs initial seeders (a pure p2p CDN has
	// them; the hybrid's origin is the edge).
	without := ablationInput(b, "backstop-off", func(c *sim.ScenarioConfig) {
		c.BackstopEnabled = false
		c.SeedCopiesPerObject = 5
	})
	var cw, cwo float64
	for i := 0; i < b.N; i++ {
		cw = p2pCompletionRate(with)
		cwo = p2pCompletionRate(without)
	}
	b.StopTimer()
	b.ReportMetric(cw, "%completion-hybrid")
	b.ReportMetric(cwo, "%completion-pure-p2p")
	printOnce("Ablation: edge backstop", fmt.Sprintf(
		"p2p-file completion: hybrid %.1f%% vs pure p2p (5 seeds/object) %.1f%%\n", cw, cwo))
}

func BenchmarkAblation_UploadFraction(b *testing.B) {
	fractions := []float64{0.1, 0.31, 0.7}
	var effs []float64
	for i := 0; i < b.N; i++ {
		effs = effs[:0]
		for _, f := range fractions {
			frac := f
			in := ablationInput(b, ablationKey(fmt.Sprintf("upfrac-%.2f", frac)),
				func(c *sim.ScenarioConfig) { c.UploadEnabledOverride = frac })
			h := analysis.ComputeHeadlines(in, 10)
			effs = append(effs, h.AggregatePeerEfficiencyPct)
		}
	}
	b.StopTimer()
	var out string
	for i, f := range fractions {
		out += fmt.Sprintf("uploads enabled %.0f%% -> aggregate peer efficiency %.1f%%\n",
			100*f, effs[i])
	}
	printOnce("Ablation: upload-enabled fraction", out)
}

func BenchmarkAblation_UploadCap(b *testing.B) {
	capped := ablationInput(b, "cap-tight", func(c *sim.ScenarioConfig) {
		c.PerObjectUploadCap = 3
	})
	uncapped := ablationInput(b, "cap-off", func(c *sim.ScenarioConfig) {
		c.PerObjectUploadCap = 0
	})
	var sc, su float64
	for i := 0; i < b.N; i++ {
		sc = topUploaderShare(capped)
		su = topUploaderShare(uncapped)
	}
	b.StopTimer()
	b.ReportMetric(sc, "%top1%-share-capped")
	b.ReportMetric(su, "%top1%-share-uncapped")
	printOnce("Ablation: per-object upload cap", fmt.Sprintf(
		"byte share of busiest 1%% of uploaders: cap=3 %.1f%% vs uncapped %.1f%%\n", sc, su))
}

// BenchmarkAblation_DNFailure quantifies the §3.8 robustness claim: wiping
// every DN database mid-trace barely dents peer efficiency, because the
// directory is soft state that the peers re-announce.
func BenchmarkAblation_DNFailure(b *testing.B) {
	healthy := ablationInput(b, "dn-healthy", nil)
	failed := ablationInput(b, "dn-failed", func(c *sim.ScenarioConfig) {
		c.DNFailureAtDay = 5
	})
	var eh, ef float64
	for i := 0; i < b.N; i++ {
		eh = analysis.ComputeHeadlines(healthy, 10).AggregatePeerEfficiencyPct
		ef = analysis.ComputeHeadlines(failed, 10).AggregatePeerEfficiencyPct
	}
	b.StopTimer()
	b.ReportMetric(eh, "%eff-healthy")
	b.ReportMetric(ef, "%eff-after-dn-loss")
	printOnce("Ablation: DN failure (§3.8)", fmt.Sprintf(
		"aggregate peer efficiency: healthy %.1f%% vs total DN loss on day 5 %.1f%%\n", eh, ef))
}

// BenchmarkSimulation_Month measures the end-to-end cost of simulating the
// shared scenario (population + catalog + workload + event loop).
func BenchmarkSimulation_Month(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := sim.SmallScenario()
		cfg.NumPeers = 1500
		cfg.TotalDownloads = 3000
		cfg.Days = 5
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
