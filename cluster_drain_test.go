package netsession

import (
	"context"
	"net/netip"
	"strings"
	"testing"
	"time"

	"netsession/internal/geo"
	"netsession/internal/protocol"
)

// drainOutcome is what a scenario run accounts, comparable across runs.
type drainOutcome struct {
	downloads int
	bytes     int64
}

// announceKey is the per-region RE-ADD rebuild counter a seamless takeover
// must leave untouched.
func announceKey(region string) string {
	return `dn_rebuild_announces_total{region="` + region + `"}`
}

// runDrainScenario drives the same workload against either a single node
// (the baseline) or a three-node cluster that gains a fourth node mid-run —
// joined config-free from one status URL — and then gracefully drains the
// node owning the busiest region. Unlike the kill scenario, a planned drain
// hands each region's directory snapshot to its new owner before leaving, so
// the takeover must not open a rebuild window: zero RE-ADD announces for the
// transferred regions, and accounting byte-equal to the undisturbed run.
func runDrainScenario(t *testing.T, drain bool) drainOutcome {
	t.Helper()
	cfg := DefaultClusterConfig()
	cfg.CPNodes = 1
	if drain {
		cfg.CPNodes = 3
	}
	cfg.CPProbeInterval = 100 * time.Millisecond
	cfg.CPFailAfter = 3
	cfg.DNRebuildWindow = 2 * time.Second
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obj, err := NewObject(8001, "drain/payload.bin", 1, 200_000, 16<<10, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(obj); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
	defer cancel()

	countries := []string{"US", "DE", "JP"}
	var peers []*Peer

	spawn := func(country string) (*Peer, string) {
		ip, err := c.AllocateIdentity(country)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPeer(PeerConfig{
			DeclaredIP:        ip,
			ControlAddrs:      c.ControlAddrs(),
			EdgeURL:           c.EdgeURL(),
			UploadsEnabled:    true,
			StateDir:          t.TempDir(),
			LogUploadURL:      strings.Join(c.ControlPlaneURLs(), ","),
			LogUploadInterval: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		peers = append(peers, p)
		return p, ip
	}
	waitDone := func(dl *Download, who string) {
		res, err := dl.Wait(ctx)
		if err != nil {
			t.Fatalf("%s: %v", who, err)
		}
		if res.Outcome != protocol.OutcomeCompleted {
			t.Fatalf("%s outcome %v", who, res.Outcome)
		}
		if res.BytesInfra+res.BytesPeers != obj.Size {
			t.Fatalf("%s bytes %d+%d, want %d",
				who, res.BytesInfra, res.BytesPeers, obj.Size)
		}
	}
	download := func(p *Peer, who string) *Download {
		dl, err := p.Download(obj.ID)
		if err != nil {
			t.Fatalf("%s: %v", who, err)
		}
		return dl
	}
	regionOf := func(ipStr string) geo.NetworkRegion {
		ip, err := netip.ParseAddr(ipStr)
		if err != nil {
			t.Fatal(err)
		}
		rec, ok := c.scape.Lookup(ip)
		if !ok {
			t.Fatalf("identity %s not in the scape", ipStr)
		}
		return geo.RegionOf(rec)
	}
	gone := -1
	ownerOf := func(r geo.NetworkRegion) int {
		for i, n := range c.nodes {
			if i == gone {
				continue
			}
			if n.cp.OwnsRegion(r) {
				return i
			}
		}
		t.Fatalf("no live node owns region %v", r)
		return -1
	}
	ringConverged := func(size int) bool {
		for i, n := range c.nodes {
			if i == gone {
				continue
			}
			if n.cp.Metrics().Snapshot().Gauges["cp_ring_nodes"] != float64(size) {
				return false
			}
		}
		return true
	}

	var usIP string
	var seedIPs []string
	for _, country := range countries {
		p, ip := spawn(country)
		if country == "US" {
			usIP = ip
		}
		seedIPs = append(seedIPs, ip)
		waitDone(download(p, "seed "+country), "seed "+country)
	}
	for _, ip := range seedIPs {
		r := regionOf(ip)
		owner := ownerOf(r)
		if !chaosEventually(10*time.Second, func() bool {
			return c.nodes[owner].cp.DN(r).Copies(obj.ID) >= 1
		}) {
			t.Fatalf("seed registration for region %v never reached node %d", r, owner)
		}
	}

	wave := func(tag string) {
		var dls []*Download
		var names []string
		for _, country := range countries {
			for i := 0; i < 2; i++ {
				p, _ := spawn(country)
				who := tag + " " + country
				dls = append(dls, download(p, who))
				names = append(names, who)
			}
		}
		for i, dl := range dls {
			waitDone(dl, names[i])
		}
	}
	wave("wave1")

	if drain {
		// A fourth node joins mid-run knowing exactly one live status URL —
		// the config-free join. Seed exchange must discover the other two
		// nodes and announce the joiner cluster-wide.
		idx, err := c.AddCPNode(c.ControlPlaneURL())
		if err != nil {
			t.Fatal(err)
		}
		if !chaosEventually(15*time.Second, func() bool { return ringConverged(4) }) {
			t.Fatal("cluster never converged on the four-node ring after the join")
		}
		owned := 0
		for r := 0; r < geo.NumRegions; r++ {
			if c.nodes[idx].cp.OwnsRegion(geo.NetworkRegion(r)) {
				owned++
			}
		}
		if owned == 0 {
			t.Fatal("joined node owns no regions on the converged ring")
		}
		t.Logf("node %d joined from one seed URL, owns %d regions", idx, owned)
		joinSnap := c.nodes[idx].cp.Metrics().Snapshot()
		if got := joinSnap.Counters["cluster_members_learned_total"]; got < 2 {
			t.Errorf("joined node cluster_members_learned_total = %d, want >= 2 (seed exchange)", got)
		}
		if got := c.nodes[0].cp.Metrics().Snapshot().Counters["cluster_members_learned_total"]; got < 1 {
			t.Errorf("seed node cluster_members_learned_total = %d, want >= 1 (probe identity)", got)
		}

		wave("wave2")

		// Drain the owner of the busiest (US) region gracefully. Snapshot the
		// per-region rebuild announce counters first: the handed-off regions
		// must not rebuild anywhere.
		usRegion := regionOf(usIP)
		victim := ownerOf(usRegion)
		preAnnounce := make([]map[string]int64, len(c.nodes))
		for i, n := range c.nodes {
			preAnnounce[i] = n.cp.Metrics().Snapshot().Counters
		}
		sum, err := c.DrainCPNode(victim)
		if err != nil {
			t.Fatal(err)
		}
		gone = victim
		t.Logf("drained node %d: %d regions, %d entries, %d acks to %d survivors",
			victim, len(sum.Regions), sum.EntriesTransferred, sum.AcksFlushed, sum.Survivors)
		if sum.Survivors != 3 {
			t.Errorf("drain saw %d survivors, want 3", sum.Survivors)
		}
		if len(sum.Regions) == 0 {
			t.Error("drain handed off no regions; the victim owned the US region")
		}
		if sum.EntriesTransferred == 0 {
			t.Error("drain transferred no directory entries; the US region had holders")
		}
		vSnap := c.nodes[victim].cp.Metrics().Snapshot()
		if got := vSnap.Counters["cp_drain_regions_total"]; got < 1 {
			t.Errorf("cp_drain_regions_total = %d, want >= 1", got)
		}
		if got := vSnap.Counters["cp_drain_entries_transferred_total"]; got < 1 {
			t.Errorf("cp_drain_entries_transferred_total = %d, want >= 1", got)
		}
		if !chaosEventually(15*time.Second, func() bool { return ringConverged(3) }) {
			t.Fatal("survivors never converged on the post-drain ring")
		}
		// The transferred snapshot is live on the new owner immediately — no
		// RE-ADD round needed to see the US holders again.
		newOwner := ownerOf(usRegion)
		if c.nodes[newOwner].cp.DN(usRegion).Copies(obj.ID) < 1 {
			t.Errorf("node %d took over region %v with an empty directory; the handoff snapshot was lost",
				newOwner, usRegion)
		}

		wave("wave3")

		// Zero-rebuild: for every handed-off region, no surviving node's
		// rebuild announce counter moved — the takeover skipped the RE-ADD
		// window entirely, unlike a crash.
		for i, n := range c.nodes {
			if i == victim {
				continue
			}
			snap := n.cp.Metrics().Snapshot()
			for _, reg := range sum.Regions {
				key := announceKey(reg.Region)
				if delta := snap.Counters[key] - preAnnounce[i][key]; delta != 0 {
					t.Errorf("node %d %s grew by %d after the drain; a transferred region rebuilt",
						i, key, delta)
				}
			}
		}
	} else {
		wave("wave2")
		wave("wave3")
	}

	for i, p := range peers {
		if err := p.FlushLogs(ctx); err != nil {
			t.Fatalf("peer %d flush: %v", i, err)
		}
	}
	log := c.AccountingLog()
	var total int64
	for _, d := range log.Downloads {
		if d.BytesInfra+d.BytesPeers != obj.Size {
			t.Fatalf("accounted record claims %d+%d bytes, want %d",
				d.BytesInfra, d.BytesPeers, obj.Size)
		}
		total += d.BytesInfra + d.BytesPeers
	}
	if c.RejectedReports() != 0 {
		t.Fatalf("%d legitimate reports rejected", c.RejectedReports())
	}
	return drainOutcome{downloads: len(log.Downloads), bytes: total}
}

// TestClusterPlannedDrainZeroRebuild is the headline graceful-exit test: the
// same workload runs against a single node (baseline) and a cluster that
// gains a fourth node config-free mid-run and then drains the busiest node.
// Every download completes hash-verified, the handed-off regions never open
// a rebuild window, and the accounting totals equal the baseline exactly.
func TestClusterPlannedDrainZeroRebuild(t *testing.T) {
	baseline := runDrainScenario(t, false)
	drained := runDrainScenario(t, true)
	if drained.downloads != baseline.downloads {
		t.Errorf("drain run accounted %d downloads, baseline %d",
			drained.downloads, baseline.downloads)
	}
	if drained.bytes != baseline.bytes {
		t.Errorf("drain run accounted %d bytes, baseline %d (graceful exit lost records)",
			drained.bytes, baseline.bytes)
	}
}

// TestClusterDrainStampede pits the two exit paths against each other under
// a larger fleet: a four-node cluster serves ~90 peers, loses one node to a
// kill (the crash path: RE-ADD rebuild burst expected), then gracefully
// drains another (the planned path: zero rebuild for the handed-off
// regions). The burst sizes are logged so the contrast is measurable.
func TestClusterDrainStampede(t *testing.T) {
	if testing.Short() {
		t.Skip("stampede harness is not short")
	}
	cfg := DefaultClusterConfig()
	cfg.CPNodes = 4
	cfg.CPProbeInterval = 100 * time.Millisecond
	cfg.CPFailAfter = 3
	cfg.DNRebuildWindow = 2 * time.Second
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obj, err := NewObject(8002, "drain/stampede.bin", 1, 48<<10, 16<<10, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(obj); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()

	countries := []string{"US", "DE", "JP"}
	var peers []*Peer
	spawn := func(country string) (*Peer, string) {
		ip, err := c.AllocateIdentity(country)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPeer(PeerConfig{
			DeclaredIP:     ip,
			ControlAddrs:   c.ControlAddrs(),
			EdgeURL:        c.EdgeURL(),
			UploadsEnabled: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		peers = append(peers, p)
		return p, ip
	}
	waveSize := func(tag string, perCountry int) {
		var dls []*Download
		for _, country := range countries {
			for i := 0; i < perCountry; i++ {
				p, _ := spawn(country)
				dl, err := p.Download(obj.ID)
				if err != nil {
					t.Fatalf("%s %s: %v", tag, country, err)
				}
				dls = append(dls, dl)
			}
		}
		for i, dl := range dls {
			res, err := dl.Wait(ctx)
			if err != nil || res.Outcome != protocol.OutcomeCompleted {
				t.Fatalf("%s download %d: res=%+v err=%v", tag, i, res, err)
			}
		}
	}
	gone := map[int]bool{}
	ownerOf := func(r geo.NetworkRegion) int {
		for i, n := range c.nodes {
			if gone[i] {
				continue
			}
			if n.cp.OwnsRegion(r) {
				return i
			}
		}
		t.Fatalf("no live node owns region %v", r)
		return -1
	}
	ringConverged := func(size int) bool {
		for i, n := range c.nodes {
			if gone[i] {
				continue
			}
			if n.cp.Metrics().Snapshot().Gauges["cp_ring_nodes"] != float64(size) {
				return false
			}
		}
		return true
	}
	sumCounter := func(key string) int64 {
		var total int64
		for i, n := range c.nodes {
			if gone[i] {
				continue
			}
			total += n.cp.Metrics().Snapshot().Counters[key]
		}
		return total
	}
	announceTotal := func() int64 {
		var total int64
		for i, n := range c.nodes {
			if gone[i] {
				continue
			}
			for key, v := range n.cp.Metrics().Snapshot().Counters {
				if strings.HasPrefix(key, "dn_rebuild_announces_total{") {
					total += v
				}
			}
		}
		return total
	}

	// The standing fleet: 72 peers with uploads enabled, every region seeded.
	_, usIP := spawn("US")
	usRegion := func() geo.NetworkRegion {
		ip, _ := netip.ParseAddr(usIP)
		rec, ok := c.scape.Lookup(ip)
		if !ok {
			t.Fatalf("identity %s not in the scape", usIP)
		}
		return geo.RegionOf(rec)
	}()
	dl, err := peers[0].Download(obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := dl.Wait(ctx); err != nil || res.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("US seed: res=%+v err=%v", res, err)
	}
	waveSize("fleet", 24)
	t.Logf("fleet standing: %d peers", len(peers))

	// Phase 1 — the crash path: kill the US region's owner. Survivors rebuild
	// its regions from RE-ADDs; the burst is the cost of an unplanned exit.
	preKillAnnounces := announceTotal()
	preKillRedirects := sumCounter("cp_logins_redirected_total")
	killVictim := ownerOf(usRegion)
	c.KillCPNode(killVictim)
	gone[killVictim] = true
	if !chaosEventually(20*time.Second, func() bool { return ringConverged(3) }) {
		t.Fatal("survivors never converged after the kill")
	}
	waveSize("post-kill", 3)
	killAnnounces := announceTotal() - preKillAnnounces
	t.Logf("kill burst: %d RE-ADD announces, %d login redirects",
		killAnnounces, sumCounter("cp_logins_redirected_total")-preKillRedirects)
	if killAnnounces == 0 {
		t.Error("kill produced no RE-ADD announces; the crash path never rebuilt")
	}

	// Phase 2 — the planned path: drain the US region's new owner. Handed-off
	// regions must not rebuild at all.
	preDrain := make([]map[string]int64, len(c.nodes))
	for i, n := range c.nodes {
		if !gone[i] {
			preDrain[i] = n.cp.Metrics().Snapshot().Counters
		}
	}
	drainVictim := ownerOf(usRegion)
	var preDrainRedirects int64
	for i, n := range c.nodes {
		if !gone[i] && i != drainVictim {
			preDrainRedirects += n.cp.Metrics().Snapshot().Counters["cp_logins_redirected_total"]
		}
	}
	sum, err := c.DrainCPNode(drainVictim)
	if err != nil {
		t.Fatal(err)
	}
	gone[drainVictim] = true
	t.Logf("drained node %d: %d regions, %d entries to %d survivors",
		drainVictim, len(sum.Regions), sum.EntriesTransferred, sum.Survivors)
	if !chaosEventually(20*time.Second, func() bool { return ringConverged(2) }) {
		t.Fatal("survivors never converged after the drain")
	}
	waveSize("post-drain", 3)
	var drainAnnounces int64
	for i, n := range c.nodes {
		if gone[i] {
			continue
		}
		snap := n.cp.Metrics().Snapshot()
		for _, reg := range sum.Regions {
			key := announceKey(reg.Region)
			drainAnnounces += snap.Counters[key] - preDrain[i][key]
		}
	}
	t.Logf("drain burst: %d RE-ADD announces on transferred regions, %d login redirects",
		drainAnnounces, sumCounter("cp_logins_redirected_total")-preDrainRedirects)
	if drainAnnounces != 0 {
		t.Errorf("planned drain caused %d RE-ADD announces; handoff snapshots should have made the takeover silent",
			drainAnnounces)
	}
	if len(sum.Regions) == 0 || sum.EntriesTransferred == 0 {
		t.Errorf("drain summary %+v transferred nothing under a %d-peer fleet", sum, len(peers))
	}
}
