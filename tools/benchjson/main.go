// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so CI can archive bench-smoke timings as
// a workflow artifact and trend them across commits. It understands the
// standard benchmark line — name, parallelism suffix, iteration count,
// then (value, unit) metric pairs, including -benchmem columns and custom
// testing.B.ReportMetric units like events/sec.
//
// Usage:
//
//	benchjson -in bench.txt -out bench.json
//	go test -bench . | benchjson -out bench.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole document: environment header plus every result.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	GOMAXPROCS string      `json:"gomaxprocs,omitempty"`
	Packages   []string    `json:"packages,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches "BenchmarkName-8   	  100	  12345 ns/op	..." with an
// optional -P parallelism suffix; sub-benchmark names may themselves
// contain dashes, so the suffix match is anchored to the last dash-digits
// run before the whitespace.
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]*?)(?:-(\d+))?\s+(\d+)\s+(.+)$`)

func parse(r io.Reader) (*Report, error) {
	rep := &Report{GOMAXPROCS: os.Getenv("GOMAXPROCS")}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Packages = append(rep.Packages, strings.TrimPrefix(line, "pkg: "))
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Benchmark{Name: m[1], Metrics: map[string]float64{}}
		if m[2] != "" {
			b.Procs, _ = strconv.Atoi(m[2])
		}
		var err error
		if b.Iterations, err = strconv.ParseInt(m[3], 10, 64); err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %w", line, err)
		}
		fields := strings.Fields(m[4])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("benchjson: odd metric fields in %q", line)
		}
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad metric value in %q: %w", line, err)
			}
			b.Metrics[fields[i+1]] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	in := flag.String("in", "", "benchmark text output to parse (default: stdin)")
	out := flag.String("out", "", "JSON file to write (default: stdout)")
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		src = f
	}
	rep, err := parse(src)
	if err != nil {
		log.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("no benchmark result lines found in input")
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d benchmark results to %s", len(rep.Benchmarks), *out)
}
