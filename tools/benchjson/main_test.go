package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: netsession/internal/sim
cpu: AMD EPYC 7B13
BenchmarkEngineEvents-4   	       2	432529702 ns/op	   2312335 events/sec	      49.0 allocs-total
BenchmarkSimSmall-4       	       2	311040138 ns/op	24576000 B/op	  392154 allocs/op
BenchmarkSimTiers/XL-4    	       1	23900000000 ns/op	        27.2 peak-RSS-MB
PASS
ok  	netsession/internal/sim	12.3s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" {
		t.Fatalf("header = %s/%s, want linux/amd64", rep.GOOS, rep.GOARCH)
	}
	if len(rep.Packages) != 1 || rep.Packages[0] != "netsession/internal/sim" {
		t.Fatalf("packages = %v", rep.Packages)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	ev := rep.Benchmarks[0]
	if ev.Name != "BenchmarkEngineEvents" || ev.Procs != 4 || ev.Iterations != 2 {
		t.Fatalf("first line parsed as %+v", ev)
	}
	if ev.Metrics["events/sec"] != 2312335 || ev.Metrics["ns/op"] != 432529702 {
		t.Fatalf("metrics = %v", ev.Metrics)
	}
	mem := rep.Benchmarks[1]
	if mem.Metrics["allocs/op"] != 392154 || mem.Metrics["B/op"] != 24576000 {
		t.Fatalf("benchmem metrics = %v", mem.Metrics)
	}
	sub := rep.Benchmarks[2]
	if sub.Name != "BenchmarkSimTiers/XL" || sub.Metrics["peak-RSS-MB"] != 27.2 {
		t.Fatalf("sub-benchmark parsed as %+v", sub)
	}
}

func TestParseRejectsMalformedMetrics(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkX-4 2 100 ns/op trailing\n")); err == nil {
		t.Fatal("odd metric fields accepted")
	}
	if _, err := parse(strings.NewReader("BenchmarkX-4 2 abc ns/op\n")); err == nil {
		t.Fatal("non-numeric value accepted")
	}
}
