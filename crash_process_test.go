package netsession

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"encoding/json"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// The process-kill harness re-executes this test binary as a child peer
// process, SIGKILLs it mid-download, and re-executes it against the same
// state directory to prove the resume path works across a real process
// death — not just an in-process simulation of one. The child is selected
// with -test.run and configured entirely through the environment.
const (
	crashEnvMode    = "NETSESSION_CRASH_MODE" // "first" or "resume"
	crashEnvState   = "NETSESSION_CRASH_STATE"
	crashEnvControl = "NETSESSION_CRASH_CONTROL"
	crashEnvEdge    = "NETSESSION_CRASH_EDGE"
	crashEnvIP      = "NETSESSION_CRASH_IP"
	crashEnvObject  = "NETSESSION_CRASH_OBJECT"
)

// crashChildMetrics is the JSON record the resume child prints for the
// parent's assertions.
type crashChildMetrics struct {
	Complete        bool  `json:"complete"`
	ResumeTotal     int64 `json:"resumeTotal"`
	PiecesRecovered int64 `json:"piecesRecovered"`
	PiecesFetched   int64 `json:"piecesFetched"`
	BytesEdge       int64 `json:"bytesEdge"`
}

// TestCrashPeerProcessHelper is the child body for TestCrashPeerProcessKill;
// it skips unless the parent selected it via the environment.
func TestCrashPeerProcessHelper(t *testing.T) {
	mode := os.Getenv(crashEnvMode)
	if mode == "" {
		t.Skip("subprocess helper; driven by TestCrashPeerProcessKill")
	}
	raw, err := hex.DecodeString(os.Getenv(crashEnvObject))
	if err != nil {
		t.Fatal(err)
	}
	var oid ObjectID
	copy(oid[:], raw)

	p, err := NewPeer(PeerConfig{
		StateDir:       os.Getenv(crashEnvState),
		DeclaredIP:     os.Getenv(crashEnvIP),
		ControlAddrs:   strings.Split(os.Getenv(crashEnvControl), ","),
		EdgeURL:        os.Getenv(crashEnvEdge),
		UploadsEnabled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	switch mode {
	case "first":
		if _, err := p.Download(oid); err != nil {
			t.Fatal(err)
		}
		// Wait for the parent's SIGKILL (bounded so an orphaned child cannot
		// hang the test binary forever).
		time.Sleep(2 * time.Minute)
		t.Fatal("parent never killed the child")
	case "resume":
		// The client resumes checkpointed downloads on its own; just watch
		// the store.
		deadline := time.Now().Add(60 * time.Second)
		for !p.Store().Complete(oid) && time.Now().Before(deadline) {
			time.Sleep(20 * time.Millisecond)
		}
		snap := p.Metrics().Snapshot()
		out := crashChildMetrics{
			Complete:        p.Store().Complete(oid),
			ResumeTotal:     snap.Counters["peer_resume_total"],
			PiecesRecovered: snap.Counters["peer_pieces_recovered_total"],
			PiecesFetched: snap.Counters[`peer_pieces_total{source="edge"}`] +
				snap.Counters[`peer_pieces_total{source="peer"}`],
			BytesEdge: snap.Counters[`peer_bytes_down_total{source="edge"}`],
		}
		enc, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout.Write(append([]byte("CRASH-METRICS "), append(enc, '\n')...))
	default:
		t.Fatalf("unknown crash helper mode %q", mode)
	}
}

// TestCrashPeerProcessKill SIGKILLs a real peer process mid-download and
// restarts it with the same state directory: the second process must resume
// from the persisted bitfield, fetch only the missing pieces, and complete
// hash-verified.
func TestCrashPeerProcessKill(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec harness; skipped in -short")
	}
	cfg := DefaultClusterConfig()
	cfg.EdgeFaults = FaultProfile{
		Seed:       29,
		LatencyMin: 3 * time.Millisecond,
		LatencyMax: 8 * time.Millisecond,
	}
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obj, err := NewObject(3001, "crash/process.bin", 1, 5_000_000, 16<<10, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(obj); err != nil {
		t.Fatal(err)
	}
	ip, err := c.AllocateIdentity("US")
	if err != nil {
		t.Fatal(err)
	}
	stateDir := t.TempDir()
	env := append(os.Environ(),
		crashEnvState+"="+stateDir,
		crashEnvControl+"="+strings.Join(c.ControlAddrs(), ","),
		crashEnvEdge+"="+c.EdgeURL(),
		crashEnvIP+"="+ip,
		crashEnvObject+"="+hex.EncodeToString(obj.ID[:]),
	)
	child := func(mode string) *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run=TestCrashPeerProcessHelper$")
		cmd.Env = append(append([]string(nil), env...), crashEnvMode+"="+mode)
		return cmd
	}

	// First run: start downloading, then die by SIGKILL mid-transfer.
	first := child("first")
	if err := first.Start(); err != nil {
		t.Fatal(err)
	}
	if !chaosEventually(60*time.Second, func() bool {
		return countPieceFiles(stateDir, obj.ID) >= 8
	}) {
		first.Process.Kill()
		first.Wait()
		t.Fatal("child made no durable progress before the kill")
	}
	if err := first.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		t.Fatal(err)
	}
	first.Wait()

	onDisk := countPieceFiles(stateDir, obj.ID)
	if onDisk >= obj.NumPieces() {
		t.Fatalf("child finished all %d pieces before the kill; widen the fault latency", onDisk)
	}
	if _, err := os.Stat(checkpointFile(stateDir, obj.ID)); err != nil {
		t.Fatalf("SIGKILLed child left no checkpoint: %v", err)
	}

	// Second run: same state dir; the process must resume and finish.
	resume := child("resume")
	out, err := resume.CombinedOutput()
	if err != nil {
		t.Fatalf("resume child failed: %v\n%s", err, out)
	}
	var m crashChildMetrics
	found := false
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "CRASH-METRICS "); ok {
			if err := json.Unmarshal([]byte(rest), &m); err != nil {
				t.Fatalf("bad metrics line %q: %v", rest, err)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("resume child printed no metrics:\n%s", out)
	}
	if !m.Complete {
		t.Fatalf("resumed process did not complete the download: %+v", m)
	}
	if m.ResumeTotal != 1 {
		t.Errorf("peer_resume_total = %d, want 1", m.ResumeTotal)
	}
	if m.PiecesRecovered < int64(onDisk) {
		t.Errorf("recovered %d pieces, want >= %d left on disk by the kill",
			m.PiecesRecovered, onDisk)
	}
	// Zero re-downloads: the fetch counters account exactly for the missing
	// complement, and edge bytes stay below the object size.
	if m.PiecesFetched != int64(obj.NumPieces())-m.PiecesRecovered {
		t.Errorf("resumed process fetched %d pieces, want %d (total %d - recovered %d)",
			m.PiecesFetched, int64(obj.NumPieces())-m.PiecesRecovered,
			obj.NumPieces(), m.PiecesRecovered)
	}
	if m.BytesEdge >= obj.Size {
		t.Errorf("resumed process pulled %d edge bytes for a %d-byte object — refetched verified data",
			m.BytesEdge, obj.Size)
	}
}
