// Command netsession-sim runs one simulation scenario and writes the raw
// log set (download, login and registration records) as JSON-lines files —
// the synthetic equivalent of the month of production logs the paper
// analyses. Use netsession-report for the analyses themselves.
//
// Usage:
//
//	netsession-sim [-scenario default|small|xl|m|xxl|streaming] [-peers N] [-downloads N]
//	               [-days N] [-seed N] [-workers N] [-debug-addr ADDR]
//	               [-cpuprofile FILE] [-memprofile FILE] -out DIR
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"netsession"
	"netsession/internal/accounting"
	"netsession/internal/analysis"
	"netsession/internal/geo"
	"netsession/internal/logpipe"
	"netsession/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netsession-sim: ")

	scenario := flag.String("scenario", "default",
		"base scenario tier: default (20k peers), small (4k), xl (60k), m (250k), xxl (1M peers / 31 days), or streaming (deadline-driven delivery)")
	peers := flag.Int("peers", 0, "peer population size")
	downloads := flag.Int("downloads", 0, "total downloads")
	days := flag.Int("days", 0, "trace length in days")
	seed := flag.Int64("seed", 0, "random seed")
	workers := flag.Int("workers", 0, "region-shard workers (0: one per CPU, 1: sequential reference mode; output is identical either way)")
	outDir := flag.String("out", "netsession-logs", "output directory")
	format := flag.String("format", "jsonl",
		"download log format: jsonl (downloads.jsonl), segments (gzip NDJSON segments under out/segments, identical to the control plane's log store), or both")
	telem := flag.Bool("telemetry", true, "log periodic telemetry snapshots (virtual time, events/sec, flows)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof and live /metrics on this address during the run")
	faultSeed := flag.Int64("fault-seed", 0, "seed for the fault-injection RNG (0: fixed default)")
	faultServerFail := flag.Float64("fault-server-fail", 0,
		"probability a serving peer is killed mid-download (0 disables fault injection)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a post-run heap profile to this file")
	flag.Parse()

	var cfg netsession.Scenario
	switch *scenario {
	case "default":
		cfg = netsession.DefaultScenario()
	case "small":
		cfg = netsession.SmallScenario()
	case "xl":
		cfg = netsession.XLScenario()
	case "m":
		cfg = netsession.MScenario()
	case "xxl":
		cfg = netsession.XXLScenario()
	case "streaming":
		cfg = netsession.StreamingScenario()
	default:
		log.Fatalf("unknown -scenario %q (want default, small, xl, m, xxl, or streaming)", *scenario)
	}
	if *peers > 0 {
		cfg.NumPeers = *peers
	}
	if *downloads > 0 {
		cfg.TotalDownloads = *downloads
	}
	if *days > 0 {
		cfg.Days = *days
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers
	if *telem {
		cfg.Logf = log.Printf
	}
	if *debugAddr != "" {
		cfg.Telemetry = telemetry.NewRegistry()
		dbg, err := telemetry.StartDebug(*debugAddr, cfg.Telemetry)
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		log.Printf("debug server on http://%s (GET /debug/pprof/, /metrics)", dbg.Addr())
	}
	cfg.Faults = netsession.SimFaults{Seed: *faultSeed, ServerFailProb: *faultServerFail}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	start := time.Now()
	res, err := netsession.RunScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("simulated %d downloads / %d logins / %d registrations in %s",
		len(res.Log.Downloads), len(res.Log.Logins), len(res.Log.Registrations),
		time.Since(start).Round(time.Millisecond))

	if *memProfile != "" {
		// The profile captures what the finished run retains (the log set,
		// directories, population) — the memory-model numbers DESIGN.md's
		// paper-scale section reasons about.
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		log.Printf("wrote heap profile to %s", *memProfile)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	wantJSONL, wantSegments := false, false
	switch *format {
	case "jsonl":
		wantJSONL = true
	case "segments":
		wantSegments = true
	case "both":
		wantJSONL, wantSegments = true, true
	default:
		log.Fatalf("unknown -format %q (want jsonl, segments, or both)", *format)
	}
	if wantJSONL {
		if err := writeDownloads(filepath.Join(*outDir, "downloads.jsonl"), res); err != nil {
			log.Fatal(err)
		}
	}
	if wantSegments {
		if err := writeSegments(filepath.Join(*outDir, "segments"), res); err != nil {
			log.Fatal(err)
		}
	}
	if err := writeLogins(filepath.Join(*outDir, "logins.jsonl"), res.Log); err != nil {
		log.Fatal(err)
	}
	if err := writeRegistrations(filepath.Join(*outDir, "registrations.jsonl"), res.Log); err != nil {
		log.Fatal(err)
	}
	if err := writeBilling(filepath.Join(*outDir, "billing.csv"), res.Log); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote logs to %s", *outDir)
}

// scenarioLookup annotates logged IPs with the generating scape, the way the
// control plane annotates live reports before spilling them — country, AS,
// and the network region the per-region analytics aggregate by.
func scenarioLookup(res *netsession.ScenarioResult) analysis.GeoLookup {
	return func(ip netip.Addr) analysis.GeoTag {
		if rec, ok := res.Scape.Lookup(ip); ok {
			return analysis.GeoTag{
				Country: string(rec.Country),
				ASN:     uint32(rec.ASN),
				Region:  geo.RegionOf(rec).String(),
			}
		}
		return analysis.GeoTag{}
	}
}

// writeDownloads exports analysis.OfflineDownload records: each carries its
// own geolocation so the log set is self-contained (netsession-analyze
// reads it without the generating atlas).
func writeDownloads(path string, res *netsession.ScenarioResult) error {
	l := res.Log
	lookup := scenarioLookup(res)
	return writeJSONL(path, len(l.Downloads), func(enc *json.Encoder, i int) error {
		return enc.Encode(analysis.OfflineFromRecord(&l.Downloads[i], lookup))
	})
}

// writeSegments exports the download log in the control plane's durable
// segment format (gzip-compressed NDJSON), so simulated and live-cluster
// log sets are byte-compatible inputs to netsession-analyze. The bulk
// writer compresses each segment once, so the XXL tier's millions of
// records export in linear time.
func writeSegments(dir string, res *netsession.ScenarioResult) error {
	w, err := logpipe.NewBulkWriter(dir, 20_000)
	if err != nil {
		return err
	}
	l := res.Log
	lookup := scenarioLookup(res)
	for i := range l.Downloads {
		if err := w.Append(analysis.OfflineFromRecord(&l.Downloads[i], lookup)); err != nil {
			return err
		}
	}
	return w.Close()
}

type jsonLogin struct {
	TimeMs         int64  `json:"timeMs"`
	GUID           string `json:"guid"`
	IP             string `json:"ip"`
	UploadsEnabled bool   `json:"uploadsEnabled"`
}

func writeLogins(path string, l *netsession.Log) error {
	return writeJSONL(path, len(l.Logins), func(enc *json.Encoder, i int) error {
		r := &l.Logins[i]
		return enc.Encode(jsonLogin{
			TimeMs: r.TimeMs, GUID: r.GUID.String(), IP: r.IP.String(),
			UploadsEnabled: r.UploadsEnabled,
		})
	})
}

type jsonReg struct {
	TimeMs int64  `json:"timeMs"`
	GUID   string `json:"guid"`
	Object string `json:"object"`
}

func writeRegistrations(path string, l *netsession.Log) error {
	return writeJSONL(path, len(l.Registrations), func(enc *json.Encoder, i int) error {
		r := &l.Registrations[i]
		return enc.Encode(jsonReg{TimeMs: r.TimeMs, GUID: r.GUID.String(), Object: r.Object.String()})
	})
}

// writeBilling renders the per-provider billing summary.
func writeBilling(path string, l *netsession.Log) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return accounting.WriteCSV(f, accounting.Bill(l))
}

func writeJSONL(path string, n int, encode func(*json.Encoder, int) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	enc := json.NewEncoder(bw)
	for i := 0; i < n; i++ {
		if err := encode(enc, i); err != nil {
			return fmt.Errorf("encode %s record %d: %w", path, i, err)
		}
	}
	return bw.Flush()
}
