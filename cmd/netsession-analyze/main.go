// Command netsession-analyze computes the trace analyses from an exported
// log set. The logs are self-contained — every record carries its own
// geolocation — so this works on any machine without the generating atlas,
// the way the paper's offline analyses worked on the anonymized,
// EdgeScape-annotated data set (§4.1).
//
// Two input layouts are auto-detected:
//
//   - a downloads.jsonl file (netsession-sim -out with -format jsonl)
//   - a directory of seg-*.ndjson.gz log segments, either directly in -logs
//     or under -logs/segments (the control plane's durable log store, or
//     netsession-sim -format segments)
//
// Segment stores are streamed — decoded segment by segment into a running
// accumulator — so memory stays bounded no matter how many entries the store
// holds. With -follow the analyzer tails a live log directory instead,
// printing a rolling live-analytics dashboard as segments land, and resumes
// from a checkpointed cursor across restarts.
//
// Usage:
//
//	netsession-analyze -logs DIR
//	netsession-analyze -logs DIR -follow [-refresh 2s]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"netsession/internal/analysis"
	"netsession/internal/logpipe"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netsession-analyze: ")

	dir := flag.String("logs", "netsession-logs",
		"log directory: downloads.jsonl (sim export) or seg-*.ndjson.gz segments (log store)")
	follow := flag.Bool("follow", false,
		"tail the segment directory live, printing rolling analytics as records land")
	refresh := flag.Duration("refresh", 2*time.Second, "poll interval in follow mode")
	cursorPath := flag.String("cursor", "",
		"tail-cursor checkpoint file in follow mode (default: tail-cursor.json inside the segment directory)")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel segment decoders for the one-shot pass")
	flag.Parse()

	if *follow {
		runFollow(*dir, *cursorPath, *refresh)
		return
	}
	runOnce(*dir, *workers)
}

// runOnce is the one-shot offline pass: jsonl exports load whole (they are
// one file), segment stores stream through the accumulator.
func runOnce(dir string, workers int) {
	jsonlPath := filepath.Join(dir, "downloads.jsonl")
	if f, err := os.Open(jsonlPath); err == nil {
		defer f.Close()
		dls, rerr := analysis.ReadDownloadsJSONL(f)
		if rerr != nil {
			log.Fatalf("%s: %v", jsonlPath, rerr)
		}
		if len(dls) == 0 {
			log.Fatalf("no download records in %s", jsonlPath)
		}
		log.Printf("read %d download records from %s", len(dls), jsonlPath)
		fmt.Print(analysis.SummarizeOffline(dls).Render())
		return
	}
	segDir, ok := findSegmentDir(dir)
	if !ok {
		log.Fatal(noLogsErr(dir))
	}
	acc := analysis.NewOfflineAccumulator()
	start := time.Now()
	n, err := logpipe.ForEachDownload(segDir, workers, func(d *analysis.OfflineDownload) error {
		acc.Add(d)
		return nil
	})
	if err != nil {
		log.Fatalf("%s: %v", segDir, err)
	}
	if n == 0 {
		log.Fatalf("no download records in %s (log segments)", segDir)
	}
	elapsed := time.Since(start)
	log.Printf("streamed %d download records from %s (log segments) in %.2fs (%.0f records/sec)",
		n, segDir, elapsed.Seconds(), float64(n)/elapsed.Seconds())
	fmt.Print(acc.Summary().Render())
}

// runFollow tails a live segment directory: every poll folds the new records
// into a streaming summarizer and re-renders the dashboard. The cursor is
// checkpointed after each poll, so a restarted follower picks up where it
// stopped instead of replaying the store.
func runFollow(dir, cursorPath string, refresh time.Duration) {
	segDir, ok := findSegmentDir(dir)
	if !ok {
		// The store may not have spilled its first segment yet; follow the
		// configured directory and wait.
		segDir = dir
	}
	if cursorPath == "" {
		cursorPath = logpipe.DefaultTailCursorPath(segDir)
	}
	tl, err := logpipe.OpenTailer(logpipe.TailerConfig{Dir: segDir, CursorPath: cursorPath})
	if err != nil {
		log.Fatal(err)
	}
	sum := analysis.NewStreamingSummarizer(4)
	log.Printf("following %s (cursor %s, refresh %s)", segDir, cursorPath, refresh)
	start := time.Now()
	var total int64
	for {
		recs, perr := tl.Poll()
		if perr != nil {
			log.Printf("poll: %v", perr)
		}
		for i := range recs {
			sum.Observe(&recs[i])
		}
		if len(recs) > 0 {
			total += int64(len(recs))
			rate := float64(total) / time.Since(start).Seconds()
			log.Printf("%s +%d records (%d total, %.0f records/sec, %d torn segments skipped)",
				time.Now().Format("15:04:05"), len(recs), total, rate, tl.TornSkipped())
			fmt.Println(sum.Snapshot().Render())
		}
		time.Sleep(refresh)
	}
}

// findSegmentDir locates the segment layout under dir.
func findSegmentDir(dir string) (string, bool) {
	for _, segDir := range []string{dir, filepath.Join(dir, "segments")} {
		if logpipe.HasSegments(segDir) {
			return segDir, true
		}
	}
	return "", false
}

func noLogsErr(dir string) error {
	return fmt.Errorf(
		"no logs found in %s: expected either a downloads.jsonl file (netsession-sim export) "+
			"or seg-*.ndjson.gz log segments in the directory or its segments/ subdirectory "+
			"(control-plane log store)", dir)
}
