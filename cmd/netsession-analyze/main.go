// Command netsession-analyze computes the trace analyses from an exported
// log set. The logs are self-contained — every record carries its own
// geolocation — so this works on any machine without the generating atlas,
// the way the paper's offline analyses worked on the anonymized,
// EdgeScape-annotated data set (§4.1).
//
// Two input layouts are auto-detected:
//
//   - a downloads.jsonl file (netsession-sim -out with -format jsonl)
//   - a directory of seg-*.ndjson.gz log segments, either directly in -logs
//     or under -logs/segments (the control plane's durable log store, or
//     netsession-sim -format segments)
//
// Segment stores are streamed — decoded segment by segment into a running
// accumulator — so memory stays bounded no matter how many entries the store
// holds. With -follow the analyzer tails a live log directory instead,
// printing a rolling live-analytics dashboard as segments land, and resumes
// from a checkpointed cursor across restarts.
//
// Usage:
//
//	netsession-analyze -logs DIR
//	netsession-analyze -logs DIR -follow [-refresh 2s]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"netsession/internal/analysis"
	"netsession/internal/logpipe"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netsession-analyze: ")

	dir := flag.String("logs", "netsession-logs",
		"log directory: downloads.jsonl (sim export) or seg-*.ndjson.gz segments (log store)")
	follow := flag.Bool("follow", false,
		"tail the segment directory live, printing rolling analytics as records land")
	refresh := flag.Duration("refresh", 2*time.Second, "poll interval in follow mode")
	cursorPath := flag.String("cursor", "",
		"tail-cursor checkpoint file in follow mode (default: tail-cursor.json inside the segment directory)")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel segment decoders for the one-shot pass")
	figures := flag.Bool("figures", false,
		"also print the streaming figure passes (size CDFs, popularity, abort rates, per-region offload)")
	flag.Parse()

	if *follow {
		runFollow(*dir, *cursorPath, *refresh)
		return
	}
	runOnce(*dir, *workers, *figures)
}

// runOnce is the one-shot offline pass. Both input layouts stream: a jsonl
// export scans record by record into a sharded accumulator, a segment store
// goes through the parallel decode-and-fold pass — either way memory scales
// with distinct GUIDs/URLs/ASes, never with record count, so a paper-scale
// store analyzes on one box.
func runOnce(dir string, workers int, figures bool) {
	start := time.Now()
	var (
		sum    logpipe.StoreSummary
		source string
	)
	jsonlPath := filepath.Join(dir, "downloads.jsonl")
	if f, err := os.Open(jsonlPath); err == nil {
		defer f.Close()
		source = jsonlPath
		acc := analysis.NewShardedOfflineAccumulator(4*workers, figures)
		br := bufio.NewReaderSize(f, 1<<20)
		if err := analysis.ScanDownloadsJSONL(br, func(d *analysis.OfflineDownload) error {
			acc.Add(d)
			sum.Records++
			return nil
		}); err != nil {
			log.Fatalf("%s: %v", jsonlPath, err)
		}
		sum.Summary, sum.Figures = acc.Summary(), acc.Figures()
	} else {
		segDir, ok := findSegmentDir(dir)
		if !ok {
			log.Fatal(noLogsErr(dir))
		}
		source = segDir + " (log segments)"
		s, err := logpipe.SummarizeStore(segDir, workers)
		if err != nil {
			log.Fatalf("%s: %v", segDir, err)
		}
		sum = s
	}
	if sum.Records == 0 {
		log.Fatalf("no download records in %s", source)
	}
	elapsed := time.Since(start)
	log.Printf("streamed %d download records from %s in %.2fs (%.0f records/sec)",
		sum.Records, source, elapsed.Seconds(), float64(sum.Records)/elapsed.Seconds())
	fmt.Print(sum.Summary.Render())
	if figures && sum.Figures != nil {
		fmt.Print(sum.Figures.Render())
	}
}

// runFollow tails a live segment directory: every poll folds the new records
// into a streaming summarizer and re-renders the dashboard. The cursor is
// checkpointed after each poll, so a restarted follower picks up where it
// stopped instead of replaying the store.
func runFollow(dir, cursorPath string, refresh time.Duration) {
	segDir, ok := findSegmentDir(dir)
	if !ok {
		// The store may not have spilled its first segment yet; follow the
		// configured directory and wait.
		segDir = dir
	}
	if cursorPath == "" {
		cursorPath = logpipe.DefaultTailCursorPath(segDir)
	}
	tl, err := logpipe.OpenTailer(logpipe.TailerConfig{Dir: segDir, CursorPath: cursorPath})
	if err != nil {
		log.Fatal(err)
	}
	sum := analysis.NewStreamingSummarizer(4)
	log.Printf("following %s (cursor %s, refresh %s)", segDir, cursorPath, refresh)
	start := time.Now()
	var total int64
	for {
		recs, perr := tl.Poll()
		if perr != nil {
			log.Printf("poll: %v", perr)
		}
		for i := range recs {
			sum.Observe(&recs[i])
		}
		if len(recs) > 0 {
			total += int64(len(recs))
			rate := float64(total) / time.Since(start).Seconds()
			log.Printf("%s +%d records (%d total, %.0f records/sec, %d torn segments skipped)",
				time.Now().Format("15:04:05"), len(recs), total, rate, tl.TornSkipped())
			fmt.Println(sum.Snapshot().Render())
		}
		time.Sleep(refresh)
	}
}

// findSegmentDir locates the segment layout under dir.
func findSegmentDir(dir string) (string, bool) {
	for _, segDir := range []string{dir, filepath.Join(dir, "segments")} {
		if logpipe.HasSegments(segDir) {
			return segDir, true
		}
	}
	return "", false
}

func noLogsErr(dir string) error {
	return fmt.Errorf(
		"no logs found in %s: expected either a downloads.jsonl file (netsession-sim export) "+
			"or seg-*.ndjson.gz log segments in the directory or its segments/ subdirectory "+
			"(control-plane log store)", dir)
}
