// Command netsession-analyze computes the trace analyses from an exported
// log set. The logs are self-contained — every record carries its own
// geolocation — so this works on any machine without the generating atlas,
// the way the paper's offline analyses worked on the anonymized,
// EdgeScape-annotated data set (§4.1).
//
// Two input layouts are auto-detected:
//
//   - a downloads.jsonl file (netsession-sim -out with -format jsonl)
//   - a directory of seg-*.ndjson.gz log segments, either directly in -logs
//     or under -logs/segments (the control plane's durable log store, or
//     netsession-sim -format segments)
//
// Usage:
//
//	netsession-analyze -logs DIR
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"netsession/internal/analysis"
	"netsession/internal/logpipe"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netsession-analyze: ")

	dir := flag.String("logs", "netsession-logs",
		"log directory: downloads.jsonl (sim export) or seg-*.ndjson.gz segments (log store)")
	flag.Parse()

	dls, source, err := loadDownloads(*dir)
	if err != nil {
		log.Fatal(err)
	}
	if len(dls) == 0 {
		log.Fatalf("no download records in %s (%s)", *dir, source)
	}
	log.Printf("read %d download records from %s", len(dls), source)
	fmt.Print(analysis.SummarizeOffline(dls).Render())
}

// loadDownloads auto-detects the input layout. Both layouts decode into the
// same offline schema, so a live-cluster segment store and a simulator export
// flow through one analysis path.
func loadDownloads(dir string) ([]analysis.OfflineDownload, string, error) {
	jsonlPath := filepath.Join(dir, "downloads.jsonl")
	if f, err := os.Open(jsonlPath); err == nil {
		defer f.Close()
		dls, rerr := analysis.ReadDownloadsJSONL(f)
		if rerr != nil {
			return nil, "", fmt.Errorf("%s: %w", jsonlPath, rerr)
		}
		return dls, jsonlPath, nil
	}
	for _, segDir := range []string{dir, filepath.Join(dir, "segments")} {
		if !logpipe.HasSegments(segDir) {
			continue
		}
		dls, rerr := logpipe.ReadDownloads(segDir)
		if rerr != nil {
			return nil, "", fmt.Errorf("%s: %w", segDir, rerr)
		}
		return dls, segDir + " (log segments)", nil
	}
	return nil, "", fmt.Errorf(
		"no logs found in %s: expected either a downloads.jsonl file (netsession-sim export) "+
			"or seg-*.ndjson.gz log segments in the directory or its segments/ subdirectory "+
			"(control-plane log store)", dir)
}
