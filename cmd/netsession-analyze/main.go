// Command netsession-analyze computes the trace analyses from an exported
// log directory (the output of netsession-sim -out). The logs are
// self-contained — every record carries its own geolocation — so this works
// on any machine without the generating atlas, the way the paper's offline
// analyses worked on the anonymized, EdgeScape-annotated data set (§4.1).
//
// Usage:
//
//	netsession-analyze -logs DIR
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"netsession/internal/analysis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netsession-analyze: ")

	dir := flag.String("logs", "netsession-logs", "log directory written by netsession-sim")
	flag.Parse()

	f, err := os.Open(filepath.Join(*dir, "downloads.jsonl"))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	dls, err := analysis.ReadDownloadsJSONL(f)
	if err != nil {
		log.Fatal(err)
	}
	if len(dls) == 0 {
		log.Fatal("no download records in the log directory")
	}
	fmt.Print(analysis.SummarizeOffline(dls).Render())
}
