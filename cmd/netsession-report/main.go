// Command netsession-report runs the full experiment suite — a simulated
// month of NetSession operation — and emits every table and figure of the
// IMC'13 paper's evaluation as text. EXPERIMENTS.md is generated from this
// command's output.
//
// With -live it instead fetches the live-analytics document from a running
// control plane (GET /v1/analytics on its status address) or from a monitor's
// merged fleet view, and renders the streaming dashboard: current offload,
// per-region byte tables, and AS locality, computed from every record the
// fleet has accepted so far.
//
// Usage:
//
//	netsession-report [-scale small|default|streaming] [-peers N] [-downloads N]
//	                  [-days N] [-seed N] [-workers N] [-o file]
//	netsession-report -live http://CP-STATUS-ADDR
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"netsession"
	"netsession/internal/analysis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netsession-report: ")

	scale := flag.String("scale", "default", "scenario scale: small, default, or streaming")
	peers := flag.Int("peers", 0, "override peer population size")
	downloads := flag.Int("downloads", 0, "override total downloads")
	days := flag.Int("days", 0, "override trace length in days")
	seed := flag.Int64("seed", 0, "override random seed")
	workers := flag.Int("workers", 0, "region-shard workers (0: one per CPU, 1: sequential; report is identical either way)")
	out := flag.String("o", "", "write the report to this file instead of stdout")
	live := flag.String("live", "",
		"render the live dashboard from this control plane or monitor base URL instead of simulating")
	flag.Parse()

	if *live != "" {
		report, err := liveReport(*live)
		if err != nil {
			log.Fatal(err)
		}
		emit(report, *out)
		return
	}

	var cfg netsession.Scenario
	switch *scale {
	case "small":
		cfg = netsession.SmallScenario()
	case "default":
		cfg = netsession.DefaultScenario()
	case "streaming":
		cfg = netsession.StreamingScenario()
	default:
		log.Fatalf("unknown -scale %q", *scale)
	}
	if *peers > 0 {
		cfg.NumPeers = *peers
	}
	if *downloads > 0 {
		cfg.TotalDownloads = *downloads
	}
	if *days > 0 {
		cfg.Days = *days
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers

	start := time.Now()
	exp, err := netsession.RunExperiment(cfg)
	if err != nil {
		log.Fatal(err)
	}
	header := fmt.Sprintf(
		"NetSession experiment report\nscale=%s peers=%d downloads=%d days=%d seed=%d\nsimulated in %s (%d events)\n\n",
		*scale, cfg.NumPeers, cfg.TotalDownloads, cfg.Days, cfg.Seed,
		time.Since(start).Round(time.Millisecond), exp.Result().Events)
	report := header + exp.Report()
	emit(report, *out)
}

func emit(report, out string) {
	if out == "" {
		fmt.Print(report)
		return
	}
	if err := os.WriteFile(out, []byte(report), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d bytes)", out, len(report))
}

// liveReport fetches GET /v1/analytics from a control plane's status server
// (or a monitor, which serves its merged fleet view on the same path) and
// renders the streaming dashboard.
func liveReport(base string) (string, error) {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	url := strings.TrimSuffix(base, "/") + "/v1/analytics"
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	var sum analysis.StreamingSummary
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&sum); err != nil {
		return "", fmt.Errorf("decode %s: %w", url, err)
	}
	header := fmt.Sprintf("NetSession live analytics (%s, %s)\n\n",
		url, time.Now().Format(time.RFC3339))
	return header + sum.Render(), nil
}
