// Command netsession-report runs the full experiment suite — a simulated
// month of NetSession operation — and emits every table and figure of the
// IMC'13 paper's evaluation as text. EXPERIMENTS.md is generated from this
// command's output.
//
// Usage:
//
//	netsession-report [-scale small|default] [-peers N] [-downloads N]
//	                  [-days N] [-seed N] [-workers N] [-o file]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"netsession"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netsession-report: ")

	scale := flag.String("scale", "default", "scenario scale: small or default")
	peers := flag.Int("peers", 0, "override peer population size")
	downloads := flag.Int("downloads", 0, "override total downloads")
	days := flag.Int("days", 0, "override trace length in days")
	seed := flag.Int64("seed", 0, "override random seed")
	workers := flag.Int("workers", 0, "region-shard workers (0: one per CPU, 1: sequential; report is identical either way)")
	out := flag.String("o", "", "write the report to this file instead of stdout")
	flag.Parse()

	var cfg netsession.Scenario
	switch *scale {
	case "small":
		cfg = netsession.SmallScenario()
	case "default":
		cfg = netsession.DefaultScenario()
	default:
		log.Fatalf("unknown -scale %q", *scale)
	}
	if *peers > 0 {
		cfg.NumPeers = *peers
	}
	if *downloads > 0 {
		cfg.TotalDownloads = *downloads
	}
	if *days > 0 {
		cfg.Days = *days
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers

	start := time.Now()
	exp, err := netsession.RunExperiment(cfg)
	if err != nil {
		log.Fatal(err)
	}
	header := fmt.Sprintf(
		"NetSession experiment report\nscale=%s peers=%d downloads=%d days=%d seed=%d\nsimulated in %s (%d events)\n\n",
		*scale, cfg.NumPeers, cfg.TotalDownloads, cfg.Days, cfg.Seed,
		time.Since(start).Round(time.Millisecond), exp.Result().Events)
	report := header + exp.Report()

	if *out == "" {
		fmt.Print(report)
		return
	}
	if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d bytes)", *out, len(report))
}
