// Command netsession-edge runs one edge server. Objects are published with
// -publish (repeatable) as cp:url:sizeMB[:p2p]; bodies are the deterministic
// synthetic stream for each object's secure content ID.
//
// Usage:
//
//	netsession-edge [-listen ADDR] [-key STRING]
//	                [-publish 1001:game/installer.bin:1500:p2p] ...
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"netsession/internal/content"
	"netsession/internal/edge"
)

type publishList []string

func (p *publishList) String() string     { return strings.Join(*p, ",") }
func (p *publishList) Set(v string) error { *p = append(*p, v); return nil }

func main() {
	log.SetFlags(0)
	log.SetPrefix("netsession-edge: ")

	listen := flag.String("listen", "127.0.0.1:0", "listen address")
	key := flag.String("key", "netsession-demo-key", "token HMAC key shared with the control plane")
	var publishes publishList
	flag.Var(&publishes, "publish", "object spec cp:url:sizeMB[:p2p] (repeatable)")
	demo := flag.Bool("demo", false, "publish a demo catalog")
	flag.Parse()

	catalog := edge.NewCatalog()
	srv := edge.NewServer(catalog, edge.NewTokenMinter([]byte(*key)), edge.NewLedger(), edge.DefaultClientConfig())

	if *demo {
		publishes = append(publishes,
			"1001:demo/installer.bin:800:p2p",
			"1001:demo/patch.bin:60",
			"1002:demo/soundtrack.bin:200:p2p",
		)
	}
	for _, spec := range publishes {
		obj, err := parseSpec(spec)
		if err != nil {
			log.Fatalf("-publish %q: %v", spec, err)
		}
		if err := catalog.PublishSynthetic(obj); err != nil {
			log.Fatal(err)
		}
		log.Printf("published %s (%s, %.0f MB, p2p=%v)",
			edge.OIDString(obj.ID), obj.URL, float64(obj.Size)/1e6, obj.P2PEnabled)
	}
	if catalog.Len() == 0 {
		log.Print("warning: empty catalog; use -publish or -demo")
	}

	if err := srv.Start(*listen); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	log.Printf("edge serving on http://%s (telemetry on GET /metrics, /v1/telemetry)", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
}

func parseSpec(spec string) (*content.Object, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 3 || len(parts) > 4 {
		return nil, fmt.Errorf("want cp:url:sizeMB[:p2p]")
	}
	cp, err := strconv.ParseUint(parts[0], 10, 32)
	if err != nil {
		return nil, fmt.Errorf("bad cp code: %w", err)
	}
	sizeMB, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || sizeMB <= 0 {
		return nil, fmt.Errorf("bad size %q", parts[2])
	}
	p2p := len(parts) == 4 && parts[3] == "p2p"
	return content.NewObject(content.CPCode(cp), parts[1], 1, int64(sizeMB*1e6), 0, p2p)
}
