// Command netsession-peer runs one NetSession Interface client against a
// running control plane and edge tier: it logs in, optionally downloads an
// object (printing progress and the final infrastructure/peer byte split),
// and can stay resident serving uploads, as the background application
// described in §3.4 of the paper would.
//
// Usage:
//
//	netsession-peer -control ADDR[,ADDR...] -edge URL
//	                [-object HEXID] [-uploads] [-serve] [-state-dir DIR]
//	                [-stream-bitrate BPS] [-identity K] [-identity-seed N]
//	                [-population N]
//
// With -state-dir, the installation state, every verified piece, and the
// progress of in-flight downloads persist on disk; a peer killed mid-download
// and restarted with the same directory resumes from its verified bitfield
// instead of refetching.
package main

import (
	"context"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"netsession/internal/content"
	"netsession/internal/geo"
	"netsession/internal/peer"
	"netsession/internal/streaming"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netsession-peer: ")

	control := flag.String("control", "", "comma-separated CN addresses (required)")
	edgeURL := flag.String("edge", "", "edge base URL, e.g. http://127.0.0.1:8443 (required)")
	objectHex := flag.String("object", "", "hex object ID to download")
	uploads := flag.Bool("uploads", true, "enable content uploads to peers")
	stateDir := flag.String("state-dir", "", "directory persisting the installation state (GUID, prefs, secondary GUIDs), the durable piece store, and download checkpoints; a restarted peer resumes interrupted downloads from it")
	flag.StringVar(stateDir, "state", "", "alias for -state-dir")
	serve := flag.Bool("serve", false, "stay resident after the download, serving uploads")
	monitorURL := flag.String("monitor", "", "monitoring node base URL receiving operational reports")
	stunAddr := flag.String("stun", "", "STUN server address for reflexive-address discovery")
	logUpload := flag.String("log-upload", "", "comma-separated control plane operator URLs (the -status addresses of the netsession-cp nodes); usage reports then go through the durable log spool and batched uploader instead of in-band, failing over across URLs. Requires -state-dir")
	streamBitrate := flag.Int64("stream-bitrate", 0, "consume the -object download as a deadline-driven stream at this playback bitrate in bits/s (0: bulk download)")
	streamStartup := flag.Int("stream-startup-pieces", 0, "pieces buffered before playback starts (0: default)")
	streamWindow := flag.Int("stream-window-pieces", 0, "urgent playback-window width in pieces (0: default)")
	identity := flag.Int("identity", 0, "index into the deterministic identity plan")
	identitySeed := flag.Int64("identity-seed", 7, "seed of the identity plan (must match netsession-cp)")
	population := flag.Int("population", 1000, "size of the identity plan (must match netsession-cp)")
	flag.Parse()

	if *control == "" || *edgeURL == "" {
		flag.Usage()
		os.Exit(2)
	}

	// Recreate the control plane's identity plan and take our slot.
	atlas := geo.GenerateAtlas(geo.DefaultAtlasConfig())
	scape := geo.NewEdgeScape(atlas)
	ids, err := geo.Identities(scape, *population, *identitySeed)
	if err != nil {
		log.Fatal(err)
	}
	if *identity < 0 || *identity >= len(ids) {
		log.Fatalf("-identity %d outside plan of %d", *identity, len(ids))
	}
	me := ids[*identity]
	log.Printf("identity %d: %s in %s (AS%d)", *identity, me.IP, me.Country, me.ASN)

	peerCfg := peer.Config{
		DeclaredIP:     me.IP.String(),
		ControlAddrs:   strings.Split(*control, ","),
		EdgeURL:        *edgeURL,
		MonitorURL:     *monitorURL,
		STUNAddr:       *stunAddr,
		UploadsEnabled: *uploads,
		StateDir:       *stateDir,
		LogUploadURL:   *logUpload,
		Logf:           func(format string, args ...any) {},
	}
	// A cluster booting node by node may not answer the first dial; keep
	// retrying while every configured CN is unreachable instead of dying on
	// a race the peer's own reconnect logic would have survived.
	var cl *peer.Client
	var err2 error
	for attempt := 1; ; attempt++ {
		cl, err2 = peer.New(peerCfg)
		if err2 == nil {
			break
		}
		if !errors.Is(err2, peer.ErrControlUnavailable) || attempt >= 10 {
			log.Fatal(err2)
		}
		wait := time.Duration(attempt) * 500 * time.Millisecond
		log.Printf("control plane unavailable (attempt %d): %v; retrying in %v", attempt, err2, wait)
		time.Sleep(wait)
	}
	defer cl.Close()
	if *logUpload != "" {
		// Drain the spool before exiting so short-lived invocations still
		// deliver their usage reports; a killed process instead resumes from
		// the durable spool on its next start.
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := cl.FlushLogs(ctx); err != nil {
				log.Printf("log flush: %v", err)
			}
		}()
	}
	log.Printf("GUID %s, swarm listener %s", cl.GUID(), cl.SwarmAddr())

	if *stateDir != "" {
		resumed, err := cl.ResumeDownloads()
		if err != nil {
			log.Printf("resume: %v", err)
		}
		for _, dl := range resumed {
			have, total := dl.Progress()
			log.Printf("resuming download %v from checkpoint: %d/%d pieces already on disk",
				dl.Object().ID, have, total)
			if res, err := dl.Wait(context.Background()); err == nil {
				log.Printf("resumed download outcome: %v (%d infra bytes, %d peer bytes)",
					res.Outcome, res.BytesInfra, res.BytesPeers)
			}
		}
	}

	if *objectHex != "" {
		oid, err := parseOID(*objectHex)
		if err != nil {
			log.Fatal(err)
		}
		var opts peer.DownloadOpts
		if *streamBitrate > 0 {
			opts.Streaming = &streaming.Config{
				BitrateBps:    *streamBitrate,
				StartupPieces: *streamStartup,
				WindowPieces:  *streamWindow,
			}
		}
		dl, err := cl.DownloadWith(oid, opts)
		if err != nil {
			log.Fatal(err)
		}
		go func() {
			for {
				have, total := dl.Progress()
				if sm := dl.StreamMetrics(); sm != nil {
					log.Printf("progress: %d/%d pieces, played %d, %d rebuffers",
						have, total, sm.PiecesPlayed, sm.RebufferCount)
				} else {
					log.Printf("progress: %d/%d pieces", have, total)
				}
				if total > 0 && have == total {
					return
				}
				time.Sleep(2 * time.Second)
			}
		}()
		res, err := dl.Wait(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("outcome: %v", res.Outcome)
		log.Printf("bytes: %d from infrastructure, %d from %d peers (peer efficiency %.1f%%)",
			res.BytesInfra, res.BytesPeers, len(res.FromPeers), 100*res.PeerEfficiency())
		log.Printf("duration: %s", res.Duration.Round(time.Millisecond))
		if st := res.Stream; st != nil {
			log.Printf("stream: startup %dms, %d rebuffers (%dms paused), deadline misses %.2f%% (%d/%d pieces played), %d urgent bytes rescued from the edge",
				st.StartupDelayMs, st.RebufferCount, st.RebufferMs,
				100*st.DeadlineMissRatio(), st.PiecesPlayed, st.PiecesTotal, st.EdgeRescueBytes)
		}
		for _, st := range dl.Trace().Stages() {
			log.Printf("trace %-14s count=%-5d total=%s", st.Name, st.Count, st.Total.Round(time.Microsecond))
		}
	}

	if *serve {
		log.Print("serving uploads; Ctrl-C to exit")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
	}
}

func parseOID(s string) (content.ObjectID, error) {
	var oid content.ObjectID
	raw, err := hex.DecodeString(s)
	if err != nil {
		return oid, fmt.Errorf("invalid object id %q: %w", s, err)
	}
	if len(raw) != len(oid) {
		return oid, fmt.Errorf("object id %q has %d bytes, want %d", s, len(raw), len(oid))
	}
	copy(oid[:], raw)
	return oid, nil
}
