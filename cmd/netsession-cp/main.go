// Command netsession-cp runs the NetSession control plane: one database
// node per network region, the requested number of connection nodes, and a
// monitoring node. Peers connect to any CN address; the edge tier must be
// started with the same -key so authorization tokens verify.
//
// The synthetic identity plan is deterministic: this process and every peer
// process generate the same atlas and allocate the same -population
// identities from the same -identity-seed, so a peer started with
// `netsession-peer -identity K` resolves to a (location, AS) this control
// plane knows.
//
// Usage:
//
//	netsession-cp [-cns N] [-key STRING] [-population N] [-identity-seed N]
//	              [-max-sessions N] [-status ADDR] [-scrape name=URL,...]
//	              [-debug-addr ADDR] [-node-id ID -join ID=URL,...]
//
// With -node-id and -join, this process becomes one node of a multi-node
// control plane: the nodes probe each other's status endpoints for liveness
// and consistent-hash the network regions across whoever is alive. Logins
// for a region another node owns are redirected there; when a node dies, its
// regions are taken over through the DN soft-state rebuild window.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"netsession/internal/accounting"
	"netsession/internal/cluster"
	"netsession/internal/controlplane"
	"netsession/internal/edge"
	"netsession/internal/geo"
	"netsession/internal/logpipe"
	"netsession/internal/selection"
	"netsession/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netsession-cp: ")

	numCNs := flag.Int("cns", 2, "number of connection nodes to start")
	key := flag.String("key", "netsession-demo-key", "token HMAC key shared with the edge tier")
	population := flag.Int("population", 1000, "size of the deterministic identity plan")
	identitySeed := flag.Int64("identity-seed", 7, "seed of the identity plan")
	maxSessions := flag.Int("max-sessions", 0, "shed logins beyond this per CN (0 = unlimited)")
	statusAddr := flag.String("status", "127.0.0.1:0", "operator HTTP address (/v1/status, /metrics, /v1/telemetry, POST /v1/logs/batch)")
	logDir := flag.String("log-dir", "", "durable log store directory: accepted download records are spilled to rotated gzip NDJSON segments that netsession-analyze reads")
	maxLogRecords := flag.Int("max-log-records", 0, "in-memory accounting log cap per record kind (0 = default, negative = unbounded)")
	nodeID := flag.String("node-id", "", "this node's cluster identity; required with -join")
	join := flag.String("join", "", "comma-separated seed list of other control-plane nodes: id=statusURL entries, or bare status URLs (seed exchange discovers the rest), e.g. http://10.0.0.2:7000")
	joinExisting := flag.Bool("join-existing", false, "treat the first ring view as a real takeover (set when joining a cluster that already serves peers)")
	probeEvery := flag.Duration("probe-interval", time.Second, "cluster liveness probe interval")
	scrape := flag.String("scrape", "", "comma-separated name=baseURL telemetry scrape targets for the monitor")
	scrapeEvery := flag.Duration("scrape-interval", 10*time.Second, "monitor scrape interval")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof and the monitor's /metrics on this address")
	flag.Parse()

	atlas := geo.GenerateAtlas(geo.DefaultAtlasConfig())
	scape := geo.NewEdgeScape(atlas)
	if _, err := geo.Identities(scape, *population, *identitySeed); err != nil {
		log.Fatalf("identity plan: %v", err)
	}

	var logStore *logpipe.Store
	if *logDir != "" {
		var err error
		logStore, err = logpipe.OpenStore(logpipe.StoreConfig{Dir: *logDir})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("durable log store in %s", *logDir)
	}

	if *join != "" && *nodeID == "" {
		log.Fatal("-join requires -node-id")
	}

	// The node's durable batch-acknowledgement store: with -log-dir it
	// survives restarts (a batch acked before a crash is still deduplicated
	// after); cluster peers reconcile it by anti-entropy.
	var ackStore *logpipe.AckStore
	if *join != "" {
		ackDir := ""
		if *logDir != "" {
			ackDir = filepath.Join(*logDir, "acks")
		}
		var err error
		ackStore, err = logpipe.OpenAckStore(logpipe.AckConfig{Dir: ackDir})
		if err != nil {
			log.Fatal(err)
		}
		defer ackStore.Close()
	}

	cp, err := controlplane.New(controlplane.Config{
		NodeID:           *nodeID,
		Scape:            scape,
		Minter:           edge.NewTokenMinter([]byte(*key)),
		Collector:        accounting.NewCollector(nil),
		Policy:           selection.DefaultPolicy(),
		ClientConfig:     edge.DefaultClientConfig(),
		MaxSessionsPerCN: *maxSessions,
		LogStore:         logStore,
		MaxLogRecords:    *maxLogRecords,
		LogAcks:          ackStore,
		JoinExisting:     *joinExisting,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cp.Close()
	if logStore != nil {
		defer logStore.Close()
	}

	var cnAddrs []string
	for i := 0; i < *numCNs; i++ {
		cn, err := cp.StartCN("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		cnAddrs = append(cnAddrs, cn.Addr())
		log.Printf("CN %d listening on %s", i, cn.Addr())
	}
	status, err := cp.StartStatusServer(*statusAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer status.Close()
	log.Printf("status on http://%s (GET /v1/status, /metrics, /v1/telemetry)", status.Addr())

	// Join the control-plane cluster: probe the seed nodes and route regions
	// over the alive set. Peers whose region another node owns are
	// redirected on login; seed CN addresses are learned from each node's
	// own status document. A seed may be a bare status URL — one live
	// address is enough, seed exchange discovers the rest of the cluster.
	if *join != "" {
		var seeds []cluster.Node
		for _, s := range strings.Split(*join, ",") {
			entry := strings.TrimSpace(s)
			if id, url, ok := strings.Cut(entry, "="); ok && !strings.Contains(id, "://") {
				seeds = append(seeds, cluster.Node{ID: id, StatusURL: url})
			} else {
				seeds = append(seeds, cluster.Node{StatusURL: entry})
			}
		}
		syncer := logpipe.NewAckSyncer(logpipe.AckSyncerConfig{
			Store: ackStore, Telemetry: cp.Metrics(), Logf: log.Printf,
		})
		self := cluster.Node{ID: *nodeID, StatusURL: "http://" + status.Addr(), CNAddrs: cnAddrs}
		member := cluster.New(cluster.Config{
			Self:          self,
			Seeds:         seeds,
			ProbeInterval: *probeEvery,
			JoinMode:      *joinExisting,
			Telemetry:     cp.Metrics(),
			OnChange: func(v cluster.View) {
				peers := make(map[string]string, len(v.Nodes))
				for _, n := range v.Nodes {
					if n.ID != self.ID {
						peers[n.ID] = n.StatusURL
					}
				}
				syncer.SetPeers(peers)
				cp.ApplyRingView(v)
			},
			OnAckSeq: func(n cluster.Node, seq uint64) {
				syncer.ObserveAckSeq(n.ID, n.StatusURL, seq)
			},
			Logf: log.Printf,
		})
		cp.SetMembership(member)
		cp.LogIngest().SetPeerSeen(syncer.SeenAnywhere)
		member.Start()
		defer member.Stop()
		log.Printf("cluster node %s joined with %d seeds", *nodeID, len(seeds))
	}

	mon := controlplane.NewMonitor(0)
	if err := mon.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer mon.Close()
	log.Printf("monitor listening on http://%s (GET /v1/health, /metrics)", mon.Addr())

	if *debugAddr != "" {
		dbg, err := telemetry.StartDebug(*debugAddr, mon.Metrics())
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		log.Printf("debug server on http://%s (GET /debug/pprof/, /metrics)", dbg.Addr())
	}

	targets := map[string]string{"cp": "http://" + status.Addr()}
	for _, t := range strings.Split(*scrape, ",") {
		if name, url, ok := strings.Cut(strings.TrimSpace(t), "="); ok {
			targets[name] = url
		}
	}
	mon.SetScrapeTargets(targets)
	mon.StartScraping(*scrapeEvery)
	log.Printf("identity plan: %d identities, seed %d", *population, *identitySeed)

	// SIGTERM triggers a planned drain (regions and ack window handed to
	// survivors before exit); SIGINT and POST /v1/drain shut down directly —
	// the drain endpoint has already run the handoff by the time the hook
	// fires.
	drained := make(chan struct{}, 1)
	cp.SetOnDrained(func(sum controlplane.DrainSummary) {
		log.Printf("drained via %s: %d regions, %d entries to %d survivors",
			controlplane.DrainPath, len(sum.Regions), sum.EntriesTransferred, sum.Survivors)
		drained <- struct{}{}
	})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		if s == syscall.SIGTERM {
			sum, err := cp.Drain()
			if err != nil {
				log.Printf("drain: %v", err)
			} else {
				log.Printf("drained: %d regions, %d entries, %d acks flushed to %d survivors",
					len(sum.Regions), sum.EntriesTransferred, sum.AcksFlushed, sum.Survivors)
			}
		}
	case <-drained:
	}
	log.Printf("shutting down; %d sessions were connected", cp.SessionCount())
}
