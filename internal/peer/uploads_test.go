package peer

import (
	"testing"
	"time"

	"netsession/internal/content"
	"netsession/internal/edge"
)

// newTestUploadManager builds an upload manager detached from a live client.
func newTestUploadManager(maxConns, perObjectCap int, rateBps int64) *uploadManager {
	u := newUploadManager(&Client{})
	cfg := edge.DefaultClientConfig()
	cfg.MaxUploadConns = maxConns
	cfg.PerObjectUploadCap = perObjectCap
	cfg.UploadRateBps = rateBps
	u.applyConfig(cfg)
	return u
}

func TestUploadManagerGlobalLimit(t *testing.T) {
	u := newTestUploadManager(2, 0, 0)
	oid := content.NewObjectID(1, "o", 1)
	a := &swarmConn{oid: oid}
	b := &swarmConn{oid: oid}
	c := &swarmConn{oid: oid}
	if !u.tryAcquire(a) || !u.tryAcquire(b) {
		t.Fatal("slots under the limit refused")
	}
	if u.tryAcquire(c) {
		t.Fatal("third slot granted over MaxUploadConns=2")
	}
	if u.ActiveUploads() != 2 {
		t.Fatalf("ActiveUploads=%d", u.ActiveUploads())
	}
	u.release(a)
	if !u.tryAcquire(c) {
		t.Fatal("slot not granted after release")
	}
}

func TestUploadManagerPerObjectCap(t *testing.T) {
	u := newTestUploadManager(0, 2, 0)
	oid := content.NewObjectID(1, "o", 1)
	other := content.NewObjectID(1, "p", 1)
	if !u.tryAcquire(&swarmConn{oid: oid}) || !u.tryAcquire(&swarmConn{oid: oid}) {
		t.Fatal("sessions under the cap refused")
	}
	// The cap counts sessions ever granted for the object (§3.9: "peers
	// upload each object at most a limited number of times"), so a third
	// session is refused even though earlier ones may have ended.
	if u.tryAcquire(&swarmConn{oid: oid}) {
		t.Fatal("per-object cap not enforced")
	}
	if !u.tryAcquire(&swarmConn{oid: other}) {
		t.Fatal("cap leaked across objects")
	}
}

func TestUploadManagerThrottle(t *testing.T) {
	// 80 kbit/s: sending 2x 10 KB must take ≈1s for the second send.
	u := newTestUploadManager(0, 0, 80_000)
	start := time.Now()
	u.throttle(10_000) // first send charges the bucket but does not wait
	u.throttle(10_000) // second send waits for the first's drain time
	elapsed := time.Since(start)
	if elapsed < 700*time.Millisecond {
		t.Fatalf("throttle too permissive: %v", elapsed)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("throttle too strict: %v", elapsed)
	}
}

func TestUploadManagerThrottleUnlimited(t *testing.T) {
	u := newTestUploadManager(0, 0, 0)
	start := time.Now()
	for i := 0; i < 100; i++ {
		u.throttle(1 << 20)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("unlimited rate should never sleep")
	}
}

func TestUploadManagerCountBytes(t *testing.T) {
	u := newTestUploadManager(0, 0, 0)
	u.countBytes(100)
	u.countBytes(23)
	if got := u.UploadedBytes(); got != 123 {
		t.Fatalf("UploadedBytes=%d", got)
	}
}
