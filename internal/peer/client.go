// Package peer implements the NetSession Interface (§3.4): the background
// client installed on user machines. It maintains a persistent control
// connection to the control plane, downloads content in parallel from edge
// servers (HTTP) and other peers (the swarming protocol), verifies every
// piece against the edge-issued manifest, serves uploads subject to the
// global connection limit and per-object caps, reports usage statistics for
// accounting, and lets the user disable uploads at any time without losing
// download performance.
package peer

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"netsession/internal/content"
	"netsession/internal/edge"
	"netsession/internal/id"
	"netsession/internal/logpipe"
	"netsession/internal/protocol"
	"netsession/internal/telemetry"
)

// Config configures a NetSession Interface instance.
type Config struct {
	// GUID is the installation identity; zero means choose one at random,
	// as a fresh installation would.
	GUID id.GUID
	// DeclaredIP is the peer's public IP in the experiment's synthetic
	// address plan (see protocol.Login.DeclaredIP).
	DeclaredIP string
	// NAT is the peer's NAT class as discovered via STUN.
	NAT protocol.NATClass
	// ControlAddrs are CN addresses, tried in order on (re)connect.
	ControlAddrs []string
	// EdgeURL is the edge tier's base URL; EdgeURLs adds more servers for
	// failover. At least one of the two must be set.
	EdgeURL  string
	EdgeURLs []string
	// STUNAddr, when set, is a STUN server the client queries at startup
	// to discover its reflexive (NAT-mapped) address (§3.6).
	STUNAddr string
	// MonitorURL, when set, receives operational reports (crash reports,
	// corrupt-piece observations) over HTTP (§3.6).
	MonitorURL string
	// StateDir, when set, persists the installation state (GUID, upload
	// preference, secondary-GUID window) across restarts, like the real
	// installed client. It overrides Config.GUID and Config.UploadsEnabled
	// with the stored values. It also selects the crash-safe disk-backed
	// piece store (StateDir/content) when Store is nil, and persists
	// per-download checkpoints (StateDir/downloads) so transfers cut short
	// by a crash resume from their verified bitfield instead of refetching.
	StateDir string
	// Store holds verified pieces; nil selects a DiskStore under StateDir
	// when one is configured, an in-memory store otherwise.
	Store content.Store
	// UploadsEnabled is the initial preference; content providers bundle
	// the binary with this on or off (§5.1).
	UploadsEnabled bool
	// SoftwareVersion is reported on login.
	SoftwareVersion string
	// MaxPeerConnsPerDownload bounds the swarm fan-out of one download.
	MaxPeerConnsPerDownload int
	// RequeryInterval is how often an unsatisfied download re-queries the
	// control plane for more peers; zero selects the 2s default.
	RequeryInterval time.Duration
	// StallWindow is how long a download tolerates zero peer piece progress
	// before declaring the swarm dead and degrading to edge-only (§3.3
	// fallback). Zero selects 15s; negative disables the watchdog.
	StallWindow time.Duration
	// CorruptPieceLimit is how many corrupt pieces (across all peers) a
	// download tolerates before degrading to edge-only. Zero selects 25.
	CorruptPieceLimit int
	// BlacklistFor is how long a peer stays blacklisted after a failed
	// swarm dial before it may be retried. Zero selects 30s.
	BlacklistFor time.Duration
	// Telemetry is the metrics registry; nil creates a private one
	// (retrievable via Client.Metrics).
	Telemetry *telemetry.Registry
	// LogUploadURL, when set, switches usage reporting from the in-band
	// StatsReport to the batched log pipeline (§3.4 "uploads logs to the
	// infrastructure"): per-download records go to a durable spool under
	// StateDir/logspool and an uploader ships sealed batches to this control
	// plane operator URL (POST /v1/logs/batch). Comma-separate several URLs
	// to let the uploader fail over across control-plane nodes; batch IDs
	// keep cross-node retries exactly-once. Requires StateDir.
	LogUploadURL string
	// LogUploadInterval paces the background uploader; zero selects 2s,
	// negative disables the loop (drain explicitly with FlushLogs).
	LogUploadInterval time.Duration
	// Logf receives debug logging; nil discards.
	Logf func(format string, args ...any)
}

// Client is one running NetSession Interface.
type Client struct {
	cfg     Config
	store   content.Store
	edge    *edgePool
	metrics *clientMetrics
	traces  *telemetry.TraceLog

	secMu       sync.Mutex
	secondaries id.History

	prefs *Preferences

	control *controlConn
	uploads *uploadManager

	// spool/logUploader are the client-log pipeline (nil when LogUploadURL
	// is unset; the client then reports stats in-band on the control conn).
	spool       *logpipe.Spool
	logUploader *logpipe.Uploader

	// blacklist holds peers whose swarm dials failed recently, with the
	// time each entry expires; entries decay so churned peers that come
	// back get retried.
	blMu      sync.Mutex
	blacklist map[id.GUID]time.Time

	// ckptDir is where download checkpoints persist; empty disables them.
	ckptDir string
	// resumeMu serializes checkpoint resumption so the startup resume loop
	// and an explicit ResumeDownloads call cannot double-count a transfer.
	resumeMu sync.Mutex
	resumed  map[content.ObjectID]bool

	swarmLn net.Listener

	mu        sync.Mutex
	manifests map[content.ObjectID]*content.Manifest
	downloads map[content.ObjectID]*Download
	cachedAt  map[content.ObjectID]time.Time
	closed    bool
	clientCfg edge.ClientConfig
	reflexive netip.AddrPort
	evictStop chan struct{}
}

// New creates and starts a client: it opens the swarm listener, connects to
// the control plane, and logs in. Close releases everything.
func New(cfg Config) (*Client, error) {
	var state *State
	if cfg.StateDir != "" {
		var err error
		state, err = LoadOrCreateState(cfg.StateDir, cfg.UploadsEnabled)
		if err != nil {
			return nil, err
		}
		cfg.GUID = state.GUID
		cfg.UploadsEnabled = state.UploadsEnabled
	}
	if cfg.GUID.IsZero() {
		cfg.GUID = id.NewGUID()
	}
	metrics := newClientMetrics(cfg.Telemetry)
	if cfg.Store == nil {
		if cfg.StateDir != "" {
			// Crash-safe default: verified pieces survive a process kill
			// and are re-verified (with quarantine) on the way back up.
			ds, err := content.OpenDiskStore(filepath.Join(cfg.StateDir, "content"),
				content.DiskStoreOptions{Telemetry: metrics.reg})
			if err != nil {
				return nil, err
			}
			cfg.Store = ds
		} else {
			cfg.Store = content.NewMemStore()
		}
	}
	if cfg.SoftwareVersion == "" {
		cfg.SoftwareVersion = "ns-3.1"
	}
	if cfg.MaxPeerConnsPerDownload <= 0 {
		cfg.MaxPeerConnsPerDownload = 8
	}
	if cfg.RequeryInterval <= 0 {
		cfg.RequeryInterval = 2 * time.Second
	}
	if cfg.StallWindow == 0 {
		cfg.StallWindow = 15 * time.Second
	}
	if cfg.CorruptPieceLimit <= 0 {
		cfg.CorruptPieceLimit = 25
	}
	if cfg.BlacklistFor <= 0 {
		cfg.BlacklistFor = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if len(cfg.ControlAddrs) == 0 {
		return nil, fmt.Errorf("peer: no control plane addresses configured")
	}
	pool, err := newEdgePool(append([]string{cfg.EdgeURL}, cfg.EdgeURLs...), metrics)
	if err != nil {
		return nil, err
	}
	c := &Client{
		cfg:       cfg,
		store:     cfg.Store,
		edge:      pool,
		metrics:   metrics,
		traces:    telemetry.NewTraceLog(0),
		prefs:     NewPreferences(cfg.UploadsEnabled),
		manifests: make(map[content.ObjectID]*content.Manifest),
		downloads: make(map[content.ObjectID]*Download),
		cachedAt:  make(map[content.ObjectID]time.Time),
		blacklist: make(map[id.GUID]time.Time),
		resumed:   make(map[content.ObjectID]bool),
		clientCfg: edge.DefaultClientConfig(),
		evictStop: make(chan struct{}),
	}
	if cfg.StateDir != "" {
		c.ckptDir = filepath.Join(cfg.StateDir, checkpointDirName)
		if err := os.MkdirAll(c.ckptDir, 0o755); err != nil {
			return nil, fmt.Errorf("peer: checkpoint dir: %w", err)
		}
	}
	if cfg.LogUploadURL != "" {
		if cfg.StateDir == "" {
			return nil, fmt.Errorf("peer: LogUploadURL requires StateDir (the log spool is durable)")
		}
		sp, err := logpipe.OpenSpool(logpipe.SpoolConfig{
			Dir:       filepath.Join(cfg.StateDir, logSpoolDirName),
			Telemetry: metrics.reg,
		})
		if err != nil {
			return nil, fmt.Errorf("peer: log spool: %w", err)
		}
		c.spool = sp
	}
	// A fresh secondary GUID per start (§6.2); with persistent state the
	// previous window slides forward and is saved, so consecutive starts
	// report overlapping sequences — and a copied state directory forks
	// the chain, which is what the clone analysis of Figure 12 detects.
	c.secMu.Lock()
	if state != nil {
		c.secondaries = state.Secondaries
	}
	c.secondaries.Push(id.NewSecondary())
	window := c.secondaries
	c.secMu.Unlock()
	if state != nil {
		state.Secondaries = window
		if err := state.Save(cfg.StateDir); err != nil {
			return nil, err
		}
		// Persist preference flips too.
	}

	if state != nil {
		dir := cfg.StateDir
		c.prefs.Observe(func(enabled bool) {
			state.UploadsEnabled = enabled
			state.Save(dir)
		})
	}
	c.uploads = newUploadManager(c)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("peer: swarm listen: %w", err)
	}
	c.swarmLn = ln
	go c.acceptSwarmLoop()
	c.discoverReflexive()

	c.control = newControlConn(c)
	if err := c.control.start(); err != nil {
		ln.Close()
		return nil, err
	}
	go c.evictLoop()
	if c.ckptDir != "" {
		go c.resumeLoop()
	}
	if c.spool != nil {
		up, err := logpipe.StartUploader(logpipe.UploaderConfig{
			Spool:     c.spool,
			URLs:      splitList(cfg.LogUploadURL),
			GUID:      cfg.GUID.String(),
			Interval:  cfg.LogUploadInterval,
			Telemetry: metrics.reg,
			Logf:      c.logf,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		c.logUploader = up
	}
	return c, nil
}

// logSpoolDirName is where the durable log spool lives under StateDir.
const logSpoolDirName = "logspool"

// splitList parses a comma-separated list, trimming whitespace and dropping
// empty items.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

// FlushLogs seals pending usage records and drains the spool to the control
// plane; a no-op without the log pipeline. Tests and orderly shutdowns use
// it — a killed process instead relies on the spool's durability and resumes
// uploading after restart.
func (c *Client) FlushLogs(ctx context.Context) error {
	if c.logUploader == nil {
		return nil
	}
	return c.logUploader.Drain(ctx)
}

// LogsPending reports how much work the durable spool still holds: sealed
// segments awaiting acknowledgement plus records not yet sealed. Zero means
// every report has been ingested by the control plane.
func (c *Client) LogsPending() int {
	if c.spool == nil {
		return 0
	}
	sealed, open := c.spool.Pending()
	return sealed + open
}

// markCached records when an object completed, for cache-TTL eviction.
func (c *Client) markCached(oid content.ObjectID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cachedAt[oid] = time.Now()
}

// evictLoop drops cached objects past the provider-configured TTL and
// withdraws their registrations: peers keep a completed download "in a
// local cache for a certain amount of time" (§5.2), no longer.
func (c *Client) evictLoop() {
	t := time.NewTicker(30 * time.Second)
	defer t.Stop()
	for {
		select {
		case <-c.evictStop:
			return
		case <-t.C:
		}
		c.mu.Lock()
		ttl := time.Duration(c.clientCfg.CacheTTLSec) * time.Second
		var expired []content.ObjectID
		for oid, at := range c.cachedAt {
			if ttl > 0 && time.Since(at) > ttl {
				expired = append(expired, oid)
				delete(c.cachedAt, oid)
			}
		}
		c.mu.Unlock()
		for _, oid := range expired {
			if c.activeDownload(oid) != nil {
				continue // being re-downloaded; keep
			}
			c.store.Drop(oid)
			c.control.send(&protocol.Unregister{Object: oid})
			c.logf("evicted cached object %v", oid)
		}
	}
}

// GUID returns the installation GUID.
func (c *Client) GUID() id.GUID { return c.cfg.GUID }

// SoftwareVersion returns the currently installed client version (it
// changes after a centrally triggered self-upgrade, §3.8).
func (c *Client) SoftwareVersion() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.SoftwareVersion
}

// SwarmAddr returns the peer's swarm listener address.
func (c *Client) SwarmAddr() string { return c.swarmLn.Addr().String() }

// Preferences returns the user-facing preference handle (the control-panel
// equivalent; users "can turn uploading on or off", §3.9).
func (c *Client) Preferences() *Preferences { return c.prefs }

// Store exposes the local piece store.
func (c *Client) Store() content.Store { return c.store }

// Close stops the client.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	dls := make([]*Download, 0, len(c.downloads))
	for _, d := range c.downloads {
		dls = append(dls, d)
	}
	c.mu.Unlock()
	close(c.evictStop)
	for _, d := range dls {
		d.Abort()
	}
	if c.logUploader != nil {
		c.logUploader.Stop()
	}
	c.control.stop()
	c.swarmLn.Close()
	c.uploads.closeAll()
}

// Kill stops the client the way a crash would: no final statistics report,
// no goodbye to the control plane, no checkpoint cleanup — downloads are cut
// off mid-flight with their checkpoints left on disk. The in-process chaos
// tests use it to simulate a SIGKILL without leaving goroutines behind.
func (c *Client) Kill() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	dls := make([]*Download, 0, len(c.downloads))
	for _, d := range c.downloads {
		dls = append(dls, d)
	}
	c.mu.Unlock()
	close(c.evictStop)
	for _, d := range dls {
		d.kill()
	}
	// The uploader stops without flushing: everything unacknowledged stays
	// in the durable spool and is resent after restart, where the CP's dedup
	// window keeps the accounting exactly-once.
	if c.logUploader != nil {
		c.logUploader.Stop()
	}
	c.control.stop()
	c.swarmLn.Close()
	c.uploads.closeAll()
}

func (c *Client) logf(format string, args ...any) {
	c.cfg.Logf("peer %s: %s", c.cfg.GUID.Short(), fmt.Sprintf(format, args...))
}

// manifest returns (fetching and caching if needed) the manifest of an
// object.
func (c *Client) manifest(oid content.ObjectID) (*content.Manifest, error) {
	c.mu.Lock()
	if m := c.manifests[oid]; m != nil {
		c.mu.Unlock()
		return m, nil
	}
	c.mu.Unlock()
	m, err := c.edge.FetchManifest(oid)
	if err != nil {
		// A disk-backed store that recovered this object already holds its
		// verified manifest; resuming must not depend on the edge being
		// reachable for metadata it already has.
		type manifester interface {
			Manifest(content.ObjectID) *content.Manifest
		}
		if ds, ok := c.store.(manifester); ok {
			if m := ds.Manifest(oid); m != nil {
				c.mu.Lock()
				c.manifests[oid] = m
				c.mu.Unlock()
				return m, nil
			}
		}
		return nil, err
	}
	c.mu.Lock()
	c.manifests[oid] = m
	c.mu.Unlock()
	return m, nil
}

func (c *Client) cachedManifest(oid content.ObjectID) *content.Manifest {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.manifests[oid]
}

// blacklistPeer quarantines a peer after a failed swarm dial; the entry
// decays after BlacklistFor so peers that come back from churn get retried.
func (c *Client) blacklistPeer(g id.GUID) {
	c.blMu.Lock()
	c.blacklist[g] = time.Now().Add(c.cfg.BlacklistFor)
	c.blMu.Unlock()
	c.metrics.swarmBlacklist.Inc()
}

// peerBlacklisted reports whether a peer is currently quarantined, dropping
// expired entries as it sees them.
func (c *Client) peerBlacklisted(g id.GUID) bool {
	c.blMu.Lock()
	defer c.blMu.Unlock()
	until, ok := c.blacklist[g]
	if !ok {
		return false
	}
	if time.Now().After(until) {
		delete(c.blacklist, g)
		return false
	}
	return true
}

// activeDownload returns the running download of an object, if any.
func (c *Client) activeDownload(oid content.ObjectID) *Download {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.downloads[oid]
}

// registerStoredObjects (re)announces every locally stored object to the
// control plane; used after login and in response to RE-ADD.
func (c *Client) registerStoredObjects() {
	if !c.prefs.UploadsEnabled() {
		return
	}
	for _, oid := range c.store.Objects() {
		bf := c.store.Have(oid)
		if bf == nil || bf.Count() == 0 {
			continue
		}
		c.control.send(&protocol.Register{
			Object:    oid,
			NumPieces: uint32(bf.Len()),
			HaveCount: uint32(bf.Count()),
			Complete:  bf.Complete(),
		})
	}
}

// reAddEntries builds the RE-ADD reply listing stored objects.
func (c *Client) reAddEntries() []protocol.ReAddEntry {
	if !c.prefs.UploadsEnabled() {
		return nil
	}
	var out []protocol.ReAddEntry
	for _, oid := range c.store.Objects() {
		bf := c.store.Have(oid)
		if bf == nil || bf.Count() == 0 {
			continue
		}
		out = append(out, protocol.ReAddEntry{
			Object:    oid,
			NumPieces: uint32(bf.Len()),
			HaveCount: uint32(bf.Count()),
			Complete:  bf.Complete(),
		})
	}
	return out
}

// WaitControlConnected blocks until the control connection is up or the
// timeout elapses; tests and examples use it to sequence setups.
func (c *Client) WaitControlConnected(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.control.connected() {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return c.control.connected()
}
