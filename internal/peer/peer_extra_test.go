package peer

import (
	"context"
	"net"
	"testing"
	"time"

	"netsession/internal/accounting"
	"netsession/internal/content"
	"netsession/internal/controlplane"
	"netsession/internal/edge"
	"netsession/internal/geo"
	"netsession/internal/id"
	"netsession/internal/nat"
	"netsession/internal/protocol"
)

// maliciousUploader is a raw swarm server that accepts handshakes, claims to
// have every piece, and answers requests with garbage — the §3.5 threat the
// piece-hash verification exists for.
type maliciousUploader struct {
	t    *testing.T
	ln   net.Listener
	guid id.GUID
	n    int // pieces claimed
}

func startMaliciousUploader(t *testing.T, numPieces int) *maliciousUploader {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	m := &maliciousUploader{t: t, ln: ln, guid: id.NewGUID(), n: numPieces}
	go m.serve()
	t.Cleanup(func() { ln.Close() })
	return m
}

func (m *maliciousUploader) serve() {
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return
		}
		go m.handle(conn)
	}
}

func (m *maliciousUploader) handle(conn net.Conn) {
	defer conn.Close()
	msg, err := protocol.ReadMessage(conn)
	if err != nil {
		return
	}
	hs, ok := msg.(*protocol.Handshake)
	if !ok {
		return
	}
	protocol.WriteMessage(conn, &protocol.HandshakeAck{OK: true, NumPieces: uint32(m.n)})
	full := content.NewBitfield(m.n)
	for i := 0; i < m.n; i++ {
		full.Set(i)
	}
	protocol.WriteMessage(conn, &protocol.BitfieldMsg{Bits: full.MarshalBinary()})
	_ = hs
	for {
		msg, err := protocol.ReadMessage(conn)
		if err != nil {
			return
		}
		if req, ok := msg.(*protocol.Request); ok {
			// Garbage bytes of a plausible length.
			junk := make([]byte, 16<<10)
			for i := range junk {
				junk[i] = 0x5a
			}
			if protocol.WriteMessage(conn, &protocol.Piece{Index: req.Index, Data: junk}) != nil {
				return
			}
		}
	}
}

// registerRaw logs a fake peer into the control plane and registers it as a
// complete holder of the object, pointing its swarm address at addr.
func registerRaw(t *testing.T, d *deployment, g id.GUID, country geo.CountryCode, addr string, oid content.ObjectID) {
	t.Helper()
	c, _ := d.atlas.Country(country)
	ip, err := d.scape.AllocateIP(c.ASNs[0], c.Locations[0])
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", d.cns[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	err = protocol.WriteMessage(conn, &protocol.Login{
		GUID: g, UploadsEnabled: true, SwarmAddr: addr,
		NAT: protocol.NATNone, DeclaredIP: ip.String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := protocol.WriteMessage(conn, &protocol.Register{
		Object: oid, NumPieces: 1, HaveCount: 1, Complete: true,
	}); err != nil {
		t.Fatal(err)
	}
	// Keep the session alive: drain inbound messages (ConnectTo etc.).
	go func() {
		for {
			if _, err := protocol.ReadMessage(conn); err != nil {
				return
			}
		}
	}()
	loc := d.atlas.Location(c.Locations[0])
	region := geo.RegionOf(geo.Record{Country: country, Continent: loc.Continent, Coord: loc.Coord})
	waitUntil(t, 5*time.Second, func() bool {
		return d.cp.DN(region).Copies(oid) >= 1
	}, "raw registration never landed")
}

// TestMaliciousUploaderDiscarded: a peer serving corrupt pieces cannot harm
// the download — every piece is verified against the edge manifest, the
// garbage is discarded, and the edge covers the difference.
func TestMaliciousUploaderDiscarded(t *testing.T) {
	obj := e2eObject(t, 12_000_000, true)
	d := newDeployment(t, 1, obj)

	evil := startMaliciousUploader(t, obj.NumPieces())
	registerRaw(t, d, evil.guid, "US", evil.ln.Addr().String(), obj.ID)

	// Monitoring node receives the corrupt-piece reports.
	mon := controlplane.NewMonitor(0)
	if err := mon.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	ip, err := d.scape.AllocateIP(mustCountry(t, d, "US").ASNs[0], mustCountry(t, d, "US").Locations[0])
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New(Config{
		DeclaredIP:   ip.String(),
		ControlAddrs: d.cnAddrs(),
		EdgeURL:      "http://" + d.edgeSrv.Addr(),
		MonitorURL:   "http://" + mon.Addr(),
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	dl, err := cl.Download(obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := dl.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if res.FromPeers[evil.guid] != 0 {
		t.Errorf("malicious peer credited with %d bytes", res.FromPeers[evil.guid])
	}
	verifyStored(t, cl, obj)
	// The client reported the corruption to the monitoring node.
	if !eventually(5*time.Second, func() bool { return mon.Count("piece-corrupt") > 0 }) {
		t.Error("no corrupt-piece report reached the monitor")
	}
}

func mustCountry(t *testing.T, d *deployment, code geo.CountryCode) *geo.Country {
	t.Helper()
	c, ok := d.atlas.Country(code)
	if !ok {
		t.Fatalf("unknown country %s", code)
	}
	return c
}

// TestEdgeFailover: with two edge servers, killing the preferred one mid-
// download must not break the transfer.
func TestEdgeFailover(t *testing.T) {
	obj := e2eObject(t, 3_000_000, false)
	d := newDeployment(t, 1, obj)

	// Second edge server sharing the same catalog/key/ledger.
	es2 := newSecondEdge(t, d, obj)

	ip, err := d.scape.AllocateIP(mustCountry(t, d, "US").ASNs[0], mustCountry(t, d, "US").Locations[0])
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New(Config{
		DeclaredIP:   ip.String(),
		ControlAddrs: d.cnAddrs(),
		EdgeURL:      "http://" + d.edgeSrv.Addr(),
		EdgeURLs:     []string{"http://" + es2.Addr()},
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	dl, err := cl.Download(obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the first edge server once a few pieces have arrived.
	waitUntil(t, 10*time.Second, func() bool {
		have, _ := dl.Progress()
		return have >= 2
	}, "no progress before killing the edge server")
	d.edgeSrv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := dl.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("outcome %v after edge failover", res.Outcome)
	}
	verifyStored(t, cl, obj)
}

// newSecondEdge starts another edge server sharing the deployment's
// catalog, token key and ledger — a second member of the edge fleet.
func newSecondEdge(t *testing.T, d *deployment, _ ...*content.Object) *edge.Server {
	t.Helper()
	es := edge.NewServer(d.cat, d.minter, d.ledger, edge.DefaultClientConfig())
	if err := es.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { es.Close() })
	return es
}

func TestSTUNDiscoveryViaConfig(t *testing.T) {
	obj := e2eObject(t, 50_000, false)
	d := newDeployment(t, 1, obj)
	stun, err := nat.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stun.Close()

	ip, err := d.scape.AllocateIP(mustCountry(t, d, "US").ASNs[0], mustCountry(t, d, "US").Locations[0])
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New(Config{
		DeclaredIP:   ip.String(),
		ControlAddrs: d.cnAddrs(),
		EdgeURL:      "http://" + d.edgeSrv.Addr(),
		STUNAddr:     stun.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	got := cl.ReflexiveAddr()
	if !got.IsValid() || got.Port() == 0 {
		t.Fatalf("reflexive address not discovered: %v", got)
	}
}

func TestSequentialDownload(t *testing.T) {
	obj := e2eObject(t, 500_000, false)
	d := newDeployment(t, 1, obj)
	c := d.spawnPeer("US", false, protocol.NATNone)
	dl, err := c.DownloadWith(obj.ID, DownloadOpts{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	// While running, the verified prefix must stay contiguous (streaming
	// playback property). Sample a few times.
	for k := 0; k < 20; k++ {
		bf := c.Store().Have(obj.ID)
		if bf != nil {
			count := bf.Count()
			for i := 0; i < count; i++ {
				if !bf.Has(i) {
					t.Fatalf("sequential download has a hole at piece %d (count=%d)", i, count)
				}
			}
			if count == bf.Len() {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := dl.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("outcome %v", res.Outcome)
	}
	verifyStored(t, c, obj)
}

// TestSelfUpgrade reproduces §3.8's centrally controlled upgrade: the
// control plane pushes a target version; the client adopts it and
// re-logs-in, so the fleet converges without user interaction.
func TestSelfUpgrade(t *testing.T) {
	obj := e2eObject(t, 10_000, false)
	acfg := geo.DefaultAtlasConfig()
	acfg.TailCountries = 2
	atlas := geo.GenerateAtlas(acfg)
	scape := geo.NewEdgeScape(atlas)
	minter := edge.NewTokenMinter([]byte("up-key"))
	ledger := edge.NewLedger()
	cat := edge.NewCatalog()
	if err := cat.PublishSynthetic(obj); err != nil {
		t.Fatal(err)
	}
	es := edge.NewServer(cat, minter, ledger, edge.DefaultClientConfig())
	if err := es.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer es.Close()

	cc := edge.DefaultClientConfig()
	cc.TargetVersion = "ns-9.9"
	cp, err := controlplane.New(controlplane.Config{
		Scape: scape, Minter: minter,
		Collector:    accounting.NewCollector(nil),
		ClientConfig: cc,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	cn, err := cp.StartCN("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	c, _ := atlas.Country("US")
	ip, err := scape.AllocateIP(c.ASNs[0], c.Locations[0])
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New(Config{
		DeclaredIP:      ip.String(),
		ControlAddrs:    []string{cn.Addr()},
		EdgeURL:         "http://" + es.Addr(),
		SoftwareVersion: "ns-1.0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	waitUntil(t, 10*time.Second, func() bool {
		return cl.SoftwareVersion() == "ns-9.9" && cl.control.connected()
	}, "client never upgraded past %s", cl.SoftwareVersion())
	// The control plane observed logins at both versions.
	versions := func() (sawOld, sawNew bool) {
		for _, l := range cp.Collector().Snapshot().Logins {
			switch l.SoftwareVersion {
			case "ns-1.0":
				sawOld = true
			case "ns-9.9":
				sawNew = true
			}
		}
		return
	}
	waitUntil(t, 5*time.Second, func() bool {
		sawOld, sawNew := versions()
		return sawOld && sawNew
	}, "control plane never observed logins at both versions")
}
