package peer

import "netsession/internal/streaming"

// PieceScheduler decides which piece to request next from one remote,
// given a snapshot of local/remote bitfields and in-flight state. -1 means
// nothing eligible (the engine then applies its end-game duplication).
//
// The historical binary choice — the Sequential flag — survives as two
// trivial implementations below, byte-for-byte equivalent to the old
// inline logic; streaming downloads install streaming.WindowScheduler,
// which adds deadline urgency and rarest-first diversity.
type PieceScheduler interface {
	NextPiece(v *streaming.PieceView) int
}

// SequentialScheduler requests pieces strictly in order: the pre-refactor
// Sequential mode.
type SequentialScheduler struct{}

// NextPiece picks the first wanted piece the remote offers.
func (SequentialScheduler) NextPiece(v *streaming.PieceView) int {
	n := v.Have.Len()
	for i := 0; i < n; i++ {
		if !v.Have.Has(i) && v.Remote.Has(i) && !v.InFlight(i) {
			return i
		}
	}
	return -1
}

// RandomScheduler is the pre-refactor default: randomize among the first
// eligible pieces so concurrent peers fetch disjoint pieces and can trade
// them.
type RandomScheduler struct{}

// NextPiece draws uniformly from the first 32 eligible pieces using the
// download's seeded RNG, reproducing the historical request order exactly.
func (RandomScheduler) NextPiece(v *streaming.PieceView) int {
	n := v.Have.Len()
	var cands []int
	for i := 0; i < n && len(cands) < 32; i++ {
		if !v.Have.Has(i) && v.Remote.Has(i) && !v.InFlight(i) {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return -1
	}
	return cands[v.Rand.Intn(len(cands))]
}

// schedulerFor resolves the policy for a download's options.
func schedulerFor(opts DownloadOpts) PieceScheduler {
	switch {
	case opts.Scheduler != nil:
		return opts.Scheduler
	case opts.Streaming != nil:
		return streaming.WindowScheduler{}
	case opts.Sequential:
		return SequentialScheduler{}
	default:
		return RandomScheduler{}
	}
}
