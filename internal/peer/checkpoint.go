package peer

import (
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"time"

	"netsession/internal/content"
	"netsession/internal/fsutil"
	"netsession/internal/retry"
	"netsession/internal/streaming"
)

// downloadCheckpoint is the persisted progress of one Download-Manager
// transfer. The Download Manager lets users "continue downloads that were
// aborted earlier" (§3.3); together with the durable piece store this
// extends that to crashes — a peer SIGKILLed mid-download restarts, loads
// the checkpoint, verifies its pieces are still on disk, and fetches only
// what is missing. The verified bitfield is stored for cross-checking, but
// the piece store is the source of truth: a piece quarantined by the
// store's recovery scan is refetched no matter what the checkpoint claims.
type downloadCheckpoint struct {
	// Object is the full hex secure content ID.
	Object string `json:"object"`
	// NumPieces is the object's piece count at checkpoint time.
	NumPieces int `json:"numPieces"`
	// Have is the hex-encoded verified bitfield (wire format).
	Have string `json:"have"`
	// P2POff records a degradation to edge-only; a resumed download must
	// not re-enter a swarm the degradation ladder already condemned.
	P2POff bool `json:"p2pOff"`
	// Sequential preserves the in-order delivery mode across the restart.
	Sequential bool `json:"sequential"`
	// Streaming preserves the deadline-driven playback context: a resumed
	// stream restarts its playback clock with the same bitrate and window
	// so it keeps reporting startup/rebuffer metrics — even when the
	// checkpoint also records a degradation to edge-only.
	StreamBitrateBps    int64 `json:"streamBitrateBps,omitempty"`
	StreamStartupPieces int   `json:"streamStartupPieces,omitempty"`
	StreamWindowPieces  int   `json:"streamWindowPieces,omitempty"`
	// UpdatedMs is when the checkpoint was last written.
	UpdatedMs int64 `json:"updatedMs"`
}

const checkpointDirName = "downloads"

func (c *Client) checkpointPath(oid content.ObjectID) string {
	return filepath.Join(c.ckptDir, hex.EncodeToString(oid[:])+".json")
}

// saveCheckpoint durably records a download's progress; a no-op without a
// state directory. Called after every verified piece — one small fsync per
// piece (1 MiB in production) is the price of never refetching it.
func (c *Client) saveCheckpoint(d *Download) {
	if c.ckptDir == "" {
		return
	}
	d.mu.Lock()
	ck := downloadCheckpoint{
		Object:     hex.EncodeToString(d.oid[:]),
		NumPieces:  d.have.Len(),
		Have:       hex.EncodeToString(d.have.MarshalBinary()),
		P2POff:     d.p2pOff,
		Sequential: d.opts.Sequential,
		UpdatedMs:  time.Now().UnixMilli(),
	}
	if sc := d.opts.Streaming; sc != nil {
		ck.StreamBitrateBps = sc.BitrateBps
		ck.StreamStartupPieces = sc.StartupPieces
		ck.StreamWindowPieces = sc.WindowPieces
	}
	d.mu.Unlock()
	raw, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		return
	}
	if err := fsutil.WriteFileAtomic(c.checkpointPath(d.oid), raw, 0o644); err != nil {
		c.logf("checkpoint %v: %v", d.oid, err)
	}
}

// removeCheckpoint deletes a finished download's checkpoint.
func (c *Client) removeCheckpoint(oid content.ObjectID) {
	if c.ckptDir == "" {
		return
	}
	os.Remove(c.checkpointPath(oid))
}

// loadCheckpoints reads every parseable checkpoint in the state directory;
// torn or corrupt files are quarantined (same recovery posture as the
// installation state) and skipped.
func (c *Client) loadCheckpoints() []downloadCheckpoint {
	entries, err := os.ReadDir(c.ckptDir)
	if err != nil {
		return nil
	}
	var out []downloadCheckpoint
	for _, ent := range entries {
		if ent.IsDir() || filepath.Ext(ent.Name()) != ".json" {
			continue
		}
		path := filepath.Join(c.ckptDir, ent.Name())
		raw, err := os.ReadFile(path)
		var ck downloadCheckpoint
		if err == nil {
			err = json.Unmarshal(raw, &ck)
		}
		var oid content.ObjectID
		if err == nil {
			var b []byte
			if b, err = hex.DecodeString(ck.Object); err == nil && len(b) != len(oid) {
				err = os.ErrInvalid
			}
		}
		if err != nil {
			os.Remove(path + ".corrupt")
			if os.Rename(path, path+".corrupt") != nil {
				os.Remove(path)
			}
			continue
		}
		out = append(out, ck)
	}
	return out
}

func (ck *downloadCheckpoint) objectID() content.ObjectID {
	var oid content.ObjectID
	b, _ := hex.DecodeString(ck.Object)
	copy(oid[:], b)
	return oid
}

// resumeLoop restarts every checkpointed transfer shortly after the client
// comes up, retrying with backoff while the edge tier is unreachable (a
// crashed machine often reboots into a flaky network). It runs once; later
// failures surface as normal download errors.
func (c *Client) resumeLoop() {
	pending := c.loadCheckpoints()
	if len(pending) == 0 {
		return
	}
	bo := &retry.Backoff{Base: 250 * time.Millisecond, Max: 5 * time.Second}
	for attempt := 0; attempt < 10 && len(pending) > 0; attempt++ {
		remaining := pending[:0]
		for _, ck := range pending {
			if err := c.resumeOne(ck); err != nil {
				c.logf("resume %s: %v", ck.Object[:16], err)
				remaining = append(remaining, ck)
			}
		}
		pending = remaining
		if len(pending) == 0 {
			return
		}
		select {
		case <-c.evictStop:
			return
		case <-time.After(bo.Next()):
		}
	}
}

// resumeOne restarts one checkpointed download: pieces already verified in
// the durable store are counted as recovered and skipped; only the missing
// ones are fetched. Completed leftovers (the crash happened between the
// last piece and the checkpoint removal) are finalized without any fetch.
func (c *Client) resumeOne(ck downloadCheckpoint) error {
	oid := ck.objectID()
	c.resumeMu.Lock()
	defer c.resumeMu.Unlock()
	if c.resumed[oid] || c.activeDownload(oid) != nil {
		return nil // already resumed (or the app re-requested it first)
	}
	recovered := 0
	if bf := c.store.Have(oid); bf != nil {
		recovered = bf.Count()
	}
	opts := DownloadOpts{
		Sequential:   ck.Sequential,
		resumeP2POff: ck.P2POff,
	}
	if ck.StreamBitrateBps > 0 {
		opts.Streaming = &streaming.Config{
			BitrateBps:    ck.StreamBitrateBps,
			StartupPieces: ck.StreamStartupPieces,
			WindowPieces:  ck.StreamWindowPieces,
		}
	}
	_, err := c.DownloadWith(oid, opts)
	if err != nil {
		return err
	}
	c.resumed[oid] = true
	c.metrics.resumeTotal.Inc()
	c.metrics.piecesRecovered.Add(int64(recovered))
	c.logf("resumed download %v: %d/%d pieces recovered from disk", oid, recovered, ck.NumPieces)
	return nil
}

// ResumeDownloads synchronously restarts every checkpointed incomplete
// transfer and returns the live handles. The client does this automatically
// in the background at startup; tests and embedders that need the handles
// call it directly.
func (c *Client) ResumeDownloads() ([]*Download, error) {
	if c.ckptDir == "" {
		return nil, nil
	}
	var out []*Download
	var firstErr error
	for _, ck := range c.loadCheckpoints() {
		oid := ck.objectID()
		if err := c.resumeOne(ck); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if d := c.activeDownload(oid); d != nil {
			out = append(out, d)
		}
	}
	return out, firstErr
}
