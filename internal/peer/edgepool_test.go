package peer

import (
	"sync"
	"testing"
	"time"

	"netsession/internal/content"
	"netsession/internal/edge"
	"netsession/internal/id"
)

func startEdgeServer(t *testing.T, cat *edge.Catalog, addr string) *edge.Server {
	t.Helper()
	minter := edge.NewTokenMinter([]byte("pool-key"))
	ledger := edge.NewLedger()
	s := edge.NewServer(cat, minter, ledger, edge.DefaultClientConfig())
	if err := s.Start(addr); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEdgePoolRequiresURL(t *testing.T) {
	m := newClientMetrics(nil)
	if _, err := newEdgePool([]string{"", ""}, m); err == nil {
		t.Fatal("empty pool accepted")
	}
	p, err := newEdgePool([]string{"", "http://a", ""}, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.servers) != 1 {
		t.Fatalf("pool kept %d servers", len(p.servers))
	}
}

func TestEdgePoolFailoverAndStickiness(t *testing.T) {
	obj, err := content.NewObject(1, "pool", 1, 40_000, 8192, false)
	if err != nil {
		t.Fatal(err)
	}
	cat := edge.NewCatalog()
	if err := cat.PublishSynthetic(obj); err != nil {
		t.Fatal(err)
	}
	good := startEdgeServer(t, cat, "127.0.0.1:0")
	defer good.Close()

	// First URL is dead; the pool must fail over and then stick to the
	// working server.
	pool, err := newEdgePool([]string{"http://127.0.0.1:1", "http://" + good.Addr()}, newClientMetrics(nil))
	if err != nil {
		t.Fatal(err)
	}
	auth, err := pool.Authorize(id.NewGUID(), obj.ID)
	if err != nil {
		t.Fatalf("authorize via failover: %v", err)
	}
	if pool.current != 1 {
		t.Errorf("pool did not stick to the working server (current=%d)", pool.current)
	}
	m, err := pool.FetchManifest(obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.FetchPiece(m, auth.Token, 0); err != nil {
		t.Fatal(err)
	}

	// All servers down: the error names the failure count.
	good.Close()
	if _, err := pool.FetchManifest(obj.ID); err == nil {
		t.Fatal("fetch succeeded with every edge server down")
	}
}

// TestEdgePoolConcurrentFailover exercises the pool under parallel load
// during an outage of the preferred server: every call must fail over to
// the surviving server, the pool must restick, the dead server's breaker
// must trip, and once the dead server comes back (and the survivor goes
// away) the half-open probe must rediscover it.
func TestEdgePoolConcurrentFailover(t *testing.T) {
	obj, err := content.NewObject(1, "pool-conc", 1, 40_000, 8192, false)
	if err != nil {
		t.Fatal(err)
	}
	cat := edge.NewCatalog()
	if err := cat.PublishSynthetic(obj); err != nil {
		t.Fatal(err)
	}
	srvA := startEdgeServer(t, cat, "127.0.0.1:0")
	addrA := srvA.Addr()
	srvB := startEdgeServer(t, cat, "127.0.0.1:0")
	defer srvB.Close()

	metrics := newClientMetrics(nil)
	pool, err := newEdgePool([]string{"http://" + addrA, "http://" + srvB.Addr()}, metrics)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.FetchManifest(obj.ID); err != nil {
		t.Fatal(err)
	}
	if pool.current != 0 {
		t.Fatalf("pool must start preferring server 0, got %d", pool.current)
	}

	// Outage of the preferred server under parallel load.
	srvA.Close()
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = pool.FetchManifest(obj.ID)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent fetch %d failed during failover: %v", i, err)
		}
	}
	pool.mu.Lock()
	cur := pool.current
	pool.mu.Unlock()
	if cur != 1 {
		t.Fatalf("pool must restick to the surviving server, current=%d", cur)
	}

	// The dead server keeps failing until its breaker quarantines it.
	for i := 0; i < 10 && pool.breakerTrips() == 0; i++ {
		pool.FetchManifest(obj.ID)
	}
	if pool.breakerTrips() == 0 {
		t.Fatal("outage did not trip the dead server's breaker")
	}
	if got := metrics.breakerTripsEdge.Value(); got == 0 {
		t.Fatal("breaker trip not counted in telemetry")
	}

	// Recovery: server A returns on its old address, server B goes away.
	// The half-open probe (cooldown 1s) must rediscover A.
	srvA2 := startEdgeServer(t, cat, addrA)
	defer srvA2.Close()
	srvB.Close()
	waitUntil(t, 10*time.Second, func() bool {
		_, err := pool.FetchManifest(obj.ID)
		return err == nil
	}, "pool never recovered the restarted server")
	pool.mu.Lock()
	cur = pool.current
	pool.mu.Unlock()
	if cur != 0 {
		t.Fatalf("pool must restick to the recovered server, current=%d", cur)
	}
}
