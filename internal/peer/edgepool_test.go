package peer

import (
	"testing"

	"netsession/internal/content"
	"netsession/internal/edge"
	"netsession/internal/id"
)

func TestEdgePoolRequiresURL(t *testing.T) {
	if _, err := newEdgePool([]string{"", ""}); err == nil {
		t.Fatal("empty pool accepted")
	}
	p, err := newEdgePool([]string{"", "http://a", ""})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.clients) != 1 {
		t.Fatalf("pool kept %d clients", len(p.clients))
	}
}

func TestEdgePoolFailoverAndStickiness(t *testing.T) {
	obj, err := content.NewObject(1, "pool", 1, 40_000, 8192, false)
	if err != nil {
		t.Fatal(err)
	}
	cat := edge.NewCatalog()
	if err := cat.PublishSynthetic(obj); err != nil {
		t.Fatal(err)
	}
	minter := edge.NewTokenMinter([]byte("pool-key"))
	ledger := edge.NewLedger()
	good := edge.NewServer(cat, minter, ledger, edge.DefaultClientConfig())
	if err := good.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer good.Close()

	// First URL is dead; the pool must fail over and then stick to the
	// working server.
	pool, err := newEdgePool([]string{"http://127.0.0.1:1", "http://" + good.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	auth, err := pool.Authorize(id.NewGUID(), obj.ID)
	if err != nil {
		t.Fatalf("authorize via failover: %v", err)
	}
	if pool.current != 1 {
		t.Errorf("pool did not stick to the working server (current=%d)", pool.current)
	}
	m, err := pool.FetchManifest(obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.FetchPiece(m, auth.Token, 0); err != nil {
		t.Fatal(err)
	}

	// All servers down: the error names the failure count.
	good.Close()
	if _, err := pool.FetchManifest(obj.ID); err == nil {
		t.Fatal("fetch succeeded with every edge server down")
	}
}
