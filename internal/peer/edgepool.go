package peer

import (
	"errors"
	"fmt"
	"sync"

	"netsession/internal/content"
	"netsession/internal/edge"
	"netsession/internal/id"
)

// edgePool fronts one or more edge servers with failover. Akamai's edge is
// a fleet; the client's DNS-selected server can fail mid-download, and the
// DLM simply continues against another one. The pool prefers the server
// that last succeeded and rotates on error.
type edgePool struct {
	mu      sync.Mutex
	clients []*edge.Client
	// current is the preferred index.
	current int
}

func newEdgePool(urls []string) (*edgePool, error) {
	p := &edgePool{}
	for _, u := range urls {
		if u == "" {
			continue
		}
		p.clients = append(p.clients, &edge.Client{BaseURL: u})
	}
	if len(p.clients) == 0 {
		return nil, errors.New("peer: no edge URLs configured")
	}
	return p, nil
}

// do runs op against edge servers starting from the preferred one, rotating
// until one succeeds or all have failed.
func (p *edgePool) do(op func(*edge.Client) error) error {
	p.mu.Lock()
	start := p.current
	n := len(p.clients)
	p.mu.Unlock()
	var lastErr error
	for k := 0; k < n; k++ {
		ix := (start + k) % n
		err := op(p.clients[ix])
		if err == nil {
			p.mu.Lock()
			p.current = ix
			p.mu.Unlock()
			return nil
		}
		lastErr = err
	}
	return fmt.Errorf("peer: all %d edge servers failed: %w", n, lastErr)
}

// Authorize obtains a download authorization with failover.
func (p *edgePool) Authorize(g id.GUID, oid content.ObjectID) (*edge.Authorization, error) {
	var out *edge.Authorization
	err := p.do(func(c *edge.Client) error {
		a, err := c.Authorize(g, oid)
		if err != nil {
			return err
		}
		out = a
		return nil
	})
	return out, err
}

// FetchManifest downloads a manifest with failover.
func (p *edgePool) FetchManifest(oid content.ObjectID) (*content.Manifest, error) {
	var out *content.Manifest
	err := p.do(func(c *edge.Client) error {
		m, err := c.FetchManifest(oid)
		if err != nil {
			return err
		}
		out = m
		return nil
	})
	return out, err
}

// FetchPiece downloads and verifies one piece with failover.
func (p *edgePool) FetchPiece(m *content.Manifest, token []byte, index int) ([]byte, error) {
	var out []byte
	err := p.do(func(c *edge.Client) error {
		data, err := c.FetchPiece(m, token, index)
		if err != nil {
			return err
		}
		out = data
		return nil
	})
	return out, err
}
