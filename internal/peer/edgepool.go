package peer

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"netsession/internal/content"
	"netsession/internal/edge"
	"netsession/internal/id"
	"netsession/internal/retry"
)

// edgePool fronts one or more edge servers with failover. Akamai's edge is
// a fleet; the client's DNS-selected server can fail mid-download, and the
// DLM simply continues against another one (§3.3). Each server carries a
// circuit breaker for per-server health: a server that keeps failing is
// quarantined for a cooldown instead of being retried blindly, then
// half-open-probed for recovery. The pool stays sticky to the server that
// last succeeded.
type edgeServer struct {
	client  *edge.Client
	breaker *retry.Breaker
}

type edgePool struct {
	servers []*edgeServer

	mu sync.Mutex
	// current is the preferred index.
	current int
}

func newEdgePool(urls []string, m *clientMetrics) (*edgePool, error) {
	p := &edgePool{}
	for _, u := range urls {
		if u == "" {
			continue
		}
		p.servers = append(p.servers, &edgeServer{
			client: &edge.Client{BaseURL: u},
			breaker: retry.NewBreaker(retry.BreakerConfig{
				Threshold:   3,
				Cooldown:    time.Second,
				MaxCooldown: 15 * time.Second,
				OnTrip:      func() { m.breakerTripsEdge.Inc() },
			}),
		})
	}
	if len(p.servers) == 0 {
		return nil, errors.New("peer: no edge URLs configured")
	}
	return p, nil
}

// breakerTrips sums the trips across the pool's per-server breakers.
func (p *edgePool) breakerTrips() int64 {
	var n int64
	for _, s := range p.servers {
		n += s.breaker.Trips()
	}
	return n
}

// do runs op against edge servers starting from the preferred one, skipping
// quarantined servers, until one succeeds or every server has failed or is
// quarantined. Outcomes feed each server's breaker, so repeated failures
// open it and recovery is detected by the half-open probe.
func (p *edgePool) do(op func(*edge.Client) error) error {
	p.mu.Lock()
	start := p.current
	p.mu.Unlock()
	n := len(p.servers)
	var lastErr error
	tried := 0
	for k := 0; k < n; k++ {
		ix := (start + k) % n
		s := p.servers[ix]
		if !s.breaker.Allow() {
			continue // quarantined; its cooldown has not elapsed
		}
		tried++
		err := op(s.client)
		if err == nil {
			s.breaker.Success()
			p.mu.Lock()
			p.current = ix
			p.mu.Unlock()
			return nil
		}
		s.breaker.Failure()
		lastErr = err
	}
	if tried == 0 {
		return fmt.Errorf("peer: all %d edge servers quarantined", n)
	}
	return fmt.Errorf("peer: all %d edge servers failed: %w", n, lastErr)
}

// Authorize obtains a download authorization with failover.
func (p *edgePool) Authorize(g id.GUID, oid content.ObjectID) (*edge.Authorization, error) {
	var out *edge.Authorization
	err := p.do(func(c *edge.Client) error {
		a, err := c.Authorize(g, oid)
		if err != nil {
			return err
		}
		out = a
		return nil
	})
	return out, err
}

// FetchManifest downloads a manifest with failover.
func (p *edgePool) FetchManifest(oid content.ObjectID) (*content.Manifest, error) {
	var out *content.Manifest
	err := p.do(func(c *edge.Client) error {
		m, err := c.FetchManifest(oid)
		if err != nil {
			return err
		}
		out = m
		return nil
	})
	return out, err
}

// FetchPiece downloads and verifies one piece with failover.
func (p *edgePool) FetchPiece(m *content.Manifest, token []byte, index int) ([]byte, error) {
	var out []byte
	err := p.do(func(c *edge.Client) error {
		data, err := c.FetchPiece(m, token, index)
		if err != nil {
			return err
		}
		out = data
		return nil
	})
	return out, err
}
