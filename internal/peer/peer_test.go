package peer

import (
	"context"
	"testing"
	"time"

	"netsession/internal/accounting"
	"netsession/internal/content"
	"netsession/internal/controlplane"
	"netsession/internal/edge"
	"netsession/internal/geo"
	"netsession/internal/protocol"
)

// deployment is a full live system on localhost: edge tier, control plane
// with one or more CNs, and helpers to spawn peers with synthetic
// identities.
type deployment struct {
	t       *testing.T
	atlas   *geo.Atlas
	scape   *geo.EdgeScape
	edgeSrv *edge.Server
	cat     *edge.Catalog
	minter  *edge.TokenMinter
	ledger  *edge.Ledger
	cp      *controlplane.ControlPlane
	cns     []*controlplane.CN
}

func newDeployment(t *testing.T, numCNs int, objs ...*content.Object) *deployment {
	t.Helper()
	acfg := geo.DefaultAtlasConfig()
	acfg.TailCountries = 2
	atlas := geo.GenerateAtlas(acfg)
	scape := geo.NewEdgeScape(atlas)
	minter := edge.NewTokenMinter([]byte("e2e-key"))
	ledger := edge.NewLedger()

	cat := edge.NewCatalog()
	for _, o := range objs {
		if err := cat.PublishSynthetic(o); err != nil {
			t.Fatal(err)
		}
	}
	es := edge.NewServer(cat, minter, ledger, edge.DefaultClientConfig())
	if err := es.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { es.Close() })

	cp, err := controlplane.New(controlplane.Config{
		Scape:     scape,
		Minter:    minter,
		Collector: accounting.NewCollector(&accounting.LedgerVerifier{Edge: ledger}),
	})
	if err != nil {
		t.Fatal(err)
	}
	d := &deployment{t: t, atlas: atlas, scape: scape, edgeSrv: es,
		cat: cat, minter: minter, ledger: ledger, cp: cp}
	for i := 0; i < numCNs; i++ {
		cn, err := cp.StartCN("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		d.cns = append(d.cns, cn)
	}
	t.Cleanup(cp.Close)
	return d
}

func (d *deployment) cnAddrs() []string {
	out := make([]string, len(d.cns))
	for i, cn := range d.cns {
		out[i] = cn.Addr()
	}
	return out
}

// spawnPeer starts a NetSession client with a synthetic identity in the
// given country.
func (d *deployment) spawnPeer(country geo.CountryCode, uploadsEnabled bool, natc protocol.NATClass) *Client {
	d.t.Helper()
	c, ok := d.atlas.Country(country)
	if !ok {
		d.t.Fatalf("unknown country %s", country)
	}
	ip, err := d.scape.AllocateIP(c.ASNs[0], c.Locations[0])
	if err != nil {
		d.t.Fatal(err)
	}
	cl, err := New(Config{
		DeclaredIP:     ip.String(),
		NAT:            natc,
		ControlAddrs:   d.cnAddrs(),
		EdgeURL:        "http://" + d.edgeSrv.Addr(),
		UploadsEnabled: uploadsEnabled,
		Logf:           d.t.Logf,
	})
	if err != nil {
		d.t.Fatal(err)
	}
	d.t.Cleanup(cl.Close)
	if !cl.WaitControlConnected(5 * time.Second) {
		d.t.Fatal("peer did not connect to control plane")
	}
	return cl
}

func e2eObject(t *testing.T, size int64, p2p bool) *content.Object {
	t.Helper()
	obj, err := content.NewObject(77, "e2e/blob.bin", 1, size, 16<<10, p2p)
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

// seed downloads the object on a fresh uploads-enabled peer so it becomes a
// registered copy, and waits for the registration to land in the directory.
func (d *deployment) seed(country geo.CountryCode, obj *content.Object) *Client {
	d.t.Helper()
	s := d.spawnPeer(country, true, protocol.NATNone)
	dl, err := s.Download(obj.ID)
	if err != nil {
		d.t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := dl.Wait(ctx)
	if err != nil {
		d.t.Fatal(err)
	}
	if res.Outcome != protocol.OutcomeCompleted {
		d.t.Fatalf("seed download outcome %v", res.Outcome)
	}
	d.waitCopies(country, obj.ID, 1)
	return s
}

func (d *deployment) waitCopies(country geo.CountryCode, oid content.ObjectID, want int) {
	d.t.Helper()
	c, _ := d.atlas.Country(country)
	loc := d.atlas.Location(c.Locations[0])
	region := geo.RegionOf(geo.Record{Country: country, Continent: loc.Continent, Coord: loc.Coord})
	waitUntil(d.t, 5*time.Second, func() bool {
		return d.cp.DN(region).Copies(oid) >= want
	}, "directory never reached %d copies", want)
}

func verifyStored(t *testing.T, c *Client, obj *content.Object) {
	t.Helper()
	if !c.Store().Complete(obj.ID) {
		t.Fatal("store incomplete after download")
	}
	m, err := content.SyntheticManifest(obj)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < obj.NumPieces(); i++ {
		data, ok := c.Store().Get(obj.ID, i)
		if !ok {
			t.Fatalf("piece %d missing", i)
		}
		if err := m.Verify(i, data); err != nil {
			t.Fatalf("piece %d: %v", i, err)
		}
	}
}

func TestEdgeOnlyDownload(t *testing.T) {
	obj := e2eObject(t, 300_000, false) // p2p disabled by provider
	d := newDeployment(t, 1, obj)
	c := d.spawnPeer("US", false, protocol.NATNone)

	dl, err := c.Download(obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := dl.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if res.BytesPeers != 0 {
		t.Errorf("p2p-disabled download got %d peer bytes", res.BytesPeers)
	}
	if res.BytesInfra != obj.Size {
		t.Errorf("infra bytes %d, want %d", res.BytesInfra, obj.Size)
	}
	verifyStored(t, c, obj)
}

func TestPeerAssistedDownload(t *testing.T) {
	obj := e2eObject(t, 512_000, true)
	d := newDeployment(t, 1, obj)
	d.seed("US", obj)

	c := d.spawnPeer("US", true, protocol.NATNone)
	dl, err := c.Download(obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := dl.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if res.BytesPeers == 0 {
		t.Error("peer-assisted download received no peer bytes")
	}
	if res.BytesInfra+res.BytesPeers != obj.Size {
		t.Errorf("byte accounting: infra %d + peers %d != %d",
			res.BytesInfra, res.BytesPeers, obj.Size)
	}
	if res.PeersReturned != 1 {
		t.Errorf("PeersReturned=%d, want 1", res.PeersReturned)
	}
	if len(res.FromPeers) != 1 {
		t.Errorf("FromPeers has %d entries, want 1", len(res.FromPeers))
	}
	verifyStored(t, c, obj)

	// Accounting: the CN accepted verified download records for both the
	// seed and this download.
	waitUntil(t, 5*time.Second, func() bool {
		return len(d.cp.Collector().Snapshot().Downloads) >= 2
	}, "collector never reached 2 download records")
	log := d.cp.Collector().Snapshot()
	var assisted *accounting.DownloadRecord
	for i := range log.Downloads {
		if log.Downloads[i].BytesPeers > 0 {
			assisted = &log.Downloads[i]
		}
	}
	if assisted == nil {
		t.Fatal("no peer-assisted record collected")
	}
	if !assisted.P2PEnabled {
		t.Error("record lost the p2p policy bit")
	}
	if got := assisted.PeerEfficiency(); got <= 0 || got > 1 {
		t.Errorf("peer efficiency %v out of range", got)
	}
}

func TestSwarmScalesToManySeeds(t *testing.T) {
	obj := e2eObject(t, 400_000, true)
	d := newDeployment(t, 1, obj)
	d.seed("US", obj)
	d.seed("US", obj)
	d.waitCopies("US", obj.ID, 2)

	c := d.spawnPeer("US", true, protocol.NATNone)
	dl, err := c.Download(obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := dl.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if res.PeersReturned != 2 {
		t.Errorf("PeersReturned=%d, want 2", res.PeersReturned)
	}
	verifyStored(t, c, obj)
}

func TestNATIncompatibleFallsBackToEdge(t *testing.T) {
	obj := e2eObject(t, 200_000, true)
	d := newDeployment(t, 1, obj)
	// Seed behind a symmetric NAT; downloader also symmetric: the DN's
	// connectivity-aware selection returns nothing and the edge covers the
	// whole download.
	s := d.spawnPeer("US", true, protocol.NATSymmetric)
	dl, err := s.Download(obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if res, _ := dl.Wait(ctx); res.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("seed outcome %v", res.Outcome)
	}
	d.waitCopies("US", obj.ID, 1)

	c := d.spawnPeer("US", true, protocol.NATSymmetric)
	dl2, err := c.Download(obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dl2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if res.BytesPeers != 0 {
		t.Errorf("symmetric-symmetric pair exchanged %d peer bytes", res.BytesPeers)
	}
	verifyStored(t, c, obj)
}

func TestUploadsDisabledPeerDoesNotServe(t *testing.T) {
	obj := e2eObject(t, 200_000, true)
	d := newDeployment(t, 1, obj)
	// "Seed" with uploads disabled: completes but never registers.
	s := d.spawnPeer("US", false, protocol.NATNone)
	dl, err := s.Download(obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if res, _ := dl.Wait(ctx); res.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("outcome %v", res.Outcome)
	}
	time.Sleep(200 * time.Millisecond)

	c := d.spawnPeer("US", true, protocol.NATNone)
	dl2, err := c.Download(obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dl2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if res.BytesPeers != 0 {
		t.Errorf("received %d bytes from a peer that disabled uploads", res.BytesPeers)
	}
}

func TestPauseResume(t *testing.T) {
	obj := e2eObject(t, 400_000, false)
	d := newDeployment(t, 1, obj)
	c := d.spawnPeer("US", false, protocol.NATNone)
	dl, err := c.Download(obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	dl.Pause()
	time.Sleep(150 * time.Millisecond)
	have1, _ := dl.Progress()
	time.Sleep(150 * time.Millisecond)
	have2, _ := dl.Progress()
	if have2 > have1+1 { // at most one in-flight piece may land after Pause
		t.Errorf("download progressed while paused: %d -> %d", have1, have2)
	}
	dl.Resume()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := dl.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("outcome after resume %v", res.Outcome)
	}
	verifyStored(t, c, obj)
}

func TestAbortReportsAborted(t *testing.T) {
	obj := e2eObject(t, 20_000_000, false)
	d := newDeployment(t, 1, obj)
	c := d.spawnPeer("US", false, protocol.NATNone)
	dl, err := c.Download(obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Abort as soon as the first piece lands (well before 20 MB completes).
	waitUntil(t, 10*time.Second, func() bool {
		have, _ := dl.Progress()
		return have >= 1
	}, "no piece arrived before abort")
	dl.Abort()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := dl.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != protocol.OutcomeAborted {
		t.Fatalf("outcome %v, want aborted", res.Outcome)
	}
	// The aborted outcome reaches the accounting log.
	waitUntil(t, 5*time.Second, func() bool {
		for _, rec := range d.cp.Collector().Snapshot().Downloads {
			if rec.Outcome == protocol.OutcomeAborted {
				return true
			}
		}
		return false
	}, "aborted record never collected")
}

func TestResumeAfterAbortReusesStore(t *testing.T) {
	obj := e2eObject(t, 1_000_000, false)
	d := newDeployment(t, 1, obj)
	c := d.spawnPeer("US", false, protocol.NATNone)
	dl, err := c.Download(obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Let some pieces land, then abort.
	eventually(10*time.Second, func() bool {
		have, _ := dl.Progress()
		return have > 3
	})
	dl.Abort()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	dl.Wait(ctx)
	before := c.Store().Have(obj.ID).Count()
	if before == 0 {
		t.Skip("abort landed before any piece; nothing to verify")
	}
	// A fresh download continues from the stored pieces.
	dl2, err := c.Download(obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dl2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if got := res.BytesInfra + res.BytesPeers; got >= obj.Size {
		t.Errorf("resumed download fetched %d bytes, expected less than %d", got, obj.Size)
	}
	verifyStored(t, c, obj)
}

func TestCNFailover(t *testing.T) {
	obj := e2eObject(t, 100_000, false)
	d := newDeployment(t, 2, obj)
	c := d.spawnPeer("US", true, protocol.NATNone)

	// Kill the CN the peer is connected to; it must re-login to the other.
	d.cns[0].Close()
	waitUntil(t, 10*time.Second, func() bool {
		return d.cp.Connected(c.GUID()) && c.control.connected()
	}, "peer did not fail over to the surviving CN")
	// And the peer still works end to end.
	dl, err := c.Download(obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := dl.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("outcome %v", res.Outcome)
	}
}

func TestPreferenceFlipStopsServing(t *testing.T) {
	obj := e2eObject(t, 200_000, true)
	d := newDeployment(t, 1, obj)
	s := d.seed("US", obj)

	// The user turns uploads off; the directory entry is soft state that
	// expires, but the peer must refuse new handshakes immediately.
	s.Preferences().SetUploadsEnabled(false)
	c := d.spawnPeer("US", true, protocol.NATNone)
	dl, err := c.Download(obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := dl.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != protocol.OutcomeCompleted {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if res.BytesPeers != 0 {
		t.Errorf("peer with uploads disabled served %d bytes", res.BytesPeers)
	}
	if s.Preferences().Changes() != 1 {
		t.Errorf("Changes=%d, want 1", s.Preferences().Changes())
	}
}
