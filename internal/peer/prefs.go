package peer

import "sync"

// Preferences is the user-visible preference surface of the NetSession
// Interface. "NetSession Interface users have the option to turn off peer
// content uploads permanently or temporarily in the NetSession application
// preferences, without adverse effects on their download performance"
// (§3.4). It is safe for concurrent use.
type Preferences struct {
	mu             sync.Mutex
	uploadsEnabled bool
	networkBusy    bool
	changes        int
	onChange       []func(enabled bool)
}

// NewPreferences creates preferences with the bundled default.
func NewPreferences(uploadsEnabled bool) *Preferences {
	return &Preferences{uploadsEnabled: uploadsEnabled}
}

// UploadsEnabled reports the current setting.
func (p *Preferences) UploadsEnabled() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.uploadsEnabled
}

// SetUploadsEnabled flips the setting and notifies observers. It returns
// true if the value changed.
func (p *Preferences) SetUploadsEnabled(v bool) bool {
	p.mu.Lock()
	if p.uploadsEnabled == v {
		p.mu.Unlock()
		return false
	}
	p.uploadsEnabled = v
	p.changes++
	obs := make([]func(bool), len(p.onChange))
	copy(obs, p.onChange)
	p.mu.Unlock()
	for _, f := range obs {
		f(v)
	}
	return true
}

// Changes returns how many times the setting was flipped (the Table 3
// quantity).
func (p *Preferences) Changes() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.changes
}

// SetNetworkBusy marks the user's connection as busy with foreground
// traffic; while set, the client pauses uploads ("peers monitor the
// utilization of the local network connections and throttle or pause
// uploads when the connections are used by other applications", §3.9).
// Production clients drive this from passive utilization measurements; the
// hook is exposed so integrations and tests can drive it directly.
func (p *Preferences) SetNetworkBusy(v bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.networkBusy = v
}

// NetworkBusy reports the busy state.
func (p *Preferences) NetworkBusy() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.networkBusy
}

// Observe registers a callback invoked on every change.
func (p *Preferences) Observe(f func(enabled bool)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.onChange = append(p.onChange, f)
}
