package peer

import (
	"context"
	"sync"
	"testing"
	"time"

	"netsession/internal/protocol"
)

// TestMutualMidSwarmExchange: two peers that start downloading the same hot
// object concurrently discover each other via partial registrations and
// trade pieces both ways before either completes — the swarming behaviour
// of §3.4, where any holder of pieces is a source.
func TestMutualMidSwarmExchange(t *testing.T) {
	// Large enough that both downloads are still in flight when the first
	// quarter-point partial registration lands, even at loopback speeds.
	obj := e2eObject(t, 48_000_000, true)
	d := newDeployment(t, 1, obj)

	spawn := func() *Client {
		c, _ := d.atlas.Country("US")
		ip, err := d.scape.AllocateIP(c.ASNs[0], c.Locations[0])
		if err != nil {
			t.Fatal(err)
		}
		cl, err := New(Config{
			DeclaredIP:      ip.String(),
			ControlAddrs:    d.cnAddrs(),
			EdgeURL:         "http://" + d.edgeSrv.Addr(),
			UploadsEnabled:  true,
			RequeryInterval: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		return cl
	}
	a := spawn()
	b := spawn()

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	results := make([]*Result, 2)
	for i, p := range []*Client{a, b} {
		wg.Add(1)
		go func(ix int, p *Client) {
			defer wg.Done()
			dl, err := p.Download(obj.ID)
			if err != nil {
				t.Errorf("peer %d: %v", ix, err)
				return
			}
			results[ix], _ = dl.Wait(ctx)
		}(i, p)
	}
	wg.Wait()

	for i, res := range results {
		if res == nil || res.Outcome != protocol.OutcomeCompleted {
			t.Fatalf("peer %d did not complete: %+v", i, res)
		}
	}
	// At least one direction of peer exchange must have happened; with
	// concurrent starts and quarter-point registrations, usually both.
	exchanged := results[0].BytesPeers + results[1].BytesPeers
	if exchanged == 0 {
		t.Error("concurrent downloads never exchanged a byte peer-to-peer")
	}
	t.Logf("A<-peers %d bytes, B<-peers %d bytes", results[0].BytesPeers, results[1].BytesPeers)
	verifyStored(t, a, obj)
	verifyStored(t, b, obj)
}
