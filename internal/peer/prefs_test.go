package peer

import (
	"sync"
	"testing"
)

func TestPreferencesChangesAndObservers(t *testing.T) {
	p := NewPreferences(false)
	if p.UploadsEnabled() {
		t.Fatal("default not honoured")
	}
	var notified []bool
	var mu sync.Mutex
	p.Observe(func(v bool) {
		mu.Lock()
		notified = append(notified, v)
		mu.Unlock()
	})
	if !p.SetUploadsEnabled(true) {
		t.Fatal("change not reported")
	}
	if p.SetUploadsEnabled(true) {
		t.Fatal("no-op change reported")
	}
	if !p.SetUploadsEnabled(false) {
		t.Fatal("second change not reported")
	}
	if p.Changes() != 2 {
		t.Fatalf("Changes=%d, want 2", p.Changes())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(notified) != 2 || notified[0] != true || notified[1] != false {
		t.Fatalf("observer saw %v", notified)
	}
}

func TestPreferencesNetworkBusy(t *testing.T) {
	p := NewPreferences(true)
	if p.NetworkBusy() {
		t.Fatal("fresh prefs should not be busy")
	}
	p.SetNetworkBusy(true)
	if !p.NetworkBusy() {
		t.Fatal("busy not set")
	}
	p.SetNetworkBusy(false)
	if p.NetworkBusy() {
		t.Fatal("busy not cleared")
	}
}
