package peer

import (
	"context"
	"sync"
	"time"

	"netsession/internal/content"
	"netsession/internal/edge"
	"netsession/internal/nat"
	"netsession/internal/protocol"
)

// uploadManager enforces the client-side upload policy of §3.4/§3.9: a
// globally configurable limit on simultaneous upload connections, a cap on
// how many times any one object is uploaded, and an aggregate upload rate
// limit so background serving never crowds out the user's own traffic.
type uploadManager struct {
	c *Client

	mu        sync.Mutex
	cfg       edge.ClientConfig
	active    map[*swarmConn]bool
	perObject map[content.ObjectID]int // serving sessions granted, ever
	bytesOut  int64

	// nextFree implements a leaky-bucket rate limit over upload bytes.
	nextFree time.Time
}

func newUploadManager(c *Client) *uploadManager {
	return &uploadManager{
		c:         c,
		cfg:       edge.DefaultClientConfig(),
		active:    make(map[*swarmConn]bool),
		perObject: make(map[content.ObjectID]int),
	}
}

func (u *uploadManager) applyConfig(cfg edge.ClientConfig) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.cfg = cfg
}

// tryAcquire grants an upload slot for the connection, enforcing both the
// global connection limit and the per-object upload cap ("peers upload each
// object at most a limited number of times", §3.9).
func (u *uploadManager) tryAcquire(sc *swarmConn) bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.cfg.MaxUploadConns > 0 && len(u.active) >= u.cfg.MaxUploadConns {
		return false
	}
	if u.cfg.PerObjectUploadCap > 0 && u.perObject[sc.oid] >= u.cfg.PerObjectUploadCap {
		return false
	}
	u.active[sc] = true
	u.perObject[sc.oid]++
	sc.uploadSlot = true
	return true
}

func (u *uploadManager) release(sc *swarmConn) {
	u.mu.Lock()
	defer u.mu.Unlock()
	delete(u.active, sc)
}

// ActiveUploads returns the number of live upload connections.
func (u *uploadManager) ActiveUploads() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.active)
}

// UploadedBytes returns the total content bytes served to peers.
func (u *uploadManager) UploadedBytes() int64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.bytesOut
}

func (u *uploadManager) countBytes(n int) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.bytesOut += int64(n)
}

// throttle blocks long enough that aggregate upload bandwidth stays under
// the configured rate. Zero rate means unlimited (peers then rely on the
// idle-link backoff the paper describes, which live mode does not need on
// loopback).
func (u *uploadManager) throttle(n int) {
	u.mu.Lock()
	rate := u.cfg.UploadRateBps
	if rate <= 0 {
		u.mu.Unlock()
		return
	}
	now := time.Now()
	if u.nextFree.Before(now) {
		u.nextFree = now
	}
	wait := u.nextFree.Sub(now)
	u.nextFree = u.nextFree.Add(time.Duration(float64(n*8) / float64(rate) * float64(time.Second)))
	u.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}

// dialBack connects to a downloader on the control plane's instruction so
// that both endpoints initiate (§3.7). The connection consumes an upload
// slot like any inbound upload.
func (u *uploadManager) dialBack(oid content.ObjectID, remote protocol.PeerInfo) {
	m := u.c.cachedManifest(oid)
	if m == nil {
		return
	}
	sc := &swarmConn{c: u.c, oid: oid, remote: remote.GUID, manifest: m}
	if !u.tryAcquire(sc) {
		return
	}
	dialer := &nat.Dialer{Local: u.c.cfg.NAT, Timeout: 5 * time.Second}
	conn, err := dialer.Dial(context.Background(), remote)
	if err != nil {
		u.release(sc)
		return
	}
	sc.conn = conn
	// Dial-back handshakes carry no token: the uploader is not requesting
	// anything; the downloader accepts because it has an active download.
	if err := sc.send(&protocol.Handshake{GUID: u.c.cfg.GUID, Object: oid}); err != nil {
		sc.close()
		return
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	msg, err := protocol.ReadMessage(conn)
	if err != nil {
		sc.close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	if ack, ok := msg.(*protocol.HandshakeAck); !ok || !ack.OK {
		sc.close()
		return
	}
	sc.sendLocalBitfield()
	sc.loop()
}

// closeAll closes every active upload connection.
func (u *uploadManager) closeAll() {
	u.mu.Lock()
	conns := make([]*swarmConn, 0, len(u.active))
	for sc := range u.active {
		conns = append(conns, sc)
	}
	u.mu.Unlock()
	for _, sc := range conns {
		sc.close()
	}
}
