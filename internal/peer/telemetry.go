// Telemetry wiring for the NetSession Interface: the client's metric
// handles, the download-lifecycle trace log, STUN reflexive-address
// discovery, and the best-effort operational report uploads to the
// monitoring node ("peers upload information about their operation and about
// problems ... to these nodes", §3.6).
package peer

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/netip"
	"sync"
	"time"

	"netsession/internal/nat"
	"netsession/internal/telemetry"
)

// clientMetrics pre-resolves every metric the client's hot paths touch
// (piece arrivals, swarm dials, uploads); registry lookups happen once.
type clientMetrics struct {
	reg *telemetry.Registry

	piecesEdge     *telemetry.Counter
	piecesPeers    *telemetry.Counter
	bytesDownEdge  *telemetry.Counter
	bytesDownPeers *telemetry.Counter
	bytesUp        *telemetry.Counter

	swarmDials      *telemetry.Counter
	swarmDialErrors *telemetry.Counter
	corruptPieces   *telemetry.Counter

	edgeFetchMs  *telemetry.Histogram
	peerPieceMs  *telemetry.Histogram
	peerLookupMs *telemetry.Histogram

	// Resilience counters, registered eagerly so the series are present in
	// /metrics even before the first fault: retries by operation, breaker
	// trips by target, blacklisted swarm peers, and p2p degradations by
	// reason.
	retriesEdge      *telemetry.Counter
	retriesControl   *telemetry.Counter
	cpFailovers      *telemetry.Counter
	breakerTripsEdge *telemetry.Counter
	swarmBlacklist   *telemetry.Counter
	degradeStall     *telemetry.Counter
	degradeCorrupt   *telemetry.Counter

	// Crash-recovery counters, also eager: how many downloads restarted
	// from a persisted checkpoint, and how many verified pieces those
	// resumes recovered from the durable store instead of refetching.
	resumeTotal     *telemetry.Counter
	piecesRecovered *telemetry.Counter

	// Streaming-delivery series (§3.4), eager so dashboards can graph a
	// zero before the first stream: playback sessions, rebuffer events
	// and paused milliseconds, pieces that missed their play deadline,
	// urgent-window bytes rescued from the edge, and the startup-delay
	// distribution.
	streamSessions        *telemetry.Counter
	streamRebuffers       *telemetry.Counter
	streamRebufferMs      *telemetry.Counter
	streamDeadlineMisses  *telemetry.Counter
	streamEdgeRescueBytes *telemetry.Counter
	streamStartupMs       *telemetry.Histogram

	downloadsByOutcome map[string]*telemetry.Counter
	stunOK             *telemetry.Counter
	stunFail           *telemetry.Counter

	mu            sync.Mutex
	reportsByKind map[string]*telemetry.Counter
}

func newClientMetrics(reg *telemetry.Registry) *clientMetrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	m := &clientMetrics{
		reg: reg,
		piecesEdge: reg.Counter("peer_pieces_total",
			"verified pieces received, by source", telemetry.Labels{"source": "edge"}),
		piecesPeers: reg.Counter("peer_pieces_total",
			"verified pieces received, by source", telemetry.Labels{"source": "peer"}),
		bytesDownEdge: reg.Counter("peer_bytes_down_total",
			"bytes downloaded, by source", telemetry.Labels{"source": "edge"}),
		bytesDownPeers: reg.Counter("peer_bytes_down_total",
			"bytes downloaded, by source", telemetry.Labels{"source": "peer"}),
		bytesUp: reg.Counter("peer_bytes_up_total",
			"bytes uploaded to other peers", nil),
		swarmDials: reg.Counter("peer_swarm_dials_total",
			"outbound swarm connection attempts", nil),
		swarmDialErrors: reg.Counter("peer_swarm_dial_errors_total",
			"failed outbound swarm connection attempts", nil),
		corruptPieces: reg.Counter("peer_corrupt_pieces_total",
			"pieces that failed hash verification", nil),
		edgeFetchMs: reg.Histogram("peer_edge_fetch_ms",
			"edge HTTP piece fetch latency in milliseconds",
			telemetry.DurationBucketsMs, nil),
		peerPieceMs: reg.Histogram("peer_piece_transfer_ms",
			"swarm piece request-to-arrival latency in milliseconds",
			telemetry.DurationBucketsMs, nil),
		peerLookupMs: reg.Histogram("peer_lookup_ms",
			"control-plane peer query latency in milliseconds",
			telemetry.DurationBucketsMs, nil),
		retriesEdge: reg.Counter("peer_retries_total",
			"retried operations, by operation", telemetry.Labels{"op": "edge_fetch"}),
		retriesControl: reg.Counter("peer_retries_total",
			"retried operations, by operation", telemetry.Labels{"op": "control_reconnect"}),
		cpFailovers: reg.Counter("peer_cp_failovers_total",
			"control sessions re-established on a different CP node than the last one", nil),
		breakerTripsEdge: reg.Counter("peer_breaker_trips_total",
			"circuit-breaker trips, by target", telemetry.Labels{"target": "edge"}),
		swarmBlacklist: reg.Counter("peer_swarm_blacklist_total",
			"peers temporarily blacklisted after failed swarm dials", nil),
		degradeStall: reg.Counter("peer_p2p_degradations_total",
			"downloads that disabled p2p and fell back to edge-only, by reason",
			telemetry.Labels{"reason": "stall"}),
		degradeCorrupt: reg.Counter("peer_p2p_degradations_total",
			"downloads that disabled p2p and fell back to edge-only, by reason",
			telemetry.Labels{"reason": "corruption"}),
		resumeTotal: reg.Counter("peer_resume_total",
			"downloads resumed from a persisted checkpoint after a restart", nil),
		piecesRecovered: reg.Counter("peer_pieces_recovered_total",
			"verified pieces recovered from the durable store on resume instead of refetched", nil),
		streamSessions: reg.Counter("peer_stream_sessions_total",
			"deadline-driven streaming downloads started", nil),
		streamRebuffers: reg.Counter("peer_stream_rebuffer_events_total",
			"playback stalls after startup across streaming downloads", nil),
		streamRebufferMs: reg.Counter("peer_stream_rebuffer_ms_total",
			"total milliseconds playback spent paused in rebuffers", nil),
		streamDeadlineMisses: reg.Counter("peer_stream_deadline_misses_total",
			"pieces unavailable at their playback deadline", nil),
		streamEdgeRescueBytes: reg.Counter("peer_stream_edge_rescue_bytes_total",
			"urgent-window bytes fetched from the edge because no peer could meet the deadline", nil),
		streamStartupMs: reg.Histogram("peer_stream_startup_ms",
			"playback startup delay in milliseconds",
			telemetry.DurationBucketsMs, nil),
		downloadsByOutcome: make(map[string]*telemetry.Counter),
		stunOK: reg.Counter("peer_stun_discoveries_total",
			"STUN reflexive-address discoveries, by outcome", telemetry.Labels{"outcome": "ok"}),
		stunFail: reg.Counter("peer_stun_discoveries_total",
			"STUN reflexive-address discoveries, by outcome", telemetry.Labels{"outcome": "fail"}),
		reportsByKind: make(map[string]*telemetry.Counter),
	}
	return m
}

func (m *clientMetrics) downloadOutcome(outcome string) *telemetry.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.downloadsByOutcome[outcome]
	if !ok {
		c = m.reg.Counter("peer_downloads_total",
			"finished downloads, by outcome", telemetry.Labels{"outcome": outcome})
		m.downloadsByOutcome[outcome] = c
	}
	return c
}

func (m *clientMetrics) reportKind(kind string) *telemetry.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.reportsByKind[kind]
	if !ok {
		c = m.reg.Counter("peer_reports_total",
			"operational reports uploaded to the monitor, by kind",
			telemetry.Labels{"kind": kind})
		m.reportsByKind[kind] = c
	}
	return c
}

// Metrics exposes the client's telemetry registry.
func (c *Client) Metrics() *telemetry.Registry { return c.metrics.reg }

// Traces returns the client's recent completed download traces, oldest
// first.
func (c *Client) Traces() []*telemetry.Trace { return c.traces.Recent() }

// stunLocalAddr derives the local bind address for the STUN socket from the
// configured server so discovery works off-loopback: a loopback STUN server
// (tests) gets a loopback socket, anything else binds the wildcard address.
func stunLocalAddr(stunAddr string) string {
	host, _, err := net.SplitHostPort(stunAddr)
	if err == nil {
		if ip, perr := netip.ParseAddr(host); perr == nil && ip.IsLoopback() {
			return "127.0.0.1:0"
		}
	}
	return "0.0.0.0:0"
}

// discoverReflexive queries the configured STUN server for the client's
// reflexive transport address — the connectivity detail the control plane's
// DN records for NAT-aware selection (§3.6). Errors are soft: a client
// behind a UDP-blocking firewall still works, it just reports NATBlocked
// semantics to the operator.
func (c *Client) discoverReflexive() {
	if c.cfg.STUNAddr == "" {
		return
	}
	pc, err := net.ListenPacket("udp", stunLocalAddr(c.cfg.STUNAddr))
	if err != nil {
		c.logf("stun socket: %v", err)
		c.metrics.stunFail.Inc()
		return
	}
	defer pc.Close()
	addr, err := nat.Discover(pc, c.cfg.STUNAddr, uint64(time.Now().UnixNano()), 3*time.Second)
	if err != nil {
		c.logf("stun discover: %v", err)
		c.metrics.stunFail.Inc()
		c.reportProblem("nat-fail", err.Error())
		return
	}
	c.metrics.stunOK.Inc()
	c.mu.Lock()
	c.reflexive = addr
	c.mu.Unlock()
	c.logf("reflexive address %v", addr)
}

// ReflexiveAddr returns the STUN-discovered mapped address, or a zero value
// when discovery was disabled or failed.
func (c *Client) ReflexiveAddr() netip.AddrPort {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reflexive
}

// reportProblem uploads an operational report to the monitoring node,
// best-effort and asynchronous ("peers upload information about their
// operation and about problems ... to these nodes", §3.6). Every report is
// also counted in the client's own registry, so fleet problem rates show up
// both at the monitor and on the peer's /v1/telemetry surface.
func (c *Client) reportProblem(kind, detail string) {
	c.metrics.reportKind(kind).Inc()
	url := c.cfg.MonitorURL
	if url == "" {
		return
	}
	body, err := json.Marshal(Report{
		TimeMs: time.Now().UnixMilli(),
		GUID:   c.cfg.GUID.String(),
		Kind:   kind,
		Detail: detail,
	})
	if err != nil {
		return
	}
	go func() {
		client := &http.Client{Timeout: 5 * time.Second}
		resp, err := client.Post(url+"/v1/report", "application/json", bytes.NewReader(body))
		if err != nil {
			return
		}
		resp.Body.Close()
	}()
}

// Report mirrors the monitor's report schema (controlplane.Report); declared
// here so the peer package does not import the control plane.
type Report struct {
	TimeMs int64  `json:"timeMs"`
	GUID   string `json:"guid"`
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}
