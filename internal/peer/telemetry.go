package peer

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/netip"
	"time"

	"netsession/internal/nat"
)

// discoverReflexive queries the configured STUN server for the client's
// reflexive transport address — the connectivity detail the control plane's
// DN records for NAT-aware selection (§3.6). Errors are soft: a client
// behind a UDP-blocking firewall still works, it just reports NATBlocked
// semantics to the operator.
func (c *Client) discoverReflexive() {
	if c.cfg.STUNAddr == "" {
		return
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		c.logf("stun socket: %v", err)
		return
	}
	defer pc.Close()
	addr, err := nat.Discover(pc, c.cfg.STUNAddr, uint64(time.Now().UnixNano()), 3*time.Second)
	if err != nil {
		c.logf("stun discover: %v", err)
		c.reportProblem("nat-fail", err.Error())
		return
	}
	c.mu.Lock()
	c.reflexive = addr
	c.mu.Unlock()
	c.logf("reflexive address %v", addr)
}

// ReflexiveAddr returns the STUN-discovered mapped address, or a zero value
// when discovery was disabled or failed.
func (c *Client) ReflexiveAddr() netip.AddrPort {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reflexive
}

// reportProblem uploads an operational report to the monitoring node,
// best-effort and asynchronous ("peers upload information about their
// operation and about problems ... to these nodes", §3.6).
func (c *Client) reportProblem(kind, detail string) {
	url := c.cfg.MonitorURL
	if url == "" {
		return
	}
	body, err := json.Marshal(map[string]any{
		"timeMs": time.Now().UnixMilli(),
		"guid":   c.cfg.GUID.String(),
		"kind":   kind,
		"detail": detail,
	})
	if err != nil {
		return
	}
	go func() {
		client := &http.Client{Timeout: 5 * time.Second}
		resp, err := client.Post(url+"/v1/report", "application/json", bytes.NewReader(body))
		if err != nil {
			return
		}
		resp.Body.Close()
	}()
}
