package peer

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"netsession/internal/content"
	"netsession/internal/id"
	"netsession/internal/logpipe"
	"netsession/internal/protocol"
	"netsession/internal/retry"
	"netsession/internal/streaming"
	"netsession/internal/telemetry"
)

// downloadState is the lifecycle of a Download.
type downloadState int

const (
	stateRunning downloadState = iota
	statePaused
	stateDone
)

// Result summarizes a finished download; its fields mirror the CN log
// record (§4.1).
type Result struct {
	Object        content.ObjectID
	Outcome       protocol.Outcome
	BytesInfra    int64
	BytesPeers    int64
	FromPeers     map[id.GUID]int64
	PeersReturned int
	Duration      time.Duration
	// Stream holds the playback outcome for deadline-driven downloads,
	// nil for bulk transfers.
	Stream *streaming.Metrics
}

// PeerEfficiency returns the fraction of bytes that came from peers.
func (r *Result) PeerEfficiency() float64 {
	t := r.BytesInfra + r.BytesPeers
	if t == 0 {
		return 0
	}
	return float64(r.BytesPeers) / float64(t)
}

// DownloadOpts tunes one transfer.
type DownloadOpts struct {
	// Sequential requests pieces in order. The default randomizes piece
	// selection across the swarm, which diversifies which pieces each
	// peer holds.
	Sequential bool
	// Streaming enables deadline-driven delivery (NetSession "also
	// supports video streaming", §3.4): a playback clock derives
	// per-piece deadlines from the bitrate, the playback-window
	// scheduler requests urgent pieces first, and startup delay,
	// rebuffers, deadline misses and edge rescues become first-class
	// metrics on the result and the usage report. Nil means bulk.
	Streaming *streaming.Config
	// Scheduler overrides the piece-request policy; nil derives it from
	// Streaming/Sequential (window, sequential or random).
	Scheduler PieceScheduler
	// resumeP2POff restarts a checkpointed download already degraded to
	// edge-only: the ladder's verdict on the swarm survives the crash.
	resumeP2POff bool
}

// Download is one Download-Manager transfer (§3.3): it downloads from the
// edge servers over HTTP while, in parallel, querying the control plane for
// peers and swarming with them. The edge connection guarantees progress
// independent of the peers.
type Download struct {
	c        *Client
	oid      content.ObjectID
	manifest *content.Manifest
	token    []byte
	p2p      bool
	opts     DownloadOpts
	start    time.Time
	rng      *rand.Rand // guarded by mu
	trace    *telemetry.Trace
	sched    PieceScheduler
	// play is the playback session for streaming downloads, nil for bulk.
	// It is deliberately independent of swarm state: degradation to
	// edge-only must not stop the playback clock, so rebuffers under
	// degraded delivery are still observed and reported.
	play *streaming.Session

	mu            sync.Mutex
	have          *content.Bitfield
	inflight      map[int]int
	pendingReq    map[*swarmConn]int
	pendingAt     map[*swarmConn]time.Time
	conns         map[*swarmConn]bool
	candidates    []protocol.PeerInfo
	dialed        map[id.GUID]bool
	bytesInfra    int64
	bytesPeers    int64
	fromPeers     map[id.GUID]int64
	peersReturned int
	queried       bool
	corrupt       int
	// avail counts how many connected uploaders hold each piece, feeding
	// the window scheduler's rarest-first tail.
	avail []int
	// edgeUrgent marks pieces the edge fetched while they sat in the
	// urgent playback window: edge-rescue bytes in the stream metrics.
	edgeUrgent map[int]bool
	state      downloadState
	outcome    protocol.Outcome
	pauseCh    chan struct{} // closed while running; replaced when paused
	// p2pOff is set when the download degrades to edge-only: the stall
	// watchdog declared the swarm dead, or corruption crossed the limit.
	p2pOff bool
	// lastPeerPiece is when a peer last delivered a verified piece; the
	// stall watchdog measures swarm liveness against it.
	lastPeerPiece time.Time

	doneCh   chan struct{}
	reported bool
}

// Download starts downloading an object. It returns immediately with a
// handle; use Wait for completion. Downloads of objects already in progress
// return the existing handle.
func (c *Client) Download(oid content.ObjectID) (*Download, error) {
	return c.DownloadWith(oid, DownloadOpts{})
}

// DownloadWith starts a download with explicit options.
func (c *Client) DownloadWith(oid content.ObjectID, opts DownloadOpts) (*Download, error) {
	c.mu.Lock()
	if d := c.downloads[oid]; d != nil {
		c.mu.Unlock()
		return d, nil
	}
	c.mu.Unlock()

	trace := telemetry.NewTrace("download", oid.String())
	endAuth := trace.StartStage(telemetry.StageAuthorize)
	auth, err := c.edge.Authorize(c.cfg.GUID, oid)
	endAuth()
	if err != nil {
		return nil, fmt.Errorf("peer: authorize: %w", err)
	}
	endManifest := trace.StartStage(telemetry.StageManifest)
	m, err := c.manifest(oid)
	endManifest()
	if err != nil {
		return nil, fmt.Errorf("peer: manifest: %w", err)
	}
	d := &Download{
		c:          c,
		oid:        oid,
		manifest:   m,
		token:      auth.Token,
		p2p:        auth.P2P,
		opts:       opts,
		start:      time.Now(),
		rng:        rand.New(rand.NewSource(time.Now().UnixNano())),
		trace:      trace,
		sched:      schedulerFor(opts),
		inflight:   make(map[int]int),
		pendingReq: make(map[*swarmConn]int),
		pendingAt:  make(map[*swarmConn]time.Time),
		conns:      make(map[*swarmConn]bool),
		dialed:     make(map[id.GUID]bool),
		fromPeers:  make(map[id.GUID]int64),
		pauseCh:    closedChan(),
		doneCh:     make(chan struct{}),
	}
	// Resume support: start from whatever the store already holds.
	if bf := c.store.Have(oid); bf != nil {
		d.have = bf
	} else {
		d.have = content.NewBitfield(m.Object.NumPieces())
	}
	if opts.resumeP2POff {
		d.p2pOff = true
	}
	d.avail = make([]int, d.have.Len())
	if opts.Streaming != nil && opts.Streaming.BitrateBps > 0 {
		obj := m.Object
		sess, err := streaming.NewSession(*opts.Streaming, obj.NumPieces(),
			obj.PieceSize, obj.Size, d.start.UnixMilli())
		if err != nil {
			return nil, fmt.Errorf("peer: streaming: %w", err)
		}
		d.play = sess
		d.edgeUrgent = make(map[int]bool)
		// Pieces already on disk (resume) count for the playback clock.
		n := d.have.Len()
		for i := 0; i < n; i++ {
			if d.have.Has(i) {
				sess.OnPiece(i, d.start.UnixMilli())
			}
		}
		c.metrics.streamSessions.Inc()
	}

	c.mu.Lock()
	if existing := c.downloads[oid]; existing != nil {
		c.mu.Unlock()
		return existing, nil
	}
	c.downloads[oid] = d
	c.mu.Unlock()

	if d.have.Complete() {
		// Already fully cached; finish immediately.
		go d.finish(protocol.OutcomeCompleted)
	} else {
		c.saveCheckpoint(d)
		go d.edgeLoop()
		if d.play != nil {
			go d.playbackLoop()
		}
		if d.p2p && !d.p2pOff {
			d.lastPeerPiece = time.Now()
			go d.peerLoop()
			if c.cfg.StallWindow > 0 {
				go d.watchdog()
			}
		}
	}
	return d, nil
}

// playbackLoop ticks the playback clock so stalls are observed as they
// happen, not only when the next piece arrives. It runs for the life of
// the download regardless of swarm health — a degraded, edge-only
// transfer still has a viewer watching it.
func (d *Download) playbackLoop() {
	t := time.NewTicker(20 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-d.doneCh:
			return
		case now := <-t.C:
			d.play.Advance(now.UnixMilli())
		}
	}
}

// StreamMetrics snapshots the playback outcome of a streaming download;
// nil for bulk transfers.
func (d *Download) StreamMetrics() *streaming.Metrics {
	if d.play == nil {
		return nil
	}
	m := d.play.Metrics(time.Now().UnixMilli())
	return &m
}

func closedChan() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// Object returns the object being downloaded.
func (d *Download) Object() content.Object { return d.manifest.Object }

// Trace returns the download's lifecycle trace.
func (d *Download) Trace() *telemetry.Trace { return d.trace }

// Wait blocks until the download reaches a terminal state or the context is
// cancelled; cancellation aborts the download.
func (d *Download) Wait(ctx context.Context) (*Result, error) {
	select {
	case <-d.doneCh:
	case <-ctx.Done():
		d.Abort()
		<-d.doneCh
	}
	return d.result(), nil
}

func (d *Download) result() *Result {
	d.mu.Lock()
	defer d.mu.Unlock()
	fp := make(map[id.GUID]int64, len(d.fromPeers))
	for g, b := range d.fromPeers {
		fp[g] = b
	}
	r := &Result{
		Object:        d.oid,
		Outcome:       d.outcome,
		BytesInfra:    d.bytesInfra,
		BytesPeers:    d.bytesPeers,
		FromPeers:     fp,
		PeersReturned: d.peersReturned,
		Duration:      time.Since(d.start),
	}
	if d.play != nil {
		m := d.play.Metrics(time.Now().UnixMilli())
		r.Stream = &m
	}
	return r
}

// Pause suspends the download; in-flight pieces complete, then activity
// stops. Users "can pause and resume downloads" (§3.3).
func (d *Download) Pause() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != stateRunning {
		return
	}
	d.state = statePaused
	d.pauseCh = make(chan struct{})
}

// Resume continues a paused download.
func (d *Download) Resume() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != statePaused {
		return
	}
	d.state = stateRunning
	// The swarm was idle on purpose while paused; give it a fresh stall
	// window instead of degrading immediately.
	d.lastPeerPiece = time.Now()
	close(d.pauseCh)
}

// Degraded reports whether the download disabled p2p and fell back to
// edge-only delivery.
func (d *Download) Degraded() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.p2pOff
}

// Abort terminates the download; the log will show it as aborted/paused and
// never resumed.
func (d *Download) Abort() { d.finish(protocol.OutcomeAborted) }

// Progress returns verified and total piece counts.
func (d *Download) Progress() (havePieces, totalPieces int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.have.Count(), d.have.Len()
}

// running reports whether work should proceed, blocking while paused.
func (d *Download) running() bool {
	d.mu.Lock()
	state := d.state
	pause := d.pauseCh
	d.mu.Unlock()
	switch state {
	case stateDone:
		return false
	case statePaused:
		select {
		case <-pause:
			return d.running()
		case <-d.doneCh:
			return false
		}
	}
	return true
}

// takeEdgePiece picks the next piece for the edge connection: the first
// missing piece nobody is fetching. When only in-flight pieces remain and
// the swarm has stalled, the edge duplicates an in-flight piece — the
// backstop that makes progress independent of peers ("if a peer is 'unlucky'
// and picks peers that are slow or unreliable, the infrastructure can cover
// the difference", §3.3).
func (d *Download) takeEdgePiece(allowDup bool) int {
	// For streaming downloads the edge serves the urgent playback window
	// first: it is the rescue path for pieces no peer can deliver by
	// their deadline. Window bounds are read before taking d.mu (session
	// has its own lock).
	winLo, winHi := -1, -1
	if d.play != nil {
		winLo, winHi = d.play.Window()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	n := d.have.Len()
	take := func(i int) int {
		d.inflight[i]++
		if d.play != nil && i >= winLo && i < winHi {
			d.edgeUrgent[i] = true
		}
		return i
	}
	for i := winLo; i >= 0 && i < winHi; i++ {
		if !d.have.Has(i) && d.inflight[i] == 0 {
			return take(i)
		}
	}
	fallback := -1
	for i := 0; i < n; i++ {
		if d.have.Has(i) {
			continue
		}
		if d.inflight[i] == 0 {
			return take(i)
		}
		if fallback < 0 {
			fallback = i
		}
	}
	if allowDup && fallback >= 0 {
		return take(fallback)
	}
	return -1
}

func (d *Download) releaseInflight(i int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.inflight[i] > 1 {
		d.inflight[i]--
	} else {
		delete(d.inflight, i)
	}
}

// edgeLoop downloads pieces over HTTP until the object completes or the
// download ends.
func (d *Download) edgeLoop() {
	stall := 0
	bo := &retry.Backoff{Base: 200 * time.Millisecond, Max: 5 * time.Second}
	for d.running() {
		idx := d.takeEdgePiece(stall > 5)
		if idx < 0 {
			d.mu.Lock()
			complete := d.have.Complete()
			d.mu.Unlock()
			if complete {
				return
			}
			stall++
			select {
			case <-d.doneCh:
				return
			case <-time.After(100 * time.Millisecond):
			}
			continue
		}
		stall = 0
		fetchStart := time.Now()
		data, err := d.c.edge.FetchPiece(d.manifest, d.token, idx)
		d.releaseInflight(idx)
		if err == nil {
			el := time.Since(fetchStart)
			d.c.metrics.edgeFetchMs.Observe(float64(el) / float64(time.Millisecond))
			d.trace.Observe(telemetry.StageEdgeFetch, el)
		}
		if err != nil {
			d.c.logf("edge fetch piece %d: %v", idx, err)
			d.c.metrics.retriesEdge.Inc()
			select {
			case <-d.doneCh:
				return
			case <-time.After(bo.Next()):
			}
			continue
		}
		bo.Reset()
		d.storeVerified(idx, data, id.GUID{}, true)
	}
}

// peerLoop manages swarm membership: it queries the control plane for
// candidates and dials them, issuing "additional queries ... until a
// sufficient number of peer connections succeed" (§3.7).
func (d *Download) peerLoop() {
	lastQuery := time.Time{}
	for d.running() {
		d.mu.Lock()
		complete := d.have.Complete()
		off := d.p2pOff
		nConns := len(d.conns)
		var cand protocol.PeerInfo
		haveCand := false
		if len(d.candidates) > 0 {
			cand = d.candidates[0]
			d.candidates = d.candidates[1:]
			haveCand = true
		}
		needQuery := !haveCand && nConns < d.c.cfg.MaxPeerConnsPerDownload &&
			time.Since(lastQuery) > d.c.cfg.RequeryInterval
		d.mu.Unlock()
		if complete || off {
			return
		}
		switch {
		case haveCand:
			d.dialCandidate(cand)
		case needQuery:
			lastQuery = time.Now()
			qr, err := d.c.control.query(d.oid, d.token, 40, 5*time.Second)
			if err != nil {
				d.c.logf("peer query: %v", err)
				break
			}
			el := time.Since(lastQuery)
			d.c.metrics.peerLookupMs.Observe(float64(el) / float64(time.Millisecond))
			d.trace.Observe(telemetry.StagePeerLookup, el)
			d.mu.Lock()
			if !d.queried {
				d.queried = true
				d.peersReturned = len(qr.Peers)
			}
			for _, p := range qr.Peers {
				if !d.dialed[p.GUID] && p.GUID != d.c.cfg.GUID &&
					!d.c.peerBlacklisted(p.GUID) {
					d.candidates = append(d.candidates, p)
				}
			}
			d.mu.Unlock()
		}
		select {
		case <-d.doneCh:
			return
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func (d *Download) dialCandidate(p protocol.PeerInfo) {
	if d.c.peerBlacklisted(p.GUID) {
		return
	}
	d.mu.Lock()
	if d.dialed[p.GUID] || len(d.conns) >= d.c.cfg.MaxPeerConnsPerDownload {
		d.mu.Unlock()
		return
	}
	d.dialed[p.GUID] = true
	d.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	d.c.metrics.swarmDials.Inc()
	dialStart := time.Now()
	if _, err := d.c.dialSwarm(ctx, d, p); err != nil {
		d.c.metrics.swarmDialErrors.Inc()
		d.c.logf("swarm dial %s: %v", p.Addr, err)
		// Quarantine the peer, but un-mark it as dialed so that once the
		// blacklist entry decays a later query may retry it (§3.7: keep
		// trying "until a sufficient number of peer connections succeed").
		d.c.blacklistPeer(p.GUID)
		d.mu.Lock()
		delete(d.dialed, p.GUID)
		d.mu.Unlock()
		return
	}
	d.trace.Observe(telemetry.StageSwarmConnect, time.Since(dialStart))
}

// addCandidate feeds a control-plane-suggested peer into the dial queue.
func (d *Download) addCandidate(p protocol.PeerInfo) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.p2pOff {
		return
	}
	if !d.dialed[p.GUID] && p.GUID != d.c.cfg.GUID {
		d.candidates = append(d.candidates, p)
	}
}

// attachConn adds an established swarm connection to the download; it
// reports false when the download no longer takes peers (degraded to
// edge-only or done), in which case the caller must close the connection.
func (d *Download) attachConn(sc *swarmConn) bool {
	d.mu.Lock()
	if d.p2pOff || d.state == stateDone {
		d.mu.Unlock()
		return false
	}
	d.conns[sc] = true
	d.pendingReq[sc] = -1
	d.mu.Unlock()
	return true
}

func (d *Download) removeConn(sc *swarmConn) {
	bf := sc.remoteBitfield()
	d.mu.Lock()
	if idx, ok := d.pendingReq[sc]; ok && idx >= 0 {
		if d.inflight[idx] > 1 {
			d.inflight[idx]--
		} else {
			delete(d.inflight, idx)
		}
	}
	if d.conns[sc] && bf != nil {
		n := len(d.avail)
		for i := 0; i < n; i++ {
			if bf.Has(i) && d.avail[i] > 0 {
				d.avail[i]--
			}
		}
	}
	delete(d.pendingReq, sc)
	delete(d.pendingAt, sc)
	delete(d.conns, sc)
	d.mu.Unlock()
}

// noteRemoteBitfield and noteRemoteHave maintain per-piece availability
// counts over currently-attached uploaders — the signal behind the window
// scheduler's rarest-first tail. The counts are a best-effort heuristic
// (a racing disconnect can skew one by a unit, hence the clamps), which
// is all rarest-first needs.
func (d *Download) noteRemoteBitfield(sc *swarmConn, old, bf *content.Bitfield) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.conns[sc] {
		return
	}
	n := len(d.avail)
	for i := 0; i < n; i++ {
		if old != nil && old.Has(i) && d.avail[i] > 0 {
			d.avail[i]--
		}
		if bf.Has(i) {
			d.avail[i]++
		}
	}
}

func (d *Download) noteRemoteHave(sc *swarmConn, idx int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.conns[sc] || idx < 0 || idx >= len(d.avail) {
		return
	}
	d.avail[idx]++
}

// kickScheduler issues the next piece request on a connection that has no
// outstanding request. One outstanding request per connection keeps the
// implementation simple while still filling multi-peer pipelines.
func (d *Download) kickScheduler(sc *swarmConn) {
	if !d.running() {
		return
	}
	remote := sc.remoteBitfield()
	if remote == nil {
		return
	}
	d.mu.Lock()
	if d.state != stateRunning || d.p2pOff || !d.conns[sc] {
		d.mu.Unlock()
		return
	}
	if idx, ok := d.pendingReq[sc]; ok && idx >= 0 {
		d.mu.Unlock()
		return // request already outstanding
	}
	// The scheduler sees a point-in-time view; the closures read maps
	// guarded by d.mu, which is held for the whole decision.
	pick := d.sched.NextPiece(&streaming.PieceView{
		Have:     d.have,
		Remote:   remote,
		InFlight: func(i int) bool { return d.inflight[i] > 0 },
		Avail:    func(i int) int { return d.avail[i] },
		Rand:     d.rng,
		Session:  d.play,
	})
	if pick < 0 {
		// End-game: few pieces left, all in flight; duplicate one that the
		// remote has so a slow source cannot stall completion.
		missing := d.have.Missing(8)
		for _, i := range missing {
			if remote.Has(i) {
				pick = i
				break
			}
		}
		if pick < 0 {
			d.mu.Unlock()
			return
		}
	}
	d.inflight[pick]++
	d.pendingReq[sc] = pick
	d.pendingAt[sc] = time.Now()
	d.mu.Unlock()
	if err := sc.send(&protocol.Request{Index: uint32(pick)}); err != nil {
		d.releaseInflight(pick)
		d.mu.Lock()
		d.pendingReq[sc] = -1
		d.mu.Unlock()
	}
}

// onPiece handles a piece arriving from a swarm connection.
func (d *Download) onPiece(sc *swarmConn, idx int, data []byte) {
	d.mu.Lock()
	if cur, ok := d.pendingReq[sc]; ok && cur == idx {
		d.pendingReq[sc] = -1
		if at, ok := d.pendingAt[sc]; ok {
			el := time.Since(at)
			delete(d.pendingAt, sc)
			d.c.metrics.peerPieceMs.Observe(float64(el) / float64(time.Millisecond))
			d.trace.Observe(telemetry.StagePieceTransfer, el)
		}
		if d.inflight[idx] > 1 {
			d.inflight[idx]--
		} else {
			delete(d.inflight, idx)
		}
	}
	d.mu.Unlock()
	if err := d.manifest.Verify(idx, data); err != nil {
		// "If a peer cannot validate a file piece, it discards the piece
		// and does not upload it to other peers" (§3.5).
		d.mu.Lock()
		d.corrupt++
		tooMany := d.corrupt > d.c.cfg.CorruptPieceLimit
		d.mu.Unlock()
		sc.mu.Lock()
		sc.corrupt++
		badPeer := sc.corrupt >= 3
		sc.mu.Unlock()
		d.c.metrics.corruptPieces.Inc()
		d.c.logf("corrupt piece %d from %s", idx, sc.remote.Short())
		d.c.reportProblem("piece-corrupt",
			fmt.Sprintf("object %v piece %d from peer %s", d.oid, idx, sc.remote.Short()))
		if badPeer {
			// A peer that repeatedly fails verification is broken or
			// hostile; drop it and let the edge (and honest peers) cover.
			sc.send(&protocol.Goodbye{Reason: "verification failures"})
			sc.close()
			return
		}
		if tooMany {
			// Corruption across many sources: the swarm as a whole cannot
			// be trusted for this object. Rather than failing the
			// download, fall back to the edge, which always serves
			// verified content — "the infrastructure can cover the
			// difference" (§3.3).
			d.disableP2P("corruption")
			return
		}
		d.kickScheduler(sc)
		return
	}
	d.storeVerified(idx, data, sc.remote, false)
	d.kickScheduler(sc)
}

// watchdog watches for a dead swarm: a download that is running with p2p
// enabled but has received no verified peer piece for a full StallWindow is
// being strung along by stalled, slow or lying peers; it degrades to
// edge-only so the edge backstop finishes the job (§3.3).
func (d *Download) watchdog() {
	window := d.c.cfg.StallWindow
	t := time.NewTicker(window / 4)
	defer t.Stop()
	for {
		select {
		case <-d.doneCh:
			return
		case <-t.C:
		}
		d.mu.Lock()
		stalled := d.state == stateRunning && !d.p2pOff &&
			time.Since(d.lastPeerPiece) > window
		off := d.p2pOff
		d.mu.Unlock()
		if off {
			return
		}
		if stalled {
			d.disableP2P("stall")
			return
		}
	}
}

// disableP2P degrades the download to edge-only: no new peers are dialed or
// accepted, existing swarm connections close, and the edge loop finishes
// the object alone. This is the bottom rung of the degradation ladder — the
// paper's guarantee that peer trouble costs efficiency, never the download.
func (d *Download) disableP2P(reason string) {
	d.mu.Lock()
	if d.p2pOff || d.state == stateDone {
		d.mu.Unlock()
		return
	}
	d.p2pOff = true
	d.candidates = nil
	conns := make([]*swarmConn, 0, len(d.conns))
	for sc := range d.conns {
		conns = append(conns, sc)
	}
	d.mu.Unlock()
	for _, sc := range conns {
		sc.send(&protocol.Goodbye{Reason: "p2p disabled: " + reason})
		sc.close()
	}
	switch reason {
	case "stall":
		d.c.metrics.degradeStall.Inc()
	case "corruption":
		d.c.metrics.degradeCorrupt.Inc()
	}
	d.trace.Event("p2p-degraded", reason)
	// Persist the degradation so a post-crash resume stays edge-only.
	d.c.saveCheckpoint(d)
	d.c.logf("download %v degraded to edge-only (%s)", d.oid, reason)
	d.c.reportProblem("p2p-degraded",
		fmt.Sprintf("object %v reason %s", d.oid, reason))
}

// storeVerified persists a verified piece, updates accounting, announces it
// to the swarm, and completes the download when it was the last piece.
func (d *Download) storeVerified(idx int, data []byte, from id.GUID, infra bool) {
	d.mu.Lock()
	if d.state == stateDone {
		d.mu.Unlock()
		return
	}
	dup := d.have.Has(idx)
	d.mu.Unlock()
	if dup {
		return // end-game duplicate; drop silently
	}
	if err := d.c.store.Put(d.manifest, idx, data); err != nil {
		// The piece verified but storage failed: a user-side problem
		// (e.g. the disk is full), a "failed (other)" outcome in §5.2.
		d.c.logf("store piece %d: %v", idx, err)
		d.finish(protocol.OutcomeFailedOther)
		return
	}
	d.mu.Lock()
	if d.have.Has(idx) {
		d.mu.Unlock()
		return
	}
	d.have.Set(idx)
	rescue := false
	if infra {
		d.bytesInfra += int64(len(data))
		if d.edgeUrgent[idx] {
			delete(d.edgeUrgent, idx)
			rescue = true
		}
	} else {
		d.bytesPeers += int64(len(data))
		d.fromPeers[from] += int64(len(data))
		d.lastPeerPiece = time.Now()
	}
	haveCount := d.have.Count()
	total := d.have.Len()
	complete := d.have.Complete()
	conns := make([]*swarmConn, 0, len(d.conns))
	for sc := range d.conns {
		conns = append(conns, sc)
	}
	d.mu.Unlock()
	if infra {
		d.c.metrics.piecesEdge.Inc()
		d.c.metrics.bytesDownEdge.Add(int64(len(data)))
	} else {
		d.c.metrics.piecesPeers.Inc()
		d.c.metrics.bytesDownPeers.Add(int64(len(data)))
	}
	if d.play != nil {
		d.play.OnPiece(idx, time.Now().UnixMilli())
		if rescue {
			d.play.AddEdgeRescue(int64(len(data)))
			d.c.metrics.streamEdgeRescueBytes.Add(int64(len(data)))
		}
	}
	// The piece is durable; make the progress record durable too, so a crash
	// from here on costs at most the pieces still in flight.
	d.c.saveCheckpoint(d)
	for _, sc := range conns {
		sc.send(&protocol.Have{Index: uint32(idx)})
	}
	// Partially downloaded objects are already shareable: the DN tracks
	// partial holders (Register carries HaveCount, §3.6). Announce at each
	// quarter so concurrent downloaders of a hot object find each other
	// mid-swarm.
	if !complete && d.c.prefs.UploadsEnabled() && total >= 8 {
		quarter := total / 4
		if quarter > 0 && haveCount%quarter == 0 {
			d.c.control.send(&protocol.Register{
				Object:    d.oid,
				NumPieces: uint32(total),
				HaveCount: uint32(haveCount),
				Complete:  false,
			})
		}
	}
	if complete {
		d.finish(protocol.OutcomeCompleted)
	}
}

// finish moves the download to a terminal state exactly once, reports the
// usage record, registers the completed object for upload, and cleans up.
func (d *Download) finish(outcome protocol.Outcome) {
	d.mu.Lock()
	if d.state == stateDone {
		d.mu.Unlock()
		return
	}
	if d.state == statePaused {
		close(d.pauseCh)
	}
	d.state = stateDone
	d.outcome = outcome
	conns := make([]*swarmConn, 0, len(d.conns))
	for sc := range d.conns {
		conns = append(conns, sc)
	}
	d.mu.Unlock()

	for _, sc := range conns {
		sc.send(&protocol.Goodbye{Reason: "download finished"})
		sc.close()
	}
	if outcome == protocol.OutcomeFailedSystem {
		d.c.reportProblem("download-failed-system", d.oid.String())
	}

	d.c.mu.Lock()
	if d.c.downloads[d.oid] == d {
		delete(d.c.downloads, d.oid)
	}
	d.c.mu.Unlock()

	d.c.metrics.downloadOutcome(outcome.String()).Inc()
	if d.play != nil {
		m := d.play.Metrics(time.Now().UnixMilli())
		d.c.metrics.streamStartupMs.Observe(float64(m.StartupDelayMs))
		d.c.metrics.streamRebuffers.Add(m.RebufferCount)
		d.c.metrics.streamRebufferMs.Add(m.RebufferMs)
		d.c.metrics.streamDeadlineMisses.Add(m.DeadlineMisses)
	}
	d.trace.Event("outcome", outcome.String())
	d.trace.End()
	d.c.traces.Add(d.trace)

	d.report()
	if outcome == protocol.OutcomeCompleted {
		// Only completion retires the checkpoint: an aborted download stays
		// resumable across restarts ("continue downloads that were aborted
		// earlier", §3.3).
		d.c.removeCheckpoint(d.oid)
		d.c.markCached(d.oid)
	}
	if outcome == protocol.OutcomeCompleted && d.c.prefs.UploadsEnabled() {
		bf := d.c.store.Have(d.oid)
		if bf != nil && bf.Count() > 0 {
			d.c.control.send(&protocol.Register{
				Object:    d.oid,
				NumPieces: uint32(bf.Len()),
				HaveCount: uint32(bf.Count()),
				Complete:  bf.Complete(),
			})
		}
	}
	close(d.doneCh)
}

// kill terminates the download the way a process death would: swarm
// connections drop without a Goodbye, no statistics report is sent, and the
// checkpoint stays on disk so a restart resumes the transfer. Only the
// in-process crash tests use it.
func (d *Download) kill() {
	d.mu.Lock()
	if d.state == stateDone {
		d.mu.Unlock()
		return
	}
	if d.state == statePaused {
		close(d.pauseCh)
	}
	d.state = stateDone
	d.outcome = protocol.OutcomeAborted
	d.reported = true // a dead process reports nothing
	conns := make([]*swarmConn, 0, len(d.conns))
	for sc := range d.conns {
		conns = append(conns, sc)
	}
	d.mu.Unlock()
	for _, sc := range conns {
		sc.close()
	}
	d.c.mu.Lock()
	if d.c.downloads[d.oid] == d {
		delete(d.c.downloads, d.oid)
	}
	d.c.mu.Unlock()
	close(d.doneCh)
}

// report uploads the usage statistics record for billing (§3.4).
func (d *Download) report() {
	d.mu.Lock()
	if d.reported {
		d.mu.Unlock()
		return
	}
	d.reported = true
	rep := &protocol.StatsReport{
		Object:        d.oid,
		URLHash:       d.manifest.Object.URL,
		CP:            uint32(d.manifest.Object.CP),
		Size:          uint64(d.manifest.Object.Size),
		StartUnixMs:   d.start.UnixMilli(),
		EndUnixMs:     time.Now().UnixMilli(),
		BytesInfra:    uint64(d.bytesInfra),
		BytesPeers:    uint64(d.bytesPeers),
		Outcome:       d.outcome,
		PeersReturned: uint16(d.peersReturned),
		Token:         d.token,
	}
	for g, b := range d.fromPeers {
		rep.FromPeers = append(rep.FromPeers, protocol.PeerBytes{GUID: g, Bytes: uint64(b)})
	}
	if d.play != nil {
		m := d.play.Metrics(time.Now().UnixMilli())
		rep.Stream = &protocol.StreamStats{
			BitrateBps:      uint64(m.BitrateBps),
			StartupDelayMs:  uint64(m.StartupDelayMs),
			RebufferCount:   uint32(m.RebufferCount),
			RebufferMs:      uint64(m.RebufferMs),
			DeadlineMisses:  uint32(m.DeadlineMisses),
			PiecesPlayed:    uint32(m.PiecesPlayed),
			PiecesTotal:     uint32(m.PiecesTotal),
			EdgeRescueBytes: uint64(m.EdgeRescueBytes),
		}
	}
	d.mu.Unlock()
	// With the log pipeline on, the record goes to the durable spool and the
	// uploader ships it in a batch; otherwise it rides the control connection
	// in-band. Never both — the collector must see each download once.
	if d.c.spool != nil {
		if err := d.c.spool.Append(entryFromStats(d.c, rep)); err != nil {
			d.c.logf("log spool append failed, falling back to in-band report: %v", err)
			d.c.control.send(rep)
		}
		return
	}
	d.c.control.send(rep)
}

// entryFromStats renders a stats report in the log pipeline's wire schema.
func entryFromStats(c *Client, rep *protocol.StatsReport) *logpipe.Entry {
	e := &logpipe.Entry{
		Kind:          logpipe.EntryKindDownload,
		GUID:          c.cfg.GUID.String(),
		IP:            c.cfg.DeclaredIP,
		Object:        logpipe.EncodeObjectID(rep.Object),
		URLHash:       rep.URLHash,
		CP:            rep.CP,
		Size:          int64(rep.Size),
		StartMs:       rep.StartUnixMs,
		EndMs:         rep.EndUnixMs,
		BytesInfra:    int64(rep.BytesInfra),
		BytesPeers:    int64(rep.BytesPeers),
		Outcome:       uint8(rep.Outcome),
		PeersReturned: int(rep.PeersReturned),
		Token:         rep.Token,
	}
	for _, pb := range rep.FromPeers {
		e.FromPeers = append(e.FromPeers, logpipe.EntryContribution{
			GUID: pb.GUID.String(), Bytes: int64(pb.Bytes),
		})
	}
	if rep.Stream != nil {
		e.Stream = &logpipe.EntryStream{
			BitrateBps:      int64(rep.Stream.BitrateBps),
			StartupDelayMs:  int64(rep.Stream.StartupDelayMs),
			RebufferCount:   int64(rep.Stream.RebufferCount),
			RebufferMs:      int64(rep.Stream.RebufferMs),
			DeadlineMisses:  int64(rep.Stream.DeadlineMisses),
			PiecesPlayed:    int64(rep.Stream.PiecesPlayed),
			PiecesTotal:     int64(rep.Stream.PiecesTotal),
			EdgeRescueBytes: int64(rep.Stream.EdgeRescueBytes),
		}
	}
	return e
}
