package peer

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"netsession/internal/content"
	"netsession/internal/id"
	"netsession/internal/protocol"
	"netsession/internal/retry"
)

// controlConn maintains the persistent TCP connection to the control plane:
// "Whenever the NetSession Interface is active and the peer is online, it
// maintains a TCP connection to the control plane" (§3.4). It reconnects
// with jittered backoff and honours the control plane's retry-after during
// large-scale recovery (§3.8).
type controlConn struct {
	c *Client

	mu      sync.Mutex
	conn    net.Conn
	connUp  bool
	sawUp   bool // the current session reached connUp at least once
	stopped bool
	// lastGoodAddr is the CN address of the most recent accepted login. It
	// is tried first on reconnect (the peer sticks to its CN until the CN
	// fails, §3.4) and may be a redirect target outside the configured list.
	lastGoodAddr string
	waiters      map[content.ObjectID][]chan *protocol.QueryResult
	// retryAfter is the server-directed minimum reconnect delay from a
	// rejected login ("reconnections can be rate-limited", §3.8).
	retryAfter time.Duration

	stopCh chan struct{}
	wg     sync.WaitGroup
}

func newControlConn(c *Client) *controlConn {
	return &controlConn{
		c:       c,
		waiters: make(map[content.ObjectID][]chan *protocol.QueryResult),
		stopCh:  make(chan struct{}),
	}
}

// start dials the control plane once synchronously (so callers get a fast
// failure on misconfiguration) and then keeps the session alive in the
// background. A control plane that is up but shedding load is not a
// misconfiguration: the client starts anyway and retries in the background,
// honouring the server's retry-after.
func (cc *controlConn) start() error {
	conn, err := cc.dialAndLogin()
	if err != nil {
		var shed *shedError
		if !errors.As(err, &shed) {
			return fmt.Errorf("%w: %v", ErrControlUnavailable, err)
		}
		conn = nil
	}
	cc.wg.Add(1)
	go cc.run(conn)
	return nil
}

func (cc *controlConn) stop() {
	cc.mu.Lock()
	if cc.stopped {
		cc.mu.Unlock()
		return
	}
	cc.stopped = true
	conn := cc.conn
	cc.mu.Unlock()
	close(cc.stopCh)
	if conn != nil {
		conn.Close()
	}
	cc.wg.Wait()
}

func (cc *controlConn) connected() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.connUp
}

// ErrControlUnavailable wraps connect failures where no configured control
// plane address produced a session. Launchers can match it with errors.Is to
// keep retrying startup while a cluster comes up.
var ErrControlUnavailable = errors.New("peer: control plane unavailable")

// shedError is a login the control plane rejected to rate-limit recovery
// ("reconnections can be rate-limited", §3.8). It aborts the dial round —
// hopping to the next CN would just shift the stampede sideways.
type shedError struct{ retryAfter time.Duration }

func (e *shedError) Error() string {
	return fmt.Sprintf("peer: control plane shedding load (retry after %v)", e.retryAfter)
}

// maxLoginRedirects bounds redirect chases during a handoff, when two nodes
// may transiently each believe the other owns the region.
const maxLoginRedirects = 4

// dialAndLogin opens a session with any configured CN, starting from the
// address that last accepted us — "simply reconnects to another one" (§3.8)
// — and following login redirects to a region's current owner.
func (cc *controlConn) dialAndLogin() (net.Conn, error) {
	cc.mu.Lock()
	last := cc.lastGoodAddr
	cc.mu.Unlock()
	addrs := make([]string, 0, len(cc.c.cfg.ControlAddrs)+1)
	if last != "" {
		addrs = append(addrs, last)
	}
	for _, a := range cc.c.cfg.ControlAddrs {
		if a != last {
			addrs = append(addrs, a)
		}
	}
	var lastErr error
	for _, addr := range addrs {
		conn, err := cc.loginAt(addr, 0)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		var shed *shedError
		if errors.As(err, &shed) {
			return nil, err
		}
	}
	if lastErr == nil {
		lastErr = errors.New("no control plane addresses")
	}
	return nil, fmt.Errorf("peer: control connect: %w", lastErr)
}

// loginAt dials one CN and completes the login handshake synchronously, so
// the caller knows whether this address actually accepted the session before
// committing to it. A rejected login with a RedirectAddr is chased to the
// region's owner; a rejection without one records the server's retry-after
// and aborts the round via shedError.
func (cc *controlConn) loginAt(addr string, hops int) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	cc.c.secMu.Lock()
	secs := cc.c.secondaries.Window
	cc.c.secMu.Unlock()
	login := &protocol.Login{
		GUID:            cc.c.cfg.GUID,
		Secondaries:     secs,
		SoftwareVersion: cc.c.SoftwareVersion(),
		UploadsEnabled:  cc.c.prefs.UploadsEnabled(),
		SwarmAddr:       cc.c.SwarmAddr(),
		NAT:             cc.c.cfg.NAT,
		DeclaredIP:      cc.c.cfg.DeclaredIP,
	}
	if err := protocol.WriteMessage(conn, login); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	msg, err := protocol.ReadMessage(conn)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return nil, err
	}
	ack, ok := msg.(*protocol.LoginAck)
	if !ok {
		conn.Close()
		return nil, fmt.Errorf("peer: unexpected %T before login ack", msg)
	}
	if !ack.OK {
		conn.Close()
		if ack.RedirectAddr != "" && ack.RedirectAddr != addr && hops < maxLoginRedirects {
			return cc.loginAt(ack.RedirectAddr, hops+1)
		}
		shed := &shedError{retryAfter: time.Duration(ack.RetryAfterMs) * time.Millisecond}
		cc.mu.Lock()
		cc.retryAfter = shed.retryAfter
		cc.mu.Unlock()
		return nil, shed
	}
	cc.mu.Lock()
	if cc.stopped {
		cc.mu.Unlock()
		conn.Close()
		return nil, errors.New("peer: client closed")
	}
	cc.conn = conn
	cc.connUp = true
	cc.sawUp = true
	prev := cc.lastGoodAddr
	cc.lastGoodAddr = addr
	cc.mu.Unlock()
	if prev != "" && prev != addr {
		cc.c.metrics.cpFailovers.Inc()
	}
	// Re-announce local content after every (re)login; the directory is
	// soft state.
	go cc.c.registerStoredObjects()
	return conn, nil
}

// run services one session at a time, reconnecting until stopped. A peer
// whose CN goes down "simply reconnects to another one" (§3.8); reconnect
// delays grow with jittered exponential backoff — so mass disconnections
// decorrelate instead of stampeding the CNs — and honour the server's
// retry-after, resetting after any session that logged in successfully.
func (cc *controlConn) run(conn net.Conn) {
	defer cc.wg.Done()
	stopPing := cc.startKeepalive()
	defer stopPing()
	bo := &retry.Backoff{Base: 200 * time.Millisecond, Max: 15 * time.Second}
	for {
		cc.readLoop(conn)
		cc.mu.Lock()
		cc.connUp = false
		cc.conn = nil
		sawUp := cc.sawUp
		cc.sawUp = false
		stopped := cc.stopped
		retryAfter := cc.retryAfter
		cc.retryAfter = 0
		cc.mu.Unlock()
		cc.failWaiters()
		if stopped {
			return
		}
		if sawUp {
			// A healthy session existed; this is a fresh outage, not a
			// continuation of the last one.
			bo.Reset()
		}
		wait := bo.Next()
		if retryAfter > wait {
			wait = retryAfter
		}
		select {
		case <-cc.stopCh:
			return
		case <-time.After(wait):
		}
		cc.c.metrics.retriesControl.Inc()
		var err error
		conn, err = cc.dialAndLogin()
		if err != nil {
			cc.c.logf("control reconnect failed: %v", err)
			// A nil conn makes readLoop return immediately, so the loop
			// comes straight back here with a longer backoff.
			conn = nil
		}
	}
}

// startKeepalive pings the control plane periodically so half-dead TCP
// sessions are detected instead of lingering silently.
func (cc *controlConn) startKeepalive() (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(30 * time.Second)
		defer t.Stop()
		var nonce uint64
		for {
			select {
			case <-done:
				return
			case <-cc.stopCh:
				return
			case <-t.C:
				nonce++
				cc.send(&protocol.Ping{Nonce: nonce})
			}
		}
	}()
	return func() { close(done) }
}

func (cc *controlConn) readLoop(conn net.Conn) {
	if conn == nil {
		return
	}
	for {
		// The keepalive guarantees traffic at least every 30s on a healthy
		// session; a silent two-minute gap means the session is dead.
		conn.SetReadDeadline(time.Now().Add(2 * time.Minute))
		msg, err := protocol.ReadMessage(conn)
		if err != nil {
			conn.Close()
			return
		}
		switch m := msg.(type) {
		case *protocol.LoginAck:
			// The handshake is completed synchronously in loginAt; a
			// LoginAck here is the server revoking the session mid-stream
			// (e.g. shedding after a mass reconnect).
			if !m.OK {
				cc.mu.Lock()
				cc.retryAfter = time.Duration(m.RetryAfterMs) * time.Millisecond
				cc.mu.Unlock()
				conn.Close()
				return
			}
		case *protocol.ConfigUpdate:
			cc.c.applyConfig(m)
		case *protocol.QueryResult:
			cc.deliverQueryResult(m)
		case *protocol.ConnectTo:
			cc.c.handleConnectTo(m)
		case *protocol.ReAdd:
			cc.send(&protocol.ReAddReply{Entries: cc.c.reAddEntries()})
		case *protocol.Ping:
			cc.send(&protocol.Pong{Nonce: m.Nonce})
		default:
			// Tolerate unknown messages.
		}
	}
}

// send writes a message on the current session; messages sent while
// disconnected are dropped (the state they carry is soft and re-announced
// on reconnect).
func (cc *controlConn) send(m protocol.Message) {
	cc.mu.Lock()
	conn := cc.conn
	cc.mu.Unlock()
	if conn == nil {
		return
	}
	conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
	if err := protocol.WriteMessage(conn, m); err != nil {
		conn.Close()
	}
}

// query asks the control plane for peers holding an object and waits for
// the result.
func (cc *controlConn) query(oid content.ObjectID, token []byte, maxPeers int, timeout time.Duration) (*protocol.QueryResult, error) {
	ch := make(chan *protocol.QueryResult, 1)
	cc.mu.Lock()
	cc.waiters[oid] = append(cc.waiters[oid], ch)
	cc.mu.Unlock()
	cc.send(&protocol.Query{Object: oid, Token: token, MaxPeers: uint16(maxPeers)})
	select {
	case r := <-ch:
		if r == nil {
			return nil, errors.New("peer: control connection lost during query")
		}
		if r.Err != "" {
			return nil, fmt.Errorf("peer: query rejected: %s", r.Err)
		}
		return r, nil
	case <-time.After(timeout):
		cc.dropWaiter(oid, ch)
		return nil, errors.New("peer: query timed out")
	case <-cc.stopCh:
		return nil, errors.New("peer: client closed")
	}
}

func (cc *controlConn) deliverQueryResult(m *protocol.QueryResult) {
	cc.mu.Lock()
	chans := cc.waiters[m.Object]
	if len(chans) > 0 {
		cc.waiters[m.Object] = chans[1:]
		if len(cc.waiters[m.Object]) == 0 {
			delete(cc.waiters, m.Object)
		}
	}
	cc.mu.Unlock()
	if len(chans) > 0 {
		chans[0] <- m
	}
}

func (cc *controlConn) dropWaiter(oid content.ObjectID, ch chan *protocol.QueryResult) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	list := cc.waiters[oid]
	for i, x := range list {
		if x == ch {
			cc.waiters[oid] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(cc.waiters[oid]) == 0 {
		delete(cc.waiters, oid)
	}
}

// failWaiters releases pending queries when the session drops.
func (cc *controlConn) failWaiters() {
	cc.mu.Lock()
	all := cc.waiters
	cc.waiters = make(map[content.ObjectID][]chan *protocol.QueryResult)
	cc.mu.Unlock()
	for _, chans := range all {
		for _, ch := range chans {
			ch <- nil
		}
	}
}

// applyConfig installs pushed client policy and triggers a background
// self-upgrade when the fleet target version is ahead of ours: "the ability
// to perform fast software upgrades without user interaction can help to
// respond quickly to security or performance incidents" (§3.8).
func (c *Client) applyConfig(m *protocol.ConfigUpdate) {
	c.mu.Lock()
	c.clientCfg.MaxUploadConns = int(m.MaxUploadConns)
	c.clientCfg.PerObjectUploadCap = int(m.PerObjectUploadCap)
	c.clientCfg.UploadRateBps = int64(m.UploadRateBps)
	c.clientCfg.CacheTTLSec = int(m.CacheTTLSec)
	c.uploads.applyConfig(c.clientCfg)
	needsUpgrade := m.TargetVersion != "" && m.TargetVersion != c.cfg.SoftwareVersion
	c.mu.Unlock()
	if needsUpgrade {
		go c.selfUpgrade(m.TargetVersion)
	}
}

// selfUpgrade installs the new version (here: adopts the version string — a
// real client would swap binaries), restarts the process-equivalent state
// (a fresh secondary GUID, like any restart), and re-logs-in so the control
// plane sees the upgraded version.
func (c *Client) selfUpgrade(version string) {
	c.mu.Lock()
	if c.closed || c.cfg.SoftwareVersion == version {
		c.mu.Unlock()
		return
	}
	c.cfg.SoftwareVersion = version
	c.mu.Unlock()
	c.logf("self-upgrading to %s", version)
	c.secMu.Lock()
	c.secondaries.Push(id.NewSecondary())
	c.secMu.Unlock()
	// Drop the control session; the reconnect logic logs in with the new
	// version.
	c.control.mu.Lock()
	conn := c.control.conn
	c.control.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// handleConnectTo reacts to the control plane's instruction to connect to
// another peer. If we are downloading the object, the peer is an extra
// candidate; if we hold the object and serve uploads, we dial back so both
// sides initiate (the hole-punch choreography of §3.7).
func (c *Client) handleConnectTo(m *protocol.ConnectTo) {
	if d := c.activeDownload(m.Object); d != nil {
		d.addCandidate(m.Peer)
		return
	}
	if !c.prefs.UploadsEnabled() {
		return
	}
	if bf := c.store.Have(m.Object); bf != nil && bf.Count() > 0 {
		go c.uploads.dialBack(m.Object, m.Peer)
	}
}
