package peer

import (
	"math/rand"
	"testing"

	"netsession/internal/content"
	"netsession/internal/streaming"
)

// oraclePick re-implements the pre-refactor inline piece choice from
// kickScheduler, verbatim: sequential mode takes the first wanted piece the
// remote offers; the default randomizes among the first 32 eligible using
// the download's seeded RNG. The extracted schedulers must reproduce this
// request order byte for byte — the refactor is behaviour-preserving for
// bulk downloads.
func oraclePick(sequential bool, have, remote *content.Bitfield, inflight map[int]int, rng *rand.Rand) int {
	n := have.Len()
	if sequential {
		for i := 0; i < n; i++ {
			if !have.Has(i) && remote.Has(i) && inflight[i] == 0 {
				return i
			}
		}
		return -1
	}
	var cands []int
	for i := 0; i < n && len(cands) < 32; i++ {
		if !have.Has(i) && remote.Has(i) && inflight[i] == 0 {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return -1
	}
	return cands[rng.Intn(len(cands))]
}

// TestSchedulerMatchesPreRefactorOrder drives the extracted scheduler and
// the oracle through an entire simulated download — pick, mark in flight,
// deliver — and asserts the exact same piece order from identical seeds.
func TestSchedulerMatchesPreRefactorOrder(t *testing.T) {
	cases := []struct {
		name       string
		sequential bool
		pieces     int
		remoteGaps int // every k-th piece missing at the remote
		window     int // picks in flight before the oldest arrives
		seed       int64
	}{
		{name: "sequential/full-remote", sequential: true, pieces: 64, window: 1, seed: 1},
		{name: "sequential/sparse-remote", sequential: true, pieces: 64, remoteGaps: 3, window: 4, seed: 2},
		{name: "random/full-remote", pieces: 64, window: 1, seed: 7},
		{name: "random/sparse-remote", pieces: 100, remoteGaps: 5, window: 8, seed: 11},
		{name: "random/pipelined", pieces: 200, window: 16, seed: 42},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			remote := content.NewBitfield(tc.pieces)
			for i := 0; i < tc.pieces; i++ {
				if tc.remoteGaps > 0 && i%tc.remoteGaps == 0 {
					continue
				}
				remote.Set(i)
			}

			var sched PieceScheduler = RandomScheduler{}
			if tc.sequential {
				sched = SequentialScheduler{}
			}

			got := runSchedule(tc.pieces, tc.window, remote, rand.New(rand.NewSource(tc.seed)),
				func(have *content.Bitfield, inflight map[int]int, rng *rand.Rand) int {
					return sched.NextPiece(&streaming.PieceView{
						Have:     have,
						Remote:   remote,
						InFlight: func(i int) bool { return inflight[i] > 0 },
						Rand:     rng,
					})
				})
			want := runSchedule(tc.pieces, tc.window, remote, rand.New(rand.NewSource(tc.seed)),
				func(have *content.Bitfield, inflight map[int]int, rng *rand.Rand) int {
					return oraclePick(tc.sequential, have, remote, inflight, rng)
				})

			if len(got) != len(want) {
				t.Fatalf("picked %d pieces, oracle picked %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("pick %d: scheduler chose %d, pre-refactor logic chose %d\ngot  %v\nwant %v",
						i, got[i], want[i], got, want)
				}
			}
		})
	}
}

// runSchedule replays a download against one remote: keep up to `window`
// requests outstanding, deliver the oldest when the pipeline is full, and
// record every pick until nothing is eligible and nothing is in flight.
func runSchedule(pieces, window int, remote *content.Bitfield, rng *rand.Rand,
	pick func(have *content.Bitfield, inflight map[int]int, rng *rand.Rand) int) []int {
	have := content.NewBitfield(pieces)
	inflight := make(map[int]int)
	var pending []int // FIFO of outstanding requests
	var order []int
	for {
		p := pick(have, inflight, rng)
		if p >= 0 {
			order = append(order, p)
			inflight[p]++
			pending = append(pending, p)
		}
		if p < 0 || len(pending) >= window {
			if len(pending) == 0 {
				return order
			}
			idx := pending[0]
			pending = pending[1:]
			inflight[idx]--
			have.Set(idx)
		}
	}
}

// TestSchedulerForResolution pins the option-to-policy mapping: an explicit
// scheduler wins, a streaming config installs the window policy, the
// Sequential flag keeps its historical meaning, and the default stays the
// randomized picker.
func TestSchedulerForResolution(t *testing.T) {
	if _, ok := schedulerFor(DownloadOpts{Scheduler: SequentialScheduler{}}).(SequentialScheduler); !ok {
		t.Fatalf("explicit scheduler not honored")
	}
	if _, ok := schedulerFor(DownloadOpts{Streaming: &streaming.Config{BitrateBps: 1}}).(streaming.WindowScheduler); !ok {
		t.Fatalf("streaming config did not select WindowScheduler")
	}
	if _, ok := schedulerFor(DownloadOpts{Sequential: true}).(SequentialScheduler); !ok {
		t.Fatalf("Sequential flag did not select SequentialScheduler")
	}
	if _, ok := schedulerFor(DownloadOpts{}).(RandomScheduler); !ok {
		t.Fatalf("default is not RandomScheduler")
	}
}
