package peer

import (
	"context"
	"net"
	"sync"
	"time"

	"netsession/internal/content"
	"netsession/internal/id"
	"netsession/internal/nat"
	"netsession/internal/protocol"
	"netsession/internal/telemetry"
)

// swarmConn is one established swarm connection, scoped to one object as in
// the handshake. Connections are symmetric after the handshake: either side
// may request pieces the other has; NetSession has no choking and no
// tit-for-tat (§3.4).
type swarmConn struct {
	c        *Client
	conn     net.Conn
	remote   id.GUID
	oid      content.ObjectID
	manifest *content.Manifest

	// download is non-nil when the local side is downloading this object.
	download *Download
	// uploadSlot is true when this connection holds an upload-manager slot.
	uploadSlot bool

	mu         sync.Mutex
	remoteHave *content.Bitfield
	corrupt    int // verification failures from this remote
	closed     bool

	wmu sync.Mutex
}

func (sc *swarmConn) send(m protocol.Message) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
	return protocol.WriteMessage(sc.conn, m)
}

func (sc *swarmConn) close() {
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return
	}
	sc.closed = true
	sc.mu.Unlock()
	sc.conn.Close()
	if sc.uploadSlot {
		sc.c.uploads.release(sc)
	}
	if sc.download != nil {
		sc.download.removeConn(sc)
	}
}

// sendLocalBitfield announces what we hold.
func (sc *swarmConn) sendLocalBitfield() {
	bf := sc.c.store.Have(sc.oid)
	if bf == nil {
		bf = content.NewBitfield(sc.manifest.Object.NumPieces())
	}
	sc.send(&protocol.BitfieldMsg{Bits: bf.MarshalBinary()})
}

// acceptSwarmLoop serves the peer's swarm listener.
func (c *Client) acceptSwarmLoop() {
	for {
		conn, err := c.swarmLn.Accept()
		if err != nil {
			return
		}
		go c.handleInbound(conn)
	}
}

// handleInbound processes one inbound swarm connection from handshake to
// close.
func (c *Client) handleInbound(conn net.Conn) {
	accepted := time.Now()
	conn.SetReadDeadline(time.Now().Add(20 * time.Second))
	msg, err := protocol.ReadMessage(conn)
	if err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	hs, ok := msg.(*protocol.Handshake)
	if !ok {
		conn.Close()
		return
	}
	sc := &swarmConn{c: c, conn: conn, remote: hs.GUID, oid: hs.Object}

	// Case 1: we are downloading this object and the remote is an uploader
	// dialing back on the control plane's instruction.
	if d := c.activeDownload(hs.Object); d != nil {
		sc.download = d
		sc.manifest = d.manifest
		if err := sc.send(&protocol.HandshakeAck{OK: true, NumPieces: uint32(d.manifest.Object.NumPieces())}); err != nil {
			conn.Close()
			return
		}
		sc.sendLocalBitfield()
		if !d.attachConn(sc) {
			// The download degraded to edge-only while this uploader was
			// dialing back; it takes no new peers.
			sc.send(&protocol.Goodbye{Reason: "p2p disabled"})
			conn.Close()
			return
		}
		// An uploader dialing back on the control plane's instruction is
		// the NAT-traversal half of swarm establishment (§3.7); it counts
		// toward the download's swarm-connect stage like an outbound dial.
		d.trace.Observe(telemetry.StageSwarmConnect, time.Since(accepted))
		sc.loop()
		return
	}

	// Case 2: the remote wants to download from us. The token travels with
	// the handshake; peers got it from the edge at authorization time
	// (§3.5). Uploads require the preference on, a stored copy, and an
	// upload slot under the global and per-object limits.
	if len(hs.Token) == 0 || !c.prefs.UploadsEnabled() {
		sc.send(&protocol.HandshakeAck{OK: false, Reason: "uploads not available"})
		conn.Close()
		return
	}
	m := c.cachedManifest(hs.Object)
	bf := c.store.Have(hs.Object)
	if m == nil || bf == nil || bf.Count() == 0 {
		sc.send(&protocol.HandshakeAck{OK: false, Reason: "object not available"})
		conn.Close()
		return
	}
	if !c.uploads.tryAcquire(sc) {
		sc.send(&protocol.HandshakeAck{OK: false, Reason: "upload limit reached"})
		conn.Close()
		return
	}
	sc.manifest = m
	if err := sc.send(&protocol.HandshakeAck{OK: true, NumPieces: uint32(m.Object.NumPieces())}); err != nil {
		sc.close()
		return
	}
	sc.sendLocalBitfield()
	sc.loop()
}

// dialSwarm establishes an outbound swarm connection for a download.
func (c *Client) dialSwarm(ctx context.Context, d *Download, remote protocol.PeerInfo) (*swarmConn, error) {
	dialer := &nat.Dialer{Local: c.cfg.NAT, Timeout: 5 * time.Second}
	conn, err := dialer.Dial(ctx, remote)
	if err != nil {
		return nil, err
	}
	sc := &swarmConn{
		c: c, conn: conn, remote: remote.GUID, oid: d.oid,
		manifest: d.manifest, download: d,
	}
	if err := sc.send(&protocol.Handshake{GUID: c.cfg.GUID, Object: d.oid, Token: d.token}); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	msg, err := protocol.ReadMessage(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetReadDeadline(time.Time{})
	ack, ok := msg.(*protocol.HandshakeAck)
	if !ok || !ack.OK {
		conn.Close()
		return nil, errHandshakeRejected
	}
	sc.sendLocalBitfield()
	if !d.attachConn(sc) {
		sc.send(&protocol.Goodbye{Reason: "p2p disabled"})
		conn.Close()
		return nil, errHandshakeRejected
	}
	go sc.loop()
	return sc, nil
}

var errHandshakeRejected = &handshakeError{}

type handshakeError struct{}

func (*handshakeError) Error() string { return "peer: swarm handshake rejected" }

// loop services a swarm connection until it closes.
func (sc *swarmConn) loop() {
	defer sc.close()
	for {
		// Idle swarm connections are garbage; cap the read wait.
		sc.conn.SetReadDeadline(time.Now().Add(2 * time.Minute))
		msg, err := protocol.ReadMessage(sc.conn)
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *protocol.BitfieldMsg:
			bf, ok := content.UnmarshalBitfield(sc.manifest.Object.NumPieces(), m.Bits)
			if !ok {
				return // malformed bitfield: drop the peer
			}
			sc.mu.Lock()
			old := sc.remoteHave
			sc.remoteHave = bf
			sc.mu.Unlock()
			if sc.download != nil {
				sc.download.noteRemoteBitfield(sc, old, bf)
				sc.download.kickScheduler(sc)
			}
		case *protocol.Have:
			sc.mu.Lock()
			fresh := sc.remoteHave != nil && !sc.remoteHave.Has(int(m.Index))
			if sc.remoteHave != nil {
				sc.remoteHave.Set(int(m.Index))
			}
			sc.mu.Unlock()
			if sc.download != nil {
				if fresh {
					sc.download.noteRemoteHave(sc, int(m.Index))
				}
				sc.download.kickScheduler(sc)
			}
		case *protocol.Request:
			if !sc.serveRequest(int(m.Index)) {
				return
			}
		case *protocol.Piece:
			if sc.download != nil {
				sc.download.onPiece(sc, int(m.Index), m.Data)
			}
		case *protocol.Cancel:
			// Requests are served synchronously; nothing to cancel.
		case *protocol.Goodbye:
			return
		default:
			return // protocol violation on a swarm connection
		}
	}
}

// serveRequest answers one piece request, honouring the upload rate limit.
// It returns false when the connection should close.
func (sc *swarmConn) serveRequest(index int) bool {
	// Serving requires either an upload slot or an active mutual download
	// (mid-swarm peers exchange pieces both ways).
	if !sc.uploadSlot && sc.download == nil {
		return false
	}
	if !sc.c.prefs.UploadsEnabled() && sc.download == nil {
		// The user turned uploads off mid-connection; stop serving.
		sc.send(&protocol.Goodbye{Reason: "uploads disabled"})
		return false
	}
	// Pause (not kill) uploads while the user's own traffic needs the
	// link (§3.9); mutual mid-swarm exchange is exempt, since the user is
	// actively downloading there anyway.
	if sc.download == nil {
		for sc.c.prefs.NetworkBusy() {
			select {
			case <-time.After(100 * time.Millisecond):
			}
			sc.mu.Lock()
			closed := sc.closed
			sc.mu.Unlock()
			if closed {
				return false
			}
		}
	}
	data, ok := sc.c.store.Get(sc.oid, index)
	if !ok {
		// Not having the piece is not a protocol violation; the remote's
		// view was stale.
		return true
	}
	sc.c.uploads.throttle(len(data))
	if err := sc.send(&protocol.Piece{Index: uint32(index), Data: data}); err != nil {
		return false
	}
	sc.c.uploads.countBytes(len(data))
	sc.c.metrics.bytesUp.Add(int64(len(data)))
	return true
}

// remoteHasPiece reports whether the remote announced piece i.
func (sc *swarmConn) remoteHasPiece(i int) bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.remoteHave != nil && sc.remoteHave.Has(i)
}

// remoteBitfield returns a snapshot clone, or nil.
func (sc *swarmConn) remoteBitfield() *content.Bitfield {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.remoteHave == nil {
		return nil
	}
	return sc.remoteHave.Clone()
}
