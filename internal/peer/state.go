package peer

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"netsession/internal/fsutil"
	"netsession/internal/id"
)

// State is the on-disk installation state of the NetSession Interface: the
// primary GUID chosen at install time, the user's upload preference, and
// the secondary-GUID window. The window must persist across restarts — a
// healthy installation reports overlapping sequences (5 4 3 2 1, then
// 6 5 4 3 2, §6.2), which only works if past secondaries survive the
// process. Copying a state directory to another machine is exactly the
// cloning/re-imaging behaviour the paper detects in Figure 12.
type State struct {
	GUID           id.GUID
	UploadsEnabled bool
	Secondaries    id.History
}

// stateFile is the JSON representation.
type stateFile struct {
	GUID           string   `json:"guid"`
	UploadsEnabled bool     `json:"uploadsEnabled"`
	Secondaries    []string `json:"secondaries"`
}

const stateFileName = "netsession-state.json"

// LoadOrCreateState reads the installation state from dir, creating a fresh
// installation (new random GUID) if none exists. A corrupt or torn state
// file — truncated JSON from a power loss, a damaged disk — is quarantined
// as <file>.corrupt and replaced by a fresh installation rather than
// wedging the client forever: the real NetSession would rather reinstall
// (new GUID, an install event in the §6.1 sense) than refuse to start.
func LoadOrCreateState(dir string, uploadsDefault bool) (*State, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("peer: state dir: %w", err)
	}
	path := filepath.Join(dir, stateFileName)
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return freshState(dir, uploadsDefault)
	}
	if err != nil {
		return nil, fmt.Errorf("peer: read state: %w", err)
	}
	st, perr := parseState(raw)
	if perr != nil {
		// Torn write or corruption: keep the evidence, start fresh.
		os.Remove(path + ".corrupt")
		if err := os.Rename(path, path+".corrupt"); err != nil {
			os.Remove(path)
		}
		return freshState(dir, uploadsDefault)
	}
	return st, nil
}

func freshState(dir string, uploadsDefault bool) (*State, error) {
	st := &State{GUID: id.NewGUID(), UploadsEnabled: uploadsDefault}
	if err := st.Save(dir); err != nil {
		return nil, err
	}
	return st, nil
}

func parseState(raw []byte) (*State, error) {
	var sf stateFile
	if err := json.Unmarshal(raw, &sf); err != nil {
		return nil, fmt.Errorf("peer: parse state: %w", err)
	}
	st := &State{UploadsEnabled: sf.UploadsEnabled}
	var err error
	if st.GUID, err = id.ParseGUID(sf.GUID); err != nil {
		return nil, err
	}
	for i, hexSec := range sf.Secondaries {
		if i >= id.HistoryLen {
			break
		}
		b, err := hex.DecodeString(hexSec)
		if err != nil || len(b) != 20 {
			return nil, fmt.Errorf("peer: bad secondary %q in state", hexSec)
		}
		copy(st.Secondaries.Window[i][:], b)
	}
	return st, nil
}

// Save writes the state to dir durably: temp file, fsync, rename, directory
// fsync. A rename without the surrounding fsyncs can lose the file (or its
// directory entry) on power loss, which would cost the installation its
// GUID — the identity every §6 analysis keys on.
func (st *State) Save(dir string) error {
	sf := stateFile{GUID: st.GUID.String(), UploadsEnabled: st.UploadsEnabled}
	for _, s := range st.Secondaries.Window {
		sf.Secondaries = append(sf.Secondaries, s.String())
	}
	raw, err := json.MarshalIndent(sf, "", "  ")
	if err != nil {
		return err
	}
	if err := fsutil.WriteFileAtomic(filepath.Join(dir, stateFileName), raw, 0o644); err != nil {
		return fmt.Errorf("peer: write state: %w", err)
	}
	return nil
}
