package peer

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"netsession/internal/accounting"
	"netsession/internal/analysis"
	"netsession/internal/id"
)

func TestStateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := LoadOrCreateState(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.GUID.IsZero() || !st.UploadsEnabled {
		t.Fatal("fresh state malformed")
	}
	st.Secondaries.Push(id.NewSecondary())
	st.UploadsEnabled = false
	if err := st.Save(dir); err != nil {
		t.Fatal(err)
	}
	st2, err := LoadOrCreateState(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if st2.GUID != st.GUID {
		t.Error("GUID not persisted")
	}
	if st2.UploadsEnabled {
		t.Error("preference not persisted")
	}
	if st2.Secondaries.Window != st.Secondaries.Window {
		t.Error("secondary window not persisted")
	}
}

// TestStateRecoversFromCorruption: a corrupt state file must not wedge the
// client. The damaged file is quarantined as evidence and the installation
// starts fresh (new GUID), like a reinstall.
func TestStateRecoversFromCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, stateFileName)
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := LoadOrCreateState(dir, true)
	if err != nil {
		t.Fatalf("corrupt state wedged the client: %v", err)
	}
	if st.GUID.IsZero() {
		t.Error("recovered state has no GUID")
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Error("corrupt state file not quarantined")
	}
}

// TestStateRecoversFromTornWrite simulates a power loss mid-write: the JSON
// is truncated at an arbitrary byte. LoadOrCreateState must recover with a
// fresh installation rather than erroring, and the torn file must be kept
// for inspection.
func TestStateRecoversFromTornWrite(t *testing.T) {
	dir := t.TempDir()
	st, err := LoadOrCreateState(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	st.Secondaries.Push(id.NewSecondary())
	if err := st.Save(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, stateFileName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := LoadOrCreateState(dir, true)
	if err != nil {
		t.Fatalf("torn state file wedged the client: %v", err)
	}
	if st2.GUID.IsZero() {
		t.Error("recovered state has no GUID")
	}
	if st2.GUID == st.GUID {
		t.Error("torn state recovered the old GUID (parse should have failed)")
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Error("torn state file not quarantined")
	}
	// The recovery is itself durable: a second load sees the fresh state.
	st3, err := LoadOrCreateState(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if st3.GUID != st2.GUID {
		t.Error("fresh installation not persisted")
	}
}

// restartPeer runs a short-lived client session from a state directory.
func restartPeer(t *testing.T, d *deployment, dir, declaredIP string) id.GUID {
	t.Helper()
	cl, err := New(Config{
		StateDir:     dir,
		DeclaredIP:   declaredIP,
		ControlAddrs: d.cnAddrs(),
		EdgeURL:      "http://" + d.edgeSrv.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cl.WaitControlConnected(5 * time.Second) {
		t.Fatal("control connection failed")
	}
	g := cl.GUID()
	cl.Close()
	return g
}

// TestCloneDetectionEndToEnd reproduces §6.2 live: a peer restarts a few
// times (linear chain), its state directory is copied ("re-imaged"), and
// both copies keep running. The control-plane logins, fed to the Figure 12
// analysis, expose the clone as a non-linear secondary-GUID graph.
func TestCloneDetectionEndToEnd(t *testing.T) {
	obj := e2eObject(t, 10_000, false)
	d := newDeployment(t, 1, obj)
	c, _ := d.atlas.Country("US")
	ip1, err := d.scape.AllocateIP(c.ASNs[0], c.Locations[0])
	if err != nil {
		t.Fatal(err)
	}
	ip2, err := d.scape.AllocateIP(c.ASNs[0], c.Locations[0])
	if err != nil {
		t.Fatal(err)
	}

	// A healthy installation: five restarts, linear chain.
	dirA := t.TempDir()
	var guid id.GUID
	for i := 0; i < 5; i++ {
		guid = restartPeer(t, d, dirA, ip1.String())
	}

	// "Re-image": copy the installation state wholesale.
	dirB := t.TempDir()
	raw, err := os.ReadFile(filepath.Join(dirA, stateFileName))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dirB, stateFileName), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Both installations keep restarting; their secondary chains fork.
	for i := 0; i < 3; i++ {
		if g := restartPeer(t, d, dirA, ip1.String()); g != guid {
			t.Fatal("GUID changed across restarts")
		}
		if g := restartPeer(t, d, dirB, ip2.String()); g != guid {
			t.Fatal("clone has a different GUID (state copy failed)")
		}
	}

	log := d.cp.Collector().Snapshot()
	if len(log.Logins) < 10 {
		t.Fatalf("only %d logins collected", len(log.Logins))
	}
	f12 := analysis.ComputeFigure12(&analysis.Input{Log: &accounting.Log{Logins: log.Logins}})
	if f12.Graphs != 1 {
		t.Fatalf("expected 1 graph (one primary GUID), got %d", f12.Graphs)
	}
	if f12.Count[analysis.GraphLinear] != 0 {
		t.Fatal("cloned installation classified as a linear chain")
	}
	nonLinear := f12.Count[analysis.GraphShortBranch] + f12.Count[analysis.GraphTwoLong] +
		f12.Count[analysis.GraphManyBranches] + f12.Count[analysis.GraphIrregular]
	if nonLinear != 1 {
		t.Fatalf("clone not detected as non-linear: counts %v", f12.Count)
	}
}

// TestLinearChainEndToEnd is the control: restarts without cloning stay a
// linear chain.
func TestLinearChainEndToEnd(t *testing.T) {
	obj := e2eObject(t, 10_000, false)
	d := newDeployment(t, 1, obj)
	c, _ := d.atlas.Country("US")
	ip, err := d.scape.AllocateIP(c.ASNs[0], c.Locations[0])
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for i := 0; i < 7; i++ {
		restartPeer(t, d, dir, ip.String())
	}
	log := d.cp.Collector().Snapshot()
	f12 := analysis.ComputeFigure12(&analysis.Input{Log: &accounting.Log{Logins: log.Logins}})
	if f12.Graphs != 1 || f12.Count[analysis.GraphLinear] != 1 {
		t.Fatalf("healthy installation not linear: graphs=%d counts=%v", f12.Graphs, f12.Count)
	}
}

// TestStatePersistsPreferenceFlips ensures the on-disk state tracks the
// user's toggle, so a restart keeps the chosen setting (Table 3 semantics).
func TestStatePersistsPreferenceFlips(t *testing.T) {
	obj := e2eObject(t, 10_000, false)
	d := newDeployment(t, 1, obj)
	c, _ := d.atlas.Country("US")
	ip, err := d.scape.AllocateIP(c.ASNs[0], c.Locations[0])
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cl, err := New(Config{
		StateDir:       dir,
		DeclaredIP:     ip.String(),
		ControlAddrs:   d.cnAddrs(),
		EdgeURL:        "http://" + d.edgeSrv.Addr(),
		UploadsEnabled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cl.Preferences().UploadsEnabled() {
		t.Fatal("default not applied")
	}
	cl.Preferences().SetUploadsEnabled(false)
	cl.Close()

	st, err := LoadOrCreateState(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.UploadsEnabled {
		t.Fatal("preference flip not persisted")
	}
}
