package nat

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"
)

// The STUN-like binding protocol. NetSession "uses a custom implementation"
// with "goals similar to" RFC 5389 (§3.6); this is that custom protocol:
//
//	request:  magic(2)=0x5354 kind(1)=1 txn(8)
//	response: magic(2)=0x5354 kind(1)=2 txn(8) family(1)=4 port(2) addr(4)
//
// The response carries the reflexive (server-observed) transport address,
// which is what the peer registers with the control plane so other peers can
// reach its NAT mapping.
const (
	stunMagic0   = 0x53
	stunMagic1   = 0x54
	kindRequest  = 1
	kindResponse = 2
	requestLen   = 11
	responseLen  = 18
)

// Server is a STUN binding server over UDP.
type Server struct {
	pc net.PacketConn

	mu     sync.Mutex
	closed bool
	done   chan struct{}
}

// NewServer starts a STUN server on addr (e.g. "127.0.0.1:0").
func NewServer(addr string) (*Server, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("nat: stun listen: %w", err)
	}
	s := &Server{pc: pc, done: make(chan struct{})}
	go s.serve()
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.pc.LocalAddr().String() }

// Close shuts the server down.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.pc.Close()
	<-s.done
	return err
}

func (s *Server) serve() {
	defer close(s.done)
	buf := make([]byte, 64)
	for {
		n, from, err := s.pc.ReadFrom(buf)
		if err != nil {
			return
		}
		if n != requestLen || buf[0] != stunMagic0 || buf[1] != stunMagic1 || buf[2] != kindRequest {
			continue // not ours; drop silently as STUN servers do
		}
		udp, ok := from.(*net.UDPAddr)
		if !ok {
			continue
		}
		ip := udp.AddrPort().Addr().Unmap()
		if !ip.Is4() {
			continue
		}
		resp := make([]byte, responseLen)
		resp[0], resp[1], resp[2] = stunMagic0, stunMagic1, kindResponse
		copy(resp[3:11], buf[3:11]) // echo transaction ID
		resp[11] = 4
		binary.BigEndian.PutUint16(resp[12:14], uint16(udp.Port))
		a4 := ip.As4()
		copy(resp[14:18], a4[:])
		if _, err := s.pc.WriteTo(resp, from); err != nil {
			return
		}
	}
}

// errTimeout is returned when no binding response arrives in time.
var errTimeout = errors.New("nat: stun request timed out")

// Discover sends a binding request from pc to the server at serverAddr and
// returns the reflexive address the server observed. The caller owns pc and
// typically reuses the same local port for the swarm listener so the
// discovered mapping stays valid.
func Discover(pc net.PacketConn, serverAddr string, txn uint64, timeout time.Duration) (netip.AddrPort, error) {
	dst, err := net.ResolveUDPAddr("udp", serverAddr)
	if err != nil {
		return netip.AddrPort{}, fmt.Errorf("nat: resolve stun server: %w", err)
	}
	req := make([]byte, requestLen)
	req[0], req[1], req[2] = stunMagic0, stunMagic1, kindRequest
	binary.BigEndian.PutUint64(req[3:11], txn)
	if _, err := pc.WriteTo(req, dst); err != nil {
		return netip.AddrPort{}, fmt.Errorf("nat: stun send: %w", err)
	}
	deadline := time.Now().Add(timeout)
	if err := pc.SetReadDeadline(deadline); err != nil {
		return netip.AddrPort{}, err
	}
	defer pc.SetReadDeadline(time.Time{})
	buf := make([]byte, 64)
	for time.Now().Before(deadline) {
		n, _, err := pc.ReadFrom(buf)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				return netip.AddrPort{}, errTimeout
			}
			return netip.AddrPort{}, err
		}
		if n != responseLen || buf[0] != stunMagic0 || buf[1] != stunMagic1 || buf[2] != kindResponse {
			continue
		}
		if binary.BigEndian.Uint64(buf[3:11]) != txn {
			continue // stale response
		}
		port := binary.BigEndian.Uint16(buf[12:14])
		var a4 [4]byte
		copy(a4[:], buf[14:18])
		return netip.AddrPortFrom(netip.AddrFrom4(a4), port), nil
	}
	return netip.AddrPort{}, errTimeout
}
