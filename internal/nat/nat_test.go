package nat

import (
	"context"
	"math/rand"
	"net"
	"testing"
	"time"

	"netsession/internal/protocol"
)

func TestCanConnectMatrix(t *testing.T) {
	N, F, R, P, S, B := protocol.NATNone, protocol.NATFullCone,
		protocol.NATRestricted, protocol.NATPortRestricted,
		protocol.NATSymmetric, protocol.NATBlocked
	cases := []struct {
		a, b protocol.NATClass
		want bool
	}{
		{N, N, true}, {N, F, true}, {N, S, true}, {N, B, true},
		{F, F, true}, {F, S, true}, {F, B, false},
		{R, R, true}, {R, P, true}, {R, S, true}, {R, B, false},
		{P, P, true}, {P, S, false}, {P, B, false},
		{S, S, false}, {S, B, false},
		{B, B, false},
	}
	for _, c := range cases {
		if got := CanConnect(c.a, c.b); got != c.want {
			t.Errorf("CanConnect(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := CanConnect(c.b, c.a); got != c.want {
			t.Errorf("CanConnect(%v,%v) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestDistributionSample(t *testing.T) {
	d := DefaultDistribution()
	r := rand.New(rand.NewSource(1))
	counts := make(map[protocol.NATClass]int)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[d.Sample(r)]++
	}
	frac := func(c protocol.NATClass) float64 { return float64(counts[c]) / n }
	if f := frac(protocol.NATPortRestricted); f < 0.32 || f > 0.38 {
		t.Errorf("port-restricted fraction %.3f, want ≈0.35", f)
	}
	if f := frac(protocol.NATBlocked); f < 0.015 || f > 0.025 {
		t.Errorf("blocked fraction %.3f, want ≈0.02", f)
	}
	if counts[protocol.NATNone] == 0 || counts[protocol.NATSymmetric] == 0 {
		t.Error("distribution missing classes")
	}
}

func TestDistributionEmpty(t *testing.T) {
	d := NewDistribution(nil)
	if got := d.Sample(rand.New(rand.NewSource(1))); got != protocol.NATNone {
		t.Errorf("empty distribution should default to NATNone, got %v", got)
	}
}

func TestSTUNDiscover(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()

	got, err := Discover(pc, srv.Addr(), 0x1234, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	local := pc.LocalAddr().(*net.UDPAddr)
	if int(got.Port()) != local.Port {
		t.Errorf("reflexive port %d, want %d", got.Port(), local.Port)
	}
	if got.Addr().String() != "127.0.0.1" {
		t.Errorf("reflexive addr %v, want 127.0.0.1", got.Addr())
	}
}

func TestSTUNTimeout(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	// A UDP port with no server: request is dropped, Discover must time out.
	sink, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	_, err = Discover(pc, sink.LocalAddr().String(), 1, 200*time.Millisecond)
	if err == nil {
		t.Fatal("expected timeout")
	}
}

func TestSTUNIgnoresGarbage(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	dst, _ := net.ResolveUDPAddr("udp", srv.Addr())
	if _, err := pc.WriteTo([]byte("not stun"), dst); err != nil {
		t.Fatal(err)
	}
	// Server must survive garbage and still answer a valid request.
	got, err := Discover(pc, srv.Addr(), 77, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.Port() == 0 {
		t.Error("zero mapped port")
	}
}

func TestDialerEnforcesMatrix(t *testing.T) {
	d := &Dialer{Local: protocol.NATSymmetric, Timeout: time.Second}
	_, err := d.Dial(context.Background(), protocol.PeerInfo{
		NAT: protocol.NATSymmetric, Addr: "127.0.0.1:1",
	})
	if _, ok := err.(*ErrIncompatibleNAT); !ok {
		t.Fatalf("want ErrIncompatibleNAT, got %v", err)
	}
}

func TestDialerConnects(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err == nil {
			c.Close()
		}
	}()
	d := &Dialer{Local: protocol.NATFullCone, Timeout: 2 * time.Second}
	c, err := d.Dial(context.Background(), protocol.PeerInfo{
		NAT: protocol.NATRestricted, Addr: ln.Addr().String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

func TestSimultaneousDialInboundWins(t *testing.T) {
	// No listener for outbound dial; inbound connection arrives first.
	d := &Dialer{Local: protocol.NATFullCone, Timeout: 500 * time.Millisecond}
	accepted := make(chan net.Conn, 1)
	a, b := net.Pipe()
	defer b.Close()
	accepted <- a
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	c, err := d.SimultaneousDial(ctx, protocol.PeerInfo{
		NAT: protocol.NATFullCone, Addr: "127.0.0.1:1",
	}, accepted)
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Error("inbound connection should have won")
	}
	c.Close()
}

func TestSimultaneousDialOutboundWins(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err == nil {
			defer c.Close()
			buf := make([]byte, 1)
			c.Read(buf)
		}
	}()
	d := &Dialer{Local: protocol.NATFullCone, Timeout: 2 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	c, err := d.SimultaneousDial(ctx, protocol.PeerInfo{
		NAT: protocol.NATFullCone, Addr: ln.Addr().String(),
	}, make(chan net.Conn))
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}
