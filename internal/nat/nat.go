// Package nat models NAT and firewall behaviour: the STUN-style protocol
// peers use to discover "the details of their connectivity" (§3.6), the
// compatibility matrix the database nodes consult to select "only peers that
// are likely to be able to establish a connection with each other" (§3.7),
// and the coordinated hole-punch dial used when the control plane instructs
// two peers to connect.
//
// The paper notes that "due to the vast diversity in NAT implementations
// today, NAT hole punching is a complex issue, and the necessary code takes
// up a large fraction of the NetSession codebase". This package distils that
// machinery to the behaviourally relevant core: mapping/filtering classes
// and pairwise traversal feasibility.
package nat

import (
	"math/rand"

	"netsession/internal/protocol"
)

// CanConnect reports whether two peers behind the given NAT classes can
// establish a direct connection when both simultaneously initiate (the
// control plane "instructs both the querying peer and the chosen peers to
// initiate connections to each other", §3.7).
//
// The matrix follows the classic STUN traversal results: endpoints with a
// public address or an endpoint-independent (full-cone) mapping are always
// reachable; address- and port-restricted cones punch with everything except
// that port-restricted cannot punch with symmetric (the symmetric side's
// per-destination port is unknown); two symmetric NATs cannot punch; a
// blocked endpoint can only talk to a publicly reachable one.
func CanConnect(a, b protocol.NATClass) bool {
	if a > b {
		a, b = b, a // matrix is symmetric; normalize
	}
	switch {
	case a == protocol.NATNone:
		return true // a public endpoint accepts inbound from anyone, even blocked peers dialing out
	case b == protocol.NATBlocked:
		return false
	case a == protocol.NATFullCone || b == protocol.NATFullCone:
		return true
	case a == protocol.NATRestricted:
		return true
	case a == protocol.NATPortRestricted:
		return b == protocol.NATPortRestricted
	default: // symmetric–symmetric
		return false
	}
}

// Distribution is a sampling distribution over NAT classes for synthetic
// peer populations.
type Distribution struct {
	classes []protocol.NATClass
	cum     []float64
}

// NewDistribution builds a distribution from class weights. Weights need not
// sum to one.
func NewDistribution(weights map[protocol.NATClass]float64) Distribution {
	var d Distribution
	total := 0.0
	for _, c := range []protocol.NATClass{
		protocol.NATNone, protocol.NATFullCone, protocol.NATRestricted,
		protocol.NATPortRestricted, protocol.NATSymmetric, protocol.NATBlocked,
	} {
		w := weights[c]
		if w <= 0 {
			continue
		}
		total += w
		d.classes = append(d.classes, c)
		d.cum = append(d.cum, total)
	}
	for i := range d.cum {
		d.cum[i] /= total
	}
	return d
}

// DefaultDistribution approximates the consumer broadband NAT mix: mostly
// cone NATs, a minority of symmetric NATs and a small fraction of fully
// blocked or fully public endpoints.
func DefaultDistribution() Distribution {
	return NewDistribution(map[protocol.NATClass]float64{
		protocol.NATNone:           0.10,
		protocol.NATFullCone:       0.25,
		protocol.NATRestricted:     0.20,
		protocol.NATPortRestricted: 0.35,
		protocol.NATSymmetric:      0.08,
		protocol.NATBlocked:        0.02,
	})
}

// Sample draws a NAT class.
func (d Distribution) Sample(r *rand.Rand) protocol.NATClass {
	if len(d.classes) == 0 {
		return protocol.NATNone
	}
	x := r.Float64()
	for i, c := range d.cum {
		if x <= c {
			return d.classes[i]
		}
	}
	return d.classes[len(d.classes)-1]
}
