package nat

import (
	"context"
	"fmt"
	"net"
	"time"

	"netsession/internal/protocol"
)

// Dialer establishes swarm connections between peers, honouring the NAT
// model. In a live localhost/LAN deployment there is no real middlebox, so
// the Dialer enforces the compatibility matrix explicitly: a dial between
// incompatible NAT classes fails exactly as the punch would fail in the
// wild. This keeps live-mode behaviour faithful to the deployed system
// without requiring root to build real NAT namespaces.
type Dialer struct {
	// Local is this peer's NAT class as discovered via STUN.
	Local protocol.NATClass
	// Timeout bounds each connection attempt.
	Timeout time.Duration
}

// ErrIncompatibleNAT is returned when the matrix predicts traversal failure.
type ErrIncompatibleNAT struct {
	Local, Remote protocol.NATClass
}

func (e *ErrIncompatibleNAT) Error() string {
	return fmt.Sprintf("nat: hole punch infeasible between %v and %v", e.Local, e.Remote)
}

// Dial connects to a remote peer's swarm listener. The remote's NAT class
// comes from the PeerInfo the control plane returned; the control plane's
// selector normally filters incompatible pairs already (§3.7), so hitting
// ErrIncompatibleNAT means the directory entry was stale.
func (d *Dialer) Dial(ctx context.Context, remote protocol.PeerInfo) (net.Conn, error) {
	if !CanConnect(d.Local, remote.NAT) {
		return nil, &ErrIncompatibleNAT{Local: d.Local, Remote: remote.NAT}
	}
	timeout := d.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	nd := net.Dialer{Timeout: timeout}
	conn, err := nd.DialContext(ctx, "tcp", remote.Addr)
	if err != nil {
		return nil, fmt.Errorf("nat: dial %s: %w", remote.Addr, err)
	}
	return conn, nil
}

// SimultaneousDial races an outbound dial against an inbound connection
// delivered on accepted (fed by the peer's listener when the control plane
// has instructed the remote side to connect to us). Whichever succeeds first
// wins; the loser is closed. This mirrors the both-sides-initiate punch
// choreography the control plane coordinates.
func (d *Dialer) SimultaneousDial(ctx context.Context, remote protocol.PeerInfo, accepted <-chan net.Conn) (net.Conn, error) {
	type result struct {
		c   net.Conn
		err error
	}
	ch := make(chan result, 1)
	go func() {
		c, err := d.Dial(ctx, remote)
		ch <- result{c, err}
	}()
	select {
	case c := <-accepted:
		// Inbound won; reap the outbound attempt in the background.
		go func() {
			if r := <-ch; r.c != nil {
				r.c.Close()
			}
		}()
		return c, nil
	case r := <-ch:
		if r.err != nil {
			// Outbound failed; the inbound path may still deliver.
			select {
			case c := <-accepted:
				return c, nil
			case <-ctx.Done():
				return nil, r.err
			}
		}
		return r.c, nil
	case <-ctx.Done():
		go func() {
			if r := <-ch; r.c != nil {
				r.c.Close()
			}
		}()
		return nil, ctx.Err()
	}
}
