package protocol

import (
	"bytes"
	"testing"

	"netsession/internal/content"
	"netsession/internal/id"
)

// BenchmarkPieceRoundTrip measures framing cost for a 64 KiB piece — the
// hot path of every swarm transfer.
func BenchmarkPieceRoundTrip(b *testing.B) {
	data := make([]byte, 64<<10)
	msg := &Piece{Index: 42, Data: data}
	var buf bytes.Buffer
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteMessage(&buf, msg); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadMessage(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryResultEncode measures control-plane reply encoding with a
// full 40-peer result.
func BenchmarkQueryResultEncode(b *testing.B) {
	m := &QueryResult{Object: content.NewObjectID(1, "u", 1)}
	for i := 0; i < 40; i++ {
		m.Peers = append(m.Peers, PeerInfo{
			GUID: id.GUID{byte(i)}, Addr: "203.0.113.7:7000",
			NAT: NATPortRestricted, ASN: 1000, Location: 5,
		})
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteMessage(&buf, m); err != nil {
			b.Fatal(err)
		}
	}
}
