package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"

	"netsession/internal/content"
	"netsession/internal/id"
)

// encoder accumulates a message payload. It never fails; size limits are
// enforced at the framing layer.
type encoder struct {
	buf []byte
}

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }

func (e *encoder) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *encoder) bytes(v []byte) {
	e.u32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}

func (e *encoder) str(v string) { e.bytes([]byte(v)) }

func (e *encoder) guid(g id.GUID)              { e.buf = append(e.buf, g[:]...) }
func (e *encoder) secondary(s id.Secondary)    { e.buf = append(e.buf, s[:]...) }
func (e *encoder) objectID(o content.ObjectID) { e.buf = append(e.buf, o[:]...) }

// decoder consumes a message payload with sticky error semantics: after the
// first failure every further read returns zero values, and the error is
// checked once at the end.
type decoder struct {
	buf []byte
	off int
	err error
}

var errShort = errors.New("payload truncated")

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.err = errShort
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *decoder) i64() int64 { return int64(d.u64()) }

func (d *decoder) boolean() bool { return d.u8() != 0 }

func (d *decoder) bytes() []byte {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if int(n) > len(d.buf)-d.off {
		d.err = fmt.Errorf("declared length %d exceeds remaining %d bytes", n, len(d.buf)-d.off)
		return nil
	}
	b := d.take(int(n))
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func (d *decoder) str() string { return string(d.bytes()) }

func (d *decoder) guid() (g id.GUID) {
	copy(g[:], d.take(len(g)))
	return g
}

func (d *decoder) secondary() (s id.Secondary) {
	copy(s[:], d.take(len(s)))
	return s
}

func (d *decoder) objectID() (o content.ObjectID) {
	copy(o[:], d.take(len(o)))
	return o
}
