package protocol

import (
	"netsession/internal/content"
	"netsession/internal/id"
)

// NATClass is the wire representation of a peer's NAT/firewall situation as
// determined via STUN (§3.6). The numeric values are stable wire constants.
type NATClass uint8

// NAT classes, ordered roughly by traversal difficulty.
const (
	NATNone NATClass = iota
	NATFullCone
	NATRestricted
	NATPortRestricted
	NATSymmetric
	NATBlocked
)

func (n NATClass) String() string {
	switch n {
	case NATNone:
		return "none"
	case NATFullCone:
		return "full-cone"
	case NATRestricted:
		return "restricted"
	case NATPortRestricted:
		return "port-restricted"
	case NATSymmetric:
		return "symmetric"
	case NATBlocked:
		return "blocked"
	}
	return "unknown"
}

// PeerInfo describes a candidate upload peer as returned by the control
// plane: enough for the downloader to dial it and for the DN's
// connectivity-aware selection to have been applied.
type PeerInfo struct {
	GUID id.GUID
	// Addr is the peer's swarm listener in host:port form (its NAT mapping
	// as observed via STUN, or its direct address).
	Addr string
	NAT  NATClass
	ASN  uint32
	// Location is the peer's LocationID in the atlas; carried so analyses
	// and simulations can attribute traffic without a reverse lookup.
	Location uint32
}

func (p *PeerInfo) encodeTo(e *encoder) {
	e.guid(p.GUID)
	e.str(p.Addr)
	e.u8(uint8(p.NAT))
	e.u32(p.ASN)
	e.u32(p.Location)
}

func (p *PeerInfo) decodeFrom(d *decoder) {
	p.GUID = d.guid()
	p.Addr = d.str()
	p.NAT = NATClass(d.u8())
	p.ASN = d.u32()
	p.Location = d.u32()
}

// Login opens (or refreshes) a peer's session on a connection node. The
// secondary-GUID window lets the control plane detect cloned or re-imaged
// installations (§6.2).
type Login struct {
	GUID            id.GUID
	Secondaries     [id.HistoryLen]id.Secondary
	SoftwareVersion string
	UploadsEnabled  bool
	// SwarmAddr is the address the peer's swarm listener is reachable at
	// (possibly a NAT mapping discovered via STUN).
	SwarmAddr string
	NAT       NATClass
	// DeclaredIP is the peer's public IP in the experiment's synthetic
	// address plan. The production system derives this from the connection
	// source address; with every live-mode peer on 127.0.0.1 the synthetic
	// identity must ride along explicitly so geolocation still works.
	DeclaredIP string
}

func (*Login) Type() MsgType { return TLogin }

func (m *Login) encodeTo(e *encoder) {
	e.guid(m.GUID)
	for _, s := range m.Secondaries {
		e.secondary(s)
	}
	e.str(m.SoftwareVersion)
	e.boolean(m.UploadsEnabled)
	e.str(m.SwarmAddr)
	e.u8(uint8(m.NAT))
	e.str(m.DeclaredIP)
}

func (m *Login) decodeFrom(d *decoder) {
	m.GUID = d.guid()
	for i := range m.Secondaries {
		m.Secondaries[i] = d.secondary()
	}
	m.SoftwareVersion = d.str()
	m.UploadsEnabled = d.boolean()
	m.SwarmAddr = d.str()
	m.NAT = NATClass(d.u8())
	m.DeclaredIP = d.str()
}

// LoginAck acknowledges a login. When the control plane is shedding load
// after a large-scale failure, OK is false and RetryAfterMs tells the peer
// when to reconnect ("reconnections are rate-limited to ensure a smooth
// recovery", §3.8).
type LoginAck struct {
	OK           bool
	RetryAfterMs uint32
	ConfigEpoch  uint32
	// RedirectAddr, when non-empty on a rejected login, is the CN address of
	// the control-plane node that owns the peer's region; the peer should
	// reconnect there instead of waiting out RetryAfterMs. This is how a
	// multi-node control plane steers each region's peers to the ring owner.
	RedirectAddr string
}

func (*LoginAck) Type() MsgType { return TLoginAck }

func (m *LoginAck) encodeTo(e *encoder) {
	e.boolean(m.OK)
	e.u32(m.RetryAfterMs)
	e.u32(m.ConfigEpoch)
	e.str(m.RedirectAddr)
}

func (m *LoginAck) decodeFrom(d *decoder) {
	m.OK = d.boolean()
	m.RetryAfterMs = d.u32()
	m.ConfigEpoch = d.u32()
	m.RedirectAddr = d.str()
}

// Query asks the control plane for peers that hold an object. The token was
// minted by an edge server at authorization time; peers may only "search for
// peers" with a valid token (§3.5).
type Query struct {
	Object   content.ObjectID
	Token    []byte
	MaxPeers uint16
}

func (*Query) Type() MsgType { return TQuery }

func (m *Query) encodeTo(e *encoder) {
	e.objectID(m.Object)
	e.bytes(m.Token)
	e.u16(m.MaxPeers)
}

func (m *Query) decodeFrom(d *decoder) {
	m.Object = d.objectID()
	m.Token = d.bytes()
	m.MaxPeers = d.u16()
}

// QueryResult returns the selected peers, or an error string (e.g. when the
// token is invalid).
type QueryResult struct {
	Object content.ObjectID
	Peers  []PeerInfo
	Err    string
}

func (*QueryResult) Type() MsgType { return TQueryResult }

func (m *QueryResult) encodeTo(e *encoder) {
	e.objectID(m.Object)
	e.u16(uint16(len(m.Peers)))
	for i := range m.Peers {
		m.Peers[i].encodeTo(e)
	}
	e.str(m.Err)
}

func (m *QueryResult) decodeFrom(d *decoder) {
	m.Object = d.objectID()
	n := int(d.u16())
	for i := 0; i < n && d.err == nil; i++ {
		var p PeerInfo
		p.decodeFrom(d)
		m.Peers = append(m.Peers, p)
	}
	m.Err = d.str()
}

// ConnectTo instructs a peer, over its persistent control connection, to
// initiate a connection to another peer — the control plane "instructs both
// the querying peer and the chosen peers to initiate connections to each
// other" (§3.7), which is what makes NAT hole punching work.
type ConnectTo struct {
	Object content.ObjectID
	Peer   PeerInfo
}

func (*ConnectTo) Type() MsgType { return TConnectTo }

func (m *ConnectTo) encodeTo(e *encoder) {
	e.objectID(m.Object)
	m.Peer.encodeTo(e)
}

func (m *ConnectTo) decodeFrom(d *decoder) {
	m.Object = d.objectID()
	m.Peer.decodeFrom(d)
}

// Register announces that this peer holds (part of) an object and is willing
// to serve it. Peers appear in the DN database "only when a) uploads are
// explicitly enabled on the peer, and b) the peer currently has objects to
// share" (§3.6).
type Register struct {
	Object    content.ObjectID
	NumPieces uint32
	HaveCount uint32
	Complete  bool
}

func (*Register) Type() MsgType { return TRegister }

func (m *Register) encodeTo(e *encoder) {
	e.objectID(m.Object)
	e.u32(m.NumPieces)
	e.u32(m.HaveCount)
	e.boolean(m.Complete)
}

func (m *Register) decodeFrom(d *decoder) {
	m.Object = d.objectID()
	m.NumPieces = d.u32()
	m.HaveCount = d.u32()
	m.Complete = d.boolean()
}

// Unregister withdraws an object registration (cache eviction, uploads
// disabled, or upload cap reached).
type Unregister struct {
	Object content.ObjectID
}

func (*Unregister) Type() MsgType { return TUnregister }

func (m *Unregister) encodeTo(e *encoder)   { e.objectID(m.Object) }
func (m *Unregister) decodeFrom(d *decoder) { m.Object = d.objectID() }

// ReAdd asks a peer to re-list its stored objects after a DN loss: "If a DN
// goes down, the CNs connected to that DN send a RE-ADD message to their
// peers, asking them to list the files that they are storing" (§3.8).
type ReAdd struct{}

func (*ReAdd) Type() MsgType       { return TReAdd }
func (*ReAdd) encodeTo(*encoder)   {}
func (*ReAdd) decodeFrom(*decoder) {}

// ReAddEntry is one object listing in a ReAddReply.
type ReAddEntry struct {
	Object    content.ObjectID
	NumPieces uint32
	HaveCount uint32
	Complete  bool
}

// ReAddReply carries the peer's current object list back to the CN, which
// forwards it to the surviving DNs to repopulate their databases.
type ReAddReply struct {
	Entries []ReAddEntry
}

func (*ReAddReply) Type() MsgType { return TReAddReply }

func (m *ReAddReply) encodeTo(e *encoder) {
	e.u32(uint32(len(m.Entries)))
	for _, en := range m.Entries {
		e.objectID(en.Object)
		e.u32(en.NumPieces)
		e.u32(en.HaveCount)
		e.boolean(en.Complete)
	}
}

func (m *ReAddReply) decodeFrom(d *decoder) {
	n := int(d.u32())
	for i := 0; i < n && d.err == nil; i++ {
		var en ReAddEntry
		en.Object = d.objectID()
		en.NumPieces = d.u32()
		en.HaveCount = d.u32()
		en.Complete = d.boolean()
		m.Entries = append(m.Entries, en)
	}
}

// Outcome is the terminal state of a download as recorded in the logs
// (§5.2): completed, failed (with a cause class), or aborted/paused by the
// user and never resumed.
type Outcome uint8

// Download outcomes.
const (
	OutcomeCompleted Outcome = iota
	OutcomeFailedSystem
	OutcomeFailedOther
	OutcomeAborted
)

func (o Outcome) String() string {
	switch o {
	case OutcomeCompleted:
		return "completed"
	case OutcomeFailedSystem:
		return "failed-system"
	case OutcomeFailedOther:
		return "failed-other"
	case OutcomeAborted:
		return "aborted"
	}
	return "unknown"
}

// PeerBytes attributes bytes received from one serving peer, so that
// accounting can build the AS-level traffic matrix of §6.1.
type PeerBytes struct {
	GUID  id.GUID
	Bytes uint64
}

// StatsReport is the per-download usage report a peer uploads to its CN when
// a download reaches a terminal state. The CN records "the GUID of the peer,
// the name and size of the file, the CP code, the time the download started
// and ended, and the number of bytes downloaded from the infrastructure and
// from peers" (§4.1).
type StatsReport struct {
	Object        content.ObjectID
	URLHash       string
	CP            uint32
	Size          uint64
	StartUnixMs   int64
	EndUnixMs     int64
	BytesInfra    uint64
	BytesPeers    uint64
	Outcome       Outcome
	PeersReturned uint16 // peers initially returned by the control plane (Figure 6)
	FromPeers     []PeerBytes
	// Token proves the edge servers authorized this download; the control
	// plane uses edge data "to prevent accounting attacks, where
	// compromised or faulty peers incorrectly report downloads" (§3.5).
	Token []byte
	// Stream carries the playback outcome for deadline-driven streaming
	// downloads ("NetSession also supports video streaming", §3.4); nil
	// for bulk transfers. On the wire it is an optional trailing block
	// gated by a presence flag, so bulk reports cost one extra byte.
	Stream *StreamStats
}

// StreamStats is the streaming sub-record of a StatsReport.
type StreamStats struct {
	BitrateBps      uint64
	StartupDelayMs  uint64
	RebufferCount   uint32
	RebufferMs      uint64
	DeadlineMisses  uint32
	PiecesPlayed    uint32
	PiecesTotal     uint32
	EdgeRescueBytes uint64
}

func (*StatsReport) Type() MsgType { return TStatsReport }

func (m *StatsReport) encodeTo(e *encoder) {
	e.objectID(m.Object)
	e.str(m.URLHash)
	e.u32(m.CP)
	e.u64(m.Size)
	e.i64(m.StartUnixMs)
	e.i64(m.EndUnixMs)
	e.u64(m.BytesInfra)
	e.u64(m.BytesPeers)
	e.u8(uint8(m.Outcome))
	e.u16(m.PeersReturned)
	e.u16(uint16(len(m.FromPeers)))
	for _, pb := range m.FromPeers {
		e.guid(pb.GUID)
		e.u64(pb.Bytes)
	}
	e.bytes(m.Token)
	if m.Stream == nil {
		e.u8(0)
	} else {
		e.u8(1)
		e.u64(m.Stream.BitrateBps)
		e.u64(m.Stream.StartupDelayMs)
		e.u32(m.Stream.RebufferCount)
		e.u64(m.Stream.RebufferMs)
		e.u32(m.Stream.DeadlineMisses)
		e.u32(m.Stream.PiecesPlayed)
		e.u32(m.Stream.PiecesTotal)
		e.u64(m.Stream.EdgeRescueBytes)
	}
}

func (m *StatsReport) decodeFrom(d *decoder) {
	m.Object = d.objectID()
	m.URLHash = d.str()
	m.CP = d.u32()
	m.Size = d.u64()
	m.StartUnixMs = d.i64()
	m.EndUnixMs = d.i64()
	m.BytesInfra = d.u64()
	m.BytesPeers = d.u64()
	m.Outcome = Outcome(d.u8())
	m.PeersReturned = d.u16()
	n := int(d.u16())
	for i := 0; i < n && d.err == nil; i++ {
		var pb PeerBytes
		pb.GUID = d.guid()
		pb.Bytes = d.u64()
		m.FromPeers = append(m.FromPeers, pb)
	}
	m.Token = d.bytes()
	if d.u8() == 1 {
		s := &StreamStats{}
		s.BitrateBps = d.u64()
		s.StartupDelayMs = d.u64()
		s.RebufferCount = d.u32()
		s.RebufferMs = d.u64()
		s.DeadlineMisses = d.u32()
		s.PiecesPlayed = d.u32()
		s.PiecesTotal = d.u32()
		s.EdgeRescueBytes = d.u64()
		if d.err == nil {
			m.Stream = s
		}
	}
}

// ConfigUpdate pushes globally configurable client policy to peers over the
// control connection ("peers use the connection to learn about configuration
// updates", §3.4).
type ConfigUpdate struct {
	Epoch uint32
	// MaxUploadConns is the "globally configurable limit on the total
	// number of upload connections a peer allows" (§3.4).
	MaxUploadConns uint16
	// PerObjectUploadCap bounds how many times one peer uploads one object
	// ("peers upload each object at most a limited number of times", §3.9).
	PerObjectUploadCap uint16
	// UploadRateBps caps aggregate upload bandwidth.
	UploadRateBps uint64
	// CacheTTLSec is how long completed downloads stay shareable.
	CacheTTLSec uint32
	// TargetVersion, when non-empty, directs clients below it to upgrade:
	// "the client software version is centrally controlled by the CDN
	// infrastructure, and peers can perform automated upgrades in the
	// background on demand" (§3.8).
	TargetVersion string
}

func (*ConfigUpdate) Type() MsgType { return TConfigUpdate }

func (m *ConfigUpdate) encodeTo(e *encoder) {
	e.u32(m.Epoch)
	e.u16(m.MaxUploadConns)
	e.u16(m.PerObjectUploadCap)
	e.u64(m.UploadRateBps)
	e.u32(m.CacheTTLSec)
	e.str(m.TargetVersion)
}

func (m *ConfigUpdate) decodeFrom(d *decoder) {
	m.Epoch = d.u32()
	m.MaxUploadConns = d.u16()
	m.PerObjectUploadCap = d.u16()
	m.UploadRateBps = d.u64()
	m.CacheTTLSec = d.u32()
	m.TargetVersion = d.str()
}

// Ping is a liveness probe in either direction on the control connection.
type Ping struct{ Nonce uint64 }

func (*Ping) Type() MsgType           { return TPing }
func (m *Ping) encodeTo(e *encoder)   { e.u64(m.Nonce) }
func (m *Ping) decodeFrom(d *decoder) { m.Nonce = d.u64() }

// Pong answers a Ping, echoing the nonce.
type Pong struct{ Nonce uint64 }

func (*Pong) Type() MsgType           { return TPong }
func (m *Pong) encodeTo(e *encoder)   { e.u64(m.Nonce) }
func (m *Pong) decodeFrom(d *decoder) { m.Nonce = d.u64() }

// Handshake opens a swarm connection for one object. The token proves the
// dialing peer is authorized to obtain the object from peers (§3.5).
type Handshake struct {
	GUID   id.GUID
	Object content.ObjectID
	Token  []byte
}

func (*Handshake) Type() MsgType { return THandshake }

func (m *Handshake) encodeTo(e *encoder) {
	e.guid(m.GUID)
	e.objectID(m.Object)
	e.bytes(m.Token)
}

func (m *Handshake) decodeFrom(d *decoder) {
	m.GUID = d.guid()
	m.Object = d.objectID()
	m.Token = d.bytes()
}

// HandshakeAck accepts or rejects a swarm handshake.
type HandshakeAck struct {
	OK        bool
	NumPieces uint32
	Reason    string
}

func (*HandshakeAck) Type() MsgType { return THandshakeAck }

func (m *HandshakeAck) encodeTo(e *encoder) {
	e.boolean(m.OK)
	e.u32(m.NumPieces)
	e.str(m.Reason)
}

func (m *HandshakeAck) decodeFrom(d *decoder) {
	m.OK = d.boolean()
	m.NumPieces = d.u32()
	m.Reason = d.str()
}

// BitfieldMsg announces which pieces the sender holds.
type BitfieldMsg struct {
	Bits []byte
}

func (*BitfieldMsg) Type() MsgType           { return TBitfield }
func (m *BitfieldMsg) encodeTo(e *encoder)   { e.bytes(m.Bits) }
func (m *BitfieldMsg) decodeFrom(d *decoder) { m.Bits = d.bytes() }

// Have announces a newly verified piece.
type Have struct{ Index uint32 }

func (*Have) Type() MsgType           { return THave }
func (m *Have) encodeTo(e *encoder)   { e.u32(m.Index) }
func (m *Have) decodeFrom(d *decoder) { m.Index = d.u32() }

// Request asks the remote peer for one piece.
type Request struct{ Index uint32 }

func (*Request) Type() MsgType           { return TRequest }
func (m *Request) encodeTo(e *encoder)   { e.u32(m.Index) }
func (m *Request) decodeFrom(d *decoder) { m.Index = d.u32() }

// Piece delivers piece data.
type Piece struct {
	Index uint32
	Data  []byte
}

func (*Piece) Type() MsgType { return TPiece }

func (m *Piece) encodeTo(e *encoder) {
	e.u32(m.Index)
	e.bytes(m.Data)
}

func (m *Piece) decodeFrom(d *decoder) {
	m.Index = d.u32()
	m.Data = d.bytes()
}

// Cancel withdraws an outstanding Request.
type Cancel struct{ Index uint32 }

func (*Cancel) Type() MsgType           { return TCancel }
func (m *Cancel) encodeTo(e *encoder)   { e.u32(m.Index) }
func (m *Cancel) decodeFrom(d *decoder) { m.Index = d.u32() }

// Goodbye announces an orderly close of a swarm connection.
type Goodbye struct{ Reason string }

func (*Goodbye) Type() MsgType           { return TGoodbye }
func (m *Goodbye) encodeTo(e *encoder)   { e.str(m.Reason) }
func (m *Goodbye) decodeFrom(d *decoder) { m.Reason = d.str() }
