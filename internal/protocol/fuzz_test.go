package protocol

import (
	"bytes"
	"testing"

	"netsession/internal/content"
	"netsession/internal/id"
)

// FuzzReadMessage feeds arbitrary bytes to the frame parser. The parser must
// never panic and never allocate absurd buffers: hostile peers speak this
// protocol directly at the CN and at every uploading peer.
func FuzzReadMessage(f *testing.F) {
	// Seed with valid frames of each message family.
	seedMsgs := []Message{
		&Login{GUID: id.GUID{1}, SoftwareVersion: "s", SwarmAddr: "a:1"},
		&Query{Object: content.NewObjectID(1, "u", 1), Token: []byte("t"), MaxPeers: 40},
		&QueryResult{Peers: []PeerInfo{{Addr: "x:1"}}},
		&StatsReport{URLHash: "h", FromPeers: []PeerBytes{{Bytes: 1}}},
		&Piece{Index: 3, Data: []byte("data")},
		&ReAddReply{Entries: []ReAddEntry{{NumPieces: 2}}},
	}
	for _, m := range seedMsgs {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{'N', 'S', 1, 1, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decoded must re-encode without error.
		var buf bytes.Buffer
		if err := WriteMessage(&buf, msg); err != nil {
			t.Fatalf("decoded message fails to re-encode: %v", err)
		}
		// And the re-encoding must decode to an equal-typed message.
		again, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("re-encoded message fails to decode: %v", err)
		}
		if again.Type() != msg.Type() {
			t.Fatalf("type changed across round trip: %v -> %v", msg.Type(), again.Type())
		}
	})
}
