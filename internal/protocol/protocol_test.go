package protocol

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"netsession/internal/content"
	"netsession/internal/id"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatalf("WriteMessage(%v): %v", m.Type(), err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatalf("ReadMessage(%v): %v", m.Type(), err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%v: %d bytes left after read", m.Type(), buf.Len())
	}
	return got
}

func TestRoundTripAllMessages(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g := id.RandGUID(r)
	oid := content.NewObjectID(7, "file", 2)
	var secs [id.HistoryLen]id.Secondary
	for i := range secs {
		secs[i] = id.RandSecondary(r)
	}
	msgs := []Message{
		&Login{GUID: g, Secondaries: secs, SoftwareVersion: "ns-1.2.3",
			UploadsEnabled: true, SwarmAddr: "10.1.2.3:7788", NAT: NATPortRestricted,
			DeclaredIP: "10.1.2.3"},
		&LoginAck{OK: true, RetryAfterMs: 0, ConfigEpoch: 9},
		&LoginAck{OK: false, RetryAfterMs: 30_000},
		&Query{Object: oid, Token: []byte("tok"), MaxPeers: 40},
		&QueryResult{Object: oid, Peers: []PeerInfo{
			{GUID: g, Addr: "1.2.3.4:5", NAT: NATFullCone, ASN: 1001, Location: 3},
			{GUID: id.RandGUID(r), Addr: "5.6.7.8:9", NAT: NATSymmetric, ASN: 1002, Location: 4},
		}},
		&QueryResult{Object: oid, Err: "unauthorized"},
		&ConnectTo{Object: oid, Peer: PeerInfo{GUID: g, Addr: "9.9.9.9:1", NAT: NATNone, ASN: 5, Location: 6}},
		&Register{Object: oid, NumPieces: 100, HaveCount: 42, Complete: false},
		&Unregister{Object: oid},
		&ReAdd{},
		&ReAddReply{Entries: []ReAddEntry{
			{Object: oid, NumPieces: 10, HaveCount: 10, Complete: true},
			{Object: content.NewObjectID(8, "g", 1), NumPieces: 5, HaveCount: 2},
		}},
		&StatsReport{Object: oid, URLHash: "abcd", CP: 77, Size: 1 << 30,
			StartUnixMs: 1349049600000, EndUnixMs: 1349053200000,
			BytesInfra: 3 << 28, BytesPeers: 1 << 29, Outcome: OutcomeCompleted,
			PeersReturned: 27,
			FromPeers:     []PeerBytes{{GUID: g, Bytes: 12345}},
			Token:         []byte("edge-token")},
		&ConfigUpdate{Epoch: 3, MaxUploadConns: 8, PerObjectUploadCap: 20,
			UploadRateBps: 1 << 20, CacheTTLSec: 86400},
		&Ping{Nonce: 0xdeadbeef},
		&Pong{Nonce: 0xdeadbeef},
		&Handshake{GUID: g, Object: oid, Token: []byte("t")},
		&HandshakeAck{OK: true, NumPieces: 512},
		&HandshakeAck{OK: false, Reason: "unknown object"},
		&BitfieldMsg{Bits: []byte{0xff, 0x80}},
		&Have{Index: 12},
		&Request{Index: 13},
		&Piece{Index: 13, Data: []byte("piece-bytes")},
		&Cancel{Index: 13},
		&Goodbye{Reason: "done"},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%v round trip mismatch:\n sent %#v\n got  %#v", m.Type(), m, got)
		}
	}
}

func TestReadMessageStream(t *testing.T) {
	var buf bytes.Buffer
	in := []Message{&Ping{1}, &Have{2}, &Goodbye{"x"}}
	for _, m := range in {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range in {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("message %d mismatch", i)
		}
	}
	if _, err := ReadMessage(&buf); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

func TestReadMessageRejectsCorruption(t *testing.T) {
	encode := func(m Message) []byte {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := encode(&Piece{Index: 3, Data: []byte("hello world")})

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), base...)
		b[0] = 'X'
		if _, err := ReadMessage(bytes.NewReader(b)); err == nil {
			t.Error("accepted bad magic")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		b := append([]byte(nil), base...)
		b[2] = 99
		if _, err := ReadMessage(bytes.NewReader(b)); err == nil {
			t.Error("accepted bad version")
		}
	})
	t.Run("unknown type", func(t *testing.T) {
		b := append([]byte(nil), base...)
		b[3] = byte(maxMsgType) + 10
		if _, err := ReadMessage(bytes.NewReader(b)); err == nil {
			t.Error("accepted unknown type")
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		b := append([]byte(nil), base...)
		b[len(b)-1] ^= 0xff
		if _, err := ReadMessage(bytes.NewReader(b)); err == nil {
			t.Error("accepted corrupted payload (CRC should catch)")
		}
	})
	t.Run("oversized declared length", func(t *testing.T) {
		b := append([]byte(nil), base...)
		binary.BigEndian.PutUint32(b[4:8], MaxPayload+1)
		if _, err := ReadMessage(bytes.NewReader(b)); err == nil {
			t.Error("accepted oversized frame")
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		b := base[:len(base)-3]
		if _, err := ReadMessage(bytes.NewReader(b)); err == nil {
			t.Error("accepted truncated frame")
		}
	})
}

// TestDecoderHostileLengths ensures a frame that declares an inner byte
// string longer than the payload fails cleanly rather than allocating.
func TestDecoderHostileLengths(t *testing.T) {
	var e encoder
	e.u32(0xffffffff) // claimed token length in a Query-like body
	d := decoder{buf: e.buf}
	if b := d.bytes(); b != nil || d.err == nil {
		t.Error("hostile length not rejected")
	}
}

func TestQueryResultQuickRoundTrip(t *testing.T) {
	f := func(seed int64, nPeers uint8, errStr string) bool {
		r := rand.New(rand.NewSource(seed))
		m := &QueryResult{Object: content.NewObjectID(content.CPCode(r.Uint32()), "u", r.Uint32()), Err: errStr}
		for i := 0; i < int(nPeers%50); i++ {
			m.Peers = append(m.Peers, PeerInfo{
				GUID:     id.RandGUID(r),
				Addr:     "h:1",
				NAT:      NATClass(r.Intn(6)),
				ASN:      r.Uint32(),
				Location: r.Uint32(),
			})
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			return false
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStatsReportQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := &StatsReport{
			Object:        content.NewObjectID(1, "u", 1),
			URLHash:       "h",
			CP:            r.Uint32(),
			Size:          r.Uint64(),
			StartUnixMs:   r.Int63(),
			EndUnixMs:     r.Int63(),
			BytesInfra:    r.Uint64(),
			BytesPeers:    r.Uint64(),
			Outcome:       Outcome(r.Intn(4)),
			PeersReturned: uint16(r.Intn(41)),
			Token:         []byte{1, 2, 3},
		}
		for i := 0; i < r.Intn(10); i++ {
			m.FromPeers = append(m.FromPeers, PeerBytes{GUID: id.RandGUID(r), Bytes: r.Uint64()})
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			return false
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for tt := TLogin; tt < maxMsgType; tt++ {
		if s := tt.String(); s == "" || s[:4] == "MSG(" {
			t.Errorf("missing name for message type %d", tt)
		}
	}
	for n := NATNone; n <= NATBlocked; n++ {
		if n.String() == "unknown" {
			t.Errorf("missing name for NAT class %d", n)
		}
	}
	for o := OutcomeCompleted; o <= OutcomeAborted; o++ {
		if o.String() == "unknown" {
			t.Errorf("missing name for outcome %d", o)
		}
	}
}
