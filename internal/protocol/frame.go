// Package protocol defines NetSession's wire protocols: the control-plane
// protocol spoken between peers and connection nodes over a persistent TCP
// connection (§3.4, §3.6), and the swarming protocol spoken between peers,
// which is "not unlike BitTorrent's" (§3.4) but has no incentive mechanism —
// there is deliberately no choke/unchoke machinery.
//
// Every message travels in a frame:
//
//	+-------+---------+------+-----------+----------+---------+
//	| magic | version | type | length(4) | crc32(4) | payload |
//	|  2 B  |   1 B   | 1 B  |   u32 BE  |  u32 BE  |   ...   |
//	+-------+---------+------+-----------+----------+---------+
//
// The CRC covers the payload only; it rejects corrupt frames cheaply before
// any piece-level SHA-256 verification happens.
package protocol

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Framing constants.
const (
	magic0  = 'N'
	magic1  = 'S'
	Version = 1
	// MaxPayload bounds a frame payload; larger frames are rejected before
	// allocation, protecting servers from hostile peers.
	MaxPayload = 8 << 20

	headerLen = 12
)

// MsgType identifies the message carried in a frame.
type MsgType uint8

// Control-plane message types.
const (
	TLogin MsgType = iota + 1
	TLoginAck
	TQuery
	TQueryResult
	TConnectTo
	TRegister
	TUnregister
	TReAdd
	TReAddReply
	TStatsReport
	TConfigUpdate
	TPing
	TPong

	// Swarm message types.
	THandshake
	THandshakeAck
	TBitfield
	THave
	TRequest
	TPiece
	TCancel
	TGoodbye

	maxMsgType
)

var typeNames = map[MsgType]string{
	TLogin: "LOGIN", TLoginAck: "LOGIN-ACK", TQuery: "QUERY",
	TQueryResult: "QUERY-RESULT", TConnectTo: "CONNECT-TO",
	TRegister: "REGISTER", TUnregister: "UNREGISTER", TReAdd: "RE-ADD",
	TReAddReply: "RE-ADD-REPLY", TStatsReport: "STATS", TConfigUpdate: "CONFIG",
	TPing: "PING", TPong: "PONG", THandshake: "HANDSHAKE",
	THandshakeAck: "HANDSHAKE-ACK", TBitfield: "BITFIELD", THave: "HAVE",
	TRequest: "REQUEST", TPiece: "PIECE", TCancel: "CANCEL", TGoodbye: "GOODBYE",
}

func (t MsgType) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("MSG(%d)", uint8(t))
}

// Message is one protocol message. Concrete message types live in
// messages.go; all satisfy Message.
type Message interface {
	// Type returns the wire type tag.
	Type() MsgType
	encodeTo(e *encoder)
	decodeFrom(d *decoder)
}

// WriteMessage frames and writes one message.
func WriteMessage(w io.Writer, m Message) error {
	var e encoder
	m.encodeTo(&e)
	payload := e.buf
	if len(payload) > MaxPayload {
		return fmt.Errorf("protocol: %v payload %d exceeds max %d", m.Type(), len(payload), MaxPayload)
	}
	hdr := make([]byte, headerLen, headerLen+len(payload))
	hdr[0], hdr[1], hdr[2], hdr[3] = magic0, magic1, Version, byte(m.Type())
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(payload))
	_, err := w.Write(append(hdr, payload...))
	return err
}

// ReadMessage reads and decodes one framed message.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != magic0 || hdr[1] != magic1 {
		return nil, fmt.Errorf("protocol: bad magic %#x%#x", hdr[0], hdr[1])
	}
	if hdr[2] != Version {
		return nil, fmt.Errorf("protocol: unsupported version %d", hdr[2])
	}
	t := MsgType(hdr[3])
	n := binary.BigEndian.Uint32(hdr[4:8])
	if n > MaxPayload {
		return nil, fmt.Errorf("protocol: frame payload %d exceeds max %d", n, MaxPayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("protocol: short payload: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(hdr[8:12]); got != want {
		return nil, fmt.Errorf("protocol: CRC mismatch on %v frame", t)
	}
	m, err := newMessage(t)
	if err != nil {
		return nil, err
	}
	d := decoder{buf: payload}
	m.decodeFrom(&d)
	if d.err != nil {
		return nil, fmt.Errorf("protocol: decode %v: %w", t, d.err)
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("protocol: %v frame has %d trailing bytes", t, len(payload)-d.off)
	}
	return m, nil
}

func newMessage(t MsgType) (Message, error) {
	switch t {
	case TLogin:
		return &Login{}, nil
	case TLoginAck:
		return &LoginAck{}, nil
	case TQuery:
		return &Query{}, nil
	case TQueryResult:
		return &QueryResult{}, nil
	case TConnectTo:
		return &ConnectTo{}, nil
	case TRegister:
		return &Register{}, nil
	case TUnregister:
		return &Unregister{}, nil
	case TReAdd:
		return &ReAdd{}, nil
	case TReAddReply:
		return &ReAddReply{}, nil
	case TStatsReport:
		return &StatsReport{}, nil
	case TConfigUpdate:
		return &ConfigUpdate{}, nil
	case TPing:
		return &Ping{}, nil
	case TPong:
		return &Pong{}, nil
	case THandshake:
		return &Handshake{}, nil
	case THandshakeAck:
		return &HandshakeAck{}, nil
	case TBitfield:
		return &BitfieldMsg{}, nil
	case THave:
		return &Have{}, nil
	case TRequest:
		return &Request{}, nil
	case TPiece:
		return &Piece{}, nil
	case TCancel:
		return &Cancel{}, nil
	case TGoodbye:
		return &Goodbye{}, nil
	}
	return nil, fmt.Errorf("protocol: unknown message type %d", uint8(t))
}
