package cluster

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"netsession/internal/telemetry"
)

// TestMembershipGossipDiscovery is the seed-exchange tentpole property: a
// node seeded with one bare address (no ID, no other members) transitively
// discovers the whole cluster from that seed's status document.
func TestMembershipGossipDiscovery(t *testing.T) {
	// cp-2 is never in the seed list; it is only reachable through cp-1's
	// gossiped view.
	stub2 := &statusStub{doc: `{"nodeId":"cp-2","cnAddrs":["10.0.2.2:700"]}`}
	srv2 := httptest.NewServer(stub2)
	defer srv2.Close()
	stub1 := &statusStub{doc: fmt.Sprintf(
		`{"nodeId":"cp-1","cnAddrs":["10.0.1.2:700"],"members":[{"id":"cp-1","statusUrl":"stub"},{"id":"cp-2","statusUrl":%q}]}`,
		srv2.URL)}
	srv1 := httptest.NewServer(stub1)
	defer srv1.Close()

	reg := telemetry.NewRegistry()
	m := New(Config{
		Self: Node{ID: "cp-0", StatusURL: "http://self.invalid"},
		// Address-only seed: the ID must be learned from the first probe.
		Seeds:         []Node{{StatusURL: srv1.URL}},
		ProbeInterval: 10 * time.Millisecond,
		Telemetry:     reg,
	})
	m.Start()
	defer m.Stop()

	waitFor(t, "transitive discovery of cp-1 and cp-2", func() bool {
		ids := make(map[string]bool)
		for _, n := range m.Members() {
			ids[n.ID] = true
		}
		return ids["cp-0"] && ids["cp-1"] && ids["cp-2"]
	})
	// cp-2 gets probed directly once learned; its CN addresses follow.
	waitFor(t, "cp-2 CN enrichment", func() bool {
		for _, n := range m.Members() {
			if n.ID == "cp-2" && len(n.CNAddrs) == 1 {
				return true
			}
		}
		return false
	})
	if got := reg.Snapshot().Counters["cluster_members_learned_total"]; got < 2 {
		t.Fatalf("cluster_members_learned_total = %d, want >= 2 (identified seed + gossiped member)", got)
	}
}

// TestMembershipJoinModeDefersFirstView verifies a joining node does not
// publish a lonely self-only view: the first OnChange fires only once
// discovery has found another member.
func TestMembershipJoinModeDefersFirstView(t *testing.T) {
	stub := &statusStub{doc: `{"nodeId":"cp-1"}`}
	srv := httptest.NewServer(stub)
	defer srv.Close()

	var mu sync.Mutex
	var views []View
	m := New(Config{
		Self:          Node{ID: "cp-9", StatusURL: "http://self.invalid"},
		Seeds:         []Node{{StatusURL: srv.URL}},
		ProbeInterval: 10 * time.Millisecond,
		JoinMode:      true,
		OnChange: func(v View) {
			mu.Lock()
			views = append(views, v)
			mu.Unlock()
		},
	})
	m.Start()
	defer m.Stop()

	waitFor(t, "first view after discovery", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(views) > 0
	})
	mu.Lock()
	first := views[0]
	mu.Unlock()
	if len(first.Nodes) < 2 {
		t.Fatalf("joining node's first view had %d nodes, want >= 2 (self-only views claim every region)", len(first.Nodes))
	}
}

// TestMembershipProbeIdentityMismatch: a URL that answers as a different
// node must not keep the configured member alive — a reused address would
// otherwise pin a dead node on the ring forever.
func TestMembershipProbeIdentityMismatch(t *testing.T) {
	stub := &statusStub{doc: `{"nodeId":"cp-IMPOSTOR"}`}
	srv := httptest.NewServer(stub)
	defer srv.Close()

	reg := telemetry.NewRegistry()
	m := New(Config{
		Self:          Node{ID: "cp-0"},
		Seeds:         []Node{{ID: "cp-1", StatusURL: srv.URL}},
		ProbeInterval: 5 * time.Millisecond,
		FailAfter:     2,
		Telemetry:     reg,
	})
	m.Start()
	defer m.Stop()

	waitFor(t, "mismatched node demoted", func() bool { return m.AliveCount() == 1 })
	if got := reg.Snapshot().Counters["cluster_probe_identity_mismatch_total"]; got < 2 {
		t.Fatalf("cluster_probe_identity_mismatch_total = %d, want >= FailAfter", got)
	}
	// The impostor's view must not have been merged either.
	for _, n := range m.Members() {
		if n.ID == "cp-IMPOSTOR" {
			t.Fatal("mismatched identity was learned as a member")
		}
	}
}

// TestMembershipGarbageStatusDoc: an oversized or garbage body still proves
// liveness (the 200 is the health signal) but must not balloon memory or
// get merged.
func TestMembershipGarbageStatusDoc(t *testing.T) {
	garbage := strings.Repeat("x", 5<<20) // 5 MiB of not-JSON
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(garbage))
	}))
	defer srv.Close()

	m := New(Config{
		Self:          Node{ID: "cp-0"},
		Seeds:         []Node{{ID: "cp-1", StatusURL: srv.URL}},
		ProbeInterval: 5 * time.Millisecond,
		FailAfter:     2,
	})
	m.Start()
	defer m.Stop()
	time.Sleep(50 * time.Millisecond)
	if m.AliveCount() != 2 {
		t.Fatal("garbage status doc demoted a live node; 200 alone should prove liveness")
	}
}

// TestMembershipStopClosesConnections: Stop must release the probe client's
// kept-alive connections, not leak them until process exit.
func TestMembershipStopClosesConnections(t *testing.T) {
	var mu sync.Mutex
	open := make(map[string]bool)
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"nodeId":"cp-1"}`))
	}))
	srv.Config.ConnState = func(c net.Conn, st http.ConnState) {
		mu.Lock()
		defer mu.Unlock()
		switch st {
		case http.StateNew:
			open[c.RemoteAddr().String()] = true
		case http.StateClosed:
			delete(open, c.RemoteAddr().String())
		}
	}
	srv.Start()
	defer srv.Close()

	m := New(Config{
		Self:          Node{ID: "cp-0"},
		Seeds:         []Node{{ID: "cp-1", StatusURL: srv.URL}},
		ProbeInterval: 5 * time.Millisecond,
	})
	m.Start()
	waitFor(t, "at least one probe connection", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(open) > 0
	})
	m.Stop()
	waitFor(t, "probe connections closed after Stop", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(open) == 0
	})
}

// TestMembershipLeaveTombstone: a node removed via MarkLeft must not be
// resurrected by gossip (survivors still list it for a while), but a direct
// probe from the node itself — a deliberate rejoin — brings it back.
func TestMembershipLeaveTombstone(t *testing.T) {
	// The survivor's status doc still gossips the departed cp-2.
	stub := &statusStub{doc: `{"nodeId":"cp-1","members":[{"id":"cp-2","statusUrl":"http://stale.invalid"}]}`}
	srv := httptest.NewServer(stub)
	defer srv.Close()

	m := New(Config{
		Self:          Node{ID: "cp-0", StatusURL: "http://self.invalid"},
		Seeds:         []Node{{ID: "cp-1", StatusURL: srv.URL}, {ID: "cp-2", StatusURL: "http://stale.invalid"}},
		ProbeInterval: 10 * time.Millisecond,
		FailAfter:     1000, // keep probe-failure demotion out of the picture
	})
	m.Start()
	defer m.Stop()

	m.MarkLeft("cp-2")
	if m.AliveCount() != 2 {
		t.Fatalf("alive count after leave = %d, want 2", m.AliveCount())
	}
	// Several probe rounds of stale gossip must not bring cp-2 back.
	time.Sleep(100 * time.Millisecond)
	for _, n := range m.Members() {
		if n.ID == "cp-2" {
			t.Fatal("gossip resurrected a node that left")
		}
	}
	// A direct probe from cp-2 itself is a deliberate rejoin.
	m.ObserveProber(Node{ID: "cp-2", StatusURL: "http://fresh.invalid"})
	found := false
	for _, n := range m.Members() {
		if n.ID == "cp-2" {
			found = true
		}
	}
	if !found {
		t.Fatal("direct probe did not clear the leave tombstone")
	}
}

// TestRingMoveBoundsOnTransitions asserts the rebalance cost envelope the
// drain and failover paths lean on, across all three transitions: a node
// joining, a node dying, and a node draining must each relocate only the
// regions that node gains or owned — every other region stays put.
func TestRingMoveBoundsOnTransitions(t *testing.T) {
	owners := func(ids []string) map[string]string {
		r := NewRing(ids)
		out := make(map[string]string, len(regionKeys))
		for _, k := range regionKeys {
			id, ok := r.Owner(k)
			if !ok {
				t.Fatalf("no owner for %q with nodes %v", k, ids)
			}
			out[k] = id
		}
		return out
	}

	three := owners([]string{"cp-0", "cp-1", "cp-2"})

	// Join: a fourth node takes some regions; none move between survivors.
	four := owners([]string{"cp-0", "cp-1", "cp-2", "cp-3"})
	joined := 0
	for _, k := range regionKeys {
		switch {
		case four[k] == "cp-3":
			joined++
		case four[k] != three[k]:
			t.Fatalf("join moved %q between pre-existing nodes: %s -> %s", k, three[k], four[k])
		}
	}

	// Kill/drain (ring-wise identical): removing cp-3 returns exactly its
	// regions to their previous owners.
	afterLoss := owners([]string{"cp-0", "cp-1", "cp-2"})
	for _, k := range regionKeys {
		if afterLoss[k] != three[k] {
			t.Fatalf("removal did not restore %q to its prior owner: %s vs %s", k, afterLoss[k], three[k])
		}
	}

	// And removing a different node moves only that node's regions.
	afterDrain := owners([]string{"cp-0", "cp-2", "cp-3"})
	for _, k := range regionKeys {
		if four[k] != "cp-1" && afterDrain[k] != four[k] {
			t.Fatalf("draining cp-1 moved %q owned by %s", k, four[k])
		}
		if four[k] == "cp-1" && afterDrain[k] == "cp-1" {
			t.Fatalf("region %q still owned by drained node", k)
		}
	}
}

// TestMembershipMovedRegionsAcrossLifecycle drives a live membership
// through join, leave, and death and checks the observed view transitions
// obey the same move bounds as the raw ring.
func TestMembershipMovedRegionsAcrossLifecycle(t *testing.T) {
	stub := &statusStub{doc: `{"nodeId":"cp-1"}`}
	srv := httptest.NewServer(stub)
	defer srv.Close()

	var mu sync.Mutex
	var views []View
	m := New(Config{
		Self:          Node{ID: "cp-0", StatusURL: "http://self.invalid"},
		Seeds:         []Node{{ID: "cp-1", StatusURL: srv.URL}},
		ProbeInterval: 10 * time.Millisecond,
		FailAfter:     2,
		OnChange: func(v View) {
			mu.Lock()
			views = append(views, v)
			mu.Unlock()
		},
	})
	m.Start()
	defer m.Stop()

	// Join via prober headers (the push half of seed exchange).
	m.ObserveProber(Node{ID: "cp-2", StatusURL: "http://joiner.invalid"})
	waitFor(t, "three-node view", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(views) > 0 && len(views[len(views)-1].Nodes) == 3
	})
	mu.Lock()
	before := views[len(views)-2] // two-node view preceding the join
	after := views[len(views)-1]
	mu.Unlock()
	for _, k := range regionKeys {
		b, _ := before.Owner(k)
		a, _ := after.Owner(k)
		if a.ID != "cp-2" && a.ID != b.ID {
			t.Fatalf("join moved %q between survivors: %s -> %s", k, b.ID, a.ID)
		}
	}

	// Leave: regions owned by the departed node move, others stay.
	m.MarkLeft("cp-2")
	mu.Lock()
	postLeave := views[len(views)-1]
	mu.Unlock()
	for _, k := range regionKeys {
		b, _ := after.Owner(k)
		a, ok := postLeave.Owner(k)
		if !ok {
			t.Fatalf("no owner for %q after leave", k)
		}
		if b.ID != "cp-2" && a.ID != b.ID {
			t.Fatalf("leave moved %q owned by survivor %s to %s", k, b.ID, a.ID)
		}
		if a.ID == "cp-2" {
			t.Fatalf("region %q still owned by departed node", k)
		}
	}

	// Death by probe failure behaves the same way.
	stub.setDead(true)
	waitFor(t, "death view", func() bool { return m.AliveCount() == 1 })
	mu.Lock()
	postDeath := views[len(views)-1]
	mu.Unlock()
	for _, k := range regionKeys {
		if owner, ok := postDeath.Owner(k); !ok || owner.ID != "cp-0" {
			t.Fatalf("sole survivor does not own %q", k)
		}
	}
}
