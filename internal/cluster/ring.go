// Package cluster implements the membership layer for a multi-node control
// plane: a static seed list refined by HTTP liveness probing, and a
// consistent-hash ring that assigns each network region to exactly one live
// node. The paper ran the control plane on 197 servers (§3.6); its soft-state
// design (RE-ADD, §3.8) exists precisely so that a node can die and the
// region it served can be rebuilt on a survivor from the peers themselves.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// vnodesPerNode is how many virtual nodes each member contributes to the
// ring. With 12 routing keys (the network regions) and a handful of nodes,
// 64 vnodes keep the assignment near-uniform while a membership change moves
// only the dead node's keys.
const vnodesPerNode = 64

// Ring is an immutable consistent-hash ring over node IDs. Build a new one
// on every membership change; lookups are lock-free.
type Ring struct {
	hashes []uint64
	owners []string
}

// NewRing builds a ring over the given node IDs. An empty slice yields an
// empty ring whose Owner always reports false.
func NewRing(ids []string) *Ring {
	r := &Ring{
		hashes: make([]uint64, 0, len(ids)*vnodesPerNode),
		owners: make([]string, 0, len(ids)*vnodesPerNode),
	}
	type vnode struct {
		h  uint64
		id string
	}
	vns := make([]vnode, 0, len(ids)*vnodesPerNode)
	for _, id := range ids {
		for i := 0; i < vnodesPerNode; i++ {
			vns = append(vns, vnode{h: hash64(id + "#" + strconv.Itoa(i)), id: id})
		}
	}
	sort.Slice(vns, func(a, b int) bool {
		if vns[a].h != vns[b].h {
			return vns[a].h < vns[b].h
		}
		// Hash collisions between different nodes' vnodes are vanishingly
		// rare but must break deterministically, or two members could
		// disagree about ownership with identical inputs.
		return vns[a].id < vns[b].id
	})
	for _, v := range vns {
		r.hashes = append(r.hashes, v.h)
		r.owners = append(r.owners, v.id)
	}
	return r
}

// Owner returns the node ID owning a key — the first virtual node clockwise
// from the key's hash. The bool is false only for an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	if len(r.hashes) == 0 {
		return "", false
	}
	h := hash64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.owners[i], true
}

// hash64 is FNV-1a with a splitmix64-style finalizer on top: FNV alone
// clusters for short, similar strings (node IDs differ in one digit), and a
// clustered ring assigns regions lopsidedly.
func hash64(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	x := f.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
