package cluster

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

var regionKeys = []string{
	"NA-East", "NA-West", "NA-Central", "SA", "EU-West", "EU-East",
	"AS-NEA", "AS-SEA", "AS-South", "ME", "AF", "OC",
}

func TestRingCoversEveryKey(t *testing.T) {
	r := NewRing([]string{"cp-0", "cp-1", "cp-2"})
	owners := make(map[string]int)
	for _, k := range regionKeys {
		id, ok := r.Owner(k)
		if !ok {
			t.Fatalf("no owner for %q", k)
		}
		owners[id]++
	}
	// With 64 vnodes per node the 12 regions should not all land on one
	// member; the exact split is hash-determined but must use >1 node.
	if len(owners) < 2 {
		t.Fatalf("degenerate assignment, all regions on one node: %v", owners)
	}
}

func TestRingDeterministicAndEmpty(t *testing.T) {
	a := NewRing([]string{"cp-1", "cp-0"})
	b := NewRing([]string{"cp-0", "cp-1"})
	for _, k := range regionKeys {
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		if oa != ob {
			t.Fatalf("ring not order-independent for %q: %q vs %q", k, oa, ob)
		}
	}
	if _, ok := NewRing(nil).Owner("x"); ok {
		t.Fatal("empty ring claimed an owner")
	}
}

// TestRingStabilityOnNodeLoss is the property the handoff design leans on:
// removing one node only reassigns the keys that node owned — surviving
// nodes keep their regions, so only the dead node's DNs rebuild.
func TestRingStabilityOnNodeLoss(t *testing.T) {
	full := NewRing([]string{"cp-0", "cp-1", "cp-2"})
	without := NewRing([]string{"cp-0", "cp-2"})
	moved, kept := 0, 0
	for _, k := range regionKeys {
		before, _ := full.Owner(k)
		after, _ := without.Owner(k)
		if before == "cp-1" {
			if after == "cp-1" {
				t.Fatalf("key %q still owned by removed node", k)
			}
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %q moved from surviving node %q to %q", k, before, after)
		}
		kept++
	}
	if kept == 0 {
		t.Fatal("no key survived on its original node")
	}
}

// statusStub serves the /v1/status slice the membership probe reads, and
// can be flipped dead at runtime.
type statusStub struct {
	mu   sync.Mutex
	dead bool
	doc  string
}

func (s *statusStub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	dead, doc := s.dead, s.doc
	s.mu.Unlock()
	if dead {
		http.Error(w, "down", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte(doc))
}

func (s *statusStub) setDead(v bool) {
	s.mu.Lock()
	s.dead = v
	s.mu.Unlock()
}

func TestMembershipDetectsDeathAndRecovery(t *testing.T) {
	stub := &statusStub{doc: `{"nodeId":"cp-1","cnAddrs":["10.0.0.2:700"]}`}
	srv := httptest.NewServer(stub)
	defer srv.Close()

	var mu sync.Mutex
	var views []View
	m := New(Config{
		Self: Node{ID: "cp-0", CNAddrs: []string{"10.0.0.1:700"}},
		// The seed omits CNAddrs: the probe must learn them from the status
		// document.
		Seeds:         []Node{{ID: "cp-1", StatusURL: srv.URL}},
		ProbeInterval: 10 * time.Millisecond,
		FailAfter:     2,
		OnChange: func(v View) {
			mu.Lock()
			views = append(views, v)
			mu.Unlock()
		},
	})
	m.Start()
	defer m.Stop()

	lastView := func() (View, int) {
		mu.Lock()
		defer mu.Unlock()
		if len(views) == 0 {
			return View{}, 0
		}
		return views[len(views)-1], len(views)
	}
	v, n := lastView()
	if n == 0 || len(v.Nodes) != 2 {
		t.Fatalf("initial OnChange should list both nodes optimistically, got %+v (%d calls)", v.Nodes, n)
	}

	// Enrichment: within a couple of probes the seed's CN addresses appear.
	waitFor(t, "CN enrichment", func() bool {
		v, _ := lastView()
		for _, node := range v.Nodes {
			if node.ID == "cp-1" && len(node.CNAddrs) == 1 {
				return true
			}
		}
		return false
	})

	stub.setDead(true)
	waitFor(t, "death detection", func() bool { return m.AliveCount() == 1 })
	v, _ = lastView()
	if len(v.Nodes) != 1 || v.Nodes[0].ID != "cp-0" {
		t.Fatalf("view after death: %+v", v.Nodes)
	}
	if owner, ok := v.Owner("EU-West"); !ok || owner.ID != "cp-0" {
		t.Fatalf("sole survivor must own every key, got %+v ok=%v", owner, ok)
	}

	stub.setDead(false)
	waitFor(t, "recovery detection", func() bool { return m.AliveCount() == 2 })
}

func TestMembershipSingleFailureDoesNotDemote(t *testing.T) {
	stub := &statusStub{doc: `{"nodeId":"cp-1"}`}
	srv := httptest.NewServer(stub)
	defer srv.Close()
	m := New(Config{
		Self:          Node{ID: "cp-0"},
		Seeds:         []Node{{ID: "cp-1", StatusURL: srv.URL}},
		ProbeInterval: 5 * time.Millisecond,
		FailAfter:     50,
	})
	m.Start()
	defer m.Stop()
	stub.setDead(true)
	// A few failed probes stay under FailAfter; the node must still be alive.
	time.Sleep(50 * time.Millisecond)
	if m.AliveCount() != 2 {
		t.Fatal("node demoted before FailAfter consecutive failures")
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
