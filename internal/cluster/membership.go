package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Node identifies one control-plane member.
type Node struct {
	// ID is the stable node identity the ring hashes; it must be unique
	// across the cluster and survive restarts.
	ID string
	// StatusURL is the node's operator HTTP base URL (the surface serving
	// GET /v1/status and /metrics); liveness probes hit it.
	StatusURL string
	// CNAddrs are the node's connection-node addresses — what peers dial and
	// what login redirects point at. When a seed omits them, the membership
	// learns them from the node's own status document on the first
	// successful probe.
	CNAddrs []string
}

// View is one consistent observation of the cluster: the alive members and
// the ring routing keys across them. Views are immutable; take a new one
// after every change notification.
type View struct {
	// Nodes are the alive members, sorted by ID.
	Nodes []Node

	ring *Ring
}

// Owner returns the alive node owning a routing key (a region name). The
// bool is false only when the view is empty.
func (v View) Owner(key string) (Node, bool) {
	if v.ring == nil {
		return Node{}, false
	}
	id, ok := v.ring.Owner(key)
	if !ok {
		return Node{}, false
	}
	for _, n := range v.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return Node{}, false
}

// Config configures a membership instance.
type Config struct {
	// Self is this node. It is always considered alive and is never probed.
	Self Node
	// Seeds are the other members from the static join list. Seeds start out
	// optimistically alive, so a cluster booting in any order converges to
	// the full ring without spurious handoffs; a seed that is actually down
	// is demoted after FailAfter failed probes.
	Seeds []Node
	// ProbeInterval is how often every seed is probed; zero selects 1s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe HTTP request; zero selects ProbeInterval.
	ProbeTimeout time.Duration
	// FailAfter is how many consecutive probe failures mark a node dead;
	// zero selects 3. One lost packet must not trigger a region handoff —
	// clearing a directory on a false positive costs a rebuild window.
	FailAfter int
	// OnChange is invoked with the new view whenever the alive set changes
	// (and once at Start with the initial view). It runs on the probe
	// goroutine; implementations must not block for long.
	OnChange func(View)
	// Logf receives debug logging; nil discards.
	Logf func(format string, args ...any)
}

// Membership tracks which members of a static seed list are alive by
// probing their status endpoints, and publishes consistent-hash views over
// the alive set. It is the deliberately simple stand-in for the gossip or
// consensus layer a production deployment would run: the seed list is
// static, and liveness is per-observer — exactly the environment the
// soft-state control plane is designed to tolerate (§3.8).
type Membership struct {
	cfg    Config
	client *http.Client

	mu      sync.Mutex
	members map[string]*memberState
	started bool
	stopped bool

	stopCh chan struct{}
	wg     sync.WaitGroup
}

type memberState struct {
	node  Node
	alive bool
	fails int
}

// New creates a membership instance; call Start to begin probing.
func New(cfg Config) *Membership {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.ProbeInterval
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 3
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	m := &Membership{
		cfg:     cfg,
		client:  &http.Client{Timeout: cfg.ProbeTimeout},
		members: make(map[string]*memberState),
		stopCh:  make(chan struct{}),
	}
	m.members[cfg.Self.ID] = &memberState{node: cfg.Self, alive: true}
	for _, s := range cfg.Seeds {
		if s.ID == "" || s.ID == cfg.Self.ID {
			continue
		}
		m.members[s.ID] = &memberState{node: s, alive: true}
	}
	return m
}

// Start fires the initial OnChange (with every seed optimistically alive)
// and begins the probe loop.
func (m *Membership) Start() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	if m.cfg.OnChange != nil {
		m.cfg.OnChange(m.View())
	}
	m.wg.Add(1)
	go m.loop()
}

// Stop halts probing. It does not notify OnChange — a stopping node is
// leaving, not observing.
func (m *Membership) Stop() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	m.mu.Unlock()
	close(m.stopCh)
	m.wg.Wait()
}

// View returns the current alive view.
func (m *Membership) View() View {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.viewLocked()
}

func (m *Membership) viewLocked() View {
	v := View{}
	ids := make([]string, 0, len(m.members))
	for _, ms := range m.members {
		if ms.alive {
			v.Nodes = append(v.Nodes, ms.node)
			ids = append(ids, ms.node.ID)
		}
	}
	sort.Slice(v.Nodes, func(a, b int) bool { return v.Nodes[a].ID < v.Nodes[b].ID })
	v.ring = NewRing(ids)
	return v
}

// AliveCount returns how many members (including self) are currently alive.
func (m *Membership) AliveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, ms := range m.members {
		if ms.alive {
			n++
		}
	}
	return n
}

func (m *Membership) loop() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case <-t.C:
		}
		if m.probeAll() {
			if m.cfg.OnChange != nil {
				m.cfg.OnChange(m.View())
			}
		}
	}
}

// statusDoc is the slice of the control plane's /v1/status document the
// probe needs: the node's self-declared identity and its CN addresses.
type statusDoc struct {
	NodeID  string   `json:"nodeId"`
	CNAddrs []string `json:"cnAddrs"`
}

// probeAll probes every member but self in parallel and reports whether the
// view changed (liveness flip or CN-address discovery).
func (m *Membership) probeAll() (changed bool) {
	m.mu.Lock()
	targets := make([]Node, 0, len(m.members))
	for _, ms := range m.members {
		if ms.node.ID != m.cfg.Self.ID {
			targets = append(targets, ms.node)
		}
	}
	m.mu.Unlock()

	type result struct {
		id  string
		doc statusDoc
		err error
	}
	results := make([]result, len(targets))
	var wg sync.WaitGroup
	for i, n := range targets {
		wg.Add(1)
		go func(i int, n Node) {
			defer wg.Done()
			doc, err := m.probe(n)
			results[i] = result{id: n.ID, doc: doc, err: err}
		}(i, n)
	}
	wg.Wait()

	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range results {
		ms := m.members[r.id]
		if ms == nil {
			continue
		}
		if r.err != nil {
			ms.fails++
			if ms.alive && ms.fails >= m.cfg.FailAfter {
				ms.alive = false
				changed = true
				m.cfg.Logf("cluster: node %s dead after %d failed probes", r.id, ms.fails)
			}
			continue
		}
		ms.fails = 0
		if !ms.alive {
			ms.alive = true
			changed = true
			m.cfg.Logf("cluster: node %s back alive", r.id)
		}
		if len(ms.node.CNAddrs) == 0 && len(r.doc.CNAddrs) > 0 {
			ms.node.CNAddrs = append([]string(nil), r.doc.CNAddrs...)
			changed = true
		}
	}
	return changed
}

func (m *Membership) probe(n Node) (statusDoc, error) {
	var doc statusDoc
	resp, err := m.client.Get(n.StatusURL + "/v1/status")
	if err != nil {
		return doc, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return doc, &probeError{status: resp.Status}
	}
	// A decode failure still proves liveness — the node answered 200; the
	// enrichment just doesn't happen this round.
	_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&doc)
	return doc, nil
}

type probeError struct{ status string }

func (e *probeError) Error() string { return "probe status " + e.status }
