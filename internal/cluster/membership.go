package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"netsession/internal/telemetry"
)

// Node identifies one control-plane member.
type Node struct {
	// ID is the stable node identity the ring hashes; it must be unique
	// across the cluster and survive restarts. A seed may leave it empty —
	// an address-only seed — and the membership learns the identity from the
	// node's own status document on the first successful probe.
	ID string
	// StatusURL is the node's operator HTTP base URL (the surface serving
	// GET /v1/status and /metrics); liveness probes hit it.
	StatusURL string
	// CNAddrs are the node's connection-node addresses — what peers dial and
	// what login redirects point at. When a seed omits them, the membership
	// learns them from the node's own status document on the first
	// successful probe.
	CNAddrs []string
}

// WireMember is the JSON shape of one member inside a status document's
// alive view — the seed-exchange payload. Every probed node lists whom it
// believes alive, so a new node given any one live address transitively
// discovers the whole cluster.
type WireMember struct {
	ID        string   `json:"id"`
	StatusURL string   `json:"statusUrl"`
	CNAddrs   []string `json:"cnAddrs,omitempty"`
}

// Probe identity headers: every probe announces who is asking and where its
// own status surface lives, so the probed node learns new members from the
// request itself (a joining node becomes known cluster-wide within one
// probe round even though probes are plain GETs).
const (
	HeaderProbeID  = "X-Netsession-Node-Id"
	HeaderProbeURL = "X-Netsession-Status-Url"
)

// View is one consistent observation of the cluster: the alive members and
// the ring routing keys across them. Views are immutable; take a new one
// after every change notification.
type View struct {
	// Nodes are the alive members, sorted by ID.
	Nodes []Node

	ring *Ring
}

// Owner returns the alive node owning a routing key (a region name). The
// bool is false only when the view is empty.
func (v View) Owner(key string) (Node, bool) {
	if v.ring == nil {
		return Node{}, false
	}
	id, ok := v.ring.Owner(key)
	if !ok {
		return Node{}, false
	}
	for _, n := range v.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return Node{}, false
}

// Config configures a membership instance.
type Config struct {
	// Self is this node. It is always considered alive and is never probed.
	Self Node
	// Seeds are the other members from the static join list. Seeds with an
	// ID start out optimistically alive, so a cluster booting in any order
	// converges to the full ring without spurious handoffs; a seed that is
	// actually down is demoted after FailAfter failed probes. Seeds with an
	// empty ID are address-only: they are probed until they answer, at which
	// point the status document's nodeId identifies them — this is how a
	// node joins a cluster knowing nothing but one live address.
	Seeds []Node
	// ProbeInterval is how often every seed is probed; zero selects 1s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe HTTP request; zero selects ProbeInterval.
	ProbeTimeout time.Duration
	// FailAfter is how many consecutive probe failures mark a node dead;
	// zero selects 3. One lost packet must not trigger a region handoff —
	// clearing a directory on a false positive costs a rebuild window.
	FailAfter int
	// JoinMode suppresses the initial OnChange: a node joining an existing
	// cluster through an address-only seed must not publish a lonely
	// self-only view (it would claim every region); the first view fires
	// once discovery has found at least one other member.
	JoinMode bool
	// OnChange is invoked with the new view whenever the alive set changes
	// (and once at Start with the initial view, unless JoinMode). It runs on
	// the probe goroutine — or, for changes triggered by an incoming probe's
	// identity headers, on that HTTP handler's goroutine; implementations
	// must not block for long.
	OnChange func(View)
	// OnAckSeq is invoked after every successful probe with the probed
	// node's advertised acknowledgement sequence (statusDoc.ackSeq). The log
	// pipeline's anti-entropy syncer hangs off this hook: a peer whose ack
	// log advanced is pulled from. Runs on the probe goroutine, outside the
	// membership lock.
	OnAckSeq func(n Node, ackSeq uint64)
	// Telemetry registers the membership counters eagerly; nil skips them.
	Telemetry *telemetry.Registry
	// Logf receives debug logging; nil discards.
	Logf func(format string, args ...any)
}

// Membership tracks which members of the cluster are alive by probing their
// status endpoints, and publishes consistent-hash views over the alive set.
// The member set itself is dynamic: every status document carries the
// answering node's alive view and every probe announces its sender, so a
// seed list of one live address is enough to discover — and be discovered
// by — the whole cluster. Liveness stays per-observer — exactly the
// environment the soft-state control plane is designed to tolerate (§3.8).
type Membership struct {
	cfg    Config
	client *http.Client

	mu      sync.Mutex
	members map[string]*memberState
	// pending are address-only seeds still waiting to be identified by
	// their first successful probe. They never expire: a joining node's
	// only seed must be retried until the cluster answers.
	pending []Node
	// left tombstones nodes that departed via planned drain. Gossip cannot
	// resurrect a left node — only a direct probe from the node itself (a
	// deliberate rejoin) clears the tombstone. Without this, two survivors
	// processing a leave at different times would re-learn the drained node
	// from each other's status documents and flap the ring.
	left    map[string]bool
	started bool
	stopped bool

	learned  *telemetry.Counter
	mismatch *telemetry.Counter

	stopCh chan struct{}
	wg     sync.WaitGroup
}

type memberState struct {
	node  Node
	alive bool
	fails int
}

// New creates a membership instance; call Start to begin probing.
func New(cfg Config) *Membership {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.ProbeInterval
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 3
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	m := &Membership{
		cfg:     cfg,
		client:  &http.Client{Timeout: cfg.ProbeTimeout},
		members: make(map[string]*memberState),
		left:    make(map[string]bool),
		stopCh:  make(chan struct{}),
	}
	if reg := cfg.Telemetry; reg != nil {
		m.learned = reg.Counter("cluster_members_learned_total",
			"cluster members discovered via seed exchange (gossiped views, probe identity headers, identified seeds)", nil)
		m.mismatch = reg.Counter("cluster_probe_identity_mismatch_total",
			"probes whose status document declared a different nodeId than configured for that member", nil)
	}
	m.members[cfg.Self.ID] = &memberState{node: cfg.Self, alive: true}
	for _, s := range cfg.Seeds {
		if s.ID == "" {
			if s.StatusURL != "" {
				m.pending = append(m.pending, s)
			}
			continue
		}
		if s.ID == cfg.Self.ID {
			continue
		}
		m.members[s.ID] = &memberState{node: s, alive: true}
	}
	return m
}

// Start fires the initial OnChange (with every identified seed
// optimistically alive; suppressed in JoinMode) and begins the probe loop.
func (m *Membership) Start() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	if m.cfg.OnChange != nil && !m.cfg.JoinMode {
		m.cfg.OnChange(m.View())
	}
	m.wg.Add(1)
	go m.loop()
}

// Stop halts probing and releases the probe client's kept-alive
// connections. It does not notify OnChange — a stopping node is leaving,
// not observing.
func (m *Membership) Stop() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	m.mu.Unlock()
	close(m.stopCh)
	m.wg.Wait()
	m.client.CloseIdleConnections()
}

// View returns the current alive view.
func (m *Membership) View() View {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.viewLocked()
}

func (m *Membership) viewLocked() View {
	v := View{}
	ids := make([]string, 0, len(m.members))
	for _, ms := range m.members {
		if ms.alive {
			v.Nodes = append(v.Nodes, ms.node)
			ids = append(ids, ms.node.ID)
		}
	}
	sort.Slice(v.Nodes, func(a, b int) bool { return v.Nodes[a].ID < v.Nodes[b].ID })
	v.ring = NewRing(ids)
	return v
}

// AliveCount returns how many members (including self) are currently alive.
func (m *Membership) AliveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, ms := range m.members {
		if ms.alive {
			n++
		}
	}
	return n
}

// Members returns the alive members including self — the seed-exchange
// payload a status document advertises.
func (m *Membership) Members() []Node {
	return m.View().Nodes
}

// Others returns the alive members excluding self — the survivors a planned
// drain hands its regions and ack window to.
func (m *Membership) Others() []Node {
	all := m.View().Nodes
	out := make([]Node, 0, len(all))
	for _, n := range all {
		if n.ID != m.cfg.Self.ID {
			out = append(out, n)
		}
	}
	return out
}

// ObserveProber records the identity a probe request announced. Unknown
// nodes join the member set optimistically alive — this is the push half of
// seed exchange: the cluster learns a joining node from the joiner's own
// probes. A direct probe also clears a leave tombstone (the node itself
// asking back in is a deliberate rejoin).
func (m *Membership) ObserveProber(n Node) {
	if n.ID == "" || n.ID == m.cfg.Self.ID || n.StatusURL == "" {
		return
	}
	m.mu.Lock()
	delete(m.left, n.ID)
	changed := m.addMemberLocked(n)
	m.mu.Unlock()
	if changed && m.cfg.OnChange != nil {
		m.cfg.OnChange(m.View())
	}
}

// MarkLeft removes a node that announced a planned departure. Unlike probe
// death, the node is deleted (not demoted) and tombstoned so gossip cannot
// resurrect it; the change notifies immediately — a drain must not wait out
// FailAfter probe rounds.
func (m *Membership) MarkLeft(id string) {
	if id == "" || id == m.cfg.Self.ID {
		return
	}
	m.mu.Lock()
	ms, present := m.members[id]
	delete(m.members, id)
	m.left[id] = true
	m.mu.Unlock()
	if present {
		m.cfg.Logf("cluster: node %s left (planned drain)", id)
	}
	if present && ms.alive && m.cfg.OnChange != nil {
		m.cfg.OnChange(m.View())
	}
}

// addMemberLocked merges one learned node into the member set; the caller
// holds m.mu. Returns whether the alive view changed.
func (m *Membership) addMemberLocked(n Node) bool {
	if n.ID == "" || n.ID == m.cfg.Self.ID || m.left[n.ID] {
		return false
	}
	if ms := m.members[n.ID]; ms != nil {
		// Known member: enrich addresses we lack, never flip liveness —
		// gossip is hearsay, our own probes decide who is alive.
		changed := false
		if ms.node.StatusURL == "" && n.StatusURL != "" {
			ms.node.StatusURL = n.StatusURL
			changed = true
		}
		if len(ms.node.CNAddrs) == 0 && len(n.CNAddrs) > 0 {
			ms.node.CNAddrs = append([]string(nil), n.CNAddrs...)
			changed = ms.alive
		}
		return changed
	}
	m.members[n.ID] = &memberState{node: n, alive: true}
	if m.learned != nil {
		m.learned.Inc()
	}
	m.cfg.Logf("cluster: learned member %s (%s)", n.ID, n.StatusURL)
	return true
}

func (m *Membership) loop() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case <-t.C:
		}
		changed, acks := m.probeAll()
		if changed && m.cfg.OnChange != nil {
			m.cfg.OnChange(m.View())
		}
		if m.cfg.OnAckSeq != nil {
			for _, a := range acks {
				m.cfg.OnAckSeq(a.node, a.seq)
			}
		}
	}
}

// statusDoc is the slice of the control plane's /v1/status document the
// probe reads: the node's self-declared identity, its CN addresses, its
// alive view (seed exchange), and its ack-log sequence (anti-entropy).
type statusDoc struct {
	NodeID  string       `json:"nodeId"`
	CNAddrs []string     `json:"cnAddrs"`
	Members []WireMember `json:"members"`
	AckSeq  uint64       `json:"ackSeq"`
}

type ackObservation struct {
	node Node
	seq  uint64
}

// probeAll probes every member but self (and every unidentified seed) in
// parallel and reports whether the view changed — a liveness flip, a
// CN-address discovery, a newly identified seed, or a gossiped member.
func (m *Membership) probeAll() (changed bool, acks []ackObservation) {
	m.mu.Lock()
	targets := make([]Node, 0, len(m.members)+len(m.pending))
	for _, ms := range m.members {
		if ms.node.ID != m.cfg.Self.ID && ms.node.StatusURL != "" {
			targets = append(targets, ms.node)
		}
	}
	targets = append(targets, m.pending...)
	m.mu.Unlock()

	type result struct {
		target Node
		doc    statusDoc
		err    error
	}
	results := make([]result, len(targets))
	var wg sync.WaitGroup
	for i, n := range targets {
		wg.Add(1)
		go func(i int, n Node) {
			defer wg.Done()
			doc, err := m.probe(n)
			results[i] = result{target: n, doc: doc, err: err}
		}(i, n)
	}
	wg.Wait()

	m.mu.Lock()
	for _, r := range results {
		if r.target.ID == "" {
			// An address-only seed: a successful probe identifies it.
			if r.err != nil || r.doc.NodeID == "" {
				continue
			}
			identified := r.target
			identified.ID = r.doc.NodeID
			if len(r.doc.CNAddrs) > 0 {
				identified.CNAddrs = append([]string(nil), r.doc.CNAddrs...)
			}
			delete(m.left, identified.ID) // probing it on purpose = rejoin
			if m.addMemberLocked(identified) {
				changed = true
			}
			m.pending = removePending(m.pending, r.target.StatusURL)
			changed = m.mergeGossipLocked(r.doc.Members) || changed
			acks = append(acks, ackObservation{node: identified, seq: r.doc.AckSeq})
			continue
		}
		ms := m.members[r.target.ID]
		if ms == nil {
			continue
		}
		err := r.err
		if err == nil && r.doc.NodeID != "" && r.doc.NodeID != r.target.ID {
			// The URL answered, but as somebody else: a stale seed entry or
			// a swapped deployment. Counting that as liveness would keep a
			// dead node on the ring because its address was reused.
			if m.mismatch != nil {
				m.mismatch.Inc()
			}
			m.cfg.Logf("cluster: probe of %s answered as %q; treating as failure",
				r.target.ID, r.doc.NodeID)
			err = &identityMismatchError{want: r.target.ID, got: r.doc.NodeID}
		}
		if err != nil {
			ms.fails++
			if ms.alive && ms.fails >= m.cfg.FailAfter {
				ms.alive = false
				changed = true
				m.cfg.Logf("cluster: node %s dead after %d failed probes", r.target.ID, ms.fails)
			}
			continue
		}
		ms.fails = 0
		if !ms.alive {
			ms.alive = true
			changed = true
			m.cfg.Logf("cluster: node %s back alive", r.target.ID)
		}
		if len(ms.node.CNAddrs) == 0 && len(r.doc.CNAddrs) > 0 {
			ms.node.CNAddrs = append([]string(nil), r.doc.CNAddrs...)
			changed = true
		}
		changed = m.mergeGossipLocked(r.doc.Members) || changed
		acks = append(acks, ackObservation{node: ms.node, seq: r.doc.AckSeq})
	}
	m.mu.Unlock()
	return changed, acks
}

// mergeGossipLocked folds a probed node's alive view into the member set;
// the caller holds m.mu. Only unknown, non-tombstoned nodes are added
// (optimistically alive, then subject to our own probes); gossip never
// changes what we believe about nodes we already track.
func (m *Membership) mergeGossipLocked(members []WireMember) (changed bool) {
	for _, wm := range members {
		if wm.ID == "" || wm.StatusURL == "" {
			continue
		}
		if m.addMemberLocked(Node{ID: wm.ID, StatusURL: wm.StatusURL, CNAddrs: wm.CNAddrs}) {
			changed = true
		}
	}
	return changed
}

func removePending(pending []Node, statusURL string) []Node {
	out := pending[:0]
	for _, p := range pending {
		if p.StatusURL != statusURL {
			out = append(out, p)
		}
	}
	return out
}

// maxStatusDocBytes caps how much of a status document the probe will read:
// a garbage or hostile endpoint must prove liveness with its 200, not
// balloon the prober's memory.
const maxStatusDocBytes = 1 << 20

func (m *Membership) probe(n Node) (statusDoc, error) {
	var doc statusDoc
	req, err := http.NewRequest(http.MethodGet, n.StatusURL+"/v1/status", nil)
	if err != nil {
		return doc, err
	}
	// Announce ourselves: the probed node learns us from these headers, the
	// push half of seed exchange.
	req.Header.Set(HeaderProbeID, m.cfg.Self.ID)
	req.Header.Set(HeaderProbeURL, m.cfg.Self.StatusURL)
	resp, err := m.client.Do(req)
	if err != nil {
		return doc, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return doc, &probeError{status: resp.Status}
	}
	// A decode failure still proves liveness — the node answered 200; the
	// enrichment just doesn't happen this round.
	if jerr := json.NewDecoder(io.LimitReader(resp.Body, maxStatusDocBytes)).Decode(&doc); jerr != nil {
		return statusDoc{}, nil
	}
	return doc, nil
}

type probeError struct{ status string }

func (e *probeError) Error() string { return "probe status " + e.status }

type identityMismatchError struct{ want, got string }

func (e *identityMismatchError) Error() string {
	return "probe identity mismatch: configured " + e.want + ", status document says " + e.got
}
