package edge

import (
	"sync"
	"testing"

	"netsession/internal/content"
	"netsession/internal/id"
)

// TestConcurrentClients hits one edge server from many goroutines mixing
// authorizations, manifest fetches and ranged reads; run with -race.
func TestConcurrentClients(t *testing.T) {
	obj := testObj(t, 300_000, true)
	srv, _ := startServer(t, obj)

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli := &Client{BaseURL: "http://" + srv.Addr()}
			g := id.NewGUID()
			auth, err := cli.Authorize(g, obj.ID)
			if err != nil {
				t.Errorf("worker %d authorize: %v", w, err)
				return
			}
			m, err := cli.FetchManifest(obj.ID)
			if err != nil {
				t.Errorf("worker %d manifest: %v", w, err)
				return
			}
			for i := 0; i < obj.NumPieces(); i++ {
				data, err := cli.FetchPiece(m, auth.Token, i)
				if err != nil {
					t.Errorf("worker %d piece %d: %v", w, i, err)
					return
				}
				if len(data) != obj.PieceLength(i) {
					t.Errorf("worker %d piece %d short", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestLedgerConcurrency exercises the ledger under parallel writers.
func TestLedgerConcurrency(t *testing.T) {
	l := NewLedger()
	oid := content.NewObjectID(1, "c", 1)
	var wg sync.WaitGroup
	guids := make([]id.GUID, 8)
	for i := range guids {
		guids[i] = id.NewGUID()
	}
	for _, g := range guids {
		wg.Add(1)
		go func(g id.GUID) {
			defer wg.Done()
			l.RecordAuthorization(g, oid)
			for k := 0; k < 100; k++ {
				l.RecordServed(g, oid, 10)
			}
		}(g)
	}
	wg.Wait()
	for _, g := range guids {
		if !l.Authorized(g, oid) {
			t.Fatal("authorization lost")
		}
		if got := l.Served(g, oid); got != 1000 {
			t.Fatalf("served %d, want 1000", got)
		}
	}
	// Negative and zero increments are ignored.
	l.RecordServed(guids[0], oid, -5)
	l.RecordServed(guids[0], oid, 0)
	if got := l.Served(guids[0], oid); got != 1000 {
		t.Fatalf("served %d after no-op increments", got)
	}
}
