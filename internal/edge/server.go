package edge

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"netsession/internal/content"
	"netsession/internal/faults"
	"netsession/internal/id"
	"netsession/internal/telemetry"
)

// ClientConfig is the policy configuration edge servers distribute to peers
// ("these policies and options are securely communicated to the peers
// through the trusted edge-server infrastructure", §3.5).
type ClientConfig struct {
	// MaxUploadConns is the global cap on simultaneous upload connections.
	MaxUploadConns int `json:"maxUploadConns"`
	// PerObjectUploadCap bounds uploads of one object by one peer (§3.9).
	PerObjectUploadCap int `json:"perObjectUploadCap"`
	// UploadRateBps caps aggregate upload bandwidth in bits per second.
	UploadRateBps int64 `json:"uploadRateBps"`
	// CacheTTLSec is how long completed downloads remain shareable.
	CacheTTLSec int `json:"cacheTTLSec"`
	// TokenTTLSec is the authorization token lifetime.
	TokenTTLSec int `json:"tokenTTLSec"`
	// TargetVersion is the client software version the fleet should run;
	// clients below it self-upgrade (§3.8).
	TargetVersion string `json:"targetVersion"`
}

// DefaultClientConfig returns production-like client policy.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{
		MaxUploadConns:     8,
		PerObjectUploadCap: 50,
		UploadRateBps:      0, // unlimited; peers self-throttle on busy links
		CacheTTLSec:        7 * 24 * 3600,
		TokenTTLSec:        24 * 3600,
	}
}

// Server is one edge server: HTTP content delivery plus the authorization,
// manifest, configuration and verification endpoints.
type Server struct {
	catalog *Catalog
	minter  *TokenMinter
	ledger  *Ledger
	cfg     ClientConfig
	metrics *serverMetrics

	httpSrv *http.Server
	ln      net.Listener
}

// serverMetrics holds the edge server's pre-resolved metric handles so hot
// request paths never touch the registry map.
type serverMetrics struct {
	reg         *telemetry.Registry
	bytesServed *telemetry.Counter
	authRejects *telemetry.Counter
	requests    map[string]*telemetry.Counter
	latency     map[string]*telemetry.Histogram
}

func newServerMetrics(reg *telemetry.Registry) *serverMetrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	m := &serverMetrics{
		reg: reg,
		bytesServed: reg.Counter("edge_bytes_served_total",
			"content bytes written to clients", nil),
		authRejects: reg.Counter("edge_auth_rejects_total",
			"requests rejected for invalid or missing authorization", nil),
		requests: make(map[string]*telemetry.Counter),
		latency:  make(map[string]*telemetry.Histogram),
	}
	for _, ep := range []string{"manifest", "data", "authorize", "config", "verify"} {
		m.requests[ep] = reg.Counter("edge_requests_total",
			"HTTP requests served, by endpoint", telemetry.Labels{"endpoint": ep})
		m.latency[ep] = reg.Histogram("edge_request_duration_ms",
			"request latency in milliseconds, by endpoint",
			telemetry.DurationBucketsMs, telemetry.Labels{"endpoint": ep})
	}
	return m
}

// instrument wraps a handler with request counting and latency observation.
func (m *serverMetrics) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	c, lat := m.requests[endpoint], m.latency[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		c.Inc()
		h(w, r)
		lat.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	}
}

// NewServer assembles an edge server. The catalog, minter and ledger may be
// shared across several servers to model one edge tier.
func NewServer(catalog *Catalog, minter *TokenMinter, ledger *Ledger, cfg ClientConfig) *Server {
	s := &Server{
		catalog: catalog, minter: minter, ledger: ledger, cfg: cfg,
		metrics: newServerMetrics(nil),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/objects/{oid}/manifest", s.metrics.instrument("manifest", s.handleManifest))
	mux.HandleFunc("GET /v1/objects/{oid}/data", s.metrics.instrument("data", s.handleData))
	mux.HandleFunc("POST /v1/authorize", s.metrics.instrument("authorize", s.handleAuthorize))
	mux.HandleFunc("GET /v1/config", s.metrics.instrument("config", s.handleConfig))
	mux.HandleFunc("GET /v1/verify", s.metrics.instrument("verify", s.handleVerify))
	telemetry.Mount(mux, s.metrics.reg)
	s.httpSrv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	return s
}

// Metrics exposes the server's telemetry registry (also served on
// GET /metrics and GET /v1/telemetry).
func (s *Server) Metrics() *telemetry.Registry { return s.metrics.reg }

// UseFaults wraps the server's handler with a fault-injection middleware
// (chaos testing: a flapping or erroring edge that clients must ride out,
// §3.3). Call before Start; a nil injector is a no-op.
func (s *Server) UseFaults(inj *faults.Injector) {
	s.httpSrv.Handler = inj.Middleware(s.httpSrv.Handler)
}

// Start listens on addr ("127.0.0.1:0" for tests) and serves in the
// background.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("edge: listen: %w", err)
	}
	s.ln = ln
	go s.httpSrv.Serve(ln)
	return nil
}

// Addr returns the bound address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down: a short graceful drain for in-flight
// requests, then a forced close. The forced close matters — a keep-alive
// connection that never went idle (e.g. one a client dialed and parked)
// stalls Shutdown past its deadline and would otherwise keep being served
// after Close returns.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.httpSrv.Shutdown(ctx)
	s.httpSrv.Close()
	return err
}

// Ledger exposes the served-bytes ledger for in-process control planes.
func (s *Server) Ledger() *Ledger { return s.ledger }

// Catalog exposes the published catalog.
func (s *Server) Catalog() *Catalog { return s.catalog }

func parseOID(s string) (content.ObjectID, error) {
	var oid content.ObjectID
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(oid) {
		return oid, fmt.Errorf("edge: invalid object id %q", s)
	}
	copy(oid[:], b)
	return oid, nil
}

// OIDString renders an ObjectID for URLs (full hex, unlike ObjectID.String
// which abbreviates for logs).
func OIDString(oid content.ObjectID) string { return hex.EncodeToString(oid[:]) }

// manifestJSON is the manifest wire form.
type manifestJSON struct {
	Object   objectJSON `json:"object"`
	HashesHx []string   `json:"pieceHashes"`
}

type objectJSON struct {
	ID         string `json:"id"`
	CP         uint32 `json:"cp"`
	URL        string `json:"url"`
	Version    uint32 `json:"version"`
	Size       int64  `json:"size"`
	PieceSize  int    `json:"pieceSize"`
	P2PEnabled bool   `json:"p2pEnabled"`
}

func toObjectJSON(o *content.Object) objectJSON {
	return objectJSON{
		ID: OIDString(o.ID), CP: uint32(o.CP), URL: o.URL, Version: o.Version,
		Size: o.Size, PieceSize: o.PieceSize, P2PEnabled: o.P2PEnabled,
	}
}

func fromObjectJSON(j objectJSON) (*content.Object, error) {
	oid, err := parseOID(j.ID)
	if err != nil {
		return nil, err
	}
	return &content.Object{
		ID: oid, CP: content.CPCode(j.CP), URL: j.URL, Version: j.Version,
		Size: j.Size, PieceSize: j.PieceSize, P2PEnabled: j.P2PEnabled,
	}, nil
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	oid, err := parseOID(r.PathValue("oid"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	m, ok := s.catalog.Manifest(oid)
	if !ok {
		http.NotFound(w, r)
		return
	}
	out := manifestJSON{Object: toObjectJSON(&m.Object)}
	for _, h := range m.Hashes {
		out.HashesHx = append(out.HashesHx, hex.EncodeToString(h[:]))
	}
	writeJSON(w, out)
}

// handleData serves object bytes with HTTP Range support; NetSession
// downloads from edge servers over "the standard HTTP (or HTTPS) protocol"
// (§3.4). A valid token query parameter attributes the served bytes in the
// ledger.
func (s *Server) handleData(w http.ResponseWriter, r *http.Request) {
	oid, err := parseOID(r.PathValue("oid"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	m, ok := s.catalog.Manifest(oid)
	if !ok {
		http.NotFound(w, r)
		return
	}
	var claimGUID id.GUID
	haveClaim := false
	if tok := r.URL.Query().Get("token"); tok != "" {
		raw, err := DecodeToken(tok)
		if err != nil {
			s.metrics.authRejects.Inc()
			http.Error(w, err.Error(), http.StatusUnauthorized)
			return
		}
		claims, err := s.minter.Verify(raw, time.Now().UnixMilli())
		if err != nil || claims.Object != oid {
			s.metrics.authRejects.Inc()
			http.Error(w, "invalid token", http.StatusUnauthorized)
			return
		}
		claimGUID = claims.GUID
		haveClaim = true
	}
	size := m.Object.Size
	start, length := int64(0), size
	if rng := r.Header.Get("Range"); rng != "" {
		start, length, err = parseRange(rng, size)
		if err != nil {
			http.Error(w, err.Error(), http.StatusRequestedRangeNotSatisfiable)
			return
		}
		w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", start, start+length-1, size))
		w.WriteHeader(http.StatusPartialContent)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	buf := make([]byte, 64<<10)
	var sent int64
	for sent < length {
		n := int64(len(buf))
		if length-sent < n {
			n = length - sent
		}
		content.SyntheticBody(oid, start+sent, buf[:n])
		wn, err := w.Write(buf[:n])
		sent += int64(wn)
		if err != nil {
			break
		}
	}
	s.metrics.bytesServed.Add(sent)
	if haveClaim {
		s.ledger.RecordServed(claimGUID, oid, sent)
	}
}

// parseRange parses a single-range "bytes=a-b" header.
func parseRange(h string, size int64) (start, length int64, err error) {
	spec, ok := strings.CutPrefix(h, "bytes=")
	if !ok || strings.Contains(spec, ",") {
		return 0, 0, fmt.Errorf("edge: unsupported range %q", h)
	}
	a, b, ok := strings.Cut(spec, "-")
	if !ok {
		return 0, 0, fmt.Errorf("edge: malformed range %q", h)
	}
	start, err = strconv.ParseInt(a, 10, 64)
	if err != nil || start < 0 || start >= size {
		return 0, 0, fmt.Errorf("edge: range start out of bounds in %q", h)
	}
	end := size - 1
	if b != "" {
		end, err = strconv.ParseInt(b, 10, 64)
		if err != nil || end < start {
			return 0, 0, fmt.Errorf("edge: range end out of bounds in %q", h)
		}
		if end >= size {
			end = size - 1
		}
	}
	return start, end - start + 1, nil
}

// authorizeRequest is the POST /v1/authorize body.
type authorizeRequest struct {
	GUID   string `json:"guid"`
	Object string `json:"object"`
}

// authorizeResponse carries the token and the per-file policy decision ("a
// policy defined by the content provider is used to decide whether a
// particular file may be downloaded and uploaded", §3.5).
type authorizeResponse struct {
	Token  string       `json:"token"`
	P2P    bool         `json:"p2p"`
	Object objectJSON   `json:"object"`
	Config ClientConfig `json:"config"`
}

func (s *Server) handleAuthorize(w http.ResponseWriter, r *http.Request) {
	var req authorizeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	g, err := id.ParseGUID(req.GUID)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	oid, err := parseOID(req.Object)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	obj, ok := s.catalog.Object(oid)
	if !ok {
		http.NotFound(w, r)
		return
	}
	claims := Claims{
		GUID: g, Object: oid,
		ExpiresMs: time.Now().UnixMilli() + int64(s.cfg.TokenTTLSec)*1000,
		P2P:       obj.P2PEnabled,
	}
	s.ledger.RecordAuthorization(g, oid)
	writeJSON(w, authorizeResponse{
		Token:  EncodeToken(s.minter.Mint(claims)),
		P2P:    obj.P2PEnabled,
		Object: toObjectJSON(obj),
		Config: s.cfg,
	})
}

func (s *Server) handleConfig(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.cfg)
}

// verifyResponse is what the control plane fetches to cross-check client
// usage reports.
type verifyResponse struct {
	Authorized  bool  `json:"authorized"`
	ServedBytes int64 `json:"servedBytes"`
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	g, err := id.ParseGUID(r.URL.Query().Get("guid"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	oid, err := parseOID(r.URL.Query().Get("object"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, verifyResponse{
		Authorized:  s.ledger.Authorized(g, oid),
		ServedBytes: s.ledger.Served(g, oid),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Response already committed; nothing safe to do but drop it.
		return
	}
}
