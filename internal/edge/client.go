package edge

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"netsession/internal/content"
	"netsession/internal/id"
)

// Client is the peer-side HTTP client for one edge server.
type Client struct {
	// BaseURL is e.g. "http://127.0.0.1:8443".
	BaseURL string
	// HTTP is the underlying client; a zero Client uses a default with
	// sane timeouts.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 60 * time.Second}
}

// Authorization is the result of Authorize: the search token, the per-file
// policy, the authoritative object metadata and the client configuration.
type Authorization struct {
	Token  []byte
	P2P    bool
	Object *content.Object
	Config ClientConfig
}

// Authorize obtains a download authorization for (guid, object).
func (c *Client) Authorize(g id.GUID, oid content.ObjectID) (*Authorization, error) {
	body, _ := json.Marshal(authorizeRequest{GUID: g.String(), Object: OIDString(oid)})
	resp, err := c.http().Post(c.BaseURL+"/v1/authorize", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("edge: authorize: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("authorize", resp)
	}
	var ar authorizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		return nil, fmt.Errorf("edge: authorize decode: %w", err)
	}
	tok, err := DecodeToken(ar.Token)
	if err != nil {
		return nil, err
	}
	obj, err := fromObjectJSON(ar.Object)
	if err != nil {
		return nil, err
	}
	return &Authorization{Token: tok, P2P: ar.P2P, Object: obj, Config: ar.Config}, nil
}

// FetchManifest downloads and validates the piece-hash manifest.
func (c *Client) FetchManifest(oid content.ObjectID) (*content.Manifest, error) {
	resp, err := c.http().Get(c.BaseURL + "/v1/objects/" + OIDString(oid) + "/manifest")
	if err != nil {
		return nil, fmt.Errorf("edge: manifest: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("manifest", resp)
	}
	var mj manifestJSON
	if err := json.NewDecoder(resp.Body).Decode(&mj); err != nil {
		return nil, fmt.Errorf("edge: manifest decode: %w", err)
	}
	obj, err := fromObjectJSON(mj.Object)
	if err != nil {
		return nil, err
	}
	m := &content.Manifest{Object: *obj}
	if len(mj.HashesHx) != obj.NumPieces() {
		return nil, fmt.Errorf("edge: manifest has %d hashes for %d pieces", len(mj.HashesHx), obj.NumPieces())
	}
	for _, hx := range mj.HashesHx {
		b, err := hex.DecodeString(hx)
		if err != nil || len(b) != 32 {
			return nil, fmt.Errorf("edge: bad piece hash %q", hx)
		}
		var h content.PieceHash
		copy(h[:], b)
		m.Hashes = append(m.Hashes, h)
	}
	return m, nil
}

// FetchRange downloads [start, start+length) of the object body, passing
// the token so the edge ledger attributes the bytes.
func (c *Client) FetchRange(oid content.ObjectID, token []byte, start, length int64) ([]byte, error) {
	url := fmt.Sprintf("%s/v1/objects/%s/data?token=%s", c.BaseURL, OIDString(oid), EncodeToken(token))
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", start, start+length-1))
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, fmt.Errorf("edge: fetch range: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent && resp.StatusCode != http.StatusOK {
		return nil, httpError("fetch range", resp)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, length+1))
	if err != nil {
		return nil, fmt.Errorf("edge: fetch range body: %w", err)
	}
	if int64(len(data)) != length {
		return nil, fmt.Errorf("edge: fetched %d bytes, want %d", len(data), length)
	}
	return data, nil
}

// FetchPiece downloads one piece.
func (c *Client) FetchPiece(m *content.Manifest, token []byte, index int) ([]byte, error) {
	length := int64(m.Object.PieceLength(index))
	if length == 0 {
		return nil, fmt.Errorf("edge: piece %d out of range", index)
	}
	data, err := c.FetchRange(m.Object.ID, token, m.Object.PieceOffset(index), length)
	if err != nil {
		return nil, err
	}
	if err := m.Verify(index, data); err != nil {
		return nil, err
	}
	return data, nil
}

// Verify asks the edge tier whether it authorized (guid, object) and how
// many bytes it served — the control plane's accounting cross-check.
func (c *Client) Verify(g id.GUID, oid content.ObjectID) (authorized bool, servedBytes int64, err error) {
	url := fmt.Sprintf("%s/v1/verify?guid=%s&object=%s", c.BaseURL, g.String(), OIDString(oid))
	resp, err := c.http().Get(url)
	if err != nil {
		return false, 0, fmt.Errorf("edge: verify: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, 0, httpError("verify", resp)
	}
	var vr verifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		return false, 0, fmt.Errorf("edge: verify decode: %w", err)
	}
	return vr.Authorized, vr.ServedBytes, nil
}

func httpError(op string, resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	return fmt.Errorf("edge: %s: HTTP %d: %s", op, resp.StatusCode, bytes.TrimSpace(body))
}
