package edge

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"netsession/internal/content"
	"netsession/internal/id"
)

func startServer(t *testing.T, objs ...*content.Object) (*Server, *Client) {
	t.Helper()
	cat := NewCatalog()
	for _, o := range objs {
		if err := cat.PublishSynthetic(o); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(cat, NewTokenMinter([]byte("test-key")), NewLedger(), DefaultClientConfig())
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, &Client{BaseURL: "http://" + srv.Addr()}
}

func testObj(t *testing.T, size int64, p2p bool) *content.Object {
	t.Helper()
	obj, err := content.NewObject(42, "game/installer.bin", 1, size, 8192, p2p)
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

func TestTokenMintVerify(t *testing.T) {
	m := NewTokenMinter([]byte("k"))
	claims := Claims{GUID: id.NewGUID(), Object: content.NewObjectID(1, "x", 1), ExpiresMs: 10_000, P2P: true}
	tok := m.Mint(claims)

	got, err := m.Verify(tok, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if got != claims {
		t.Fatalf("claims mismatch: %+v vs %+v", got, claims)
	}
	if _, err := m.Verify(tok, 20_000); err != ErrTokenExpired {
		t.Errorf("expired token: got %v", err)
	}
	tok[3] ^= 0xff
	if _, err := m.Verify(tok, 5000); err != ErrTokenForged {
		t.Errorf("tampered token: got %v", err)
	}
	if _, err := m.Verify(tok[:10], 5000); err != ErrTokenMalformed {
		t.Errorf("short token: got %v", err)
	}
	other := NewTokenMinter([]byte("other"))
	if _, err := other.Verify(m.Mint(claims), 5000); err != ErrTokenForged {
		t.Errorf("cross-key token: got %v", err)
	}
}

func TestTokenEncodeDecode(t *testing.T) {
	m := NewTokenMinter([]byte("k"))
	tok := m.Mint(Claims{GUID: id.NewGUID(), Object: content.NewObjectID(1, "x", 1), ExpiresMs: 1})
	enc := EncodeToken(tok)
	dec, err := DecodeToken(enc)
	if err != nil {
		t.Fatal(err)
	}
	if string(dec) != string(tok) {
		t.Error("token round trip mismatch")
	}
	if _, err := DecodeToken("!!!"); err == nil {
		t.Error("invalid base64 accepted")
	}
}

func TestAuthorizeAndFetch(t *testing.T) {
	obj := testObj(t, 100_000, true)
	srv, cli := startServer(t, obj)

	g := id.NewGUID()
	auth, err := cli.Authorize(g, obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !auth.P2P {
		t.Error("p2p policy lost")
	}
	if auth.Object.Size != obj.Size || auth.Object.ID != obj.ID {
		t.Error("object metadata mismatch")
	}
	if !srv.Ledger().Authorized(g, obj.ID) {
		t.Error("authorization not recorded in ledger")
	}

	m, err := cli.FetchManifest(obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Hashes) != obj.NumPieces() {
		t.Fatalf("manifest has %d hashes, want %d", len(m.Hashes), obj.NumPieces())
	}
	// Fetch and verify every piece.
	for i := 0; i < obj.NumPieces(); i++ {
		data, err := cli.FetchPiece(m, auth.Token, i)
		if err != nil {
			t.Fatalf("piece %d: %v", i, err)
		}
		if len(data) != obj.PieceLength(i) {
			t.Fatalf("piece %d has %d bytes", i, len(data))
		}
	}
	if got := srv.Ledger().Served(g, obj.ID); got != obj.Size {
		t.Errorf("ledger served %d bytes, want %d", got, obj.Size)
	}
	ok, served, err := cli.Verify(g, obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || served != obj.Size {
		t.Errorf("Verify = (%v, %d), want (true, %d)", ok, served, obj.Size)
	}
}

func TestFetchRejectsBadToken(t *testing.T) {
	obj := testObj(t, 10_000, false)
	_, cli := startServer(t, obj)
	// A token minted under a different key must be rejected.
	evil := NewTokenMinter([]byte("evil"))
	tok := evil.Mint(Claims{GUID: id.NewGUID(), Object: obj.ID, ExpiresMs: time.Now().UnixMilli() + 10_000})
	if _, err := cli.FetchRange(obj.ID, tok, 0, 100); err == nil {
		t.Error("forged token accepted")
	}
}

func TestFetchTokenObjectMismatch(t *testing.T) {
	obj1 := testObj(t, 10_000, false)
	obj2, err := content.NewObject(42, "other.bin", 1, 10_000, 8192, false)
	if err != nil {
		t.Fatal(err)
	}
	_, cli := startServer(t, obj1, obj2)
	auth, err := cli.Authorize(id.NewGUID(), obj1.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Token for obj1 must not authorize obj2.
	if _, err := cli.FetchRange(obj2.ID, auth.Token, 0, 100); err == nil {
		t.Error("token accepted for wrong object")
	}
}

func TestRangeRequests(t *testing.T) {
	obj := testObj(t, 50_000, false)
	_, cli := startServer(t, obj)
	auth, err := cli.Authorize(id.NewGUID(), obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	// A mid-object range matches the synthetic body.
	got, err := cli.FetchRange(obj.ID, auth.Token, 1234, 5678)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 5678)
	content.SyntheticBody(obj.ID, 1234, want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range byte %d mismatch", i)
		}
	}
	// Range end past EOF is clamped.
	got, err = cli.FetchRange(obj.ID, auth.Token, obj.Size-10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("tail range returned %d bytes", len(got))
	}
}

func TestParseRange(t *testing.T) {
	cases := []struct {
		h       string
		size    int64
		start   int64
		length  int64
		wantErr bool
	}{
		{"bytes=0-99", 1000, 0, 100, false},
		{"bytes=500-", 1000, 500, 500, false},
		{"bytes=900-1999", 1000, 900, 100, false},
		{"bytes=1000-1001", 1000, 0, 0, true},
		{"bytes=5-3", 1000, 0, 0, true},
		{"bytes=0-1,5-9", 1000, 0, 0, true},
		{"bits=0-1", 1000, 0, 0, true},
		{"bytes=-5", 1000, 0, 0, true},
	}
	for _, c := range cases {
		start, length, err := parseRange(c.h, c.size)
		if (err != nil) != c.wantErr {
			t.Errorf("parseRange(%q): err=%v wantErr=%v", c.h, err, c.wantErr)
			continue
		}
		if err == nil && (start != c.start || length != c.length) {
			t.Errorf("parseRange(%q) = (%d,%d), want (%d,%d)", c.h, start, length, c.start, c.length)
		}
	}
}

func TestHTTPErrors(t *testing.T) {
	obj := testObj(t, 1000, false)
	srv, cli := startServer(t, obj)

	if _, err := cli.FetchManifest(content.NewObjectID(9, "missing", 1)); err == nil {
		t.Error("manifest of unknown object should 404")
	}
	if _, err := cli.Authorize(id.NewGUID(), content.NewObjectID(9, "missing", 1)); err == nil {
		t.Error("authorize of unknown object should 404")
	}
	// Malformed object id in path.
	resp, err := http.Get("http://" + srv.Addr() + "/v1/objects/nothex/manifest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad oid gave HTTP %d, want 400", resp.StatusCode)
	}
	// Oversized authorize body is rejected.
	resp, err = http.Post("http://"+srv.Addr()+"/v1/authorize", "application/json",
		strings.NewReader(`{"guid":"`+strings.Repeat("a", 10_000)+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("oversized body accepted")
	}
}

func TestCatalogPublishManifest(t *testing.T) {
	obj := testObj(t, 5000, true)
	m, err := content.SyntheticManifest(obj)
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog()
	cat.PublishManifest(m)
	if cat.Len() != 1 {
		t.Fatalf("Len=%d", cat.Len())
	}
	got, ok := cat.Object(obj.ID)
	if !ok || got.Size != obj.Size {
		t.Fatal("catalog lookup failed")
	}
}
