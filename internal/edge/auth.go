// Package edge implements the edge-server tier: HTTP content delivery with
// range requests, per-version secure content IDs and piece-hash manifests,
// download authorization tokens, per-file p2p policy, client configuration
// distribution, and the served-bytes ledger the control plane uses to detect
// accounting attacks (§3.5).
package edge

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"

	"netsession/internal/content"
	"netsession/internal/id"
)

// Token claims: who may download what, until when, and whether peer-to-peer
// delivery is allowed. "Before a peer can receive content from other peers,
// it must authenticate to an edge server ...; this yields an encrypted token
// that can be used to search for peers" (§3.5).
type Claims struct {
	GUID      id.GUID
	Object    content.ObjectID
	ExpiresMs int64
	P2P       bool
}

// TokenMinter mints and verifies authorization tokens with an HMAC-SHA256
// key shared by the edge tier and the control plane.
type TokenMinter struct {
	key []byte
}

// NewTokenMinter creates a minter over the shared key.
func NewTokenMinter(key []byte) *TokenMinter {
	k := make([]byte, len(key))
	copy(k, key)
	return &TokenMinter{key: k}
}

const tokenBodyLen = 16 + 32 + 8 + 1

// Mint creates a token for the claims.
func (m *TokenMinter) Mint(c Claims) []byte {
	body := make([]byte, tokenBodyLen)
	copy(body[0:16], c.GUID[:])
	copy(body[16:48], c.Object[:])
	binary.BigEndian.PutUint64(body[48:56], uint64(c.ExpiresMs))
	if c.P2P {
		body[56] = 1
	}
	mac := hmac.New(sha256.New, m.key)
	mac.Write(body)
	return mac.Sum(body)
}

// Errors returned by Verify.
var (
	ErrTokenMalformed = errors.New("edge: malformed token")
	ErrTokenForged    = errors.New("edge: token MAC mismatch")
	ErrTokenExpired   = errors.New("edge: token expired")
)

// Verify checks integrity and expiry (nowMs > 0 enables the expiry check)
// and returns the claims.
func (m *TokenMinter) Verify(token []byte, nowMs int64) (Claims, error) {
	if len(token) != tokenBodyLen+sha256.Size {
		return Claims{}, ErrTokenMalformed
	}
	body, sig := token[:tokenBodyLen], token[tokenBodyLen:]
	mac := hmac.New(sha256.New, m.key)
	mac.Write(body)
	if !hmac.Equal(sig, mac.Sum(nil)) {
		return Claims{}, ErrTokenForged
	}
	var c Claims
	copy(c.GUID[:], body[0:16])
	copy(c.Object[:], body[16:48])
	c.ExpiresMs = int64(binary.BigEndian.Uint64(body[48:56]))
	c.P2P = body[56] == 1
	if nowMs > 0 && nowMs > c.ExpiresMs {
		return c, ErrTokenExpired
	}
	return c, nil
}

// EncodeToken renders a token for transport in URLs and JSON.
func EncodeToken(t []byte) string { return base64.RawURLEncoding.EncodeToString(t) }

// DecodeToken parses the EncodeToken form.
func DecodeToken(s string) ([]byte, error) {
	b, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTokenMalformed, err)
	}
	return b, nil
}
