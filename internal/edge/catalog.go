package edge

import (
	"fmt"
	"sync"

	"netsession/internal/content"
)

// Catalog is the set of objects published to an edge server, with their
// manifests. Edge servers are the authority on secure IDs and piece hashes
// ("edge servers generate and maintain secure IDs of content ... as well as
// secure hashes of the pieces of each file", §3.5).
type Catalog struct {
	mu   sync.RWMutex
	objs map[content.ObjectID]*published
}

type published struct {
	manifest *content.Manifest
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{objs: make(map[content.ObjectID]*published)}
}

// PublishSynthetic publishes an object whose body is the deterministic
// synthetic stream for its ID; the manifest is computed here, making the
// edge the hash authority.
func (c *Catalog) PublishSynthetic(obj *content.Object) error {
	m, err := content.SyntheticManifest(obj)
	if err != nil {
		return fmt.Errorf("edge: publish %v: %w", obj.ID, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.objs[obj.ID] = &published{manifest: m}
	return nil
}

// PublishManifest publishes with a precomputed manifest (e.g. for real file
// content hashed elsewhere).
func (c *Catalog) PublishManifest(m *content.Manifest) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.objs[m.Object.ID] = &published{manifest: m}
}

// Manifest returns the manifest of a published object.
func (c *Catalog) Manifest(oid content.ObjectID) (*content.Manifest, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	p, ok := c.objs[oid]
	if !ok {
		return nil, false
	}
	return p.manifest, true
}

// Object returns the object metadata.
func (c *Catalog) Object(oid content.ObjectID) (*content.Object, bool) {
	m, ok := c.Manifest(oid)
	if !ok {
		return nil, false
	}
	o := m.Object
	return &o, true
}

// Len returns the number of published objects.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.objs)
}
