package edge

import (
	"sync"

	"netsession/internal/content"
	"netsession/internal/id"
)

// Ledger records what the edge tier actually served and authorized. The
// control plane consults it to "prevent accounting attacks, where
// compromised or faulty peers incorrectly report downloads and uploads"
// (§3.5): a client report that names a download the edge never authorized,
// or claims more infrastructure bytes than the edge served, is filtered.
type Ledger struct {
	mu         sync.Mutex
	authorized map[ledgerKey]bool
	served     map[ledgerKey]int64
}

type ledgerKey struct {
	guid id.GUID
	obj  content.ObjectID
}

// NewLedger creates an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		authorized: make(map[ledgerKey]bool),
		served:     make(map[ledgerKey]int64),
	}
}

// RecordAuthorization notes a minted token.
func (l *Ledger) RecordAuthorization(g id.GUID, obj content.ObjectID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.authorized[ledgerKey{g, obj}] = true
}

// RecordServed accumulates infrastructure bytes delivered to a peer for an
// object.
func (l *Ledger) RecordServed(g id.GUID, obj content.ObjectID, n int64) {
	if n <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.served[ledgerKey{g, obj}] += n
}

// Authorized reports whether the edge minted a token for (peer, object).
func (l *Ledger) Authorized(g id.GUID, obj content.ObjectID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.authorized[ledgerKey{g, obj}]
}

// Served returns the infrastructure bytes the edge delivered to the peer
// for the object.
func (l *Ledger) Served(g id.GUID, obj content.ObjectID) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.served[ledgerKey{g, obj}]
}
