// Package fsutil holds the durable-write primitives shared by everything
// that persists crash-critical state: the peer installation state, download
// checkpoints, and the on-disk piece store. The discipline is always the
// same — write a temp file, fsync it, rename it over the target, fsync the
// directory — because a rename without the surrounding fsyncs can lose both
// the data and the directory entry on power failure.
package fsutil

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic durably replaces path with data: the bytes are written to
// a temp file in the same directory, fsynced, renamed over path, and the
// directory is fsynced so the rename itself survives a crash. On any error
// the temp file is removed and the previous contents of path are untouched.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("fsutil: temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(fmt.Errorf("fsutil: write %s: %w", path, err))
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("fsutil: fsync %s: %w", tmpName, err))
	}
	if err := tmp.Chmod(perm); err != nil {
		return cleanup(fmt.Errorf("fsutil: chmod %s: %w", tmpName, err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fsutil: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fsutil: rename to %s: %w", path, err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so renames and removals inside it are durable.
// Filesystems that do not support fsync on directories report that as a
// non-fatal condition and are ignored.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("fsutil: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		// Some filesystems (and some CI sandboxes) reject fsync on
		// directories with EINVAL; durability there is best-effort.
		if pe, ok := err.(*os.PathError); !ok || pe.Err.Error() != "invalid argument" {
			return fmt.Errorf("fsutil: fsync dir %s: %w", dir, err)
		}
	}
	return nil
}
