// Package id defines the peer identifiers used across NetSession: the
// primary GUID chosen at random when the NetSession Interface is first
// installed, and the 160-bit secondary GUIDs chosen freshly at every start,
// which the paper uses to detect cloning and re-imaging of installations
// (§6.2, Figure 12).
package id

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	mrand "math/rand"
)

// GUID is the primary peer identifier: "Each peer has a unique GUID, which
// is chosen at random during installation" (§3.4).
type GUID [16]byte

// NewGUID draws a GUID from crypto/rand. It panics only if the system
// entropy source fails, which is unrecoverable.
func NewGUID() GUID {
	var g GUID
	if _, err := rand.Read(g[:]); err != nil {
		panic(fmt.Sprintf("id: entropy source failed: %v", err))
	}
	return g
}

// RandGUID draws a GUID from a seeded source, for deterministic simulations.
func RandGUID(r *mrand.Rand) GUID {
	var g GUID
	for i := 0; i < len(g); i += 8 {
		v := r.Uint64()
		for j := 0; j < 8; j++ {
			g[i+j] = byte(v >> (8 * j))
		}
	}
	return g
}

func (g GUID) String() string { return hex.EncodeToString(g[:]) }

// Short returns an abbreviated form for logs.
func (g GUID) Short() string { return hex.EncodeToString(g[:4]) }

// IsZero reports whether the GUID is unset.
func (g GUID) IsZero() bool { return g == GUID{} }

// ParseGUID decodes the hex form produced by String.
func ParseGUID(s string) (GUID, error) {
	var g GUID
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(g) {
		return g, fmt.Errorf("id: invalid GUID %q", s)
	}
	copy(g[:], b)
	return g, nil
}

// Secondary is a random 160-bit secondary GUID, "chosen freshly every time
// the software starts" (§6.2).
type Secondary [20]byte

// NewSecondary draws a secondary GUID from crypto/rand.
func NewSecondary() Secondary {
	var s Secondary
	if _, err := rand.Read(s[:]); err != nil {
		panic(fmt.Sprintf("id: entropy source failed: %v", err))
	}
	return s
}

// RandSecondary draws a secondary GUID from a seeded source.
func RandSecondary(r *mrand.Rand) Secondary {
	var s Secondary
	for i := 0; i < 16; i += 8 {
		v := r.Uint64()
		for j := 0; j < 8; j++ {
			s[i+j] = byte(v >> (8 * j))
		}
	}
	v := r.Uint32()
	s[16], s[17], s[18], s[19] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	return s
}

func (s Secondary) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the secondary GUID is unset.
func (s Secondary) IsZero() bool { return s == Secondary{} }

// History is the sliding window of the last secondary GUIDs, newest first,
// reported to the control plane on login. A normal installation reports
// overlapping sequences (5 4 3 2 1, then 6 5 4 3 2, ...); a rolled-back
// installation forks the sequence.
type History struct {
	Window [HistoryLen]Secondary
}

// HistoryLen is the number of secondary GUIDs reported on login ("the last
// five", §6.2).
const HistoryLen = 5

// Push records a fresh secondary GUID at the head of the window.
func (h *History) Push(s Secondary) {
	copy(h.Window[1:], h.Window[:HistoryLen-1])
	h.Window[0] = s
}

// Current returns the newest secondary GUID.
func (h *History) Current() Secondary { return h.Window[0] }
