package id

import (
	"math/rand"
	"testing"
)

func TestNewGUIDUnique(t *testing.T) {
	seen := make(map[GUID]bool)
	for i := 0; i < 1000; i++ {
		g := NewGUID()
		if g.IsZero() {
			t.Fatal("zero GUID generated")
		}
		if seen[g] {
			t.Fatal("duplicate GUID")
		}
		seen[g] = true
	}
}

func TestRandGUIDDeterministic(t *testing.T) {
	a := RandGUID(rand.New(rand.NewSource(5)))
	b := RandGUID(rand.New(rand.NewSource(5)))
	if a != b {
		t.Error("RandGUID not deterministic for same seed")
	}
	c := RandGUID(rand.New(rand.NewSource(6)))
	if a == c {
		t.Error("RandGUID identical across seeds")
	}
}

func TestParseGUIDRoundTrip(t *testing.T) {
	g := RandGUID(rand.New(rand.NewSource(9)))
	got, err := ParseGUID(g.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != g {
		t.Errorf("round trip mismatch: %v vs %v", got, g)
	}
	if _, err := ParseGUID("zz"); err == nil {
		t.Error("invalid hex accepted")
	}
	if _, err := ParseGUID("abcd"); err == nil {
		t.Error("short GUID accepted")
	}
}

func TestHistoryWindow(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var h History
	var all []Secondary
	for i := 0; i < 8; i++ {
		s := RandSecondary(r)
		all = append(all, s)
		h.Push(s)
		if h.Current() != s {
			t.Fatalf("Current() != last pushed at step %d", i)
		}
	}
	// Window holds the last five, newest first.
	for i := 0; i < HistoryLen; i++ {
		want := all[len(all)-1-i]
		if h.Window[i] != want {
			t.Errorf("Window[%d] = %v, want %v", i, h.Window[i], want)
		}
	}
}

func TestHistoryOverlap(t *testing.T) {
	// Consecutive logins of a healthy installation share HistoryLen-1
	// entries — the property the clone detector relies on.
	r := rand.New(rand.NewSource(3))
	var h History
	for i := 0; i < 6; i++ {
		h.Push(RandSecondary(r))
	}
	before := h.Window
	h.Push(RandSecondary(r))
	for i := 0; i < HistoryLen-1; i++ {
		if h.Window[i+1] != before[i] {
			t.Errorf("window did not slide at %d", i)
		}
	}
}
