package faults

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"netsession/internal/telemetry"
)

// decisions records the injector's decision stream for determinism checks.
func decisions(inj *Injector, n int) []bool {
	out := make([]bool, 0, 2*n)
	for i := 0; i < n; i++ {
		out = append(out, inj.FailNext(), inj.DropNext())
	}
	return out
}

func TestSameSeedSameFaultSequence(t *testing.T) {
	cfg := Config{Seed: 7, ErrorRate: 0.3, DropRate: 0.2}
	a := decisions(New(cfg, nil), 200)
	b := decisions(New(cfg, nil), 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at decision %d", i)
		}
	}
	c := decisions(New(Config{Seed: 8, ErrorRate: 0.3, DropRate: 0.2}, nil), 200)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 400-decision streams")
	}
}

func TestDisabledInjectsNothing(t *testing.T) {
	inj := New(Config{}, nil)
	if inj != nil {
		t.Fatal("disabled config must yield a nil injector")
	}
	// The nil injector is a no-op at every call site.
	if inj.Down() || inj.FailNext() || inj.DropNext() || inj.Latency() != 0 {
		t.Fatal("nil injector must inject nothing")
	}
	base := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if h := inj.Middleware(base); h == nil {
		t.Fatal("nil injector Middleware must pass handler through")
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if got := inj.WrapConn(c1); got != c1 {
		t.Fatal("nil injector WrapConn must return the conn unchanged")
	}
}

func TestMiddlewareErrorRate(t *testing.T) {
	reg := telemetry.NewRegistry()
	inj := New(Config{Seed: 3, ErrorRate: 1}, reg)
	srv := httptest.NewServer(inj.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/data")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ErrorRate=1: got status %d, want 503", resp.StatusCode)
	}

	// Exempt observability paths must never be faulted.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics must be exempt: got status %d", resp.StatusCode)
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `faults_injected_total{kind="error"} 1`) {
		t.Fatalf("injected error not counted:\n%s", buf.String())
	}
}

func TestMiddlewareDropSeversConnection(t *testing.T) {
	inj := New(Config{Seed: 3, DropRate: 1}, nil)
	srv := httptest.NewServer(inj.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/data")
	if err == nil {
		resp.Body.Close()
		t.Fatalf("DropRate=1: want transport error, got status %d", resp.StatusCode)
	}
}

func TestFlapSchedule(t *testing.T) {
	inj := New(Config{Seed: 1, FlapPeriod: 200 * time.Millisecond, FlapDownFor: 100 * time.Millisecond}, nil)
	if inj.Down() {
		t.Fatal("flap target must start up")
	}
	time.Sleep(150 * time.Millisecond)
	if !inj.Down() {
		t.Fatal("flap target must be down in the trailing window")
	}
	time.Sleep(100 * time.Millisecond) // into the next period's up phase
	if inj.Down() {
		t.Fatal("flap target must come back up next period")
	}
}

func TestWrapConnDrops(t *testing.T) {
	inj := New(Config{Seed: 5, DropRate: 1}, nil)
	c1, c2 := net.Pipe()
	defer c2.Close()
	fc := inj.WrapConn(c1)
	if _, err := fc.Write([]byte("x")); err != ErrInjected {
		t.Fatalf("want ErrInjected on write, got %v", err)
	}
	// The underlying conn was closed by the drop.
	if _, err := c1.Write([]byte("x")); err == nil {
		t.Fatal("underlying conn must be closed after injected drop")
	}
}

func TestCountersEagerlyRegistered(t *testing.T) {
	reg := telemetry.NewRegistry()
	New(Config{Seed: 1, ErrorRate: 0.1}, reg)
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"latency", "error", "drop", "flap"} {
		want := `faults_injected_total{kind="` + kind + `"} 0`
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("missing eager series %q in:\n%s", want, buf.String())
		}
	}
}
