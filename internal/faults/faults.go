// Package faults is the deterministic fault-injection harness. A seeded
// Injector wraps the system's trust boundaries — edge HTTP handlers
// (middleware), CN and swarm net.Conns (WrapConn), and simulated peers
// (SimConfig) — and injects the failure modes the paper's reliability story
// is built around: flapping or erroring edge servers that the client must
// ride out via its CDN fallback (§3.3), dying control-plane nodes that
// force CN failover (§3.8), and unreliable or lying peers whose pieces fail
// hash verification (§3.5). All randomness flows from one seeded generator,
// so a fault schedule is reproducible: same seed, same decision sequence.
package faults

import (
	"math/rand"
	"sync"
	"time"

	"netsession/internal/telemetry"
)

// Config describes the faults to inject. The zero value injects nothing.
type Config struct {
	// Seed makes the fault schedule reproducible; 0 selects a fixed
	// default seed (still deterministic).
	Seed int64
	// LatencyMin/LatencyMax delay each request or read by a uniform
	// duration in [min, max]. Zero max disables latency injection.
	LatencyMin time.Duration
	LatencyMax time.Duration
	// ErrorRate is the probability in [0,1] that a request fails with an
	// injected error (HTTP 503 for middleware, write error for conns).
	ErrorRate float64
	// DropRate is the probability in [0,1] that a connection is severed
	// mid-flight (hijack+close for HTTP, forced close for conns).
	DropRate float64
	// RejectRate is the probability in [0,1] that a request is refused with
	// explicit backpressure (HTTP 429 + Retry-After) instead of served — the
	// knob that chaos-tests whether uploaders honor the server's pushback
	// rather than hammering it.
	RejectRate float64
	// FlapPeriod/FlapDownFor model a flapping server: within every
	// FlapPeriod window the target is up first, then hard-down for the
	// trailing FlapDownFor. Zero period disables flapping.
	FlapPeriod  time.Duration
	FlapDownFor time.Duration
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return c.LatencyMax > 0 || c.ErrorRate > 0 || c.DropRate > 0 || c.RejectRate > 0 ||
		(c.FlapPeriod > 0 && c.FlapDownFor > 0)
}

// Injector draws fault decisions from a single seeded stream. Decisions are
// serialized under a mutex, so the sequence of outcomes is a deterministic
// function of the seed and the order in which call sites consult the
// injector. All methods are safe for concurrent use; a nil *Injector
// injects nothing, so call sites need no guards.
type Injector struct {
	cfg   Config
	epoch time.Time // flap phase reference: created "up"

	mu  sync.Mutex
	rng *rand.Rand

	latencies *telemetry.Counter
	errors    *telemetry.Counter
	drops     *telemetry.Counter
	flaps     *telemetry.Counter
	rejects   *telemetry.Counter
}

// New creates an injector for cfg, eagerly registering its
// faults_injected_total counters in reg (nil reg skips telemetry) so the
// series appear in /metrics even before the first fault fires.
func New(cfg Config, reg *telemetry.Registry) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	inj := &Injector{
		cfg:   cfg,
		epoch: time.Now(),
		rng:   rand.New(rand.NewSource(seed)),
	}
	if reg != nil {
		const name = "faults_injected_total"
		const help = "Injected faults by kind."
		inj.latencies = reg.Counter(name, help, telemetry.Labels{"kind": "latency"})
		inj.errors = reg.Counter(name, help, telemetry.Labels{"kind": "error"})
		inj.drops = reg.Counter(name, help, telemetry.Labels{"kind": "drop"})
		inj.flaps = reg.Counter(name, help, telemetry.Labels{"kind": "flap"})
		inj.rejects = reg.Counter(name, help, telemetry.Labels{"kind": "reject"})
	}
	return inj
}

func inc(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

// Down reports whether the flap schedule currently has the target hard-down.
// The target starts up: within each FlapPeriod window the trailing
// FlapDownFor is the outage.
func (i *Injector) Down() bool {
	if i == nil || i.cfg.FlapPeriod <= 0 || i.cfg.FlapDownFor <= 0 {
		return false
	}
	phase := time.Since(i.epoch) % i.cfg.FlapPeriod
	if phase >= i.cfg.FlapPeriod-i.cfg.FlapDownFor {
		inc(i.flaps)
		return true
	}
	return false
}

// Latency returns the injected delay for one operation (zero when latency
// injection is off). Callers sleep it themselves.
func (i *Injector) Latency() time.Duration {
	if i == nil || i.cfg.LatencyMax <= 0 {
		return 0
	}
	span := i.cfg.LatencyMax - i.cfg.LatencyMin
	d := i.cfg.LatencyMin
	if span > 0 {
		i.mu.Lock()
		d += time.Duration(i.rng.Int63n(int64(span)))
		i.mu.Unlock()
	}
	if d > 0 {
		inc(i.latencies)
	}
	return d
}

// FailNext draws the error-rate coin for one operation.
func (i *Injector) FailNext() bool {
	if i == nil || i.cfg.ErrorRate <= 0 {
		return false
	}
	i.mu.Lock()
	hit := i.rng.Float64() < i.cfg.ErrorRate
	i.mu.Unlock()
	if hit {
		inc(i.errors)
	}
	return hit
}

// DropNext draws the connection-drop coin for one operation.
func (i *Injector) DropNext() bool {
	if i == nil || i.cfg.DropRate <= 0 {
		return false
	}
	i.mu.Lock()
	hit := i.rng.Float64() < i.cfg.DropRate
	i.mu.Unlock()
	if hit {
		inc(i.drops)
	}
	return hit
}

// RejectNext draws the backpressure coin for one operation.
func (i *Injector) RejectNext() bool {
	if i == nil || i.cfg.RejectRate <= 0 {
		return false
	}
	i.mu.Lock()
	hit := i.rng.Float64() < i.cfg.RejectRate
	i.mu.Unlock()
	if hit {
		inc(i.rejects)
	}
	return hit
}

// SimConfig configures fault injection inside the discrete-event simulator,
// which has its own clock and failure model (peer churn): here faults are
// extra mid-download server-failure events, reproducing the churn-heavy
// peer populations real deployments see. A separate seed keeps the fault
// stream independent of the scenario stream, so disabling faults leaves the
// base simulation byte-identical.
type SimConfig struct {
	// Seed seeds the dedicated fault RNG; 0 selects a fixed default.
	Seed int64
	// ServerFailProb is the probability in [0,1] that a serving peer
	// chosen for a flow is killed mid-download, forcing the client onto
	// its remaining peers and the edge.
	ServerFailProb float64
}

// Enabled reports whether the sim fault layer injects anything.
func (c SimConfig) Enabled() bool { return c.ServerFailProb > 0 }
