package faults

import (
	"errors"
	"net"
	"time"
)

// ErrInjected is the error surfaced by a faulted connection operation.
var ErrInjected = errors.New("faults: injected connection failure")

// WrapConn wraps a net.Conn with the injector's fault model: reads and
// writes may be delayed, fail, or sever the connection according to the
// seeded schedule. A nil injector returns c unchanged.
func (i *Injector) WrapConn(c net.Conn) net.Conn {
	if i == nil {
		return c
	}
	return &faultConn{Conn: c, inj: i}
}

type faultConn struct {
	net.Conn
	inj *Injector
}

func (fc *faultConn) Read(p []byte) (int, error) {
	if fc.inj.DropNext() {
		fc.Conn.Close()
		return 0, ErrInjected
	}
	if d := fc.inj.Latency(); d > 0 {
		time.Sleep(d)
	}
	return fc.Conn.Read(p)
}

func (fc *faultConn) Write(p []byte) (int, error) {
	if fc.inj.DropNext() {
		fc.Conn.Close()
		return 0, ErrInjected
	}
	if fc.inj.FailNext() {
		return 0, ErrInjected
	}
	return fc.Conn.Write(p)
}
