package faults

import (
	"net/http"
	"time"
)

// exemptPaths are never faulted: observability must stay reachable while
// the data path burns, or the harness blinds the very telemetry the chaos
// tests assert on.
var exemptPaths = map[string]bool{
	"/metrics":      true,
	"/v1/telemetry": true,
	"/healthz":      true,
}

// Middleware wraps an HTTP handler with the injector's fault model: flap
// outages and connection drops sever the TCP connection without a response
// (what a crashed edge looks like from the client), injected errors return
// 503, and latency is added before the handler runs. A nil injector returns
// next unchanged.
func (i *Injector) Middleware(next http.Handler) http.Handler {
	if i == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exemptPaths[r.URL.Path] {
			next.ServeHTTP(w, r)
			return
		}
		if i.Down() || i.DropNext() {
			abortConn(w)
			return
		}
		if d := i.Latency(); d > 0 {
			time.Sleep(d)
		}
		if i.FailNext() {
			http.Error(w, "fault injected", http.StatusServiceUnavailable)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// abortConn kills the underlying TCP connection so the client sees a
// transport error, not an HTTP status. Falls back to 503 when the
// ResponseWriter cannot be hijacked.
func abortConn(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "fault injected", http.StatusServiceUnavailable)
		return
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return
	}
	conn.Close()
}
