package geo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// countrySpec seeds the synthetic atlas. Weights are relative peer-population
// shares, calibrated so the continental totals match the deployment overview
// in Section 4.2 of the paper (NA ≈ 27%, EU ≈ 35%, sizable SA and Asia
// groups, observed connections from 239 countries and territories — we model
// the heavy head explicitly and pool the long tail).
type countrySpec struct {
	code      CountryCode
	name      string
	continent Continent
	weight    float64
	center    Coordinates
	tzOffset  int
	// downMbps/upMbps are mean access-link speeds; upstream is much smaller
	// than downstream on typical broadband (paper §5.2, citing [11]).
	downMbps float64
	upMbps   float64
}

var countrySpecs = []countrySpec{
	// North America: 27% total.
	{"US", "United States", NorthAmerica, 20.0, Coordinates{39.8, -98.6}, -6, 18, 3.5},
	{"CA", "Canada", NorthAmerica, 3.0, Coordinates{56.1, -106.3}, -6, 16, 3},
	{"MX", "Mexico", NorthAmerica, 4.0, Coordinates{23.6, -102.5}, -6, 6, 1.2},
	// South America: ~10%.
	{"BR", "Brazil", SouthAmerica, 5.5, Coordinates{-14.2, -51.9}, -3, 7, 1.3},
	{"AR", "Argentina", SouthAmerica, 2.0, Coordinates{-38.4, -63.6}, -3, 6, 1.1},
	{"CL", "Chile", SouthAmerica, 1.0, Coordinates{-35.7, -71.5}, -4, 8, 1.5},
	{"CO", "Colombia", SouthAmerica, 1.5, Coordinates{4.6, -74.3}, -5, 5, 1},
	// Europe: 35% total.
	{"DE", "Germany", Europe, 7.0, Coordinates{51.2, 10.4}, 1, 16, 2.8},
	{"FR", "France", Europe, 5.5, Coordinates{46.2, 2.2}, 1, 15, 2.6},
	{"GB", "United Kingdom", Europe, 5.0, Coordinates{55.4, -3.4}, 0, 14, 2.4},
	{"IT", "Italy", Europe, 3.5, Coordinates{41.9, 12.6}, 1, 10, 1.8},
	{"ES", "Spain", Europe, 3.0, Coordinates{40.5, -3.7}, 1, 12, 2},
	{"PL", "Poland", Europe, 2.5, Coordinates{51.9, 19.1}, 1, 11, 2},
	{"NL", "Netherlands", Europe, 2.0, Coordinates{52.1, 5.3}, 1, 22, 4},
	{"SE", "Sweden", Europe, 1.5, Coordinates{60.1, 18.6}, 1, 24, 6},
	{"RU", "Russia", Europe, 3.0, Coordinates{55.8, 37.6}, 3, 12, 4},
	{"TR", "Turkey", Europe, 1.5, Coordinates{39.0, 35.2}, 3, 8, 1},
	{"RO", "Romania", Europe, 0.5, Coordinates{45.9, 24.9}, 2, 25, 8},
	// Africa: ~4%.
	{"EG", "Egypt", Africa, 1.2, Coordinates{26.8, 30.8}, 2, 4, 0.8},
	{"ZA", "South Africa", Africa, 1.0, Coordinates{-30.6, 22.9}, 2, 5, 1},
	{"NG", "Nigeria", Africa, 0.9, Coordinates{9.1, 8.7}, 1, 3, 0.6},
	{"MA", "Morocco", Africa, 0.9, Coordinates{31.8, -7.1}, 0, 4, 0.8},
	// Asia: ~20%.
	{"CN", "China", Asia, 4.5, Coordinates{35.9, 104.2}, 8, 9, 2},
	{"IN", "India", Asia, 4.0, Coordinates{20.6, 79.0}, 5, 4, 0.8},
	{"JP", "Japan", Asia, 4.0, Coordinates{36.2, 138.3}, 9, 30, 10},
	{"KR", "South Korea", Asia, 2.5, Coordinates{35.9, 127.8}, 9, 35, 12},
	{"TW", "Taiwan", Asia, 1.5, Coordinates{23.7, 121.0}, 8, 20, 5},
	{"TH", "Thailand", Asia, 1.2, Coordinates{15.9, 101.0}, 7, 8, 1.5},
	{"VN", "Vietnam", Asia, 1.0, Coordinates{14.1, 108.3}, 7, 6, 1.2},
	{"ID", "Indonesia", Asia, 1.3, Coordinates{-0.8, 113.9}, 7, 3, 0.6},
	// Oceania: ~2%.
	{"AU", "Australia", Oceania, 1.6, Coordinates{-25.3, 133.8}, 10, 10, 1},
	{"NZ", "New Zealand", Oceania, 0.4, Coordinates{-40.9, 174.9}, 12, 10, 1.2},
}

// Country aggregates the atlas view of one country.
type Country struct {
	Code      CountryCode
	Name      string
	Continent Continent
	Weight    float64
	Center    Coordinates
	Locations []LocationID
	ASNs      []ASN
}

// AtlasConfig controls synthetic atlas generation.
type AtlasConfig struct {
	// CitiesPerCountry is the number of city-granularity locations generated
	// for each modelled country.
	CitiesPerCountry int
	// ASesPerCountry is the number of eyeball ASes generated per country.
	// AS sizes within a country follow a Zipf-like skew, reproducing the
	// heavy-tailed IPs-per-AS distribution in Figure 9c.
	ASesPerCountry int
	// TailCountries adds this many tiny long-tail "territory" countries so
	// the atlas, like the paper's trace, covers a couple hundred country
	// codes (239 in the paper).
	TailCountries int
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultAtlasConfig returns the configuration used by the experiments.
func DefaultAtlasConfig() AtlasConfig {
	return AtlasConfig{
		CitiesPerCountry: 24,
		ASesPerCountry:   10,
		TailCountries:    207, // 32 modelled + 207 tail = 239 country codes
		Seed:             1,
	}
}

// Atlas is an immutable synthetic world model. All lookups are safe for
// concurrent use after generation.
type Atlas struct {
	Countries []Country
	countryIx map[CountryCode]int

	Locations []Location // indexed by LocationID
	ASes      []AS
	asIx      map[ASN]int

	// locWeights is the cumulative sampling distribution over locations.
	locWeights []float64
	// adj is the AS adjacency structure (see adjacency.go).
	adj map[ASN]map[ASN]bool
}

// GenerateAtlas builds a deterministic synthetic atlas.
func GenerateAtlas(cfg AtlasConfig) *Atlas {
	if cfg.CitiesPerCountry <= 0 {
		cfg.CitiesPerCountry = 1
	}
	if cfg.ASesPerCountry <= 0 {
		cfg.ASesPerCountry = 1
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	specs := make([]countrySpec, len(countrySpecs))
	copy(specs, countrySpecs)
	// Long-tail territories: tiny weights, spread across continents.
	tailContinents := []Continent{Africa, Asia, SouthAmerica, Oceania, Europe, NorthAmerica}
	for i := 0; i < cfg.TailCountries; i++ {
		cont := tailContinents[i%len(tailContinents)]
		specs = append(specs, countrySpec{
			code:      CountryCode(fmt.Sprintf("X%c%c", 'A'+(i/26)%26, 'A'+i%26)),
			name:      fmt.Sprintf("Territory %d", i+1),
			continent: cont,
			weight:    0.002,
			center:    Coordinates{Lat: r.Float64()*140 - 60, Lon: r.Float64()*360 - 180},
			tzOffset:  r.Intn(25) - 12,
			downMbps:  2 + r.Float64()*4,
			upMbps:    0.4 + r.Float64(),
		})
	}

	a := &Atlas{
		countryIx: make(map[CountryCode]int, len(specs)),
		asIx:      make(map[ASN]int),
	}
	nextASN := ASN(1000)
	for ci, sp := range specs {
		c := Country{
			Code:      sp.code,
			Name:      sp.name,
			Continent: sp.continent,
			Weight:    sp.weight,
			Center:    sp.center,
		}
		nCities := cfg.CitiesPerCountry
		nASes := cfg.ASesPerCountry
		if sp.weight < 0.01 { // tail territories stay small
			nCities, nASes = 2, 1
		}
		for i := 0; i < nCities; i++ {
			id := LocationID(len(a.Locations))
			// Jitter cities around the country centroid. Spread scales
			// loosely with weight so large countries cover more area.
			spread := 3.0 + sp.weight/2
			loc := Location{
				ID:        id,
				City:      fmt.Sprintf("%s-%02d", sp.code, i+1),
				Country:   sp.code,
				Continent: sp.continent,
				Coord: Coordinates{
					Lat: clampLat(sp.center.Lat + r.NormFloat64()*spread),
					Lon: wrapLon(sp.center.Lon + r.NormFloat64()*spread*1.5),
				},
				TimezoneOffsetHours: sp.tzOffset,
			}
			a.Locations = append(a.Locations, loc)
			c.Locations = append(c.Locations, id)
		}
		for i := 0; i < nASes; i++ {
			asn := nextASN
			nextASN++
			// Zipf-like AS size skew inside each country: the first AS is
			// the incumbent carrying most subscribers.
			w := 1.0 / float64(i+1)
			as := AS{
				Number:       asn,
				Name:         fmt.Sprintf("%s-ISP-%d", sp.code, i+1),
				Country:      sp.code,
				Weight:       w,
				DownMbpsMean: sp.downMbps * (0.7 + r.Float64()*0.6),
				UpMbpsMean:   sp.upMbps * (0.7 + r.Float64()*0.6),
			}
			a.asIx[asn] = len(a.ASes)
			a.ASes = append(a.ASes, as)
			c.ASNs = append(c.ASNs, asn)
		}
		a.countryIx[sp.code] = ci
		a.Countries = append(a.Countries, c)
	}

	// Cumulative per-location sampling weights: country weight split evenly
	// over its cities with mild skew toward the first (largest) cities.
	a.locWeights = make([]float64, len(a.Locations))
	sum := 0.0
	for _, c := range a.Countries {
		n := len(c.Locations)
		denom := 0.0
		for i := 0; i < n; i++ {
			denom += 1 / float64(i+1)
		}
		for i, id := range c.Locations {
			w := c.Weight * (1 / float64(i+1)) / denom
			sum += w
			a.locWeights[id] = sum
		}
	}
	// Normalize cumulative weights to [0,1].
	for i := range a.locWeights {
		a.locWeights[i] /= sum
	}
	a.buildAdjacency(r)
	return a
}

// Country returns the country record for a code.
func (a *Atlas) Country(code CountryCode) (*Country, bool) {
	ix, ok := a.countryIx[code]
	if !ok {
		return nil, false
	}
	return &a.Countries[ix], true
}

// Location returns the location with the given ID.
func (a *Atlas) Location(id LocationID) *Location {
	return &a.Locations[int(id)]
}

// AS returns the AS record for an ASN.
func (a *Atlas) AS(n ASN) (*AS, bool) {
	ix, ok := a.asIx[n]
	if !ok {
		return nil, false
	}
	return &a.ASes[ix], true
}

// SampleLocation draws a location according to the atlas population weights.
func (a *Atlas) SampleLocation(r *rand.Rand) *Location {
	x := r.Float64()
	ix := sort.SearchFloat64s(a.locWeights, x)
	if ix >= len(a.Locations) {
		ix = len(a.Locations) - 1
	}
	return &a.Locations[ix]
}

// SampleAS draws an AS for a peer located in the given country, following
// the per-country AS weight skew.
func (a *Atlas) SampleAS(r *rand.Rand, code CountryCode) *AS {
	c, ok := a.Country(code)
	if !ok || len(c.ASNs) == 0 {
		// Fall back to a uniform AS; only reachable with a corrupt atlas.
		return &a.ASes[r.Intn(len(a.ASes))]
	}
	total := 0.0
	for _, asn := range c.ASNs {
		as, _ := a.AS(asn)
		total += as.Weight
	}
	x := r.Float64() * total
	for _, asn := range c.ASNs {
		as, _ := a.AS(asn)
		x -= as.Weight
		if x <= 0 {
			return as
		}
	}
	as, _ := a.AS(c.ASNs[len(c.ASNs)-1])
	return as
}

func clampLat(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	if v > 85 {
		return 85
	}
	if v < -85 {
		return -85
	}
	return v
}

func wrapLon(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	v = math.Mod(v+180, 360)
	if v < 0 {
		v += 360
	}
	return v - 180
}
