// Package geo provides the synthetic geography substrate used throughout the
// NetSession reproduction: a world atlas of continents, countries, cities and
// autonomous systems, an EdgeScape-like IP geolocation service, the locality
// set hierarchy used by the control plane's peer selector, and the network
// region partitioning of the control plane itself.
//
// The paper relies on Akamai's proprietary EdgeScape database to map peer IP
// addresses to (location, AS) pairs. This package is the substitution: it
// generates a deterministic synthetic atlas whose marginal distributions
// (peer share per continent, AS size skew, access bandwidth asymmetry) are
// calibrated to the figures reported in Section 4 of the paper.
package geo

import (
	"fmt"
	"math"
)

// Continent identifies one of the six inhabited continents using a
// two-letter code.
type Continent string

// Continent codes.
const (
	NorthAmerica Continent = "NA"
	SouthAmerica Continent = "SA"
	Europe       Continent = "EU"
	Africa       Continent = "AF"
	Asia         Continent = "AS"
	Oceania      Continent = "OC"
)

// Continents lists all continent codes in stable order.
var Continents = []Continent{NorthAmerica, SouthAmerica, Europe, Africa, Asia, Oceania}

// CountryCode is an ISO 3166-1 alpha-2 country code. Territories and areas
// of geographic interest may also carry codes, mirroring EdgeScape.
type CountryCode string

// ASN is an autonomous system number.
type ASN uint32

// LocationID identifies a city-granularity location in the atlas.
type LocationID uint32

// Coordinates is a latitude/longitude pair in decimal degrees.
type Coordinates struct {
	Lat float64
	Lon float64
}

// earthRadiusKm is the mean Earth radius used by Distance.
const earthRadiusKm = 6371.0

// DistanceKm returns the great-circle distance between two coordinate pairs
// in kilometres, using the haversine formula.
func DistanceKm(a, b Coordinates) float64 {
	lat1 := a.Lat * math.Pi / 180
	lat2 := b.Lat * math.Pi / 180
	dLat := (b.Lat - a.Lat) * math.Pi / 180
	dLon := (b.Lon - a.Lon) * math.Pi / 180
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(s)))
}

// Location is a city-granularity location, the same granularity EdgeScape
// reports for well-covered regions (the paper notes 218 distinct locations
// in Pennsylvania alone).
type Location struct {
	ID        LocationID
	City      string
	Country   CountryCode
	Continent Continent
	Coord     Coordinates
	// TimezoneOffsetHours is the UTC offset used to convert the diurnal
	// workload pattern into local time (Figure 3c).
	TimezoneOffsetHours int
}

// AS describes an autonomous system in the atlas.
type AS struct {
	Number  ASN
	Name    string
	Country CountryCode
	// Weight is the relative share of the country's peers homed in this AS.
	Weight float64
	// Access-link profile for subscribers of this AS. Broadband links are
	// asymmetric (Dischinger et al., cited as [11] in the paper): upstream
	// is typically a small fraction of downstream.
	DownMbpsMean float64
	UpMbpsMean   float64
}

// ReportRegion is one of the ten coarse regions used by Table 2 of the
// paper to break down customer downloads.
type ReportRegion string

// Report regions, in the column order of Table 2.
const (
	RegionUSEast        ReportRegion = "US East"
	RegionUSWest        ReportRegion = "US West"
	RegionAmericasOther ReportRegion = "Americas Other"
	RegionIndia         ReportRegion = "India"
	RegionChina         ReportRegion = "China"
	RegionAsiaOther     ReportRegion = "Asia Other"
	RegionEurope        ReportRegion = "Europe"
	RegionAfrica        ReportRegion = "Africa"
	RegionOceania       ReportRegion = "Oceania"
)

// ReportRegions lists the Table 2 regions in column order.
var ReportRegions = []ReportRegion{
	RegionUSEast, RegionUSWest, RegionAmericasOther,
	RegionIndia, RegionChina, RegionAsiaOther,
	RegionEurope, RegionAfrica, RegionOceania,
}

// ReportRegionOf classifies a location into a Table 2 report region.
func ReportRegionOf(loc *Location) ReportRegion {
	switch loc.Continent {
	case Europe:
		return RegionEurope
	case Africa:
		return RegionAfrica
	case Oceania:
		return RegionOceania
	case Asia:
		switch loc.Country {
		case "IN":
			return RegionIndia
		case "CN":
			return RegionChina
		default:
			return RegionAsiaOther
		}
	case NorthAmerica:
		if loc.Country == "US" {
			// The Mississippi is a fine enough east/west divide for a
			// synthetic atlas.
			if loc.Coord.Lon >= -95 {
				return RegionUSEast
			}
			return RegionUSWest
		}
		return RegionAmericasOther
	case SouthAmerica:
		return RegionAmericasOther
	}
	return RegionAmericasOther
}

func (c Continent) String() string { return string(c) }

// Valid reports whether c is one of the six known continent codes.
func (c Continent) Valid() bool {
	switch c {
	case NorthAmerica, SouthAmerica, Europe, Africa, Asia, Oceania:
		return true
	}
	return false
}

func (id LocationID) String() string { return fmt.Sprintf("loc-%d", uint32(id)) }
