package geo

import (
	"fmt"
	"strconv"
	"sync"
)

// SetLevel is the specificity level of a locality set, from most specific
// (the peer's own AS) to least specific (the universal World set). The
// paper's DN selection "begins with peers from the most specific set that
// the querying peer belongs to, and proceeds to less specific sets until
// enough suitable peers are found" (§3.7).
type SetLevel int

// Locality set levels, most specific first.
const (
	LevelAS SetLevel = iota
	LevelCountry
	LevelContinent
	LevelWorld
	numLevels
)

// Levels lists all locality levels from most to least specific.
var Levels = []SetLevel{LevelAS, LevelCountry, LevelContinent, LevelWorld}

func (l SetLevel) String() string {
	switch l {
	case LevelAS:
		return "as"
	case LevelCountry:
		return "country"
	case LevelContinent:
		return "continent"
	case LevelWorld:
		return "world"
	}
	return fmt.Sprintf("level-%d", int(l))
}

// Specificity returns a weight proportional to how specific the level is;
// the diversity mechanism of §3.7 selects from a less specific set "with
// probability proportional to the specificity of the set".
func (l SetLevel) Specificity() float64 {
	switch l {
	case LevelAS:
		return 1.0
	case LevelCountry:
		return 0.5
	case LevelContinent:
		return 0.25
	case LevelWorld:
		return 0.125
	}
	return 0
}

// SetKey names one locality set: a level plus the value at that level.
// SetKey is comparable and used as a map key by the directory.
type SetKey struct {
	Level SetLevel
	Value string
}

func (k SetKey) String() string { return k.Level.String() + ":" + k.Value }

// asKeys interns the "AS<n>" strings; the AS population is small and
// static, and SetsFor sits on the directory's register/select hot path, so
// formatting the number on every call would dominate its cost.
var asKeys sync.Map // ASN -> string

func asKey(asn ASN) string {
	if v, ok := asKeys.Load(asn); ok {
		return v.(string)
	}
	v, _ := asKeys.LoadOrStore(asn, "AS"+strconv.FormatUint(uint64(asn), 10))
	return v.(string)
}

// SetsFor returns the locality sets a peer with the given record belongs to,
// most specific first. A peer is "simultaneously in a universal World set, a
// subset for a large geographical region, a subset for a smaller region, and
// a subset for its specific AS" (§3.7).
func SetsFor(rec Record) [4]SetKey {
	return [4]SetKey{
		{LevelAS, asKey(rec.ASN)},
		{LevelCountry, string(rec.Country)},
		{LevelContinent, string(rec.Continent)},
		{LevelWorld, "world"},
	}
}

// NetworkRegion identifies one of the control plane's network regions
// ("defined by proximity to particular groups of servers", §3.7; the
// deployment has fewer than 20).
type NetworkRegion int

// regionOf maps continents to control-plane regions. Large continents are
// split to keep the region count realistic (12 regions).
func RegionOf(rec Record) NetworkRegion {
	switch rec.Continent {
	case NorthAmerica:
		if rec.Country == "US" {
			if rec.Coord.Lon >= -95 {
				return 0 // NA-East
			}
			return 1 // NA-West
		}
		return 2 // NA-Other
	case SouthAmerica:
		return 3
	case Europe:
		if rec.Coord.Lon >= 15 {
			return 5 // EU-East
		}
		return 4 // EU-West
	case Africa:
		return 6
	case Asia:
		switch rec.Country {
		case "CN":
			return 7
		case "IN":
			return 8
		case "JP", "KR", "TW":
			return 9
		default:
			return 10
		}
	case Oceania:
		return 11
	}
	return 10
}

// NumRegions is the number of control-plane network regions produced by
// RegionOf.
const NumRegions = 12

func (r NetworkRegion) String() string {
	names := []string{
		"NA-East", "NA-West", "NA-Other", "SA", "EU-West", "EU-East",
		"AF", "AS-China", "AS-India", "AS-NEA", "AS-Other", "OC",
	}
	if int(r) >= 0 && int(r) < len(names) {
		return names[r]
	}
	return fmt.Sprintf("region-%d", int(r))
}
