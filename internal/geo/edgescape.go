package geo

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
)

// Record is the result of an EdgeScape-style lookup for one IP address,
// mirroring the fields the paper's data set carries (§4.1): a country code,
// a city/state name, a lat/lon pair, a timezone and a network provider.
type Record struct {
	IP        netip.Addr
	Country   CountryCode
	Continent Continent
	City      string
	Location  LocationID
	Coord     Coordinates
	TZOffset  int
	ASN       ASN
	Provider  string
}

// EdgeScape is the synthetic geolocation service. It allocates addresses out
// of per-(AS, location) prefixes, so a later Lookup of any allocated address
// recovers the (location, AS) pair — exactly the property the paper's
// analyses rely on.
//
// Addresses are IPv4, laid out as 10.B.C.D where a /24 is carved per
// (AS, location) block on demand; blocks chain to additional /24s when they
// fill. EdgeScape is safe for concurrent use.
type EdgeScape struct {
	atlas *Atlas

	mu     sync.Mutex
	blocks map[blockKey]*block
	byIP   map[netip.Addr]Record
	nextB  uint32 // next free /24 index within 10.0.0.0/8
}

type blockKey struct {
	asn ASN
	loc LocationID
}

type block struct {
	prefix uint32 // the /24 network, host byte 0
	used   uint8
}

// NewEdgeScape creates an empty geolocation service over an atlas.
func NewEdgeScape(atlas *Atlas) *EdgeScape {
	return &EdgeScape{
		atlas:  atlas,
		blocks: make(map[blockKey]*block),
		byIP:   make(map[netip.Addr]Record),
		nextB:  1, // skip 10.0.0.0/24
	}
}

// AllocateIP assigns a fresh address homed in the given AS and location and
// registers it for Lookup. The same (asn, loc) pair yields addresses that
// share prefixes, which makes the per-AS IP counting of Figure 9c behave as
// in a real address plan.
func (e *EdgeScape) AllocateIP(asn ASN, loc LocationID) (netip.Addr, error) {
	l := e.atlas.Location(loc)
	as, ok := e.atlas.AS(asn)
	if !ok {
		return netip.Addr{}, fmt.Errorf("geo: unknown ASN %d", asn)
	}
	e.mu.Lock()
	defer e.mu.Unlock()

	key := blockKey{asn, loc}
	b := e.blocks[key]
	if b == nil || b.used == 254 {
		if e.nextB >= 1<<24 {
			return netip.Addr{}, fmt.Errorf("geo: address space exhausted")
		}
		b = &block{prefix: 10<<24 | e.nextB<<8}
		e.nextB++
		e.blocks[key] = b
	}
	b.used++
	var raw [4]byte
	binary.BigEndian.PutUint32(raw[:], b.prefix|uint32(b.used))
	ip := netip.AddrFrom4(raw)
	rec := Record{
		IP:        ip,
		Country:   l.Country,
		Continent: l.Continent,
		City:      l.City,
		Location:  l.ID,
		Coord:     l.Coord,
		TZOffset:  l.TimezoneOffsetHours,
		ASN:       asn,
		Provider:  as.Name,
	}
	e.byIP[ip] = rec
	return ip, nil
}

// AllocateRandom assigns an address for a peer drawn from the atlas
// population distribution: first a location, then an AS of that country.
func (e *EdgeScape) AllocateRandom(r *rand.Rand) (Record, error) {
	loc := e.atlas.SampleLocation(r)
	as := e.atlas.SampleAS(r, loc.Country)
	ip, err := e.AllocateIP(as.Number, loc.ID)
	if err != nil {
		return Record{}, err
	}
	return e.MustLookup(ip), nil
}

// Identities deterministically allocates n identities drawn from the atlas
// population distribution. Two processes that generate the same atlas and
// call Identities with the same n and seed obtain identical address plans —
// which is how a multi-process live deployment shares synthetic identities
// without a coordination service.
func Identities(scape *EdgeScape, n int, seed int64) ([]Record, error) {
	r := rand.New(rand.NewSource(seed))
	out := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		rec, err := scape.AllocateRandom(r)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// Lookup resolves an allocated address to its record.
func (e *EdgeScape) Lookup(ip netip.Addr) (Record, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rec, ok := e.byIP[ip]
	return rec, ok
}

// MustLookup is Lookup for addresses known to be allocated; it panics on a
// miss, which indicates a bug in the caller.
func (e *EdgeScape) MustLookup(ip netip.Addr) Record {
	rec, ok := e.Lookup(ip)
	if !ok {
		panic(fmt.Sprintf("geo: lookup of unallocated address %v", ip))
	}
	return rec
}

// Size returns the number of allocated addresses.
func (e *EdgeScape) Size() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.byIP)
}
