package geo

import "math/rand"

// buildAdjacency creates a synthetic AS-level adjacency graph. It stands in
// for the CAIDA Archipelago topology the paper uses to estimate how much
// heavy-uploader traffic travels on direct inter-AS links (§6.1: ~35%).
//
// Structure: all ASes within a country peer at the national IXP with high
// probability; the largest AS of each country acts as the national incumbent
// and connects to incumbents of other countries on the same continent; a
// handful of global tier-1 incumbents interconnect continents.
func (a *Atlas) buildAdjacency(r *rand.Rand) {
	a.adj = make(map[ASN]map[ASN]bool, len(a.ASes))
	link := func(x, y ASN) {
		if x == y {
			return
		}
		if a.adj[x] == nil {
			a.adj[x] = make(map[ASN]bool)
		}
		if a.adj[y] == nil {
			a.adj[y] = make(map[ASN]bool)
		}
		a.adj[x][y] = true
		a.adj[y][x] = true
	}

	incumbents := make(map[Continent][]ASN)
	for _, c := range a.Countries {
		if len(c.ASNs) == 0 {
			continue
		}
		inc := c.ASNs[0]
		incumbents[c.Continent] = append(incumbents[c.Continent], inc)
		for i, x := range c.ASNs {
			// Domestic peering mesh: dense but not complete.
			for _, y := range c.ASNs[i+1:] {
				if r.Float64() < 0.7 {
					link(x, y)
				}
			}
			// Everyone buys transit from the incumbent.
			link(x, inc)
		}
	}
	// Continental incumbent meshes.
	for _, list := range incumbents {
		for i, x := range list {
			for _, y := range list[i+1:] {
				if r.Float64() < 0.35 {
					link(x, y)
				}
			}
		}
	}
	// Global tier-1 backbone: the first incumbent of each continent.
	var t1 []ASN
	for _, cont := range Continents {
		if l := incumbents[cont]; len(l) > 0 {
			t1 = append(t1, l[0])
		}
	}
	for i, x := range t1 {
		for _, y := range t1[i+1:] {
			link(x, y)
		}
	}
}

// Adjacent reports whether two ASes have a direct link in the synthetic
// topology.
func (a *Atlas) Adjacent(x, y ASN) bool {
	return a.adj[x][y]
}

// Neighbors returns the ASNs directly connected to n. The returned slice is
// freshly allocated.
func (a *Atlas) Neighbors(n ASN) []ASN {
	m := a.adj[n]
	out := make([]ASN, 0, len(m))
	for asn := range m {
		out = append(out, asn)
	}
	return out
}
