package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testAtlas(t testing.TB) *Atlas {
	t.Helper()
	cfg := DefaultAtlasConfig()
	cfg.TailCountries = 20 // keep tests fast
	return GenerateAtlas(cfg)
}

func TestDistanceKnownPairs(t *testing.T) {
	cases := []struct {
		name string
		a, b Coordinates
		want float64 // km
		tol  float64
	}{
		{"zero", Coordinates{40, -75}, Coordinates{40, -75}, 0, 0.001},
		{"philadelphia-to-sf", Coordinates{39.95, -75.17}, Coordinates{37.77, -122.42}, 4023, 50},
		{"london-to-sydney", Coordinates{51.51, -0.13}, Coordinates{-33.87, 151.21}, 16994, 150},
		{"equator-degree", Coordinates{0, 0}, Coordinates{0, 1}, 111.2, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := DistanceKm(c.a, c.b)
			if math.Abs(got-c.want) > c.tol {
				t.Errorf("DistanceKm(%v,%v) = %.1f, want %.1f ± %.1f", c.a, c.b, got, c.want, c.tol)
			}
		})
	}
}

func TestDistanceProperties(t *testing.T) {
	symmetric := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Coordinates{clampLat(lat1), wrapLon(lon1)}
		b := Coordinates{clampLat(lat2), wrapLon(lon2)}
		d1, d2 := DistanceKm(a, b), DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-6 && d1 >= 0 && d1 <= 2*math.Pi*earthRadiusKm/2+1
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error(err)
	}
}

func TestGenerateAtlasDeterministic(t *testing.T) {
	a1 := testAtlas(t)
	a2 := testAtlas(t)
	if len(a1.Locations) != len(a2.Locations) || len(a1.ASes) != len(a2.ASes) {
		t.Fatalf("atlas generation not deterministic: %d/%d locations, %d/%d ASes",
			len(a1.Locations), len(a2.Locations), len(a1.ASes), len(a2.ASes))
	}
	for i := range a1.Locations {
		if a1.Locations[i] != a2.Locations[i] {
			t.Fatalf("location %d differs: %+v vs %+v", i, a1.Locations[i], a2.Locations[i])
		}
	}
}

func TestAtlasCoverage(t *testing.T) {
	a := GenerateAtlas(DefaultAtlasConfig())
	if got := len(a.Countries); got != 239 {
		t.Errorf("atlas has %d country codes, want 239 (paper Table 1)", got)
	}
	seen := make(map[Continent]bool)
	for _, c := range a.Countries {
		if !c.Continent.Valid() {
			t.Fatalf("country %s has invalid continent %q", c.Code, c.Continent)
		}
		seen[c.Continent] = true
		if len(c.Locations) == 0 || len(c.ASNs) == 0 {
			t.Fatalf("country %s has no locations or ASes", c.Code)
		}
	}
	if len(seen) != len(Continents) {
		t.Errorf("atlas covers %d continents, want %d", len(seen), len(Continents))
	}
}

func TestSampleLocationDistribution(t *testing.T) {
	a := testAtlas(t)
	r := rand.New(rand.NewSource(42))
	const n = 50000
	counts := make(map[Continent]int)
	for i := 0; i < n; i++ {
		loc := a.SampleLocation(r)
		counts[loc.Continent]++
	}
	// Calibration targets from §4.2: NA ≈ 27%, EU ≈ 35%.
	na := float64(counts[NorthAmerica]) / n
	eu := float64(counts[Europe]) / n
	if na < 0.22 || na > 0.32 {
		t.Errorf("North America share = %.3f, want ≈ 0.27", na)
	}
	if eu < 0.30 || eu > 0.42 {
		t.Errorf("Europe share = %.3f, want ≈ 0.35", eu)
	}
}

func TestSampleAS(t *testing.T) {
	a := testAtlas(t)
	r := rand.New(rand.NewSource(7))
	counts := make(map[ASN]int)
	const n = 20000
	for i := 0; i < n; i++ {
		as := a.SampleAS(r, "US")
		if as.Country != "US" {
			t.Fatalf("SampleAS(US) returned AS in %s", as.Country)
		}
		counts[as.Number]++
	}
	us, _ := a.Country("US")
	first, second := counts[us.ASNs[0]], counts[us.ASNs[1]]
	if first <= second {
		t.Errorf("incumbent AS should dominate: first=%d second=%d", first, second)
	}
}

func TestEdgeScapeRoundTrip(t *testing.T) {
	a := testAtlas(t)
	es := NewEdgeScape(a)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		rec, err := es.AllocateRandom(r)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := es.Lookup(rec.IP)
		if !ok {
			t.Fatalf("allocated IP %v not found", rec.IP)
		}
		if got != rec {
			t.Fatalf("lookup mismatch: %+v vs %+v", got, rec)
		}
		as, ok := a.AS(rec.ASN)
		if !ok || as.Country != rec.Country {
			t.Fatalf("record AS %d inconsistent with atlas", rec.ASN)
		}
	}
	if es.Size() != 1000 {
		t.Errorf("Size() = %d, want 1000", es.Size())
	}
}

func TestEdgeScapePrefixSharing(t *testing.T) {
	a := testAtlas(t)
	es := NewEdgeScape(a)
	us, _ := a.Country("US")
	asn, loc := us.ASNs[0], us.Locations[0]
	ip1, err := es.AllocateIP(asn, loc)
	if err != nil {
		t.Fatal(err)
	}
	ip2, err := es.AllocateIP(asn, loc)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := ip1.As4(), ip2.As4()
	if p1[0] != p2[0] || p1[1] != p2[1] || p1[2] != p2[2] {
		t.Errorf("same (AS,loc) should share /24: %v vs %v", ip1, ip2)
	}
	if p1[3] == p2[3] {
		t.Errorf("duplicate host byte: %v vs %v", ip1, ip2)
	}
}

func TestEdgeScapeBlockOverflow(t *testing.T) {
	a := testAtlas(t)
	es := NewEdgeScape(a)
	us, _ := a.Country("US")
	asn, loc := us.ASNs[0], us.Locations[0]
	seen := make(map[string]bool)
	for i := 0; i < 600; i++ { // > 2 full /24s
		ip, err := es.AllocateIP(asn, loc)
		if err != nil {
			t.Fatal(err)
		}
		if seen[ip.String()] {
			t.Fatalf("duplicate IP %v at allocation %d", ip, i)
		}
		seen[ip.String()] = true
	}
}

func TestSetsForOrder(t *testing.T) {
	rec := Record{Country: "US", Continent: NorthAmerica, ASN: 1000}
	sets := SetsFor(rec)
	if sets[0].Level != LevelAS || sets[0].Value != "AS1000" {
		t.Errorf("first set should be the AS set, got %v", sets[0])
	}
	if sets[3].Level != LevelWorld {
		t.Errorf("last set should be World, got %v", sets[3])
	}
	for i := 1; i < len(sets); i++ {
		if sets[i].Level.Specificity() >= sets[i-1].Level.Specificity() {
			t.Errorf("specificity must strictly decrease: %v then %v", sets[i-1], sets[i])
		}
	}
}

func TestRegionOfPartition(t *testing.T) {
	a := testAtlas(t)
	es := NewEdgeScape(a)
	r := rand.New(rand.NewSource(11))
	seen := make(map[NetworkRegion]int)
	for i := 0; i < 5000; i++ {
		rec, err := es.AllocateRandom(r)
		if err != nil {
			t.Fatal(err)
		}
		reg := RegionOf(rec)
		if reg < 0 || int(reg) >= NumRegions {
			t.Fatalf("region %d out of range", reg)
		}
		seen[reg]++
	}
	if len(seen) < 8 {
		t.Errorf("only %d regions populated, want most of %d", len(seen), NumRegions)
	}
}

func TestReportRegionOf(t *testing.T) {
	cases := []struct {
		loc  Location
		want ReportRegion
	}{
		{Location{Country: "US", Continent: NorthAmerica, Coord: Coordinates{40, -74}}, RegionUSEast},
		{Location{Country: "US", Continent: NorthAmerica, Coord: Coordinates{37, -122}}, RegionUSWest},
		{Location{Country: "CA", Continent: NorthAmerica}, RegionAmericasOther},
		{Location{Country: "BR", Continent: SouthAmerica}, RegionAmericasOther},
		{Location{Country: "IN", Continent: Asia}, RegionIndia},
		{Location{Country: "CN", Continent: Asia}, RegionChina},
		{Location{Country: "JP", Continent: Asia}, RegionAsiaOther},
		{Location{Country: "DE", Continent: Europe}, RegionEurope},
		{Location{Country: "EG", Continent: Africa}, RegionAfrica},
		{Location{Country: "AU", Continent: Oceania}, RegionOceania},
	}
	for _, c := range cases {
		if got := ReportRegionOf(&c.loc); got != c.want {
			t.Errorf("ReportRegionOf(%s) = %s, want %s", c.loc.Country, got, c.want)
		}
	}
}

func TestAdjacencyProperties(t *testing.T) {
	a := testAtlas(t)
	us, _ := a.Country("US")
	de, _ := a.Country("DE")
	// Symmetry over all pairs we can cheaply enumerate.
	for _, x := range us.ASNs {
		for _, y := range de.ASNs {
			if a.Adjacent(x, y) != a.Adjacent(y, x) {
				t.Fatalf("adjacency not symmetric for %d,%d", x, y)
			}
		}
	}
	// Domestic ASes always reach their incumbent.
	inc := us.ASNs[0]
	for _, x := range us.ASNs[1:] {
		if !a.Adjacent(x, inc) {
			t.Errorf("AS %d not connected to national incumbent %d", x, inc)
		}
	}
	if a.Adjacent(inc, inc) {
		t.Error("self-adjacency must be false")
	}
	// Tier-1 backbone connects continents: US incumbent to at least one
	// European incumbent.
	found := false
	for _, n := range a.Neighbors(inc) {
		as, _ := a.AS(n)
		c, _ := a.Country(as.Country)
		if c.Continent == Europe {
			found = true
			break
		}
	}
	if !found {
		t.Error("US incumbent has no European neighbor; backbone missing")
	}
}

func TestWrapLonAndClampLat(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {179, 179}, {-179, -179},
		{181, -179}, {-181, 179},
		{540, -180}, {360, 0}, {-360, 0},
		{math.Inf(1), 0}, {math.Inf(-1), 0}, {math.NaN(), 0},
	}
	for _, c := range cases {
		got := wrapLon(c.in)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("wrapLon(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Huge finite values must return in range without looping (regression:
	// wrapLon once iterated value/360 times).
	for _, v := range []float64{1e308, -1e308, 1e18} {
		if got := wrapLon(v); got < -180 || got > 180 {
			t.Errorf("wrapLon(%v) = %v out of range", v, got)
		}
	}
	if clampLat(math.NaN()) != 0 {
		t.Error("clampLat(NaN) should be 0")
	}
	if clampLat(100) != 85 || clampLat(-100) != -85 || clampLat(42) != 42 {
		t.Error("clampLat bounds wrong")
	}
}
