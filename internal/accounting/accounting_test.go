package accounting

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"netsession/internal/content"
	"netsession/internal/id"
	"netsession/internal/protocol"
)

type fakeEdge struct {
	auth   map[string]bool
	served map[string]int64
}

func key(g id.GUID, o content.ObjectID) string { return g.String() + o.String() }

func (f *fakeEdge) Authorized(g id.GUID, o content.ObjectID) bool { return f.auth[key(g, o)] }
func (f *fakeEdge) Served(g id.GUID, o content.ObjectID) int64    { return f.served[key(g, o)] }

func TestRecordDerivedQuantities(t *testing.T) {
	r := DownloadRecord{
		BytesInfra: 300, BytesPeers: 700,
		StartMs: 1000, EndMs: 2000,
	}
	if got := r.TotalBytes(); got != 1000 {
		t.Errorf("TotalBytes=%d", got)
	}
	if got := r.PeerEfficiency(); got != 0.7 {
		t.Errorf("PeerEfficiency=%v", got)
	}
	if got := r.SpeedBps(); got != 8000 {
		t.Errorf("SpeedBps=%v", got)
	}
	empty := DownloadRecord{StartMs: 5, EndMs: 5}
	if empty.PeerEfficiency() != 0 || empty.SpeedBps() != 0 {
		t.Error("zero-byte/zero-duration records must not divide by zero")
	}
}

func TestLedgerVerifier(t *testing.T) {
	g := id.NewGUID()
	oid := content.NewObjectID(1, "f", 1)
	fe := &fakeEdge{auth: map[string]bool{}, served: map[string]int64{}}
	v := &LedgerVerifier{Edge: fe, SlackBytes: 10}

	rec := DownloadRecord{GUID: g, Object: oid, BytesInfra: 100}
	if err := v.CheckDownload(&rec); err == nil {
		t.Error("unauthorized download accepted")
	}
	fe.auth[key(g, oid)] = true
	fe.served[key(g, oid)] = 95
	if err := v.CheckDownload(&rec); err != nil {
		t.Errorf("within-slack report rejected: %v", err)
	}
	rec.BytesInfra = 200
	if err := v.CheckDownload(&rec); err == nil {
		t.Error("inflated report accepted")
	} else if !strings.Contains(err.Error(), "claims") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestCollectorFiltersAndCounts(t *testing.T) {
	g := id.NewGUID()
	oid := content.NewObjectID(1, "f", 1)
	fe := &fakeEdge{
		auth:   map[string]bool{key(g, oid): true},
		served: map[string]int64{key(g, oid): 1000},
	}
	c := NewCollector(&LedgerVerifier{Edge: fe, SlackBytes: 1})

	if err := c.AddDownload(DownloadRecord{GUID: g, Object: oid, BytesInfra: 900}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddDownload(DownloadRecord{GUID: g, Object: oid, BytesInfra: 90_000}); err == nil {
		t.Fatal("forged record accepted")
	}
	c.AddLogin(LoginRecord{GUID: g})
	c.AddRegistration(RegistrationRecord{GUID: g, Object: oid})

	if c.Rejected() != 1 {
		t.Errorf("Rejected=%d", c.Rejected())
	}
	log := c.Snapshot()
	if len(log.Downloads) != 1 || len(log.Logins) != 1 || len(log.Registrations) != 1 {
		t.Errorf("snapshot sizes wrong: %d/%d/%d",
			len(log.Downloads), len(log.Logins), len(log.Registrations))
	}
	if log.Entries() != 3 {
		t.Errorf("Entries=%d", log.Entries())
	}
	// Snapshot is a copy: appending to it must not affect the collector.
	log.Downloads = append(log.Downloads, DownloadRecord{})
	if len(c.Snapshot().Downloads) != 1 {
		t.Error("snapshot aliases collector state")
	}
}

func TestBillAggregation(t *testing.T) {
	log := &Log{Downloads: []DownloadRecord{
		{CP: 1, BytesInfra: 100, BytesPeers: 300, Outcome: protocol.OutcomeCompleted},
		{CP: 1, BytesInfra: 100, BytesPeers: 0, Outcome: protocol.OutcomeAborted},
		{CP: 2, BytesInfra: 50, BytesPeers: 50, Outcome: protocol.OutcomeCompleted},
	}}
	lines := Bill(log)
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if lines[0].CP != 1 || lines[1].CP != 2 {
		t.Fatal("lines not sorted by CP")
	}
	l1 := lines[0]
	if l1.Downloads != 2 || l1.Completed != 1 {
		t.Errorf("CP1 downloads/completed = %d/%d", l1.Downloads, l1.Completed)
	}
	if l1.BytesInfra != 200 || l1.BytesPeers != 300 {
		t.Errorf("CP1 bytes = %d/%d", l1.BytesInfra, l1.BytesPeers)
	}
	if l1.PeerEfficiency != 0.6 {
		t.Errorf("CP1 efficiency = %v", l1.PeerEfficiency)
	}
}

func TestWriteCSV(t *testing.T) {
	lines := []BillingLine{
		{CP: 101, Downloads: 3, Completed: 2, BytesInfra: 100, BytesPeers: 300, PeerEfficiency: 0.75},
		{CP: 102, Downloads: 1, Completed: 1, BytesInfra: 50},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, lines); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want header + 2", len(rows))
	}
	if rows[1][0] != "101" || rows[1][5] != "0.7500" {
		t.Errorf("row 1: %v", rows[1])
	}
	if rows[2][4] != "0" {
		t.Errorf("row 2: %v", rows[2])
	}
}
