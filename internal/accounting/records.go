// Package accounting implements NetSession's usage accounting: the log
// record schemas of §4.1, CN-side collection of per-download usage reports,
// edge-verified filtering of forged reports (the accounting attacks of
// §3.5/§6.2, after Aditya et al., NSDI'12), and per-content-provider billing
// aggregation.
//
// Reliable accounting is design goal 3 of the system: "Content providers,
// who pay for the CDN's services, expect detailed logs that show the amount
// and the quality of the services provided."
package accounting

import (
	"net/netip"

	"netsession/internal/content"
	"netsession/internal/id"
	"netsession/internal/protocol"
)

// DownloadRecord is the per-download log entry the CN writes: "the GUID of
// the peer, the name and size of the file, the CP code ..., the time the
// download started and ended, and the number of bytes downloaded from the
// infrastructure and from peers" (§4.1). We additionally carry the fields
// the paper's own analyses must have used: the downloader's IP at download
// time (for geo/AS attribution), per-serving-peer byte counts (for the AS
// traffic matrix of §6.1), and the number of peers the control plane
// initially returned (Figure 6).
type DownloadRecord struct {
	GUID    id.GUID
	IP      netip.Addr
	Object  content.ObjectID
	URLHash string
	CP      content.CPCode
	Size    int64
	// P2PEnabled records whether the provider allowed peer-assisted
	// delivery for this file.
	P2PEnabled bool

	StartMs int64 // virtual or wall clock, unix milliseconds
	EndMs   int64

	BytesInfra int64
	BytesPeers int64

	Outcome       protocol.Outcome
	PeersReturned int

	// FromPeers attributes peer-delivered bytes to serving GUIDs.
	FromPeers []PeerContribution
	// Stream is the playback sub-record of a deadline-driven streaming
	// download (startup delay, rebuffers, deadline misses, edge rescues);
	// nil for bulk transfers.
	Stream *StreamStats
}

// StreamStats is the streaming outcome attached to a DownloadRecord. All
// fields are plain sums/tallies so fleet aggregates merge exactly.
type StreamStats struct {
	BitrateBps      int64
	StartupDelayMs  int64
	RebufferCount   int64
	RebufferMs      int64
	DeadlineMisses  int64
	PiecesPlayed    int64
	PiecesTotal     int64
	EdgeRescueBytes int64
}

// PeerContribution is one serving peer's share of a download.
type PeerContribution struct {
	GUID  id.GUID
	IP    netip.Addr
	Bytes int64
}

// TotalBytes returns all content bytes received.
func (r *DownloadRecord) TotalBytes() int64 { return r.BytesInfra + r.BytesPeers }

// PeerEfficiency returns the fraction of bytes served by peers, "the key
// quantity of interest" of §5.1. Zero-byte downloads have zero efficiency.
func (r *DownloadRecord) PeerEfficiency() float64 {
	t := r.TotalBytes()
	if t == 0 {
		return 0
	}
	return float64(r.BytesPeers) / float64(t)
}

// DurationMs returns the download's wall time.
func (r *DownloadRecord) DurationMs() int64 { return r.EndMs - r.StartMs }

// SpeedBps returns the average download speed in bits per second across the
// download's entire length, the quantity plotted in Figure 4.
func (r *DownloadRecord) SpeedBps() float64 {
	d := r.DurationMs()
	if d <= 0 {
		return 0
	}
	return float64(r.TotalBytes()) * 8 * 1000 / float64(d)
}

// LoginRecord is the per-connection log entry: "when a peer opens a
// connection to the control plane, the CN records the peer's current IP
// address, its software version, and whether or not uploads are enabled"
// (§4.1). Secondary GUIDs were added for the clone study of §6.2.
type LoginRecord struct {
	TimeMs          int64
	GUID            id.GUID
	IP              netip.Addr
	SoftwareVersion string
	UploadsEnabled  bool
	Secondaries     [id.HistoryLen]id.Secondary
}

// RegistrationRecord is the DN-side log of a peer registering a local file
// copy, counted in Figure 5 to estimate available copies per file.
type RegistrationRecord struct {
	TimeMs int64
	GUID   id.GUID
	Object content.ObjectID
}

// Log is the full set of records one experiment produces — the synthetic
// stand-in for the paper's month of production logs.
type Log struct {
	Downloads     []DownloadRecord
	Logins        []LoginRecord
	Registrations []RegistrationRecord
}

// Entries returns the total number of log entries, the "Log entries" row of
// Table 1.
func (l *Log) Entries() int {
	return len(l.Downloads) + len(l.Logins) + len(l.Registrations)
}
