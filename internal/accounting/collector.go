package accounting

import (
	"fmt"
	"sync"

	"netsession/internal/content"
	"netsession/internal/id"
)

// Verifier cross-checks a client-submitted download report against trusted
// edge-server data before it enters the billing log (§3.5). Implementations
// must be safe for concurrent use.
type Verifier interface {
	// CheckDownload returns a non-nil error when the report must be
	// rejected as a suspected accounting attack.
	CheckDownload(rec *DownloadRecord) error
}

// EdgeData is the subset of the edge tier's ledger the verifier needs;
// *edge.Ledger satisfies it.
type EdgeData interface {
	Authorized(g id.GUID, obj content.ObjectID) bool
	Served(g id.GUID, obj content.ObjectID) int64
}

// LedgerVerifier validates reports against the edge ledger: the download
// must have been authorized, and the claimed infrastructure bytes cannot
// exceed what the edge actually served (plus a small slack for retries and
// rounding).
type LedgerVerifier struct {
	Edge EdgeData
	// SlackBytes tolerates bookkeeping skew; defaults to one piece.
	SlackBytes int64
}

// CheckDownload implements Verifier.
func (v *LedgerVerifier) CheckDownload(rec *DownloadRecord) error {
	if !v.Edge.Authorized(rec.GUID, rec.Object) {
		return fmt.Errorf("accounting: peer %s reports unauthorized download of %v",
			rec.GUID.Short(), rec.Object)
	}
	slack := v.SlackBytes
	if slack == 0 {
		slack = content.DefaultPieceSize
	}
	if served := v.Edge.Served(rec.GUID, rec.Object); rec.BytesInfra > served+slack {
		return fmt.Errorf("accounting: peer %s claims %d infra bytes, edge served %d",
			rec.GUID.Short(), rec.BytesInfra, served)
	}
	return nil
}

// Collector is the CN-side accumulation point for usage records. It filters
// forged download reports through the verifier (if any) and keeps the
// accepted log for billing and analysis.
type Collector struct {
	verifier Verifier

	mu       sync.Mutex
	log      Log
	rejected int
}

// NewCollector creates a collector; verifier may be nil to accept all
// reports (the simulator trusts its own synthetic reports).
func NewCollector(verifier Verifier) *Collector {
	return &Collector{verifier: verifier}
}

// AddDownload records a download report, returning an error if it was
// rejected by verification.
func (c *Collector) AddDownload(rec DownloadRecord) error {
	if c.verifier != nil {
		if err := c.verifier.CheckDownload(&rec); err != nil {
			c.mu.Lock()
			c.rejected++
			c.mu.Unlock()
			return err
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.log.Downloads = append(c.log.Downloads, rec)
	return nil
}

// AddLogin records a login.
func (c *Collector) AddLogin(rec LoginRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.log.Logins = append(c.log.Logins, rec)
}

// AddRegistration records a DN registration event.
func (c *Collector) AddRegistration(rec RegistrationRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.log.Registrations = append(c.log.Registrations, rec)
}

// Rejected returns how many download reports verification filtered out.
func (c *Collector) Rejected() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rejected
}

// Snapshot returns a copy of the accepted log.
func (c *Collector) Snapshot() *Log {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := &Log{
		Downloads:     append([]DownloadRecord(nil), c.log.Downloads...),
		Logins:        append([]LoginRecord(nil), c.log.Logins...),
		Registrations: append([]RegistrationRecord(nil), c.log.Registrations...),
	}
	return out
}
