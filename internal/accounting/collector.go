package accounting

import (
	"errors"
	"fmt"
	"sync"

	"netsession/internal/content"
	"netsession/internal/id"
	"netsession/internal/telemetry"
)

// Sentinel causes for rejected download reports; LedgerVerifier wraps them so
// callers (and the per-reason reject counters) can classify failures with
// errors.Is.
var (
	// ErrUnauthorized marks a report for a download the edge never
	// authorized for that peer.
	ErrUnauthorized = errors.New("accounting: unauthorized download report")
	// ErrOverclaim marks a report claiming more infrastructure bytes than
	// the edge served.
	ErrOverclaim = errors.New("accounting: infra byte overclaim")
)

// Verifier cross-checks a client-submitted download report against trusted
// edge-server data before it enters the billing log (§3.5). Implementations
// must be safe for concurrent use.
type Verifier interface {
	// CheckDownload returns a non-nil error when the report must be
	// rejected as a suspected accounting attack.
	CheckDownload(rec *DownloadRecord) error
}

// EdgeData is the subset of the edge tier's ledger the verifier needs;
// *edge.Ledger satisfies it.
type EdgeData interface {
	Authorized(g id.GUID, obj content.ObjectID) bool
	Served(g id.GUID, obj content.ObjectID) int64
}

// LedgerVerifier validates reports against the edge ledger: the download
// must have been authorized, and the claimed infrastructure bytes cannot
// exceed what the edge actually served (plus a small slack for retries and
// rounding).
type LedgerVerifier struct {
	Edge EdgeData
	// SlackBytes tolerates bookkeeping skew; defaults to one piece.
	SlackBytes int64
}

// CheckDownload implements Verifier.
func (v *LedgerVerifier) CheckDownload(rec *DownloadRecord) error {
	if !v.Edge.Authorized(rec.GUID, rec.Object) {
		return fmt.Errorf("%w: peer %s reports download of %v",
			ErrUnauthorized, rec.GUID.Short(), rec.Object)
	}
	slack := v.SlackBytes
	if slack == 0 {
		slack = content.DefaultPieceSize
	}
	if served := v.Edge.Served(rec.GUID, rec.Object); rec.BytesInfra > served+slack {
		return fmt.Errorf("%w: peer %s claims %d infra bytes, edge served %d",
			ErrOverclaim, rec.GUID.Short(), rec.BytesInfra, served)
	}
	return nil
}

// Limits bounds the collector's in-memory log. A zero field selects that
// kind's default cap; a negative field makes it unbounded (the simulator
// snapshots complete logs and opts out explicitly).
type Limits struct {
	MaxDownloads     int
	MaxLogins        int
	MaxRegistrations int
}

// Default in-memory caps: with the durable segment store holding the full
// history, the collector only needs a recent window for /v1/status and tests.
const (
	DefaultMaxDownloads     = 65536
	DefaultMaxLogins        = 65536
	DefaultMaxRegistrations = 65536
)

func (l Limits) withDefaults() Limits {
	if l.MaxDownloads == 0 {
		l.MaxDownloads = DefaultMaxDownloads
	}
	if l.MaxLogins == 0 {
		l.MaxLogins = DefaultMaxLogins
	}
	if l.MaxRegistrations == 0 {
		l.MaxRegistrations = DefaultMaxRegistrations
	}
	return l
}

// Unbounded are the limits the simulator uses: its exported logs must be the
// complete run, not a recent window.
func Unbounded() Limits {
	return Limits{MaxDownloads: -1, MaxLogins: -1, MaxRegistrations: -1}
}

// ring is a bounded FIFO over records: past its cap, each push evicts the
// oldest entry so CN memory stays constant no matter how long the process
// accepts reports. cap <= 0 means unbounded.
type ring[T any] struct {
	cap     int
	buf     []T
	start   int
	evicted int64
}

func (r *ring[T]) push(v T) (evicted bool) {
	if r.cap <= 0 || len(r.buf) < r.cap {
		r.buf = append(r.buf, v)
		return false
	}
	r.buf[r.start] = v
	r.start = (r.start + 1) % len(r.buf)
	r.evicted++
	return true
}

func (r *ring[T]) len() int { return len(r.buf) }

// snapshot copies the ring oldest-first.
func (r *ring[T]) snapshot() []T {
	out := make([]T, 0, len(r.buf))
	out = append(out, r.buf[r.start:]...)
	out = append(out, r.buf[:r.start]...)
	return out
}

// collectorMetrics are the collector's eagerly-registered series: every kind
// and reject reason appears in /metrics at zero before the first report.
type collectorMetrics struct {
	downloads     *telemetry.Counter
	logins        *telemetry.Counter
	registrations *telemetry.Counter

	rejUnauthorized *telemetry.Counter
	rejOverclaim    *telemetry.Counter
	rejOther        *telemetry.Counter

	evicted *telemetry.Counter
	logSize *telemetry.Gauge
}

func newCollectorMetrics(reg *telemetry.Registry) *collectorMetrics {
	if reg == nil {
		return nil
	}
	const recName = "accounting_records_total"
	const recHelp = "usage records accepted into the accounting log, by kind"
	const rejName = "accounting_rejected_total"
	const rejHelp = "download reports rejected by verification, by reason"
	return &collectorMetrics{
		downloads:     reg.Counter(recName, recHelp, telemetry.Labels{"kind": "download"}),
		logins:        reg.Counter(recName, recHelp, telemetry.Labels{"kind": "login"}),
		registrations: reg.Counter(recName, recHelp, telemetry.Labels{"kind": "registration"}),

		rejUnauthorized: reg.Counter(rejName, rejHelp, telemetry.Labels{"reason": "unauthorized"}),
		rejOverclaim:    reg.Counter(rejName, rejHelp, telemetry.Labels{"reason": "overclaim"}),
		rejOther:        reg.Counter(rejName, rejHelp, telemetry.Labels{"reason": "other"}),

		evicted: reg.Counter("accounting_evicted_total",
			"old records evicted from the bounded in-memory log", nil),
		logSize: reg.Gauge("accounting_log_records",
			"records currently held in the in-memory accounting log", nil),
	}
}

// Collector is the CN-side accumulation point for usage records. It filters
// forged download reports through the verifier (if any) and keeps a bounded
// in-memory window of the accepted log for billing and analysis; durable
// history belongs to the logpipe segment store, not this process's heap.
type Collector struct {
	verifier Verifier

	mu            sync.Mutex
	downloads     ring[DownloadRecord]
	logins        ring[LoginRecord]
	registrations ring[RegistrationRecord]
	rejected      int
	metrics       *collectorMetrics
}

// NewCollector creates a collector with default limits and no telemetry;
// verifier may be nil to accept all reports (the simulator trusts its own
// synthetic reports). Use Configure to change limits or attach a registry.
func NewCollector(verifier Verifier) *Collector {
	c := &Collector{verifier: verifier}
	c.Configure(Limits{}, nil)
	return c
}

// Configure sets the in-memory caps and (re)binds telemetry. It is meant for
// setup time: records already held are kept but not re-trimmed until the next
// push of their kind.
func (c *Collector) Configure(limits Limits, reg *telemetry.Registry) {
	limits = limits.withDefaults()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.downloads.cap = limits.MaxDownloads
	c.logins.cap = limits.MaxLogins
	c.registrations.cap = limits.MaxRegistrations
	if reg != nil {
		c.metrics = newCollectorMetrics(reg)
	}
}

// AddDownload records a download report, returning an error if it was
// rejected by verification.
func (c *Collector) AddDownload(rec DownloadRecord) error {
	if c.verifier != nil {
		if err := c.verifier.CheckDownload(&rec); err != nil {
			c.mu.Lock()
			c.rejected++
			m := c.metrics
			c.mu.Unlock()
			if m != nil {
				switch {
				case errors.Is(err, ErrUnauthorized):
					m.rejUnauthorized.Inc()
				case errors.Is(err, ErrOverclaim):
					m.rejOverclaim.Inc()
				default:
					m.rejOther.Inc()
				}
			}
			return err
		}
	}
	c.mu.Lock()
	c.finishPush(c.downloads.push(rec), c.metrics.downloadsCounter())
	c.mu.Unlock()
	return nil
}

// AddLogin records a login.
func (c *Collector) AddLogin(rec LoginRecord) {
	c.mu.Lock()
	c.finishPush(c.logins.push(rec), c.metrics.loginsCounter())
	c.mu.Unlock()
}

// AddRegistration records a DN registration event.
func (c *Collector) AddRegistration(rec RegistrationRecord) {
	c.mu.Lock()
	c.finishPush(c.registrations.push(rec), c.metrics.registrationsCounter())
	c.mu.Unlock()
}

// finishPush updates the accepted-record telemetry; callers hold c.mu.
func (c *Collector) finishPush(evicted bool, kind *telemetry.Counter) {
	if c.metrics == nil {
		return
	}
	if kind != nil {
		kind.Inc()
	}
	if evicted {
		c.metrics.evicted.Inc()
	}
	c.metrics.logSize.Set(float64(c.downloads.len() + c.logins.len() + c.registrations.len()))
}

func (m *collectorMetrics) downloadsCounter() *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.downloads
}

func (m *collectorMetrics) loginsCounter() *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.logins
}

func (m *collectorMetrics) registrationsCounter() *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.registrations
}

// Rejected returns how many download reports verification filtered out.
func (c *Collector) Rejected() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rejected
}

// Evicted returns how many accepted records the bounded log has discarded.
func (c *Collector) Evicted() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.downloads.evicted + c.logins.evicted + c.registrations.evicted
}

// Snapshot returns a copy of the retained (in-memory window of the) accepted
// log, oldest record first.
func (c *Collector) Snapshot() *Log {
	c.mu.Lock()
	defer c.mu.Unlock()
	return &Log{
		Downloads:     c.downloads.snapshot(),
		Logins:        c.logins.snapshot(),
		Registrations: c.registrations.snapshot(),
	}
}
