package accounting

import (
	"encoding/csv"
	"io"
	"sort"
	"strconv"

	"netsession/internal/content"
	"netsession/internal/protocol"
)

// BillingLine is the per-provider service summary content providers pay
// against: volume delivered, split by source, with quality indicators.
type BillingLine struct {
	CP         content.CPCode
	Downloads  int
	Completed  int
	BytesInfra int64
	BytesPeers int64
	// PeerEfficiency is peer bytes over total bytes across the provider's
	// peer-assisted downloads.
	PeerEfficiency float64
}

// Bill aggregates the accepted download log per CP code, sorted by CP.
func Bill(log *Log) []BillingLine {
	byCP := make(map[content.CPCode]*BillingLine)
	for i := range log.Downloads {
		d := &log.Downloads[i]
		l := byCP[d.CP]
		if l == nil {
			l = &BillingLine{CP: d.CP}
			byCP[d.CP] = l
		}
		l.Downloads++
		if d.Outcome == protocol.OutcomeCompleted {
			l.Completed++
		}
		l.BytesInfra += d.BytesInfra
		l.BytesPeers += d.BytesPeers
	}
	out := make([]BillingLine, 0, len(byCP))
	for _, l := range byCP {
		if total := l.BytesInfra + l.BytesPeers; total > 0 {
			l.PeerEfficiency = float64(l.BytesPeers) / float64(total)
		}
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CP < out[j].CP })
	return out
}

// WriteCSV renders billing lines as CSV, the export format content
// providers' reports are delivered in ("detailed logs that show the amount
// and the quality of the services provided", §3.1).
func WriteCSV(w io.Writer, lines []BillingLine) error {
	cw := csv.NewWriter(w)
	header := []string{
		"cp_code", "downloads", "completed",
		"bytes_infrastructure", "bytes_peers", "peer_efficiency",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, l := range lines {
		rec := []string{
			strconv.FormatUint(uint64(l.CP), 10),
			strconv.Itoa(l.Downloads),
			strconv.Itoa(l.Completed),
			strconv.FormatInt(l.BytesInfra, 10),
			strconv.FormatInt(l.BytesPeers, 10),
			strconv.FormatFloat(l.PeerEfficiency, 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
