package accounting

import (
	"errors"
	"fmt"
	"testing"

	"netsession/internal/id"
	"netsession/internal/telemetry"
)

func TestCollectorBoundedDownloadLog(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewCollector(nil)
	c.Configure(Limits{MaxDownloads: 4}, reg)
	for i := 0; i < 10; i++ {
		if err := c.AddDownload(DownloadRecord{StartMs: int64(i), Size: 100}); err != nil {
			t.Fatal(err)
		}
	}
	snap := c.Snapshot()
	if len(snap.Downloads) != 4 {
		t.Fatalf("retained %d downloads, want the 4-record cap", len(snap.Downloads))
	}
	for i, d := range snap.Downloads {
		if want := int64(6 + i); d.StartMs != want {
			t.Fatalf("retained record %d has StartMs=%d, want %d (newest window, oldest first)",
				i, d.StartMs, want)
		}
	}
	if got := c.Evicted(); got != 6 {
		t.Fatalf("Evicted() = %d, want 6", got)
	}
	m := reg.Snapshot()
	if got := m.Counters[`accounting_records_total{kind="download"}`]; got != 10 {
		t.Fatalf("download records counter = %d, want 10 (accepted, even if later evicted)", got)
	}
	if got := m.Counters["accounting_evicted_total"]; got != 6 {
		t.Fatalf("evicted counter = %d, want 6", got)
	}
	if got := m.Gauges["accounting_log_records"]; got != 4 {
		t.Fatalf("log size gauge = %v, want 4", got)
	}
}

func TestCollectorBoundedLoginsAndRegistrations(t *testing.T) {
	c := NewCollector(nil)
	c.Configure(Limits{MaxLogins: 2, MaxRegistrations: 3}, nil)
	for i := 0; i < 5; i++ {
		c.AddLogin(LoginRecord{TimeMs: int64(i)})
		c.AddRegistration(RegistrationRecord{TimeMs: int64(i)})
	}
	snap := c.Snapshot()
	if len(snap.Logins) != 2 || snap.Logins[0].TimeMs != 3 {
		t.Fatalf("logins window %+v, want the newest 2", snap.Logins)
	}
	if len(snap.Registrations) != 3 || snap.Registrations[0].TimeMs != 2 {
		t.Fatalf("registrations window %+v, want the newest 3", snap.Registrations)
	}
	if got := c.Evicted(); got != 3+2 {
		t.Fatalf("Evicted() = %d, want 5", got)
	}
}

func TestCollectorUnboundedOptOut(t *testing.T) {
	c := NewCollector(nil)
	c.Configure(Unbounded(), nil)
	for i := 0; i < 100; i++ {
		if err := c.AddDownload(DownloadRecord{StartMs: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(c.Snapshot().Downloads); got != 100 {
		t.Fatalf("unbounded collector retained %d downloads, want all 100", got)
	}
	if got := c.Evicted(); got != 0 {
		t.Fatalf("unbounded collector evicted %d records", got)
	}
}

// reasonVerifier rejects based on a marker in the record so the per-reason
// telemetry classification can be exercised without an edge ledger.
type reasonVerifier struct{}

func (reasonVerifier) CheckDownload(rec *DownloadRecord) error {
	switch rec.Size {
	case 1:
		return fmt.Errorf("%w: test", ErrUnauthorized)
	case 2:
		return fmt.Errorf("%w: test", ErrOverclaim)
	case 3:
		return errors.New("some other verification failure")
	}
	return nil
}

func TestCollectorRejectReasonCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewCollector(reasonVerifier{})
	c.Configure(Limits{}, reg)

	if err := c.AddDownload(DownloadRecord{Size: 1}); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("unauthorized report returned %v", err)
	}
	if err := c.AddDownload(DownloadRecord{Size: 2}); !errors.Is(err, ErrOverclaim) {
		t.Fatalf("overclaim report returned %v", err)
	}
	if err := c.AddDownload(DownloadRecord{Size: 3}); err == nil {
		t.Fatal("other verification failure not surfaced")
	}
	if err := c.AddDownload(DownloadRecord{Size: 100, GUID: id.NewGUID()}); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}

	if got := c.Rejected(); got != 3 {
		t.Fatalf("Rejected() = %d, want 3", got)
	}
	if got := len(c.Snapshot().Downloads); got != 1 {
		t.Fatalf("log holds %d downloads, want only the accepted one", got)
	}
	m := reg.Snapshot()
	for reason, want := range map[string]int64{"unauthorized": 1, "overclaim": 1, "other": 1} {
		key := fmt.Sprintf("accounting_rejected_total{reason=%q}", reason)
		if got := m.Counters[key]; got != want {
			t.Fatalf("%s = %d, want %d", key, got, want)
		}
	}
	if got := m.Counters[`accounting_records_total{kind="download"}`]; got != 1 {
		t.Fatalf("download records counter = %d, want 1", got)
	}
}

// TestCollectorEagerSeries: every kind and reject reason must exist at zero
// before any report arrives, so dashboards and the satellite assertions on
// /metrics never miss a series.
func TestCollectorEagerSeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewCollector(nil)
	c.Configure(Limits{}, reg)
	_ = c
	m := reg.Snapshot()
	for _, key := range []string{
		`accounting_records_total{kind="download"}`,
		`accounting_records_total{kind="login"}`,
		`accounting_records_total{kind="registration"}`,
		`accounting_rejected_total{reason="unauthorized"}`,
		`accounting_rejected_total{reason="overclaim"}`,
		`accounting_rejected_total{reason="other"}`,
		"accounting_evicted_total",
	} {
		if v, ok := m.Counters[key]; !ok {
			t.Fatalf("series %s not registered eagerly", key)
		} else if v != 0 {
			t.Fatalf("series %s = %d before any report", key, v)
		}
	}
}
