package logpipe

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"netsession/internal/fsutil"
)

// AckTable is the batch-acknowledgement window an Ingest endpoint consults
// and feeds. DedupIndex (in-memory) and AckStore (durable, replicated by
// anti-entropy) both implement it.
type AckTable interface {
	// Seen reports whether a batch key is inside the window.
	Seen(key string) bool
	// Mark adds a batch key to the window.
	Mark(key string)
}

// AckConfig configures a durable acknowledgement store.
type AckConfig struct {
	// Dir is where the store persists its window ("acks.json" checkpoint +
	// "acks.log" append journal). Empty keeps the store memory-only — same
	// semantics, nothing survives a restart.
	Dir string
	// Window is how many recent batch keys are remembered; zero selects
	// 4096. The window also bounds what anti-entropy can transfer: a peer
	// more than Window acks behind receives only the retained tail, which is
	// fine — exactly-once only needs the recent keys an uploader could
	// still be retrying.
	Window int
	// CheckpointEvery rewrites the checkpoint and truncates the journal
	// after this many marks; zero selects 256.
	CheckpointEvery int
}

// ackRec is one retained acknowledgement: the key and its position in the
// store's total order.
type ackRec struct {
	seq uint64
	key string
}

// AckStore is a node's durable batch-acknowledgement table: a bounded
// window of recently acked batch IDs with a monotonic sequence number,
// persisted as an atomic checkpoint plus a synced append journal so a
// process crash between a batch ack and the next checkpoint loses nothing.
// The sequence number is the anti-entropy cursor — peers that saw our seq
// advance pull the keys they are missing via Since. All methods are safe
// for concurrent use.
type AckStore struct {
	dir        string
	window     int
	ckptEvery  int
	mu         sync.Mutex
	seen       map[string]uint64 // key -> seq
	order      []ackRec          // circular, oldest at next
	next       int
	filled     bool
	seq        uint64 // total acks ever marked; 0 = none
	journal    *os.File
	sinceCkpt  int
	closed     bool
	journalErr error
}

const (
	ackCheckpointFile = "acks.json"
	ackJournalFile    = "acks.log"
)

// ackCheckpoint is the JSON shape of the on-disk checkpoint: the sequence
// number of the last key in Keys, which are ordered oldest-first.
type ackCheckpoint struct {
	Seq  uint64   `json:"seq"`
	Keys []string `json:"keys"`
}

// OpenAckStore opens (creating if needed) the ack store in cfg.Dir,
// replaying the checkpoint and any journal tail written after it.
func OpenAckStore(cfg AckConfig) (*AckStore, error) {
	if cfg.Window <= 0 {
		cfg.Window = 4096
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 256
	}
	a := &AckStore{
		dir:       cfg.Dir,
		window:    cfg.Window,
		ckptEvery: cfg.CheckpointEvery,
		seen:      make(map[string]uint64, cfg.Window),
		order:     make([]ackRec, cfg.Window),
	}
	if cfg.Dir == "" {
		return a, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("ack store dir: %w", err)
	}
	if err := a.load(); err != nil {
		return nil, err
	}
	// Fold the journal tail into a fresh checkpoint and start a new journal,
	// so recovery cost stays bounded no matter how we last went down.
	if err := a.checkpointLocked(); err != nil {
		return nil, err
	}
	return a, nil
}

// load replays the checkpoint then the journal. Either may be missing
// (first boot) or the journal may end in a torn line (crash mid-append);
// both are normal.
func (a *AckStore) load() error {
	raw, err := os.ReadFile(filepath.Join(a.dir, ackCheckpointFile))
	if err == nil {
		var ckpt ackCheckpoint
		if jerr := json.Unmarshal(raw, &ckpt); jerr == nil {
			base := ckpt.Seq - uint64(len(ckpt.Keys))
			for i, key := range ckpt.Keys {
				a.insert(key, base+uint64(i)+1)
			}
			a.seq = ckpt.Seq
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("ack checkpoint: %w", err)
	}
	jf, err := os.Open(filepath.Join(a.dir, ackJournalFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("ack journal: %w", err)
	}
	defer jf.Close()
	sc := bufio.NewScanner(jf)
	sc.Buffer(make([]byte, 4096), 1<<20)
	for sc.Scan() {
		key := strings.TrimSpace(sc.Text())
		if key == "" {
			continue
		}
		if _, dup := a.seen[key]; dup {
			continue
		}
		a.seq++
		a.insert(key, a.seq)
	}
	// A scanner error here is a torn final line; everything before it
	// replayed fine, and the rewrite in OpenAckStore discards the damage.
	return nil
}

// insert places a key into the window at the given sequence, evicting the
// oldest retained key if full. Caller holds a.mu (or is pre-concurrency).
func (a *AckStore) insert(key string, seq uint64) {
	if key == "" {
		return
	}
	if old := a.order[a.next]; old.key != "" {
		delete(a.seen, old.key)
	}
	a.order[a.next] = ackRec{seq: seq, key: key}
	a.next = (a.next + 1) % len(a.order)
	if a.next == 0 {
		a.filled = true
	}
	a.seen[key] = seq
}

// Seen reports whether a batch key is inside the window.
func (a *AckStore) Seen(key string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, ok := a.seen[key]
	return ok
}

// Mark adds a batch key to the window and journals it durably.
func (a *AckStore) Mark(key string) {
	a.MarkAll([]string{key})
}

// MarkAll adds a set of batch keys in one journal write — the merge path
// for anti-entropy pulls and drain pushes.
func (a *AckStore) MarkAll(keys []string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var fresh []string
	for _, key := range keys {
		if key == "" {
			continue
		}
		if _, dup := a.seen[key]; dup {
			continue
		}
		a.seq++
		a.insert(key, a.seq)
		fresh = append(fresh, key)
	}
	if len(fresh) == 0 || a.dir == "" {
		return
	}
	if err := a.appendJournalLocked(fresh); err != nil {
		a.journalErr = err
		return
	}
	a.sinceCkpt += len(fresh)
	if a.sinceCkpt >= a.ckptEvery {
		if err := a.checkpointLocked(); err != nil {
			a.journalErr = err
		}
	}
}

func (a *AckStore) appendJournalLocked(keys []string) error {
	if a.journal == nil {
		f, err := os.OpenFile(filepath.Join(a.dir, ackJournalFile),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		a.journal = f
	}
	var b strings.Builder
	for _, key := range keys {
		b.WriteString(key)
		b.WriteByte('\n')
	}
	if _, err := a.journal.WriteString(b.String()); err != nil {
		return err
	}
	return a.journal.Sync()
}

// Seq returns the total number of acks ever marked — the anti-entropy
// cursor peers compare against.
func (a *AckStore) Seq() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.seq
}

// Since returns the retained keys marked after the given sequence, oldest
// first, plus the current sequence. A caller further behind than the window
// gets only the retained tail — best effort by design.
func (a *AckStore) Since(after uint64) (keys []string, seq uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if after >= a.seq {
		return nil, a.seq
	}
	n := len(a.order)
	start := 0
	if a.filled {
		start = a.next
	}
	count := a.next - start
	if a.filled {
		count = n
	}
	for i := 0; i < count; i++ {
		rec := a.order[(start+i)%n]
		if rec.key != "" && rec.seq > after {
			keys = append(keys, rec.key)
		}
	}
	return keys, a.seq
}

// Window returns the retained keys oldest first — what a draining node
// pushes to its survivors.
func (a *AckStore) Window() []string {
	keys, _ := a.Since(0)
	return keys
}

// Checkpoint forces an atomic rewrite of the on-disk checkpoint and
// truncates the journal. A draining node calls this before exiting.
func (a *AckStore) Checkpoint() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.checkpointLocked()
}

func (a *AckStore) checkpointLocked() error {
	if a.dir == "" {
		return nil
	}
	ckpt := ackCheckpoint{Seq: a.seq}
	n := len(a.order)
	start := 0
	count := a.next
	if a.filled {
		start = a.next
		count = n
	}
	for i := 0; i < count; i++ {
		if rec := a.order[(start+i)%n]; rec.key != "" {
			ckpt.Keys = append(ckpt.Keys, rec.key)
		}
	}
	data, err := json.Marshal(ckpt)
	if err != nil {
		return err
	}
	if err := fsutil.WriteFileAtomic(filepath.Join(a.dir, ackCheckpointFile), data, 0o644); err != nil {
		return err
	}
	if a.journal != nil {
		a.journal.Close()
		a.journal = nil
	}
	if err := os.Remove(filepath.Join(a.dir, ackJournalFile)); err != nil && !os.IsNotExist(err) {
		return err
	}
	a.sinceCkpt = 0
	return nil
}

// Err returns the first journal-persistence error, if any. The in-memory
// window keeps working through disk trouble; callers that care about
// durability can check.
func (a *AckStore) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.journalErr
}

// Close checkpoints and releases the journal handle.
func (a *AckStore) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil
	}
	a.closed = true
	err := a.checkpointLocked()
	if a.journal != nil {
		a.journal.Close()
		a.journal = nil
	}
	return err
}

// ackSinceResponse is the JSON reply of the anti-entropy pull endpoint.
type ackSinceResponse struct {
	Seq  uint64   `json:"seq"`
	Keys []string `json:"keys"`
}

// ackSeenResponse is the JSON reply of the synchronous seen-check endpoint.
type ackSeenResponse struct {
	Seen bool `json:"seen"`
}

// ackMergeRequest is the JSON body of the merge endpoint — a drain pushing
// its window to a survivor.
type ackMergeRequest struct {
	Keys []string `json:"keys"`
}

// ServeSince handles GET AcksPath?since=N: the anti-entropy pull.
func (a *AckStore) ServeSince(w http.ResponseWriter, r *http.Request) {
	after, _ := strconv.ParseUint(r.URL.Query().Get("since"), 10, 64)
	keys, seq := a.Since(after)
	writeJSON(w, ackSinceResponse{Seq: seq, Keys: keys})
}

// ServeSeen handles GET AcksSeenPath?key=K: the synchronous remote dedup
// check a node runs before accepting a batch it has never seen locally.
func (a *AckStore) ServeSeen(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, ackSeenResponse{Seen: a.Seen(r.URL.Query().Get("key"))})
}

// ServeMerge handles POST AcksPath: bulk-merge pushed keys (planned drain
// flushing its window to survivors).
func (a *AckStore) ServeMerge(w http.ResponseWriter, r *http.Request) {
	var req ackMergeRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&req); err != nil {
		http.Error(w, "bad merge body", http.StatusBadRequest)
		return
	}
	a.MarkAll(req.Keys)
	writeJSON(w, ackSinceResponse{Seq: a.Seq()})
}
