package logpipe

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"netsession/internal/fsutil"
	"netsession/internal/telemetry"
)

// segWriter maintains one open segment that is atomically rewritten on every
// append, so a record handed to the pipeline is durable the moment Append
// returns — the property that lets a Kill()-ed peer resume uploading without
// loss. Sealing renames the open file to its final name; the rename plus
// directory fsync makes rotation itself crash-safe. Callers serialize access.
type segWriter struct {
	dir        string
	seq        uint64 // sequence of the open segment
	lines      [][]byte
	pendingLen int64 // uncompressed bytes pending
	maxRecords int
	maxBytes   int64
}

func (w *segWriter) openPath() string { return filepath.Join(w.dir, openSegmentName(w.seq)) }

// append adds one encoded line and rewrites the open segment durably. It
// reports whether the segment reached its rotation threshold.
func (w *segWriter) append(line []byte) (full bool, err error) {
	w.lines = append(w.lines, line)
	w.pendingLen += int64(len(line)) + 1
	data, err := MarshalSegment(w.lines)
	if err != nil {
		return false, err
	}
	if err := fsutil.WriteFileAtomic(w.openPath(), data, 0o644); err != nil {
		return false, err
	}
	return len(w.lines) >= w.maxRecords || w.pendingLen >= w.maxBytes, nil
}

// seal renames the open segment to its final name and starts the next one.
// Sealing an empty writer is a no-op.
func (w *segWriter) seal() (sealed string, records int, err error) {
	if len(w.lines) == 0 {
		return "", 0, nil
	}
	records = len(w.lines)
	sealed = filepath.Join(w.dir, segmentName(w.seq))
	if err := os.Rename(w.openPath(), sealed); err != nil {
		return "", 0, fmt.Errorf("logpipe: seal segment: %w", err)
	}
	if err := fsutil.SyncDir(w.dir); err != nil {
		return "", 0, err
	}
	w.seq++
	w.lines = nil
	w.pendingLen = 0
	return sealed, records, nil
}

// cursor is the spool's durable upload position: every sequence number at or
// below Uploaded has been acknowledged by the control plane (or dropped by
// retention) and must never be re-sent with new content.
type cursor struct {
	Uploaded uint64 `json:"uploaded"`
	// Valid distinguishes "nothing uploaded yet" from "segment 0 uploaded".
	Valid bool `json:"valid"`
}

const cursorFile = "cursor.json"

// SpoolConfig configures a peer-side log spool.
type SpoolConfig struct {
	// Dir holds the segments and the upload cursor.
	Dir string
	// MaxBatchRecords seals the open segment after this many records; zero
	// selects 256.
	MaxBatchRecords int
	// MaxBatchBytes seals the open segment after this many uncompressed
	// bytes; zero selects 256 KiB.
	MaxBatchBytes int64
	// MaxSpoolBytes caps the total size of sealed-but-unuploaded segments;
	// beyond it the oldest segments are dropped (counted, never silently).
	// Zero selects 32 MiB.
	MaxSpoolBytes int64
	// Telemetry registers the spool's metrics; nil skips telemetry.
	Telemetry *telemetry.Registry
}

// Spool is the peer-side durable log buffer. All methods are safe for
// concurrent use.
type Spool struct {
	cfg SpoolConfig

	mu  sync.Mutex
	w   segWriter
	cur cursor

	records        *telemetry.Counter
	dropped        *telemetry.Counter
	segmentsGauge  *telemetry.Gauge
	bytesGauge     *telemetry.Gauge
	sealedSegments *telemetry.Counter
}

// OpenSpool opens (creating if needed) a spool directory and recovers its
// state: segments already acknowledged by the cursor are deleted (the crash
// window between acknowledgement and deletion), and a leftover open segment
// from a killed process is sealed so its records are uploadable — nothing
// that reached Append is ever lost.
func OpenSpool(cfg SpoolConfig) (*Spool, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("logpipe: spool dir required")
	}
	if cfg.MaxBatchRecords <= 0 {
		cfg.MaxBatchRecords = 256
	}
	if cfg.MaxBatchBytes <= 0 {
		cfg.MaxBatchBytes = 256 << 10
	}
	if cfg.MaxSpoolBytes <= 0 {
		cfg.MaxSpoolBytes = 32 << 20
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("logpipe: spool dir: %w", err)
	}
	s := &Spool{cfg: cfg}
	if reg := cfg.Telemetry; reg != nil {
		s.records = reg.Counter("logpipe_spool_records_total",
			"download log records appended to the durable spool", nil)
		s.dropped = reg.Counter("logpipe_spool_dropped_records_total",
			"spooled records dropped by the retention cap before upload", nil)
		s.sealedSegments = reg.Counter("logpipe_spool_segments_sealed_total",
			"spool segments sealed for upload", nil)
		s.segmentsGauge = reg.Gauge("logpipe_spool_segments",
			"sealed spool segments awaiting upload", nil)
		s.bytesGauge = reg.Gauge("logpipe_spool_bytes",
			"bytes of sealed spool segments awaiting upload", nil)
	}
	if raw, err := os.ReadFile(filepath.Join(cfg.Dir, cursorFile)); err == nil {
		// A corrupt cursor degrades to "nothing uploaded"; the CP's dedup
		// window absorbs the resends.
		_ = json.Unmarshal(raw, &s.cur)
	}
	segs, err := ListSegments(cfg.Dir)
	if err != nil {
		return nil, err
	}
	var maxSeq uint64
	haveSeq := false
	for _, sf := range segs {
		if s.cur.Valid && sf.Seq <= s.cur.Uploaded && !sf.Open {
			os.Remove(sf.Path) // acknowledged before the crash; finish the delete
			continue
		}
		if sf.Open {
			// Seal the crash leftover under its own sequence so the records
			// become a complete, uploadable batch.
			if err := os.Rename(sf.Path, filepath.Join(cfg.Dir, segmentName(sf.Seq))); err != nil {
				return nil, fmt.Errorf("logpipe: seal recovered segment: %w", err)
			}
		}
		if !haveSeq || sf.Seq > maxSeq {
			maxSeq, haveSeq = sf.Seq, true
		}
	}
	next := uint64(0)
	if haveSeq {
		next = maxSeq + 1
	}
	if s.cur.Valid && s.cur.Uploaded+1 > next {
		next = s.cur.Uploaded + 1
	}
	s.w = segWriter{
		dir: cfg.Dir, seq: next,
		maxRecords: cfg.MaxBatchRecords, maxBytes: cfg.MaxBatchBytes,
	}
	s.updateGaugesLocked()
	return s, nil
}

// Append durably adds one record (marshaled as JSON) to the spool. When the
// open segment reaches its batch threshold it is sealed and becomes
// uploadable.
func (s *Spool) Append(rec any) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("logpipe: marshal record: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	full, err := s.w.append(line)
	if err != nil {
		return err
	}
	if s.records != nil {
		s.records.Inc()
	}
	if full {
		return s.sealLocked()
	}
	return nil
}

// Flush seals the open segment (if it holds any records) so everything
// appended so far becomes uploadable.
func (s *Spool) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sealLocked()
}

func (s *Spool) sealLocked() error {
	_, n, err := s.w.seal()
	if err != nil {
		return err
	}
	if n > 0 && s.sealedSegments != nil {
		s.sealedSegments.Inc()
	}
	if err := s.enforceRetentionLocked(); err != nil {
		return err
	}
	s.updateGaugesLocked()
	return nil
}

// enforceRetentionLocked drops the oldest sealed segments while the spool
// exceeds its byte cap, advancing the cursor past them so the uploader never
// looks for dropped batches. Drops are counted — a capped spool must read as
// data loss on /metrics, not as silence.
func (s *Spool) enforceRetentionLocked() error {
	segs, err := s.sealedLocked()
	if err != nil {
		return err
	}
	var total int64
	for _, sf := range segs {
		total += sf.Size
	}
	for i := 0; total > s.cfg.MaxSpoolBytes && i < len(segs)-1; i++ {
		sf := segs[i]
		n := countRecords(sf.Path)
		if err := os.Remove(sf.Path); err != nil {
			return fmt.Errorf("logpipe: drop segment: %w", err)
		}
		if s.dropped != nil {
			s.dropped.Add(int64(n))
		}
		total -= sf.Size
		if err := s.writeCursorLocked(sf.Seq); err != nil {
			return err
		}
	}
	return nil
}

// sealedLocked lists sealed segments beyond the cursor, oldest first.
func (s *Spool) sealedLocked() ([]SegmentFile, error) {
	all, err := ListSegments(s.cfg.Dir)
	if err != nil {
		return nil, err
	}
	var out []SegmentFile
	for _, sf := range all {
		if sf.Open {
			continue
		}
		if s.cur.Valid && sf.Seq <= s.cur.Uploaded {
			continue
		}
		out = append(out, sf)
	}
	return out, nil
}

// Batch is one sealed segment ready for upload. Data is the segment's
// compressed bytes exactly as stored; (spool GUID, Seq) is the idempotent
// batch identity the control plane deduplicates on.
type Batch struct {
	Seq     uint64
	Records int
	Data    []byte
}

// NextBatch returns the oldest sealed, unacknowledged segment, or ok=false
// when the spool is drained.
func (s *Spool) NextBatch() (b Batch, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	segs, err := s.sealedLocked()
	if err != nil || len(segs) == 0 {
		return Batch{}, false, err
	}
	sf := segs[0]
	data, err := os.ReadFile(sf.Path)
	if err != nil {
		return Batch{}, false, err
	}
	lines, rerr := ReadSegment(bytes.NewReader(data))
	if rerr != nil && len(lines) == 0 {
		// Unreadable segment (torn beyond recovery): skip it rather than
		// wedging the pipeline, counting its loss.
		if s.dropped != nil {
			s.dropped.Inc()
		}
		os.Remove(sf.Path)
		if err := s.writeCursorLocked(sf.Seq); err != nil {
			return Batch{}, false, err
		}
		return Batch{}, false, fmt.Errorf("logpipe: segment %d unreadable, skipped", sf.Seq)
	}
	return Batch{Seq: sf.Seq, Records: len(lines), Data: data}, true, nil
}

// MarkUploaded records that every segment at or below seq was acknowledged
// by the control plane: the cursor is persisted first (so a crash re-sends
// rather than loses), then the files are deleted.
func (s *Spool) MarkUploaded(seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writeCursorLocked(seq); err != nil {
		return err
	}
	segs, err := ListSegments(s.cfg.Dir)
	if err != nil {
		return err
	}
	for _, sf := range segs {
		if !sf.Open && sf.Seq <= seq {
			os.Remove(sf.Path)
		}
	}
	s.updateGaugesLocked()
	return nil
}

func (s *Spool) writeCursorLocked(seq uint64) error {
	if s.cur.Valid && seq <= s.cur.Uploaded {
		return nil
	}
	s.cur = cursor{Uploaded: seq, Valid: true}
	raw, _ := json.Marshal(s.cur)
	return fsutil.WriteFileAtomic(filepath.Join(s.cfg.Dir, cursorFile), raw, 0o644)
}

func (s *Spool) updateGaugesLocked() {
	if s.segmentsGauge == nil {
		return
	}
	segs, err := s.sealedLocked()
	if err != nil {
		return
	}
	var total int64
	for _, sf := range segs {
		total += sf.Size
	}
	s.segmentsGauge.Set(float64(len(segs)))
	s.bytesGauge.Set(float64(total))
}

// Pending reports how many sealed segments await upload and how many records
// sit in the open segment; tests and status surfaces use it.
func (s *Spool) Pending() (sealed int, open int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	segs, _ := s.sealedLocked()
	return len(segs), len(s.w.lines)
}
