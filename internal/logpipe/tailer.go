package logpipe

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"netsession/internal/analysis"
	"netsession/internal/fsutil"
)

// TailCursor is a tailer's durable position in a segment directory: the next
// segment sequence to read and how many records of it have already been
// consumed. The record offset matters because the open segment is rewritten
// in place as it grows — on each poll the tailer re-reads it and emits only
// the lines past the cursor.
type TailCursor struct {
	Seq uint64 `json:"seq"`
	Rec int    `json:"rec"`
}

// TailerConfig configures a segment tailer.
type TailerConfig struct {
	// Dir is the segment directory to follow.
	Dir string
	// CursorPath, when non-empty, is a file the cursor is checkpointed to
	// after every poll (atomically), so a restarted tailer resumes where it
	// left off instead of re-reading the store. A missing or corrupt cursor
	// file degrades to "start from the beginning".
	CursorPath string
}

// Tailer incrementally follows a rotated segment store: each Poll returns the
// records appended since the previous one, across any number of seals and
// rotations in between. It is the live half of the analytics pipeline — the
// offline pass reads a sealed store once, the tailer feeds a streaming
// summarizer the same records as they land.
//
// Damage policy mirrors ReadDownloads: a torn or half-written *last* segment
// only delays its tail (the records reappear on a later poll once the writer
// completes or rotates it); a torn segment with sealed successors lost its
// tail for good, so the tailer counts it and moves on rather than wedging the
// live pipeline forever. Methods are not safe for concurrent use.
type Tailer struct {
	cfg  TailerConfig
	cur  TailCursor
	torn int
}

// OpenTailer opens a tailer over a segment directory, resuming from the
// checkpointed cursor when one exists.
func OpenTailer(cfg TailerConfig) (*Tailer, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("logpipe: tailer dir required")
	}
	t := &Tailer{cfg: cfg}
	if cfg.CursorPath != "" {
		if raw, err := os.ReadFile(cfg.CursorPath); err == nil {
			var cur TailCursor
			if json.Unmarshal(raw, &cur) == nil {
				t.cur = cur
			}
			// A corrupt cursor degrades to a full re-read; every consumer of
			// the tailer aggregates idempotently or tolerates replays.
		}
	}
	return t, nil
}

// Cursor returns the tailer's current position.
func (t *Tailer) Cursor() TailCursor { return t.cur }

// TornSkipped returns how many damaged non-final segments the tailer has
// skipped past since it was opened. A non-zero value means records were lost
// to corruption; live dashboards should surface it, not hide it.
func (t *Tailer) TornSkipped() int { return t.torn }

// Poll reads every record appended since the last call and advances the
// cursor. A directory with no segments yet is not an error — the store may
// simply not have spilled anything; Poll returns no records and waits for the
// next call. The returned slice is freshly allocated and owned by the caller.
func (t *Tailer) Poll() ([]analysis.OfflineDownload, error) {
	segs, err := ListSegments(t.cfg.Dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil // store directory not created yet
		}
		return nil, err
	}
	var out []analysis.OfflineDownload
	for i, sf := range segs {
		if sf.Seq < t.cur.Seq {
			continue
		}
		last := i == len(segs)-1
		lines, rerr := readTailSegment(t.cfg.Dir, sf)
		if rerr != nil && !errors.Is(rerr, ErrTorn) {
			if os.IsNotExist(rerr) {
				// Sealed out from under us between the listing and the open;
				// the renamed file is picked up whole on the next poll.
				break
			}
			return out, fmt.Errorf("logpipe: tail segment %s: %w", sf.Path, rerr)
		}
		torn := errors.Is(rerr, ErrTorn)
		if sf.Seq == t.cur.Seq && len(lines) < t.cur.Rec {
			// Segments only ever grow until sealed; fewer records than the
			// cursor means the directory was replaced behind our back.
			return out, fmt.Errorf("logpipe: segment %s shrank under cursor (%d < %d)",
				sf.Path, len(lines), t.cur.Rec)
		}
		start := 0
		if sf.Seq == t.cur.Seq {
			start = t.cur.Rec
		}
		consumed, decodeErr := start, error(nil)
		for _, line := range lines[start:] {
			var d analysis.OfflineDownload
			if err := json.Unmarshal(line, &d); err != nil {
				decodeErr = err
				break
			}
			out = append(out, d)
			consumed++
		}
		damaged := torn || decodeErr != nil
		switch {
		case damaged && last:
			// Tail damage on the newest segment: keep the cursor on it and let
			// a later poll find it completed, rotated, or superseded.
			t.cur = TailCursor{Seq: sf.Seq, Rec: consumed}
		case damaged:
			// Damage with sealed successors can never heal; count the loss and
			// move past it so the live pipeline keeps flowing.
			t.torn++
			t.cur = TailCursor{Seq: sf.Seq + 1}
		case sf.Open:
			// Clean but still growing; stay on it at the consumed offset.
			t.cur = TailCursor{Seq: sf.Seq, Rec: consumed}
		default:
			t.cur = TailCursor{Seq: sf.Seq + 1}
		}
	}
	if err := t.checkpoint(); err != nil {
		return out, err
	}
	return out, nil
}

// readTailSegment reads a listed segment, falling back to the sealed name
// when an open segment was sealed (renamed) after the listing.
func readTailSegment(dir string, sf SegmentFile) ([][]byte, error) {
	lines, err := ReadSegmentFile(sf.Path)
	if err != nil && os.IsNotExist(err) && sf.Open {
		return ReadSegmentFile(segmentPathSealed(dir, sf.Seq))
	}
	return lines, err
}

func (t *Tailer) checkpoint() error {
	if t.cfg.CursorPath == "" {
		return nil
	}
	raw, err := json.Marshal(t.cur)
	if err != nil {
		return err
	}
	if err := fsutil.WriteFileAtomic(t.cfg.CursorPath, raw, 0o644); err != nil {
		return fmt.Errorf("logpipe: checkpoint tail cursor: %w", err)
	}
	return nil
}

// Follow polls until the context is cancelled, invoking fn with each poll's
// new records (fn is skipped for empty polls). A poll error is passed to fn
// with nil records; returning a non-nil error from fn stops the loop.
func (t *Tailer) Follow(ctx context.Context, interval time.Duration, fn func([]analysis.OfflineDownload, error) error) error {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		recs, err := t.Poll()
		if len(recs) > 0 || err != nil {
			if ferr := fn(recs, err); ferr != nil {
				return ferr
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// ForEachDownload streams every download record in a sealed segment directory
// through fn in segment order, decoding segments on workers parallel
// goroutines while preserving delivery order. It applies the same damage
// policy as ReadDownloads — torn final segment tolerated, damage elsewhere is
// an error — but never materializes more than a few segments of records at
// once, so an arbitrarily large store is read in bounded memory. fn is called
// sequentially; returning an error stops the stream.
func ForEachDownload(dir string, workers int, fn func(*analysis.OfflineDownload) error) (int, error) {
	segs, err := ListSegments(dir)
	if err != nil {
		return 0, err
	}
	if len(segs) == 0 {
		return 0, fmt.Errorf("logpipe: no segments in %s", dir)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(segs) {
		workers = len(segs)
	}

	type decoded struct {
		recs []analysis.OfflineDownload
		err  error
	}
	results := make([]chan decoded, len(segs))
	for i := range results {
		results[i] = make(chan decoded, 1)
	}
	// Admission window: a worker may only start segment i once the consumer
	// is within `workers` segments of it, bounding buffered decode output.
	admit := make(chan struct{}, workers)
	for i := 0; i < workers; i++ {
		admit <- struct{}{}
	}
	// stop cancels the pipeline at the first error: the feeder stops handing
	// out segments and closes next, so in-flight decodes are the only work
	// that still completes. Without this, an error on segment 3 of a
	// million-segment store would decode the other 999,997 for nothing.
	stop := make(chan struct{})
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				recs, derr := decodeSegment(dir, segs[i], i == len(segs)-1)
				// Buffered and written at most once per segment: never blocks.
				results[i] <- decoded{recs, derr}
			}
		}()
	}
	go func() {
		defer close(next)
		for i := range segs {
			select {
			case <-admit:
			case <-stop:
				return
			}
			select {
			case next <- i:
			case <-stop:
				return
			}
		}
	}()

	// The consumer delivers results strictly in segment order, so the error
	// it surfaces is deterministic — the lowest-indexed decode failure, or
	// fn's error at a fixed record — regardless of worker count or timing.
	n := 0
	var ferr error
	for i := range segs {
		d := <-results[i]
		admit <- struct{}{}
		if d.err != nil {
			ferr = d.err
			break
		}
		for j := range d.recs {
			if err := fn(&d.recs[j]); err != nil {
				ferr = err
				break
			}
			n++
		}
		if ferr != nil {
			break
		}
	}
	if ferr != nil {
		// Nothing can wedge: result channels are buffered and written at
		// most once, and the feeder bails out of its admit wait on stop.
		close(stop)
	}
	wg.Wait()
	return n, ferr
}

// ForEachDownloadParallel streams every download record in a sealed segment
// directory through fn, calling it concurrently from workers goroutines —
// fn must be safe for concurrent use (e.g. a ShardedOfflineAccumulator or a
// StreamingSummarizer). Unlike ForEachDownload there is no ordered hand-off
// back to a single consumer, so decode AND aggregation parallelize; within
// one segment records are still delivered in order. On error the pipeline
// cancels and the lowest-segment-indexed error observed is returned; the
// returned count is the number of records delivered before cancellation.
func ForEachDownloadParallel(dir string, workers int, fn func(*analysis.OfflineDownload) error) (int, error) {
	segs, err := ListSegments(dir)
	if err != nil {
		return 0, err
	}
	if len(segs) == 0 {
		return 0, fmt.Errorf("logpipe: no segments in %s", dir)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(segs) {
		workers = len(segs)
	}

	var (
		n        atomic.Int64
		mu       sync.Mutex
		stopOnce sync.Once
		ferrSeg  = -1
		ferr     error
	)
	stop := make(chan struct{})
	fail := func(seg int, err error) {
		mu.Lock()
		if ferr == nil || seg < ferrSeg {
			ferrSeg, ferr = seg, err
		}
		mu.Unlock()
		stopOnce.Do(func() { close(stop) })
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				recs, derr := decodeSegment(dir, segs[i], i == len(segs)-1)
				if derr != nil {
					fail(i, derr)
					continue
				}
				for j := range recs {
					if err := fn(&recs[j]); err != nil {
						fail(i, err)
						break
					}
					n.Add(1)
				}
			}
		}()
	}
	go func() {
		defer close(next)
		for i := range segs {
			select {
			case next <- i:
			case <-stop:
				return
			}
		}
	}()
	wg.Wait()
	return int(n.Load()), ferr
}

// StoreSummary is the result of one parallel streaming pass over a segment
// store: the offline summary, the figure passes, and the record count.
type StoreSummary struct {
	Summary analysis.OfflineSummary
	Figures *analysis.OfflineFigures
	Records int
}

// SummarizeStore runs the full offline analysis over a sealed segment store
// in one parallel streaming pass: workers goroutines decode segments and
// fold records into a GUID-sharded accumulator, so a store of any size
// analyzes in memory proportional to its distinct GUIDs/URLs/ASes — never
// to its record count. The summary matches SummarizeOffline over the same
// records (count-, set- and sort-derived fields exactly; float sums to
// accumulation-order rounding), and the figures match the batch passes
// exactly.
func SummarizeStore(dir string, workers int) (StoreSummary, error) {
	if workers < 1 {
		workers = 1
	}
	acc := analysis.NewShardedOfflineAccumulator(4*workers, true)
	n, err := ForEachDownloadParallel(dir, workers, func(d *analysis.OfflineDownload) error {
		acc.Add(d)
		return nil
	})
	if err != nil {
		return StoreSummary{}, err
	}
	return StoreSummary{Summary: acc.Summary(), Figures: acc.Figures(), Records: n}, nil
}

// decodeSegment reads and unmarshals one segment under the shared damage
// policy.
func decodeSegment(dir string, sf SegmentFile, last bool) ([]analysis.OfflineDownload, error) {
	lines, rerr := ReadSegmentFile(sf.Path)
	if rerr != nil && !(last && errors.Is(rerr, ErrTorn)) {
		return nil, fmt.Errorf("logpipe: segment %s: %w", sf.Path, rerr)
	}
	recs := make([]analysis.OfflineDownload, 0, len(lines))
	for j, line := range lines {
		var d analysis.OfflineDownload
		if err := json.Unmarshal(line, &d); err != nil {
			if last {
				// A torn final record reads as damage only to the tail.
				break
			}
			return nil, fmt.Errorf("logpipe: segment %s record %d: %w", sf.Path, j, err)
		}
		recs = append(recs, d)
	}
	return recs, nil
}

// DefaultTailCursorPath is the conventional cursor location inside a log
// directory, used by the analyzer's follow mode.
func DefaultTailCursorPath(dir string) string {
	return filepath.Join(dir, "tail-cursor.json")
}
