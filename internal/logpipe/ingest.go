package logpipe

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"netsession/internal/faults"
	"netsession/internal/id"
	"netsession/internal/telemetry"
)

// BatchPath is the ingest endpoint's URL path; uploaders POST sealed
// segments to it on the control plane's operator HTTP surface.
const BatchPath = "/v1/logs/batch"

// Batch identity travels in headers so the body stays exactly the segment
// bytes the spool sealed — idempotent resends are byte-identical.
const (
	HeaderGUID = "X-Logpipe-Guid"
	HeaderSeq  = "X-Logpipe-Seq"
)

// IngestConfig configures the control plane's log ingest endpoint.
type IngestConfig struct {
	// Handle processes one decoded entry from an accepted batch. A returned
	// error rejects that record (counted, not retryable); the batch is still
	// acknowledged — verification rejects must not wedge the uploader.
	Handle func(guid id.GUID, e *Entry) error
	// MaxBatchBytes caps the compressed batch body; zero selects 1 MiB.
	MaxBatchBytes int64
	// MaxDecodedBytes caps the decompressed batch; zero selects 8 MiB.
	// Oversized batches are refused with 413 — a gzip bomb must not expand
	// in CN memory.
	MaxDecodedBytes int64
	// DedupWindow is how many recent batch IDs are remembered for
	// exactly-once ingestion across uploader crashes; zero selects 4096.
	// Ignored when Acks is set.
	DedupWindow int
	// Acks, when set, is the batch-acknowledgement table this endpoint
	// consults and feeds — a node's durable AckStore in a multi-node control
	// plane, replicated by anti-entropy, so a batch acked by one node and
	// retried against another after failover still ingests exactly once.
	// Nil gives the endpoint a private in-memory window.
	Acks AckTable
	// PeerSeen, when set, is consulted on a local dedup miss before the
	// batch body is read: it asks the rest of the cluster whether any node
	// already acked this key. It closes the replay-before-anti-entropy gap —
	// the uploader retried against a different node faster than the ack
	// could replicate. A hit marks the key locally and answers Duplicate.
	PeerSeen func(key string) bool
	// MaxInflight bounds concurrently processed batches; beyond it the
	// endpoint answers 429 with Retry-After — explicit backpressure instead
	// of queue growth. Zero selects 4.
	MaxInflight int
	// RetryAfter is the backpressure hint sent with 429s; zero selects 1s.
	RetryAfter time.Duration
	// Telemetry registers the ingest metrics eagerly; nil skips telemetry.
	Telemetry *telemetry.Registry
}

// Ingest is the HTTP ingest endpoint for uploaded log batches. It enforces
// size caps, deduplicates resent batches by (GUID, sequence), sheds load
// with explicit 429 backpressure, and feeds each record to the configured
// handler. All methods are safe for concurrent use.
type Ingest struct {
	cfg IngestConfig
	sem chan struct{}

	// inj is the runtime-settable fault injector (chaos tests flip it on and
	// off mid-run to drive 503 storms and stalls through a live endpoint).
	inj atomic.Pointer[faults.Injector]

	acks AckTable

	// peerSeen is runtime-settable: the cluster wiring installs the
	// anti-entropy syncer's remote check after the node's HTTP surface is up.
	peerSeen atomic.Pointer[func(key string) bool]

	batches      *telemetry.Counter
	records      *telemetry.Counter
	deduped      *telemetry.Counter
	backpressure *telemetry.Counter
	rejTooLarge  *telemetry.Counter
	rejBadBatch  *telemetry.Counter
	rejBadEntry  *telemetry.Counter
}

// NewIngest creates an ingest endpoint.
func NewIngest(cfg IngestConfig) *Ingest {
	if cfg.MaxBatchBytes <= 0 {
		cfg.MaxBatchBytes = 1 << 20
	}
	if cfg.MaxDecodedBytes <= 0 {
		cfg.MaxDecodedBytes = 8 << 20
	}
	if cfg.DedupWindow <= 0 {
		cfg.DedupWindow = 4096
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	in := &Ingest{
		cfg:  cfg,
		sem:  make(chan struct{}, cfg.MaxInflight),
		acks: cfg.Acks,
	}
	if in.acks == nil {
		in.acks = NewDedupIndex(cfg.DedupWindow)
	}
	if cfg.PeerSeen != nil {
		fn := cfg.PeerSeen
		in.peerSeen.Store(&fn)
	}
	if reg := cfg.Telemetry; reg != nil {
		in.batches = reg.Counter("logpipe_ingest_batches_total",
			"log batches accepted by the ingest endpoint", nil)
		in.records = reg.Counter("logpipe_ingest_records_total",
			"log records accepted by the ingest endpoint", nil)
		in.deduped = reg.Counter("logpipe_ingest_deduped_total",
			"resent log batches dropped by the dedup window", nil)
		in.backpressure = reg.Counter("logpipe_ingest_backpressure_total",
			"log batches answered with 429 backpressure", nil)
		const rejName = "logpipe_ingest_rejected_total"
		const rejHelp = "log batches or records rejected by the ingest endpoint, by reason"
		in.rejTooLarge = reg.Counter(rejName, rejHelp, telemetry.Labels{"reason": "too_large"})
		in.rejBadBatch = reg.Counter(rejName, rejHelp, telemetry.Labels{"reason": "bad_batch"})
		in.rejBadEntry = reg.Counter(rejName, rejHelp, telemetry.Labels{"reason": "bad_entry"})
	}
	return in
}

// SetFaults installs (or, with nil, removes) a fault injector on the live
// endpoint: injected errors answer 503, injected latency stalls the
// response, injected rejects answer 429.
func (in *Ingest) SetFaults(inj *faults.Injector) { in.inj.Store(inj) }

// SetPeerSeen installs (or, with nil, removes) the remote dedup check on
// the live endpoint; see IngestConfig.PeerSeen.
func (in *Ingest) SetPeerSeen(fn func(key string) bool) {
	if fn == nil {
		in.peerSeen.Store(nil)
		return
	}
	in.peerSeen.Store(&fn)
}

// BatchResponse is the ingest endpoint's JSON reply.
type BatchResponse struct {
	Accepted  int  `json:"accepted"`
	Rejected  int  `json:"rejected"`
	Duplicate bool `json:"duplicate"`
}

// Handler returns the HTTP handler for POST BatchPath.
func (in *Ingest) Handler() http.Handler {
	return http.HandlerFunc(in.serve)
}

func (in *Ingest) serve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	inj := in.inj.Load()
	if d := inj.Latency(); d > 0 {
		time.Sleep(d)
	}
	if inj.Down() || inj.FailNext() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "ingest unavailable (injected)", http.StatusServiceUnavailable)
		return
	}
	if inj.RejectNext() {
		in.send429(w)
		return
	}
	select {
	case in.sem <- struct{}{}:
		defer func() { <-in.sem }()
	default:
		in.send429(w)
		return
	}

	guid, err := id.ParseGUID(r.Header.Get(HeaderGUID))
	if err != nil || guid.IsZero() {
		// The all-zeros GUID parses but would key every batch as
		// "<zeros>/seq" — and an empty dedup key can wedge the window's
		// eviction slot; reject the whole class at the door.
		in.inc(in.rejBadBatch)
		http.Error(w, "missing or invalid "+HeaderGUID, http.StatusBadRequest)
		return
	}
	seq, err := strconv.ParseUint(r.Header.Get(HeaderSeq), 10, 64)
	if err != nil {
		in.inc(in.rejBadBatch)
		http.Error(w, "missing or invalid "+HeaderSeq, http.StatusBadRequest)
		return
	}
	key := guid.String() + "/" + strconv.FormatUint(seq, 10)
	if in.acks.Seen(key) {
		// The uploader crashed between our ack and its cursor write; its
		// resend is byte-identical, so acknowledging without re-ingesting
		// preserves exactly-once accounting.
		in.inc(in.deduped)
		writeJSON(w, BatchResponse{Duplicate: true})
		return
	}
	if fn := in.peerSeen.Load(); fn != nil && (*fn)(key) {
		// Another node acked this batch and anti-entropy hasn't copied the
		// ack here yet — the uploader failed over faster than replication.
		// Mark locally so the next resend short-circuits without the
		// round-trip.
		in.acks.Mark(key)
		in.inc(in.deduped)
		writeJSON(w, BatchResponse{Duplicate: true})
		return
	}

	body := http.MaxBytesReader(w, r.Body, in.cfg.MaxBatchBytes)
	raw, err := io.ReadAll(body)
	if err != nil {
		in.inc(in.rejTooLarge)
		http.Error(w, "batch exceeds compressed size cap", http.StatusRequestEntityTooLarge)
		return
	}
	accepted, rejected, err := in.ingest(guid, raw)
	if err != nil {
		if _, tooLarge := err.(*tooLargeError); tooLarge {
			in.inc(in.rejTooLarge)
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		in.inc(in.rejBadBatch)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	in.acks.Mark(key)
	in.inc(in.batches)
	if in.records != nil {
		in.records.Add(int64(accepted))
	}
	writeJSON(w, BatchResponse{Accepted: accepted, Rejected: rejected})
}

func (in *Ingest) send429(w http.ResponseWriter) {
	in.inc(in.backpressure)
	secs := int(in.cfg.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	http.Error(w, "ingest backpressure; retry later", http.StatusTooManyRequests)
}

// tooLargeError marks decompressed-size violations.
type tooLargeError struct{ msg string }

func (e *tooLargeError) Error() string { return e.msg }

// ingest decodes a batch and feeds each entry to the handler. The whole
// batch is rejected only for transport-level damage (bad gzip, oversized);
// record-level problems reject just that record.
func (in *Ingest) ingest(guid id.GUID, raw []byte) (accepted, rejected int, err error) {
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		return 0, 0, fmt.Errorf("bad gzip batch: %w", err)
	}
	defer zr.Close()
	limited := io.LimitReader(zr, in.cfg.MaxDecodedBytes+1)
	var decoded int64
	sc := bufio.NewScanner(io.TeeReader(limited, countWriter{&decoded}))
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	for sc.Scan() {
		if decoded > in.cfg.MaxDecodedBytes {
			return 0, 0, &tooLargeError{"batch exceeds decoded size cap"}
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Entry
		if uerr := json.Unmarshal(line, &e); uerr != nil {
			rejected++
			in.inc(in.rejBadEntry)
			continue
		}
		if in.cfg.Handle != nil {
			if herr := in.cfg.Handle(guid, &e); herr != nil {
				rejected++
				in.inc(in.rejBadEntry)
				continue
			}
		}
		accepted++
	}
	if serr := sc.Err(); serr != nil {
		return 0, 0, fmt.Errorf("bad batch stream: %w", serr)
	}
	if decoded > in.cfg.MaxDecodedBytes {
		return 0, 0, &tooLargeError{"batch exceeds decoded size cap"}
	}
	return accepted, rejected, nil
}

func (in *Ingest) inc(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// countWriter tallies bytes flowing through a TeeReader.
type countWriter struct{ n *int64 }

func (c countWriter) Write(p []byte) (int, error) {
	*c.n += int64(len(p))
	return len(p), nil
}
