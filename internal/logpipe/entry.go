package logpipe

import (
	"encoding/hex"
	"fmt"

	"netsession/internal/content"
	"netsession/internal/id"
)

// Entry is the wire schema of one client log record inside an uploaded
// batch: the per-download usage report of §4.1 as the peer knows it, before
// the control plane attributes geography. Objects travel as the full 64-hex
// content ID so the CP can re-verify the report against the edge ledger, and
// the edge-issued authorization token rides along for the accounting checks
// of §3.5 (exactly as it does on the control-connection StatsReport path).
type Entry struct {
	Kind    string `json:"kind"` // "download" is the only kind today
	GUID    string `json:"guid"`
	IP      string `json:"ip,omitempty"` // the peer's declared IP
	Object  string `json:"object"`       // full hex content ID
	URLHash string `json:"urlHash"`
	CP      uint32 `json:"cp"`
	Size    int64  `json:"size"`

	StartMs int64 `json:"startMs"`
	EndMs   int64 `json:"endMs"`

	BytesInfra int64 `json:"bytesInfra"`
	BytesPeers int64 `json:"bytesPeers"`

	Outcome       uint8  `json:"outcome"`
	PeersReturned int    `json:"peersReturned"`
	Token         []byte `json:"token,omitempty"`

	FromPeers []EntryContribution `json:"fromPeers,omitempty"`

	// Stream is the playback sub-record of a deadline-driven streaming
	// download; absent for bulk transfers.
	Stream *EntryStream `json:"stream,omitempty"`
}

// EntryContribution attributes bytes to one serving peer.
type EntryContribution struct {
	GUID  string `json:"guid"`
	Bytes int64  `json:"bytes"`
}

// EntryStream carries the streaming outcome of one download: the startup
// delay, rebuffer and deadline-miss tallies of the playback clock, and the
// urgent-window bytes the edge had to rescue.
type EntryStream struct {
	BitrateBps      int64 `json:"bitrateBps"`
	StartupDelayMs  int64 `json:"startupDelayMs"`
	RebufferCount   int64 `json:"rebufferCount"`
	RebufferMs      int64 `json:"rebufferMs"`
	DeadlineMisses  int64 `json:"deadlineMisses"`
	PiecesPlayed    int64 `json:"piecesPlayed"`
	PiecesTotal     int64 `json:"piecesTotal"`
	EdgeRescueBytes int64 `json:"edgeRescueBytes"`
}

// EntryKindDownload is the Entry.Kind of a per-download usage report.
const EntryKindDownload = "download"

// ObjectID parses the entry's full-length content ID.
func (e *Entry) ObjectID() (content.ObjectID, error) {
	var oid content.ObjectID
	raw, err := hex.DecodeString(e.Object)
	if err != nil || len(raw) != len(oid) {
		return oid, fmt.Errorf("logpipe: invalid object id %q", e.Object)
	}
	copy(oid[:], raw)
	return oid, nil
}

// EncodeObjectID renders a content ID in the entry's full-length form (the
// short content.ObjectID.String form is for logs and is not reversible).
func EncodeObjectID(oid content.ObjectID) string {
	return hex.EncodeToString(oid[:])
}

// PeerGUID parses the entry's reporting GUID.
func (e *Entry) PeerGUID() (id.GUID, error) {
	return id.ParseGUID(e.GUID)
}
