package logpipe

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"netsession/internal/id"
	"netsession/internal/retry"
	"netsession/internal/telemetry"
)

// testPipe wires a real spool, a real ingest endpoint, and an uploader with
// the background loop disabled, so tests drive every drain explicitly.
type testPipe struct {
	spool    *Spool
	ingest   *Ingest
	server   *httptest.Server
	uploader *Uploader
	handled  *countingHandler
	reg      *telemetry.Registry
}

func newTestPipe(t *testing.T, spoolDir string) *testPipe {
	t.Helper()
	p := &testPipe{handled: &countingHandler{}, reg: telemetry.NewRegistry()}
	p.ingest = NewIngest(IngestConfig{Handle: p.handled.handle, Telemetry: p.reg})
	mux := http.NewServeMux()
	mux.Handle("POST "+BatchPath, p.ingest.Handler())
	p.server = httptest.NewServer(mux)
	t.Cleanup(p.server.Close)

	var err error
	p.spool, err = OpenSpool(SpoolConfig{Dir: spoolDir, Telemetry: p.reg})
	if err != nil {
		t.Fatal(err)
	}
	p.uploader, err = StartUploader(UploaderConfig{
		Spool: p.spool, URL: p.server.URL, GUID: id.NewGUID().String(),
		Interval: -1, MaxRetryAfter: 50 * time.Millisecond,
		Telemetry: p.reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.uploader.Stop)
	return p
}

func TestUploaderDrains(t *testing.T) {
	p := newTestPipe(t, t.TempDir())
	for i := 0; i < 5; i++ {
		if err := p.spool.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.uploader.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if p.handled.count() != 5 {
		t.Fatalf("ingest handled %d entries, want 5", p.handled.count())
	}
	if sealed, open := p.spool.Pending(); sealed != 0 || open != 0 {
		t.Fatalf("spool not drained: sealed=%d open=%d", sealed, open)
	}
	snap := p.reg.Snapshot()
	if got := snap.Counters["logpipe_records_uploaded_total"]; got != 5 {
		t.Fatalf("records uploaded counter = %d, want 5", got)
	}
	if got := snap.Counters["logpipe_ingest_records_total"]; got != 5 {
		t.Fatalf("ingest records counter = %d, want 5", got)
	}
}

// TestUploaderCrashResendDeduped replays the ack-before-cursor crash: a
// snapshot of the spool taken before the drain is re-uploaded by a second
// uploader with the same GUID, and the ingest dedup window must keep the
// accounting at exactly-once.
func TestUploaderCrashResendDeduped(t *testing.T) {
	dir := t.TempDir()
	p := newTestPipe(t, dir)
	for i := 0; i < 3; i++ {
		if err := p.spool.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.spool.Flush(); err != nil {
		t.Fatal(err)
	}
	// Snapshot the sealed-but-unacknowledged spool state — what the disk
	// would hold if the process died after the CP's ack but before the
	// cursor write.
	snapDir := t.TempDir()
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		data, err := os.ReadFile(filepath.Join(dir, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(snapDir, f.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.uploader.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if p.handled.count() != 3 {
		t.Fatalf("ingest handled %d entries, want 3", p.handled.count())
	}

	// "Restart" from the snapshot: same GUID, pre-ack spool contents.
	spool2, err := OpenSpool(SpoolConfig{Dir: snapDir})
	if err != nil {
		t.Fatal(err)
	}
	up2, err := StartUploader(UploaderConfig{
		Spool: spool2, URL: p.server.URL, GUID: p.uploader.cfg.GUID,
		Interval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer up2.Stop()
	if err := up2.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if p.handled.count() != 3 {
		t.Fatalf("ingest handled %d entries after resend, want still 3 (exactly-once)", p.handled.count())
	}
	if got := p.reg.Snapshot().Counters["logpipe_ingest_deduped_total"]; got != 1 {
		t.Fatalf("deduped counter = %d, want 1", got)
	}
	if sealed, _ := spool2.Pending(); sealed != 0 {
		t.Fatalf("resent spool not drained: %d sealed segments left", sealed)
	}
}

// TestUploaderHonorsBackpressure verifies a 429 + Retry-After pauses the
// uploader (without tripping its breaker) and the batch goes through on the
// next attempt.
// TestUploaderFailsOverAcrossURLs points the uploader at a dead node first:
// the transport error rotates it to the live node and the drain completes —
// a single dead CP never strands the pipeline.
func TestUploaderFailsOverAcrossURLs(t *testing.T) {
	handled := &countingHandler{}
	reg := telemetry.NewRegistry()
	ingest := NewIngest(IngestConfig{Handle: handled.handle})
	mux := http.NewServeMux()
	mux.Handle("POST "+BatchPath, ingest.Handler())
	live := httptest.NewServer(mux)
	defer live.Close()
	// A listener that is already closed refuses connections immediately.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	spool, err := OpenSpool(SpoolConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	up, err := StartUploader(UploaderConfig{
		Spool: spool, URLs: []string{deadURL, live.URL},
		GUID: id.NewGUID().String(), Interval: -1, Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer up.Stop()
	for i := 0; i < 3; i++ {
		if err := spool.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := up.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if handled.count() != 3 {
		t.Fatalf("live node handled %d entries, want 3", handled.count())
	}
	snap := reg.Snapshot()
	if snap.Counters["logpipe_upload_errors_total"] == 0 {
		t.Fatal("expected at least one failed attempt against the dead node")
	}
	if sealed, open := spool.Pending(); sealed != 0 || open != 0 {
		t.Fatalf("spool not drained: sealed=%d open=%d", sealed, open)
	}
}

func TestUploaderHonorsBackpressure(t *testing.T) {
	var rejected atomic.Int32
	reg := telemetry.NewRegistry()
	handled := &countingHandler{}
	ingest := NewIngest(IngestConfig{Handle: handled.handle})
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+BatchPath, func(w http.ResponseWriter, r *http.Request) {
		if rejected.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "backpressure", http.StatusTooManyRequests)
			return
		}
		ingest.Handler().ServeHTTP(w, r)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	spool, err := OpenSpool(SpoolConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	up, err := StartUploader(UploaderConfig{
		Spool: spool, URL: srv.URL, GUID: id.NewGUID().String(),
		Interval: -1, MaxRetryAfter: 50 * time.Millisecond, Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer up.Stop()

	if err := spool.Append(testEntry(0)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := up.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if handled.count() != 1 {
		t.Fatalf("ingest handled %d entries, want 1 after the backpressure wait", handled.count())
	}
	snap := reg.Snapshot()
	if got := snap.Counters["logpipe_backpressure_honored_total"]; got != 1 {
		t.Fatalf("backpressure honored counter = %d, want 1", got)
	}
	if got := snap.Counters["logpipe_upload_breaker_trips_total"]; got != 0 {
		t.Fatalf("breaker tripped %d times on backpressure; 429 must not count as failure", got)
	}
}

// TestUploaderDropsRejectedBatch verifies a 413 (permanent rejection) drops
// the batch instead of wedging the pipeline behind it.
func TestUploaderDropsRejectedBatch(t *testing.T) {
	reg := telemetry.NewRegistry()
	handled := &countingHandler{}
	ingest := NewIngest(IngestConfig{Handle: handled.handle, MaxBatchBytes: 32})
	mux := http.NewServeMux()
	mux.Handle("POST "+BatchPath, ingest.Handler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	spool, err := OpenSpool(SpoolConfig{Dir: t.TempDir(), MaxBatchRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	up, err := StartUploader(UploaderConfig{
		Spool: spool, URL: srv.URL, GUID: id.NewGUID().String(),
		Interval: -1, Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer up.Stop()

	// First batch exceeds the CP's 32-byte compressed cap; the second is
	// empty only if the first wedges. Both must clear the spool.
	for i := 0; i < 4; i++ {
		if err := spool.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := up.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if sealed, _ := spool.Pending(); sealed != 0 {
		t.Fatalf("%d sealed segments left behind a permanently rejected batch", sealed)
	}
	if got := reg.Snapshot().Counters["logpipe_batches_rejected_total"]; got != 1 {
		t.Fatalf("rejected batches counter = %d, want 1", got)
	}
	if handled.count() != 0 {
		t.Fatalf("ingest handled %d entries from a rejected batch", handled.count())
	}
}

// TestUploaderRetriesServerErrors verifies transient 5xx responses are
// retried with backoff until the endpoint recovers.
func TestUploaderRetriesServerErrors(t *testing.T) {
	var calls atomic.Int32
	reg := telemetry.NewRegistry()
	handled := &countingHandler{}
	ingest := NewIngest(IngestConfig{Handle: handled.handle})
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+BatchPath, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		ingest.Handler().ServeHTTP(w, r)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	spool, err := OpenSpool(SpoolConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	up, err := StartUploader(UploaderConfig{
		Spool: spool, URL: srv.URL, GUID: id.NewGUID().String(),
		Interval: -1, Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer up.Stop()

	if err := spool.Append(testEntry(0)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := up.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if handled.count() != 1 {
		t.Fatalf("ingest handled %d entries, want 1 after retries", handled.count())
	}
	if got := reg.Snapshot().Counters["logpipe_upload_errors_total"]; got != 2 {
		t.Fatalf("upload errors counter = %d, want 2", got)
	}
}

// TestUploaderBreakerTripsAndRecovers drives a hard outage until the breaker
// opens, then restores the endpoint and verifies the half-open probe drains
// the spool.
func TestUploaderBreakerTripsAndRecovers(t *testing.T) {
	var down atomic.Bool
	down.Store(true)
	reg := telemetry.NewRegistry()
	handled := &countingHandler{}
	ingest := NewIngest(IngestConfig{Handle: handled.handle})
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+BatchPath, func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "outage", http.StatusServiceUnavailable)
			return
		}
		ingest.Handler().ServeHTTP(w, r)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	spool, err := OpenSpool(SpoolConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	up, err := StartUploader(UploaderConfig{
		Spool: spool, URL: srv.URL, GUID: id.NewGUID().String(),
		Interval: -1, Telemetry: reg,
		Breaker: retry.BreakerConfig{Threshold: 2, Cooldown: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer up.Stop()

	if err := spool.Append(testEntry(0)); err != nil {
		t.Fatal(err)
	}
	stormCtx, cancelStorm := context.WithTimeout(context.Background(), 1500*time.Millisecond)
	err = up.Drain(stormCtx)
	cancelStorm()
	if err == nil {
		t.Fatal("drain succeeded against a hard-down endpoint")
	}
	if got := reg.Snapshot().Counters["logpipe_upload_breaker_trips_total"]; got == 0 {
		t.Fatal("breaker never tripped during the outage")
	}

	down.Store(false)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := up.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if handled.count() != 1 {
		t.Fatalf("ingest handled %d entries after recovery, want 1", handled.count())
	}
	if sealed, _ := spool.Pending(); sealed != 0 {
		t.Fatalf("spool not drained after recovery: %d sealed segments", sealed)
	}
}
