package logpipe

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"netsession/internal/analysis"
	"netsession/internal/telemetry"
)

func storeRec(i int) analysis.OfflineDownload {
	return analysis.OfflineDownload{
		GUID: fmt.Sprintf("guid-%04d", i), IP: "10.0.0.1",
		Country: "JP", ASN: 4713,
		Object: fmt.Sprintf("obj-%04d", i), URLHash: "u", CP: 3001,
		Size: 1 << 20, P2PEnabled: true,
		StartMs: int64(i), EndMs: int64(i + 10),
		BytesInfra: 1000, BytesPeers: 2000, Outcome: "completed",
	}
}

func TestStoreRoundtrip(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(StoreConfig{Dir: dir, MaxSegmentRecords: 10})
	if err != nil {
		t.Fatal(err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		if err := st.Append(storeRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDownloads(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("read %d records, want %d", len(got), n)
	}
	for i, d := range got {
		if d.GUID != storeRec(i).GUID || d.StartMs != int64(i) {
			t.Fatalf("record %d = %+v, out of order or mangled", i, d)
		}
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 { // 10 + 10 + 5
		t.Fatalf("store rotated into %d segments, want 3", len(segs))
	}
}

func TestStoreAppendAfterCloseFails(t *testing.T) {
	st, err := OpenStore(StoreConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(storeRec(0)); err == nil {
		t.Fatal("Append succeeded on a closed store")
	}
}

// TestStoreCrashRecovery abandons a store mid-segment and verifies a reopened
// store seals the leftover and continues with fresh sequence numbers.
func TestStoreCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(StoreConfig{Dir: dir, MaxSegmentRecords: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Append(storeRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: the control plane process dies here.

	st2, err := OpenStore(StoreConfig{Dir: dir, MaxSegmentRecords: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Append(storeRec(3)); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDownloads(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("read %d records after crash recovery, want 4", len(got))
	}
}

// TestReadDownloadsTornFinal verifies the reader's crash policy: a torn final
// segment contributes its complete records; torn damage anywhere else is
// corruption and fails the read.
func TestReadDownloadsTornFinal(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(StoreConfig{Dir: dir, MaxSegmentRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := st.Append(storeRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := ListSegments(dir)
	if err != nil || len(segs) != 3 {
		t.Fatalf("segs=%v err=%v, want 3 sealed segments", segs, err)
	}

	// Tear the final segment: complete records before the cut still count.
	last := segs[len(segs)-1]
	raw, err := os.ReadFile(last.Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last.Path, raw[:len(raw)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDownloads(dir)
	if err != nil {
		t.Fatalf("torn final segment must be tolerated: %v", err)
	}
	if len(got) < 4 || len(got) > 6 {
		t.Fatalf("read %d records, want the 4 from intact segments plus any recovered tail", len(got))
	}

	// Tear a middle segment: that is corruption, not a crash artifact.
	mid := segs[1]
	raw, err = os.ReadFile(mid.Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mid.Path, raw[:len(raw)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDownloads(dir); err == nil {
		t.Fatal("torn middle segment must fail the read")
	}
}

func TestReadDownloadsEmptyDir(t *testing.T) {
	if _, err := ReadDownloads(t.TempDir()); err == nil {
		t.Fatal("empty directory must not read as an empty log set")
	}
}

func TestHasSegments(t *testing.T) {
	dir := t.TempDir()
	if HasSegments(dir) {
		t.Fatal("empty dir reported segments")
	}
	if err := os.WriteFile(filepath.Join(dir, "downloads.jsonl"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if HasSegments(dir) {
		t.Fatal("non-segment files reported as segments")
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(0)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if !HasSegments(dir) {
		t.Fatal("segment file not detected")
	}
}

func TestStoreTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	st, err := OpenStore(StoreConfig{Dir: t.TempDir(), MaxSegmentRecords: 2, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := st.Append(storeRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["logpipe_store_records_total"]; got != 5 {
		t.Fatalf("store records counter = %d, want 5", got)
	}
	if got := snap.Counters["logpipe_store_segments_sealed_total"]; got != 3 {
		t.Fatalf("store segments counter = %d, want 3 (2+2+1)", got)
	}
}
