package logpipe

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netsession/internal/telemetry"
)

type spoolRec struct {
	N    int    `json:"n"`
	Note string `json:"note,omitempty"`
}

func openTestSpool(t *testing.T, dir string, cfg SpoolConfig) *Spool {
	t.Helper()
	cfg.Dir = dir
	s, err := OpenSpool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func batchRecs(t *testing.T, b Batch) []spoolRec {
	t.Helper()
	lines, err := ReadSegment(bytes.NewReader(b.Data))
	if err != nil {
		t.Fatalf("decode batch %d: %v", b.Seq, err)
	}
	out := make([]spoolRec, len(lines))
	for i, l := range lines {
		if err := json.Unmarshal(l, &out[i]); err != nil {
			t.Fatalf("batch %d line %d: %v", b.Seq, i, err)
		}
	}
	return out
}

func TestSpoolAppendFlushUpload(t *testing.T) {
	dir := t.TempDir()
	s := openTestSpool(t, dir, SpoolConfig{})
	for i := 0; i < 5; i++ {
		if err := s.Append(spoolRec{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if sealed, open := s.Pending(); sealed != 0 || open != 5 {
		t.Fatalf("before flush: sealed=%d open=%d, want 0/5", sealed, open)
	}
	if _, ok, _ := s.NextBatch(); ok {
		t.Fatal("NextBatch returned a batch before any seal")
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if sealed, open := s.Pending(); sealed != 1 || open != 0 {
		t.Fatalf("after flush: sealed=%d open=%d, want 1/0", sealed, open)
	}

	b, ok, err := s.NextBatch()
	if err != nil || !ok {
		t.Fatalf("NextBatch: ok=%v err=%v", ok, err)
	}
	if b.Records != 5 {
		t.Fatalf("batch has %d records, want 5", b.Records)
	}
	for i, r := range batchRecs(t, b) {
		if r.N != i {
			t.Fatalf("record %d has n=%d", i, r.N)
		}
	}
	if err := s.MarkUploaded(b.Seq); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.NextBatch(); ok {
		t.Fatal("batch still pending after MarkUploaded")
	}
	if sealed, open := s.Pending(); sealed != 0 || open != 0 {
		t.Fatalf("after upload: sealed=%d open=%d, want 0/0", sealed, open)
	}
}

func TestSpoolBatchThresholdSeals(t *testing.T) {
	s := openTestSpool(t, t.TempDir(), SpoolConfig{MaxBatchRecords: 3})
	for i := 0; i < 7; i++ {
		if err := s.Append(spoolRec{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if sealed, open := s.Pending(); sealed != 2 || open != 1 {
		t.Fatalf("sealed=%d open=%d, want 2 sealed batches of 3 and 1 open record", sealed, open)
	}
}

// TestSpoolCrashRecovery simulates a process kill: the spool is abandoned
// without Flush, and a reopened spool must surface every appended record —
// the leftover open segment is sealed into an uploadable batch.
func TestSpoolCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openTestSpool(t, dir, SpoolConfig{})
	for i := 0; i < 4; i++ {
		if err := s.Append(spoolRec{N: i, Note: "pre-crash"}); err != nil {
			t.Fatal(err)
		}
	}
	// No Flush, no close: the process dies here.

	s2 := openTestSpool(t, dir, SpoolConfig{})
	b, ok, err := s2.NextBatch()
	if err != nil || !ok {
		t.Fatalf("reopened spool NextBatch: ok=%v err=%v", ok, err)
	}
	if b.Records != 4 {
		t.Fatalf("recovered batch has %d records, want 4", b.Records)
	}
	// New appends must land in a later segment, never rewrite a sealed one.
	if err := s2.Append(spoolRec{N: 99, Note: "post-crash"}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	if sealed, _ := s2.Pending(); sealed != 2 {
		t.Fatalf("sealed=%d, want recovered + post-crash segment", sealed)
	}
}

// TestSpoolCursorCrashWindow exercises the ack-then-crash window: the cursor
// was persisted but the acknowledged segment file survived (deletion is the
// non-atomic second step). Reopening must finish the delete and never re-send
// acknowledged sequences.
func TestSpoolCursorCrashWindow(t *testing.T) {
	dir := t.TempDir()
	s := openTestSpool(t, dir, SpoolConfig{})
	if err := s.Append(spoolRec{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	b, ok, err := s.NextBatch()
	if err != nil || !ok {
		t.Fatalf("NextBatch: ok=%v err=%v", ok, err)
	}
	if err := s.MarkUploaded(b.Seq); err != nil {
		t.Fatal(err)
	}
	// Resurrect the acknowledged segment file, as if the crash hit between
	// the cursor write and the delete.
	if err := os.WriteFile(filepath.Join(dir, segmentName(b.Seq)), b.Data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openTestSpool(t, dir, SpoolConfig{})
	if _, ok, _ := s2.NextBatch(); ok {
		t.Fatal("acknowledged segment offered for re-upload after reopen")
	}
	if _, err := os.Stat(filepath.Join(dir, segmentName(b.Seq))); !os.IsNotExist(err) {
		t.Fatal("acknowledged segment not deleted on reopen")
	}
	// The next sequence must not reuse the acknowledged one.
	if err := s2.Append(spoolRec{N: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	nb, ok, err := s2.NextBatch()
	if err != nil || !ok {
		t.Fatalf("NextBatch after reopen: ok=%v err=%v", ok, err)
	}
	if nb.Seq <= b.Seq {
		t.Fatalf("new batch seq %d does not advance past acknowledged %d", nb.Seq, b.Seq)
	}
}

// TestSpoolCorruptCursorResends verifies the degraded path: an unreadable
// cursor means "nothing acknowledged", so sealed segments are re-offered (the
// control plane's dedup window absorbs the resend).
func TestSpoolCorruptCursorResends(t *testing.T) {
	dir := t.TempDir()
	s := openTestSpool(t, dir, SpoolConfig{})
	if err := s.Append(spoolRec{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, cursorFile), []byte("not json{"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openTestSpool(t, dir, SpoolConfig{})
	if _, ok, err := s2.NextBatch(); err != nil || !ok {
		t.Fatalf("sealed segment not re-offered after cursor corruption: ok=%v err=%v", ok, err)
	}
}

// TestSpoolRetention fills the spool past its byte cap and verifies that the
// oldest batches are dropped, the drops are counted on telemetry, and the
// newest data survives.
func TestSpoolRetention(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := openTestSpool(t, t.TempDir(), SpoolConfig{
		MaxBatchRecords: 2,
		MaxSpoolBytes:   1, // every seal overflows the cap
		Telemetry:       reg,
	})
	pad := strings.Repeat("x", 200)
	for i := 0; i < 10; i++ {
		if err := s.Append(spoolRec{N: i, Note: pad}); err != nil {
			t.Fatal(err)
		}
	}
	sealed, _ := s.Pending()
	if sealed != 1 {
		t.Fatalf("sealed=%d, want retention to keep only the newest segment", sealed)
	}
	b, ok, err := s.NextBatch()
	if err != nil || !ok {
		t.Fatalf("NextBatch: ok=%v err=%v", ok, err)
	}
	recs := batchRecs(t, b)
	if recs[len(recs)-1].N != 9 {
		t.Fatalf("newest record is n=%d, want 9 (retention must drop oldest-first)", recs[len(recs)-1].N)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["logpipe_spool_dropped_records_total"]; got != 8 {
		t.Fatalf("dropped records counter = %d, want 8", got)
	}
	if got := snap.Counters["logpipe_spool_records_total"]; got != 10 {
		t.Fatalf("records counter = %d, want 10", got)
	}
}

// TestSpoolUnreadableSegmentSkipped plants a destroyed sealed segment and
// verifies the uploader path skips past it (counted) instead of wedging.
func TestSpoolUnreadableSegmentSkipped(t *testing.T) {
	dir := t.TempDir()
	s := openTestSpool(t, dir, SpoolConfig{})
	if err := s.Append(spoolRec{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	b, ok, err := s.NextBatch()
	if err != nil || !ok {
		t.Fatalf("NextBatch: ok=%v err=%v", ok, err)
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(b.Seq)), []byte("destroyed"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.NextBatch(); err == nil {
		t.Fatal("unreadable segment did not report an error")
	}
	if _, ok, err := s.NextBatch(); ok || err != nil {
		t.Fatalf("spool not drained after skipping unreadable segment: ok=%v err=%v", ok, err)
	}
}

func TestSpoolRequiresDir(t *testing.T) {
	if _, err := OpenSpool(SpoolConfig{}); err == nil {
		t.Fatal("OpenSpool accepted an empty dir")
	}
}

func TestSpoolManySegmentsOrdered(t *testing.T) {
	dir := t.TempDir()
	s := openTestSpool(t, dir, SpoolConfig{MaxBatchRecords: 1})
	for i := 0; i < 20; i++ {
		if err := s.Append(spoolRec{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		b, ok, err := s.NextBatch()
		if err != nil || !ok {
			t.Fatalf("batch %d: ok=%v err=%v", i, ok, err)
		}
		if recs := batchRecs(t, b); len(recs) != 1 || recs[0].N != i {
			t.Fatalf("batch %d carries %+v, want record n=%d", i, recs, i)
		}
		if err := s.MarkUploaded(b.Seq); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, _ := s.NextBatch(); ok {
		t.Fatal("spool not drained")
	}
	left, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range left {
		if e.Name() != cursorFile {
			t.Fatalf("leftover file %s after full drain", e.Name())
		}
	}
}

func TestSpoolAppendDurability(t *testing.T) {
	dir := t.TempDir()
	s := openTestSpool(t, dir, SpoolConfig{})
	if err := s.Append(spoolRec{N: 7}); err != nil {
		t.Fatal(err)
	}
	// The record must be on disk the moment Append returns, without Flush.
	segs, err := ListSegments(dir)
	if err != nil || len(segs) != 1 || !segs[0].Open {
		t.Fatalf("open segment not durable after Append: segs=%v err=%v", segs, err)
	}
	lines, err := ReadSegmentFile(segs[0].Path)
	if err != nil || len(lines) != 1 {
		t.Fatalf("open segment holds %d lines (err=%v), want 1", len(lines), err)
	}
	var r spoolRec
	if err := json.Unmarshal(lines[0], &r); err != nil || r.N != 7 {
		t.Fatalf("durable record = %+v err=%v", r, err)
	}
}

func TestSpoolRecordsKeepInsertionOrderAcrossSeal(t *testing.T) {
	s := openTestSpool(t, t.TempDir(), SpoolConfig{MaxBatchRecords: 4})
	var want []int
	for i := 0; i < 10; i++ {
		if err := s.Append(spoolRec{N: i}); err != nil {
			t.Fatal(err)
		}
		want = append(want, i)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	var got []int
	for {
		b, ok, err := s.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		for _, r := range batchRecs(t, b) {
			got = append(got, r.N)
		}
		if err := s.MarkUploaded(b.Seq); err != nil {
			t.Fatal(err)
		}
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("drained order %v, want %v", got, want)
	}
}
