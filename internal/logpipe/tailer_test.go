package logpipe

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"netsession/internal/analysis"
)

func tailRec(i int) analysis.OfflineDownload {
	return analysis.OfflineDownload{
		GUID:    fmt.Sprintf("guid-%05d", i),
		Country: "US",
		Region:  "NA-East",
		ASN:     7922,
		URLHash: fmt.Sprintf("url-%03d", i%17),
		Size:    int64(1000 + i),
		Outcome: "completed",
	}
}

func pollAll(t *testing.T, tl *Tailer) []analysis.OfflineDownload {
	t.Helper()
	recs, err := tl.Poll()
	if err != nil {
		t.Fatalf("Poll: %v", err)
	}
	return recs
}

// TestTailerFollowsRotation appends through the store while polling between
// appends, seals, and rotations: the tailer must deliver every record exactly
// once, in order, regardless of where the store is in its rotation cycle.
func TestTailerFollowsRotation(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(StoreConfig{Dir: dir, MaxSegmentRecords: 5})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := OpenTailer(TailerConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var got []analysis.OfflineDownload
	const total = 23 // several full rotations plus a partial open segment
	for i := 0; i < total; i++ {
		if err := st.Append(tailRec(i)); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			got = append(got, pollAll(t, tl)...)
		}
	}
	got = append(got, pollAll(t, tl)...)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	got = append(got, pollAll(t, tl)...)
	if len(got) != total {
		t.Fatalf("tailed %d records, want %d", len(got), total)
	}
	for i := range got {
		if want := tailRec(i); !reflect.DeepEqual(got[i], want) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want)
		}
	}
	// A store fully consumed must poll empty, not replay.
	if extra := pollAll(t, tl); len(extra) != 0 {
		t.Fatalf("drained store replayed %d records", len(extra))
	}
}

// TestTailerTornFinalSegment truncates the newest segment mid-stream: the
// tailer emits the complete records, stays parked on the damaged segment, and
// resumes without loss or duplication once the segment is restored whole.
func TestTailerTornFinalSegment(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(StoreConfig{Dir: dir, MaxSegmentRecords: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := st.Append(tailRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := ListSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v, %v", segs, err)
	}
	whole, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0].Path, whole[:len(whole)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}

	tl, err := OpenTailer(TailerConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	first := pollAll(t, tl)
	if len(first) >= 8 {
		t.Fatalf("torn segment yielded all %d records", len(first))
	}
	if cur := tl.Cursor(); cur.Seq != segs[0].Seq || cur.Rec != len(first) {
		t.Fatalf("cursor %+v after torn tail, want {%d %d}", cur, segs[0].Seq, len(first))
	}
	// The writer completes the segment (the store rewrites open segments
	// whole); the tailer must emit only the records past its cursor.
	if err := os.WriteFile(segs[0].Path, whole, 0o644); err != nil {
		t.Fatal(err)
	}
	rest := pollAll(t, tl)
	if len(first)+len(rest) != 8 {
		t.Fatalf("recovered %d+%d records, want 8 total", len(first), len(rest))
	}
	for i, d := range append(first, rest...) {
		if want := tailRec(i); !reflect.DeepEqual(d, want) {
			t.Fatalf("record %d = %+v, want %+v", i, d, want)
		}
	}
	if tl.TornSkipped() != 0 {
		t.Fatalf("torn-final handling counted %d skips; the tail healed", tl.TornSkipped())
	}
}

// TestTailerTornMiddleSegmentSkips damages a sealed segment that has sealed
// successors: its tail can never heal, so the tailer must count it and move
// on rather than wedge.
func TestTailerTornMiddleSegmentSkips(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(StoreConfig{Dir: dir, MaxSegmentRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ { // three sealed segments of 4
		if err := st.Append(tailRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := ListSegments(dir)
	if err != nil || len(segs) != 3 {
		t.Fatalf("segments = %v, %v", segs, err)
	}
	mid, err := os.ReadFile(segs[1].Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[1].Path, mid[:len(mid)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	tl, err := OpenTailer(TailerConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got := pollAll(t, tl)
	if len(got) >= 12 || len(got) < 8 {
		t.Fatalf("tailed %d records across a torn middle segment, want [8,12)", len(got))
	}
	if tl.TornSkipped() != 1 {
		t.Fatalf("TornSkipped = %d, want 1", tl.TornSkipped())
	}
	// Records from the undamaged segments must all be present.
	seen := map[string]bool{}
	for _, d := range got {
		seen[d.GUID] = true
	}
	for i := 0; i < 4; i++ {
		if !seen[tailRec(i).GUID] || !seen[tailRec(8+i).GUID] {
			t.Fatalf("undamaged record missing from tail output (i=%d)", i)
		}
	}
}

// TestTailerCursorResume restarts the tailer mid-stream: a new tailer opened
// on the checkpointed cursor continues exactly where the old one stopped.
func TestTailerCursorResume(t *testing.T) {
	dir := t.TempDir()
	cursor := filepath.Join(t.TempDir(), "cursor.json")
	st, err := OpenStore(StoreConfig{Dir: dir, MaxSegmentRecords: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 13; i++ {
		if err := st.Append(tailRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	tl, err := OpenTailer(TailerConfig{Dir: dir, CursorPath: cursor})
	if err != nil {
		t.Fatal(err)
	}
	first := pollAll(t, tl)
	if len(first) != 13 {
		t.Fatalf("first tailer read %d records, want 13", len(first))
	}
	// More records land after the "restart".
	for i := 13; i < 20; i++ {
		if err := st.Append(tailRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	tl2, err := OpenTailer(TailerConfig{Dir: dir, CursorPath: cursor})
	if err != nil {
		t.Fatal(err)
	}
	if tl2.Cursor() != tl.Cursor() {
		t.Fatalf("resumed cursor %+v != checkpointed %+v", tl2.Cursor(), tl.Cursor())
	}
	rest := pollAll(t, tl2)
	if len(rest) != 7 {
		t.Fatalf("resumed tailer read %d records, want exactly the 7 new ones", len(rest))
	}
	for i, d := range rest {
		if want := tailRec(13 + i); !reflect.DeepEqual(d, want) {
			t.Fatalf("resumed record %d = %+v, want %+v", i, d, want)
		}
	}
	// A corrupt cursor file degrades to a full re-read, never an error.
	if err := os.WriteFile(cursor, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	tl3, err := OpenTailer(TailerConfig{Dir: dir, CursorPath: cursor})
	if err != nil {
		t.Fatal(err)
	}
	if replay := pollAll(t, tl3); len(replay) != 20 {
		t.Fatalf("corrupt cursor replayed %d records, want all 20", len(replay))
	}
}

// TestTailerEmptyAndMissingDir: polling before the store exists or before it
// has spilled anything is not an error.
func TestTailerEmptyAndMissingDir(t *testing.T) {
	tl, err := OpenTailer(TailerConfig{Dir: filepath.Join(t.TempDir(), "not-yet")})
	if err != nil {
		t.Fatal(err)
	}
	if recs := pollAll(t, tl); len(recs) != 0 {
		t.Fatalf("missing dir polled %d records", len(recs))
	}
}

// TestForEachDownloadMatchesReadDownloads: the streaming reader and the batch
// loader must agree exactly, at any worker count, including over a store with
// a torn final segment.
func TestForEachDownloadMatchesReadDownloads(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(StoreConfig{Dir: dir, MaxSegmentRecords: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := st.Append(tailRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final segment; both readers tolerate that.
	segs, _ := ListSegments(dir)
	lastPath := segs[len(segs)-1].Path
	raw, err := os.ReadFile(lastPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(lastPath, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	want, err := ReadDownloads(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 32} {
		var got []analysis.OfflineDownload
		n, err := ForEachDownload(dir, workers, func(d *analysis.OfflineDownload) error {
			got = append(got, *d)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if n != len(want) || !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: streamed %d records != batch %d", workers, n, len(want))
		}
	}
	// A mid-store tear must surface as an error from both.
	raw0, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0].Path, raw0[:len(raw0)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDownloads(dir); err == nil {
		t.Fatal("ReadDownloads accepted a torn middle segment")
	}
	if _, err := ForEachDownload(dir, 4, func(*analysis.OfflineDownload) error { return nil }); err == nil {
		t.Fatal("ForEachDownload accepted a torn middle segment")
	}
}

// sealedTestStore writes total records into a sealed store with small
// segments and returns the segment listing.
func sealedTestStore(t *testing.T, dir string, total, perSeg int) []SegmentFile {
	t.Helper()
	st, err := OpenStore(StoreConfig{Dir: dir, MaxSegmentRecords: perSeg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		if err := st.Append(tailRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	return segs
}

// TestForEachDownloadCallbackError: a callback error mid-stream must cancel
// the pipeline — the call returns promptly with exactly that error and with
// the count of records delivered before it — deterministically, at every
// worker count and on every run. Run under -race this also proves the
// cancellation path has no worker/feeder races.
func TestForEachDownloadCallbackError(t *testing.T) {
	dir := t.TempDir()
	sealedTestStore(t, dir, 200, 5) // 40 segments
	sentinel := errors.New("synthetic mid-stream failure")
	const failAt = 57 // record index inside segment 11
	for _, workers := range []int{1, 4, 16} {
		for run := 0; run < 3; run++ {
			calls := 0
			n, err := ForEachDownload(dir, workers, func(d *analysis.OfflineDownload) error {
				if d.GUID == tailRec(failAt).GUID {
					return sentinel
				}
				calls++
				return nil
			})
			if !errors.Is(err, sentinel) {
				t.Fatalf("workers=%d run=%d: err=%v, want the callback's sentinel", workers, run, err)
			}
			if n != failAt || calls != failAt {
				t.Fatalf("workers=%d run=%d: delivered n=%d calls=%d, want exactly %d before the error",
					workers, run, n, calls, failAt)
			}
		}
	}
}

// TestForEachDownloadFirstErrorDeterministic: with damage in several
// non-final segments, the error surfaced must always be the lowest-indexed
// one — the ordered consumer makes the result independent of worker count
// and decode timing.
func TestForEachDownloadFirstErrorDeterministic(t *testing.T) {
	dir := t.TempDir()
	segs := sealedTestStore(t, dir, 200, 5)
	tear := func(i int) {
		raw, err := os.ReadFile(segs[i].Path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(segs[i].Path, raw[:len(raw)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	tear(23)
	tear(7)
	for _, workers := range []int{1, 4, 32} {
		for run := 0; run < 3; run++ {
			n, err := ForEachDownload(dir, workers, func(*analysis.OfflineDownload) error { return nil })
			if err == nil || !strings.Contains(err.Error(), segs[7].Path) {
				t.Fatalf("workers=%d run=%d: err=%v, want the segment-7 tear (first in order)", workers, run, err)
			}
			if n != 7*5 {
				t.Fatalf("workers=%d run=%d: delivered %d records, want the 35 before the tear", workers, run, n)
			}
		}
	}
}
