package logpipe

import "sync"

// DedupIndex is a bounded in-memory window of recently seen batch IDs — the
// simplest AckTable, used by single-node ingest endpoints and tests. A
// multi-node control plane uses per-node durable AckStores reconciled by
// anti-entropy instead.
type DedupIndex struct {
	mu    sync.Mutex
	seen  map[string]bool
	order []string
	next  int
}

// NewDedupIndex creates an index remembering the last `window` batch IDs;
// non-positive selects 4096.
func NewDedupIndex(window int) *DedupIndex {
	if window <= 0 {
		window = 4096
	}
	return &DedupIndex{
		seen:  make(map[string]bool, window),
		order: make([]string, window),
	}
}

// Seen reports whether a batch key is inside the window.
func (d *DedupIndex) Seen(key string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seen[key]
}

// Mark adds a batch key to the window, evicting the oldest beyond the
// window size.
func (d *DedupIndex) Mark(key string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	// An empty key would be indistinguishable from an empty eviction slot:
	// once marked it could never be evicted. Ignore it.
	if key == "" || d.seen[key] {
		return
	}
	if old := d.order[d.next]; old != "" {
		delete(d.seen, old)
	}
	d.order[d.next] = key
	d.next = (d.next + 1) % len(d.order)
	d.seen[key] = true
}
