package logpipe

import "sync"

// DedupIndex is a bounded window of recently seen batch IDs. One index can
// back several Ingest instances — a multi-node control plane shares one so a
// batch acknowledged by node A and retried against node B after a failover
// still counts exactly once. It is the in-process stand-in for the
// replicated acknowledgement table a production cluster would keep.
type DedupIndex struct {
	mu    sync.Mutex
	seen  map[string]bool
	order []string
	next  int
}

// NewDedupIndex creates an index remembering the last `window` batch IDs;
// non-positive selects 4096.
func NewDedupIndex(window int) *DedupIndex {
	if window <= 0 {
		window = 4096
	}
	return &DedupIndex{
		seen:  make(map[string]bool, window),
		order: make([]string, window),
	}
}

// Seen reports whether a batch key is inside the window.
func (d *DedupIndex) Seen(key string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seen[key]
}

// Mark adds a batch key to the window, evicting the oldest beyond the
// window size.
func (d *DedupIndex) Mark(key string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.seen[key] {
		return
	}
	if old := d.order[d.next]; old != "" {
		delete(d.seen, old)
	}
	d.order[d.next] = key
	d.next = (d.next + 1) % len(d.order)
	d.seen[key] = true
}
