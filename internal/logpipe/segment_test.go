package logpipe

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func testLines(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf(`{"seq":%d,"payload":"record-%d"}`, i, i))
	}
	return out
}

func TestSegmentRoundtrip(t *testing.T) {
	lines := testLines(100)
	data, err := MarshalSegment(lines)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadSegment(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ReadSegment: %v", err)
	}
	if len(got) != len(lines) {
		t.Fatalf("roundtrip returned %d lines, want %d", len(got), len(lines))
	}
	for i := range lines {
		if !bytes.Equal(got[i], lines[i]) {
			t.Fatalf("line %d = %q, want %q", i, got[i], lines[i])
		}
	}
}

func TestSegmentEmpty(t *testing.T) {
	data, err := MarshalSegment(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadSegment(bytes.NewReader(data))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty segment: lines=%d err=%v", len(got), err)
	}
}

// TestSegmentTornTail truncates a valid segment at every length and requires
// the reader to return only complete lines (a prefix of the originals) plus
// ErrTorn — never a panic, never a partial or reordered record.
func TestSegmentTornTail(t *testing.T) {
	lines := testLines(50)
	data, err := MarshalSegment(lines)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		got, rerr := ReadSegment(bytes.NewReader(data[:cut]))
		if rerr == nil {
			t.Fatalf("cut=%d: truncated segment read without error", cut)
		}
		if !errors.Is(rerr, ErrTorn) {
			t.Fatalf("cut=%d: err=%v, want ErrTorn", cut, rerr)
		}
		if len(got) > len(lines) {
			t.Fatalf("cut=%d: %d lines from a %d-line segment", cut, len(got), len(lines))
		}
		for i := range got {
			if !bytes.Equal(got[i], lines[i]) {
				t.Fatalf("cut=%d line %d = %q, want prefix line %q", cut, i, got[i], lines[i])
			}
		}
	}
}

func TestSegmentTrailingGarbage(t *testing.T) {
	data, err := MarshalSegment(testLines(3))
	if err != nil {
		t.Fatal(err)
	}
	damaged := append(append([]byte(nil), data...), []byte("not gzip at all")...)
	if _, rerr := ReadSegment(bytes.NewReader(damaged)); !errors.Is(rerr, ErrTorn) {
		t.Fatalf("trailing garbage: err=%v, want ErrTorn", rerr)
	}
}

func TestParseSegmentName(t *testing.T) {
	cases := []struct {
		name string
		seq  uint64
		open bool
		ok   bool
	}{
		{segmentName(0), 0, false, true},
		{segmentName(42), 42, false, true},
		{openSegmentName(7), 7, true, true},
		{"cursor.json", 0, false, false},
		{"seg-notanumber.ndjson.gz", 0, false, false},
		{"seg-0000000001.tmp", 0, false, false},
	}
	for _, c := range cases {
		seq, open, ok := parseSegmentName(c.name)
		if seq != c.seq || open != c.open || ok != c.ok {
			t.Errorf("parseSegmentName(%q) = (%d,%v,%v), want (%d,%v,%v)",
				c.name, seq, open, ok, c.seq, c.open, c.ok)
		}
	}
}

func TestListSegmentsSorted(t *testing.T) {
	dir := t.TempDir()
	for _, seq := range []uint64{5, 1, 3} {
		if err := os.WriteFile(filepath.Join(dir, segmentName(seq)), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, openSegmentName(9)), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "cursor.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantSeqs := []uint64{1, 3, 5, 9}
	if len(segs) != len(wantSeqs) {
		t.Fatalf("ListSegments returned %d entries, want %d", len(segs), len(wantSeqs))
	}
	for i, sf := range segs {
		if sf.Seq != wantSeqs[i] {
			t.Errorf("segment %d has seq %d, want %d", i, sf.Seq, wantSeqs[i])
		}
	}
	if !segs[3].Open {
		t.Error("open segment not flagged Open")
	}
}
