package logpipe

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"testing"

	"netsession/internal/analysis"
)

// writeVariedStore materializes a sealed store whose records exercise every
// branch of the offline accumulator and figure passes: mixed outcomes,
// p2p-enabled and infra-only downloads, edge-only and peer-heavy byte
// splits, all four Figure 7 size classes, repeated GUIDs, and records with
// and without region annotations.
func writeVariedStore(tb testing.TB, dir string, segments, recsPerSeg int) int {
	tb.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		tb.Fatal(err)
	}
	regions := []string{"NA-East", "EU-West", "AS-NEA", ""}
	outcomes := []string{"completed", "completed", "completed", "aborted", "failed-system"}
	sizes := []int64{5e6, 50e6, 500e6, 2e9}
	n := 0
	lines := make([][]byte, 0, recsPerSeg)
	for s := 0; s < segments; s++ {
		lines = lines[:0]
		for r := 0; r < recsPerSeg; r++ {
			p2p := n%3 != 0
			d := analysis.OfflineDownload{
				GUID:       fmt.Sprintf("guid-%05d", n%4096), // repeats: distinct-count paths
				URLHash:    fmt.Sprintf("url-%04d", n%277),
				Country:    []string{"US", "DE", "JP"}[n%3],
				ASN:        uint32(7000 + n%48),
				Region:     regions[n%len(regions)],
				Size:       sizes[n%len(sizes)],
				P2PEnabled: p2p,
				StartMs:    int64(n) * 997,
				EndMs:      int64(n)*997 + int64(200+n%1700),
				Outcome:    outcomes[n%len(outcomes)],
				Peers:      n % 7,
			}
			switch {
			case !p2p:
				d.BytesInfra = d.Size
			case n%5 == 0: // p2p-enabled but served entirely by the edge
				d.BytesInfra = d.Size
			default: // peer-heavy
				d.BytesInfra = d.Size / 4
				d.BytesPeers = d.Size - d.Size/4
				d.FromPeers = []analysis.OfflineContribution{
					{GUID: "srv-a", ASN: uint32(7000 + n%48), Bytes: d.BytesPeers / 2, Region: regions[(n+1)%len(regions)]},
					{GUID: "srv-b", ASN: uint32(7000 + (n+13)%48), Bytes: d.BytesPeers - d.BytesPeers/2},
				}
			}
			line, err := json.Marshal(&d)
			if err != nil {
				tb.Fatal(err)
			}
			lines = append(lines, line)
			n++
		}
		blob, err := MarshalSegment(lines)
		if err != nil {
			tb.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segmentName(uint64(s))), blob, 0o644); err != nil {
			tb.Fatal(err)
		}
	}
	return n
}

// equalSummaries compares two OfflineSummary values field by field:
// integer-typed fields must match exactly, float fields to relative 1e-9 —
// the sharded pass changes float accumulation order, nothing else.
func equalSummaries(t *testing.T, got, want analysis.OfflineSummary) {
	t.Helper()
	gv, wv := reflect.ValueOf(got), reflect.ValueOf(want)
	for i := 0; i < gv.NumField(); i++ {
		name := gv.Type().Field(i).Name
		switch gv.Field(i).Kind() {
		case reflect.Int, reflect.Int64:
			if gv.Field(i).Int() != wv.Field(i).Int() {
				t.Errorf("%s: got %d, want %d", name, gv.Field(i).Int(), wv.Field(i).Int())
			}
		case reflect.Float64:
			g, w := gv.Field(i).Float(), wv.Field(i).Float()
			if diff := math.Abs(g - w); diff > 1e-9*math.Max(1, math.Abs(w)) {
				t.Errorf("%s: got %v, want %v (diff %g)", name, g, w, diff)
			}
		default:
			t.Fatalf("%s: unhandled kind %s", name, gv.Field(i).Kind())
		}
	}
}

// TestSummarizeStoreMatchesOffline is the tentpole equivalence contract:
// the one-pass parallel streaming analysis of a segment store must
// reproduce the batch SummarizeOffline over the same records, and the
// streaming figure passes must reproduce the batch CDF/tally figures
// bit-for-bit.
func TestSummarizeStoreMatchesOffline(t *testing.T) {
	dir := t.TempDir()
	total := writeVariedStore(t, dir, 30, 300)

	dls, err := ReadDownloads(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(dls) != total {
		t.Fatalf("batch read %d records, want %d", len(dls), total)
	}
	want := analysis.SummarizeOffline(dls)

	// Batch figure references, computed the pre-streaming way: sort-based
	// CDFs over the fully materialized value sets.
	var infra, all, p2p []float64
	for i := range dls {
		gb := float64(dls[i].Size) / 1e9
		all = append(all, gb)
		if dls[i].P2PEnabled {
			p2p = append(p2p, gb)
		} else {
			infra = append(infra, gb)
		}
	}
	xs := analysis.LogSpace(0.01, 10, 25)
	p2pCDF := analysis.NewCDF(p2p)
	wantF3a := analysis.Figure3a{
		InfraOnly:                analysis.NewCDF(infra).Points(xs),
		All:                      analysis.NewCDF(all).Points(xs),
		PeerAssisted:             p2pCDF.Points(xs),
		PctPeerAssistedOver500MB: 100 * (1 - p2pCDF.FractionBelow(0.5)),
	}

	for _, workers := range []int{1, 4} {
		got, err := SummarizeStore(dir, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Records != total {
			t.Fatalf("workers=%d: %d records, want %d", workers, got.Records, total)
		}
		equalSummaries(t, got.Summary, want)
		if got.Figures == nil {
			t.Fatal("SummarizeStore returned no figures")
		}
		if f3a := got.Figures.Figure3a(); !reflect.DeepEqual(f3a, wantF3a) {
			t.Errorf("workers=%d: streaming Figure3a differs from the batch CDF pass:\n%+v\nvs\n%+v",
				workers, f3a, wantF3a)
		}
		if f3b := got.Figures.Figure3b(); f3b.Counts[0] != want.TopObjectCount ||
			len(f3b.Counts) != want.DistinctURLs {
			t.Errorf("workers=%d: Figure3b head %d over %d objects, want %d over %d",
				workers, f3b.Counts[0], len(f3b.Counts), want.TopObjectCount, want.DistinctURLs)
		}
		rows := got.Figures.RegionOffload()
		var rowDls int64
		for _, row := range rows {
			rowDls += row.Downloads
		}
		if int(rowDls) != total {
			t.Errorf("workers=%d: region table covers %d downloads, want %d", workers, rowDls, total)
		}
		if got.Figures.Render() == "" {
			t.Error("empty figures rendering")
		}
	}
}

// TestOfflineFiguresFigure7Tallies pins the Figure 7 streaming tallies
// against hand-computed expectations on a tiny input.
func TestOfflineFiguresFigure7Tallies(t *testing.T) {
	f := analysis.NewOfflineFigures()
	add := func(size int64, p2p bool, outcome string) {
		f.Add(&analysis.OfflineDownload{Size: size, P2PEnabled: p2p, Outcome: outcome})
	}
	add(5e6, false, "completed")
	add(5e6, false, "aborted")
	add(50e6, true, "aborted")
	add(2e9, true, "completed")
	f7 := f.Figure7()
	if f7.N[0][0] != 2 || f7.PauseRatePct[0][0] != 50 {
		t.Errorf("<10MB infra: n=%d rate=%v, want 2 and 50%%", f7.N[0][0], f7.PauseRatePct[0][0])
	}
	if f7.N[1][1] != 1 || f7.PauseRatePct[1][1] != 100 {
		t.Errorf("10-100MB p2p: n=%d rate=%v, want 1 and 100%%", f7.N[1][1], f7.PauseRatePct[1][1])
	}
	if f7.N[3][2] != 1 || f7.PauseRatePct[3][2] != 0 {
		t.Errorf(">1GB all: n=%d rate=%v, want 1 and 0%%", f7.N[3][2], f7.PauseRatePct[3][2])
	}
}

// TestBulkWriterRoundtrip: the bulk exporter's output must be
// layout-compatible with the rotating Store — same readers, same records,
// correct segment sizing.
func TestBulkWriterRoundtrip(t *testing.T) {
	dir := t.TempDir()
	w, err := NewBulkWriter(dir, 7)
	if err != nil {
		t.Fatal(err)
	}
	const total = 23
	for i := 0; i < total; i++ {
		if err := w.Append(tailRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := w.Append(tailRec(0)); err == nil {
		t.Fatal("append after close succeeded")
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 4 { // ceil(23/7)
		t.Fatalf("%d segments, want 4", len(segs))
	}
	for _, sf := range segs {
		if sf.Open {
			t.Fatalf("segment %s left open", sf.Path)
		}
	}
	got, err := ReadDownloads(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != total {
		t.Fatalf("read %d records, want %d", len(got), total)
	}
	for i := range got {
		if want := tailRec(i); !reflect.DeepEqual(got[i], want) {
			t.Fatalf("record %d differs after bulk roundtrip", i)
		}
	}
}

// TestForEachDownloadParallelMatches: the concurrent-callback variant must
// deliver exactly the store's record multiset (per-segment order preserved,
// global interleaving free) and propagate callback errors.
func TestForEachDownloadParallelMatches(t *testing.T) {
	dir := t.TempDir()
	total := writeBenchStore(t, dir, 20, 50) // distinct GUIDs

	want := make([]string, 0, total)
	if _, err := ForEachDownload(dir, 1, func(d *analysis.OfflineDownload) error {
		want = append(want, d.GUID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		var mu sync.Mutex
		var got []string
		n, err := ForEachDownloadParallel(dir, workers, func(d *analysis.OfflineDownload) error {
			mu.Lock()
			got = append(got, d.GUID)
			mu.Unlock()
			return nil
		})
		if err != nil || n != total {
			t.Fatalf("workers=%d: n=%d err=%v, want %d records", workers, n, err, total)
		}
		sort.Strings(got)
		wantSorted := append([]string(nil), want...)
		sort.Strings(wantSorted)
		if !reflect.DeepEqual(got, wantSorted) {
			t.Fatalf("workers=%d: record multiset differs from the sequential pass", workers)
		}
	}

	sentinel := fmt.Errorf("parallel consumer failure")
	_, err := ForEachDownloadParallel(dir, 4, func(d *analysis.OfflineDownload) error {
		if d.GUID == "guid-0000500" {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Fatalf("err=%v, want the callback's sentinel", err)
	}
}

// TestOfflineStreamingBoundedMemory extends the TestStreamingBoundedMemory
// contract to the full offline analysis: a parallel SummarizeStore-style
// pass must hold live heap far below the decoded store size — its state
// scales with distinct GUIDs/URLs/ASes plus one float per completed
// download, never with raw record bytes.
func TestOfflineStreamingBoundedMemory(t *testing.T) {
	dir := t.TempDir()
	total := writeBenchStore(t, dir, 100, 1500) // 150k records, ~45 MB decoded

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc

	const sampleEvery = 20_000
	var (
		mu   sync.Mutex
		seen int
		peak uint64
	)
	acc := analysis.NewShardedOfflineAccumulator(8, true)
	got, err := ForEachDownloadParallel(dir, 4, func(d *analysis.OfflineDownload) error {
		acc.Add(d)
		mu.Lock()
		seen++
		sample := seen%sampleEvery == 0
		mu.Unlock()
		if sample {
			runtime.GC()
			runtime.ReadMemStats(&ms)
			mu.Lock()
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != total {
		t.Fatalf("streamed %d records, want %d", got, total)
	}
	sum := acc.Summary()
	if sum.Downloads != total || sum.DistinctGUIDs != total {
		t.Fatalf("summary covers %d downloads / %d GUIDs, want %d of each", sum.Downloads, sum.DistinctGUIDs, total)
	}

	growth := int64(peak) - int64(base)
	t.Logf("live heap: base %.1f MB, peak %.1f MB, growth %.1f MB over %d records",
		float64(base)/1e6, float64(peak)/1e6, float64(growth)/1e6, total)
	const boundMB = 32
	if growth > boundMB<<20 {
		t.Errorf("offline streaming pass grew live heap by %.1f MB (> %d MB bound): records are being retained",
			float64(growth)/1e6, boundMB)
	}
}
