package logpipe

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"syscall"
	"testing"

	"netsession/internal/analysis"
)

// writeBenchStore materializes a sealed segment store of synthetic download
// records by writing segment files directly (MarshalSegment + one write per
// segment). Store.Append would rewrite the open segment per record — O(n²)
// gzip work — which is fine for the control plane's trickle but useless for
// generating hundreds of thousands of records in a test.
func writeBenchStore(tb testing.TB, dir string, segments, recsPerSeg int) int {
	tb.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		tb.Fatal(err)
	}
	regions := []string{"NA-East", "EU-West", "AS-NEA", "AS-China", "SA", "OC"}
	n := 0
	lines := make([][]byte, 0, recsPerSeg)
	for s := 0; s < segments; s++ {
		lines = lines[:0]
		for r := 0; r < recsPerSeg; r++ {
			d := analysis.OfflineDownload{
				GUID:       fmt.Sprintf("guid-%07d", n),
				URLHash:    fmt.Sprintf("url-%04d", n%512),
				Country:    "US",
				ASN:        uint32(7000 + n%48),
				Region:     regions[n%len(regions)],
				Size:       4 << 16,
				P2PEnabled: true,
				StartMs:    int64(n) * 1000,
				EndMs:      int64(n)*1000 + 800,
				BytesInfra: 1 << 16,
				BytesPeers: 3 << 16,
				Outcome:    "completed",
				Peers:      2,
				FromPeers: []analysis.OfflineContribution{
					{GUID: "srv-a", Country: "US", ASN: uint32(7000 + n%48), Bytes: 2 << 16},
					{GUID: "srv-b", Country: "US", ASN: uint32(7000 + (n+1)%48), Bytes: 1 << 16},
				},
			}
			line, err := json.Marshal(&d)
			if err != nil {
				tb.Fatal(err)
			}
			lines = append(lines, line)
			n++
		}
		blob, err := MarshalSegment(lines)
		if err != nil {
			tb.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segmentName(uint64(s))), blob, 0o644); err != nil {
			tb.Fatal(err)
		}
	}
	return n
}

// BenchmarkStreamingSummarize is the throughput canary for the live-analytics
// path: one full streaming pass (parallel segment decode → streaming
// summarizer) over a pre-built sealed store. Reports records/sec and the
// process's peak RSS so BENCH_analytics.json can record both.
func BenchmarkStreamingSummarize(b *testing.B) {
	dir := b.TempDir()
	total := writeBenchStore(b, dir, 64, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := analysis.NewStreamingSummarizer(8)
		got, err := ForEachDownload(dir, runtime.NumCPU(), func(d *analysis.OfflineDownload) error {
			sum.Observe(d)
			return nil
		})
		if err != nil || got != total {
			b.Fatalf("streamed %d records, err=%v (want %d)", got, err, total)
		}
		if snap := sum.Snapshot(); snap.Downloads != int64(total) {
			b.Fatalf("summary downloads %d, want %d", snap.Downloads, total)
		}
	}
	b.StopTimer()
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(total)*float64(b.N)/elapsed, "records/sec")
	}
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err == nil {
		// Linux reports Maxrss in KiB.
		b.ReportMetric(float64(ru.Maxrss)/1024, "peak-RSS-MB")
	}
}

// BenchmarkSummarizeStore is the throughput canary for the offline analyzer's
// parallel streaming pass: concurrent segment decode into the GUID-sharded
// accumulator with the figure passes enabled — the path netsession-analyze
// takes over a segment store.
func BenchmarkSummarizeStore(b *testing.B) {
	dir := b.TempDir()
	total := writeBenchStore(b, dir, 64, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := SummarizeStore(dir, runtime.NumCPU())
		if err != nil || sum.Records != total {
			b.Fatalf("streamed %d records, err=%v (want %d)", sum.Records, err, total)
		}
	}
	b.StopTimer()
	if elapsed := b.Elapsed().Seconds(); elapsed > 0 {
		b.ReportMetric(float64(total)*float64(b.N)/elapsed, "records/sec")
	}
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err == nil {
		b.ReportMetric(float64(ru.Maxrss)/1024, "peak-RSS-MB")
	}
}

// TestStreamingBoundedMemory proves the streaming pass holds bounded memory
// no matter how large the store is: live heap (sampled with a forced GC every
// few segments) must stay far below the decoded size of the store. Retaining
// the records — what ReadDownloads does by design — would hold the full
// ~45 MB decoded set live and blow the bound.
func TestStreamingBoundedMemory(t *testing.T) {
	dir := t.TempDir()
	total := writeBenchStore(t, dir, 100, 1500) // 150k records

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc

	const sampleEvery = 20_000
	var peak uint64
	sum := analysis.NewStreamingSummarizer(4)
	seen := 0
	got, err := ForEachDownload(dir, 4, func(d *analysis.OfflineDownload) error {
		sum.Observe(d)
		if seen++; seen%sampleEvery == 0 {
			runtime.GC()
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != total {
		t.Fatalf("streamed %d records, want %d", got, total)
	}
	snap := sum.Snapshot()
	if snap.Downloads != int64(total) {
		t.Fatalf("summary downloads %d, want %d", snap.Downloads, total)
	}
	if est := snap.ActiveGUIDs; est < 0.9*float64(total) || est > 1.1*float64(total) {
		t.Errorf("ActiveGUIDs %.0f for %d distinct GUIDs (outside 10%%)", est, total)
	}

	growth := int64(peak) - int64(base)
	t.Logf("live heap: base %.1f MB, peak %.1f MB, growth %.1f MB over %d records",
		float64(base)/1e6, float64(peak)/1e6, float64(growth)/1e6, total)
	const boundMB = 32
	if growth > boundMB<<20 {
		t.Errorf("streaming pass grew live heap by %.1f MB (> %d MB bound): records are being retained",
			float64(growth)/1e6, boundMB)
	}
}
