package logpipe

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"netsession/internal/faults"
	"netsession/internal/id"
	"netsession/internal/telemetry"
)

// entryLines encodes entries as the NDJSON lines a spool batch carries.
func entryLines(t *testing.T, entries ...Entry) [][]byte {
	t.Helper()
	lines := make([][]byte, len(entries))
	for i := range entries {
		b, err := json.Marshal(&entries[i])
		if err != nil {
			t.Fatal(err)
		}
		lines[i] = b
	}
	return lines
}

func gzBatch(t *testing.T, lines [][]byte) []byte {
	t.Helper()
	data, err := MarshalSegment(lines)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func postBatch(t *testing.T, h http.Handler, guid string, seq uint64, body []byte) (*httptest.ResponseRecorder, BatchResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, BatchPath, bytes.NewReader(body))
	if guid != "" {
		req.Header.Set(HeaderGUID, guid)
	}
	req.Header.Set(HeaderSeq, strconv.FormatUint(seq, 10))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var resp BatchResponse
	if w.Code == http.StatusOK {
		if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return w, resp
}

// countingHandler collects every entry the ingest endpoint accepts.
type countingHandler struct {
	mu      sync.Mutex
	entries []Entry
	guids   []id.GUID
}

func (c *countingHandler) handle(guid id.GUID, e *Entry) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = append(c.entries, *e)
	c.guids = append(c.guids, guid)
	return nil
}

func (c *countingHandler) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func testEntry(i int) Entry {
	return Entry{
		Kind: EntryKindDownload, GUID: fmt.Sprintf("entry-guid-%d", i),
		Object: strings.Repeat("ab", 32), URLHash: "u", CP: 3001,
		Size: 1 << 20, BytesInfra: 100, BytesPeers: 200,
	}
}

func TestIngestAcceptsBatch(t *testing.T) {
	ch := &countingHandler{}
	in := NewIngest(IngestConfig{Handle: ch.handle})
	guid := id.NewGUID()
	body := gzBatch(t, entryLines(t, testEntry(0), testEntry(1), testEntry(2)))
	w, resp := postBatch(t, in.Handler(), guid.String(), 0, body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if resp.Accepted != 3 || resp.Rejected != 0 || resp.Duplicate {
		t.Fatalf("response %+v, want 3 accepted", resp)
	}
	if ch.count() != 3 {
		t.Fatalf("handler saw %d entries, want 3", ch.count())
	}
	if ch.guids[0] != guid {
		t.Fatalf("handler guid %v, want the header GUID %v", ch.guids[0], guid)
	}
}

func TestIngestDedupByBatchID(t *testing.T) {
	ch := &countingHandler{}
	reg := telemetry.NewRegistry()
	in := NewIngest(IngestConfig{Handle: ch.handle, Telemetry: reg})
	guid := id.NewGUID().String()
	body := gzBatch(t, entryLines(t, testEntry(0), testEntry(1)))

	if w, resp := postBatch(t, in.Handler(), guid, 7, body); w.Code != http.StatusOK || resp.Accepted != 2 {
		t.Fatalf("first send: code=%d resp=%+v", w.Code, resp)
	}
	// The resend after an uploader crash is acknowledged without re-ingesting
	// — even if its body were damaged, the batch ID alone decides.
	w, resp := postBatch(t, in.Handler(), guid, 7, []byte("damaged resend"))
	if w.Code != http.StatusOK || !resp.Duplicate {
		t.Fatalf("resend: code=%d resp=%+v, want duplicate ack", w.Code, resp)
	}
	if ch.count() != 2 {
		t.Fatalf("handler saw %d entries after resend, want 2 (exactly-once)", ch.count())
	}
	// A different GUID with the same sequence is a distinct batch.
	if w, resp := postBatch(t, in.Handler(), id.NewGUID().String(), 7, body); w.Code != http.StatusOK || resp.Duplicate {
		t.Fatalf("other GUID same seq: code=%d resp=%+v", w.Code, resp)
	}
	if got := reg.Snapshot().Counters["logpipe_ingest_deduped_total"]; got != 1 {
		t.Fatalf("deduped counter = %d, want 1", got)
	}
}

func TestIngestDedupWindowEvicts(t *testing.T) {
	ch := &countingHandler{}
	in := NewIngest(IngestConfig{Handle: ch.handle, DedupWindow: 2})
	guid := id.NewGUID().String()
	body := gzBatch(t, entryLines(t, testEntry(0)))
	for seq := uint64(0); seq < 3; seq++ {
		postBatch(t, in.Handler(), guid, seq, body)
	}
	// Seq 0 was evicted by seq 2; its resend is re-ingested (at-least-once
	// beyond the window — the window must be sized for the crash horizon).
	if _, resp := postBatch(t, in.Handler(), guid, 0, body); resp.Duplicate {
		t.Fatal("evicted batch ID still deduplicated")
	}
	// Seq 2 is still inside the window.
	if _, resp := postBatch(t, in.Handler(), guid, 2, body); !resp.Duplicate {
		t.Fatal("recent batch ID not deduplicated")
	}
}

// TestIngestSharedDedupAcrossNodes models a control-plane failover: two
// ingest endpoints (two CP nodes) share one ack table, so a batch
// acknowledged by node A and retried against node B still ingests once.
// (Real deployments use per-node AckStores reconciled by anti-entropy; the
// shared table here isolates the ingest-side semantics.)
func TestIngestSharedDedupAcrossNodes(t *testing.T) {
	shared := NewDedupIndex(0)
	chA, chB := &countingHandler{}, &countingHandler{}
	regB := telemetry.NewRegistry()
	nodeA := NewIngest(IngestConfig{Handle: chA.handle, Acks: shared})
	nodeB := NewIngest(IngestConfig{Handle: chB.handle, Acks: shared, Telemetry: regB})
	guid := id.NewGUID().String()
	body := gzBatch(t, entryLines(t, testEntry(0), testEntry(1)))

	if w, resp := postBatch(t, nodeA.Handler(), guid, 3, body); w.Code != http.StatusOK || resp.Accepted != 2 {
		t.Fatalf("node A: code=%d resp=%+v", w.Code, resp)
	}
	// Node A dies before the uploader's cursor write; the retry lands on B.
	w, resp := postBatch(t, nodeB.Handler(), guid, 3, body)
	if w.Code != http.StatusOK || !resp.Duplicate {
		t.Fatalf("node B resend: code=%d resp=%+v, want duplicate ack", w.Code, resp)
	}
	if chA.count() != 2 || chB.count() != 0 {
		t.Fatalf("cross-node retry double-counted: A=%d B=%d", chA.count(), chB.count())
	}
	if got := regB.Snapshot().Counters["logpipe_ingest_deduped_total"]; got != 1 {
		t.Fatalf("node B deduped counter = %d, want 1", got)
	}
	// A genuinely new batch still flows through node B.
	if _, resp := postBatch(t, nodeB.Handler(), guid, 4, body); resp.Duplicate || resp.Accepted != 2 {
		t.Fatalf("fresh batch on node B: %+v", resp)
	}
}

func TestIngestBadRequests(t *testing.T) {
	in := NewIngest(IngestConfig{})
	body := gzBatch(t, entryLines(t, testEntry(0)))

	req := httptest.NewRequest(http.MethodGet, BatchPath, nil)
	w := httptest.NewRecorder()
	in.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d, want 405", w.Code)
	}

	if w, _ := postBatch(t, in.Handler(), "", 0, body); w.Code != http.StatusBadRequest {
		t.Fatalf("missing GUID: status %d, want 400", w.Code)
	}
	if w, _ := postBatch(t, in.Handler(), "not-a-guid", 0, body); w.Code != http.StatusBadRequest {
		t.Fatalf("bad GUID: status %d, want 400", w.Code)
	}

	req = httptest.NewRequest(http.MethodPost, BatchPath, bytes.NewReader(body))
	req.Header.Set(HeaderGUID, id.NewGUID().String())
	req.Header.Set(HeaderSeq, "not-a-number")
	w = httptest.NewRecorder()
	in.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad seq: status %d, want 400", w.Code)
	}

	if w, _ := postBatch(t, in.Handler(), id.NewGUID().String(), 0, []byte("not gzip")); w.Code != http.StatusBadRequest {
		t.Fatalf("bad gzip: status %d, want 400", w.Code)
	}
}

func TestIngestSizeCaps(t *testing.T) {
	reg := telemetry.NewRegistry()
	in := NewIngest(IngestConfig{MaxBatchBytes: 64, Telemetry: reg})
	big := gzBatch(t, entryLines(t, testEntry(0), testEntry(1), testEntry(2), testEntry(3)))
	if len(big) <= 64 {
		t.Fatalf("test batch only %d bytes; need >64", len(big))
	}
	if w, _ := postBatch(t, in.Handler(), id.NewGUID().String(), 0, big); w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized compressed batch: status %d, want 413", w.Code)
	}

	// A small compressed body hiding a large decompressed payload (the gzip
	// bomb shape) trips the decoded cap instead.
	in2 := NewIngest(IngestConfig{MaxDecodedBytes: 100, Telemetry: reg})
	bomb := gzBatch(t, [][]byte{[]byte(`{"kind":"` + strings.Repeat("a", 4096) + `"}`)})
	if w, _ := postBatch(t, in2.Handler(), id.NewGUID().String(), 0, bomb); w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized decoded batch: status %d, want 413", w.Code)
	}
	if got := reg.Snapshot().Counters[`logpipe_ingest_rejected_total{reason="too_large"}`]; got != 2 {
		t.Fatalf("too_large rejected counter = %d, want 2", got)
	}
}

func TestIngestBadEntryContinuesBatch(t *testing.T) {
	ch := &countingHandler{}
	reg := telemetry.NewRegistry()
	in := NewIngest(IngestConfig{Handle: ch.handle, Telemetry: reg})
	lines := entryLines(t, testEntry(0))
	lines = append(lines, []byte("{malformed json"))
	lines = append(lines, entryLines(t, testEntry(1))...)
	w, resp := postBatch(t, in.Handler(), id.NewGUID().String(), 0, gzBatch(t, lines))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 (bad entries must not fail the batch)", w.Code)
	}
	if resp.Accepted != 2 || resp.Rejected != 1 {
		t.Fatalf("response %+v, want 2 accepted / 1 rejected", resp)
	}
	if got := reg.Snapshot().Counters[`logpipe_ingest_rejected_total{reason="bad_entry"}`]; got != 1 {
		t.Fatalf("bad_entry rejected counter = %d, want 1", got)
	}
}

func TestIngestHandlerRejectCounted(t *testing.T) {
	in := NewIngest(IngestConfig{Handle: func(id.GUID, *Entry) error {
		return fmt.Errorf("verification failed")
	}})
	w, resp := postBatch(t, in.Handler(), id.NewGUID().String(), 0,
		gzBatch(t, entryLines(t, testEntry(0), testEntry(1))))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: verification rejects must still ack the batch", w.Code)
	}
	if resp.Accepted != 0 || resp.Rejected != 2 {
		t.Fatalf("response %+v, want 0 accepted / 2 rejected", resp)
	}
}

func TestIngestBackpressure(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	reg := telemetry.NewRegistry()
	in := NewIngest(IngestConfig{
		MaxInflight: 1,
		RetryAfter:  3 * time.Second,
		Telemetry:   reg,
		Handle: func(id.GUID, *Entry) error {
			close(started)
			<-release
			return nil
		},
	})
	body := gzBatch(t, entryLines(t, testEntry(0)))
	done := make(chan struct{})
	go func() {
		defer close(done)
		postBatch(t, in.Handler(), id.NewGUID().String(), 0, body)
	}()
	<-started
	w, _ := postBatch(t, in.Handler(), id.NewGUID().String(), 1, body)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("second inflight batch: status %d, want 429", w.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want the configured hint \"3\"", ra)
	}
	close(release)
	<-done
	if got := reg.Snapshot().Counters["logpipe_ingest_backpressure_total"]; got != 1 {
		t.Fatalf("backpressure counter = %d, want 1", got)
	}
}

// TestIngestFaultsInjected flips a fault injector on and off on a live
// endpoint, the mechanism the chaos harness uses to drive 503 storms.
func TestIngestFaultsInjected(t *testing.T) {
	ch := &countingHandler{}
	in := NewIngest(IngestConfig{Handle: ch.handle})
	body := gzBatch(t, entryLines(t, testEntry(0)))
	guid := id.NewGUID().String()

	in.SetFaults(faults.New(faults.Config{ErrorRate: 1}, nil))
	w, _ := postBatch(t, in.Handler(), guid, 0, body)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("injected error: status %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("injected 503 carries no Retry-After hint")
	}

	in.SetFaults(faults.New(faults.Config{RejectRate: 1}, nil))
	if w, _ := postBatch(t, in.Handler(), guid, 0, body); w.Code != http.StatusTooManyRequests {
		t.Fatalf("injected reject: status %d, want 429", w.Code)
	}

	in.SetFaults(nil)
	if w, _ := postBatch(t, in.Handler(), guid, 0, body); w.Code != http.StatusOK {
		t.Fatalf("faults cleared: status %d, want 200", w.Code)
	}
	if ch.count() != 1 {
		t.Fatalf("handler saw %d entries, want 1 (faulted sends never reached it)", ch.count())
	}
}
