package logpipe

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"netsession/internal/id"
	"netsession/internal/telemetry"
)

func TestAckStoreDurableAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenAckStore(AckConfig{Dir: dir, CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Cross the checkpoint boundary and leave a journal tail behind.
	for i := 0; i < 5; i++ {
		a.Mark(fmt.Sprintf("guid/%d", i))
	}
	if err := a.Err(); err != nil {
		t.Fatalf("journal error: %v", err)
	}
	if a.Seq() != 5 {
		t.Fatalf("seq = %d, want 5", a.Seq())
	}
	// No Close: simulate a crash by just reopening the directory.
	b, err := OpenAckStore(AckConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; i < 5; i++ {
		if !b.Seen(fmt.Sprintf("guid/%d", i)) {
			t.Fatalf("ack %d lost across reopen", i)
		}
	}
	if b.Seen("guid/99") {
		t.Fatal("phantom ack after reopen")
	}
	if b.Seq() != 5 {
		t.Fatalf("seq after reopen = %d, want 5", b.Seq())
	}
}

func TestAckStoreWindowEvicts(t *testing.T) {
	a, err := OpenAckStore(AckConfig{Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		a.Mark(fmt.Sprintf("k/%d", i))
	}
	if a.Seen("k/0") || a.Seen("k/1") {
		t.Fatal("evicted keys still seen")
	}
	for i := 2; i < 5; i++ {
		if !a.Seen(fmt.Sprintf("k/%d", i)) {
			t.Fatalf("recent key k/%d evicted", i)
		}
	}
	// Duplicates and empties do not advance the sequence.
	a.Mark("k/4")
	a.Mark("")
	if a.Seq() != 5 {
		t.Fatalf("seq = %d, want 5", a.Seq())
	}
}

func TestAckStoreSince(t *testing.T) {
	a, err := OpenAckStore(AckConfig{Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		a.Mark(fmt.Sprintf("k/%d", i))
	}
	keys, seq := a.Since(2)
	if seq != 4 || len(keys) != 2 || keys[0] != "k/3" || keys[1] != "k/4" {
		t.Fatalf("Since(2) = %v seq=%d, want [k/3 k/4] seq=4", keys, seq)
	}
	if keys, seq := a.Since(4); len(keys) != 0 || seq != 4 {
		t.Fatalf("Since(up-to-date) = %v seq=%d, want empty", keys, seq)
	}
	// A caller behind the window gets the retained tail, best effort.
	small, _ := OpenAckStore(AckConfig{Window: 2})
	for i := 1; i <= 5; i++ {
		small.Mark(fmt.Sprintf("k/%d", i))
	}
	keys, seq = small.Since(0)
	if seq != 5 || len(keys) != 2 {
		t.Fatalf("behind-window Since = %v seq=%d, want the 2 retained keys", keys, seq)
	}
}

// TestAckSyncerPullsMissing: when a peer's advertised sequence moves past
// what we pulled, the syncer fetches the missing keys and counts the pull.
func TestAckSyncerPullsMissing(t *testing.T) {
	remote, _ := OpenAckStore(AckConfig{})
	remote.MarkAll([]string{"g/1", "g/2", "g/3"})
	srv := httptest.NewServer(http.HandlerFunc(remote.ServeSince))
	defer srv.Close()

	local, _ := OpenAckStore(AckConfig{})
	reg := telemetry.NewRegistry()
	s := NewAckSyncer(AckSyncerConfig{Store: local, Telemetry: reg})

	s.ObserveAckSeq("cp-1", srv.URL, remote.Seq())
	for _, k := range []string{"g/1", "g/2", "g/3"} {
		if !local.Seen(k) {
			t.Fatalf("key %s not pulled", k)
		}
	}
	if got := reg.Snapshot().Counters["logpipe_ack_sync_pulls_total"]; got != 1 {
		t.Fatalf("pulls counter = %d, want 1", got)
	}
	// Same sequence again: nothing new, no second pull.
	s.ObserveAckSeq("cp-1", srv.URL, remote.Seq())
	if got := reg.Snapshot().Counters["logpipe_ack_sync_pulls_total"]; got != 1 {
		t.Fatalf("pulls counter after no-op observe = %d, want 1", got)
	}
	// New acks on the remote trigger an incremental pull.
	remote.Mark("g/4")
	s.ObserveAckSeq("cp-1", srv.URL, remote.Seq())
	if !local.Seen("g/4") {
		t.Fatal("incremental key not pulled")
	}
}

// TestAckSyncerSeenAnywhere: the synchronous remote check reads peers'
// seen endpoints; dead peers read as "not seen".
func TestAckSyncerSeenAnywhere(t *testing.T) {
	remote, _ := OpenAckStore(AckConfig{})
	remote.Mark("g/7")
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+AcksSeenPath, remote.ServeSeen)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	s := NewAckSyncer(AckSyncerConfig{})
	s.SetPeers(map[string]string{
		"cp-dead": "http://127.0.0.1:1", // nothing listens here
		"cp-1":    srv.URL,
	})
	if !s.SeenAnywhere("g/7") {
		t.Fatal("remote ack not found")
	}
	if s.SeenAnywhere("g/8") {
		t.Fatal("phantom remote ack")
	}
}

// TestIngestRejectsZeroBatchGUID: the all-zeros GUID parses but would key
// every batch identically (and an empty dedup key can never be evicted);
// it must be rejected with 400 before any dedup state is touched.
func TestIngestRejectsZeroBatchGUID(t *testing.T) {
	reg := telemetry.NewRegistry()
	in := NewIngest(IngestConfig{Telemetry: reg})
	body := gzBatch(t, entryLines(t, testEntry(0)))
	var zero id.GUID
	w, _ := postBatch(t, in.Handler(), zero.String(), 1, body)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("zero GUID: status %d, want 400", w.Code)
	}
	if got := reg.Snapshot().Counters[`logpipe_ingest_rejected_total{reason="bad_batch"}`]; got != 1 {
		t.Fatalf("bad_batch counter = %d, want 1", got)
	}
}

// TestIngestPeerSeenClosesReplayGap: a batch acked elsewhere but not yet
// anti-entropied here must still dedupe via the synchronous remote check.
func TestIngestPeerSeenClosesReplayGap(t *testing.T) {
	ch := &countingHandler{}
	asked := 0
	in := NewIngest(IngestConfig{
		Handle: ch.handle,
		PeerSeen: func(key string) bool {
			asked++
			return true // some peer acked it
		},
	})
	guid := id.NewGUID().String()
	body := gzBatch(t, entryLines(t, testEntry(0)))
	w, resp := postBatch(t, in.Handler(), guid, 1, body)
	if w.Code != http.StatusOK || !resp.Duplicate {
		t.Fatalf("replayed batch: code=%d resp=%+v, want duplicate ack", w.Code, resp)
	}
	if ch.count() != 0 {
		t.Fatalf("handler saw %d entries, want 0 (remote ack must suppress ingest)", ch.count())
	}
	if asked != 1 {
		t.Fatalf("peer check ran %d times, want 1", asked)
	}
	// The hit was cached locally: the next resend never leaves the node.
	postBatch(t, in.Handler(), guid, 1, body)
	if asked != 1 {
		t.Fatalf("peer check ran %d times after cached resend, want 1", asked)
	}
}

func TestDedupIndexIgnoresEmptyKey(t *testing.T) {
	d := NewDedupIndex(2)
	d.Mark("")
	if d.Seen("") {
		t.Fatal("empty key marked; it could never be evicted")
	}
	// The eviction slot the empty key would have poisoned still works.
	d.Mark("a")
	d.Mark("b")
	d.Mark("c")
	if d.Seen("a") || !d.Seen("b") || !d.Seen("c") {
		t.Fatal("window eviction broken after empty-key Mark")
	}
}
