package logpipe

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"netsession/internal/analysis"
	"netsession/internal/telemetry"
)

// StoreConfig configures the control plane's on-disk log segment store.
type StoreConfig struct {
	// Dir holds the rotated segments.
	Dir string
	// MaxSegmentRecords rotates the open segment after this many records;
	// zero selects 4096. This is also the bound on how many accepted records
	// the CN holds in memory for the current segment.
	MaxSegmentRecords int
	// MaxSegmentBytes rotates after this many uncompressed bytes; zero
	// selects 4 MiB.
	MaxSegmentBytes int64
	// Telemetry registers the store's metrics; nil skips telemetry.
	Telemetry *telemetry.Registry
}

// Store is the append-only, rotated segment store the control plane spills
// accepted log records into (§4.1: the infrastructure keeps the month of
// logs that every analysis reads). Memory held is bounded by one segment's
// rotation threshold regardless of how long the process runs. All methods
// are safe for concurrent use.
type Store struct {
	cfg StoreConfig

	mu     sync.Mutex
	w      segWriter
	closed bool

	records  *telemetry.Counter
	segments *telemetry.Counter
	errors   *telemetry.Counter
}

// OpenStore opens (creating if needed) a store directory. A leftover open
// segment from a crashed process is sealed so its records are preserved.
func OpenStore(cfg StoreConfig) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("logpipe: store dir required")
	}
	if cfg.MaxSegmentRecords <= 0 {
		cfg.MaxSegmentRecords = 4096
	}
	if cfg.MaxSegmentBytes <= 0 {
		cfg.MaxSegmentBytes = 4 << 20
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("logpipe: store dir: %w", err)
	}
	st := &Store{cfg: cfg}
	if reg := cfg.Telemetry; reg != nil {
		st.records = reg.Counter("logpipe_store_records_total",
			"accepted log records spilled to the segment store", nil)
		st.segments = reg.Counter("logpipe_store_segments_sealed_total",
			"log segments sealed by the store", nil)
		st.errors = reg.Counter("logpipe_store_errors_total",
			"failed segment store writes", nil)
	}
	segs, err := ListSegments(cfg.Dir)
	if err != nil {
		return nil, err
	}
	var next uint64
	for _, sf := range segs {
		if sf.Open {
			if err := os.Rename(sf.Path, segmentPathSealed(cfg.Dir, sf.Seq)); err != nil {
				return nil, fmt.Errorf("logpipe: seal recovered store segment: %w", err)
			}
		}
		if sf.Seq+1 > next {
			next = sf.Seq + 1
		}
	}
	st.w = segWriter{
		dir: cfg.Dir, seq: next,
		maxRecords: cfg.MaxSegmentRecords, maxBytes: cfg.MaxSegmentBytes,
	}
	return st, nil
}

func segmentPathSealed(dir string, seq uint64) string {
	return filepath.Join(dir, segmentName(seq))
}

// Append durably adds records to the current segment, rotating when it
// reaches the configured thresholds.
func (s *Store) Append(recs ...analysis.OfflineDownload) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("logpipe: store closed")
	}
	for i := range recs {
		line, err := json.Marshal(&recs[i])
		if err != nil {
			s.countError()
			return fmt.Errorf("logpipe: marshal store record: %w", err)
		}
		full, err := s.w.append(line)
		if err != nil {
			s.countError()
			return err
		}
		if s.records != nil {
			s.records.Inc()
		}
		if full {
			if _, _, err := s.w.seal(); err != nil {
				s.countError()
				return err
			}
			if s.segments != nil {
				s.segments.Inc()
			}
		}
	}
	return nil
}

func (s *Store) countError() {
	if s.errors != nil {
		s.errors.Inc()
	}
}

// Flush seals the open segment so everything accepted so far is visible to
// readers of the sealed-segment layout.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, n, err := s.w.seal()
	if err == nil && n > 0 && s.segments != nil {
		s.segments.Inc()
	}
	return err
}

// Close flushes and marks the store closed.
func (s *Store) Close() error {
	if err := s.Flush(); err != nil {
		return err
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.cfg.Dir }

// ReadDownloads loads every download record from a segment directory —
// sealed segments plus any open tail — into the offline analysis schema. A
// torn or partially-written final segment contributes its complete records
// and is otherwise skipped (the crash left it mid-write); damage anywhere
// else is corruption and returns an error.
func ReadDownloads(dir string) ([]analysis.OfflineDownload, error) {
	var out []analysis.OfflineDownload
	if _, err := ForEachDownload(dir, 1, func(d *analysis.OfflineDownload) error {
		out = append(out, *d)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// HasSegments reports whether dir contains any log segments; the analyzer
// uses it to auto-detect the input layout.
func HasSegments(dir string) bool {
	segs, err := ListSegments(dir)
	return err == nil && len(segs) > 0
}
