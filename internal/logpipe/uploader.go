package logpipe

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"netsession/internal/retry"
	"netsession/internal/telemetry"
)

// UploaderConfig configures a spool uploader.
type UploaderConfig struct {
	// Spool is the durable segment source.
	Spool *Spool
	// URL is the control plane's operator HTTP base URL (the surface that
	// serves /metrics); batches POST to URL+BatchPath. When URLs is also
	// set, URL is ignored.
	URL string
	// URLs lists every control-plane node's operator base URL. The uploader
	// sticks to one until it fails (transport error or 5xx), then rotates to
	// the next — a dead CP node never wedges the pipeline, and the cluster's
	// shared dedup window turns the cross-node retry into exactly-once
	// ingestion. Empty falls back to the single URL.
	URLs []string
	// GUID identifies the uploading installation; together with each
	// segment's sequence number it forms the idempotent batch ID.
	GUID string
	// Interval is how often the loop seals and drains pending records; zero
	// selects 2s. Negative disables the loop entirely — batches then move
	// only on explicit Drain calls (tests and crash harnesses).
	Interval time.Duration
	// MaxRetryAfter caps how long a server-sent Retry-After is honored; zero
	// selects 10s.
	MaxRetryAfter time.Duration
	// Client is the HTTP client; nil selects one with a 10s timeout.
	Client *http.Client
	// Breaker tunes the per-CP circuit breaker; the zero value selects the
	// retry package defaults.
	Breaker retry.BreakerConfig
	// Telemetry registers the uploader's metrics; nil skips telemetry.
	Telemetry *telemetry.Registry
	// Logf receives debug logging; nil discards.
	Logf func(format string, args ...any)
}

// Uploader ships sealed spool segments to the control plane: batches are
// retried with jittered backoff, a persistently failing ingest endpoint
// trips a circuit breaker instead of being hammered, and server-sent
// backpressure (429 + Retry-After) is honored. Because batch IDs are
// idempotent and the cursor is written only after an acknowledgement, a
// crash at any point yields at-least-once delivery that the CP's dedup
// window turns into exactly-once ingestion.
type Uploader struct {
	cfg     UploaderConfig
	breaker *retry.Breaker

	// urlIdx is the index into cfg.URLs of the node currently uploaded to;
	// it advances on transport errors and 5xx so retries land on another
	// node (the batch ID keeps the failover exactly-once).
	urlIdx atomic.Uint32

	uploaded      *telemetry.Counter
	uploadedRecs  *telemetry.Counter
	errors        *telemetry.Counter
	backpressure  *telemetry.Counter
	rejected      *telemetry.Counter
	breakerOpen   *telemetry.Counter
	drainDuration *telemetry.Histogram

	mu      sync.Mutex
	stopped bool
	stopCh  chan struct{}
	wg      sync.WaitGroup
}

// StartUploader creates an uploader and, unless the interval is negative,
// starts its background drain loop.
func StartUploader(cfg UploaderConfig) (*Uploader, error) {
	if cfg.Spool == nil {
		return nil, fmt.Errorf("logpipe: uploader needs a spool")
	}
	if len(cfg.URLs) == 0 && cfg.URL != "" {
		cfg.URLs = []string{cfg.URL}
	}
	if len(cfg.URLs) == 0 {
		return nil, fmt.Errorf("logpipe: uploader needs a control plane URL")
	}
	if cfg.Interval == 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.MaxRetryAfter <= 0 {
		cfg.MaxRetryAfter = 10 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	u := &Uploader{cfg: cfg, stopCh: make(chan struct{})}
	if reg := cfg.Telemetry; reg != nil {
		u.uploaded = reg.Counter("logpipe_batches_uploaded_total",
			"log batches acknowledged by the control plane", nil)
		u.uploadedRecs = reg.Counter("logpipe_records_uploaded_total",
			"log records inside acknowledged batches", nil)
		u.errors = reg.Counter("logpipe_upload_errors_total",
			"failed log batch upload attempts", nil)
		u.backpressure = reg.Counter("logpipe_backpressure_honored_total",
			"429 responses honored by waiting out Retry-After", nil)
		u.rejected = reg.Counter("logpipe_batches_rejected_total",
			"log batches permanently rejected by the control plane and dropped", nil)
		u.breakerOpen = reg.Counter("logpipe_upload_breaker_trips_total",
			"ingest circuit-breaker trips", nil)
		u.drainDuration = reg.Histogram("logpipe_drain_ms",
			"time to drain the spool to the control plane in milliseconds",
			telemetry.DurationBucketsMs, nil)
	}
	u.breaker = retry.NewBreaker(withTrip(cfg.Breaker, func() {
		if u.breakerOpen != nil {
			u.breakerOpen.Inc()
		}
	}))
	if cfg.Interval > 0 {
		u.wg.Add(1)
		go u.loop()
	}
	return u, nil
}

func withTrip(cfg retry.BreakerConfig, onTrip func()) retry.BreakerConfig {
	prev := cfg.OnTrip
	cfg.OnTrip = func() {
		if prev != nil {
			prev()
		}
		onTrip()
	}
	return cfg
}

func (u *Uploader) loop() {
	defer u.wg.Done()
	t := time.NewTicker(u.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-u.stopCh:
			return
		case <-t.C:
		}
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			select {
			case <-u.stopCh:
				cancel()
			case <-ctx.Done():
			}
		}()
		if err := u.drainOnce(ctx); err != nil {
			u.cfg.Logf("logpipe: drain: %v", err)
		}
		cancel()
	}
}

// Stop halts the background loop without a final flush — the crash-safe
// spool already holds everything durably, so this is also what the
// SIGKILL-analogue Kill path uses.
func (u *Uploader) Stop() {
	u.mu.Lock()
	if !u.stopped {
		u.stopped = true
		close(u.stopCh)
	}
	u.mu.Unlock()
	u.wg.Wait()
}

// Drain seals pending records and uploads every sealed segment, honoring
// backpressure and breaker state, until the spool is empty, the context
// ends, or a terminal error occurs.
func (u *Uploader) Drain(ctx context.Context) error {
	start := time.Now()
	err := u.drainOnce(ctx)
	if err == nil && u.drainDuration != nil {
		u.drainDuration.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	}
	return err
}

func (u *Uploader) drainOnce(ctx context.Context) error {
	if err := u.cfg.Spool.Flush(); err != nil {
		return err
	}
	backoff := &retry.Backoff{Base: 100 * time.Millisecond, Max: 5 * time.Second}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		batch, ok, err := u.cfg.Spool.NextBatch()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		res, err := u.uploadBatch(ctx, batch)
		switch {
		case err == nil && res.retryAfter > 0:
			// Explicit backpressure: honor the server's pacing rather than
			// hammering it; the batch stays queued for the next attempt.
			if u.backpressure != nil {
				u.backpressure.Inc()
			}
			if err := sleepCtx(ctx, res.retryAfter); err != nil {
				return err
			}
		case err == nil && res.dropBatch:
			// The CP refuses this batch permanently (oversized); keeping it
			// would wedge the whole pipeline behind one poison segment.
			if u.rejected != nil {
				u.rejected.Inc()
			}
			u.cfg.Logf("logpipe: batch %d permanently rejected, dropping", batch.Seq)
			if err := u.cfg.Spool.MarkUploaded(batch.Seq); err != nil {
				return err
			}
			backoff.Reset()
		case err == nil:
			u.breaker.Success()
			if u.uploaded != nil {
				u.uploaded.Inc()
			}
			if u.uploadedRecs != nil {
				u.uploadedRecs.Add(int64(batch.Records))
			}
			if err := u.cfg.Spool.MarkUploaded(batch.Seq); err != nil {
				return err
			}
			backoff.Reset()
		default:
			if u.errors != nil {
				u.errors.Inc()
			}
			u.breaker.Failure()
			u.cfg.Logf("logpipe: upload batch %d: %v", batch.Seq, err)
			if err := sleepCtx(ctx, backoff.Next()); err != nil {
				return err
			}
		}
	}
}

// uploadResult classifies one upload attempt that got an HTTP response.
type uploadResult struct {
	retryAfter time.Duration // >0: server asked us to back off
	dropBatch  bool          // permanent rejection; drop the batch
}

// uploadBatch performs one POST. A nil error with zero fields means the
// batch was acknowledged (fresh or duplicate — both advance the cursor).
func (u *Uploader) uploadBatch(ctx context.Context, b Batch) (uploadResult, error) {
	if !u.breaker.Allow() {
		return uploadResult{}, fmt.Errorf("ingest breaker open")
	}
	base := u.cfg.URLs[int(u.urlIdx.Load())%len(u.cfg.URLs)]
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		base+BatchPath, bytes.NewReader(b.Data))
	if err != nil {
		return uploadResult{}, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set("Content-Encoding", "gzip")
	req.Header.Set(HeaderGUID, u.cfg.GUID)
	req.Header.Set(HeaderSeq, strconv.FormatUint(b.Seq, 10))
	resp, err := u.cfg.Client.Do(req)
	if err != nil {
		u.rotate()
		return uploadResult{}, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusNoContent:
		u.breaker.Success()
		return uploadResult{}, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		// Backpressure is the server working as designed, not a failure; it
		// must not trip the breaker.
		u.breaker.Success()
		return uploadResult{retryAfter: u.retryAfterOf(resp)}, nil
	case resp.StatusCode == http.StatusRequestEntityTooLarge:
		u.breaker.Success()
		return uploadResult{dropBatch: true}, nil
	default:
		u.rotate()
		return uploadResult{}, fmt.Errorf("ingest returned %s", resp.Status)
	}
}

// rotate moves the uploader to the next configured control-plane node. 429
// and 413 never rotate — backpressure and poison batches are the node
// working as designed, not a node failure.
func (u *Uploader) rotate() {
	if len(u.cfg.URLs) > 1 {
		u.urlIdx.Add(1)
	}
}

func (u *Uploader) retryAfterOf(resp *http.Response) time.Duration {
	d := time.Second
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			d = time.Duration(secs) * time.Second
		}
	}
	if d > u.cfg.MaxRetryAfter {
		d = u.cfg.MaxRetryAfter
	}
	return d
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
