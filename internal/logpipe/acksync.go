package logpipe

import (
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"netsession/internal/telemetry"
)

// Anti-entropy endpoints on the control plane's operator HTTP surface.
const (
	// AcksPath serves GET ?since=N (pull missing keys) and POST (bulk merge).
	AcksPath = "/v1/logs/acks"
	// AcksSeenPath serves GET ?key=K — the synchronous remote dedup check.
	AcksSeenPath = AcksPath + "/seen"
)

// AckSyncerConfig configures an anti-entropy syncer.
type AckSyncerConfig struct {
	// Store is the local ack store pulled keys merge into.
	Store *AckStore
	// Timeout bounds each HTTP request; zero selects 500ms. The SeenAnywhere
	// check sits on the ingest request path, so it must fail fast — a dead
	// peer answers "not seen" by timeout, and the batch ingests normally.
	Timeout time.Duration
	// Telemetry registers logpipe_ack_sync_pulls_total eagerly; nil skips.
	Telemetry *telemetry.Registry
	// Logf receives debug logging; nil discards.
	Logf func(format string, args ...any)
}

// AckSyncer reconciles per-node ack stores by anti-entropy. Digests ride
// the existing membership probe channel for free: every status document
// advertises the node's ack sequence, and when a peer's sequence moves past
// what we last pulled, we fetch the keys we are missing. For the window
// between an ack landing on one node and anti-entropy copying it, the
// ingest path closes the gap with a synchronous SeenAnywhere check — so a
// batch acked by node A and replayed to node B milliseconds later still
// counts exactly once. All methods are safe for concurrent use.
type AckSyncer struct {
	cfg    AckSyncerConfig
	client *http.Client

	mu     sync.Mutex
	peers  map[string]string // nodeID -> statusURL
	pulled map[string]uint64 // nodeID -> last seq pulled through

	pulls *telemetry.Counter
}

// NewAckSyncer creates a syncer over the given local store.
func NewAckSyncer(cfg AckSyncerConfig) *AckSyncer {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 500 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &AckSyncer{
		cfg:    cfg,
		client: &http.Client{Timeout: cfg.Timeout},
		peers:  make(map[string]string),
		pulled: make(map[string]uint64),
	}
	if reg := cfg.Telemetry; reg != nil {
		s.pulls = reg.Counter("logpipe_ack_sync_pulls_total",
			"anti-entropy pulls of missing batch acks from peer nodes", nil)
	}
	return s
}

// SetPeers replaces the peer set (nodeID -> status URL). Wire it to the
// membership's OnChange so the syncer tracks the alive view.
func (s *AckSyncer) SetPeers(peers map[string]string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.peers = make(map[string]string, len(peers))
	for id, url := range peers {
		s.peers[id] = url
	}
	for id := range s.pulled {
		if _, ok := s.peers[id]; !ok {
			delete(s.pulled, id)
		}
	}
}

// ObserveAckSeq reports a peer's advertised ack sequence (from a membership
// probe). If the peer has acks we have not pulled, fetch and merge them.
func (s *AckSyncer) ObserveAckSeq(nodeID, statusURL string, seq uint64) {
	if nodeID == "" || statusURL == "" {
		return
	}
	s.mu.Lock()
	last := s.pulled[nodeID]
	s.mu.Unlock()
	if seq <= last {
		return
	}
	resp, err := s.client.Get(statusURL + AcksPath + "?since=" + strconv.FormatUint(last, 10))
	if err != nil {
		s.cfg.Logf("logpipe: ack pull from %s failed: %v", nodeID, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		s.cfg.Logf("logpipe: ack pull from %s: %s", nodeID, resp.Status)
		return
	}
	var sr ackSinceResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&sr); err != nil {
		s.cfg.Logf("logpipe: ack pull from %s: bad body: %v", nodeID, err)
		return
	}
	if s.cfg.Store != nil {
		s.cfg.Store.MarkAll(sr.Keys)
	}
	s.mu.Lock()
	if sr.Seq > s.pulled[nodeID] {
		s.pulled[nodeID] = sr.Seq
	}
	s.mu.Unlock()
	if s.pulls != nil {
		s.pulls.Inc()
	}
	s.cfg.Logf("logpipe: pulled %d acks from %s (through seq %d)", len(sr.Keys), nodeID, sr.Seq)
}

// SeenAnywhere asks every known peer whether it has acked the batch key.
// Errors and timeouts read as "not seen" — a dead peer must not block
// ingest, and a false negative only risks the duplicate the anti-entropy
// window already bounds.
func (s *AckSyncer) SeenAnywhere(key string) bool {
	s.mu.Lock()
	urls := make([]string, 0, len(s.peers))
	for _, u := range s.peers {
		urls = append(urls, u)
	}
	s.mu.Unlock()
	for _, u := range urls {
		resp, err := s.client.Get(u + AcksSeenPath + "?key=" + url.QueryEscape(key))
		if err != nil {
			continue
		}
		var sr ackSeenResponse
		derr := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&sr)
		resp.Body.Close()
		if derr == nil && resp.StatusCode == http.StatusOK && sr.Seen {
			return true
		}
	}
	return false
}
