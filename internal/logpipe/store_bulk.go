package logpipe

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"netsession/internal/fsutil"
)

// BulkWriter materializes a sealed segment store in one pass: records are
// JSON-encoded, buffered, and written as full sealed segments of perSeg
// records each. The rotating Store recompresses its open segment on every
// append — the right durability trade for the control plane's trickle, but
// quadratic gzip work when exporting millions of simulated records at once.
// BulkWriter compresses each segment exactly once, so a million-peer month
// exports in time linear in its size. The output is byte-compatible with
// the Store's layout: the same sealed names, the same readers.
type BulkWriter struct {
	dir    string
	perSeg int
	seq    uint64
	lines  [][]byte
	closed bool
}

// NewBulkWriter creates a writer over dir (created if missing). perSeg
// values below 1 select 10000 records per segment.
func NewBulkWriter(dir string, perSeg int) (*BulkWriter, error) {
	if perSeg < 1 {
		perSeg = 10_000
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("logpipe: bulk writer dir: %w", err)
	}
	return &BulkWriter{dir: dir, perSeg: perSeg, lines: make([][]byte, 0, perSeg)}, nil
}

// Append encodes one record into the current segment, sealing it when full.
func (w *BulkWriter) Append(rec any) error {
	if w.closed {
		return fmt.Errorf("logpipe: bulk writer closed")
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("logpipe: bulk encode: %w", err)
	}
	w.lines = append(w.lines, line)
	if len(w.lines) >= w.perSeg {
		return w.flush()
	}
	return nil
}

func (w *BulkWriter) flush() error {
	if len(w.lines) == 0 {
		return nil
	}
	blob, err := MarshalSegment(w.lines)
	if err != nil {
		return err
	}
	path := filepath.Join(w.dir, segmentName(w.seq))
	if err := fsutil.WriteFileAtomic(path, blob, 0o644); err != nil {
		return fmt.Errorf("logpipe: write segment %s: %w", path, err)
	}
	w.seq++
	w.lines = w.lines[:0]
	return nil
}

// Close seals the final partial segment. The writer is unusable afterwards.
func (w *BulkWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	return w.flush()
}
