package logpipe

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzReadSegment feeds arbitrary bytes — and mutations of valid segments —
// through the segment reader. The invariants: never panic, never return
// anything but complete newline-delimited lines, and classify every damaged
// stream as ErrTorn so callers can apply the torn-final-segment policy.
func FuzzReadSegment(f *testing.F) {
	if valid, err := MarshalSegment(testLines(5)); err == nil {
		f.Add(valid)
		f.Add(valid[:len(valid)/2]) // torn tail
		f.Add(valid[:1])            // torn inside the gzip header
	}
	if empty, err := MarshalSegment(nil); err == nil {
		f.Add(empty)
	}
	f.Add([]byte{})
	f.Add([]byte("plain text, not gzip"))
	f.Add([]byte{0x1f, 0x8b}) // bare gzip magic

	f.Fuzz(func(t *testing.T, data []byte) {
		lines, err := ReadSegment(bytes.NewReader(data))
		if err != nil && !errors.Is(err, ErrTorn) {
			t.Fatalf("ReadSegment error %v is not ErrTorn", err)
		}
		for i, l := range lines {
			if len(l) == 0 {
				t.Fatalf("line %d is empty; blank lines must be skipped", i)
			}
			if bytes.ContainsRune(l, '\n') {
				t.Fatalf("line %d contains a newline: %q", i, l)
			}
		}
		// A reader must be able to re-frame what the writer produces: lines
		// recovered from any stream must round-trip losslessly.
		if len(lines) > 0 {
			re, merr := MarshalSegment(lines)
			if merr != nil {
				t.Fatalf("re-marshal recovered lines: %v", merr)
			}
			back, rerr := ReadSegment(bytes.NewReader(re))
			if rerr != nil {
				t.Fatalf("re-read re-marshaled segment: %v", rerr)
			}
			if len(back) != len(lines) {
				t.Fatalf("re-read returned %d lines, want %d", len(back), len(lines))
			}
			for i := range lines {
				if !bytes.Equal(back[i], lines[i]) {
					t.Fatalf("re-read line %d = %q, want %q", i, back[i], lines[i])
				}
			}
		}
	})
}
