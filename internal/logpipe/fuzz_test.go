package logpipe

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"netsession/internal/analysis"
)

// fuzzSeedSegments returns the shared corpus of interesting segment byte
// streams: valid, torn at several depths, and outright garbage.
func fuzzSeedSegments() [][]byte {
	var seeds [][]byte
	if valid, err := MarshalSegment(testLines(5)); err == nil {
		seeds = append(seeds, valid)
		seeds = append(seeds, valid[:len(valid)/2]) // torn tail
		seeds = append(seeds, valid[:1])            // torn inside the gzip header
	}
	if empty, err := MarshalSegment(nil); err == nil {
		seeds = append(seeds, empty)
	}
	seeds = append(seeds,
		[]byte{},
		[]byte("plain text, not gzip"),
		[]byte{0x1f, 0x8b}, // bare gzip magic
	)
	return seeds
}

// FuzzReadSegment feeds arbitrary bytes — and mutations of valid segments —
// through the segment reader. The invariants: never panic, never return
// anything but complete newline-delimited lines, and classify every damaged
// stream as ErrTorn so callers can apply the torn-final-segment policy.
func FuzzReadSegment(f *testing.F) {
	for _, s := range fuzzSeedSegments() {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		lines, err := ReadSegment(bytes.NewReader(data))
		if err != nil && !errors.Is(err, ErrTorn) {
			t.Fatalf("ReadSegment error %v is not ErrTorn", err)
		}
		for i, l := range lines {
			if len(l) == 0 {
				t.Fatalf("line %d is empty; blank lines must be skipped", i)
			}
			if bytes.ContainsRune(l, '\n') {
				t.Fatalf("line %d contains a newline: %q", i, l)
			}
		}
		// A reader must be able to re-frame what the writer produces: lines
		// recovered from any stream must round-trip losslessly.
		if len(lines) > 0 {
			re, merr := MarshalSegment(lines)
			if merr != nil {
				t.Fatalf("re-marshal recovered lines: %v", merr)
			}
			back, rerr := ReadSegment(bytes.NewReader(re))
			if rerr != nil {
				t.Fatalf("re-read re-marshaled segment: %v", rerr)
			}
			if len(back) != len(lines) {
				t.Fatalf("re-read returned %d lines, want %d", len(back), len(lines))
			}
			for i := range lines {
				if !bytes.Equal(back[i], lines[i]) {
					t.Fatalf("re-read line %d = %q, want %q", i, back[i], lines[i])
				}
			}
		}
	})
}

// FuzzTailSegments drops arbitrary bytes into a segment directory as the
// newest segment — between a known-good predecessor and, later, a known-good
// successor — and tails the store across it. The invariants: the tailer never
// panics and never returns a non-torn error, never duplicates a delivered
// record, always delivers every record of the undamaged segments, and never
// wedges (damage with sealed successors is skipped, not retried forever).
func FuzzTailSegments(f *testing.F) {
	for _, s := range fuzzSeedSegments() {
		f.Add(s)
	}

	goodSeg := func(t *testing.T, base int) ([]byte, []string) {
		var lines [][]byte
		var guids []string
		for i := 0; i < 3; i++ {
			d := analysis.OfflineDownload{GUID: string(rune('a'+base)) + "-guid", Size: int64(i)}
			d.GUID = d.GUID + string(rune('0'+i))
			raw, err := json.Marshal(&d)
			if err != nil {
				t.Fatal(err)
			}
			lines = append(lines, raw)
			guids = append(guids, d.GUID)
		}
		seg, err := MarshalSegment(lines)
		if err != nil {
			t.Fatal(err)
		}
		return seg, guids
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		seg0, guids0 := goodSeg(t, 0)
		if err := os.WriteFile(filepath.Join(dir, segmentName(0)), seg0, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		tl, err := OpenTailer(TailerConfig{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		first, err := tl.Poll()
		if err != nil {
			t.Fatalf("first poll: %v", err)
		}
		seen := map[string]int{}
		for _, d := range first {
			seen[d.GUID]++
		}
		// Re-polling an unchanged store must deliver nothing new.
		again, err := tl.Poll()
		if err != nil {
			t.Fatalf("second poll: %v", err)
		}
		if len(again) != 0 {
			t.Fatalf("unchanged store re-delivered %d records", len(again))
		}
		// A good sealed successor lands; the tailer must move past whatever
		// the fuzzer wrote and deliver the successor in full.
		seg2, guids2 := goodSeg(t, 2)
		if err := os.WriteFile(filepath.Join(dir, segmentName(2)), seg2, 0o644); err != nil {
			t.Fatal(err)
		}
		rest, err := tl.Poll()
		if err != nil {
			t.Fatalf("third poll: %v", err)
		}
		for _, d := range rest {
			seen[d.GUID]++
		}
		for _, g := range append(guids0, guids2...) {
			if seen[g] != 1 {
				t.Fatalf("good record %q delivered %d times, want exactly once", g, seen[g])
			}
		}
		if tl.TornSkipped() > 1 {
			t.Fatalf("TornSkipped = %d, want at most 1", tl.TornSkipped())
		}
	})
}
