// Package logpipe is the client-log collection pipeline (§3.4/§4.1): the
// peer-side durable spool that batches per-download usage records into
// gzip-compressed NDJSON segments, the uploader that ships sealed segments to
// the control plane over HTTP with idempotent batch IDs, the CP-side ingest
// endpoint that verifies, deduplicates and applies backpressure, and the
// append-only rotated segment store whose files feed the same offline
// analyses as the simulator's exported logs. The paper's entire evaluation
// rests on exactly this pipeline: NetSession clients "upload logs to the
// infrastructure", producing the ~4.15 billion log entries per month that
// §4.1 joins with EdgeScape data offline.
package logpipe

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A segment is one gzip-compressed NDJSON file: newline-terminated JSON
// records, compressed as a single gzip stream. Segments are written
// atomically (fsutil.WriteFileAtomic), so under the system's own crash model
// a segment is either fully present or absent — but files can still arrive
// torn through copies, truncation, or foreign writers, so the reader
// recovers every complete record from a damaged stream instead of failing.

// ErrTorn reports that a segment ended mid-stream: the lines returned before
// it are complete and usable, the tail is not. A torn *final* segment in a
// directory is expected after a crash and skipped; a torn middle segment is
// corruption and surfaces as an error.
var ErrTorn = errors.New("logpipe: torn segment tail")

const (
	segPrefix  = "seg-"
	segSuffix  = ".ndjson.gz"
	openSuffix = ".open.ndjson.gz"
)

// segmentName renders the sealed filename of a segment sequence number.
func segmentName(seq uint64) string {
	return fmt.Sprintf("%s%010d%s", segPrefix, seq, segSuffix)
}

// openSegmentName renders the open (still-appending) filename.
func openSegmentName(seq uint64) string {
	return fmt.Sprintf("%s%010d%s", segPrefix, seq, openSuffix)
}

// SegmentFile is one on-disk segment.
type SegmentFile struct {
	Seq  uint64
	Path string
	Size int64
	Open bool // still being appended to (crash leftover or live writer)
}

// parseSegmentName extracts the sequence number from a segment filename.
func parseSegmentName(name string) (seq uint64, open, ok bool) {
	if !strings.HasPrefix(name, segPrefix) {
		return 0, false, false
	}
	rest := name[len(segPrefix):]
	switch {
	case strings.HasSuffix(rest, openSuffix):
		open = true
		rest = rest[:len(rest)-len(openSuffix)]
	case strings.HasSuffix(rest, segSuffix):
		rest = rest[:len(rest)-len(segSuffix)]
	default:
		return 0, false, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false, false
	}
	return n, open, true
}

// ListSegments enumerates the segments in a directory, sorted by sequence
// number (an open segment sorts by its sequence like any other). Non-segment
// files are ignored.
func ListSegments(dir string) ([]SegmentFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []SegmentFile
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		seq, open, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, SegmentFile{
			Seq: seq, Path: filepath.Join(dir, e.Name()), Size: info.Size(), Open: open,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// MarshalSegment encodes NDJSON lines (each a complete JSON document without
// the trailing newline) as one gzip-compressed segment.
func MarshalSegment(lines [][]byte) ([]byte, error) {
	var buf bytes.Buffer
	zw, _ := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
	for _, l := range lines {
		if _, err := zw.Write(l); err != nil {
			return nil, fmt.Errorf("logpipe: compress segment: %w", err)
		}
		if _, err := zw.Write([]byte{'\n'}); err != nil {
			return nil, fmt.Errorf("logpipe: compress segment: %w", err)
		}
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("logpipe: close segment: %w", err)
	}
	return buf.Bytes(), nil
}

// maxLineBytes bounds one NDJSON record; hostile or corrupt streams must not
// make the reader allocate absurd buffers.
const maxLineBytes = 4 << 20

// ReadSegment decompresses a segment and returns its complete lines. A
// stream that ends mid-record or mid-gzip-frame returns the lines recovered
// so far together with ErrTorn; any other corruption is also reported as
// ErrTorn since gzip cannot distinguish truncation from trailing damage
// without the stream's end. Callers decide whether a torn tail is tolerable
// (final segment after a crash) or fatal (middle of a directory).
func ReadSegment(r io.Reader) ([][]byte, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, ErrTorn
	}
	defer zr.Close()
	// Frame on the trailing newline explicitly rather than with bufio.Scanner:
	// the Scanner emits a final unterminated token on *any* read error, which
	// would surface a half-written record from a torn stream as if complete.
	br := bufio.NewReaderSize(zr, 64<<10)
	var out [][]byte
	var partial []byte
	for {
		chunk, err := br.ReadSlice('\n')
		partial = append(partial, chunk...)
		if len(partial) > maxLineBytes {
			return out, ErrTorn
		}
		switch err {
		case nil:
			if line := partial[:len(partial)-1]; len(line) > 0 {
				out = append(out, append([]byte(nil), line...))
			}
			partial = partial[:0]
		case bufio.ErrBufferFull:
			// Line longer than the read buffer; keep accumulating.
		case io.EOF:
			// The writer terminates every line, so leftover bytes at a clean
			// stream end are a record cut mid-write.
			if len(partial) == 0 {
				return out, nil
			}
			return out, ErrTorn
		default:
			// Includes gzip checksum errors and unexpected EOF from a torn tail.
			return out, ErrTorn
		}
	}
}

// ReadSegmentFile reads one segment from disk.
func ReadSegmentFile(path string) ([][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSegment(f)
}

// countRecords returns how many complete records a segment file holds; used
// when accounting for records dropped by retention.
func countRecords(path string) int {
	lines, _ := ReadSegmentFile(path)
	return len(lines)
}
