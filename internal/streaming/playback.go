// Package streaming is the deadline-driven delivery model: a playback
// clock that turns a bitrate and a startup buffer into per-piece
// deadlines, and a sliding playback-window scheduler that requests
// urgent pieces first. The paper notes NetSession "also supports video
// streaming" (§3.4); this package supplies the machinery the binary
// sequential-download flag could not: startup delay, rebuffer events,
// deadline misses and urgent-window edge rescues as first-class,
// measurable outcomes.
//
// The model is clock-agnostic: every method takes "now" as milliseconds
// on whatever clock the caller runs — wall time for live downloads,
// virtual simulated time for internal/sim — so live and simulated
// streams produce identical metric semantics.
package streaming

import (
	"fmt"
	"sync"
)

// Config are the caller-tunable playback parameters. NumPieces and sizes
// come from the object manifest, not from here, so the same Config can be
// applied to any object (a CLI flag, a checkpoint, a scenario knob).
type Config struct {
	// BitrateBps is the playback consumption rate in bits per second.
	// Zero disables streaming (no session is created).
	BitrateBps int64
	// StartupPieces is how many contiguous pieces must be buffered
	// before playback starts. Zero selects DefaultStartupPieces.
	StartupPieces int
	// WindowPieces is the size of the urgent playback window: pieces
	// within WindowPieces of the playhead are fetched
	// earliest-deadline-first and may be rescued from the edge. Zero
	// selects DefaultWindowPieces.
	WindowPieces int
}

// Defaults for Config's zero values.
const (
	DefaultStartupPieces = 2
	DefaultWindowPieces  = 8
)

func (c Config) startupPieces() int {
	if c.StartupPieces <= 0 {
		return DefaultStartupPieces
	}
	return c.StartupPieces
}

func (c Config) windowPieces() int {
	if c.WindowPieces <= 0 {
		return DefaultWindowPieces
	}
	return c.WindowPieces
}

// Metrics is a snapshot of a session's streaming outcomes. All fields are
// plain sums so aggregates merge exactly across live reports, log records
// and simulated records.
type Metrics struct {
	BitrateBps      int64
	StartupDelayMs  int64 // request start → playback start (or stall-so-far if never started)
	RebufferCount   int64 // playback stalls after startup
	RebufferMs      int64 // total time paused in those stalls
	DeadlineMisses  int64 // pieces unavailable at their play deadline
	PiecesPlayed    int64
	PiecesTotal     int64
	EdgeRescueBytes int64 // urgent-window bytes fetched from the edge
	Done            bool
}

// DeadlineMissRatio is misses over pieces whose deadline has passed.
func (m Metrics) DeadlineMissRatio() float64 {
	if m.PiecesPlayed == 0 {
		return 0
	}
	return float64(m.DeadlineMisses) / float64(m.PiecesPlayed)
}

// Session is the playback clock for one streaming download. Piece i's
// deadline is startup + i play-durations after playback begins; when the
// next piece is missing at its deadline the clock pauses (a rebuffer) and
// every later deadline shifts by the stall, exactly like a real player.
//
// Sessions survive download-mode degradation: the clock keeps running when
// the transfer falls back to edge-only, so rebuffers under degradation are
// still observed and reported.
//
// All methods are safe for concurrent use.
type Session struct {
	cfg       Config
	numPieces int
	pieceDur  []int64 // play duration of each piece in ms (last piece may be short)

	mu        sync.Mutex
	have      []bool
	contig    int   // pieces [0, contig) are all available
	startMs   int64 // session creation (request start)
	started   bool
	startedAt int64
	playPos   int   // next piece to play
	nextNeed  int64 // deadline of piece playPos (valid once started)
	stalled   bool  // currently rebuffering
	stalledAt int64
	rebufCnt  int64
	rebufMs   int64
	misses    int64
	rescueB   int64
}

// NewSession creates a playback session for an object of numPieces pieces
// of pieceSize bytes (totalSize trims the final piece), starting its
// request clock at nowMs.
func NewSession(cfg Config, numPieces int, pieceSize int, totalSize int64, nowMs int64) (*Session, error) {
	if cfg.BitrateBps <= 0 {
		return nil, fmt.Errorf("streaming: bitrate must be positive, got %d", cfg.BitrateBps)
	}
	if numPieces <= 0 || pieceSize <= 0 {
		return nil, fmt.Errorf("streaming: invalid geometry: %d pieces of %d bytes", numPieces, pieceSize)
	}
	s := &Session{
		cfg:       cfg,
		numPieces: numPieces,
		pieceDur:  make([]int64, numPieces),
		have:      make([]bool, numPieces),
		startMs:   nowMs,
	}
	for i := range s.pieceDur {
		sz := int64(pieceSize)
		if totalSize > 0 {
			if rem := totalSize - int64(i)*int64(pieceSize); rem < sz {
				sz = rem
			}
		}
		if sz < 1 {
			sz = 1
		}
		// duration = bytes*8 / bitrate, in ms, at least 1ms so the
		// clock always advances.
		d := sz * 8 * 1000 / cfg.BitrateBps
		if d < 1 {
			d = 1
		}
		s.pieceDur[i] = d
	}
	return s, nil
}

// Config returns the session's playback parameters.
func (s *Session) Config() Config { return s.cfg }

// OnPiece records that piece idx became available at nowMs and advances
// the playback clock.
func (s *Session) OnPiece(idx int, nowMs int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Run the clock up to now BEFORE admitting the piece: if its deadline
	// already passed, the player was stalled waiting for it and the stall
	// must be observed even though no tick fired in between.
	s.step(nowMs)
	if idx < 0 || idx >= s.numPieces || s.have[idx] {
		return
	}
	s.have[idx] = true
	for s.contig < s.numPieces && s.have[s.contig] {
		s.contig++
	}
	s.step(nowMs)
}

// Advance moves the playback clock to nowMs without new data.
func (s *Session) Advance(nowMs int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.step(nowMs)
}

// step is the clock: called with s.mu held, time monotone per caller.
func (s *Session) step(nowMs int64) {
	if s.playPos >= s.numPieces {
		return
	}
	if !s.started {
		need := s.cfg.startupPieces()
		if need > s.numPieces {
			need = s.numPieces
		}
		if s.contig < need {
			return
		}
		s.started = true
		s.startedAt = nowMs
		s.nextNeed = nowMs // first piece plays immediately
	}
	// playPos counts pieces that have BEGUN playing; nextNeed is when the
	// latest of them finishes, i.e. when piece playPos must start.
	for s.playPos < s.numPieces {
		if nowMs < s.nextNeed {
			return // current piece still playing
		}
		if s.have[s.playPos] {
			if s.stalled {
				// The awaited piece arrived: the pause ends now and
				// every later deadline shifts by the stall length.
				s.rebufMs += nowMs - s.stalledAt
				s.stalled = false
				s.nextNeed = nowMs
			}
			s.nextNeed += s.pieceDur[s.playPos]
			s.playPos++
			continue
		}
		if !s.stalled {
			// Deadline missed: playback pauses where the buffer ran dry.
			s.stalled = true
			s.stalledAt = s.nextNeed
			if s.stalledAt < s.startedAt {
				s.stalledAt = s.startedAt
			}
			s.rebufCnt++
			s.misses++
		}
		return
	}
}

// AddEdgeRescue accounts n bytes fetched from the edge for an
// urgent-window piece (no peer could meet the deadline).
func (s *Session) AddEdgeRescue(n int64) {
	s.mu.Lock()
	s.rescueB += n
	s.mu.Unlock()
}

// PlayPos returns the next piece the player needs (== pieces fully played).
func (s *Session) PlayPos() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.playPos
}

// InWindow reports whether piece idx is inside the urgent playback window
// [playPos, playPos+WindowPieces). Before startup the window anchors at
// piece 0 so the startup buffer itself is urgent.
func (s *Session) InWindow(idx int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return idx >= s.playPos && idx < s.playPos+s.cfg.windowPieces()
}

// Window returns the urgent window bounds [lo, hi).
func (s *Session) Window() (lo, hi int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lo = s.playPos
	hi = s.playPos + s.cfg.windowPieces()
	if hi > s.numPieces {
		hi = s.numPieces
	}
	return lo, hi
}

// Metrics snapshots the session's streaming outcomes at nowMs. The clock
// is advanced to nowMs first so an in-progress stall is included.
func (s *Session) Metrics(nowMs int64) Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.step(nowMs)
	// A piece counts as played once its play duration has elapsed; the
	// piece begun but still on screen at nowMs is excluded.
	finished := int64(s.playPos)
	if s.playPos > 0 && nowMs < s.nextNeed {
		finished--
	}
	m := Metrics{
		BitrateBps:      s.cfg.BitrateBps,
		RebufferCount:   s.rebufCnt,
		RebufferMs:      s.rebufMs,
		DeadlineMisses:  s.misses,
		PiecesPlayed:    finished,
		PiecesTotal:     int64(s.numPieces),
		EdgeRescueBytes: s.rescueB,
		Done:            s.playPos >= s.numPieces && nowMs >= s.nextNeed,
	}
	if s.started {
		m.StartupDelayMs = s.startedAt - s.startMs
	} else {
		m.StartupDelayMs = nowMs - s.startMs
	}
	if s.stalled && nowMs > s.stalledAt {
		m.RebufferMs += nowMs - s.stalledAt
	}
	return m
}
