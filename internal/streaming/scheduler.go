package streaming

import (
	"math/rand"

	"netsession/internal/content"
)

// PieceView is everything a piece scheduler may consult when picking the
// next piece to request from one remote. It is built fresh per decision by
// the download engine; schedulers must not retain it.
type PieceView struct {
	// Have is the local verified bitfield, Remote the uploader's.
	Have   *content.Bitfield
	Remote *content.Bitfield
	// InFlight reports whether piece i is already requested from some
	// connection.
	InFlight func(i int) bool
	// Avail returns how many currently-connected uploaders hold piece i
	// (for rarest-first). Nil when the engine does not track
	// availability.
	Avail func(i int) int
	// Rand is the download's seeded RNG; schedulers draw all randomness
	// from it so request orders are reproducible.
	Rand *rand.Rand
	// Session is the playback session, nil for bulk downloads.
	Session *Session
}

// eligible reports whether piece i is wanted, offered and not in flight.
func (v *PieceView) eligible(i int) bool {
	return !v.Have.Has(i) && v.Remote.Has(i) && !v.InFlight(i)
}

// randomScanLimit bounds the candidate scan when picking at random,
// matching the historical download scheduler ("randomize among the first
// eligible pieces so concurrent peers fetch disjoint pieces").
const randomScanLimit = 32

// rarestScanLimit bounds the candidate scan for rarest-first beyond the
// playback window.
const rarestScanLimit = 64

// WindowScheduler is the deadline-driven policy: pieces inside the urgent
// playback window are requested earliest-deadline-first (deadlines are
// monotone in piece index, so EDF inside the window is lowest-index
// first); beyond the window it falls back to rarest-first so the swarm
// still diversifies the pieces it can trade.
type WindowScheduler struct{}

// NextPiece implements the scheduler contract: -1 means nothing eligible.
func (WindowScheduler) NextPiece(v *PieceView) int {
	n := v.Have.Len()
	lo, hi := 0, n
	if v.Session != nil {
		lo, hi = v.Session.Window()
	}
	// Urgent window: EDF == in order.
	for i := lo; i < hi && i < n; i++ {
		if v.eligible(i) {
			return i
		}
	}
	// Earlier-than-window pieces already played past are never needed
	// again for playback but may still be wanted for completeness; treat
	// them as ordinary (non-urgent) candidates together with the
	// beyond-window tail.
	var cands []int
	for i := hi; i < n && len(cands) < rarestScanLimit; i++ {
		if v.eligible(i) {
			cands = append(cands, i)
		}
	}
	for i := 0; i < lo && len(cands) < rarestScanLimit; i++ {
		if v.eligible(i) {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return -1
	}
	if v.Avail == nil {
		return cands[v.Rand.Intn(len(cands))]
	}
	// Rarest-first: fewest connected holders wins; break ties at random
	// so concurrent downloaders don't pile onto the same piece.
	var best []int
	bestAvail := int(^uint(0) >> 1)
	for _, i := range cands {
		a := v.Avail(i)
		switch {
		case a < bestAvail:
			bestAvail = a
			best = append(best[:0], i)
		case a == bestAvail:
			best = append(best, i)
		}
	}
	return best[v.Rand.Intn(len(best))]
}
