package streaming

import (
	"math/rand"
	"testing"

	"netsession/internal/content"
)

// sessionFor builds a 10-piece, 1 MiB/piece, 8 Mbps session: each piece
// plays for exactly 1000ms.
func sessionFor(t *testing.T, cfg Config) *Session {
	t.Helper()
	s, err := NewSession(cfg, 10, 1<<20, 10<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionSmoothPlayback(t *testing.T) {
	s := sessionFor(t, Config{BitrateBps: 8 << 20, StartupPieces: 2})
	// Pieces arrive every 500ms — faster than the 1000ms play duration.
	for i := 0; i < 10; i++ {
		s.OnPiece(i, int64(i)*500)
	}
	// Playback started at 500ms (two contiguous pieces) and never stalled;
	// the last piece finishes 10s after startup.
	m := s.Metrics(500 + 10_000)
	if m.StartupDelayMs != 500 {
		t.Fatalf("startup delay = %dms, want 500", m.StartupDelayMs)
	}
	if m.RebufferCount != 0 || m.RebufferMs != 0 || m.DeadlineMisses != 0 {
		t.Fatalf("unexpected stalls: %+v", m)
	}
	if !m.Done || m.PiecesPlayed != 10 {
		t.Fatalf("not done: %+v", m)
	}
}

func TestSessionRebuffer(t *testing.T) {
	s := sessionFor(t, Config{BitrateBps: 8 << 20, StartupPieces: 1})
	s.OnPiece(0, 0) // playback starts at 0, piece 1 needed at 1000ms
	s.OnPiece(1, 3500)
	for i := 2; i < 10; i++ {
		s.OnPiece(i, 3500) // rest arrives in a burst
	}
	m := s.Metrics(20_000)
	if m.RebufferCount != 1 {
		t.Fatalf("rebuffer count = %d, want 1", m.RebufferCount)
	}
	// Stalled from the missed deadline (1000ms) until arrival (3500ms).
	if m.RebufferMs != 2500 {
		t.Fatalf("rebuffer ms = %d, want 2500", m.RebufferMs)
	}
	if m.DeadlineMisses != 1 {
		t.Fatalf("deadline misses = %d, want 1", m.DeadlineMisses)
	}
	if !m.Done {
		t.Fatalf("not done: %+v", m)
	}
}

func TestSessionStartupNeverCompletes(t *testing.T) {
	s := sessionFor(t, Config{BitrateBps: 8 << 20, StartupPieces: 4})
	s.OnPiece(0, 100)
	m := s.Metrics(9000)
	if m.StartupDelayMs != 9000 {
		t.Fatalf("unstarted session should report elapsed wait, got %d", m.StartupDelayMs)
	}
	if m.RebufferCount != 0 || m.PiecesPlayed != 0 {
		t.Fatalf("unexpected progress: %+v", m)
	}
}

func TestSessionOutOfOrderArrival(t *testing.T) {
	s := sessionFor(t, Config{BitrateBps: 8 << 20, StartupPieces: 2})
	// Tail arrives first; startup waits for the contiguous prefix.
	for i := 9; i >= 2; i-- {
		s.OnPiece(i, 10)
	}
	s.OnPiece(1, 700)
	s.OnPiece(0, 800) // contiguous prefix of 2 completes here
	m := s.Metrics(800 + 10_000)
	if m.StartupDelayMs != 800 {
		t.Fatalf("startup delay = %d, want 800", m.StartupDelayMs)
	}
	if m.RebufferCount != 0 || !m.Done {
		t.Fatalf("bad outcome: %+v", m)
	}
}

func TestSessionWindowTracksPlayhead(t *testing.T) {
	s := sessionFor(t, Config{BitrateBps: 8 << 20, StartupPieces: 1, WindowPieces: 3})
	if lo, hi := s.Window(); lo != 0 || hi != 3 {
		t.Fatalf("initial window = [%d,%d), want [0,3)", lo, hi)
	}
	for i := 0; i < 5; i++ {
		s.OnPiece(i, 0)
	}
	// At 4500ms piece 4 is on screen, so piece 5 is the next the player
	// needs: the urgent window anchors there.
	s.Advance(4500)
	if lo, hi := s.Window(); lo != 5 || hi != 8 {
		t.Fatalf("window = [%d,%d), want [5,8)", lo, hi)
	}
	if s.InWindow(4) || !s.InWindow(5) || !s.InWindow(7) || s.InWindow(8) {
		t.Fatal("InWindow disagrees with Window bounds")
	}
}

func TestSessionLastPieceShort(t *testing.T) {
	// 2.5 MiB object: pieces of 1 MiB, 1 MiB, 0.5 MiB at 8 Mbps play for
	// 1000, 1000, 500 ms.
	s, err := NewSession(Config{BitrateBps: 8 << 20, StartupPieces: 1}, 3, 1<<20, 5<<19, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s.OnPiece(i, 0)
	}
	if m := s.Metrics(2499); m.Done {
		t.Fatal("finished before the short last piece played out")
	}
	if m := s.Metrics(2500); !m.Done {
		t.Fatal("short last piece should finish at 2500ms")
	}
}

func viewFor(have, remote *content.Bitfield, inflight map[int]bool, sess *Session, avail func(int) int) *PieceView {
	return &PieceView{
		Have:     have,
		Remote:   remote,
		InFlight: func(i int) bool { return inflight[i] },
		Avail:    avail,
		Rand:     rand.New(rand.NewSource(1)),
		Session:  sess,
	}
}

func fullBitfield(n int) *content.Bitfield {
	bf := content.NewBitfield(n)
	for i := 0; i < n; i++ {
		bf.Set(i)
	}
	return bf
}

func TestWindowSchedulerUrgentFirst(t *testing.T) {
	s, err := NewSession(Config{BitrateBps: 8 << 20, StartupPieces: 1, WindowPieces: 4}, 32, 1<<20, 32<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	have := content.NewBitfield(32)
	remote := fullBitfield(32)
	v := viewFor(have, remote, map[int]bool{0: true}, s, nil)
	// Piece 0 is in flight: EDF inside the window picks piece 1, not a
	// random beyond-window piece.
	if got := (WindowScheduler{}).NextPiece(v); got != 1 {
		t.Fatalf("urgent pick = %d, want 1", got)
	}
	// With the whole window in flight or held, fall through to the tail.
	for i := 0; i < 4; i++ {
		have.Set(i)
	}
	if got := (WindowScheduler{}).NextPiece(v); got < 4 {
		t.Fatalf("beyond-window pick = %d, want >= 4", got)
	}
}

func TestWindowSchedulerRarestBeyondWindow(t *testing.T) {
	s, err := NewSession(Config{BitrateBps: 8 << 20, StartupPieces: 1, WindowPieces: 2}, 16, 1<<20, 16<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	have := content.NewBitfield(16)
	have.Set(0)
	have.Set(1) // window [0,2) satisfied
	remote := fullBitfield(16)
	avail := func(i int) int {
		if i == 11 {
			return 1 // piece 11 is the rarest
		}
		return 5
	}
	v := viewFor(have, remote, nil, s, avail)
	for trial := 0; trial < 8; trial++ {
		if got := (WindowScheduler{}).NextPiece(v); got != 11 {
			t.Fatalf("rarest pick = %d, want 11", got)
		}
	}
}

func TestWindowSchedulerNothingEligible(t *testing.T) {
	have := fullBitfield(8)
	remote := fullBitfield(8)
	v := viewFor(have, remote, nil, nil, nil)
	if got := (WindowScheduler{}).NextPiece(v); got != -1 {
		t.Fatalf("pick = %d, want -1", got)
	}
}

// BenchmarkWindowScheduler is the streaming hot-path canary recorded in
// BENCH_streaming.json: one urgent-window decision over a 1000-piece
// object with a half-full local bitfield.
func BenchmarkWindowScheduler(b *testing.B) {
	const n = 1000
	s, err := NewSession(Config{BitrateBps: 8 << 20, WindowPieces: 16}, n, 1<<20, n<<20, 0)
	if err != nil {
		b.Fatal(err)
	}
	have := content.NewBitfield(n)
	for i := 0; i < n; i += 2 {
		have.Set(i)
	}
	remote := fullBitfield(n)
	v := &PieceView{
		Have:     have,
		Remote:   remote,
		InFlight: func(int) bool { return false },
		Avail:    func(i int) int { return 1 + i%7 },
		Rand:     rand.New(rand.NewSource(7)),
		Session:  s,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if (WindowScheduler{}).NextPiece(v) < 0 {
			b.Fatal("no pick")
		}
	}
}
