package selection

import (
	"math/rand"
	"sync"
	"testing"

	"netsession/internal/content"
	"netsession/internal/geo"
	"netsession/internal/id"
	"netsession/internal/protocol"
)

// TestDirectoryConcurrency hammers one directory from many goroutines; run
// with -race. The live CN serves thousands of concurrent sessions against
// shared DN state, so the directory must be safe under arbitrary
// interleavings of register/select/unregister/expire — including geo-moving
// re-registrations (which rewrite locality lists under selections in flight)
// and the tombstone compactions triggered by unregister storms.
func TestDirectoryConcurrency(t *testing.T) {
	acfg := geo.DefaultAtlasConfig()
	acfg.TailCountries = 2
	atlas := geo.GenerateAtlas(acfg)
	scape := geo.NewEdgeScape(atlas)
	dir := NewDirectory(0)
	pol := DefaultPolicy()

	const (
		workers = 8
		objects = 4
		iters   = 300
	)
	oids := make([]content.ObjectID, objects)
	for i := range oids {
		oids[i] = content.NewObjectID(1, "obj", uint32(i))
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			us, _ := atlas.Country("US")
			de, _ := atlas.Country("DE")
			countries := []*geo.Country{us, de}
			var mine []Entry
			for i := 0; i < iters; i++ {
				switch r.Intn(7) {
				case 0, 1: // register a fresh peer
					ip, err := scape.AllocateIP(us.ASNs[r.Intn(len(us.ASNs))], us.Locations[0])
					if err != nil {
						t.Error(err)
						return
					}
					rec := scape.MustLookup(ip)
					e := Entry{
						Info: protocol.PeerInfo{
							GUID: id.RandGUID(r), Addr: "a:1",
							NAT: protocol.NATNone, ASN: uint32(rec.ASN),
						},
						Rec: rec, Complete: true, RegisteredMs: int64(i),
					}
					dir.Register(oids[r.Intn(objects)], e)
					mine = append(mine, e)
				case 2: // select
					q := Query{
						Object:        oids[r.Intn(objects)],
						Requester:     geo.Record{Country: "US", Continent: geo.NorthAmerica},
						RequesterGUID: id.RandGUID(r),
						RequesterNAT:  protocol.NATNone,
						NowMs:         int64(i),
						Rand:          r,
					}
					got := dir.Select(pol, q)
					seen := make(map[id.GUID]bool, len(got))
					for _, p := range got {
						if seen[p.GUID] {
							t.Error("duplicate peer in selection")
							return
						}
						seen[p.GUID] = true
					}
				case 3: // drop one of ours
					if len(mine) > 0 {
						ix := r.Intn(len(mine))
						dir.DropPeer(mine[ix].Info.GUID)
						mine = append(mine[:ix], mine[ix+1:]...)
					}
				case 4: // expire aggressively
					dir.Expire(int64(i), 50)
				case 5: // geo-move: re-register one of ours from another network
					if len(mine) > 0 {
						ix := r.Intn(len(mine))
						c := countries[r.Intn(len(countries))]
						ip, err := scape.AllocateIP(c.ASNs[r.Intn(len(c.ASNs))], c.Locations[0])
						if err != nil {
							t.Error(err)
							return
						}
						rec := scape.MustLookup(ip)
						e := mine[ix]
						e.Rec = rec
						e.Info.ASN = uint32(rec.ASN)
						e.RegisteredMs = int64(i)
						dir.Register(oids[r.Intn(objects)], e)
						mine[ix] = e
					}
				case 6: // unregister one of ours from one object (tombstone path)
					if len(mine) > 0 {
						dir.Unregister(oids[r.Intn(objects)], mine[r.Intn(len(mine))].Info.GUID)
					}
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	// Directory is still internally consistent: every remaining object has
	// at least one entry.
	if dir.Objects() < 0 {
		t.Fatal("unreachable")
	}
}
