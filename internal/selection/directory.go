// Package selection implements the database-node directory of file
// locations and the locality-aware peer-selection strategy of §3.7.
//
// Selection is two-level. The first level is region-based: each directory
// instance serves one control-plane network region, and connection nodes
// query only their local directory ("long-term experimentation has shown
// that using only local DNs in searches does not negatively impact
// performance"). The second level is geolocation-based: within a directory,
// each peer belongs to nested locality sets (AS ⊂ country ⊂ continent ⊂
// World), and "selection begins with peers from the most specific set that
// the querying peer belongs to, and proceeds to less specific sets until
// enough suitable peers are found", with occasional diversity picks from
// less specific sets, fairness rotation, and NAT-compatibility filtering.
package selection

import (
	"sync"

	"netsession/internal/content"
	"netsession/internal/geo"
	"netsession/internal/id"
	"netsession/internal/protocol"
)

// Entry is one peer's registration for one object.
type Entry struct {
	Info protocol.PeerInfo
	Rec  geo.Record
	// Complete reports whether the peer holds every piece; partial holders
	// are still useful uploaders mid-swarm.
	Complete bool
	// RegisteredMs is the soft-state timestamp; stale entries are purged.
	RegisteredMs int64
}

// Directory is the DN database for one network region: "a database of which
// objects are currently available on which peers, as well as details about
// the connectivity of these peers" (§3.6). It is safe for concurrent use.
type Directory struct {
	region geo.NetworkRegion

	mu      sync.Mutex
	objects map[content.ObjectID]*objectEntry
	// peerObjects tracks, per peer, which objects it has registered, so a
	// peer's departure can be cleaned up in one call.
	peerObjects map[id.GUID]map[content.ObjectID]bool
}

type objectEntry struct {
	// entries holds the registration per peer.
	entries map[id.GUID]*Entry
	// bySet keeps a fairness-ordered list of GUIDs per locality set: a
	// selected peer moves to the tail ("when a peer is selected, it is
	// placed at the end of a peer selection list for fairness").
	bySet map[geo.SetKey][]id.GUID
}

// NewDirectory creates an empty directory for a region.
func NewDirectory(region geo.NetworkRegion) *Directory {
	return &Directory{
		region:      region,
		objects:     make(map[content.ObjectID]*objectEntry),
		peerObjects: make(map[id.GUID]map[content.ObjectID]bool),
	}
}

// Region returns the network region this directory serves.
func (d *Directory) Region() geo.NetworkRegion { return d.region }

// Register adds or refreshes a peer's registration for an object. Peers
// appear here only when uploads are enabled and they hold content (§3.6);
// enforcing that is the caller's (CN's) job.
func (d *Directory) Register(obj content.ObjectID, e Entry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	oe := d.objects[obj]
	if oe == nil {
		oe = &objectEntry{
			entries: make(map[id.GUID]*Entry),
			bySet:   make(map[geo.SetKey][]id.GUID),
		}
		d.objects[obj] = oe
	}
	g := e.Info.GUID
	if _, known := oe.entries[g]; !known {
		for _, key := range geo.SetsFor(e.Rec) {
			oe.bySet[key] = append(oe.bySet[key], g)
		}
	}
	cp := e
	oe.entries[g] = &cp
	if d.peerObjects[g] == nil {
		d.peerObjects[g] = make(map[content.ObjectID]bool)
	}
	d.peerObjects[g][obj] = true
}

// Unregister removes one (peer, object) registration.
func (d *Directory) Unregister(obj content.ObjectID, g id.GUID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.unregisterLocked(obj, g)
}

func (d *Directory) unregisterLocked(obj content.ObjectID, g id.GUID) {
	oe := d.objects[obj]
	if oe == nil {
		return
	}
	e := oe.entries[g]
	if e == nil {
		return
	}
	delete(oe.entries, g)
	for _, key := range geo.SetsFor(e.Rec) {
		oe.bySet[key] = removeGUID(oe.bySet[key], g)
	}
	if len(oe.entries) == 0 {
		delete(d.objects, obj)
	}
	if po := d.peerObjects[g]; po != nil {
		delete(po, obj)
		if len(po) == 0 {
			delete(d.peerObjects, g)
		}
	}
}

// DropPeer removes every registration of a departing peer (its control
// connection closed, or it disabled uploads).
func (d *Directory) DropPeer(g id.GUID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for obj := range d.peerObjects[g] {
		d.unregisterLocked(obj, g)
	}
}

// Expire purges registrations whose soft state is older than ttlMs at time
// nowMs, returning how many entries were purged. The directory's contents
// are reconstructible from the peers (§3.8), so aggressive expiry is safe.
func (d *Directory) Expire(nowMs, ttlMs int64) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	purged := 0
	for obj, oe := range d.objects {
		for g, e := range oe.entries {
			if nowMs-e.RegisteredMs > ttlMs {
				d.unregisterLocked(obj, g)
				purged++
			}
		}
	}
	return purged
}

// Copies returns how many peers currently register the object — the
// quantity on the x-axis of Figure 5.
func (d *Directory) Copies(obj content.ObjectID) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	oe := d.objects[obj]
	if oe == nil {
		return 0
	}
	return len(oe.entries)
}

// Objects returns the number of distinct objects with at least one
// registration.
func (d *Directory) Objects() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.objects)
}

// Clear drops the whole database, simulating a DN failure; the control
// plane then re-populates it via RE-ADD (§3.8).
func (d *Directory) Clear() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.objects = make(map[content.ObjectID]*objectEntry)
	d.peerObjects = make(map[id.GUID]map[content.ObjectID]bool)
}

func removeGUID(list []id.GUID, g id.GUID) []id.GUID {
	for i, x := range list {
		if x == g {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}
