// Package selection implements the database-node directory of file
// locations and the locality-aware peer-selection strategy of §3.7.
//
// Selection is two-level. The first level is region-based: each directory
// instance serves one control-plane network region, and connection nodes
// query only their local directory ("long-term experimentation has shown
// that using only local DNs in searches does not negatively impact
// performance"). The second level is geolocation-based: within a directory,
// each peer belongs to nested locality sets (AS ⊂ country ⊂ continent ⊂
// World), and "selection begins with peers from the most specific set that
// the querying peer belongs to, and proceeds to less specific sets until
// enough suitable peers are found", with occasional diversity picks from
// less specific sets, fairness rotation, and NAT-compatibility filtering.
package selection

import (
	"sync"

	"netsession/internal/content"
	"netsession/internal/geo"
	"netsession/internal/id"
	"netsession/internal/protocol"
)

// Entry is one peer's registration for one object.
type Entry struct {
	Info protocol.PeerInfo
	Rec  geo.Record
	// Complete reports whether the peer holds every piece; partial holders
	// are still useful uploaders mid-swarm.
	Complete bool
	// RegisteredMs is the soft-state timestamp; stale entries are purged.
	RegisteredMs int64
}

// Directory is the DN database for one network region: "a database of which
// objects are currently available on which peers, as well as details about
// the connectivity of these peers" (§3.6). It is safe for concurrent use.
type Directory struct {
	region geo.NetworkRegion

	mu      sync.Mutex
	objects map[content.ObjectID]*objectEntry
	// peerObjects tracks, per peer, which objects it has registered, so a
	// peer's departure can be cleaned up in one call.
	peerObjects map[id.GUID]map[content.ObjectID]bool
	// owned reports whether the local control-plane node currently owns this
	// region on the cluster ring. A directory that lost ownership answers
	// Select with no candidates, so stale state left from before a handoff
	// can never steer a swarm. Single-node deployments stay owned forever.
	owned bool
}

// dirEntry is one peer's registration plus the directory's bookkeeping for
// it: which locality lists currently carry its GUID, and whether it has been
// tombstoned. Unregistering only sets the tombstone — the GUID stays in the
// fairness lists until a lazy compaction sweeps it out — so churn-heavy
// workloads don't pay an O(set size) list removal per departure.
type dirEntry struct {
	e Entry
	// listed are the locality sets whose bySet lists contain this GUID —
	// derived from the geo record at (re-)registration time.
	listed [4]geo.SetKey
	dead   bool
}

type objectEntry struct {
	// entries holds the registration per peer, including tombstones.
	entries map[id.GUID]*dirEntry
	// bySet keeps a fairness-ordered list of GUIDs per locality set: a
	// selected peer moves to the tail ("when a peer is selected, it is
	// placed at the end of a peer selection list for fairness"). Lists may
	// carry tombstoned GUIDs; readers must check the entry's dead flag.
	bySet map[geo.SetKey][]id.GUID
	// dead counts tombstoned entries still present in entries/bySet.
	dead int
}

func (oe *objectEntry) live() int { return len(oe.entries) - oe.dead }

// compact removes every tombstoned GUID from the fairness lists and the
// entry map. Relative order of surviving GUIDs is preserved, so fairness
// rotation state carries across compactions.
func (oe *objectEntry) compact() {
	for key, list := range oe.bySet {
		keep := list[:0]
		for _, g := range list {
			if de := oe.entries[g]; de != nil && !de.dead {
				keep = append(keep, g)
			}
		}
		if len(keep) == 0 {
			delete(oe.bySet, key)
		} else {
			oe.bySet[key] = keep
		}
	}
	for g, de := range oe.entries {
		if de.dead {
			delete(oe.entries, g)
		}
	}
	oe.dead = 0
}

// NewDirectory creates an empty directory for a region.
func NewDirectory(region geo.NetworkRegion) *Directory {
	return &Directory{
		region:      region,
		objects:     make(map[content.ObjectID]*objectEntry),
		peerObjects: make(map[id.GUID]map[content.ObjectID]bool),
		owned:       true,
	}
}

// Region returns the network region this directory serves.
func (d *Directory) Region() geo.NetworkRegion { return d.region }

// SetOwned flips whether the local node owns this directory's region.
func (d *Directory) SetOwned(owned bool) {
	d.mu.Lock()
	d.owned = owned
	d.mu.Unlock()
}

// Owned reports whether the local node owns this directory's region.
func (d *Directory) Owned() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.owned
}

// Register adds or refreshes a peer's registration for an object. Peers
// appear here only when uploads are enabled and they hold content (§3.6);
// enforcing that is the caller's (CN's) job.
//
// A re-registration with a changed geo record — a mobile peer that logged in
// from a different network (§6) — moves the peer's locality membership:
// its GUID leaves the lists of the old sets and joins the new ones.
func (d *Directory) Register(obj content.ObjectID, e Entry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	oe := d.objects[obj]
	if oe == nil {
		oe = &objectEntry{
			entries: make(map[id.GUID]*dirEntry),
			bySet:   make(map[geo.SetKey][]id.GUID),
		}
		d.objects[obj] = oe
	}
	g := e.Info.GUID
	sets := geo.SetsFor(e.Rec)
	de := oe.entries[g]
	switch {
	case de == nil:
		de = &dirEntry{listed: sets}
		oe.entries[g] = de
		for _, key := range sets {
			oe.bySet[key] = append(oe.bySet[key], g)
		}
	default:
		if de.dead {
			de.dead = false
			oe.dead--
		}
		if de.listed != sets {
			// The peer moved: re-home its GUID eagerly so selection from
			// the old locality never offers it again.
			for _, key := range de.listed {
				oe.bySet[key] = removeGUID(oe.bySet[key], g)
			}
			for _, key := range sets {
				oe.bySet[key] = append(oe.bySet[key], g)
			}
			de.listed = sets
		}
	}
	de.e = e
	if d.peerObjects[g] == nil {
		d.peerObjects[g] = make(map[content.ObjectID]bool)
	}
	d.peerObjects[g][obj] = true
}

// Unregister removes one (peer, object) registration.
func (d *Directory) Unregister(obj content.ObjectID, g id.GUID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.unregisterLocked(obj, g)
}

// unregisterLocked tombstones a registration. The GUID is left in the
// fairness lists (selection skips tombstones); once tombstones outnumber
// live entries the object is compacted in one linear sweep, keeping the
// amortized cost of a departure O(1) instead of O(set size).
func (d *Directory) unregisterLocked(obj content.ObjectID, g id.GUID) {
	oe := d.objects[obj]
	if oe == nil {
		return
	}
	de := oe.entries[g]
	if de == nil || de.dead {
		return
	}
	de.dead = true
	oe.dead++
	if po := d.peerObjects[g]; po != nil {
		delete(po, obj)
		if len(po) == 0 {
			delete(d.peerObjects, g)
		}
	}
	switch live := oe.live(); {
	case live == 0:
		delete(d.objects, obj)
	case oe.dead > live:
		oe.compact()
	}
}

// DropPeer removes every registration of a departing peer (its control
// connection closed, or it disabled uploads).
func (d *Directory) DropPeer(g id.GUID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for obj := range d.peerObjects[g] {
		d.unregisterLocked(obj, g)
	}
}

// ExportEntry is one live registration as surfaced by Export.
type ExportEntry struct {
	Object content.ObjectID
	Entry  Entry
}

// Export snapshots every live registration — what a draining control-plane
// node pushes to a region's new owner, so the takeover starts with the full
// directory instead of an empty one waiting out a rebuild window.
func (d *Directory) Export() []ExportEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []ExportEntry
	for obj, oe := range d.objects {
		for _, de := range oe.entries {
			if !de.dead {
				out = append(out, ExportEntry{Object: obj, Entry: de.e})
			}
		}
	}
	return out
}

// Expire purges registrations whose soft state is older than ttlMs at time
// nowMs, returning how many entries were purged. The directory's contents
// are reconstructible from the peers (§3.8), so aggressive expiry is safe.
func (d *Directory) Expire(nowMs, ttlMs int64) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	purged := 0
	for obj, oe := range d.objects {
		for g, de := range oe.entries {
			if !de.dead && nowMs-de.e.RegisteredMs > ttlMs {
				d.unregisterLocked(obj, g)
				purged++
			}
		}
	}
	return purged
}

// Copies returns how many peers currently register the object — the
// quantity on the x-axis of Figure 5.
func (d *Directory) Copies(obj content.ObjectID) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	oe := d.objects[obj]
	if oe == nil {
		return 0
	}
	return oe.live()
}

// Objects returns the number of distinct objects with at least one
// registration.
func (d *Directory) Objects() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.objects)
}

// Clear drops the whole database, simulating a DN failure; the control
// plane then re-populates it via RE-ADD (§3.8).
func (d *Directory) Clear() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.objects = make(map[content.ObjectID]*objectEntry)
	d.peerObjects = make(map[id.GUID]map[content.ObjectID]bool)
}

func removeGUID(list []id.GUID, g id.GUID) []id.GUID {
	for i, x := range list {
		if x == g {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}
