package selection

import (
	"math/rand"

	"netsession/internal/content"
	"netsession/internal/geo"
	"netsession/internal/id"
	"netsession/internal/nat"
	"netsession/internal/protocol"
)

// Policy holds the configurable knobs of the selection process ("the
// selection process can be modified with a set of configurable policies",
// §3.7).
type Policy struct {
	// MaxPeers bounds how many peers one query returns ("by default, up to
	// 40 peers are returned").
	MaxPeers int
	// DiversityProb scales the chance of an out-of-turn pick from a less
	// specific set; the pick probability is DiversityProb multiplied by
	// the candidate set's specificity.
	DiversityProb float64
	// RequireNATCompat filters candidates the requester's NAT cannot punch
	// with.
	RequireNATCompat bool
	// SoftStateTTLMs rejects registrations older than this; 0 disables the
	// freshness check.
	SoftStateTTLMs int64
	// LocalityAware switches between the paper's strategy and the random
	// baseline used by the ablation benches.
	LocalityAware bool
}

// DefaultPolicy returns the production-like policy.
func DefaultPolicy() Policy {
	return Policy{
		MaxPeers:         40,
		DiversityProb:    0.10,
		RequireNATCompat: true,
		SoftStateTTLMs:   6 * 3600 * 1000,
		LocalityAware:    true,
	}
}

// Query describes one peer-selection request arriving at the directory.
type Query struct {
	Object    content.ObjectID
	Requester geo.Record
	// RequesterGUID is excluded from results.
	RequesterGUID id.GUID
	RequesterNAT  protocol.NATClass
	NowMs         int64
	// Max overrides Policy.MaxPeers when positive.
	Max int
	// Rand drives the diversity mechanism; required.
	Rand *rand.Rand
}

// Select returns up to Max suitable peers for the query under the given
// policy. The result order is the order peers should be tried in.
func (d *Directory) Select(p Policy, q Query) []protocol.PeerInfo {
	max := p.MaxPeers
	if q.Max > 0 && q.Max < max {
		max = q.Max
	}
	if max <= 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	oe := d.objects[q.Object]
	if oe == nil {
		return nil
	}
	if !p.LocalityAware {
		return d.selectRandomLocked(oe, p, q, max)
	}

	chosen := make(map[id.GUID]bool, max)
	var out []protocol.PeerInfo
	take := func(g id.GUID) bool {
		e := oe.entries[g]
		if e == nil || chosen[g] || g == q.RequesterGUID {
			return false
		}
		if p.SoftStateTTLMs > 0 && q.NowMs-e.RegisteredMs > p.SoftStateTTLMs {
			return false
		}
		if p.RequireNATCompat && !nat.CanConnect(q.RequesterNAT, e.Info.NAT) {
			return false
		}
		chosen[g] = true
		out = append(out, e.Info)
		return true
	}

	sets := geo.SetsFor(q.Requester)
	for li, key := range sets {
		// Walk a snapshot of the fairness list from the head; every taken
		// peer rotates to the tail of the live list for the next query.
		list := append([]id.GUID(nil), oe.bySet[key]...)
		for i := 0; i < len(list) && len(out) < max; i++ {
			g := list[i]
			if take(g) {
				oe.bySet[key] = rotateToTail(oe.bySet[key], g)
				// Diversity: occasionally substitute one pick from a less
				// specific set, with probability proportional to that
				// set's specificity.
				for _, wider := range sets[li+1:] {
					if len(out) >= max {
						break
					}
					if q.Rand.Float64() < p.DiversityProb*wider.Level.Specificity() {
						wlist := oe.bySet[wider]
						for _, wg := range wlist {
							if take(wg) {
								oe.bySet[wider] = rotateToTail(oe.bySet[wider], wg)
								break
							}
						}
					}
				}
			}
		}
		if len(out) >= max {
			break
		}
	}
	return out
}

// selectRandomLocked is the baseline selector: a uniformly random subset of
// compatible holders, ignoring locality. Used to quantify how much the
// locality-aware strategy matters (ablation benches; cf. the discussion of
// locality-aware selection reducing cross-ISP traffic in §7).
func (d *Directory) selectRandomLocked(oe *objectEntry, p Policy, q Query, max int) []protocol.PeerInfo {
	world := oe.bySet[geo.SetKey{Level: geo.LevelWorld, Value: "world"}]
	perm := q.Rand.Perm(len(world))
	var out []protocol.PeerInfo
	for _, ix := range perm {
		g := world[ix]
		e := oe.entries[g]
		if e == nil || g == q.RequesterGUID {
			continue
		}
		if p.SoftStateTTLMs > 0 && q.NowMs-e.RegisteredMs > p.SoftStateTTLMs {
			continue
		}
		if p.RequireNATCompat && !nat.CanConnect(q.RequesterNAT, e.Info.NAT) {
			continue
		}
		out = append(out, e.Info)
		if len(out) >= max {
			break
		}
	}
	return out
}

func rotateToTail(list []id.GUID, g id.GUID) []id.GUID {
	for i, x := range list {
		if x == g {
			copy(list[i:], list[i+1:])
			list[len(list)-1] = g
			return list
		}
	}
	return list
}
