package selection

import (
	"math/rand"
	"sync"

	"netsession/internal/content"
	"netsession/internal/geo"
	"netsession/internal/id"
	"netsession/internal/nat"
	"netsession/internal/protocol"
)

// Policy holds the configurable knobs of the selection process ("the
// selection process can be modified with a set of configurable policies",
// §3.7).
type Policy struct {
	// MaxPeers bounds how many peers one query returns ("by default, up to
	// 40 peers are returned").
	MaxPeers int
	// DiversityProb scales the chance of an out-of-turn pick from a less
	// specific set; the pick probability is DiversityProb multiplied by
	// the candidate set's specificity.
	DiversityProb float64
	// RequireNATCompat filters candidates the requester's NAT cannot punch
	// with.
	RequireNATCompat bool
	// SoftStateTTLMs rejects registrations older than this; 0 disables the
	// freshness check.
	SoftStateTTLMs int64
	// LocalityAware switches between the paper's strategy and the random
	// baseline used by the ablation benches.
	LocalityAware bool
}

// DefaultPolicy returns the production-like policy.
func DefaultPolicy() Policy {
	return Policy{
		MaxPeers:         40,
		DiversityProb:    0.10,
		RequireNATCompat: true,
		SoftStateTTLMs:   6 * 3600 * 1000,
		LocalityAware:    true,
	}
}

// Query describes one peer-selection request arriving at the directory.
type Query struct {
	Object    content.ObjectID
	Requester geo.Record
	// RequesterGUID is excluded from results.
	RequesterGUID id.GUID
	RequesterNAT  protocol.NATClass
	NowMs         int64
	// Max overrides Policy.MaxPeers when positive.
	Max int
	// Rand drives the diversity mechanism; required. It is only used
	// outside the directory's lock, so a per-caller Rand needs no extra
	// synchronization.
	Rand *rand.Rand
}

// candidate is the selector's private copy of one live registration.
// Directory entries are mutated in place by re-registration, so the walk
// works on copies, never on shared pointers.
type candidate struct {
	info  protocol.PeerInfo
	regMs int64
}

// rotation records one fairness move (taken peer → tail of its level's
// list), applied in one batch after the walk.
type rotation struct {
	level int8
	g     id.GUID
}

// levelState is one locality level's lazily materialized view: the GUID
// list is copied whole on first touch (a flat memcpy), but entries are
// resolved into candidates in chunks, on demand — a walk that fills its
// quota from the head of a 10k-peer world set never pays for the tail.
type levelState struct {
	guids []id.GUID
	cands []candidate
	// next is the first unresolved index into guids.
	next  int
	haveG bool
}

// snapshotChunk is how many GUIDs one locked section resolves; large enough
// that a typical query locks each touched level once or twice, small enough
// that a full miss over a big set stays incremental.
const snapshotChunk = 64

// selScratch is the reusable working set of one Select call. Pooled so the
// steady-state cost of a query is one allocation (the returned slice).
type selScratch struct {
	levels [4]levelState
	chosen []id.GUID
	rots   []rotation
	out    []protocol.PeerInfo
}

var selPool = sync.Pool{New: func() any { return new(selScratch) }}

func (sc *selScratch) release() {
	for i := range sc.levels {
		lv := &sc.levels[i]
		lv.guids = lv.guids[:0]
		lv.cands = lv.cands[:0]
		lv.next = 0
		lv.haveG = false
	}
	sc.chosen = sc.chosen[:0]
	sc.rots = sc.rots[:0]
	sc.out = sc.out[:0]
	selPool.Put(sc)
}

// Select returns up to Max suitable peers for the query under the given
// policy. The result order is the order peers should be tried in.
//
// The directory lock is held only for candidate snapshotting (GUID-list
// copies and chunked entry resolution) and for the final batch of fairness
// rotations; the walk itself — filtering, diversity draws from q.Rand —
// runs unlocked on the snapshots, so a slow or randomness-heavy query never
// serializes the directory's writers.
func (d *Directory) Select(p Policy, q Query) []protocol.PeerInfo {
	max := p.MaxPeers
	if q.Max > 0 && q.Max < max {
		max = q.Max
	}
	if max <= 0 {
		return nil
	}
	if !d.Owned() {
		// Ownership moved to another node; whatever entries remain here are
		// stale and must not steer swarms.
		return nil
	}
	sc := selPool.Get().(*selScratch)
	sets := geo.SetsFor(q.Requester)
	if p.LocalityAware {
		d.selectLocality(sc, p, q, max, sets)
	} else {
		d.selectRandom(sc, p, q, max, sets[3])
	}
	var out []protocol.PeerInfo
	if len(sc.out) > 0 {
		out = append(out, sc.out...)
	}
	sc.release()
	return out
}

// selectLocality walks the nested locality sets most specific first,
// spilling to wider sets until the quota is met, with the paper's
// probabilistic diversity picks from less specific sets.
func (d *Directory) selectLocality(sc *selScratch, p Policy, q Query, max int, sets [4]geo.SetKey) {
	take := func(c candidate, level int) bool {
		g := c.info.GUID
		if g == q.RequesterGUID {
			return false
		}
		for _, ch := range sc.chosen {
			if ch == g {
				return false
			}
		}
		if p.SoftStateTTLMs > 0 && q.NowMs-c.regMs > p.SoftStateTTLMs {
			return false
		}
		if p.RequireNATCompat && !nat.CanConnect(q.RequesterNAT, c.info.NAT) {
			return false
		}
		sc.chosen = append(sc.chosen, g)
		sc.out = append(sc.out, c.info)
		sc.rots = append(sc.rots, rotation{level: int8(level), g: g})
		return true
	}

	for li := 0; li < len(sets) && len(sc.out) < max; li++ {
		for idx := 0; len(sc.out) < max; idx++ {
			list := d.fillLevel(sc, q.Object, sets[li], li, idx+1)
			if idx >= len(list) {
				break
			}
			if !take(list[idx], li) {
				continue
			}
			// Diversity: occasionally add one pick from a less specific
			// set, with probability proportional to its specificity.
			for wi := li + 1; wi < len(sets); wi++ {
				if len(sc.out) >= max {
					break
				}
				if q.Rand.Float64() < p.DiversityProb*sets[wi].Level.Specificity() {
					for widx := 0; ; widx++ {
						wlist := d.fillLevel(sc, q.Object, sets[wi], wi, widx+1)
						if widx >= len(wlist) {
							break
						}
						if take(wlist[widx], wi) {
							break
						}
					}
				}
			}
		}
	}
	d.applyRotations(q.Object, sets, sc.rots)
}

// selectRandom is the baseline selector: a uniformly random subset of
// compatible holders, ignoring locality. Used to quantify how much the
// locality-aware strategy matters (ablation benches; cf. the discussion of
// locality-aware selection reducing cross-ISP traffic in §7).
func (d *Directory) selectRandom(sc *selScratch, p Policy, q Query, max int, world geo.SetKey) {
	// A uniform draw needs the whole candidate set materialized.
	list := d.fillLevel(sc, q.Object, world, 3, int(^uint(0)>>1))
	q.Rand.Shuffle(len(list), func(i, j int) { list[i], list[j] = list[j], list[i] })
	for _, c := range list {
		if c.info.GUID == q.RequesterGUID {
			continue
		}
		if p.SoftStateTTLMs > 0 && q.NowMs-c.regMs > p.SoftStateTTLMs {
			continue
		}
		if p.RequireNATCompat && !nat.CanConnect(q.RequesterNAT, c.info.NAT) {
			continue
		}
		sc.out = append(sc.out, c.info)
		if len(sc.out) >= max {
			break
		}
	}
}

// fillLevel materializes candidates for one locality level until at least
// `want` are available or the level is exhausted, and returns the resolved
// prefix. The first locked section copies the level's GUID list (so one
// query sees one consistent fairness order); each locked section resolves at
// most snapshotChunk entries, skipping tombstones and GUIDs unregistered
// since the copy. An object that vanishes mid-query just exhausts the level.
func (d *Directory) fillLevel(sc *selScratch, obj content.ObjectID, key geo.SetKey, li, want int) []candidate {
	lv := &sc.levels[li]
	for len(lv.cands) < want {
		if lv.haveG && lv.next >= len(lv.guids) {
			break
		}
		d.mu.Lock()
		oe := d.objects[obj]
		if oe == nil {
			lv.haveG = true
			lv.next = len(lv.guids)
			d.mu.Unlock()
			break
		}
		if !lv.haveG {
			lv.guids = append(lv.guids[:0], oe.bySet[key]...)
			lv.haveG = true
		}
		end := lv.next + snapshotChunk
		if end > len(lv.guids) {
			end = len(lv.guids)
		}
		for ; lv.next < end; lv.next++ {
			if de := oe.entries[lv.guids[lv.next]]; de != nil && !de.dead {
				lv.cands = append(lv.cands, candidate{info: de.e.Info, regMs: de.e.RegisteredMs})
			}
		}
		d.mu.Unlock()
	}
	return lv.cands
}

// applyRotations moves every taken peer to the tail of the level list it was
// taken from — the paper's fairness rule — in one short locked batch after
// the walk. Peers that vanished between snapshot and apply are skipped by
// rotateToTail's no-op.
func (d *Directory) applyRotations(obj content.ObjectID, sets [4]geo.SetKey, rots []rotation) {
	if len(rots) == 0 {
		return
	}
	d.mu.Lock()
	if oe := d.objects[obj]; oe != nil {
		for _, r := range rots {
			key := sets[r.level]
			oe.bySet[key] = rotateToTail(oe.bySet[key], r.g)
		}
	}
	d.mu.Unlock()
}

func rotateToTail(list []id.GUID, g id.GUID) []id.GUID {
	for i, x := range list {
		if x == g {
			copy(list[i:], list[i+1:])
			list[len(list)-1] = g
			return list
		}
	}
	return list
}
