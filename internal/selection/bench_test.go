package selection

import (
	"math/rand"
	"testing"

	"netsession/internal/content"
	"netsession/internal/geo"
	"netsession/internal/id"
	"netsession/internal/protocol"
)

// BenchmarkSelect40 measures one full locality-aware selection against a
// directory holding 10,000 registrations of one hot object — the DN's hot
// path for popular content.
func BenchmarkSelect40(b *testing.B) {
	acfg := geo.DefaultAtlasConfig()
	acfg.TailCountries = 2
	atlas := geo.GenerateAtlas(acfg)
	scape := geo.NewEdgeScape(atlas)
	dir := NewDirectory(0)
	r := rand.New(rand.NewSource(1))
	oid := content.NewObjectID(1, "hot", 1)

	for i := 0; i < 10_000; i++ {
		rec, err := scape.AllocateRandom(r)
		if err != nil {
			b.Fatal(err)
		}
		dir.Register(oid, Entry{
			Info: protocol.PeerInfo{
				GUID: id.RandGUID(r), Addr: "a:1",
				NAT: protocol.NATClass(r.Intn(5)), ASN: uint32(rec.ASN),
			},
			Rec: rec, Complete: true, RegisteredMs: 0,
		})
	}
	req, err := scape.AllocateRandom(r)
	if err != nil {
		b.Fatal(err)
	}
	pol := DefaultPolicy()
	pol.SoftStateTTLMs = 0
	q := Query{
		Object: oid, Requester: req, RequesterGUID: id.RandGUID(r),
		RequesterNAT: protocol.NATNone, Rand: r,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := dir.Select(pol, q); len(got) == 0 {
			b.Fatal("empty selection")
		}
	}
}
