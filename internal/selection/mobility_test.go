package selection

import (
	"testing"

	"netsession/internal/geo"
	"netsession/internal/protocol"
)

// TestRegisterGeoMove is the regression test for the re-registration bug:
// a known peer re-registering with a changed geo record (a mobile peer that
// moved networks, §6) must have its locality membership moved, not left in
// the sets derived from its old record.
func TestRegisterGeoMove(t *testing.T) {
	f := newFixture(t)
	moved := f.addPeer(t, "US", 0, protocol.NATNone, 0)
	anchor := f.addPeer(t, "US", 0, protocol.NATNone, 0)

	// Re-register the first peer from Germany: same GUID, new record.
	de, _ := f.atlas.Country("DE")
	ip, err := f.scape.AllocateIP(de.ASNs[0], de.Locations[0])
	if err != nil {
		t.Fatal(err)
	}
	rec := f.scape.MustLookup(ip)
	movedEntry := moved
	movedEntry.Rec = rec
	movedEntry.Info.Addr = ip.String() + ":7000"
	movedEntry.Info.ASN = uint32(rec.ASN)
	movedEntry.RegisteredMs = 100
	f.dir.Register(f.obj, movedEntry)

	if got := f.dir.Copies(f.obj); got != 2 {
		t.Fatalf("Copies=%d after geo-move re-register, want 2 (no duplicate)", got)
	}

	// White-box: the GUID must have left every old-set list and joined the
	// new ones.
	g := moved.Info.GUID
	oe := f.dir.objects[f.obj]
	inList := func(key geo.SetKey) bool {
		for _, x := range oe.bySet[key] {
			if x == g {
				return true
			}
		}
		return false
	}
	oldSets := geo.SetsFor(moved.Rec)
	for _, key := range oldSets[:3] { // AS, country, continent of the old home
		if inList(key) {
			t.Errorf("GUID still listed in old locality set %v after move", key)
		}
	}
	for _, key := range geo.SetsFor(rec) {
		if !inList(key) {
			t.Errorf("GUID missing from new locality set %v after move", key)
		}
	}

	// Behavioral check: a US requester asking for one peer gets the anchor
	// (same AS), never the peer that moved to DE.
	pol := DefaultPolicy()
	pol.DiversityProb = 0
	got := f.dir.Select(pol, f.query(f.requesterIn(t, "US", 0), protocol.NATNone, 1))
	if len(got) != 1 || got[0].GUID != anchor.Info.GUID {
		t.Fatalf("US requester should get the US anchor peer after the other moved abroad")
	}
	// And a German requester finds the moved peer in its own AS set.
	reqIP, err := f.scape.AllocateIP(de.ASNs[0], de.Locations[0])
	if err != nil {
		t.Fatal(err)
	}
	got = f.dir.Select(pol, f.query(f.scape.MustLookup(reqIP), protocol.NATNone, 1))
	if len(got) != 1 || got[0].GUID != g {
		t.Fatalf("DE requester should get the moved peer from its AS set")
	}
}

// TestTombstoneCompaction exercises the lazy-removal lifecycle: unregistered
// peers become tombstones that selection skips and Copies excludes, a
// re-register resurrects a tombstone in place, and once tombstones outnumber
// live entries the object compacts back to live-only state.
func TestTombstoneCompaction(t *testing.T) {
	f := newFixture(t)
	var entries []Entry
	for i := 0; i < 10; i++ {
		entries = append(entries, f.addPeer(t, "US", 0, protocol.NATNone, 0))
	}

	// Tombstone 3 of 10: below the compaction threshold, so the dead GUIDs
	// are still physically present but invisible.
	for _, e := range entries[:3] {
		f.dir.Unregister(f.obj, e.Info.GUID)
	}
	oe := f.dir.objects[f.obj]
	if oe.dead != 3 || len(oe.entries) != 10 {
		t.Fatalf("dead=%d entries=%d, want 3 tombstones among 10 (no compaction yet)", oe.dead, len(oe.entries))
	}
	if got := f.dir.Copies(f.obj); got != 7 {
		t.Fatalf("Copies=%d with 3 tombstones, want 7", got)
	}
	pol := DefaultPolicy()
	pol.DiversityProb = 0
	got := f.dir.Select(pol, f.query(f.requesterIn(t, "US", 0), protocol.NATNone, 40))
	if len(got) != 7 {
		t.Fatalf("Select returned %d peers, want the 7 live ones", len(got))
	}
	for _, p := range got {
		for _, e := range entries[:3] {
			if p.GUID == e.Info.GUID {
				t.Fatalf("tombstoned peer %v returned by Select", p.GUID.Short())
			}
		}
	}

	// Resurrect one tombstone by re-registering it.
	back := entries[0]
	back.RegisteredMs = 50
	f.dir.Register(f.obj, back)
	if oe.dead != 2 || f.dir.Copies(f.obj) != 8 {
		t.Fatalf("dead=%d Copies=%d after resurrection, want 2 and 8", oe.dead, f.dir.Copies(f.obj))
	}

	// Push past the threshold. The 4th unregister of this batch makes 6
	// dead vs 4 live, triggering a compaction that sweeps all 6; the 5th
	// then leaves exactly one fresh tombstone among the 4 survivors.
	for _, e := range entries[3:8] {
		f.dir.Unregister(f.obj, e.Info.GUID)
	}
	if len(oe.entries) != 4 || oe.dead != 1 {
		t.Fatalf("entries=%d dead=%d after compaction, want 4 entries with 1 fresh tombstone", len(oe.entries), oe.dead)
	}
	if got := f.dir.Copies(f.obj); got != 3 {
		t.Fatalf("Copies=%d after compaction, want 3", got)
	}
	live := 0
	for key, list := range oe.bySet {
		for _, g := range list {
			if oe.entries[g] == nil {
				t.Fatalf("set %v lists a GUID with no entry after compaction", key)
			}
		}
		if key.Level == geo.LevelWorld {
			for _, g := range list {
				if !oe.entries[g].dead {
					live++
				}
			}
		}
	}
	if live != 3 {
		t.Fatalf("world set holds %d live GUIDs after compaction, want 3", live)
	}

	// Unregistering the rest removes the object entirely.
	f.dir.Register(f.obj, back) // idempotent refresh along the way
	for _, e := range entries[8:] {
		f.dir.Unregister(f.obj, e.Info.GUID)
	}
	f.dir.Unregister(f.obj, entries[0].Info.GUID)
	if f.dir.Objects() != 0 {
		t.Fatalf("Objects=%d after unregistering everything, want 0", f.dir.Objects())
	}
}
