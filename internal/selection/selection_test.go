package selection

import (
	"math/rand"
	"net"
	"net/netip"
	"testing"

	"netsession/internal/content"
	"netsession/internal/geo"
	"netsession/internal/id"
	"netsession/internal/protocol"
)

type fixture struct {
	atlas *geo.Atlas
	scape *geo.EdgeScape
	dir   *Directory
	rng   *rand.Rand
	obj   content.ObjectID
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	cfg := geo.DefaultAtlasConfig()
	cfg.TailCountries = 5
	atlas := geo.GenerateAtlas(cfg)
	return &fixture{
		atlas: atlas,
		scape: geo.NewEdgeScape(atlas),
		dir:   NewDirectory(0),
		rng:   rand.New(rand.NewSource(42)),
		obj:   content.NewObjectID(1, "obj", 1),
	}
}

// addPeer registers a peer homed in the given country/AS-index.
func (f *fixture) addPeer(t testing.TB, country geo.CountryCode, asIx int, natc protocol.NATClass, nowMs int64) Entry {
	t.Helper()
	c, ok := f.atlas.Country(country)
	if !ok {
		t.Fatalf("unknown country %s", country)
	}
	ip, err := f.scape.AllocateIP(c.ASNs[asIx%len(c.ASNs)], c.Locations[0])
	if err != nil {
		t.Fatal(err)
	}
	rec := f.scape.MustLookup(ip)
	e := Entry{
		Info: protocol.PeerInfo{
			GUID: id.RandGUID(f.rng), Addr: ip.String() + ":7000",
			NAT: natc, ASN: uint32(rec.ASN), Location: uint32(rec.Location),
		},
		Rec: rec, Complete: true, RegisteredMs: nowMs,
	}
	f.dir.Register(f.obj, e)
	return e
}

func (f *fixture) query(rec geo.Record, natc protocol.NATClass, max int) Query {
	return Query{
		Object: f.obj, Requester: rec, RequesterGUID: id.RandGUID(f.rng),
		RequesterNAT: natc, NowMs: 1000, Max: max, Rand: f.rng,
	}
}

func (f *fixture) requesterIn(t testing.TB, country geo.CountryCode, asIx int) geo.Record {
	t.Helper()
	c, _ := f.atlas.Country(country)
	ip, err := f.scape.AllocateIP(c.ASNs[asIx%len(c.ASNs)], c.Locations[1])
	if err != nil {
		t.Fatal(err)
	}
	return f.scape.MustLookup(ip)
}

func TestSelectPrefersLocality(t *testing.T) {
	f := newFixture(t)
	// 5 peers in the requester's AS, 5 elsewhere in the country, 5 abroad.
	var sameAS, sameCountry, abroad []id.GUID
	for i := 0; i < 5; i++ {
		sameAS = append(sameAS, f.addPeer(t, "US", 0, protocol.NATNone, 0).Info.GUID)
		sameCountry = append(sameCountry, f.addPeer(t, "US", 1, protocol.NATNone, 0).Info.GUID)
		abroad = append(abroad, f.addPeer(t, "DE", 0, protocol.NATNone, 0).Info.GUID)
	}
	req := f.requesterIn(t, "US", 0)
	pol := DefaultPolicy()
	pol.DiversityProb = 0 // make ordering deterministic
	got := f.dir.Select(pol, f.query(req, protocol.NATNone, 5))
	if len(got) != 5 {
		t.Fatalf("got %d peers, want 5", len(got))
	}
	inSet := func(g id.GUID, set []id.GUID) bool {
		for _, x := range set {
			if x == g {
				return true
			}
		}
		return false
	}
	for _, p := range got {
		if !inSet(p.GUID, sameAS) {
			t.Errorf("peer %v not from requester's AS", p.GUID.Short())
		}
	}
	// Asking for more than the AS can provide spills into the country set
	// before going abroad.
	got = f.dir.Select(pol, f.query(req, protocol.NATNone, 10))
	if len(got) != 10 {
		t.Fatalf("got %d peers, want 10", len(got))
	}
	for _, p := range got {
		if inSet(p.GUID, abroad) {
			t.Errorf("foreign peer %v selected while domestic peers remain", p.GUID.Short())
		}
	}
	// Asking for everything reaches the World set.
	got = f.dir.Select(pol, f.query(req, protocol.NATNone, 40))
	if len(got) != 15 {
		t.Fatalf("got %d peers, want all 15", len(got))
	}
}

// TestSelectRequiresOwnership: a directory whose region moved to another
// control-plane node must answer with no candidates — its entries are stale
// by definition — and resume answering when ownership returns.
func TestSelectRequiresOwnership(t *testing.T) {
	f := newFixture(t)
	for i := 0; i < 5; i++ {
		f.addPeer(t, "US", 0, protocol.NATNone, 0)
	}
	req := f.requesterIn(t, "US", 0)
	if got := f.dir.Select(DefaultPolicy(), f.query(req, protocol.NATNone, 5)); len(got) == 0 {
		t.Fatal("owned directory returned no peers")
	}
	f.dir.SetOwned(false)
	if got := f.dir.Select(DefaultPolicy(), f.query(req, protocol.NATNone, 5)); len(got) != 0 {
		t.Fatalf("disowned directory returned %d peers, want 0", len(got))
	}
	f.dir.SetOwned(true)
	if got := f.dir.Select(DefaultPolicy(), f.query(req, protocol.NATNone, 5)); len(got) == 0 {
		t.Fatal("re-owned directory returned no peers")
	}
}

func TestSelectFairnessRotation(t *testing.T) {
	f := newFixture(t)
	for i := 0; i < 6; i++ {
		f.addPeer(t, "US", 0, protocol.NATNone, 0)
	}
	req := f.requesterIn(t, "US", 0)
	pol := DefaultPolicy()
	pol.DiversityProb = 0
	first := f.dir.Select(pol, f.query(req, protocol.NATNone, 3))
	second := f.dir.Select(pol, f.query(req, protocol.NATNone, 3))
	// The second query must not return any of the first three: they moved
	// to the tail of the fairness list.
	seen := make(map[id.GUID]bool)
	for _, p := range first {
		seen[p.GUID] = true
	}
	for _, p := range second {
		if seen[p.GUID] {
			t.Errorf("peer %v selected twice in a row despite fairness rotation", p.GUID.Short())
		}
	}
	// A third query wraps around to the first batch again.
	third := f.dir.Select(pol, f.query(req, protocol.NATNone, 3))
	for _, p := range third {
		if !seen[p.GUID] {
			t.Errorf("rotation should have wrapped to the first batch")
		}
	}
}

func TestSelectNATFiltering(t *testing.T) {
	f := newFixture(t)
	sym := f.addPeer(t, "US", 0, protocol.NATSymmetric, 0)
	cone := f.addPeer(t, "US", 0, protocol.NATFullCone, 0)
	req := f.requesterIn(t, "US", 0)
	got := f.dir.Select(DefaultPolicy(), f.query(req, protocol.NATSymmetric, 40))
	if len(got) != 1 || got[0].GUID != cone.Info.GUID {
		t.Fatalf("symmetric requester should only get the cone peer, got %d peers", len(got))
	}
	_ = sym
	// With filtering off, both are returned.
	pol := DefaultPolicy()
	pol.RequireNATCompat = false
	got = f.dir.Select(pol, f.query(req, protocol.NATSymmetric, 40))
	if len(got) != 2 {
		t.Fatalf("unfiltered selection returned %d peers, want 2", len(got))
	}
}

func TestSelectSoftStateExpiry(t *testing.T) {
	f := newFixture(t)
	f.addPeer(t, "US", 0, protocol.NATNone, 0) // stale: registered at t=0
	fresh := f.addPeer(t, "US", 0, protocol.NATNone, 999)
	pol := DefaultPolicy()
	pol.SoftStateTTLMs = 500
	q := f.query(f.requesterIn(t, "US", 0), protocol.NATNone, 40)
	q.NowMs = 1000
	got := f.dir.Select(pol, q)
	if len(got) != 1 || got[0].GUID != fresh.Info.GUID {
		t.Fatalf("stale entry not filtered: got %d peers", len(got))
	}
	// Expire() physically purges.
	if purged := f.dir.Expire(1000, 500); purged != 1 {
		t.Fatalf("Expire purged %d, want 1", purged)
	}
	if f.dir.Copies(f.obj) != 1 {
		t.Fatalf("Copies=%d after expiry, want 1", f.dir.Copies(f.obj))
	}
}

func TestSelectExcludesRequester(t *testing.T) {
	f := newFixture(t)
	e := f.addPeer(t, "US", 0, protocol.NATNone, 0)
	q := f.query(e.Rec, protocol.NATNone, 40)
	q.RequesterGUID = e.Info.GUID
	if got := f.dir.Select(DefaultPolicy(), q); len(got) != 0 {
		t.Fatalf("requester returned as its own upload peer")
	}
}

func TestSelectDiversity(t *testing.T) {
	f := newFixture(t)
	for i := 0; i < 30; i++ {
		f.addPeer(t, "US", 0, protocol.NATNone, 0)
		f.addPeer(t, "DE", 0, protocol.NATNone, 0)
	}
	req := f.requesterIn(t, "US", 0)
	pol := DefaultPolicy()
	pol.DiversityProb = 0.5
	foreign := 0
	for trial := 0; trial < 50; trial++ {
		got := f.dir.Select(pol, f.query(req, protocol.NATNone, 10))
		for _, p := range got {
			rec := f.scape.MustLookup(mustAddr(t, p.Addr))
			if rec.Country != "US" {
				foreign++
			}
		}
	}
	if foreign == 0 {
		t.Error("diversity mechanism never picked a less specific set")
	}
}

func TestUnregisterAndDropPeer(t *testing.T) {
	f := newFixture(t)
	a := f.addPeer(t, "US", 0, protocol.NATNone, 0)
	b := f.addPeer(t, "US", 0, protocol.NATNone, 0)
	obj2 := content.NewObjectID(1, "obj2", 1)
	f.dir.Register(obj2, a)

	f.dir.Unregister(f.obj, a.Info.GUID)
	if f.dir.Copies(f.obj) != 1 {
		t.Fatalf("Copies=%d after unregister, want 1", f.dir.Copies(f.obj))
	}
	if f.dir.Copies(obj2) != 1 {
		t.Fatal("unregister of one object affected another")
	}
	f.dir.DropPeer(a.Info.GUID)
	if f.dir.Copies(obj2) != 0 {
		t.Fatal("DropPeer left registrations behind")
	}
	f.dir.DropPeer(b.Info.GUID)
	if f.dir.Objects() != 0 {
		t.Fatal("directory not empty after dropping all peers")
	}
}

func TestRegisterIdempotent(t *testing.T) {
	f := newFixture(t)
	e := f.addPeer(t, "US", 0, protocol.NATNone, 0)
	// Re-register same peer: refresh, not duplicate.
	e.RegisteredMs = 500
	f.dir.Register(f.obj, e)
	if f.dir.Copies(f.obj) != 1 {
		t.Fatalf("Copies=%d after re-register, want 1", f.dir.Copies(f.obj))
	}
	got := f.dir.Select(DefaultPolicy(), f.query(f.requesterIn(t, "US", 0), protocol.NATNone, 40))
	if len(got) != 1 {
		t.Fatalf("select returned %d, want 1", len(got))
	}
}

func TestClearSimulatesDNFailure(t *testing.T) {
	f := newFixture(t)
	for i := 0; i < 5; i++ {
		f.addPeer(t, "US", 0, protocol.NATNone, 0)
	}
	f.dir.Clear()
	if f.dir.Copies(f.obj) != 0 || f.dir.Objects() != 0 {
		t.Fatal("Clear left state behind")
	}
}

func TestRandomBaselineIgnoresLocality(t *testing.T) {
	f := newFixture(t)
	for i := 0; i < 40; i++ {
		f.addPeer(t, "DE", 0, protocol.NATNone, 0)
	}
	for i := 0; i < 2; i++ {
		f.addPeer(t, "US", 0, protocol.NATNone, 0)
	}
	req := f.requesterIn(t, "US", 0)
	pol := DefaultPolicy()
	pol.LocalityAware = false
	foreign := 0
	for trial := 0; trial < 20; trial++ {
		got := f.dir.Select(pol, f.query(req, protocol.NATNone, 10))
		if len(got) != 10 {
			t.Fatalf("got %d peers, want 10", len(got))
		}
		for _, p := range got {
			rec := f.scape.MustLookup(mustAddr(t, p.Addr))
			if rec.Country != "US" {
				foreign++
			}
		}
	}
	if foreign < 150 { // locality-aware would pick the 2 US peers first every time
		t.Errorf("random baseline looks locality-aware: %d foreign picks", foreign)
	}
}

func mustAddr(t testing.TB, hostport string) netip.Addr {
	t.Helper()
	host, _, err := net.SplitHostPort(hostport)
	if err != nil {
		t.Fatalf("bad hostport %q: %v", hostport, err)
	}
	a, err := netip.ParseAddr(host)
	if err != nil {
		t.Fatalf("bad host %q: %v", host, err)
	}
	return a
}
