package controlplane

import (
	"netsession/internal/cluster"
	"netsession/internal/geo"
)

// ApplyRingView reacts to a cluster membership change: regions the ring now
// assigns to this node are taken over (directory cleared, soft-state rebuild
// window opened, connected peers asked to RE-ADD), regions assigned away are
// released (directory cleared, their sessions dropped so the peers reconnect
// and get redirected to the new owner). The very first view only records the
// assignment — booting into a region is not a handoff.
//
// It runs on the membership's probe goroutine; each node applies its own
// observations independently, which is safe because the directory is soft
// state: a transiently split view costs at most a rebuild window, never
// correctness (§3.8).
func (cp *ControlPlane) ApplyRingView(v cluster.View) {
	cp.metrics.ringNodes.Set(float64(len(v.Nodes)))
	var gained, lost []geo.NetworkRegion
	cp.ownMu.Lock()
	first := !cp.ringApplied
	cp.ringApplied = true
	// A node booting a fresh cluster applies its first view silently —
	// booting into a region is not a handoff. A node joining an existing
	// cluster must not: peers in its assigned regions are attached to other
	// nodes, so those regions go through the real takeover path.
	silent := first && !cp.cfg.JoinExisting
	for r := 0; r < geo.NumRegions; r++ {
		region := geo.NetworkRegion(r)
		owner, ok := v.Owner(region.String())
		mine := ok && owner.ID == cp.cfg.NodeID
		if !mine && ok && len(owner.CNAddrs) > 0 {
			cp.ownerCN[r] = owner.CNAddrs[0]
		} else {
			cp.ownerCN[r] = ""
		}
		flipped := mine != cp.owned[r]
		cp.owned[r] = mine
		if silent {
			continue
		}
		// On a joining node's first view, even regions that were nominally
		// "owned" at boot (everything starts owned) count as gained.
		if mine && (flipped || (first && cp.cfg.JoinExisting)) {
			gained = append(gained, region)
		} else if !mine && flipped {
			lost = append(lost, region)
		}
	}
	// Propagate ownership to the directories even on the first view, so
	// Select never answers from an unowned region.
	for r := 0; r < geo.NumRegions; r++ {
		cp.dns[r].dir.SetOwned(cp.owned[r])
	}
	cp.ownMu.Unlock()

	for _, region := range lost {
		cp.releaseRegion(region)
	}
	for _, region := range gained {
		cp.takeoverRegion(region)
	}
}

// transferValidityMs bounds how long a pushed directory snapshot counts as
// fresh. A takeover arriving later than this (the drain stalled, or the
// marker is left over from an earlier drain) falls back to the rebuild
// path rather than trusting stale entries.
const transferValidityMs = 60_000

// takeoverRegion makes this node the region's directory authority. When a
// draining node pushed us its directory snapshot moments ago, the takeover
// is seamless: the directory is already populated, so no rebuild window
// opens and no peer is asked to RE-ADD. Otherwise (a crash, or a stale
// snapshot) whatever entries survived from a previous ownership are cleared
// and the PR 4 rebuild window opens so arriving peers RE-ADD their holdings
// before the directory answers queries — the same recovery path a DN crash
// takes.
func (cp *ControlPlane) takeoverRegion(r geo.NetworkRegion) {
	cp.metrics.regionHandoffs[int(r)].Inc()
	now := cp.now()
	cp.ownMu.Lock()
	transferred := cp.transferMs[int(r)] != 0 && now-cp.transferMs[int(r)] <= transferValidityMs
	cp.transferMs[int(r)] = 0
	cp.ownMu.Unlock()
	if transferred {
		return
	}
	cp.FailDN(r)
}

// releaseRegion drops a region this node no longer owns: the directory is
// cleared (its contents belong to the new owner's rebuild, not to us) and
// the region's control sessions are closed, which sends each peer through
// its reconnect path — rotation plus login redirect lands it on the owner.
func (cp *ControlPlane) releaseRegion(r geo.NetworkRegion) {
	cp.dns[int(r)].dir.Clear()
	cp.mu.Lock()
	var toDrop []*session
	for _, s := range cp.sessions {
		if s.region == r {
			toDrop = append(toDrop, s)
		}
	}
	cp.mu.Unlock()
	for _, s := range toDrop {
		s.closeConn()
	}
}

// OwnsRegion reports whether this node currently owns a region on the ring.
func (cp *ControlPlane) OwnsRegion(r geo.NetworkRegion) bool {
	cp.ownMu.Lock()
	defer cp.ownMu.Unlock()
	return cp.owned[int(r)]
}

// loginRoute decides what to do with a login from a region: serve it (owned
// is true), or reject it with the owner's CN address for the peer to
// reconnect to. The redirect may be empty when the owner's CN addresses are
// not yet known; the peer then falls back to its retry-after pacing.
func (cp *ControlPlane) loginRoute(r geo.NetworkRegion) (redirect string, owned bool) {
	cp.ownMu.Lock()
	defer cp.ownMu.Unlock()
	if cp.owned[int(r)] {
		return "", true
	}
	return cp.ownerCN[int(r)], false
}
