package controlplane

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"netsession/internal/accounting"
	"netsession/internal/content"
	"netsession/internal/edge"
	"netsession/internal/geo"
	"netsession/internal/id"
	"netsession/internal/protocol"
)

// harness wires a control plane with one CN over a small atlas.
type harness struct {
	t      *testing.T
	atlas  *geo.Atlas
	scape  *geo.EdgeScape
	minter *edge.TokenMinter
	cp     *ControlPlane
	cn     *CN
}

func newHarness(t *testing.T, mutate func(*Config)) *harness {
	t.Helper()
	acfg := geo.DefaultAtlasConfig()
	acfg.TailCountries = 2
	atlas := geo.GenerateAtlas(acfg)
	scape := geo.NewEdgeScape(atlas)
	minter := edge.NewTokenMinter([]byte("cp-test-key"))
	cfg := Config{
		Scape:        scape,
		Minter:       minter,
		Collector:    accounting.NewCollector(nil),
		ClientConfig: edge.DefaultClientConfig(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	cp, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cn, err := cp.StartCN("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cp.Close)
	return &harness{t: t, atlas: atlas, scape: scape, minter: minter, cp: cp, cn: cn}
}

// rawPeer is a minimal protocol-level client for driving the CN directly.
type rawPeer struct {
	t    *testing.T
	conn net.Conn
	guid id.GUID
	rec  geo.Record
	// incoming delivers every message read from the CN.
	incoming chan protocol.Message
}

func (h *harness) allocRecord(country geo.CountryCode) geo.Record {
	h.t.Helper()
	c, ok := h.atlas.Country(country)
	if !ok {
		h.t.Fatalf("unknown country %s", country)
	}
	ip, err := h.scape.AllocateIP(c.ASNs[0], c.Locations[0])
	if err != nil {
		h.t.Fatal(err)
	}
	return h.scape.MustLookup(ip)
}

func (h *harness) dialPeer(country geo.CountryCode, uploadsEnabled bool) *rawPeer {
	h.t.Helper()
	rec := h.allocRecord(country)
	conn, err := net.Dial("tcp", h.cn.Addr())
	if err != nil {
		h.t.Fatal(err)
	}
	p := &rawPeer{
		t: h.t, conn: conn, guid: id.NewGUID(), rec: rec,
		incoming: make(chan protocol.Message, 64),
	}
	h.t.Cleanup(func() { conn.Close() })
	err = protocol.WriteMessage(conn, &protocol.Login{
		GUID:            p.guid,
		SoftwareVersion: "test-1",
		UploadsEnabled:  uploadsEnabled,
		SwarmAddr:       "127.0.0.1:9",
		NAT:             protocol.NATNone,
		DeclaredIP:      rec.IP.String(),
	})
	if err != nil {
		h.t.Fatal(err)
	}
	go func() {
		for {
			m, err := protocol.ReadMessage(conn)
			if err != nil {
				close(p.incoming)
				return
			}
			p.incoming <- m
		}
	}()
	return p
}

// expect reads messages until one of the wanted type arrives.
func expect[T protocol.Message](p *rawPeer) T {
	p.t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case m, ok := <-p.incoming:
			if !ok {
				p.t.Fatalf("connection closed waiting for %T", *new(T))
			}
			if want, ok := m.(T); ok {
				return want
			}
		case <-deadline:
			p.t.Fatalf("timeout waiting for %T", *new(T))
		}
	}
}

func (p *rawPeer) send(m protocol.Message) {
	p.t.Helper()
	if err := protocol.WriteMessage(p.conn, m); err != nil {
		p.t.Fatal(err)
	}
}

func (h *harness) token(g id.GUID, oid content.ObjectID, p2p bool) []byte {
	return h.minter.Mint(edge.Claims{
		GUID: g, Object: oid,
		ExpiresMs: time.Now().UnixMilli() + 60_000, P2P: p2p,
	})
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	waitUntil(t, 5*time.Second, cond, "timeout waiting for %s", what)
}

func TestLoginRecordsAndSession(t *testing.T) {
	h := newHarness(t, nil)
	p := h.dialPeer("US", true)
	ack := expect[*protocol.LoginAck](p)
	if !ack.OK {
		t.Fatal("login rejected")
	}
	cfg := expect[*protocol.ConfigUpdate](p)
	if cfg.MaxUploadConns == 0 {
		t.Error("config update missing upload connection limit")
	}
	waitFor(t, "session registration", func() bool { return h.cp.Connected(p.guid) })
	log := h.cp.Collector().Snapshot()
	if len(log.Logins) != 1 {
		t.Fatalf("%d login records, want 1", len(log.Logins))
	}
	if log.Logins[0].IP != p.rec.IP {
		t.Errorf("login record IP %v, want declared %v", log.Logins[0].IP, p.rec.IP)
	}
	// Ping/pong liveness.
	p.send(&protocol.Ping{Nonce: 99})
	if pong := expect[*protocol.Pong](p); pong.Nonce != 99 {
		t.Error("pong nonce mismatch")
	}
}

func TestRegisterQueryConnectTo(t *testing.T) {
	h := newHarness(t, nil)
	oid := content.NewObjectID(7, "file", 1)

	up := h.dialPeer("US", true)
	expect[*protocol.LoginAck](up)
	up.send(&protocol.Register{Object: oid, NumPieces: 10, HaveCount: 10, Complete: true})

	region := geo.RegionOf(up.rec)
	waitFor(t, "registration", func() bool { return h.cp.DN(region).Copies(oid) == 1 })

	down := h.dialPeer("US", false)
	expect[*protocol.LoginAck](down)
	down.send(&protocol.Query{Object: oid, Token: h.token(down.guid, oid, true), MaxPeers: 40})
	qr := expect[*protocol.QueryResult](down)
	if qr.Err != "" {
		t.Fatalf("query error: %s", qr.Err)
	}
	if len(qr.Peers) != 1 || qr.Peers[0].GUID != up.guid {
		t.Fatalf("query returned %d peers, want the uploader", len(qr.Peers))
	}
	// The uploader is instructed to connect back to the downloader.
	ct := expect[*protocol.ConnectTo](up)
	if ct.Object != oid || ct.Peer.GUID != down.guid {
		t.Error("connect-to does not target the downloader")
	}
}

func TestQueryAuthorization(t *testing.T) {
	h := newHarness(t, nil)
	oid := content.NewObjectID(7, "file", 1)
	p := h.dialPeer("US", false)
	expect[*protocol.LoginAck](p)

	// Garbage token.
	p.send(&protocol.Query{Object: oid, Token: []byte("junk"), MaxPeers: 10})
	if qr := expect[*protocol.QueryResult](p); qr.Err == "" {
		t.Error("garbage token accepted")
	}
	// Valid token for the wrong object.
	other := content.NewObjectID(7, "other", 1)
	p.send(&protocol.Query{Object: oid, Token: h.token(p.guid, other, true), MaxPeers: 10})
	if qr := expect[*protocol.QueryResult](p); qr.Err == "" {
		t.Error("wrong-object token accepted")
	}
	// Token minted for a different peer.
	p.send(&protocol.Query{Object: oid, Token: h.token(id.NewGUID(), oid, true), MaxPeers: 10})
	if qr := expect[*protocol.QueryResult](p); qr.Err == "" {
		t.Error("stolen token accepted")
	}
	// Token without the p2p bit (provider disabled peer delivery).
	p.send(&protocol.Query{Object: oid, Token: h.token(p.guid, oid, false), MaxPeers: 10})
	if qr := expect[*protocol.QueryResult](p); qr.Err == "" {
		t.Error("non-p2p token accepted for peer search")
	}
}

func TestRegisterRequiresUploadsEnabled(t *testing.T) {
	h := newHarness(t, nil)
	oid := content.NewObjectID(7, "file", 1)
	p := h.dialPeer("US", false) // uploads disabled
	expect[*protocol.LoginAck](p)
	p.send(&protocol.Register{Object: oid, NumPieces: 1, HaveCount: 1, Complete: true})
	// The session handles messages in order, so a ping-pong round trip
	// proves the register was processed — no fixed sleep.
	p.send(&protocol.Ping{Nonce: 1})
	expect[*protocol.Pong](p)
	if got := h.cp.DN(geo.RegionOf(p.rec)).Copies(oid); got != 0 {
		t.Fatalf("upload-disabled peer registered: copies=%d", got)
	}
}

func TestReAddAfterDNFailure(t *testing.T) {
	h := newHarness(t, nil)
	oid := content.NewObjectID(7, "file", 1)
	p := h.dialPeer("US", true)
	expect[*protocol.LoginAck](p)
	p.send(&protocol.Register{Object: oid, NumPieces: 4, HaveCount: 4, Complete: true})
	region := geo.RegionOf(p.rec)
	waitFor(t, "registration", func() bool { return h.cp.DN(region).Copies(oid) == 1 })

	h.cp.FailDN(region)
	if h.cp.DN(region).Copies(oid) != 0 {
		t.Fatal("DN failure did not clear the directory")
	}
	// The peer receives RE-ADD and answers with its object list.
	expect[*protocol.ReAdd](p)
	p.send(&protocol.ReAddReply{Entries: []protocol.ReAddEntry{
		{Object: oid, NumPieces: 4, HaveCount: 4, Complete: true},
	}})
	waitFor(t, "directory repopulation", func() bool { return h.cp.DN(region).Copies(oid) == 1 })
}

// TestDNRebuildWindow: after a DN loss the directory opens a rebuild window
// during which queries answer edge-only while peers RE-ADD their holdings;
// once the window closes, queries see the rebuilt directory — no control
// plane restart involved. The window is visible in telemetry: announces are
// counted per region, a gauge marks the window, and its duration lands in
// the dn_rebuild_ms histogram.
func TestDNRebuildWindow(t *testing.T) {
	h := newHarness(t, func(c *Config) { c.DNRebuildWindowMs = 500 })
	oid := content.NewObjectID(7, "file", 1)

	holder := h.dialPeer("US", true)
	expect[*protocol.LoginAck](holder)
	holder.send(&protocol.Register{Object: oid, NumPieces: 4, HaveCount: 4, Complete: true})
	region := geo.RegionOf(holder.rec)
	waitFor(t, "registration", func() bool { return h.cp.DN(region).Copies(oid) == 1 })

	querier := h.dialPeer("US", true)
	expect[*protocol.LoginAck](querier)
	if geo.RegionOf(querier.rec) != region {
		t.Fatalf("querier in region %v, holder in %v", geo.RegionOf(querier.rec), region)
	}

	h.cp.FailDN(region)
	expect[*protocol.ReAdd](holder)
	holder.send(&protocol.ReAddReply{Entries: []protocol.ReAddEntry{
		{Object: oid, NumPieces: 4, HaveCount: 4, Complete: true},
	}})
	waitFor(t, "re-announce absorbed", func() bool { return h.cp.DN(region).Copies(oid) == 1 })

	// Mid-window: the directory already has the entry back, but a query
	// still answers edge-only rather than serving a partial view.
	querier.send(&protocol.Query{Object: oid, Token: h.token(querier.guid, oid, true), MaxPeers: 40})
	if qr := expect[*protocol.QueryResult](querier); qr.Err != "" || len(qr.Peers) != 0 {
		t.Fatalf("mid-rebuild query: err=%q peers=%d, want empty edge-only answer",
			qr.Err, len(qr.Peers))
	}
	annKey := `dn_rebuild_announces_total{region="` + region.String() + `"}`
	gaugeKey := `dn_rebuilding{region="` + region.String() + `"}`
	snap := h.cp.Metrics().Snapshot()
	if snap.Counters[annKey] == 0 {
		t.Fatalf("%s = 0, want the RE-ADD counted", annKey)
	}
	if snap.Gauges[gaugeKey] != 1 {
		t.Fatalf("%s = %v during the window, want 1", gaugeKey, snap.Gauges[gaugeKey])
	}

	// Past the window: the same query converges back to the pre-failure
	// candidate set.
	waitFor(t, "rebuild window close", func() bool {
		return !h.cp.DN(region).Rebuilding(wallNowMs())
	})
	querier.send(&protocol.Query{Object: oid, Token: h.token(querier.guid, oid, true), MaxPeers: 40})
	if qr := expect[*protocol.QueryResult](querier); len(qr.Peers) != 1 || qr.Peers[0].GUID != holder.guid {
		t.Fatalf("post-rebuild query returned %d peers, want the holder", len(qr.Peers))
	}
	snap = h.cp.Metrics().Snapshot()
	if hs := snap.Histograms["dn_rebuild_ms"]; hs.Count == 0 {
		t.Fatal("dn_rebuild_ms not observed after the window closed")
	}
	if snap.Gauges[gaugeKey] != 0 {
		t.Fatalf("%s = %v after the window, want 0", gaugeKey, snap.Gauges[gaugeKey])
	}
}

func TestSessionSheddingWhenOverloaded(t *testing.T) {
	h := newHarness(t, func(c *Config) { c.MaxSessionsPerCN = 1 })
	p1 := h.dialPeer("US", true)
	if ack := expect[*protocol.LoginAck](p1); !ack.OK {
		t.Fatal("first login rejected")
	}
	p2 := h.dialPeer("US", true)
	ack := expect[*protocol.LoginAck](p2)
	if ack.OK {
		t.Fatal("overload login accepted")
	}
	if ack.RetryAfterMs == 0 {
		t.Error("shed login lacks retry-after")
	}
}

func TestSessionReplacedOnReconnect(t *testing.T) {
	h := newHarness(t, nil)
	p1 := h.dialPeer("US", true)
	expect[*protocol.LoginAck](p1)
	waitFor(t, "session", func() bool { return h.cp.SessionCount() == 1 })

	// Same GUID reconnects (e.g. after a network blip the old socket is
	// still lingering); the new session replaces the old.
	conn, err := net.Dial("tcp", h.cn.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	err = protocol.WriteMessage(conn, &protocol.Login{
		GUID: p1.guid, SwarmAddr: "127.0.0.1:10", DeclaredIP: p1.rec.IP.String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "old session replaced", func() bool {
		_, ok := <-p1.incoming // drained until closed
		return !ok
	})
	if h.cp.SessionCount() != 1 {
		t.Fatalf("SessionCount=%d, want 1", h.cp.SessionCount())
	}
}

func TestStatsVerificationFiltersForgedReports(t *testing.T) {
	ledger := edge.NewLedger()
	var collector *accounting.Collector
	h := newHarness(t, func(c *Config) {
		collector = accounting.NewCollector(&accounting.LedgerVerifier{Edge: ledger})
		c.Collector = collector
	})
	oid := content.NewObjectID(7, "file", 1)
	p := h.dialPeer("US", true)
	expect[*protocol.LoginAck](p)

	// Forged: never authorized by the edge.
	p.send(&protocol.StatsReport{Object: oid, CP: 7, Size: 100, BytesInfra: 100})
	waitFor(t, "rejected report", func() bool { return collector.Rejected() == 1 })

	// Legitimate: authorized, and claimed infra bytes within what the edge
	// served.
	ledger.RecordAuthorization(p.guid, oid)
	ledger.RecordServed(p.guid, oid, 1000)
	p.send(&protocol.StatsReport{Object: oid, CP: 7, Size: 1000, BytesInfra: 900,
		Token: h.token(p.guid, oid, true)})
	waitFor(t, "accepted report", func() bool {
		return len(collector.Snapshot().Downloads) == 1
	})
	rec := collector.Snapshot().Downloads[0]
	if !rec.P2PEnabled {
		t.Error("p2p flag not recovered from token")
	}
	if rec.IP != p.rec.IP {
		t.Error("download record not attributed to declared IP")
	}

	// Inflated: claims more infra bytes than the edge served.
	p.send(&protocol.StatsReport{Object: oid, CP: 7, Size: 1e9,
		BytesInfra: 1 << 40, Token: h.token(p.guid, oid, true)})
	waitFor(t, "second rejection", func() bool { return collector.Rejected() == 2 })
}

func TestMonitorIngestAndHTTP(t *testing.T) {
	m := NewMonitor(4)
	if err := m.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 6; i++ {
		m.Ingest(Report{TimeMs: int64(i), GUID: "g", Kind: "crash", Detail: "x"})
	}
	if m.Count("crash") != 6 {
		t.Fatalf("Count=%d, want 6", m.Count("crash"))
	}
	if got := len(m.Recent()); got != 4 {
		t.Fatalf("ring kept %d, want 4", got)
	}
}

func TestStatusSnapshot(t *testing.T) {
	h := newHarness(t, nil)
	oid := content.NewObjectID(5, "s", 1)
	p := h.dialPeer("US", true)
	expect[*protocol.LoginAck](p)
	p.send(&protocol.Register{Object: oid, NumPieces: 1, HaveCount: 1, Complete: true})
	waitFor(t, "registration", func() bool {
		return h.cp.DN(geo.RegionOf(p.rec)).Copies(oid) == 1
	})

	st := h.cp.Status()
	if st.Sessions != 1 || st.CNs != 1 {
		t.Errorf("sessions=%d cns=%d", st.Sessions, st.CNs)
	}
	total := 0
	for _, r := range st.Regions {
		total += r.Objects
	}
	if total != 1 {
		t.Errorf("directory objects=%d, want 1", total)
	}
	// And over HTTP via the handler.
	srv := httptest.NewServer(h.cp.StatusHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got Status
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Sessions != 1 {
		t.Errorf("HTTP status sessions=%d", got.Sessions)
	}
}

func TestMonitorAlerts(t *testing.T) {
	m := NewMonitor(16)
	m.SetAlertThreshold("crash", 3)
	for i := 0; i < 5; i++ {
		m.Ingest(Report{Kind: "crash"})
	}
	m.Ingest(Report{Kind: "other"})
	alerts := m.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("got %d alerts, want exactly 1 (raised once at threshold)", len(alerts))
	}
	if alerts[0].Kind != "crash" || alerts[0].Count != 3 {
		t.Errorf("alert %+v", alerts[0])
	}
}
