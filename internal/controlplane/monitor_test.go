package controlplane

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"netsession/internal/analysis"
	"netsession/internal/telemetry"
)

func startMonitor(t *testing.T) *Monitor {
	t.Helper()
	m := NewMonitor(16)
	if err := m.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func postReport(t *testing.T, m *Monitor, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post("http://"+m.Addr()+"/v1/report", "application/json",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestMonitorRejectsMalformedReports(t *testing.T) {
	m := startMonitor(t)

	if resp := postReport(t, m, []byte(`{"kind":"crash","guid":"g"}`)); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("valid report: status %d", resp.StatusCode)
	}
	if resp := postReport(t, m, []byte(`{not json`)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	if resp := postReport(t, m, []byte(`{"kind":"  ","guid":"g"}`)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("blank kind: status %d, want 400", resp.StatusCode)
	}
	// Oversized body: a detail string past maxReportBody.
	big := `{"kind":"crash","detail":"` + strings.Repeat("x", maxReportBody+1) + `"}`
	if resp := postReport(t, m, []byte(big)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized body: status %d, want 400", resp.StatusCode)
	}
	if got := m.Count("crash"); got != 1 {
		t.Errorf("crash count %d, want 1 (rejects must not land)", got)
	}

	snap := m.Metrics().Snapshot()
	if got := snap.Counters["monitor_reports_rejected_total"]; got != 3 {
		t.Errorf("rejected counter %d, want 3", got)
	}
}

func TestMonitorScrapeAndAggregate(t *testing.T) {
	m := startMonitor(t)

	// Two fake components, each with its own registry.
	mk := func(n int64) *httptest.Server {
		reg := telemetry.NewRegistry()
		reg.Counter("widget_total", "widgets", nil).Add(n)
		mux := http.NewServeMux()
		telemetry.Mount(mux, reg)
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		return srv
	}
	a, b := mk(3), mk(4)
	m.SetScrapeTargets(map[string]string{"a": a.URL, "b": b.URL, "down": "http://127.0.0.1:1"})
	m.ScrapeOnce()

	agg := m.Aggregate()
	if got := agg.Counters["widget_total"]; got != 7 {
		t.Errorf("aggregate widget_total=%d, want 7", got)
	}
	snap := m.Metrics().Snapshot()
	if snap.Counters["monitor_scrapes_total"] != 2 || snap.Counters["monitor_scrape_errors_total"] != 1 {
		t.Errorf("scrape counters: %+v", snap.Counters)
	}

	// The health summary carries the fleet aggregate.
	resp, err := http.Get("http://" + m.Addr() + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "widget_total") {
		t.Errorf("health summary missing fleet aggregate: %s", buf.String())
	}
}

// TestMonitorScrapeTimeout: a target that hangs past the per-target timeout
// counts as a scrape error and never blocks the healthy targets' snapshots.
func TestMonitorScrapeTimeout(t *testing.T) {
	m := startMonitor(t)

	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		<-release
	}))
	t.Cleanup(func() { close(release); slow.Close() })

	reg := telemetry.NewRegistry()
	reg.Counter("fast_total", "fast", nil).Inc()
	mux := http.NewServeMux()
	telemetry.Mount(mux, reg)
	fast := httptest.NewServer(mux)
	t.Cleanup(fast.Close)

	m.SetScrapeTargets(map[string]string{"slow": slow.URL, "fast": fast.URL})
	m.SetScrapePolicy(50*time.Millisecond, 0)
	start := time.Now()
	m.ScrapeOnce()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("ScrapeOnce blocked %v on a hung target", elapsed)
	}
	if got := m.Aggregate().Counters["fast_total"]; got != 1 {
		t.Errorf("healthy target not scraped alongside hung one: %d", got)
	}
	snap := m.Metrics().Snapshot()
	if snap.Counters["monitor_scrape_errors_total"] != 1 {
		t.Errorf("hung target not counted as scrape error: %+v", snap.Counters)
	}
}

// TestMonitorStaleEviction: a component that dies keeps its last snapshot
// only until the stale deadline; the next scrape cycle after that removes it
// from the fleet aggregate entirely.
func TestMonitorStaleEviction(t *testing.T) {
	m := startMonitor(t)
	reg := telemetry.NewRegistry()
	reg.Counter("dying_total", "", nil).Add(9)
	mux := http.NewServeMux()
	telemetry.Mount(mux, reg)
	srv := httptest.NewServer(mux)

	m.SetScrapeTargets(map[string]string{"dying": srv.URL})
	m.SetScrapePolicy(time.Second, 50*time.Millisecond)
	m.ScrapeOnce()
	if got := m.Aggregate().Counters["dying_total"]; got != 9 {
		t.Fatalf("initial scrape missing: %d", got)
	}

	srv.Close() // the component dies
	// Keep scraping until the stale snapshot crosses the 50ms deadline and
	// is evicted — bounded polling instead of a fixed sleep on the budget.
	waitUntil(t, 5*time.Second, func() bool {
		m.ScrapeOnce()
		return m.Metrics().Snapshot().Counters["monitor_scrape_evictions_total"] == 1
	}, "dead component never evicted (eviction not counted)")
	if got := m.Aggregate().Counters["dying_total"]; got != 0 {
		t.Errorf("dead component still in fleet aggregate: dying_total=%d", got)
	}
	// A live component scraped on the same cadence is not evicted.
	reg2 := telemetry.NewRegistry()
	reg2.Counter("alive_total", "", nil).Inc()
	mux2 := http.NewServeMux()
	telemetry.Mount(mux2, reg2)
	srv2 := httptest.NewServer(mux2)
	t.Cleanup(srv2.Close)
	m.SetScrapeTargets(map[string]string{"alive": srv2.URL})
	m.ScrapeOnce()
	if got := m.Aggregate().Counters["alive_total"]; got != 1 {
		t.Errorf("live component evicted: %d", got)
	}
}

// TestMonitorFleetAnalytics: analytics documents scraped from several CPs
// merge into one fleet view — tallies sum, GUID sketches union — and targets
// without the endpoint are skipped silently.
func TestMonitorFleetAnalytics(t *testing.T) {
	m := startMonitor(t)

	mkCP := func(guids []string, peers int64) *httptest.Server {
		s := analysis.NewStreamingSummarizer(1)
		for _, g := range guids {
			s.Observe(&analysis.OfflineDownload{
				GUID: g, URLHash: "u1", Region: "EU-West",
				BytesInfra: 100, BytesPeers: peers, Outcome: "completed",
			})
		}
		mux := http.NewServeMux()
		reg := telemetry.NewRegistry()
		telemetry.Mount(mux, reg)
		mux.HandleFunc("GET /v1/analytics", func(w http.ResponseWriter, _ *http.Request) {
			json.NewEncoder(w).Encode(s.Snapshot())
		})
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		return srv
	}
	// "g2" reports through both CPs; the fleet must count it once.
	cp1 := mkCP([]string{"g1", "g2"}, 300)
	cp2 := mkCP([]string{"g2", "g3"}, 100)
	// An edge-like target: telemetry only, no analytics endpoint.
	edgeMux := http.NewServeMux()
	telemetry.Mount(edgeMux, telemetry.NewRegistry())
	edge := httptest.NewServer(edgeMux)
	t.Cleanup(edge.Close)

	m.SetScrapeTargets(map[string]string{"cp1": cp1.URL, "cp2": cp2.URL, "edge": edge.URL})
	m.ScrapeOnce()

	fleet, ok := m.FleetAnalytics()
	if !ok {
		t.Fatal("no fleet analytics after scraping two CPs")
	}
	if fleet.Downloads != 4 {
		t.Errorf("fleet downloads %d, want 4", fleet.Downloads)
	}
	if fleet.BytesPeers != 800 || fleet.BytesInfra != 400 {
		t.Errorf("fleet bytes (peers %d, infra %d), want (800, 400)", fleet.BytesPeers, fleet.BytesInfra)
	}
	if est := int(fleet.ActiveGUIDs + 0.5); est != 3 {
		t.Errorf("fleet ActiveGUIDs %.2f, want ~3 (sketch union, g2 deduped)", fleet.ActiveGUIDs)
	}
	if len(fleet.Regions) != 1 || fleet.Regions[0].Region != "EU-West" || fleet.Regions[0].Downloads != 4 {
		t.Errorf("fleet regions %+v", fleet.Regions)
	}
	if snap := m.Metrics().Snapshot(); snap.Counters["monitor_scrape_errors_total"] != 0 {
		t.Errorf("missing analytics endpoint counted as error: %+v", snap.Counters)
	}

	// The monitor re-serves the merged view on its own /v1/analytics.
	resp, err := http.Get("http://" + m.Addr() + "/v1/analytics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var served analysis.StreamingSummary
	if err := json.NewDecoder(resp.Body).Decode(&served); err != nil {
		t.Fatal(err)
	}
	if served.Downloads != 4 || served.OffloadPct != fleet.OffloadPct {
		t.Errorf("served fleet analytics %+v diverges from FleetAnalytics", served)
	}
}

// TestMonitorHealthShowsDeadTarget: a scrape target that stops answering
// must stay visible on /v1/health with its last error and timestamp — a
// dead control-plane node is an operator-facing fact, not something to
// silently drop from the fleet view.
func TestMonitorHealthShowsDeadTarget(t *testing.T) {
	m := startMonitor(t)
	reg := telemetry.NewRegistry()
	reg.Counter("ok_total", "", nil).Inc()
	mux := http.NewServeMux()
	telemetry.Mount(mux, reg)
	alive := httptest.NewServer(mux)
	t.Cleanup(alive.Close)
	reg2 := telemetry.NewRegistry()
	mux2 := http.NewServeMux()
	telemetry.Mount(mux2, reg2)
	dead := httptest.NewServer(mux2)

	m.SetScrapeTargets(map[string]string{"alive": alive.URL, "dead": dead.URL})
	m.SetScrapePolicy(time.Second, 50*time.Millisecond)
	m.ScrapeOnce() // both healthy
	dead.Close()   // then one dies
	m.ScrapeOnce() // records the scrape error

	resp, err := http.Get("http://" + m.Addr() + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sum struct {
		Components map[string]struct {
			LastScrape  time.Time `json:"lastScrape"`
			LastError   string    `json:"lastError"`
			LastErrorAt time.Time `json:"lastErrorAt"`
		} `json:"components"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	dc, ok := sum.Components["dead"]
	if !ok {
		t.Fatalf("dead target missing from /v1/health components: %+v", sum.Components)
	}
	if dc.LastError == "" || dc.LastErrorAt.IsZero() {
		t.Errorf("dead target lacks error annotation: %+v", dc)
	}
	ac, ok := sum.Components["alive"]
	if !ok || ac.LastError != "" || ac.LastScrape.IsZero() {
		t.Errorf("alive target misreported: %+v (ok=%v)", ac, ok)
	}

	// Even after the stale snapshot is evicted from the aggregate, the
	// error annotation survives: the operator still sees why.
	waitUntil(t, 5*time.Second, func() bool {
		m.ScrapeOnce()
		return m.Metrics().Snapshot().Counters["monitor_scrape_evictions_total"] >= 1
	}, "stale dead-target snapshot never evicted")
	resp2, err := http.Get("http://" + m.Addr() + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if dc, ok := sum.Components["dead"]; !ok || dc.LastError == "" {
		t.Errorf("dead target's error vanished after eviction: %+v (ok=%v)", dc, ok)
	}
}

func TestMonitorStartScrapingLoop(t *testing.T) {
	m := startMonitor(t)
	reg := telemetry.NewRegistry()
	reg.Counter("tick_total", "ticks", nil).Inc()
	mux := http.NewServeMux()
	telemetry.Mount(mux, reg)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	m.SetScrapeTargets(map[string]string{"c": srv.URL})
	stop := m.StartScraping(20 * time.Millisecond)
	defer stop()
	waitUntil(t, 5*time.Second, func() bool {
		return m.Aggregate().Counters["tick_total"] == 1
	}, "periodic scrape never delivered a snapshot")
}
