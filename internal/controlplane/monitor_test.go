package controlplane

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"netsession/internal/telemetry"
)

func startMonitor(t *testing.T) *Monitor {
	t.Helper()
	m := NewMonitor(16)
	if err := m.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func postReport(t *testing.T, m *Monitor, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post("http://"+m.Addr()+"/v1/report", "application/json",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestMonitorRejectsMalformedReports(t *testing.T) {
	m := startMonitor(t)

	if resp := postReport(t, m, []byte(`{"kind":"crash","guid":"g"}`)); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("valid report: status %d", resp.StatusCode)
	}
	if resp := postReport(t, m, []byte(`{not json`)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	if resp := postReport(t, m, []byte(`{"kind":"  ","guid":"g"}`)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("blank kind: status %d, want 400", resp.StatusCode)
	}
	// Oversized body: a detail string past maxReportBody.
	big := `{"kind":"crash","detail":"` + strings.Repeat("x", maxReportBody+1) + `"}`
	if resp := postReport(t, m, []byte(big)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized body: status %d, want 400", resp.StatusCode)
	}
	if got := m.Count("crash"); got != 1 {
		t.Errorf("crash count %d, want 1 (rejects must not land)", got)
	}

	snap := m.Metrics().Snapshot()
	if got := snap.Counters["monitor_reports_rejected_total"]; got != 3 {
		t.Errorf("rejected counter %d, want 3", got)
	}
}

func TestMonitorScrapeAndAggregate(t *testing.T) {
	m := startMonitor(t)

	// Two fake components, each with its own registry.
	mk := func(n int64) *httptest.Server {
		reg := telemetry.NewRegistry()
		reg.Counter("widget_total", "widgets", nil).Add(n)
		mux := http.NewServeMux()
		telemetry.Mount(mux, reg)
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		return srv
	}
	a, b := mk(3), mk(4)
	m.SetScrapeTargets(map[string]string{"a": a.URL, "b": b.URL, "down": "http://127.0.0.1:1"})
	m.ScrapeOnce()

	agg := m.Aggregate()
	if got := agg.Counters["widget_total"]; got != 7 {
		t.Errorf("aggregate widget_total=%d, want 7", got)
	}
	snap := m.Metrics().Snapshot()
	if snap.Counters["monitor_scrapes_total"] != 2 || snap.Counters["monitor_scrape_errors_total"] != 1 {
		t.Errorf("scrape counters: %+v", snap.Counters)
	}

	// The health summary carries the fleet aggregate.
	resp, err := http.Get("http://" + m.Addr() + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "widget_total") {
		t.Errorf("health summary missing fleet aggregate: %s", buf.String())
	}
}

func TestMonitorStartScrapingLoop(t *testing.T) {
	m := startMonitor(t)
	reg := telemetry.NewRegistry()
	reg.Counter("tick_total", "ticks", nil).Inc()
	mux := http.NewServeMux()
	telemetry.Mount(mux, reg)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	m.SetScrapeTargets(map[string]string{"c": srv.URL})
	stop := m.StartScraping(20 * time.Millisecond)
	defer stop()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m.Aggregate().Counters["tick_total"] == 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("periodic scrape never delivered a snapshot")
}
