package controlplane

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"time"

	"netsession/internal/cluster"
	"netsession/internal/content"
	"netsession/internal/geo"
	"netsession/internal/id"
	"netsession/internal/logpipe"
	"netsession/internal/protocol"
	"netsession/internal/selection"
)

// Cluster-internal endpoints on the operator HTTP surface.
const (
	// DrainPath triggers a planned drain of the receiving node.
	DrainPath = "/v1/drain"
	// HandoffPath receives a draining node's directory snapshot for one
	// region.
	HandoffPath = "/v1/handoff"
	// LeavePath announces a node's planned departure to a survivor.
	LeavePath = "/v1/cluster/leave"
)

// DrainRegion summarizes one region's handoff inside a DrainSummary.
type DrainRegion struct {
	Region   string `json:"region"`
	NewOwner string `json:"newOwner"`
	Entries  int    `json:"entries"`
}

// DrainSummary reports what a planned drain did.
type DrainSummary struct {
	NodeID string `json:"nodeId"`
	// Survivors is how many alive nodes remained to take the load.
	Survivors int `json:"survivors"`
	// Regions lists every owned region handed off with its snapshot size.
	Regions []DrainRegion `json:"regions"`
	// EntriesTransferred totals the directory entries pushed.
	EntriesTransferred int `json:"entriesTransferred"`
	// AcksFlushed is how many batch-ack keys were pushed to survivors.
	AcksFlushed int `json:"acksFlushed"`
}

// handoffEntry is one directory registration on the wire. The object ID
// travels in its full-length hex form; the peer's IP lets the receiver
// re-resolve the geo record against its own EdgeScape.
type handoffEntry struct {
	Object       string `json:"object"`
	GUID         string `json:"guid"`
	Addr         string `json:"addr"`
	NAT          uint8  `json:"nat"`
	ASN          uint32 `json:"asn"`
	Location     uint32 `json:"location"`
	IP           string `json:"ip,omitempty"`
	Complete     bool   `json:"complete"`
	RegisteredMs int64  `json:"registeredMs"`
}

// handoffRequest is a draining node's directory snapshot for one region.
type handoffRequest struct {
	From    string         `json:"from"`
	Region  string         `json:"region"`
	Entries []handoffEntry `json:"entries"`
}

// leaveRequest announces a planned departure.
type leaveRequest struct {
	NodeID string `json:"nodeId"`
}

// Drain removes this node from the cluster gracefully: every owned region's
// directory snapshot is pushed to its new owner (so the takeover skips the
// RE-ADD rebuild window entirely), the ack window is flushed to survivors
// and checkpointed, the departure is announced (survivors drop us from the
// ring immediately instead of waiting out FailAfter probes), and finally the
// node's own CNs close, sending its peers through their reconnect path onto
// the new owners. Push failures degrade gracefully: a region whose handoff
// could not be delivered just takes the crash path (rebuild window) on its
// new owner. Safe to call once; later calls return the zero summary.
func (cp *ControlPlane) Drain() (DrainSummary, error) {
	cp.drainMu.Lock()
	if cp.drained {
		cp.drainMu.Unlock()
		return DrainSummary{NodeID: cp.cfg.NodeID}, nil
	}
	cp.drained = true
	cp.drainMu.Unlock()

	sum := DrainSummary{NodeID: cp.cfg.NodeID}
	client := &http.Client{Timeout: 5 * time.Second}

	member := cp.membership()
	var survivors []cluster.Node
	if member != nil {
		survivors = member.Others()
	}
	sum.Survivors = len(survivors)

	if len(survivors) > 0 {
		// Predict the post-drain ring: the survivors alone. Each owned
		// region's snapshot goes to exactly the node that will own it, so no
		// entry is pushed twice and none lands on a non-owner.
		ids := make([]string, len(survivors))
		byID := make(map[string]cluster.Node, len(survivors))
		for i, n := range survivors {
			ids[i] = n.ID
			byID[n.ID] = n
		}
		ring := cluster.NewRing(ids)
		for r := 0; r < geo.NumRegions; r++ {
			region := geo.NetworkRegion(r)
			if !cp.OwnsRegion(region) {
				continue
			}
			ownerID, ok := ring.Owner(region.String())
			if !ok {
				continue
			}
			target := byID[ownerID]
			export := cp.dns[r].dir.Export()
			// Empty regions are pushed too: the marker is what lets the new
			// owner skip the rebuild window, and an empty region still
			// deserves a seamless takeover.
			if err := cp.pushHandoff(client, target, region, export); err != nil {
				continue
			}
			cp.metrics.drainRegions.Inc()
			cp.metrics.drainEntries.Add(int64(len(export)))
			sum.Regions = append(sum.Regions, DrainRegion{
				Region: region.String(), NewOwner: ownerID, Entries: len(export),
			})
			sum.EntriesTransferred += len(export)
		}

		// Flush the ack window so batches we acked stay deduplicated after we
		// are gone, even on nodes anti-entropy had not reached yet.
		if acks := cp.cfg.LogAcks; acks != nil {
			keys := acks.Window()
			sum.AcksFlushed = len(keys)
			if len(keys) > 0 {
				body, _ := json.Marshal(struct {
					Keys []string `json:"keys"`
				}{Keys: keys})
				for _, n := range survivors {
					resp, err := client.Post(n.StatusURL+logpipe.AcksPath,
						"application/json", bytes.NewReader(body))
					if err == nil {
						resp.Body.Close()
					}
				}
			}
		}

		// Announce the departure; survivors re-ring immediately and the
		// transfer markers set above make their takeovers seamless.
		body, _ := json.Marshal(leaveRequest{NodeID: cp.cfg.NodeID})
		for _, n := range survivors {
			resp, err := client.Post(n.StatusURL+LeavePath,
				"application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}
	}

	if acks := cp.cfg.LogAcks; acks != nil {
		acks.Checkpoint()
	}

	// Drop our peers last: they reconnect, and by now the login redirects
	// point at the new owners.
	cp.Close()
	return sum, nil
}

func (cp *ControlPlane) pushHandoff(client *http.Client, target cluster.Node,
	region geo.NetworkRegion, export []selection.ExportEntry) error {
	req := handoffRequest{From: cp.cfg.NodeID, Region: region.String()}
	for _, xe := range export {
		he := handoffEntry{
			Object:       logpipe.EncodeObjectID(xe.Object),
			GUID:         xe.Entry.Info.GUID.String(),
			Addr:         xe.Entry.Info.Addr,
			NAT:          uint8(xe.Entry.Info.NAT),
			ASN:          xe.Entry.Info.ASN,
			Location:     xe.Entry.Info.Location,
			Complete:     xe.Entry.Complete,
			RegisteredMs: xe.Entry.RegisteredMs,
		}
		if xe.Entry.Rec.IP.IsValid() {
			he.IP = xe.Entry.Rec.IP.String()
		}
		req.Entries = append(req.Entries, he)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := client.Post(target.StatusURL+HandoffPath, "application/json",
		bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("handoff to %s: %s", target.ID, resp.Status)
	}
	return nil
}

// SetOnDrained installs a hook invoked after a POST DrainPath drain
// finishes and its response is written — cmd/netsession-cp uses it to exit
// the process.
func (cp *ControlPlane) SetOnDrained(fn func(DrainSummary)) {
	cp.drainMu.Lock()
	cp.drainHook = fn
	cp.drainMu.Unlock()
}

// DrainHandler serves POST DrainPath: runs the drain and replies with the
// summary.
func (cp *ControlPlane) DrainHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sum, err := cp.Drain()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(sum)
		cp.drainMu.Lock()
		after := cp.drainHook
		cp.drainMu.Unlock()
		if after != nil {
			after(sum)
		}
	})
}

// serveHandoff receives a draining node's directory snapshot for one
// region: entries are imported into the region's directory and the transfer
// marker is set so the takeover (triggered by the leave announcement that
// follows) skips the rebuild window.
func (cp *ControlPlane) serveHandoff(w http.ResponseWriter, r *http.Request) {
	var req handoffRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&req); err != nil {
		http.Error(w, "bad handoff body", http.StatusBadRequest)
		return
	}
	region, ok := regionByName(req.Region)
	if !ok {
		http.Error(w, "unknown region "+req.Region, http.StatusBadRequest)
		return
	}
	now := cp.now()
	imported := 0
	for i := range req.Entries {
		he := &req.Entries[i]
		entry, err := cp.importEntry(he)
		if err != nil {
			continue
		}
		cp.dns[int(region)].dir.Register(entry.obj, entry.e)
		imported++
	}
	cp.ownMu.Lock()
	cp.transferMs[int(region)] = now
	cp.ownMu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Imported int `json:"imported"`
	}{Imported: imported})
}

type importedEntry struct {
	obj content.ObjectID
	e   selection.Entry
}

func (cp *ControlPlane) importEntry(he *handoffEntry) (importedEntry, error) {
	var out importedEntry
	raw, err := hex.DecodeString(he.Object)
	if err != nil || len(raw) != len(out.obj) {
		return out, fmt.Errorf("bad object id %q", he.Object)
	}
	copy(out.obj[:], raw)
	g, err := id.ParseGUID(he.GUID)
	if err != nil {
		return out, err
	}
	var rec geo.Record
	if he.IP != "" {
		if ip, perr := netip.ParseAddr(he.IP); perr == nil {
			if got, found := cp.cfg.Scape.Lookup(ip); found {
				rec = got
			}
		}
	}
	out.e = selection.Entry{
		Info: protocol.PeerInfo{
			GUID: g, Addr: he.Addr, NAT: protocol.NATClass(he.NAT),
			ASN: he.ASN, Location: he.Location,
		},
		Rec:          rec,
		Complete:     he.Complete,
		RegisteredMs: he.RegisteredMs,
	}
	return out, nil
}

// serveLeave receives a departing node's announcement and removes it from
// the membership immediately — a drain must not wait out FailAfter probe
// rounds before its regions find their new owners.
func (cp *ControlPlane) serveLeave(w http.ResponseWriter, r *http.Request) {
	var req leaveRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&req); err != nil {
		http.Error(w, "bad leave body", http.StatusBadRequest)
		return
	}
	if req.NodeID == "" {
		http.Error(w, "missing nodeId", http.StatusBadRequest)
		return
	}
	if m := cp.membership(); m != nil {
		m.MarkLeft(req.NodeID)
	}
	w.WriteHeader(http.StatusOK)
}

func regionByName(name string) (geo.NetworkRegion, bool) {
	for r := 0; r < geo.NumRegions; r++ {
		if geo.NetworkRegion(r).String() == name {
			return geo.NetworkRegion(r), true
		}
	}
	return 0, false
}
