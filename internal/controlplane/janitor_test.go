package controlplane

import (
	"sync/atomic"
	"testing"
	"time"

	"netsession/internal/content"
	"netsession/internal/geo"
	"netsession/internal/protocol"
)

func TestJanitorExpiresSoftState(t *testing.T) {
	// Inject a controllable clock.
	var nowMs atomic.Int64
	h := newHarness(t, func(c *Config) {
		c.NowMs = func() int64 { return nowMs.Load() }
	})
	oid := content.NewObjectID(9, "stale", 1)
	p := h.dialPeer("US", true)
	expect[*protocol.LoginAck](p)
	p.send(&protocol.Register{Object: oid, NumPieces: 1, HaveCount: 1, Complete: true})
	region := geo.RegionOf(p.rec)
	waitFor(t, "registration", func() bool { return h.cp.DN(region).Copies(oid) == 1 })

	stop := h.cp.StartJanitor(20*time.Millisecond, 1000)
	defer stop()

	// Within TTL the entry stays: watch several janitor ticks and fail the
	// moment the entry disappears (instead of sleeping and hoping the purge
	// would have happened by now).
	nowMs.Store(500)
	if eventually(100*time.Millisecond, func() bool { return h.cp.DN(region).Copies(oid) == 0 }) {
		t.Fatal("fresh entry expired")
	}
	// Past TTL the janitor purges it.
	nowMs.Store(5000)
	waitFor(t, "expiry", func() bool { return h.cp.DN(region).Copies(oid) == 0 })
	// Stop is idempotent.
	stop()
}
