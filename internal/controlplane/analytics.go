package controlplane

import (
	"encoding/json"
	"net/http"
	"sync/atomic"

	"netsession/internal/analysis"
	"netsession/internal/geo"
	"netsession/internal/telemetry"
)

// cpAnalytics is the control plane's live paper-metrics pipeline: every
// accepted download record — whether it arrived on the in-band StatsReport
// path or through a logpipe batch — is folded into a sharded streaming
// summarizer, and the headline quantities are mirrored onto Prometheus
// series. The full document is served on GET /v1/analytics for the monitor's
// fleet view and the report dashboard.
type cpAnalytics struct {
	summarizer *analysis.StreamingSummarizer

	// Per-region running byte totals, updated atomically on the record path
	// so the offload gauges cost O(1) per record instead of a full snapshot.
	regionIdx   map[string]int
	regionInfra [geo.NumRegions]atomic.Int64
	regionPeers [geo.NumRegions]atomic.Int64

	offload     [geo.NumRegions]*telemetry.Gauge
	intraAS     *telemetry.Counter
	interAS     *telemetry.Counter
	activeGUIDs *telemetry.Gauge
	observed    atomic.Int64

	// Streaming-delivery counters (§3.4), eager like the rest: deadline-driven
	// sessions booked, their rebuffer events, missed piece deadlines, and
	// urgent-window bytes the edge rescued.
	streamSessions    *telemetry.Counter
	streamRebuffers   *telemetry.Counter
	streamMisses      *telemetry.Counter
	streamRescueBytes *telemetry.Counter
}

// analyticsShards balances CN session-loop concurrency against snapshot
// merge cost; the summarizer keys shards by GUID, so any value works.
const analyticsShards = 8

// guidEstimateEvery bounds how often the record path pays for an HLL merge
// to refresh the active-GUID gauge.
const guidEstimateEvery = 64

// newCPAnalytics registers the analytics series eagerly — every region's
// offload gauge and both locality counters are visible at zero before the
// first record, so dashboards see series, not gaps.
func newCPAnalytics(reg *telemetry.Registry) *cpAnalytics {
	a := &cpAnalytics{
		summarizer: analysis.NewStreamingSummarizer(analyticsShards),
		regionIdx:  make(map[string]int, geo.NumRegions),
		intraAS: reg.Counter("cp_intra_as_bytes_total",
			"peer-uploaded bytes served within the downloader's AS", nil),
		interAS: reg.Counter("cp_inter_as_bytes_total",
			"peer-uploaded bytes that crossed an AS boundary", nil),
		activeGUIDs: reg.Gauge("cp_active_guids_estimate",
			"estimated distinct GUIDs seen in download reports (HyperLogLog)", nil),
		streamSessions: reg.Counter("cp_stream_sessions_total",
			"deadline-driven streaming downloads reported", nil),
		streamRebuffers: reg.Counter("cp_stream_rebuffer_events_total",
			"playback rebuffer events across reported streams", nil),
		streamMisses: reg.Counter("cp_stream_deadline_misses_total",
			"pieces reported unavailable at their playback deadline", nil),
		streamRescueBytes: reg.Counter("cp_stream_edge_rescue_bytes_total",
			"urgent-window bytes reported rescued from the edge", nil),
	}
	for r := 0; r < geo.NumRegions; r++ {
		name := geo.NetworkRegion(r).String()
		a.regionIdx[name] = r
		a.offload[r] = reg.Gauge("cp_offload_fraction",
			"fraction of the region's downloaded bytes served by peers",
			telemetry.Labels{"region": name})
	}
	return a
}

// observe folds one annotated record into the live aggregates. Called from
// CN session loops and the ingest handler; everything here is lock-free or
// sharded.
func (a *cpAnalytics) observe(d *analysis.OfflineDownload) {
	a.summarizer.Observe(d)
	if r, ok := a.regionIdx[d.Region]; ok {
		infra := a.regionInfra[r].Add(d.BytesInfra)
		peers := a.regionPeers[r].Add(d.BytesPeers)
		if total := infra + peers; total > 0 {
			a.offload[r].Set(float64(peers) / float64(total))
		}
	}
	var intra, inter int64
	for i := range d.FromPeers {
		if d.FromPeers[i].ASN == d.ASN {
			intra += d.FromPeers[i].Bytes
		} else {
			inter += d.FromPeers[i].Bytes
		}
	}
	if intra > 0 {
		a.intraAS.Add(intra)
	}
	if inter > 0 {
		a.interAS.Add(inter)
	}
	if st := d.Stream; st != nil {
		a.streamSessions.Inc()
		if st.RebufferCount > 0 {
			a.streamRebuffers.Add(st.RebufferCount)
		}
		if st.DeadlineMisses > 0 {
			a.streamMisses.Add(st.DeadlineMisses)
		}
		if st.EdgeRescueBytes > 0 {
			a.streamRescueBytes.Add(st.EdgeRescueBytes)
		}
	}
	if a.observed.Add(1)%guidEstimateEvery == 0 {
		a.activeGUIDs.Set(a.summarizer.ActiveGUIDs())
	}
}

// Analytics returns the control plane's live streaming summary. The
// active-GUID gauge is refreshed on the way so a scrape that reads both
// surfaces sees consistent numbers.
func (cp *ControlPlane) Analytics() analysis.StreamingSummary {
	sum := cp.analytics.summarizer.Snapshot()
	cp.analytics.activeGUIDs.Set(sum.ActiveGUIDs)
	return sum
}

// AnalyticsHandler serves the streaming summary as JSON on GET /v1/analytics.
func (cp *ControlPlane) AnalyticsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(cp.Analytics())
	})
}
