package controlplane

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"netsession/internal/accounting"
	"netsession/internal/content"
	"netsession/internal/geo"
	"netsession/internal/id"
	"netsession/internal/protocol"
	"netsession/internal/selection"
)

func wallNowMs() int64 { return time.Now().UnixMilli() }

// CN is a connection node: it terminates the persistent TCP control
// connections of its peers, answers their object queries via the local DN,
// relays connect-to instructions, and collects usage statistics (§3.6). In
// production "over 150,000 might be connected to one simultaneously".
type CN struct {
	cp *ControlPlane
	ln net.Listener

	mu       sync.Mutex
	closed   bool
	sessions map[*session]bool
}

// session is one peer's control connection.
type session struct {
	cn   *CN
	conn net.Conn

	guid   id.GUID
	rec    geo.Record
	region geo.NetworkRegion
	info   protocol.PeerInfo // swarm contact details
	// uploadsEnabled mirrors the peer's preference; registrations are only
	// accepted while it is set (§3.6).
	uploadsEnabled bool

	wmu sync.Mutex
}

func startCN(cp *ControlPlane, addr string) (*CN, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("controlplane: CN listen: %w", err)
	}
	cn := &CN{cp: cp, ln: ln, sessions: make(map[*session]bool)}
	go cn.acceptLoop()
	return cn, nil
}

// Addr returns the CN's listen address.
func (cn *CN) Addr() string { return cn.ln.Addr().String() }

// Close stops the CN and drops its sessions; peers reconnect to another CN
// (§3.8: "If a CN goes down, the peers that are connected to that CN simply
// reconnect to another one").
func (cn *CN) Close() {
	cn.mu.Lock()
	if cn.closed {
		cn.mu.Unlock()
		return
	}
	cn.closed = true
	sessions := make([]*session, 0, len(cn.sessions))
	for s := range cn.sessions {
		sessions = append(sessions, s)
	}
	cn.mu.Unlock()
	cn.ln.Close()
	for _, s := range sessions {
		s.closeConn()
	}
}

func (cn *CN) acceptLoop() {
	for {
		conn, err := cn.ln.Accept()
		if err != nil {
			return
		}
		if wrap := cn.cp.cfg.ConnWrap; wrap != nil {
			conn = wrap(conn)
		}
		go cn.serveConn(conn)
	}
}

// SessionCount returns the live sessions on this CN.
func (cn *CN) SessionCount() int {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return len(cn.sessions)
}

func (cn *CN) serveConn(conn net.Conn) {
	defer conn.Close()
	// The first frame must be a Login.
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	msg, err := protocol.ReadMessage(conn)
	if err != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})
	login, ok := msg.(*protocol.Login)
	if !ok {
		return
	}

	s := &session{cn: cn, conn: conn}
	s.guid = login.GUID
	s.rec = cn.cp.locate(login.DeclaredIP)
	s.region = geo.RegionOf(s.rec)
	// Region ownership: in a multi-node control plane each region is served
	// by its ring owner. Logins for regions this node does not own are
	// bounced with the owner's CN address, so peers rebalance themselves
	// after every membership change.
	if redirect, owned := cn.cp.loginRoute(s.region); !owned {
		cn.cp.metrics.loginsRedirected.Inc()
		s.send(&protocol.LoginAck{OK: false, RetryAfterMs: 250, RedirectAddr: redirect})
		return
	}
	// Shed load when over capacity, telling the peer when to retry; this
	// is the rate-limited reconnection of §3.8.
	cn.mu.Lock()
	over := cn.cp.cfg.MaxSessionsPerCN > 0 && len(cn.sessions) >= cn.cp.cfg.MaxSessionsPerCN
	if !over && !cn.closed {
		cn.sessions[s] = true
	}
	cn.mu.Unlock()
	if over {
		cn.cp.metrics.loginsShed.Inc()
		s.send(&protocol.LoginAck{OK: false, RetryAfterMs: 5000})
		return
	}
	cn.cp.metrics.logins.Inc()
	defer func() {
		cn.mu.Lock()
		delete(cn.sessions, s)
		cn.mu.Unlock()
		cn.cp.unregister(s)
	}()

	s.uploadsEnabled = login.UploadsEnabled
	s.info = protocol.PeerInfo{
		GUID:     login.GUID,
		Addr:     login.SwarmAddr,
		NAT:      login.NAT,
		ASN:      uint32(s.rec.ASN),
		Location: uint32(s.rec.Location),
	}
	cn.cp.register(s)
	cn.cp.Collector().AddLogin(accounting.LoginRecord{
		TimeMs:          cn.cp.now(),
		GUID:            login.GUID,
		IP:              s.rec.IP,
		SoftwareVersion: login.SoftwareVersion,
		UploadsEnabled:  login.UploadsEnabled,
		Secondaries:     login.Secondaries,
	})
	cc := cn.cp.cfg.ClientConfig
	s.send(&protocol.LoginAck{OK: true, ConfigEpoch: 1})
	s.send(&protocol.ConfigUpdate{
		Epoch:              1,
		MaxUploadConns:     uint16(cc.MaxUploadConns),
		PerObjectUploadCap: uint16(cc.PerObjectUploadCap),
		UploadRateBps:      uint64(cc.UploadRateBps),
		CacheTTLSec:        uint32(cc.CacheTTLSec),
		TargetVersion:      cc.TargetVersion,
	})
	// A region mid-rebuild (DN loss or ring handoff) asks every arriving
	// peer to RE-ADD right away: peers rebalancing from a dead node
	// repopulate the new owner's directory without waiting for another
	// failure event (§3.8).
	if cn.dn(s).Rebuilding(cn.cp.now()) {
		s.send(&protocol.ReAdd{})
	}

	for {
		// Healthy clients ping every 30s; a five-minute silence means the
		// peer is gone and the session's soft state should be released.
		conn.SetReadDeadline(time.Now().Add(5 * time.Minute))
		msg, err := protocol.ReadMessage(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				// Protocol violation or abrupt drop; either way the
				// session ends and soft state covers the rest.
				return
			}
			return
		}
		cn.handle(s, msg)
	}
}

func (cn *CN) handle(s *session, msg protocol.Message) {
	switch m := msg.(type) {
	case *protocol.Query:
		cn.handleQuery(s, m)
	case *protocol.Register:
		cn.handleRegister(s, m)
	case *protocol.Unregister:
		cn.cp.metrics.unregisters.Inc()
		cn.dn(s).Directory().Unregister(m.Object, s.guid)
	case *protocol.ReAddReply:
		cn.cp.metrics.readds.Inc()
		for _, e := range m.Entries {
			cn.handleRegister(s, &protocol.Register{
				Object: e.Object, NumPieces: e.NumPieces,
				HaveCount: e.HaveCount, Complete: e.Complete,
			})
		}
	case *protocol.StatsReport:
		cn.handleStats(s, m)
	case *protocol.Ping:
		s.send(&protocol.Pong{Nonce: m.Nonce})
	default:
		// Unknown-but-valid frames are ignored for forward compatibility.
	}
}

func (cn *CN) dn(s *session) *DN { return cn.cp.DN(s.region) }

func (cn *CN) handleQuery(s *session, q *protocol.Query) {
	cn.cp.metrics.queries.Inc()
	// The search token was minted by an edge server at authorization time;
	// an invalid or non-p2p token cannot search for peers (§3.5).
	claims, err := cn.cp.cfg.Minter.Verify(q.Token, cn.cp.now())
	if err != nil || claims.Object != q.Object || claims.GUID != s.guid || !claims.P2P {
		cn.cp.metrics.queriesRejected.Inc()
		s.send(&protocol.QueryResult{Object: q.Object, Err: "unauthorized"})
		return
	}
	dn := cn.dn(s)
	if dn.Rebuilding(cn.cp.now()) {
		// The region's directory is rebuilding from RE-ADDs; answering from
		// a partial view would steer whole swarms at the few peers that
		// re-announced first. Answer edge-only — the client's edge loop
		// guarantees progress regardless (§3.3).
		s.send(&protocol.QueryResult{Object: q.Object})
		return
	}
	selectStart := time.Now()
	dir := dn.Directory()
	peers := dir.Select(cn.cp.cfg.Policy, selection.Query{
		Object:        q.Object,
		Requester:     s.rec,
		RequesterGUID: s.guid,
		RequesterNAT:  s.info.NAT,
		NowMs:         cn.cp.now(),
		Max:           int(q.MaxPeers),
		Rand:          newSelectionRand(s.guid, q.Object),
	})
	cn.cp.metrics.queryDurMs.Observe(float64(time.Since(selectStart)) / float64(time.Millisecond))
	s.send(&protocol.QueryResult{Object: q.Object, Peers: peers})
	// Instruct the chosen peers to initiate connections to the querier as
	// well, which is what lets NAT hole punching succeed (§3.7).
	for _, p := range peers {
		if up := cn.cp.lookupSession(p.GUID); up != nil {
			up.send(&protocol.ConnectTo{Object: q.Object, Peer: s.info})
		}
	}
}

func (cn *CN) handleRegister(s *session, m *protocol.Register) {
	if !s.uploadsEnabled {
		return // peers appear in the database only with uploads enabled (§3.6)
	}
	if !cn.cp.OwnsRegion(s.region) {
		// The region moved to another node between this session's login and
		// now; its registrations belong to the new owner's rebuild. The
		// session is about to be dropped by releaseRegion anyway.
		return
	}
	cn.cp.metrics.registers.Inc()
	if cn.dn(s).Rebuilding(cn.cp.now()) {
		cn.cp.metrics.rebuildAnnounces[int(s.region)].Inc()
	}
	cn.dn(s).Register(m.Object, selection.Entry{
		Info:         s.info,
		Rec:          s.rec,
		Complete:     m.Complete,
		RegisteredMs: cn.cp.now(),
	}, cn.cp.now())
}

func (cn *CN) handleStats(s *session, m *protocol.StatsReport) {
	cn.cp.metrics.statsReports.Inc()
	rec := accounting.DownloadRecord{
		GUID:          s.guid,
		IP:            s.rec.IP,
		Object:        m.Object,
		URLHash:       m.URLHash,
		CP:            content.CPCode(m.CP),
		Size:          int64(m.Size),
		StartMs:       m.StartUnixMs,
		EndMs:         m.EndUnixMs,
		BytesInfra:    int64(m.BytesInfra),
		BytesPeers:    int64(m.BytesPeers),
		Outcome:       m.Outcome,
		PeersReturned: int(m.PeersReturned),
	}
	for _, pb := range m.FromPeers {
		pc := accounting.PeerContribution{GUID: pb.GUID, Bytes: int64(pb.Bytes)}
		if up := cn.cp.lookupSession(pb.GUID); up != nil {
			pc.IP = up.rec.IP
		}
		rec.FromPeers = append(rec.FromPeers, pc)
	}
	if st := m.Stream; st != nil {
		rec.Stream = &accounting.StreamStats{
			BitrateBps:      int64(st.BitrateBps),
			StartupDelayMs:  int64(st.StartupDelayMs),
			RebufferCount:   int64(st.RebufferCount),
			RebufferMs:      int64(st.RebufferMs),
			DeadlineMisses:  int64(st.DeadlineMisses),
			PiecesPlayed:    int64(st.PiecesPlayed),
			PiecesTotal:     int64(st.PiecesTotal),
			EdgeRescueBytes: int64(st.EdgeRescueBytes),
		}
	}
	// Attribute p2p enablement from the token when possible.
	if claims, err := cn.cp.cfg.Minter.Verify(m.Token, 0); err == nil && claims.Object == m.Object {
		rec.P2PEnabled = claims.P2P
	}
	// Verification failures are dropped silently here; the collector
	// counts them and operators watch the monitor.
	_ = cn.cp.recordDownload(rec)
}

func (s *session) send(m protocol.Message) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
	if err := protocol.WriteMessage(s.conn, m); err != nil {
		s.conn.Close()
	}
}

func (s *session) closeConn() { s.conn.Close() }

// newSelectionRand derives a deterministic randomness source for one query,
// so diversity picks are reproducible given (peer, object) — useful both for
// debugging and for the deterministic simulator.
func newSelectionRand(g id.GUID, obj content.ObjectID) *rand.Rand {
	seed := int64(binary.BigEndian.Uint64(g[:8]) ^ binary.BigEndian.Uint64(obj[:8]))
	return rand.New(rand.NewSource(seed))
}
