package controlplane

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"netsession/internal/cluster"
	"netsession/internal/geo"
	"netsession/internal/logpipe"
	"netsession/internal/telemetry"
)

// Status is an operator snapshot of the control plane: "download and upload
// performance is constantly monitored" (§3.8). It is cheap to compute and
// safe to expose on an internal HTTP port.
type Status struct {
	// NodeID and CNAddrs identify this node to the cluster membership layer:
	// liveness probes read them to learn where the node's CNs listen.
	NodeID   string       `json:"nodeId,omitempty"`
	CNAddrs  []string     `json:"cnAddrs,omitempty"`
	Sessions int          `json:"sessions"`
	CNs      int          `json:"cns"`
	Regions  []RegionInfo `json:"regions"`
	// Members is this node's alive view — the seed-exchange payload. A
	// prober merges unknown members from it, so one live address is enough
	// to discover the whole cluster.
	Members []cluster.WireMember `json:"members,omitempty"`
	// AckSeq is the node's batch-acknowledgement sequence; peers that see it
	// advance past what they last pulled run an anti-entropy pull.
	AckSeq uint64 `json:"ackSeq,omitempty"`
	// AcceptedDownloads / RejectedReports summarize accounting health.
	AcceptedDownloads int `json:"acceptedDownloads"`
	RejectedReports   int `json:"rejectedReports"`
}

// RegionInfo is one region's directory footprint.
type RegionInfo struct {
	Region  string `json:"region"`
	Objects int    `json:"objects"`
}

// Status computes the current snapshot.
func (cp *ControlPlane) Status() Status {
	cp.mu.Lock()
	st := Status{NodeID: cp.cfg.NodeID, Sessions: len(cp.sessions), CNs: len(cp.cns)}
	for _, cn := range cp.cns {
		st.CNAddrs = append(st.CNAddrs, cn.Addr())
	}
	cp.mu.Unlock()
	for r := 0; r < geo.NumRegions; r++ {
		st.Regions = append(st.Regions, RegionInfo{
			Region:  geo.NetworkRegion(r).String(),
			Objects: cp.dns[r].dir.Objects(),
		})
	}
	log := cp.Collector().Snapshot()
	st.AcceptedDownloads = len(log.Downloads)
	st.RejectedReports = cp.Collector().Rejected()
	if m := cp.membership(); m != nil {
		for _, n := range m.Members() {
			st.Members = append(st.Members, cluster.WireMember{
				ID: n.ID, StatusURL: n.StatusURL, CNAddrs: n.CNAddrs,
			})
		}
	}
	if acks := cp.cfg.LogAcks; acks != nil {
		st.AckSeq = acks.Seq()
	}
	return st
}

// StatusHandler serves the snapshot as JSON (mount wherever the operator's
// internal HTTP surface lives). A probe that announces its identity in the
// request headers is learned into the membership — the push half of seed
// exchange, which is how the cluster discovers a joining node.
func (cp *ControlPlane) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if proberID := r.Header.Get(cluster.HeaderProbeID); proberID != "" {
			if m := cp.membership(); m != nil {
				m.ObserveProber(cluster.Node{
					ID:        proberID,
					StatusURL: r.Header.Get(cluster.HeaderProbeURL),
				})
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(cp.Status())
	})
}

// StatusServer is the control plane's operator HTTP surface: the status
// snapshot plus the standard telemetry endpoints (GET /metrics in Prometheus
// text format, GET /v1/telemetry as JSON). The CNs themselves speak only the
// binary control protocol, so this is where the control plane's metrics are
// scraped from.
type StatusServer struct {
	httpSrv *http.Server
	ln      net.Listener
}

// StartStatusServer serves the operator surface on addr.
func (cp *ControlPlane) StartStatusServer(addr string) (*StatusServer, error) {
	mux := http.NewServeMux()
	mux.Handle("GET /v1/status", cp.StatusHandler())
	mux.Handle("GET /v1/analytics", cp.AnalyticsHandler())
	mux.Handle("POST "+logpipe.BatchPath, cp.ingest.Handler())
	mux.Handle("POST "+DrainPath, cp.DrainHandler())
	mux.Handle("POST "+HandoffPath, http.HandlerFunc(cp.serveHandoff))
	mux.Handle("POST "+LeavePath, http.HandlerFunc(cp.serveLeave))
	if acks := cp.cfg.LogAcks; acks != nil {
		mux.Handle("GET "+logpipe.AcksPath, http.HandlerFunc(acks.ServeSince))
		mux.Handle("GET "+logpipe.AcksSeenPath, http.HandlerFunc(acks.ServeSeen))
		mux.Handle("POST "+logpipe.AcksPath, http.HandlerFunc(acks.ServeMerge))
	}
	telemetry.Mount(mux, cp.metrics.reg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("controlplane: status listen: %w", err)
	}
	s := &StatusServer{
		httpSrv: &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second},
		ln:      ln,
	}
	go s.httpSrv.Serve(ln)
	return s, nil
}

// Addr returns the bound address.
func (s *StatusServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the status server down.
func (s *StatusServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.httpSrv.Shutdown(ctx)
}

// Kill closes the listener and every active connection immediately — the
// SIGKILL analogue for a control-plane node. In-flight requests are cut off
// mid-response; nothing is flushed or drained. Failover tests use this so
// the surviving nodes see a node vanish, not say goodbye.
func (s *StatusServer) Kill() { s.httpSrv.Close() }
