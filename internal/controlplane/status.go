package controlplane

import (
	"encoding/json"
	"net/http"

	"netsession/internal/geo"
)

// Status is an operator snapshot of the control plane: "download and upload
// performance is constantly monitored" (§3.8). It is cheap to compute and
// safe to expose on an internal HTTP port.
type Status struct {
	Sessions int          `json:"sessions"`
	CNs      int          `json:"cns"`
	Regions  []RegionInfo `json:"regions"`
	// AcceptedDownloads / RejectedReports summarize accounting health.
	AcceptedDownloads int `json:"acceptedDownloads"`
	RejectedReports   int `json:"rejectedReports"`
}

// RegionInfo is one region's directory footprint.
type RegionInfo struct {
	Region  string `json:"region"`
	Objects int    `json:"objects"`
}

// Status computes the current snapshot.
func (cp *ControlPlane) Status() Status {
	cp.mu.Lock()
	st := Status{Sessions: len(cp.sessions), CNs: len(cp.cns)}
	cp.mu.Unlock()
	for r := 0; r < geo.NumRegions; r++ {
		st.Regions = append(st.Regions, RegionInfo{
			Region:  geo.NetworkRegion(r).String(),
			Objects: cp.dns[r].dir.Objects(),
		})
	}
	log := cp.Collector().Snapshot()
	st.AcceptedDownloads = len(log.Downloads)
	st.RejectedReports = cp.Collector().Rejected()
	return st
}

// StatusHandler serves the snapshot as JSON (mount wherever the operator's
// internal HTTP surface lives).
func (cp *ControlPlane) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(cp.Status())
	})
}
