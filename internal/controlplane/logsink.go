package controlplane

import (
	"fmt"
	"net/netip"

	"netsession/internal/accounting"
	"netsession/internal/analysis"
	"netsession/internal/content"
	"netsession/internal/geo"
	"netsession/internal/id"
	"netsession/internal/logpipe"
	"netsession/internal/protocol"
)

// The log sink is where both report paths converge: the legacy in-band
// StatsReport on the control connection and the batched logpipe upload both
// become accounting.DownloadRecords here, flow through the same verifier, and
// — when a segment store is configured — are spilled durably in the offline
// analysis schema. One code path, two transports.

// recordDownload verifies and books one download record. Verification
// failures are returned (and counted by the collector); store spill errors
// are returned but leave the collector state intact.
func (cp *ControlPlane) recordDownload(rec accounting.DownloadRecord) error {
	if err := cp.cfg.Collector.AddDownload(rec); err != nil {
		return err
	}
	// Every accepted record feeds the live analytics, whether or not a
	// durable store is configured; the streaming summarizer is the in-memory
	// half of the same pipeline.
	off := analysis.OfflineFromRecord(&rec, cp.geoLookup)
	cp.analytics.observe(&off)
	if st := cp.cfg.LogStore; st != nil {
		if err := st.Append(off); err != nil {
			return fmt.Errorf("controlplane: spill download record: %w", err)
		}
	}
	return nil
}

// geoLookup annotates a logged IP the way the paper's offline data set is
// annotated with EdgeScape fields (§4.1), plus the control plane's network
// region so per-region analytics survive without the atlas.
func (cp *ControlPlane) geoLookup(ip netip.Addr) analysis.GeoTag {
	if rec, ok := cp.cfg.Scape.Lookup(ip); ok {
		return analysis.GeoTag{
			Country: string(rec.Country),
			ASN:     uint32(rec.ASN),
			Region:  geo.RegionOf(rec).String(),
		}
	}
	return analysis.GeoTag{}
}

// ingestEntry is the logpipe ingest handler: one uploaded log entry becomes
// a download record attributed to the uploading GUID. A returned error
// rejects just that record; the batch is still acknowledged.
func (cp *ControlPlane) ingestEntry(guid id.GUID, e *logpipe.Entry) error {
	if e.Kind != logpipe.EntryKindDownload {
		return fmt.Errorf("controlplane: unknown log entry kind %q", e.Kind)
	}
	obj, err := e.ObjectID()
	if err != nil {
		return err
	}
	rec := accounting.DownloadRecord{
		GUID:          guid,
		Object:        obj,
		URLHash:       e.URLHash,
		CP:            content.CPCode(e.CP),
		Size:          e.Size,
		StartMs:       e.StartMs,
		EndMs:         e.EndMs,
		BytesInfra:    e.BytesInfra,
		BytesPeers:    e.BytesPeers,
		Outcome:       protocol.Outcome(e.Outcome),
		PeersReturned: e.PeersReturned,
	}
	// Attribute the reporter's IP: a live control session is authoritative,
	// the declared IP in the entry is the offline fallback.
	if s := cp.lookupSession(guid); s != nil {
		rec.IP = s.rec.IP
	} else if ip, perr := netip.ParseAddr(e.IP); perr == nil {
		rec.IP = ip
	}
	for _, pc := range e.FromPeers {
		pg, gerr := id.ParseGUID(pc.GUID)
		if gerr != nil {
			continue // a malformed contributor must not sink the whole record
		}
		contrib := accounting.PeerContribution{GUID: pg, Bytes: pc.Bytes}
		if up := cp.lookupSession(pg); up != nil {
			contrib.IP = up.rec.IP
		}
		rec.FromPeers = append(rec.FromPeers, contrib)
	}
	if st := e.Stream; st != nil {
		rec.Stream = &accounting.StreamStats{
			BitrateBps:      st.BitrateBps,
			StartupDelayMs:  st.StartupDelayMs,
			RebufferCount:   st.RebufferCount,
			RebufferMs:      st.RebufferMs,
			DeadlineMisses:  st.DeadlineMisses,
			PiecesPlayed:    st.PiecesPlayed,
			PiecesTotal:     st.PiecesTotal,
			EdgeRescueBytes: st.EdgeRescueBytes,
		}
	}
	// Attribute p2p enablement from the edge-issued token, exactly as the
	// in-band StatsReport path does.
	if cp.cfg.Minter != nil && len(e.Token) > 0 {
		if claims, verr := cp.cfg.Minter.Verify(e.Token, 0); verr == nil && claims.Object == obj {
			rec.P2PEnabled = claims.P2P
		}
	}
	cp.metrics.statsReports.Inc()
	return cp.recordDownload(rec)
}
