package controlplane

import (
	"testing"
	"time"
)

// eventually polls cond every few milliseconds until it holds or the
// timeout elapses, reporting whether it held. Tests use it instead of fixed
// sleeps so -race runs on loaded machines don't flake on timing; it also
// turns "wait then assert nothing happened" into a bounded watch that fails
// the moment the forbidden state appears.
func eventually(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

// waitUntil is eventually with a fatal failure: the test dies with msg when
// cond never holds within the timeout.
func waitUntil(t *testing.T, timeout time.Duration, cond func() bool, msg string, args ...any) {
	t.Helper()
	if !eventually(timeout, cond) {
		t.Fatalf(msg, args...)
	}
}
