package controlplane

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// Monitor is a monitoring node: "peers upload information about their
// operation and about problems, such as application crash reports, to these
// nodes. Processing their logs helps to monitor the network in real-time"
// (§3.6). It ingests reports over HTTP, keeps per-kind counters and a bounded
// ring of recent reports, and exposes a health summary.
type Monitor struct {
	mu         sync.Mutex
	counts     map[string]int
	recent     []Report
	maxRing    int
	thresholds map[string]int
	alerts     []Alert

	httpSrv *http.Server
	ln      net.Listener
}

// Alert is raised when a report kind crosses its configured threshold:
// "automated alerts are in place to notify network engineers in case of
// large-scale problems" (§3.8).
type Alert struct {
	Kind  string `json:"kind"`
	Count int    `json:"count"`
}

// Report is one operational report from a peer.
type Report struct {
	TimeMs int64  `json:"timeMs"`
	GUID   string `json:"guid"`
	Kind   string `json:"kind"` // e.g. "crash", "piece-corrupt", "nat-fail"
	Detail string `json:"detail"`
}

// NewMonitor creates a monitoring node keeping up to ringSize recent
// reports.
func NewMonitor(ringSize int) *Monitor {
	if ringSize <= 0 {
		ringSize = 1024
	}
	m := &Monitor{
		counts:     make(map[string]int),
		maxRing:    ringSize,
		thresholds: make(map[string]int),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/report", m.handleReport)
	mux.HandleFunc("GET /v1/health", m.handleHealth)
	m.httpSrv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	return m
}

// Start listens and serves in the background.
func (m *Monitor) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("controlplane: monitor listen: %w", err)
	}
	m.ln = ln
	go m.httpSrv.Serve(ln)
	return nil
}

// Addr returns the bound address.
func (m *Monitor) Addr() string {
	if m.ln == nil {
		return ""
	}
	return m.ln.Addr().String()
}

// Close shuts the monitor down.
func (m *Monitor) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return m.httpSrv.Shutdown(ctx)
}

// SetAlertThreshold raises an Alert once `kind` accumulates n reports.
func (m *Monitor) SetAlertThreshold(kind string, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.thresholds[kind] = n
}

// Alerts returns the raised alerts, oldest first.
func (m *Monitor) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Alert(nil), m.alerts...)
}

// Ingest records a report directly (in-process peers and the simulator).
func (m *Monitor) Ingest(r Report) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counts[r.Kind]++
	m.recent = append(m.recent, r)
	if len(m.recent) > m.maxRing {
		m.recent = m.recent[len(m.recent)-m.maxRing:]
	}
	if th, ok := m.thresholds[r.Kind]; ok && m.counts[r.Kind] == th {
		m.alerts = append(m.alerts, Alert{Kind: r.Kind, Count: m.counts[r.Kind]})
	}
}

// Count returns how many reports of a kind arrived.
func (m *Monitor) Count(kind string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counts[kind]
}

// Recent returns a copy of the recent-report ring.
func (m *Monitor) Recent() []Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Report(nil), m.recent...)
}

func (m *Monitor) handleReport(w http.ResponseWriter, r *http.Request) {
	var rep Report
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<10)).Decode(&rep); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	m.Ingest(rep)
	w.WriteHeader(http.StatusNoContent)
}

func (m *Monitor) handleHealth(w http.ResponseWriter, _ *http.Request) {
	m.mu.Lock()
	out := make(map[string]int, len(m.counts))
	for k, v := range m.counts {
		out[k] = v
	}
	m.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}
