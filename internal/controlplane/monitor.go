package controlplane

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"netsession/internal/telemetry"
)

// Monitor is a monitoring node: "peers upload information about their
// operation and about problems, such as application crash reports, to these
// nodes. Processing their logs helps to monitor the network in real-time"
// (§3.6). It ingests reports over HTTP, keeps per-kind counters and a bounded
// ring of recent reports, scrapes the telemetry endpoints of the other
// components into a fleet-wide aggregate, and exposes a health summary.
type Monitor struct {
	mu         sync.Mutex
	counts     map[string]int
	recent     []Report
	maxRing    int
	thresholds map[string]int
	alerts     []Alert

	reg             *telemetry.Registry
	reportsByKind   map[string]*telemetry.Counter
	reportsRejected *telemetry.Counter
	alertsRaised    *telemetry.Counter
	scrapes         *telemetry.Counter
	scrapeErrors    *telemetry.Counter

	scrapeMu      sync.Mutex
	scrapeTargets map[string]string // component name -> base URL
	scraped       map[string]telemetry.Snapshot
	scrapedAt     map[string]time.Time
	scrapeStop    func()

	httpSrv *http.Server
	ln      net.Listener
}

// Alert is raised when a report kind crosses its configured threshold:
// "automated alerts are in place to notify network engineers in case of
// large-scale problems" (§3.8).
type Alert struct {
	Kind  string `json:"kind"`
	Count int    `json:"count"`
}

// Report is one operational report from a peer.
type Report struct {
	TimeMs int64  `json:"timeMs"`
	GUID   string `json:"guid"`
	Kind   string `json:"kind"` // e.g. "crash", "piece-corrupt", "nat-fail"
	Detail string `json:"detail"`
}

// maxReportBody bounds POST /v1/report bodies; reports are small JSON
// documents and anything larger is hostile or broken.
const maxReportBody = 16 << 10

// NewMonitor creates a monitoring node keeping up to ringSize recent
// reports.
func NewMonitor(ringSize int) *Monitor {
	if ringSize <= 0 {
		ringSize = 1024
	}
	reg := telemetry.NewRegistry()
	m := &Monitor{
		counts:        make(map[string]int),
		maxRing:       ringSize,
		thresholds:    make(map[string]int),
		reg:           reg,
		reportsByKind: make(map[string]*telemetry.Counter),
		reportsRejected: reg.Counter("monitor_reports_rejected_total",
			"malformed or oversized report uploads rejected", nil),
		alertsRaised: reg.Counter("monitor_alerts_total", "alerts raised", nil),
		scrapes: reg.Counter("monitor_scrapes_total",
			"successful component telemetry scrapes", nil),
		scrapeErrors: reg.Counter("monitor_scrape_errors_total",
			"failed component telemetry scrapes", nil),
		scrapeTargets: make(map[string]string),
		scraped:       make(map[string]telemetry.Snapshot),
		scrapedAt:     make(map[string]time.Time),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/report", m.handleReport)
	mux.HandleFunc("GET /v1/health", m.handleHealth)
	telemetry.Mount(mux, reg)
	m.httpSrv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	return m
}

// Metrics exposes the monitor's own telemetry registry.
func (m *Monitor) Metrics() *telemetry.Registry { return m.reg }

// Start listens and serves in the background.
func (m *Monitor) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("controlplane: monitor listen: %w", err)
	}
	m.ln = ln
	go m.httpSrv.Serve(ln)
	return nil
}

// Addr returns the bound address.
func (m *Monitor) Addr() string {
	if m.ln == nil {
		return ""
	}
	return m.ln.Addr().String()
}

// Close shuts the monitor down.
func (m *Monitor) Close() error {
	m.scrapeMu.Lock()
	stop := m.scrapeStop
	m.scrapeStop = nil
	m.scrapeMu.Unlock()
	if stop != nil {
		stop()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return m.httpSrv.Shutdown(ctx)
}

// SetAlertThreshold raises an Alert once `kind` accumulates n reports.
func (m *Monitor) SetAlertThreshold(kind string, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.thresholds[kind] = n
}

// Alerts returns the raised alerts, oldest first.
func (m *Monitor) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Alert(nil), m.alerts...)
}

// Ingest records a report directly (in-process peers and the simulator).
func (m *Monitor) Ingest(r Report) {
	m.kindCounter(r.Kind).Inc()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counts[r.Kind]++
	m.recent = append(m.recent, r)
	if len(m.recent) > m.maxRing {
		m.recent = m.recent[len(m.recent)-m.maxRing:]
	}
	if th, ok := m.thresholds[r.Kind]; ok && m.counts[r.Kind] == th {
		m.alerts = append(m.alerts, Alert{Kind: r.Kind, Count: m.counts[r.Kind]})
		m.alertsRaised.Inc()
	}
}

// kindCounter caches the per-kind report counter series.
func (m *Monitor) kindCounter(kind string) *telemetry.Counter {
	m.mu.Lock()
	c, ok := m.reportsByKind[kind]
	if !ok {
		c = m.reg.Counter("monitor_reports_total",
			"operational reports received, by kind", telemetry.Labels{"kind": kind})
		m.reportsByKind[kind] = c
	}
	m.mu.Unlock()
	return c
}

// Count returns how many reports of a kind arrived.
func (m *Monitor) Count(kind string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counts[kind]
}

// Recent returns a copy of the recent-report ring.
func (m *Monitor) Recent() []Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Report(nil), m.recent...)
}

// handleReport ingests one peer report. The body is size-bounded and must be
// a single well-formed JSON report with a non-empty kind; anything else is a
// 400 that is counted but never lands in the ring.
func (m *Monitor) handleReport(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxReportBody))
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		m.reportsRejected.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if strings.TrimSpace(rep.Kind) == "" {
		m.reportsRejected.Inc()
		http.Error(w, "report kind is required", http.StatusBadRequest)
		return
	}
	m.Ingest(rep)
	w.WriteHeader(http.StatusNoContent)
}

// SetScrapeTargets configures the component telemetry endpoints this monitor
// aggregates (name → base URL serving GET /v1/telemetry).
func (m *Monitor) SetScrapeTargets(targets map[string]string) {
	m.scrapeMu.Lock()
	defer m.scrapeMu.Unlock()
	m.scrapeTargets = make(map[string]string, len(targets))
	for k, v := range targets {
		m.scrapeTargets[k] = strings.TrimSuffix(v, "/")
	}
}

// ScrapeOnce fetches every configured target's /v1/telemetry snapshot.
// Failures are soft: the previous snapshot for a target is kept, and the
// error counter advances.
func (m *Monitor) ScrapeOnce() {
	m.scrapeMu.Lock()
	targets := make(map[string]string, len(m.scrapeTargets))
	for k, v := range m.scrapeTargets {
		targets[k] = v
	}
	m.scrapeMu.Unlock()

	client := &http.Client{Timeout: 5 * time.Second}
	for name, base := range targets {
		snap, err := fetchSnapshot(client, base+"/v1/telemetry")
		if err != nil {
			m.scrapeErrors.Inc()
			continue
		}
		m.scrapes.Inc()
		m.scrapeMu.Lock()
		m.scraped[name] = snap
		m.scrapedAt[name] = time.Now()
		m.scrapeMu.Unlock()
	}
}

func fetchSnapshot(client *http.Client, url string) (telemetry.Snapshot, error) {
	var snap telemetry.Snapshot
	resp, err := client.Get(url)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("scrape %s: status %d", url, resp.StatusCode)
	}
	err = json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&snap)
	return snap, err
}

// StartScraping scrapes all targets every interval until the monitor closes
// or the returned stop function runs.
func (m *Monitor) StartScraping(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	stop = func() { once.Do(func() { close(done) }) }
	m.scrapeMu.Lock()
	m.scrapeStop = stop
	m.scrapeMu.Unlock()
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				m.ScrapeOnce()
			}
		}
	}()
	return stop
}

// Aggregate merges the latest scraped snapshot of every component into one
// fleet view.
func (m *Monitor) Aggregate() telemetry.Snapshot {
	m.scrapeMu.Lock()
	defer m.scrapeMu.Unlock()
	agg := telemetry.Snapshot{}
	names := make([]string, 0, len(m.scraped))
	for name := range m.scraped {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		agg.Merge(m.scraped[name])
	}
	return agg
}

// componentHealth is one scraped component's entry in the health summary.
type componentHealth struct {
	LastScrape time.Time `json:"lastScrape"`
	Counters   int       `json:"counters"`
}

// healthSummary is the GET /v1/health document: the report counters the
// monitor ingested itself, plus the scraped fleet aggregate.
type healthSummary struct {
	Reports    map[string]int             `json:"reports"`
	Alerts     []Alert                    `json:"alerts,omitempty"`
	Components map[string]componentHealth `json:"components,omitempty"`
	Fleet      telemetry.Snapshot         `json:"fleet,omitempty"`
}

func (m *Monitor) handleHealth(w http.ResponseWriter, _ *http.Request) {
	m.mu.Lock()
	sum := healthSummary{Reports: make(map[string]int, len(m.counts))}
	for k, v := range m.counts {
		sum.Reports[k] = v
	}
	sum.Alerts = append(sum.Alerts, m.alerts...)
	m.mu.Unlock()
	m.scrapeMu.Lock()
	if len(m.scraped) > 0 {
		sum.Components = make(map[string]componentHealth, len(m.scraped))
		for name, snap := range m.scraped {
			sum.Components[name] = componentHealth{
				LastScrape: m.scrapedAt[name],
				Counters:   len(snap.Counters),
			}
		}
	}
	m.scrapeMu.Unlock()
	sum.Fleet = m.Aggregate()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(sum)
}
