package controlplane

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"netsession/internal/analysis"
	"netsession/internal/telemetry"
)

// Monitor is a monitoring node: "peers upload information about their
// operation and about problems, such as application crash reports, to these
// nodes. Processing their logs helps to monitor the network in real-time"
// (§3.6). It ingests reports over HTTP, keeps per-kind counters and a bounded
// ring of recent reports, scrapes the telemetry endpoints of the other
// components into a fleet-wide aggregate, and exposes a health summary.
type Monitor struct {
	mu         sync.Mutex
	counts     map[string]int
	recent     []Report
	maxRing    int
	thresholds map[string]int
	alerts     []Alert

	reg             *telemetry.Registry
	reportsByKind   map[string]*telemetry.Counter
	reportsRejected *telemetry.Counter
	alertsRaised    *telemetry.Counter
	scrapes         *telemetry.Counter
	scrapeErrors    *telemetry.Counter

	scrapeMu         sync.Mutex
	scrapeTargets    map[string]string // component name -> base URL
	scraped          map[string]telemetry.Snapshot
	scrapedAnalytics map[string]analysis.StreamingSummary
	scrapedAt        map[string]time.Time
	// scrapeErrs / scrapeErrAt hold each target's last scrape failure. They
	// are cleared on success but survive stale eviction, so a dead CP node
	// stays visible in /v1/health with its error instead of silently
	// disappearing from the fleet view.
	scrapeErrs      map[string]string
	scrapeErrAt     map[string]time.Time
	scrapeTimeout   time.Duration
	staleAfter      time.Duration
	scrapeStop      func()
	scrapeEvictions *telemetry.Counter

	httpSrv *http.Server
	ln      net.Listener
}

// Alert is raised when a report kind crosses its configured threshold:
// "automated alerts are in place to notify network engineers in case of
// large-scale problems" (§3.8).
type Alert struct {
	Kind  string `json:"kind"`
	Count int    `json:"count"`
}

// Report is one operational report from a peer.
type Report struct {
	TimeMs int64  `json:"timeMs"`
	GUID   string `json:"guid"`
	Kind   string `json:"kind"` // e.g. "crash", "piece-corrupt", "nat-fail"
	Detail string `json:"detail"`
}

// maxReportBody bounds POST /v1/report bodies; reports are small JSON
// documents and anything larger is hostile or broken.
const maxReportBody = 16 << 10

// NewMonitor creates a monitoring node keeping up to ringSize recent
// reports.
func NewMonitor(ringSize int) *Monitor {
	if ringSize <= 0 {
		ringSize = 1024
	}
	reg := telemetry.NewRegistry()
	m := &Monitor{
		counts:        make(map[string]int),
		maxRing:       ringSize,
		thresholds:    make(map[string]int),
		reg:           reg,
		reportsByKind: make(map[string]*telemetry.Counter),
		reportsRejected: reg.Counter("monitor_reports_rejected_total",
			"malformed or oversized report uploads rejected", nil),
		alertsRaised: reg.Counter("monitor_alerts_total", "alerts raised", nil),
		scrapes: reg.Counter("monitor_scrapes_total",
			"successful component telemetry scrapes", nil),
		scrapeErrors: reg.Counter("monitor_scrape_errors_total",
			"failed component telemetry scrapes", nil),
		scrapeTargets:    make(map[string]string),
		scraped:          make(map[string]telemetry.Snapshot),
		scrapedAnalytics: make(map[string]analysis.StreamingSummary),
		scrapedAt:        make(map[string]time.Time),
		scrapeErrs:       make(map[string]string),
		scrapeErrAt:      make(map[string]time.Time),
		scrapeTimeout:    5 * time.Second,
		scrapeEvictions: reg.Counter("monitor_scrape_evictions_total",
			"components evicted from the fleet aggregate after going stale", nil),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/report", m.handleReport)
	mux.HandleFunc("GET /v1/health", m.handleHealth)
	mux.HandleFunc("GET /v1/analytics", m.handleAnalytics)
	telemetry.Mount(mux, reg)
	m.httpSrv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	return m
}

// Metrics exposes the monitor's own telemetry registry.
func (m *Monitor) Metrics() *telemetry.Registry { return m.reg }

// Start listens and serves in the background.
func (m *Monitor) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("controlplane: monitor listen: %w", err)
	}
	m.ln = ln
	go m.httpSrv.Serve(ln)
	return nil
}

// Addr returns the bound address.
func (m *Monitor) Addr() string {
	if m.ln == nil {
		return ""
	}
	return m.ln.Addr().String()
}

// Close shuts the monitor down.
func (m *Monitor) Close() error {
	m.scrapeMu.Lock()
	stop := m.scrapeStop
	m.scrapeStop = nil
	m.scrapeMu.Unlock()
	if stop != nil {
		stop()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return m.httpSrv.Shutdown(ctx)
}

// SetAlertThreshold raises an Alert once `kind` accumulates n reports.
func (m *Monitor) SetAlertThreshold(kind string, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.thresholds[kind] = n
}

// Alerts returns the raised alerts, oldest first.
func (m *Monitor) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Alert(nil), m.alerts...)
}

// Ingest records a report directly (in-process peers and the simulator).
func (m *Monitor) Ingest(r Report) {
	m.kindCounter(r.Kind).Inc()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counts[r.Kind]++
	m.recent = append(m.recent, r)
	if len(m.recent) > m.maxRing {
		m.recent = m.recent[len(m.recent)-m.maxRing:]
	}
	if th, ok := m.thresholds[r.Kind]; ok && m.counts[r.Kind] == th {
		m.alerts = append(m.alerts, Alert{Kind: r.Kind, Count: m.counts[r.Kind]})
		m.alertsRaised.Inc()
	}
}

// kindCounter caches the per-kind report counter series.
func (m *Monitor) kindCounter(kind string) *telemetry.Counter {
	m.mu.Lock()
	c, ok := m.reportsByKind[kind]
	if !ok {
		c = m.reg.Counter("monitor_reports_total",
			"operational reports received, by kind", telemetry.Labels{"kind": kind})
		m.reportsByKind[kind] = c
	}
	m.mu.Unlock()
	return c
}

// Count returns how many reports of a kind arrived.
func (m *Monitor) Count(kind string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counts[kind]
}

// Recent returns a copy of the recent-report ring.
func (m *Monitor) Recent() []Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Report(nil), m.recent...)
}

// handleReport ingests one peer report. The body is size-bounded and must be
// a single well-formed JSON report with a non-empty kind; anything else is a
// 400 that is counted but never lands in the ring.
func (m *Monitor) handleReport(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxReportBody))
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		m.reportsRejected.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if strings.TrimSpace(rep.Kind) == "" {
		m.reportsRejected.Inc()
		http.Error(w, "report kind is required", http.StatusBadRequest)
		return
	}
	m.Ingest(rep)
	w.WriteHeader(http.StatusNoContent)
}

// SetScrapeTargets configures the component telemetry endpoints this monitor
// aggregates (name → base URL serving GET /v1/telemetry).
func (m *Monitor) SetScrapeTargets(targets map[string]string) {
	m.scrapeMu.Lock()
	defer m.scrapeMu.Unlock()
	m.scrapeTargets = make(map[string]string, len(targets))
	for k, v := range targets {
		m.scrapeTargets[k] = strings.TrimSuffix(v, "/")
	}
}

// SetScrapePolicy configures the per-target scrape timeout and how long a
// component's last good scrape stays in the fleet aggregate. A target whose
// last success is at least staleAfter old is evicted, so a dead CP or edge
// stops polluting Aggregate and FleetAnalytics instead of contributing its
// final numbers forever. Zero keeps the current value (timeout defaults to
// 5s; staleAfter defaults to the scrape interval when StartScraping runs,
// and to "never" for purely manual ScrapeOnce use).
func (m *Monitor) SetScrapePolicy(timeout, staleAfter time.Duration) {
	m.scrapeMu.Lock()
	defer m.scrapeMu.Unlock()
	if timeout > 0 {
		m.scrapeTimeout = timeout
	}
	if staleAfter > 0 {
		m.staleAfter = staleAfter
	}
}

// ScrapeOnce fetches every configured target's /v1/telemetry snapshot — and,
// for targets that serve one, the /v1/analytics summary — in parallel, one
// slow target never delaying the others past its own timeout. Failures are
// soft: the previous snapshot for a target is kept until it goes stale, and
// the error counter advances.
func (m *Monitor) ScrapeOnce() {
	m.scrapeMu.Lock()
	targets := make(map[string]string, len(m.scrapeTargets))
	for k, v := range m.scrapeTargets {
		targets[k] = v
	}
	timeout := m.scrapeTimeout
	m.scrapeMu.Unlock()

	client := &http.Client{Timeout: timeout}
	var wg sync.WaitGroup
	for name, base := range targets {
		wg.Add(1)
		go func(name, base string) {
			defer wg.Done()
			snap, err := fetchSnapshot(client, base+"/v1/telemetry")
			if err != nil {
				m.scrapeErrors.Inc()
				m.scrapeMu.Lock()
				m.scrapeErrs[name] = err.Error()
				m.scrapeErrAt[name] = time.Now()
				m.scrapeMu.Unlock()
				return
			}
			// Analytics is optional per component: the control plane serves
			// it, edges and peers 404 — which is a skip, not an error.
			sum, aerr := fetchAnalytics(client, base+"/v1/analytics")
			m.scrapes.Inc()
			m.scrapeMu.Lock()
			m.scraped[name] = snap
			if aerr == nil {
				m.scrapedAnalytics[name] = sum
			}
			m.scrapedAt[name] = time.Now()
			delete(m.scrapeErrs, name)
			delete(m.scrapeErrAt, name)
			m.scrapeMu.Unlock()
		}(name, base)
	}
	wg.Wait()
	m.evictStale()
}

// evictStale drops components whose last successful scrape is older than the
// stale policy, counting each eviction.
func (m *Monitor) evictStale() {
	m.scrapeMu.Lock()
	defer m.scrapeMu.Unlock()
	if m.staleAfter <= 0 {
		return
	}
	now := time.Now()
	for name, at := range m.scrapedAt {
		if now.Sub(at) >= m.staleAfter {
			delete(m.scraped, name)
			delete(m.scrapedAnalytics, name)
			delete(m.scrapedAt, name)
			m.scrapeEvictions.Inc()
		}
	}
}

func fetchSnapshot(client *http.Client, url string) (telemetry.Snapshot, error) {
	var snap telemetry.Snapshot
	resp, err := client.Get(url)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("scrape %s: status %d", url, resp.StatusCode)
	}
	err = json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&snap)
	return snap, err
}

// errNoAnalytics reports that a target does not expose a live-analytics
// endpoint; callers treat it as "skip", never as a scrape failure.
var errNoAnalytics = fmt.Errorf("target serves no analytics endpoint")

func fetchAnalytics(client *http.Client, url string) (analysis.StreamingSummary, error) {
	var sum analysis.StreamingSummary
	resp, err := client.Get(url)
	if err != nil {
		return sum, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return sum, errNoAnalytics
	}
	if resp.StatusCode != http.StatusOK {
		return sum, fmt.Errorf("scrape %s: status %d", url, resp.StatusCode)
	}
	err = json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&sum)
	return sum, err
}

// StartScraping scrapes all targets every interval until the monitor closes
// or the returned stop function runs.
func (m *Monitor) StartScraping(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	stop = func() { once.Do(func() { close(done) }) }
	m.scrapeMu.Lock()
	m.scrapeStop = stop
	if m.staleAfter <= 0 {
		// Default stale policy: a component that misses one full scrape
		// cycle drops out of the fleet aggregates.
		m.staleAfter = interval
	}
	m.scrapeMu.Unlock()
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				m.ScrapeOnce()
			}
		}
	}()
	return stop
}

// Aggregate merges the latest scraped snapshot of every component into one
// fleet view.
func (m *Monitor) Aggregate() telemetry.Snapshot {
	m.scrapeMu.Lock()
	defer m.scrapeMu.Unlock()
	agg := telemetry.Snapshot{}
	names := make([]string, 0, len(m.scraped))
	for name := range m.scraped {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		agg.Merge(m.scraped[name])
	}
	return agg
}

// FleetAnalytics merges the latest analytics summary scraped from every
// component that serves one (the control planes) into a single fleet view:
// counts and byte totals sum, GUID/URL sketches union so peers reporting
// through several CPs are counted once. The bool is false when no analytics
// have been scraped yet.
func (m *Monitor) FleetAnalytics() (analysis.StreamingSummary, bool) {
	m.scrapeMu.Lock()
	defer m.scrapeMu.Unlock()
	names := make([]string, 0, len(m.scrapedAnalytics))
	for name := range m.scrapedAnalytics {
		names = append(names, name)
	}
	if len(names) == 0 {
		return analysis.StreamingSummary{}, false
	}
	sort.Strings(names)
	// Merge into a zero summary rather than starting from the first entry:
	// Merge adds into maps in place, and the stored per-component documents
	// must stay untouched for the next call.
	var fleet analysis.StreamingSummary
	for _, name := range names {
		sum := m.scrapedAnalytics[name]
		// A malformed sketch from one CP must not take down the fleet view;
		// its scalar tallies merged already, the sketch is skipped.
		_ = fleet.Merge(&sum)
	}
	return fleet, true
}

// handleAnalytics serves the merged fleet analytics on GET /v1/analytics —
// the same document shape each CP serves, so dashboards point at either.
func (m *Monitor) handleAnalytics(w http.ResponseWriter, _ *http.Request) {
	fleet, ok := m.FleetAnalytics()
	if !ok {
		http.Error(w, "no analytics scraped yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(fleet)
}

// componentHealth is one configured target's entry in the health summary. A
// healthy target carries its last scrape time; a failing one carries the
// last error and when it happened — a dead CP node shows up here even after
// stale eviction removed it from the fleet aggregates.
type componentHealth struct {
	LastScrape  time.Time `json:"lastScrape,omitempty"`
	Counters    int       `json:"counters,omitempty"`
	LastError   string    `json:"lastError,omitempty"`
	LastErrorAt time.Time `json:"lastErrorAt,omitempty"`
}

// healthSummary is the GET /v1/health document: the report counters the
// monitor ingested itself, plus the scraped fleet aggregate.
type healthSummary struct {
	Reports    map[string]int             `json:"reports"`
	Alerts     []Alert                    `json:"alerts,omitempty"`
	Components map[string]componentHealth `json:"components,omitempty"`
	Fleet      telemetry.Snapshot         `json:"fleet,omitempty"`
	Analytics  *analysis.StreamingSummary `json:"analytics,omitempty"`
}

func (m *Monitor) handleHealth(w http.ResponseWriter, _ *http.Request) {
	m.mu.Lock()
	sum := healthSummary{Reports: make(map[string]int, len(m.counts))}
	for k, v := range m.counts {
		sum.Reports[k] = v
	}
	sum.Alerts = append(sum.Alerts, m.alerts...)
	m.mu.Unlock()
	m.scrapeMu.Lock()
	if len(m.scraped) > 0 || len(m.scrapeErrs) > 0 {
		sum.Components = make(map[string]componentHealth, len(m.scraped)+len(m.scrapeErrs))
		for name, snap := range m.scraped {
			sum.Components[name] = componentHealth{
				LastScrape: m.scrapedAt[name],
				Counters:   len(snap.Counters),
			}
		}
		// Failing targets appear (or are annotated) with their last error;
		// a target can carry both a stale-but-kept snapshot and an error.
		for name, errStr := range m.scrapeErrs {
			ch := sum.Components[name]
			ch.LastError = errStr
			ch.LastErrorAt = m.scrapeErrAt[name]
			sum.Components[name] = ch
		}
	}
	m.scrapeMu.Unlock()
	sum.Fleet = m.Aggregate()
	if fleet, ok := m.FleetAnalytics(); ok {
		sum.Analytics = &fleet
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(sum)
}
