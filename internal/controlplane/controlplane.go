// Package controlplane implements the NetSession control plane (§3.6): the
// connection nodes (CNs) that terminate the peers' persistent TCP control
// connections, the database nodes (DNs) that hold the object→peer directory,
// the monitoring nodes that ingest operational reports, and the composition
// that wires them together with region-local routing, soft-state recovery
// (RE-ADD, §3.8) and rate-limited reconnection.
package controlplane

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"netsession/internal/accounting"
	"netsession/internal/cluster"
	"netsession/internal/edge"
	"netsession/internal/faults"
	"netsession/internal/geo"
	"netsession/internal/id"
	"netsession/internal/logpipe"
	"netsession/internal/protocol"
	"netsession/internal/selection"
	"netsession/internal/telemetry"
)

// Config assembles a control plane.
type Config struct {
	// NodeID names this node in a multi-node cluster; ApplyRingView compares
	// ring owners against it. Empty is fine for single-node deployments,
	// which own every region forever.
	NodeID string
	// Scape resolves declared peer IPs to (location, AS) for region routing
	// and selection locality.
	Scape *geo.EdgeScape
	// Minter verifies the edge-issued search tokens peers present on
	// queries.
	Minter *edge.TokenMinter
	// Collector receives usage records.
	Collector *accounting.Collector
	// Policy is the peer-selection policy.
	Policy selection.Policy
	// ClientConfig is pushed to peers on login.
	ClientConfig edge.ClientConfig
	// MaxSessionsPerCN sheds logins beyond this with a retry-after, the
	// §3.8 rate-limited recovery. Zero means unlimited.
	MaxSessionsPerCN int
	// DNRebuildWindowMs is how long a DN that lost its database answers
	// queries edge-only while peers RE-ADD their holdings (§3.8). Zero
	// selects 2000ms; negative disables the window (queries immediately see
	// whatever partial directory has re-formed).
	DNRebuildWindowMs int64
	// NowMs supplies time; the simulator injects a virtual clock. Nil uses
	// wall clock.
	NowMs func() int64
	// Telemetry is the metrics registry; nil creates a private one. It is
	// served on the status server's GET /metrics and GET /v1/telemetry.
	Telemetry *telemetry.Registry
	// LogStore, when set, receives every accepted download record as
	// append-only rotated segments — the durable month of logs the paper's
	// analyses read (§4.1). The in-memory collector then only holds a recent
	// window.
	LogStore *logpipe.Store
	// MaxLogRecords caps how many records of each kind the collector keeps
	// in memory; zero selects the accounting defaults, negative is unbounded.
	MaxLogRecords int
	// IngestFaults, when set, injects faults (503s, stalls, 429 storms) into
	// the log ingest endpoint; it can also be swapped at runtime through
	// LogIngest().SetFaults.
	IngestFaults *faults.Injector
	// LogAcks, when set, is this node's durable batch-acknowledgement store,
	// consulted and fed by the log ingest endpoint and served to peers on
	// the status server's ack endpoints for anti-entropy reconciliation — so
	// a batch acked by one node and retried against another after a failover
	// still counts exactly once, across real process boundaries. Nil gives
	// the node a private in-memory window.
	LogAcks *logpipe.AckStore
	// JoinExisting marks a node joining an already-running cluster: the
	// first ring view it applies treats its assigned regions as real
	// takeovers (rebuild window and all) instead of a silent boot
	// assignment, because peers in those regions are already attached to
	// other nodes and must be rebalanced over.
	JoinExisting bool
	// ConnWrap, when set, wraps every accepted CN connection — the hook
	// fault-injection harnesses use to make control sessions drop or lag
	// (chaos testing the §3.8 reconnect path). Nil leaves conns untouched.
	ConnWrap func(net.Conn) net.Conn
}

// cpMetrics pre-resolves the control plane's metric handles; CN session
// loops touch these on every message, so lookups must not happen there.
type cpMetrics struct {
	reg             *telemetry.Registry
	logins          *telemetry.Counter
	loginsShed      *telemetry.Counter
	sessions        *telemetry.Gauge
	queries         *telemetry.Counter
	queriesRejected *telemetry.Counter
	queryDurMs      *telemetry.Histogram
	registers       *telemetry.Counter
	unregisters     *telemetry.Counter
	statsReports    *telemetry.Counter
	readds          *telemetry.Counter

	// DN-loss recovery series, registered eagerly per region so operators
	// see zeroes (not gaps) before the first failure: announcements absorbed
	// during a rebuild window, a rebuilding flag, and the window's duration.
	rebuildAnnounces [geo.NumRegions]*telemetry.Counter
	rebuilding       [geo.NumRegions]*telemetry.Gauge
	rebuildMs        *telemetry.Histogram

	// Cluster series, eager for the same reason: ring size, per-region
	// ownership handoffs, and logins redirected to another node's CN.
	ringNodes        *telemetry.Gauge
	regionHandoffs   [geo.NumRegions]*telemetry.Counter
	loginsRedirected *telemetry.Counter

	// Planned-drain series, eager so a cluster that has never drained shows
	// zeroes: regions handed off with their directory snapshot, and entries
	// transferred inside those snapshots.
	drainRegions *telemetry.Counter
	drainEntries *telemetry.Counter
}

func newCPMetrics(reg *telemetry.Registry) *cpMetrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	m := &cpMetrics{
		reg:    reg,
		logins: reg.Counter("cp_logins_total", "accepted peer logins", nil),
		loginsShed: reg.Counter("cp_logins_shed_total",
			"logins shed by per-CN session limits (rate-limited recovery)", nil),
		sessions: reg.Gauge("cp_sessions", "live peer control sessions", nil),
		queries:  reg.Counter("cp_queries_total", "peer-directory queries", nil),
		queriesRejected: reg.Counter("cp_queries_rejected_total",
			"queries rejected for invalid or non-p2p tokens", nil),
		queryDurMs: reg.Histogram("cp_query_duration_ms",
			"DN directory selection latency in milliseconds",
			telemetry.DurationBucketsMs, nil),
		registers:   reg.Counter("cp_registers_total", "directory registrations", nil),
		unregisters: reg.Counter("cp_unregisters_total", "directory withdrawals", nil),
		statsReports: reg.Counter("cp_stats_reports_total",
			"download usage reports received", nil),
		readds: reg.Counter("cp_readds_total",
			"RE-ADD soft-state recovery replies processed", nil),
		rebuildMs: reg.Histogram("dn_rebuild_ms",
			"duration of DN directory rebuild windows in milliseconds",
			telemetry.DurationBucketsMs, nil),
		ringNodes: reg.Gauge("cp_ring_nodes",
			"control-plane nodes alive on the cluster ring", nil),
		loginsRedirected: reg.Counter("cp_logins_redirected_total",
			"logins redirected to the ring owner of the peer's region", nil),
		drainRegions: reg.Counter("cp_drain_regions_total",
			"regions handed off with a directory snapshot during planned drains", nil),
		drainEntries: reg.Counter("cp_drain_entries_transferred_total",
			"directory entries pushed to new owners during planned drains", nil),
	}
	for r := 0; r < geo.NumRegions; r++ {
		label := telemetry.Labels{"region": geo.NetworkRegion(r).String()}
		m.rebuildAnnounces[r] = reg.Counter("dn_rebuild_announces_total",
			"registrations absorbed while the region's DN was rebuilding", label)
		m.rebuilding[r] = reg.Gauge("dn_rebuilding",
			"1 while the region's DN is inside a rebuild window", label)
		m.regionHandoffs[r] = reg.Counter("cp_region_handoffs_total",
			"times this node took over the region from the cluster ring", label)
	}
	// A control plane that never joins a cluster is a ring of one.
	m.ringNodes.Set(1)
	return m
}

// ControlPlane is the assembled control plane: one DN (directory) per
// network region plus any number of CNs, sharing a global session registry
// used to route connect-to instructions between peers on different CNs
// ("The CN/DN system is interconnected across regions", §3.7).
type ControlPlane struct {
	cfg       Config
	metrics   *cpMetrics
	ingest    *logpipe.Ingest
	analytics *cpAnalytics

	dns [geo.NumRegions]*DN

	mu       sync.Mutex
	cns      []*CN
	sessions map[id.GUID]*session
	epoch    uint32

	// Ring-ownership state. Everything starts owned (the single-node case);
	// ApplyRingView flips regions as the cluster view changes.
	ownMu       sync.Mutex
	owned       [geo.NumRegions]bool
	ownerCN     [geo.NumRegions]string // redirect target when not owned
	ringApplied bool
	// transferMs records, per region, when a draining node pushed us its
	// directory snapshot; a takeover arriving inside the validity window
	// skips the rebuild entirely (the directory is already populated).
	transferMs [geo.NumRegions]int64

	// memberMu guards member, the cluster membership this node participates
	// in (nil when single-node). The status handler and the drain path read
	// it; the cluster wiring sets it once the membership exists.
	memberMu sync.Mutex
	member   *cluster.Membership

	drainMu   sync.Mutex
	drained   bool
	drainHook func(DrainSummary)
}

// New creates a control plane with one DN per region and no CNs yet.
func New(cfg Config) (*ControlPlane, error) {
	if cfg.Scape == nil {
		return nil, fmt.Errorf("controlplane: Config.Scape is required")
	}
	if cfg.Collector == nil {
		cfg.Collector = accounting.NewCollector(nil)
	}
	if cfg.Policy.MaxPeers == 0 {
		cfg.Policy = selection.DefaultPolicy()
	}
	cp := &ControlPlane{
		cfg:      cfg,
		metrics:  newCPMetrics(cfg.Telemetry),
		sessions: make(map[id.GUID]*session),
	}
	cp.analytics = newCPAnalytics(cp.metrics.reg)
	cp.cfg.Collector.Configure(accounting.Limits{
		MaxDownloads:     cfg.MaxLogRecords,
		MaxLogins:        cfg.MaxLogRecords,
		MaxRegistrations: cfg.MaxLogRecords,
	}, cp.metrics.reg)
	ingestCfg := logpipe.IngestConfig{
		Handle:    cp.ingestEntry,
		Telemetry: cp.metrics.reg,
	}
	// Assign only when non-nil: a typed-nil *AckStore in the interface field
	// would defeat NewIngest's private-window fallback.
	if cfg.LogAcks != nil {
		ingestCfg.Acks = cfg.LogAcks
	}
	cp.ingest = logpipe.NewIngest(ingestCfg)
	for r := 0; r < geo.NumRegions; r++ {
		cp.owned[r] = true
	}
	cp.ingest.SetFaults(cfg.IngestFaults)
	if cp.cfg.DNRebuildWindowMs == 0 {
		cp.cfg.DNRebuildWindowMs = 2000
	}
	for r := 0; r < geo.NumRegions; r++ {
		dn := NewDN(geo.NetworkRegion(r), cfg.Collector)
		region := r
		dn.onRebuildDone = func(elapsedMs float64) {
			cp.metrics.rebuildMs.Observe(elapsedMs)
			cp.metrics.rebuilding[region].Set(0)
		}
		cp.dns[r] = dn
	}
	return cp, nil
}

// Metrics exposes the control plane's telemetry registry.
func (cp *ControlPlane) Metrics() *telemetry.Registry { return cp.metrics.reg }

// DN returns the database node serving a region.
func (cp *ControlPlane) DN(r geo.NetworkRegion) *DN { return cp.dns[int(r)] }

// Collector returns the accounting collector.
func (cp *ControlPlane) Collector() *accounting.Collector { return cp.cfg.Collector }

// LogIngest returns the log ingest endpoint (mounted on the status server's
// POST /v1/logs/batch); chaos tests flip faults on it at runtime.
func (cp *ControlPlane) LogIngest() *logpipe.Ingest { return cp.ingest }

// LogStore returns the durable segment store, or nil when not configured.
func (cp *ControlPlane) LogStore() *logpipe.Store { return cp.cfg.LogStore }

// LogAcks returns the node's durable ack store, or nil when not configured.
func (cp *ControlPlane) LogAcks() *logpipe.AckStore { return cp.cfg.LogAcks }

// SetMembership attaches the cluster membership this node participates in.
// The status handler uses it to gossip the alive view (and learn probers);
// the drain path uses it to find survivors and announce its departure.
func (cp *ControlPlane) SetMembership(m *cluster.Membership) {
	cp.memberMu.Lock()
	cp.member = m
	cp.memberMu.Unlock()
}

func (cp *ControlPlane) membership() *cluster.Membership {
	cp.memberMu.Lock()
	defer cp.memberMu.Unlock()
	return cp.member
}

// StartCN starts a connection node listening on addr and returns it.
func (cp *ControlPlane) StartCN(addr string) (*CN, error) {
	cn, err := startCN(cp, addr)
	if err != nil {
		return nil, err
	}
	cp.mu.Lock()
	cp.cns = append(cp.cns, cn)
	cp.mu.Unlock()
	return cn, nil
}

// Close shuts down all CNs.
func (cp *ControlPlane) Close() {
	cp.mu.Lock()
	cns := append([]*CN(nil), cp.cns...)
	cp.mu.Unlock()
	for _, cn := range cns {
		cn.Close()
	}
}

// StartJanitor begins periodic soft-state expiry across all DNs: entries
// older than ttlMs are purged every interval. Returns a stop function.
// Expiry is safe because the directory's contents are reconstructible from
// the peers themselves (§3.8).
func (cp *ControlPlane) StartJanitor(interval time.Duration, ttlMs int64) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				now := cp.now()
				for _, dn := range cp.dns {
					dn.dir.Expire(now, ttlMs)
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// FailDN simulates the loss of the DN for one region: its database is
// cleared, a rebuild window opens (during which queries answer edge-only,
// §3.8), and every connected peer in the region is asked to RE-ADD its
// object list. The window closes on its own even if no traffic arrives.
func (cp *ControlPlane) FailDN(r geo.NetworkRegion) {
	dn := cp.dns[int(r)]
	dn.dir.Clear()
	window := cp.cfg.DNRebuildWindowMs
	if window > 0 {
		dn.StartRebuild(cp.now(), window)
		cp.metrics.rebuilding[int(r)].Set(1)
		time.AfterFunc(time.Duration(window)*time.Millisecond+50*time.Millisecond,
			func() { dn.Rebuilding(cp.now()) })
	}
	cp.mu.Lock()
	var toAsk []*session
	for _, s := range cp.sessions {
		if s.region == r {
			toAsk = append(toAsk, s)
		}
	}
	cp.mu.Unlock()
	for _, s := range toAsk {
		s.send(&protocol.ReAdd{})
	}
}

// SessionCount returns the number of live peer sessions.
func (cp *ControlPlane) SessionCount() int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return len(cp.sessions)
}

// Connected reports whether a peer currently holds a control connection.
func (cp *ControlPlane) Connected(g id.GUID) bool {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	_, ok := cp.sessions[g]
	return ok
}

func (cp *ControlPlane) now() int64 {
	if cp.cfg.NowMs != nil {
		return cp.cfg.NowMs()
	}
	return wallNowMs()
}

// register tracks a new session, replacing any stale session of the same
// GUID (e.g. after an abrupt reconnect).
func (cp *ControlPlane) register(s *session) {
	cp.mu.Lock()
	old := cp.sessions[s.guid]
	cp.sessions[s.guid] = s
	cp.metrics.sessions.Set(float64(len(cp.sessions)))
	cp.mu.Unlock()
	if old != nil && old != s {
		old.closeConn()
	}
}

func (cp *ControlPlane) unregister(s *session) {
	cp.mu.Lock()
	if cp.sessions[s.guid] == s {
		delete(cp.sessions, s.guid)
	}
	cp.metrics.sessions.Set(float64(len(cp.sessions)))
	cp.mu.Unlock()
	// Departing peers leave the directory; their registrations are soft
	// state that they will re-announce on reconnect.
	cp.dns[int(s.region)].dir.DropPeer(s.guid)
}

// lookupSession finds a live session by GUID across all CNs.
func (cp *ControlPlane) lookupSession(g id.GUID) *session {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.sessions[g]
}

// locate resolves a login to its geo record. Unknown declared IPs fall back
// to a zero record in region 0 (live smoke tests without a synthetic
// identity).
func (cp *ControlPlane) locate(declaredIP string) geo.Record {
	if declaredIP != "" {
		if ip, err := netip.ParseAddr(declaredIP); err == nil {
			if rec, ok := cp.cfg.Scape.Lookup(ip); ok {
				return rec
			}
		}
	}
	return geo.Record{}
}
