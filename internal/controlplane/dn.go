package controlplane

import (
	"netsession/internal/accounting"
	"netsession/internal/content"
	"netsession/internal/geo"
	"netsession/internal/selection"
)

// DN is a database node: the object→peer directory for one network region
// (§3.6). It wraps the selection directory and logs registrations for the
// Figure 5 copy counts.
type DN struct {
	region    geo.NetworkRegion
	dir       *selection.Directory
	collector *accounting.Collector
}

// NewDN creates a database node for a region.
func NewDN(region geo.NetworkRegion, collector *accounting.Collector) *DN {
	return &DN{
		region:    region,
		dir:       selection.NewDirectory(region),
		collector: collector,
	}
}

// Region returns the DN's network region.
func (d *DN) Region() geo.NetworkRegion { return d.region }

// Directory exposes the underlying directory (for the simulator, which
// drives selection without TCP).
func (d *DN) Directory() *selection.Directory { return d.dir }

// Register records that a peer holds an object and can serve it.
func (d *DN) Register(obj content.ObjectID, e selection.Entry, nowMs int64) {
	d.dir.Register(obj, e)
	if d.collector != nil {
		d.collector.AddRegistration(accounting.RegistrationRecord{
			TimeMs: nowMs, GUID: e.Info.GUID, Object: obj,
		})
	}
}

// Copies returns how many peers register the object in this region.
func (d *DN) Copies(obj content.ObjectID) int { return d.dir.Copies(obj) }
