package controlplane

import (
	"sync"

	"netsession/internal/accounting"
	"netsession/internal/content"
	"netsession/internal/geo"
	"netsession/internal/selection"
)

// DN is a database node: the object→peer directory for one network region
// (§3.6). It wraps the selection directory and logs registrations for the
// Figure 5 copy counts.
//
// A DN's contents are soft state, reconstructible from the peers themselves
// (§3.8). After a loss the DN enters a rebuild window: connected peers are
// asked to RE-ADD their object lists, and until the window closes Select
// answers edge-only rather than serving a directory known to be partial.
type DN struct {
	region    geo.NetworkRegion
	dir       *selection.Directory
	collector *accounting.Collector

	mu             sync.Mutex
	rebuildStartMs int64 // nonzero while a rebuild window is open
	rebuildUntilMs int64
	// onRebuildDone, set by the control plane, observes the rebuild duration
	// (telemetry) when the window closes. Called at most once per rebuild.
	onRebuildDone func(elapsedMs float64)
}

// NewDN creates a database node for a region.
func NewDN(region geo.NetworkRegion, collector *accounting.Collector) *DN {
	return &DN{
		region:    region,
		dir:       selection.NewDirectory(region),
		collector: collector,
	}
}

// Region returns the DN's network region.
func (d *DN) Region() geo.NetworkRegion { return d.region }

// Directory exposes the underlying directory (for the simulator, which
// drives selection without TCP).
func (d *DN) Directory() *selection.Directory { return d.dir }

// Register records that a peer holds an object and can serve it.
func (d *DN) Register(obj content.ObjectID, e selection.Entry, nowMs int64) {
	d.dir.Register(obj, e)
	if d.collector != nil {
		d.collector.AddRegistration(accounting.RegistrationRecord{
			TimeMs: nowMs, GUID: e.Info.GUID, Object: obj,
		})
	}
}

// Copies returns how many peers register the object in this region.
func (d *DN) Copies(obj content.ObjectID) int { return d.dir.Copies(obj) }

// StartRebuild opens (or extends) the post-failure rebuild window: for the
// next windowMs the directory is considered partial and queries fall back to
// edge-only delivery while peers re-announce their holdings.
func (d *DN) StartRebuild(nowMs, windowMs int64) {
	if windowMs <= 0 {
		return
	}
	d.mu.Lock()
	if d.rebuildStartMs == 0 {
		d.rebuildStartMs = nowMs
	}
	d.rebuildUntilMs = nowMs + windowMs
	d.mu.Unlock()
}

// Rebuilding reports whether the DN is inside its rebuild window. The first
// call past the window's end closes it and reports the elapsed rebuild time
// to the control plane's telemetry.
func (d *DN) Rebuilding(nowMs int64) bool {
	d.mu.Lock()
	if d.rebuildStartMs == 0 {
		d.mu.Unlock()
		return false
	}
	if nowMs < d.rebuildUntilMs {
		d.mu.Unlock()
		return true
	}
	elapsed := nowMs - d.rebuildStartMs
	done := d.onRebuildDone
	d.rebuildStartMs, d.rebuildUntilMs = 0, 0
	d.mu.Unlock()
	if done != nil {
		done(float64(elapsed))
	}
	return false
}
