package telemetry

import (
	"sync"
	"time"
)

// Lifecycle stage names for a download trace. A stage may occur many times
// (each edge piece fetch is one edge-fetch span); the trace aggregates
// occurrences per stage, which keeps tracing allocation-light on multi-
// thousand-piece transfers while still giving per-stage counts and
// durations.
const (
	StageAuthorize     = "authorize"      // edge token mint (§3.5)
	StageManifest      = "manifest"       // piece-hash manifest fetch
	StageEdgeFetch     = "edge-fetch"     // HTTP piece download from the edge
	StagePeerLookup    = "peer-lookup"    // control-plane query for peers (§3.7)
	StageSwarmConnect  = "swarm-connect"  // dial + handshake with a peer
	StagePieceTransfer = "piece-transfer" // piece received from a peer
	StageComplete      = "complete"       // whole-download wall time
)

// StageSummary is one stage's aggregate within a trace.
type StageSummary struct {
	Name  string        `json:"name"`
	Count int           `json:"count"`
	Total time.Duration `json:"totalNs"`
	// First and Last are offsets from the trace start to the first
	// occurrence's start and the last occurrence's end.
	First time.Duration `json:"firstNs"`
	Last  time.Duration `json:"lastNs"`
}

// Event is a point-in-time annotation on a trace.
type Event struct {
	At     time.Duration `json:"atNs"` // offset from trace start
	Name   string        `json:"name"`
	Detail string        `json:"detail,omitempty"`
}

// Trace records the lifecycle of one operation (a download: edge fetch →
// peer lookup → swarm connect → piece transfer → completion) as per-stage
// aggregated spans plus discrete events. All methods are safe for concurrent
// use and safe on a nil receiver, so instrumented code never needs nil
// checks when tracing is disabled.
type Trace struct {
	Name  string
	ID    string
	start time.Time

	mu     sync.Mutex
	stages map[string]*StageSummary
	order  []string
	events []Event
	ended  time.Duration
}

// NewTrace starts a trace now.
func NewTrace(name, id string) *Trace {
	return &Trace{
		Name:   name,
		ID:     id,
		start:  time.Now(),
		stages: make(map[string]*StageSummary),
	}
}

// StartStage opens one occurrence of a stage and returns the function that
// closes it. Typical use: `defer tr.StartStage(StageEdgeFetch)()`.
func (t *Trace) StartStage(name string) func() {
	if t == nil {
		return func() {}
	}
	begin := time.Now()
	return func() { t.observe(name, begin, time.Since(begin)) }
}

// Observe records one completed occurrence of a stage that ends now.
func (t *Trace) Observe(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.observe(name, time.Now().Add(-d), d)
}

func (t *Trace) observe(name string, begin time.Time, d time.Duration) {
	if d <= 0 {
		d = time.Nanosecond // zero-duration stages still count as occurred
	}
	startOff := begin.Sub(t.start)
	t.mu.Lock()
	s := t.stages[name]
	if s == nil {
		s = &StageSummary{Name: name, First: startOff}
		t.stages[name] = s
		t.order = append(t.order, name)
	}
	s.Count++
	s.Total += d
	if end := startOff + d; end > s.Last {
		s.Last = end
	}
	t.mu.Unlock()
}

// Event annotates the trace at the current instant.
func (t *Trace) Event(name, detail string) {
	if t == nil {
		return
	}
	at := time.Since(t.start)
	t.mu.Lock()
	t.events = append(t.events, Event{At: at, Name: name, Detail: detail})
	t.mu.Unlock()
}

// End closes the trace, recording the complete stage spanning the whole
// lifetime. Multiple calls keep the first end time.
func (t *Trace) End() {
	if t == nil {
		return
	}
	d := time.Since(t.start)
	t.mu.Lock()
	already := t.ended != 0
	if !already {
		t.ended = d
	}
	t.mu.Unlock()
	if !already {
		t.observe(StageComplete, t.start, d)
	}
}

// Duration returns the trace length: end-to-end if ended, elapsed so far
// otherwise.
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ended != 0 {
		return t.ended
	}
	return time.Since(t.start)
}

// Stage returns one stage's aggregate.
func (t *Trace) Stage(name string) (StageSummary, bool) {
	if t == nil {
		return StageSummary{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.stages[name]
	if !ok {
		return StageSummary{}, false
	}
	return *s, true
}

// Stages returns stage aggregates ordered by first occurrence.
func (t *Trace) Stages() []StageSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageSummary, 0, len(t.order))
	for _, name := range t.order {
		out = append(out, *t.stages[name])
	}
	return out
}

// TraceSnapshot is the JSON form of a trace.
type TraceSnapshot struct {
	Name     string         `json:"name"`
	ID       string         `json:"id"`
	Start    time.Time      `json:"start"`
	Duration time.Duration  `json:"durationNs"`
	Stages   []StageSummary `json:"stages"`
	Events   []Event        `json:"events,omitempty"`
}

// Snapshot copies the trace for serialization.
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	snap := TraceSnapshot{
		Name: t.Name, ID: t.ID, Start: t.start,
		Duration: t.Duration(), Stages: t.Stages(),
	}
	t.mu.Lock()
	snap.Events = append([]Event(nil), t.events...)
	t.mu.Unlock()
	return snap
}

// TraceLog is a bounded ring of completed traces; components keep one so
// operators (and tests) can inspect recent lifecycles.
type TraceLog struct {
	mu     sync.Mutex
	max    int
	traces []*Trace
}

// NewTraceLog creates a ring keeping up to max traces (default 64).
func NewTraceLog(max int) *TraceLog {
	if max <= 0 {
		max = 64
	}
	return &TraceLog{max: max}
}

// Add appends a trace, evicting the oldest past capacity.
func (l *TraceLog) Add(t *Trace) {
	if l == nil || t == nil {
		return
	}
	l.mu.Lock()
	l.traces = append(l.traces, t)
	if len(l.traces) > l.max {
		l.traces = l.traces[len(l.traces)-l.max:]
	}
	l.mu.Unlock()
}

// Recent returns a copy of the ring, oldest first.
func (l *TraceLog) Recent() []*Trace {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*Trace(nil), l.traces...)
}
