// Package telemetry is the system-wide observability layer: a
// dependency-free metrics registry (atomic counters, gauges and fixed-bucket
// histograms, safe on hot paths) plus a lightweight span tracer that records
// the lifecycle of a download. The paper's operational story rests on this
// kind of instrumentation: peers "upload information about their operation
// and about problems" to monitoring nodes, and "processing their logs helps
// to monitor the network in real-time" (§3.6, §3.8). Every component — edge
// servers, the control plane, the monitoring node, peers and the simulator —
// registers its metrics here and exposes them in Prometheus text format on
// GET /metrics and as JSON on GET /v1/telemetry.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is an optional set of label key/values attached to a metric. The
// (name, labels) pair identifies one time series; series with the same name
// form a family sharing HELP and TYPE in the exposition.
type Labels map[string]string

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use and allocation-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (float64, atomic).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by d (CAS loop; safe under contention).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram. Buckets are cumulative upper bounds
// in ascending order; observations above the last bound land only in the
// implicit +Inf bucket. Observe is lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // float64 bits, CAS-updated
	count  atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DurationBucketsMs are default latency buckets in milliseconds, spanning
// sub-millisecond piece fetches to multi-minute stalls.
var DurationBucketsMs = []float64{0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000}

// SizeBuckets are default byte-size buckets (1 KiB … 1 GiB).
var SizeBuckets = []float64{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

// series is one registered time series.
type series struct {
	name   string
	help   string
	kind   kind
	labels string // rendered {k="v",...} or ""

	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
}

// Registry holds the metrics of one component. The zero value is not usable;
// call NewRegistry. Lookup/registration takes a mutex, so callers on hot
// paths should resolve their metric pointers once and keep them.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series // keyed by name+labels
	order  []string           // registration order, for stable family grouping
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// renderLabels produces a canonical `{k="v",...}` string with sorted keys.
func renderLabels(ls Labels) string {
	if len(ls) == 0 {
		return ""
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(ls[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (r *Registry) lookup(name string, ls Labels, k kind) *series {
	key := name + renderLabels(ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[key]; ok {
		if s.kind != k {
			panic(fmt.Sprintf("telemetry: %s re-registered with a different type", key))
		}
		return s
	}
	s := &series{name: name, kind: k, labels: renderLabels(ls)}
	r.series[key] = s
	r.order = append(r.order, key)
	return s
}

// Counter returns (registering on first use) the counter time series
// identified by name and labels. Help text is set by the first caller that
// provides one.
func (r *Registry) Counter(name, help string, ls Labels) *Counter {
	s := r.lookup(name, ls, kindCounter)
	r.mu.Lock()
	if s.counter == nil {
		s.counter = &Counter{}
	}
	if s.help == "" {
		s.help = help
	}
	c := s.counter
	r.mu.Unlock()
	return c
}

// Gauge returns (registering on first use) the gauge time series.
func (r *Registry) Gauge(name, help string, ls Labels) *Gauge {
	s := r.lookup(name, ls, kindGauge)
	r.mu.Lock()
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	if s.help == "" {
		s.help = help
	}
	g := s.gauge
	r.mu.Unlock()
	return g
}

// Histogram returns (registering on first use) the histogram time series
// with the given cumulative upper bounds; nil bounds select
// DurationBucketsMs. Bounds are fixed at first registration.
func (r *Registry) Histogram(name, help string, bounds []float64, ls Labels) *Histogram {
	s := r.lookup(name, ls, kindHistogram)
	r.mu.Lock()
	if s.histogram == nil {
		if bounds == nil {
			bounds = DurationBucketsMs
		}
		b := append([]float64(nil), bounds...)
		s.histogram = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	}
	if s.help == "" {
		s.help = help
	}
	h := s.histogram
	r.mu.Unlock()
	return h
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Families are sorted by name; series within a
// family by label string, so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	all := make([]*series, 0, len(r.order))
	for _, key := range r.order {
		all = append(all, r.series[key])
	}
	r.mu.Unlock()
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].name != all[j].name {
			return all[i].name < all[j].name
		}
		return all[i].labels < all[j].labels
	})
	lastFamily := ""
	for _, s := range all {
		if s.name != lastFamily {
			lastFamily = s.name
			if s.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.name, s.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.name, typeString(s.kind)); err != nil {
				return err
			}
		}
		switch s.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", s.name, s.labels, s.counter.Value()); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.name, s.labels, formatFloat(s.gauge.Value())); err != nil {
				return err
			}
		case kindHistogram:
			if err := writeHistogram(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, s *series) error {
	h := s.histogram
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			s.name, withLabel(s.labels, "le", formatFloat(bound)), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.name, withLabel(s.labels, "le", "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.name, s.labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.name, s.labels, h.Count())
	return err
}

// withLabel splices one more label pair into a rendered label string.
func withLabel(labels, k, v string) string {
	pair := k + `="` + escapeLabel(v) + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

func typeString(k kind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}

// HistogramSnapshot is a histogram's state in a Snapshot.
type HistogramSnapshot struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"` // per-bucket (non-cumulative); last is +Inf
}

// Snapshot is a point-in-time copy of a registry, the JSON form served on
// /v1/telemetry and the unit the Monitor scrapes and aggregates.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every series. Keys include rendered labels, e.g.
// `edge_requests_total{endpoint="data"}`.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	all := make(map[string]*series, len(r.series))
	for k, s := range r.series {
		all[k] = s
	}
	r.mu.Unlock()
	snap := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for key, s := range all {
		switch s.kind {
		case kindCounter:
			snap.Counters[key] = s.counter.Value()
		case kindGauge:
			snap.Gauges[key] = s.gauge.Value()
		case kindHistogram:
			h := s.histogram
			hs := HistogramSnapshot{
				Count:  h.Count(),
				Sum:    h.Sum(),
				Bounds: append([]float64(nil), h.bounds...),
			}
			for i := range h.counts {
				hs.Buckets = append(hs.Buckets, h.counts[i].Load())
			}
			snap.Histograms[key] = hs
		}
	}
	return snap
}

// Merge adds another snapshot into this one: counters and gauges sum,
// histograms sum bucket-wise when bounds match (and are kept from the first
// snapshot seen otherwise). The Monitor uses it to aggregate scraped
// component metrics into a fleet view.
func (s *Snapshot) Merge(other Snapshot) {
	if s.Counters == nil {
		s.Counters = make(map[string]int64)
	}
	if s.Gauges == nil {
		s.Gauges = make(map[string]float64)
	}
	if s.Histograms == nil {
		s.Histograms = make(map[string]HistogramSnapshot)
	}
	for k, v := range other.Counters {
		s.Counters[k] += v
	}
	for k, v := range other.Gauges {
		s.Gauges[k] += v
	}
	for k, v := range other.Histograms {
		cur, ok := s.Histograms[k]
		if !ok || len(cur.Bounds) != len(v.Bounds) {
			s.Histograms[k] = v
			continue
		}
		cur.Count += v.Count
		cur.Sum += v.Sum
		for i := range cur.Buckets {
			if i < len(v.Buckets) {
				cur.Buckets[i] += v.Buckets[i]
			}
		}
		s.Histograms[k] = cur
	}
}
