package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestTraceStages(t *testing.T) {
	tr := NewTrace("download", "abc")
	end := tr.StartStage(StageAuthorize)
	time.Sleep(time.Millisecond)
	end()
	tr.Observe(StageEdgeFetch, 2*time.Millisecond)
	tr.Observe(StageEdgeFetch, 3*time.Millisecond)
	tr.Event("swarm-stalled", "no candidates")
	tr.End()
	tr.End() // idempotent

	s, ok := tr.Stage(StageAuthorize)
	if !ok || s.Count != 1 || s.Total <= 0 {
		t.Errorf("authorize stage = %+v, ok=%v", s, ok)
	}
	s, ok = tr.Stage(StageEdgeFetch)
	if !ok || s.Count != 2 || s.Total != 5*time.Millisecond {
		t.Errorf("edge-fetch stage = %+v, ok=%v", s, ok)
	}
	s, ok = tr.Stage(StageComplete)
	if !ok || s.Count != 1 || s.Total <= 0 {
		t.Errorf("complete stage = %+v, ok=%v", s, ok)
	}
	if d := tr.Duration(); d <= 0 {
		t.Errorf("trace duration = %v", d)
	}

	stages := tr.Stages()
	if len(stages) != 3 || stages[0].Name != StageAuthorize || stages[2].Name != StageComplete {
		t.Errorf("stage order = %+v", stages)
	}
	snap := tr.Snapshot()
	if snap.ID != "abc" || len(snap.Stages) != 3 || len(snap.Events) != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.StartStage(StageEdgeFetch)()
	tr.Observe(StagePieceTransfer, time.Millisecond)
	tr.Event("x", "")
	tr.End()
	if tr.Duration() != 0 || tr.Stages() != nil {
		t.Error("nil trace should be inert")
	}
	if _, ok := tr.Stage(StageComplete); ok {
		t.Error("nil trace has no stages")
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace("download", "xyz")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Observe(StagePieceTransfer, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s, _ := tr.Stage(StagePieceTransfer)
	if s.Count != 4000 {
		t.Errorf("count = %d, want 4000", s.Count)
	}
}

func TestTraceLogRing(t *testing.T) {
	l := NewTraceLog(2)
	a, b, c := NewTrace("t", "a"), NewTrace("t", "b"), NewTrace("t", "c")
	l.Add(a)
	l.Add(b)
	l.Add(c)
	got := l.Recent()
	if len(got) != 2 || got[0] != b || got[1] != c {
		t.Errorf("ring = %v", got)
	}
	var nilLog *TraceLog
	nilLog.Add(a)
	if nilLog.Recent() != nil {
		t.Error("nil log should be inert")
	}
}
