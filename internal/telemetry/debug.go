package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is an operator-only HTTP endpoint serving the Go runtime
// profiles (net/http/pprof) plus, optionally, a telemetry registry. It is
// deliberately separate from the public-facing servers: profiles expose
// implementation detail and can be expensive to produce, so they live behind
// an address the operator opts into with -debug-addr.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// MountDebug registers the pprof handlers on a mux under /debug/pprof/.
func MountDebug(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// StartDebug listens on addr and serves the pprof handlers; a non-nil
// registry is mounted alongside them, so a long sim run can be profiled and
// watched on one port.
func StartDebug(addr string, reg *Registry) (*DebugServer, error) {
	mux := http.NewServeMux()
	MountDebug(mux)
	if reg != nil {
		Mount(mux, reg)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug listen: %w", err)
	}
	d := &DebugServer{
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second},
		ln:  ln,
	}
	go d.srv.Serve(ln)
	return d, nil
}

// Addr returns the bound address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the debug server down.
func (d *DebugServer) Close() error { return d.srv.Close() }
