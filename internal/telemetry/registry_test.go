package telemetry

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentUpdates hammers one counter, gauge and histogram from many
// goroutines; run under -race this is the hot-path safety proof.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops", nil)
	g := r.Gauge("depth", "queue depth", nil)
	h := r.Histogram("latency_ms", "latency", DurationBucketsMs, nil)

	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i % 100))
				// Concurrent re-lookup of the same series must return the
				// same instance.
				if r.Counter("ops_total", "", nil) != c {
					t.Error("counter identity changed under concurrency")
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	wantSum := float64(workers) * float64(perWorker/100) * (99 * 100 / 2)
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %v, want %v", got, wantSum)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
}

// TestPrometheusGolden locks the exposition format: HELP/TYPE once per
// family, sorted families, label rendering, cumulative histogram buckets
// with +Inf, _sum and _count.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_requests_total", "requests served", Labels{"endpoint": "data"}).Add(7)
	r.Counter("zz_requests_total", "requests served", Labels{"endpoint": "authorize"}).Add(2)
	r.Counter("aa_bytes_total", "bytes out", nil).Add(1024)
	r.Gauge("mid_sessions", "live sessions", nil).Set(3)
	h := r.Histogram("mid_latency_ms", "request latency", []float64{1, 5, 25}, nil)
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(3)
	h.Observe(100)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_bytes_total bytes out
# TYPE aa_bytes_total counter
aa_bytes_total 1024
# HELP mid_latency_ms request latency
# TYPE mid_latency_ms histogram
mid_latency_ms_bucket{le="1"} 1
mid_latency_ms_bucket{le="5"} 3
mid_latency_ms_bucket{le="25"} 3
mid_latency_ms_bucket{le="+Inf"} 4
mid_latency_ms_sum 106.5
mid_latency_ms_count 4
# HELP mid_sessions live sessions
# TYPE mid_sessions gauge
mid_sessions 3
# HELP zz_requests_total requests served
# TYPE zz_requests_total counter
zz_requests_total{endpoint="authorize"} 2
zz_requests_total{endpoint="data"} 7
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "", Labels{"path": `a\b"c` + "\n"}).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `m_total{path="a\\b\"c\n"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("exposition %q does not contain %q", b.String(), want)
	}
}

func TestHTTPHandlers(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x", nil).Add(9)
	mux := http.NewServeMux()
	Mount(mux, r)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content-type = %q", ct)
	}

	resp2, err := http.Get(srv.URL + "/v1/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("/v1/telemetry status = %d", resp2.StatusCode)
	}
	if ct := resp2.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/v1/telemetry content-type = %q", ct)
	}
}

func TestSnapshotMerge(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("c_total", "", nil).Add(3)
	r1.Gauge("g", "", nil).Set(1)
	r1.Histogram("h_ms", "", []float64{10}, nil).Observe(5)
	r2 := NewRegistry()
	r2.Counter("c_total", "", nil).Add(4)
	r2.Gauge("g", "", nil).Set(2)
	r2.Histogram("h_ms", "", []float64{10}, nil).Observe(50)

	agg := Snapshot{}
	agg.Merge(r1.Snapshot())
	agg.Merge(r2.Snapshot())
	if agg.Counters["c_total"] != 7 {
		t.Errorf("merged counter = %d, want 7", agg.Counters["c_total"])
	}
	if agg.Gauges["g"] != 3 {
		t.Errorf("merged gauge = %v, want 3", agg.Gauges["g"])
	}
	h := agg.Histograms["h_ms"]
	if h.Count != 2 || h.Sum != 55 {
		t.Errorf("merged histogram = %+v, want count 2 sum 55", h)
	}
	if h.Buckets[0] != 1 || h.Buckets[1] != 1 {
		t.Errorf("merged buckets = %v, want [1 1]", h.Buckets)
	}
}
