package telemetry

import (
	"encoding/json"
	"net/http"
)

// Handler serves a registry in Prometheus text exposition format; mount it
// at GET /metrics on each HTTP-serving component.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// JSONHandler serves a registry snapshot as JSON; mount it at
// GET /v1/telemetry. This is the form the Monitor scrapes.
func JSONHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(r.Snapshot())
	})
}

// Mount registers both standard telemetry endpoints on a mux.
func Mount(mux *http.ServeMux, r *Registry) {
	mux.Handle("GET /metrics", Handler(r))
	mux.Handle("GET /v1/telemetry", JSONHandler(r))
}
