package content

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"netsession/internal/fsutil"
	"netsession/internal/telemetry"
)

// DiskStore is the crash-safe piece store of a long-lived installation: one
// file per verified piece, written temp-file + fsync + rename so a SIGKILL
// or power loss never leaves a torn piece visible, plus a persisted manifest
// per object so a restart can re-verify everything it finds on disk. The
// paper's NetSession Interface survives restarts with its state intact
// (§3.2, §6.2); DiskStore is the content half of that survival, and the
// startup recovery scan is what makes it trustworthy — every piece is
// re-hashed against the stored manifest and anything corrupt or truncated is
// quarantined rather than served or resumed from.
type DiskStore struct {
	root       string
	objectsDir string
	quarDir    string

	corrupt *telemetry.Counter

	mu       sync.Mutex
	objs     map[ObjectID]*diskObject
	recovery RecoveryStats
}

type diskObject struct {
	m    *Manifest
	have *Bitfield
	dir  string
}

// DiskStoreOptions tunes OpenDiskStore.
type DiskStoreOptions struct {
	// Telemetry receives the store's counters (store_recovery_corrupt_total,
	// registered eagerly); nil creates a private registry.
	Telemetry *telemetry.Registry
}

// RecoveryStats summarizes the startup recovery scan.
type RecoveryStats struct {
	// Objects is how many objects were recovered with a valid manifest.
	Objects int
	// Pieces is how many stored pieces re-verified against their manifest.
	Pieces int
	// CorruptPieces is how many piece files failed re-verification
	// (flipped bits, truncation) and were quarantined.
	CorruptPieces int
	// QuarantinedObjects is how many whole object directories were
	// quarantined for an unreadable or inconsistent manifest.
	QuarantinedObjects int
}

const (
	diskManifestName = "manifest.json"
	pieceSuffix      = ".piece"
)

// diskManifest is the JSON form of a persisted manifest. The object ID is
// not stored: it is re-derived from (cp, url, version) on load and checked
// against the directory name, so a tampered or misplaced manifest cannot
// smuggle pieces into the wrong object.
type diskManifest struct {
	CP         uint32   `json:"cp"`
	URL        string   `json:"url"`
	Version    uint32   `json:"version"`
	Size       int64    `json:"size"`
	PieceSize  int      `json:"pieceSize"`
	P2PEnabled bool     `json:"p2pEnabled"`
	Hashes     []string `json:"hashes"`
}

// OpenDiskStore opens (creating if needed) a disk store rooted at dir and
// runs the recovery scan: every object directory's manifest is loaded and
// every piece file re-hashed against it. Corrupt or truncated piece files —
// a crash mid-write that slipped past the atomic rename, a disk error, a
// tampering user — are moved to dir/quarantine and their bits cleared, so
// the download path refetches them instead of serving poison (§3.5: a peer
// that cannot validate a piece discards it).
func OpenDiskStore(dir string, opts DiskStoreOptions) (*DiskStore, error) {
	reg := opts.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &DiskStore{
		root:       dir,
		objectsDir: filepath.Join(dir, "objects"),
		quarDir:    filepath.Join(dir, "quarantine"),
		corrupt: reg.Counter("store_recovery_corrupt_total",
			"piece files quarantined after failing hash re-verification", nil),
		objs: make(map[ObjectID]*diskObject),
	}
	for _, d := range []string{s.objectsDir, s.quarDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("content: diskstore: %w", err)
		}
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// Root returns the store's root directory.
func (s *DiskStore) Root() string { return s.root }

// Recovery returns the result of the startup recovery scan.
func (s *DiskStore) Recovery() RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// recover scans the objects directory, rebuilding the in-memory index from
// whatever survived the last process.
func (s *DiskStore) recover() error {
	entries, err := os.ReadDir(s.objectsDir)
	if err != nil {
		return fmt.Errorf("content: diskstore scan: %w", err)
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			// Stray temp files from a crash mid-rename; harmless, remove.
			os.Remove(filepath.Join(s.objectsDir, ent.Name()))
			continue
		}
		s.recoverObject(ent.Name())
	}
	return nil
}

// recoverObject loads one object directory; on an unreadable or inconsistent
// manifest the whole directory is quarantined.
func (s *DiskStore) recoverObject(name string) {
	objDir := filepath.Join(s.objectsDir, name)
	m, err := loadDiskManifest(objDir, name)
	if err != nil {
		s.quarantineDir(objDir, name)
		s.recovery.QuarantinedObjects++
		return
	}
	o := &diskObject{m: m, have: NewBitfield(m.Object.NumPieces()), dir: objDir}
	files, err := os.ReadDir(objDir)
	if err != nil {
		s.quarantineDir(objDir, name)
		s.recovery.QuarantinedObjects++
		return
	}
	for _, f := range files {
		fname := f.Name()
		if fname == diskManifestName {
			continue
		}
		idx, ok := parsePieceName(fname)
		path := filepath.Join(objDir, fname)
		if !ok {
			os.Remove(path) // leftover temp file from a crash mid-write
			continue
		}
		data, err := os.ReadFile(path)
		if err == nil {
			err = m.Verify(idx, data)
		}
		if err != nil {
			// Flipped bits or truncation: quarantine, never serve or resume.
			s.quarantinePiece(path, name, idx)
			s.recovery.CorruptPieces++
			s.corrupt.Inc()
			continue
		}
		o.have.Set(idx)
		s.recovery.Pieces++
	}
	s.objs[m.Object.ID] = o
	s.recovery.Objects++
}

func loadDiskManifest(objDir, dirName string) (*Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(objDir, diskManifestName))
	if err != nil {
		return nil, err
	}
	var dm diskManifest
	if err := json.Unmarshal(raw, &dm); err != nil {
		return nil, err
	}
	obj, err := NewObject(CPCode(dm.CP), dm.URL, dm.Version, dm.Size, dm.PieceSize, dm.P2PEnabled)
	if err != nil {
		return nil, err
	}
	// The directory is named after the secure content ID; a manifest whose
	// re-derived ID disagrees has been corrupted or moved.
	if hex.EncodeToString(obj.ID[:]) != dirName {
		return nil, fmt.Errorf("content: manifest ID mismatch in %s", dirName)
	}
	if len(dm.Hashes) != obj.NumPieces() {
		return nil, fmt.Errorf("content: manifest in %s has %d hashes, want %d",
			dirName, len(dm.Hashes), obj.NumPieces())
	}
	m := &Manifest{Object: *obj, Hashes: make([]PieceHash, len(dm.Hashes))}
	for i, h := range dm.Hashes {
		b, err := hex.DecodeString(h)
		if err != nil || len(b) != len(m.Hashes[i]) {
			return nil, fmt.Errorf("content: bad piece hash %d in %s", i, dirName)
		}
		copy(m.Hashes[i][:], b)
	}
	return m, nil
}

func pieceName(idx int) string { return fmt.Sprintf("%08d%s", idx, pieceSuffix) }

func parsePieceName(name string) (int, bool) {
	if !strings.HasSuffix(name, pieceSuffix) {
		return 0, false
	}
	idx, err := strconv.Atoi(strings.TrimSuffix(name, pieceSuffix))
	if err != nil || idx < 0 {
		return 0, false
	}
	return idx, true
}

// quarantinePiece moves a failed piece file into the quarantine directory.
func (s *DiskStore) quarantinePiece(path, objName string, idx int) {
	dst := filepath.Join(s.quarDir, fmt.Sprintf("%s-p%d%s", objName, idx, pieceSuffix))
	os.Remove(dst)
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path) // quarantine failed; removal still protects the peer
	}
}

// quarantineDir moves a whole object directory into quarantine.
func (s *DiskStore) quarantineDir(objDir, name string) {
	dst := filepath.Join(s.quarDir, name)
	os.RemoveAll(dst)
	if err := os.Rename(objDir, dst); err != nil {
		os.RemoveAll(objDir)
	}
}

// object returns (creating and persisting the manifest if needed) the
// in-memory state for an object. Caller holds s.mu.
func (s *DiskStore) object(m *Manifest) (*diskObject, error) {
	if o := s.objs[m.Object.ID]; o != nil {
		return o, nil
	}
	name := hex.EncodeToString(m.Object.ID[:])
	objDir := filepath.Join(s.objectsDir, name)
	if err := os.MkdirAll(objDir, 0o755); err != nil {
		return nil, fmt.Errorf("content: diskstore object dir: %w", err)
	}
	dm := diskManifest{
		CP:         uint32(m.Object.CP),
		URL:        m.Object.URL,
		Version:    m.Object.Version,
		Size:       m.Object.Size,
		PieceSize:  m.Object.PieceSize,
		P2PEnabled: m.Object.P2PEnabled,
		Hashes:     make([]string, len(m.Hashes)),
	}
	for i, h := range m.Hashes {
		dm.Hashes[i] = hex.EncodeToString(h[:])
	}
	raw, err := json.MarshalIndent(dm, "", "  ")
	if err != nil {
		return nil, err
	}
	// The manifest must be durable before any piece that depends on it:
	// recovery quarantines pieces it cannot verify.
	if err := fsutil.WriteFileAtomic(filepath.Join(objDir, diskManifestName), raw, 0o644); err != nil {
		return nil, err
	}
	mCopy := &Manifest{Object: m.Object, Hashes: append([]PieceHash(nil), m.Hashes...)}
	o := &diskObject{m: mCopy, have: NewBitfield(m.Object.NumPieces()), dir: objDir}
	s.objs[m.Object.ID] = o
	return o, nil
}

// Put implements Store: the piece is verified, then written durably (temp
// file + fsync + rename + dir fsync) so a crash can only lose pieces that
// were never acknowledged, never corrupt one that was.
func (s *DiskStore) Put(m *Manifest, index int, data []byte) error {
	if err := m.Verify(index, data); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	o, err := s.object(m)
	if err != nil {
		return err
	}
	if o.have.Has(index) {
		return nil
	}
	if err := fsutil.WriteFileAtomic(filepath.Join(o.dir, pieceName(index)), data, 0o644); err != nil {
		return fmt.Errorf("content: diskstore put: %w", err)
	}
	o.have.Set(index)
	return nil
}

// Get implements Store. The piece is re-verified on the way out — a peer
// never uploads bytes it cannot validate (§3.5) — and a piece that rotted
// since the recovery scan is quarantined and reported absent, so the caller
// refetches it.
func (s *DiskStore) Get(id ObjectID, index int) ([]byte, bool) {
	s.mu.Lock()
	o := s.objs[id]
	if o == nil || !o.have.Has(index) {
		s.mu.Unlock()
		return nil, false
	}
	m := o.m
	path := filepath.Join(o.dir, pieceName(index))
	s.mu.Unlock()

	data, err := os.ReadFile(path)
	if err == nil {
		err = m.Verify(index, data)
	}
	if err != nil {
		s.mu.Lock()
		if o2 := s.objs[id]; o2 == o && o.have.Has(index) {
			o.have.Clear(index)
			s.quarantinePiece(path, hex.EncodeToString(id[:]), index)
			s.corrupt.Inc()
		}
		s.mu.Unlock()
		return nil, false
	}
	return data, true
}

// Have implements Store.
func (s *DiskStore) Have(id ObjectID) *Bitfield {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.objs[id]
	if o == nil {
		return nil
	}
	return o.have.Clone()
}

// Complete implements Store.
func (s *DiskStore) Complete(id ObjectID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.objs[id]
	return o != nil && o.have.Complete()
}

// Manifest returns the persisted manifest of an object, or nil when the
// store holds nothing for it. Resumed downloads use it to avoid a manifest
// refetch when the edge is unreachable.
func (s *DiskStore) Manifest(id ObjectID) *Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.objs[id]
	if o == nil {
		return nil
	}
	return &Manifest{Object: o.m.Object, Hashes: append([]PieceHash(nil), o.m.Hashes...)}
}

// Drop implements Store: eviction parity with MemStore — the object's
// directory (manifest and all pieces) is removed in one call.
func (s *DiskStore) Drop(id ObjectID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.objs[id]
	if o == nil {
		return
	}
	os.RemoveAll(o.dir)
	fsutil.SyncDir(s.objectsDir)
	delete(s.objs, id)
}

// Objects implements Store.
func (s *DiskStore) Objects() []ObjectID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ObjectID, 0, len(s.objs))
	for id := range s.objs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Compare(string(out[i][:]), string(out[j][:])) < 0
	})
	return out
}
