// Package content implements the content model of NetSession: objects
// published by content providers, broken into fixed-size pieces whose
// SHA-256 hashes are generated and maintained by the edge servers, secure
// content IDs that are unique per version, bitfields tracking piece
// possession, and piece stores.
//
// Section 3.5 of the paper: "Edge servers generate and maintain secure IDs
// of content, which are unique to each version, as well as secure hashes of
// the pieces of each file. The IDs and the hashes are provided to the peers,
// so they can validate the content they have downloaded."
package content

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// DefaultPieceSize is the piece size used when a provider does not override
// it. NetSession, like BitTorrent, breaks objects "into fixed-size pieces
// that can be downloaded and their content hashes verified separately".
const DefaultPieceSize = 1 << 20 // 1 MiB

// CPCode identifies a specific account of a content provider, as recorded
// with every download in the paper's logs (§4.1).
type CPCode uint32

// ObjectID is the secure content ID of one version of one object. It is
// derived from the provider, URL and version, so two versions of the same
// URL never collide ("content can change over time, so it is important that
// different versions are not mixed up in the same download").
type ObjectID [32]byte

func (id ObjectID) String() string { return hex.EncodeToString(id[:8]) }

// IsZero reports whether the ID is unset.
func (id ObjectID) IsZero() bool { return id == ObjectID{} }

// NewObjectID derives the secure content ID for a (provider, url, version)
// triple.
func NewObjectID(cp CPCode, url string, version uint32) ObjectID {
	h := sha256.New()
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(cp))
	binary.BigEndian.PutUint32(hdr[4:8], version)
	h.Write(hdr[:])
	h.Write([]byte(url))
	var id ObjectID
	h.Sum(id[:0])
	return id
}

// Object is the metadata of one distributable object version.
type Object struct {
	ID        ObjectID
	CP        CPCode
	URL       string // anonymized/hashed file name in the trace
	Version   uint32
	Size      int64
	PieceSize int
	// P2PEnabled is the per-file policy bit set by the content provider
	// ("Content providers can control on a per-file basis whether or not
	// peer-to-peer downloads are allowed", §5.1).
	P2PEnabled bool
}

// NewObject builds object metadata, assigning the secure content ID.
func NewObject(cp CPCode, url string, version uint32, size int64, pieceSize int, p2p bool) (*Object, error) {
	if size < 0 {
		return nil, fmt.Errorf("content: negative object size %d", size)
	}
	if pieceSize <= 0 {
		pieceSize = DefaultPieceSize
	}
	return &Object{
		ID:         NewObjectID(cp, url, version),
		CP:         cp,
		URL:        url,
		Version:    version,
		Size:       size,
		PieceSize:  pieceSize,
		P2PEnabled: p2p,
	}, nil
}

// NumPieces returns the number of pieces in the object. An empty object has
// zero pieces.
func (o *Object) NumPieces() int {
	if o.Size == 0 {
		return 0
	}
	return int((o.Size + int64(o.PieceSize) - 1) / int64(o.PieceSize))
}

// PieceLength returns the length in bytes of piece i; the final piece may be
// short.
func (o *Object) PieceLength(i int) int {
	n := o.NumPieces()
	if i < 0 || i >= n {
		return 0
	}
	if i == n-1 {
		if rem := int(o.Size % int64(o.PieceSize)); rem != 0 {
			return rem
		}
	}
	return o.PieceSize
}

// PieceOffset returns the byte offset of piece i within the object.
func (o *Object) PieceOffset(i int) int64 {
	return int64(i) * int64(o.PieceSize)
}
