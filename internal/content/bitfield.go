package content

import "math/bits"

// Bitfield tracks piece possession, in the style of the swarming protocol's
// bitfield exchange ("peers exchange information about which pieces of the
// file they have locally available", §3.4). Bit i set means piece i is held
// and verified.
type Bitfield struct {
	n     int
	words []uint64
}

// NewBitfield creates a bitfield for n pieces, all clear.
func NewBitfield(n int) *Bitfield {
	if n < 0 {
		n = 0
	}
	return &Bitfield{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of pieces tracked.
func (b *Bitfield) Len() int { return b.n }

// Set marks piece i as held. Out-of-range indices are ignored.
func (b *Bitfield) Set(i int) {
	if i < 0 || i >= b.n {
		return
	}
	b.words[i/64] |= 1 << (uint(i) % 64)
}

// Clear unmarks piece i.
func (b *Bitfield) Clear(i int) {
	if i < 0 || i >= b.n {
		return
	}
	b.words[i/64] &^= 1 << (uint(i) % 64)
}

// Has reports whether piece i is held.
func (b *Bitfield) Has(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i/64]&(1<<(uint(i)%64)) != 0
}

// Count returns the number of held pieces.
func (b *Bitfield) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Complete reports whether every piece is held.
func (b *Bitfield) Complete() bool { return b.Count() == b.n }

// Missing returns the indices of pieces not held, up to max entries
// (max <= 0 means no limit).
func (b *Bitfield) Missing(max int) []int {
	var out []int
	for i := 0; i < b.n; i++ {
		if !b.Has(i) {
			out = append(out, i)
			if max > 0 && len(out) == max {
				break
			}
		}
	}
	return out
}

// FirstMissingIn returns the lowest-indexed piece that other has and b does
// not, or -1 when none exists. Used by piece schedulers.
func (b *Bitfield) FirstMissingIn(other *Bitfield) int {
	n := b.n
	if other.n < n {
		n = other.n
	}
	for w := 0; w*64 < n; w++ {
		cand := other.words[w] &^ b.words[w]
		if cand != 0 {
			i := w*64 + bits.TrailingZeros64(cand)
			if i < n {
				return i
			}
		}
	}
	return -1
}

// Clone returns a deep copy.
func (b *Bitfield) Clone() *Bitfield {
	c := &Bitfield{n: b.n, words: make([]uint64, len(b.words))}
	copy(c.words, b.words)
	return c
}

// MarshalBinary encodes the bitfield big-endian, one bit per piece, padded
// to a byte boundary — the wire format of the swarm BITFIELD message.
func (b *Bitfield) MarshalBinary() []byte {
	out := make([]byte, (b.n+7)/8)
	for i := 0; i < b.n; i++ {
		if b.Has(i) {
			out[i/8] |= 1 << (7 - uint(i)%8)
		}
	}
	return out
}

// UnmarshalBitfield decodes a wire bitfield for n pieces. Extra trailing
// bits must be zero.
func UnmarshalBitfield(n int, data []byte) (*Bitfield, bool) {
	if len(data) != (n+7)/8 {
		return nil, false
	}
	b := NewBitfield(n)
	for i := 0; i < n; i++ {
		if data[i/8]&(1<<(7-uint(i)%8)) != 0 {
			b.Set(i)
		}
	}
	// Reject set padding bits: a malformed or malicious encoding.
	for i := n; i < len(data)*8; i++ {
		if data[i/8]&(1<<(7-uint(i)%8)) != 0 {
			return nil, false
		}
	}
	return b, true
}
